// Regression tests pinning the paper's qualitative results (the "shapes")
// so that simulator or scheme changes cannot silently lose them:
//
//   §4 / Fig 2-3: HLE-MCS serializes almost completely; HLE-TTAS recovers.
//   §7.1 / Fig 9: HLE-retries rescues TTAS but collapses on MCS at 8
//                 threads while still helping at 2; the software schemes
//                 scale on both locks.
//   §7.1 / Fig 10: MCS + SCM/SLR gain severalfold over plain HLE; TTAS
//                 lookups-only gains nothing from the software schemes.
//   §3.1: spurious aborts alone lemming a read-only MCS workload.
#include <gtest/gtest.h>

#include "harness/rbtree_workload.h"

namespace sihle {
namespace {

using elision::Scheme;
using harness::WorkloadConfig;
using locks::LockKind;

WorkloadConfig base_config() {
  WorkloadConfig cfg;
  cfg.threads = 8;
  cfg.tree_size = 128;
  cfg.update_pct = 20;
  cfg.duration = 2'000'000;
  cfg.seed = 11;
  return cfg;
}

double throughput(WorkloadConfig cfg, Scheme s, LockKind l, int threads = 8) {
  cfg.scheme = s;
  cfg.lock = l;
  cfg.threads = threads;
  return harness::average_throughput(cfg, 2);
}

TEST(PaperShapes, HleMcsSerializesAlmostCompletely) {
  WorkloadConfig cfg = base_config();
  cfg.scheme = Scheme::kHle;
  cfg.lock = LockKind::kMcs;
  const auto r = harness::run_rbtree_workload(cfg);
  EXPECT_GT(r.stats.nonspec_fraction(), 0.9);
  EXPECT_TRUE(r.tree_valid);
}

TEST(PaperShapes, HleTtasRecoversFromAborts) {
  WorkloadConfig cfg = base_config();
  cfg.scheme = Scheme::kHle;
  cfg.lock = LockKind::kTtas;
  const auto r = harness::run_rbtree_workload(cfg);
  EXPECT_LT(r.stats.nonspec_fraction(), 0.3);
  EXPECT_GT(r.stats.aborts, 0u);
  EXPECT_GT(r.stats.arrival_lock_held_fraction(), 0.0);
}

TEST(PaperShapes, TicketAndClhBehaveLikeMcs) {
  // §4: "we have verified that both these locks suffer from the same
  // problems reported for the MCS lock."
  WorkloadConfig cfg = base_config();
  cfg.scheme = Scheme::kHle;
  for (LockKind lk : {LockKind::kElidableTicket, LockKind::kElidableClh}) {
    cfg.lock = lk;
    const auto r = harness::run_rbtree_workload(cfg);
    EXPECT_GT(r.stats.nonspec_fraction(), 0.9) << locks::to_string(lk);
  }
}

TEST(PaperShapes, HleGainsNothingOnMcsButHelpsTtas) {
  WorkloadConfig cfg = base_config();
  const double mcs_std = throughput(cfg, Scheme::kStandard, LockKind::kMcs);
  const double mcs_hle = throughput(cfg, Scheme::kHle, LockKind::kMcs);
  EXPECT_LT(mcs_hle / mcs_std, 1.15);  // no benefit
  const double ttas_std = throughput(cfg, Scheme::kStandard, LockKind::kTtas);
  const double ttas_hle = throughput(cfg, Scheme::kHle, LockKind::kTtas);
  EXPECT_GT(ttas_hle / ttas_std, 2.0);
}

TEST(PaperShapes, RetriesRescueTtasButNotMcsAt8Threads) {
  WorkloadConfig cfg = base_config();
  const double ttas_hle = throughput(cfg, Scheme::kHle, LockKind::kTtas);
  const double ttas_ret = throughput(cfg, Scheme::kHleRetries, LockKind::kTtas);
  EXPECT_GT(ttas_ret / ttas_hle, 1.05);

  const double mcs_std = throughput(cfg, Scheme::kStandard, LockKind::kMcs);
  const double mcs_ret8 = throughput(cfg, Scheme::kHleRetries, LockKind::kMcs, 8);
  EXPECT_LT(mcs_ret8 / mcs_std, 1.5);  // collapsed at 8 threads

  const double mcs_std2 = throughput(cfg, Scheme::kStandard, LockKind::kMcs, 2);
  const double mcs_ret2 = throughput(cfg, Scheme::kHleRetries, LockKind::kMcs, 2);
  EXPECT_GT(mcs_ret2 / mcs_std2, 1.3);  // still helps at 2 threads
}

TEST(PaperShapes, SoftwareSchemesRescueMcs) {
  WorkloadConfig cfg = base_config();
  const double hle = throughput(cfg, Scheme::kHle, LockKind::kMcs);
  for (Scheme s : {Scheme::kHleScm, Scheme::kOptSlr, Scheme::kSlrScm}) {
    const double t = throughput(cfg, s, LockKind::kMcs);
    EXPECT_GT(t / hle, 2.0) << elision::to_string(s);
  }
}

TEST(PaperShapes, SoftwareSchemesCloseTheMcsTtasGap) {
  WorkloadConfig cfg = base_config();
  const double mcs_scm = throughput(cfg, Scheme::kHleScm, LockKind::kMcs);
  const double ttas_scm = throughput(cfg, Scheme::kHleScm, LockKind::kTtas);
  EXPECT_GT(mcs_scm / ttas_scm, 0.85);
  EXPECT_LT(mcs_scm / ttas_scm, 1.18);
}

TEST(PaperShapes, LookupsOnlyTtasNeedsNoHelp) {
  WorkloadConfig cfg = base_config();
  cfg.update_pct = 0;
  cfg.tree_size = 512;
  const double hle = throughput(cfg, Scheme::kHle, LockKind::kTtas);
  for (Scheme s : {Scheme::kHleRetries, Scheme::kHleScm, Scheme::kOptSlr}) {
    const double t = throughput(cfg, s, LockKind::kTtas);
    EXPECT_GT(t / hle, 0.85) << elision::to_string(s);
    EXPECT_LT(t / hle, 1.35) << elision::to_string(s);
  }
}

TEST(PaperShapes, SpuriousAbortsAloneLemmingReadOnlyMcs) {
  WorkloadConfig cfg = base_config();
  cfg.update_pct = 0;
  cfg.tree_size = 2048;
  cfg.scheme = Scheme::kHle;
  cfg.lock = LockKind::kMcs;
  cfg.persistent = 0.0;

  cfg.spurious = 0.0;
  const auto clean = harness::run_rbtree_workload(cfg);
  EXPECT_LT(clean.stats.nonspec_fraction(), 0.05);

  cfg.spurious = 1e-4;
  const auto noisy = harness::run_rbtree_workload(cfg);
  EXPECT_GT(noisy.stats.nonspec_fraction(), 0.8);
  EXPECT_GT(clean.ops_per_mcycle / noisy.ops_per_mcycle, 2.0);
}

TEST(PaperShapes, ScmBeatsSlrOnShortTransactionsUnderContention) {
  WorkloadConfig cfg = base_config();
  cfg.update_pct = 100;
  cfg.tree_size = 32;
  const double scm = throughput(cfg, Scheme::kHleScm, LockKind::kTtas);
  const double slr = throughput(cfg, Scheme::kOptSlr, LockKind::kTtas);
  EXPECT_GT(scm / slr, 1.0);
}

TEST(PaperShapes, HashTableMatchesShortTransactionRegime) {
  WorkloadConfig cfg = base_config();
  cfg.ds = harness::DsKind::kHashTable;
  cfg.tree_size = 512;
  const double mcs_hle = throughput(cfg, Scheme::kHle, LockKind::kMcs);
  const double mcs_scm = throughput(cfg, Scheme::kHleScm, LockKind::kMcs);
  EXPECT_GT(mcs_scm / mcs_hle, 2.0);
}

}  // namespace
}  // namespace sihle
