// Regression tests pinning the extension results (EXPERIMENTS.md,
// "Additional reproductions and extensions"): glibc-adaptive behaviour,
// latency-tail fairness, and the capacity wall.
#include <gtest/gtest.h>

#include "harness/rbtree_workload.h"

namespace sihle {
namespace {

using elision::Scheme;
using harness::WorkloadConfig;
using locks::LockKind;

TEST(Extensions, AdaptiveElisionConvergesToNoElisionUnderLoad) {
  WorkloadConfig cfg;
  cfg.tree_size = 128;
  cfg.update_pct = 20;
  cfg.duration = 1'500'000;
  cfg.seed = 3;
  cfg.lock = LockKind::kTtas;

  cfg.scheme = Scheme::kStandard;
  const double base = harness::run_rbtree_workload(cfg).ops_per_mcycle;
  cfg.scheme = Scheme::kAdaptive;
  const auto adaptive = harness::run_rbtree_workload(cfg);
  cfg.scheme = Scheme::kHle;
  const double hle = harness::run_rbtree_workload(cfg).ops_per_mcycle;

  // Adaptation collapses to the plain lock (within 20%), far below HLE.
  EXPECT_LT(adaptive.ops_per_mcycle / base, 1.25);
  EXPECT_GT(hle / adaptive.ops_per_mcycle, 2.0);
  // And it is the skip path doing it: most ops complete non-speculatively.
  EXPECT_GT(adaptive.stats.nonspec_fraction(), 0.7);
}

TEST(Extensions, FairnessTailOrdering) {
  WorkloadConfig cfg;
  cfg.tree_size = 64;
  cfg.update_pct = 100;
  cfg.duration = 2'000'000;
  cfg.seed = 5;

  auto tail_ratio = [&](Scheme s, LockKind l) {
    cfg.scheme = s;
    cfg.lock = l;
    const auto r = harness::run_rbtree_workload(cfg);
    return static_cast<double>(r.latency.percentile(0.999)) /
           static_cast<double>(r.latency.percentile(0.50));
  };

  const double ttas = tail_ratio(Scheme::kStandard, LockKind::kTtas);
  const double mcs = tail_ratio(Scheme::kStandard, LockKind::kMcs);
  const double scm_mcs = tail_ratio(Scheme::kHleScm, LockKind::kMcs);

  EXPECT_GT(ttas / mcs, 50.0);     // unfair lock: tail explodes
  EXPECT_LT(scm_mcs, ttas / 10);   // elided fair lock keeps a bounded tail
}

TEST(Extensions, CapacityWallDefeatsEveryScheme) {
  WorkloadConfig cfg;
  cfg.ds = harness::DsKind::kLinkedList;
  cfg.tree_size = 1024;
  cfg.max_read_lines = 64;  // far inside every traversal
  cfg.update_pct = 20;
  cfg.duration = 500'000;
  cfg.spurious = 0.0;
  cfg.persistent = 0.0;
  cfg.lock = LockKind::kTtas;

  cfg.scheme = Scheme::kStandard;
  const double base = harness::run_rbtree_workload(cfg).ops_per_mcycle;
  for (Scheme s : {Scheme::kHle, Scheme::kOptSlr}) {
    cfg.scheme = s;
    const auto r = harness::run_rbtree_workload(cfg);
    EXPECT_LT(r.ops_per_mcycle / base, 1.3) << elision::to_string(s);
    EXPECT_GT(r.stats.nonspec_fraction(), 0.8) << elision::to_string(s);
  }
}

}  // namespace
}  // namespace sihle
