// SLR (software-assisted lock removal) semantics tests.
//
// SLR sacrifices opacity: a running transaction may observe state that no
// lock-respecting execution could produce, because a non-speculative lock
// holder publishes its stores one at a time.  The commit-time lock check
// guarantees such a transaction can never commit.  These tests reconstruct
// the paper's §5 "erroneous example" and Figure 6 scenarios with controlled
// virtual-time interleavings, and property-check consistency of everything
// SLR actually commits.
#include <gtest/gtest.h>

#include <vector>

#include "elision/schemes.h"
#include "locks/locks.h"
#include "runtime/ctx.h"

namespace sihle {
namespace {

using elision::Scheme;
using runtime::Ctx;
using runtime::LineHandle;
using runtime::Machine;

struct TwoCells {
  LineHandle lx, ly;
  mem::Shared<std::uint64_t> x, y;
  explicit TwoCells(Machine& m) : lx(m), ly(m), x(lx.line(), 0), y(ly.line(), 0) {}
};

struct Observation {
  std::uint64_t x, y;
  bool committed;
};

// T1: one SLR transaction reading X, then (after a delay) Y.
sim::Task<void> slr_reader_body(Ctx& c, TwoCells& cells, std::vector<Observation>& log) {
  const std::uint64_t x = co_await c.load(cells.x);
  co_await c.work(800);  // let T2's first store land in between
  const std::uint64_t y = co_await c.load(cells.y);
  log.push_back({x, y, false});  // marked committed below if the op commits
}

template <class Lock>
sim::Task<void> slr_reader(Ctx& c, Lock& lock, locks::MCSLock& aux, TwoCells& cells,
                           std::vector<Observation>& log, stats::OpStats& st) {
  co_await elision::run_op(
      Scheme::kOptSlr, c, lock, aux,
      [&cells, &log](Ctx& cc) { return slr_reader_body(cc, cells, log); }, st);
  // The operation completed: its final attempt's observation committed (or
  // ran under the real lock).
  if (!log.empty()) log.back().committed = true;
}

// T2: non-speculatively locks and stores Y := 1 then X := 1 with a gap —
// the paper's erroneous-example writer.
template <class Lock>
sim::Task<void> locking_writer(Ctx& c, Lock& lock, TwoCells& cells) {
  co_await c.work(300);  // start after T1's read of X
  co_await lock.acquire(c);
  co_await c.store(cells.y, std::uint64_t{1});
  co_await c.work(1500);
  co_await c.store(cells.x, std::uint64_t{1});
  co_await lock.release(c);
}

TEST(SlrOpacity, InconsistentStateObservedButNeverCommitted) {
  Machine::Config cfg;
  cfg.htm.spurious_abort_per_access = 0.0;
  Machine m(cfg);
  locks::TTASLock lock(m);
  locks::MCSLock aux(m);
  TwoCells cells(m);
  std::vector<Observation> log;
  stats::OpStats st;
  m.spawn([&](Ctx& c) { return slr_reader<locks::TTASLock>(c, lock, aux, cells, log, st); });
  m.spawn([&](Ctx& c) { return locking_writer<locks::TTASLock>(c, lock, cells); });
  m.run();

  ASSERT_FALSE(log.empty());
  // The first attempt observed the torn state {X=0, Y=1}: Y was read after
  // T2's store, X before it.  Loss of opacity, exactly as §5 describes.
  EXPECT_EQ(log.front().x, 0u);
  EXPECT_EQ(log.front().y, 1u);
  EXPECT_FALSE(log.front().committed);
  // Whatever finally committed is a consistent snapshot: both stores or none.
  const Observation& final = log.back();
  EXPECT_TRUE(final.committed);
  EXPECT_TRUE((final.x == 0 && final.y == 0) || (final.x == 1 && final.y == 1))
      << "committed x=" << final.x << " y=" << final.y;
  EXPECT_GE(st.aborts, 1u);  // the torn attempt aborted
}

// Figure 6, right: T2 releases the lock before T1 commits and only then is
// T1 allowed to commit — even though T1 started before T2.
sim::Task<void> late_reader_body(Ctx& c, TwoCells& cells, std::vector<Observation>& log) {
  const std::uint64_t x = co_await c.load(cells.x);
  co_await c.work(3000);  // T2's whole critical section fits in this gap
  const std::uint64_t y = co_await c.load(cells.y);
  log.push_back({x, y, false});
}

template <class Lock>
sim::Task<void> y_only_writer(Ctx& c, Lock& lock, TwoCells& cells) {
  co_await c.work(300);
  co_await lock.acquire(c);
  co_await c.store(cells.y, std::uint64_t{1});
  co_await lock.release(c);
}

TEST(SlrOpacity, CommitsAfterLockReleaseWithoutConflict) {
  Machine::Config cfg;
  cfg.htm.spurious_abort_per_access = 0.0;
  Machine m(cfg);
  locks::TTASLock lock(m);
  locks::MCSLock aux(m);
  TwoCells cells(m);
  std::vector<Observation> log;
  stats::OpStats st;
  m.spawn([&](Ctx& c) -> sim::Task<void> {
    return [](Ctx& cc, locks::TTASLock& l, locks::MCSLock& a, TwoCells& tc,
              std::vector<Observation>& lg, stats::OpStats& s) -> sim::Task<void> {
      co_await elision::run_op(
          Scheme::kOptSlr, cc, l, a,
          [&tc, &lg](Ctx& c2) { return late_reader_body(c2, tc, lg); }, s);
      lg.back().committed = true;
    }(c, lock, aux, cells, log, st);
  });
  m.spawn([&](Ctx& c) { return y_only_writer<locks::TTASLock>(c, lock, cells); });
  m.run();

  // T1 ran concurrently with (and past) T2's critical section, read
  // X=0 (pre-T2, untouched) and Y=1 (post-T2), found the lock free at
  // commit time, and committed speculatively on the FIRST attempt: the
  // execution is indistinguishable from T2 running entirely before T1.
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log.back().x, 0u);
  EXPECT_EQ(log.back().y, 1u);
  EXPECT_EQ(st.spec_commits, 1u);
  EXPECT_EQ(st.aborts, 0u);
}

// Property: under SLR with concurrent lock-holding writers maintaining the
// invariant x == y, every *completed* reader op observes x == y.
struct PairState {
  TwoCells cells;
  explicit PairState(Machine& m) : cells(m) {}
};

sim::Task<void> invariant_reader_body(Ctx& c, TwoCells& cells, std::uint64_t* bad) {
  const std::uint64_t x = co_await c.load(cells.x);
  co_await c.work(c.rng().below(400));
  const std::uint64_t y = co_await c.load(cells.y);
  // Final (committed or lock-protected) execution must see x == y; count
  // into a local that the caller only trusts from the completing attempt.
  *bad = x == y ? 0 : 1;
}

template <class Lock>
sim::Task<void> invariant_reader(Ctx& c, Lock& lock, locks::MCSLock& aux,
                                 TwoCells& cells, int ops, stats::OpStats& st,
                                 std::uint64_t& violations) {
  for (int i = 0; i < ops; ++i) {
    std::uint64_t bad = 0;
    co_await elision::run_op(
        Scheme::kOptSlr, c, lock, aux,
        [&cells, &bad](Ctx& cc) { return invariant_reader_body(cc, cells, &bad); },
        st);
    violations += bad;
    co_await c.work(c.rng().below(100));
  }
}

template <class Lock>
sim::Task<void> invariant_writer(Ctx& c, Lock& lock, TwoCells& cells, int ops) {
  for (int i = 0; i < ops; ++i) {
    co_await lock.acquire(c);
    const std::uint64_t v = co_await c.load(cells.x);
    co_await c.store(cells.x, v + 1);
    co_await c.work(c.rng().below(300));
    co_await c.store(cells.y, v + 1);
    co_await lock.release(c);
    co_await c.work(c.rng().below(200));
  }
}

TEST(SlrConsistency, CompletedOpsAlwaysSeeTheInvariant) {
  for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u}) {
    Machine::Config cfg;
    cfg.seed = seed;
    cfg.htm.spurious_abort_per_access = 1e-4;
    Machine m(cfg);
    locks::TTASLock lock(m);
    locks::MCSLock aux(m);
    TwoCells cells(m);
    std::uint64_t violations = 0;
    std::vector<stats::OpStats> st(6);
    for (int t = 0; t < 4; ++t) {
      m.spawn([&, t](Ctx& c) {
        return invariant_reader<locks::TTASLock>(c, lock, aux, cells, 150, st[t],
                                                 violations);
      });
    }
    for (int t = 4; t < 6; ++t) {
      m.spawn([&](Ctx& c) {
        return invariant_writer<locks::TTASLock>(c, lock, cells, 100);
      });
    }
    m.run();
    EXPECT_EQ(violations, 0u) << "seed " << seed;
    EXPECT_EQ(cells.x.debug_value(), cells.y.debug_value());
    EXPECT_EQ(cells.x.debug_value(), 200u);
  }
}

}  // namespace
}  // namespace sihle
