// Exhaustive shared-mode verification (docs/VERIFICATION.md): the coupled
// reader/writer scenario explores every schedule of an exclusive-mode
// writer against a mode=shared reader over the rw locks, checking opacity,
// deadlock freedom, the lockset discipline, and the final state — and the
// shared-mode wild-store hazard proves the masked commit-checked
// subscription still closes the lazy-subscription hole when the eliding
// thread is a reader.
//
// Every proof-shaped assertion requires stats.complete: a budget-clipped
// exploration is a smoke test, not a proof.
#include <gtest/gtest.h>

#include <cctype>
#include <stdexcept>
#include <string>

#include "elision/registry.h"
#include "mc/workloads.h"
#include "stats/findings.h"

namespace sihle {
namespace {

using elision::SubscribeKind;
using stats::FindingKind;

mc::ScenarioOptions tight_options() {
  mc::ScenarioOptions opts;
  opts.ops0 = 1;
  opts.ops1 = 1;
  return opts;
}

void expect_clean_and_complete(const mc::McScenarioResult& r,
                               const std::string& what) {
  ASSERT_TRUE(r.stats.complete)
      << what << ": exploration was budget-clipped — not a proof";
  EXPECT_EQ(r.stats.step_limited, 0u) << what;
  EXPECT_TRUE(r.clean()) << what << ": " << r.findings.total()
                         << " finding(s), first kind "
                         << (r.findings.findings().empty()
                                 ? "?"
                                 : to_string(r.findings.findings()[0].kind));
  EXPECT_EQ(r.bad_schedules, 0u) << what;
  EXPECT_GT(r.stats.runs, 0u) << what;
}

struct RwCase {
  const char* writer;
  const char* reader;
  locks::LockKind lock;
};

class RwSchedules : public ::testing::TestWithParam<RwCase> {};

TEST_P(RwSchedules, SharedModeReadersAreOpaque) {
  const RwCase& p = GetParam();
  const auto r = mc::explore_rw(p.writer, p.reader, p.lock, tight_options());
  expect_clean_and_complete(
      r, std::string(p.writer) + " vs " + p.reader + " on " +
             elision::lock_key(p.lock));
}

INSTANTIATE_TEST_SUITE_P(
    ModeMatrix, RwSchedules,
    ::testing::Values(
        // Locked writer against a locked shared reader: the plain rw state
        // machine under exhaustive schedules.
        RwCase{"standard", "standard:mode=shared", locks::LockKind::kRw},
        RwCase{"standard", "standard:mode=shared", locks::LockKind::kRwWp},
        // Eliding shared readers against an eliding exclusive writer, both
        // HLE flavors of the acceptance criteria specs.
        RwCase{"hle", "hle:mode=shared", locks::LockKind::kRw},
        RwCase{"hle-scm:aux=ticket", "hle-scm:mode=update,aux=ticket",
               locks::LockKind::kRw},
        // SLR shared readers, both subscription kinds.  retries=2 keeps the
        // schedule space exhaustible, same as the exclusive-mode opacity
        // suite (mc_opacity_test) does for SLR.
        RwCase{"slr:retries=2", "slr:mode=shared,retries=2",
               locks::LockKind::kRw},
        RwCase{"slr:retries=2",
               "slr:mode=shared,retries=2,subscribe=commit-checked",
               locks::LockKind::kRw}),
    [](const auto& info) {
      std::string name = std::string(info.param.reader) + "_" +
                         elision::lock_key(info.param.lock);
      for (char& ch : name) {
        if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
      }
      return name;
    });

// Update-mode reader against an exclusive writer: update-mode acquisition
// blocks on (and is blocked by) writers, so a read-only update holder sees
// consistent snapshots on every schedule.  (An update holder that *wrote*
// without upgrading would legitimately expose torn state to concurrent
// shared readers — update coexists with shared by design; upgrade() exists
// precisely to close that window, and rwlock_test pins its drain.)
TEST(RwSchedules, UpdateModeReadersAreOpaque) {
  const auto r = mc::explore_rw("standard", "standard:mode=update",
                                locks::LockKind::kRw, tight_options());
  expect_clean_and_complete(r, "exclusive writer vs update reader");
}

// Misuse is rejected before any schedule runs.
TEST(RwSchedules, SharedModeOnNonRwLockThrows) {
  EXPECT_THROW(mc::explore_rw("standard", "standard:mode=shared",
                              locks::LockKind::kTtas, tight_options()),
               std::invalid_argument);
}

// The shared-mode wild-store hazard.  Lazy subscription must exhibit the
// torn commit (the zombie reader forwards itself a "no writer" word);
// masked commit-checked subscription must exhaustively find none.
TEST(RwHazard, LazySharedSubscriptionCommitsATornSnapshot) {
  const auto r = mc::explore_rw_hazard(SubscribeKind::kLazy, tight_options());
  ASSERT_TRUE(r.stats.complete);
  EXPECT_GT(r.findings.count(FindingKind::kMcNonSerializableCommit), 0u)
      << "the checker must exhibit the shared-mode lazy-subscription hole";
  ASSERT_FALSE(r.counterexamples.empty());
  EXPECT_FALSE(r.counterexamples.front().trace.empty());
}

TEST(RwHazard, MaskedCommitCheckedSubscriptionClosesTheHole) {
  const auto r =
      mc::explore_rw_hazard(SubscribeKind::kCommitChecked, tight_options());
  ASSERT_TRUE(r.stats.complete)
      << "the proof is exhaustive only if exploration completed";
  EXPECT_EQ(r.findings.count(FindingKind::kMcNonSerializableCommit), 0u)
      << "masked commit-checked subscription must never commit a torn "
         "snapshot";
  EXPECT_EQ(r.findings.count(FindingKind::kMcDeadlock), 0u);
}

}  // namespace
}  // namespace sihle
