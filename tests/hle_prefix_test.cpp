// True XACQUIRE/XRELEASE elision semantics (§3 and Appendix A).
//
// These tests exercise the prefix-level HLE model rather than the RTM
// emulation the schemes use: the elided acquire places the lock's line in
// the read set only, the transaction sees the lock as locally taken, and
// the XRELEASE store must restore the pre-acquire value or the elision
// cannot commit.  They demonstrate the paper's Appendix-A point directly:
// MCS and TTAS elide as-is; the plain ticket and CLH locks abort at commit;
// the adjusted variants elide cleanly.
#include <gtest/gtest.h>

#include "elision/schemes.h"
#include "locks/locks.h"
#include "runtime/ctx.h"

namespace sihle {
namespace {

using htm::AbortCause;
using htm::AbortStatus;
using runtime::Ctx;
using runtime::LineHandle;
using runtime::Machine;

struct Counter {
  LineHandle line;
  mem::Shared<std::uint64_t> value;
  explicit Counter(Machine& m) : line(m), value(line.line(), 0) {}
};

template <class Lock>
sim::Task<void> hle_cs_body(Ctx& c, Lock& lock, Counter& cnt) {
  co_await lock.hle_acquire(c);
  const std::uint64_t v = co_await c.load(cnt.value);
  co_await c.store(cnt.value, v + 1);
  co_await lock.hle_release(c);
}

template <class Lock>
sim::Task<void> solo_hle_txn(Ctx& c, Lock& lock, Counter& cnt, AbortStatus* out) {
  *out = co_await c.with_tx([&c, &lock, &cnt] { return hle_cs_body(c, lock, cnt); });
}

// Expectation parameterized over the lock: does a solo elided critical
// section commit?
template <class Lock>
AbortStatus run_solo(Machine& m, Lock& lock, Counter& cnt) {
  AbortStatus status{};
  m.spawn([&](Ctx& c) { return solo_hle_txn(c, lock, cnt, &status); });
  m.run();
  return status;
}

TEST(HlePrefix, TtasElidesAndCommits) {
  Machine m;
  locks::TTASLock lock(m);
  Counter cnt(m);
  const AbortStatus s = run_solo(m, lock, cnt);
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(cnt.value.debug_value(), 1u);
  EXPECT_FALSE(lock.debug_locked());  // the lock was never globally written
}

TEST(HlePrefix, McsElidesAndCommits) {
  Machine m;
  locks::MCSLock lock(m);
  Counter cnt(m);
  const AbortStatus s = run_solo(m, lock, cnt);
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(cnt.value.debug_value(), 1u);
  EXPECT_FALSE(lock.debug_locked());
}

TEST(HlePrefix, PlainTicketCannotCommitElision) {
  Machine m;
  locks::TicketLock lock(m);
  Counter cnt(m);
  const AbortStatus s = run_solo(m, lock, cnt);
  EXPECT_EQ(s.cause, AbortCause::kExplicit);
  EXPECT_EQ(s.code, htm::Htm::kAbortCodeHleMismatch);
  EXPECT_EQ(cnt.value.debug_value(), 0u);  // nothing published
  EXPECT_EQ(lock.debug_next(), 0u);        // and the lock untouched
  EXPECT_EQ(lock.debug_owner(), 0u);
}

TEST(HlePrefix, ElidableTicketElidesAndCommits) {
  Machine m;
  locks::ElidableTicketLock lock(m);
  Counter cnt(m);
  const AbortStatus s = run_solo(m, lock, cnt);
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(cnt.value.debug_value(), 1u);
  EXPECT_EQ(lock.debug_next(), 0u);  // state restored bit-for-bit
  EXPECT_EQ(lock.debug_owner(), 0u);
}

TEST(HlePrefix, PlainClhCannotCommitElision) {
  Machine m;
  locks::CLHLock lock(m);
  Counter cnt(m);
  const AbortStatus s = run_solo(m, lock, cnt);
  EXPECT_EQ(s.cause, AbortCause::kExplicit);
  EXPECT_EQ(s.code, htm::Htm::kAbortCodeHleMismatch);
  EXPECT_EQ(cnt.value.debug_value(), 0u);
}

TEST(HlePrefix, ElidableClhElidesAndCommits) {
  Machine m;
  locks::ElidableCLHLock lock(m);
  Counter cnt(m);
  const void* initial_tail = lock.debug_tail();
  const AbortStatus s = run_solo(m, lock, cnt);
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(cnt.value.debug_value(), 1u);
  EXPECT_EQ(lock.debug_tail(), initial_tail);
}

TEST(HlePrefix, PlainAndersonCannotCommitElision) {
  Machine m;
  locks::AndersonLock lock(m);
  Counter cnt(m);
  const AbortStatus s = run_solo(m, lock, cnt);
  EXPECT_EQ(s.cause, AbortCause::kExplicit);
  EXPECT_EQ(s.code, htm::Htm::kAbortCodeHleMismatch);
  EXPECT_EQ(cnt.value.debug_value(), 0u);
  EXPECT_EQ(lock.debug_tail(), 0u);
}

TEST(HlePrefix, ElidableAndersonElidesAndCommits) {
  Machine m;
  locks::ElidableAndersonLock lock(m);
  Counter cnt(m);
  const AbortStatus s = run_solo(m, lock, cnt);
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(cnt.value.debug_value(), 1u);
  EXPECT_EQ(lock.debug_tail(), 0u);  // state restored bit-for-bit
}

// The local illusion: inside the transaction the lock reads as taken, while
// memory still holds the free value.
sim::Task<void> illusion_body(Ctx& c, locks::TTASLock& lock,
                              mem::Shared<std::uint64_t>& probe,
                              std::uint64_t* seen) {
  co_await lock.hle_acquire(c);
  *seen = co_await c.load(probe);  // reads the lock cell transactionally
  co_await lock.hle_release(c);
}

TEST(HlePrefix, TransactionSeesLockAsTaken) {
  Machine m;
  locks::TTASLock lock(m);
  // Probe the lock's own cell through a second Shared handle on the same
  // line is not possible from outside; instead verify via is_locked, which
  // reads the same cell.
  std::uint64_t inside = 0;
  AbortStatus status{};
  m.spawn([&](Ctx& c) -> sim::Task<void> {
    return [](Ctx& cc, locks::TTASLock& l, std::uint64_t* in,
              AbortStatus* st) -> sim::Task<void> {
      *st = co_await cc.with_tx([&cc, &l, in] {
        return [](Ctx& c2, locks::TTASLock& l2, std::uint64_t* in2) -> sim::Task<void> {
          co_await l2.hle_acquire(c2);
          const bool locked = co_await l2.is_locked(c2);
          *in2 = locked ? 1 : 0;  // the illusion: looks taken from inside
          co_await l2.hle_release(c2);
        }(cc, l, in);
      });
    }(c, lock, &inside, &status);
  });
  m.run();
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(inside, 1u);
  EXPECT_FALSE(lock.debug_locked());  // but memory never saw the store
}

// Concurrency with fallback: threads run true-HLE TTAS critical sections
// and fall back to a real acquisition after an abort (the hardware
// re-executing the XACQUIRE).  The counter invariant must hold and the
// majority of operations elide.
template <class Lock>
sim::Task<void> hle_worker(Ctx& c, Lock& lock, Counter& cnt, int ops,
                           stats::OpStats& st) {
  for (int i = 0; i < ops; ++i) {
    const bool waited = co_await lock.wait_until_free(c);
    (void)waited;
    const AbortStatus s =
        co_await c.with_tx([&c, &lock, &cnt] { return hle_cs_body(c, lock, cnt); });
    if (s.ok()) {
      st.spec_commits++;
      continue;
    }
    st.record_abort(s);
    co_await lock.acquire(c);
    const std::uint64_t v = co_await c.load(cnt.value);
    co_await c.store(cnt.value, v + 1);
    co_await lock.release(c);
    st.nonspec++;
  }
}

TEST(HlePrefix, ConcurrentTtasKeepsInvariant) {
  Machine::Config cfg;
  cfg.seed = 13;
  Machine m(cfg);
  locks::TTASLock lock(m);
  Counter cnt(m);
  std::vector<stats::OpStats> st(6);
  for (int t = 0; t < 6; ++t) {
    m.spawn([&, t](Ctx& c) {
      return hle_worker<locks::TTASLock>(c, lock, cnt, 200, st[t]);
    });
  }
  m.run();
  EXPECT_EQ(cnt.value.debug_value(), 6u * 200u);
  stats::OpStats total;
  for (auto& s : st) total += s;
  EXPECT_EQ(total.ops(), 6u * 200u);
}

TEST(HlePrefix, ConcurrentElidableTicketKeepsInvariant) {
  Machine::Config cfg;
  cfg.seed = 14;
  Machine m(cfg);
  locks::ElidableTicketLock lock(m);
  Counter cnt(m);
  std::vector<stats::OpStats> st(6);
  for (int t = 0; t < 6; ++t) {
    m.spawn([&, t](Ctx& c) {
      return hle_worker<locks::ElidableTicketLock>(c, lock, cnt, 200, st[t]);
    });
  }
  m.run();
  EXPECT_EQ(cnt.value.debug_value(), 6u * 200u);
}

}  // namespace
}  // namespace sihle
