// Property tests for the Replicates statistics module (src/exp/replicates.h)
// and golden-file round-trip of the versioned results JSON schema
// (src/exp/results.h).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <string>

#include "exp/replicates.h"
#include "exp/results.h"
#include "sim/rng.h"

namespace sihle {
namespace {

TEST(Replicates, ConstantSamplesHaveZeroSpreadAndCollapsedCi) {
  exp::Replicates r;
  for (int i = 0; i < 7; ++i) r.add(42.5);
  const exp::SummaryStats s = r.summarize();
  EXPECT_EQ(s.n, 7u);
  EXPECT_DOUBLE_EQ(s.mean, 42.5);
  EXPECT_DOUBLE_EQ(s.median, 42.5);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.ci_lo, 42.5);
  EXPECT_DOUBLE_EQ(s.ci_hi, 42.5);
  EXPECT_DOUBLE_EQ(s.ci_width(), 0.0);
}

TEST(Replicates, EmptyAndSingleSampleDegenerateCleanly) {
  exp::Replicates empty;
  const exp::SummaryStats se = empty.summarize();
  EXPECT_EQ(se.n, 0u);
  EXPECT_DOUBLE_EQ(se.mean, 0.0);

  exp::Replicates one;
  one.add(3.25);
  const exp::SummaryStats s1 = one.summarize();
  EXPECT_EQ(s1.n, 1u);
  EXPECT_DOUBLE_EQ(s1.mean, 3.25);
  EXPECT_DOUBLE_EQ(s1.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s1.ci_lo, 3.25);
  EXPECT_DOUBLE_EQ(s1.ci_hi, 3.25);
}

TEST(Replicates, MedianOddAndEven) {
  exp::Replicates odd({5.0, 1.0, 3.0});
  EXPECT_DOUBLE_EQ(odd.median(), 3.0);
  exp::Replicates even({4.0, 1.0, 3.0, 2.0});
  EXPECT_DOUBLE_EQ(even.median(), 2.5);
}

TEST(Replicates, MinOfKIsMonotoneNonIncreasingInK) {
  sim::Rng rng(7);
  exp::Replicates r;
  for (int i = 0; i < 50; ++i) r.add(rng.uniform() * 100.0);
  for (std::size_t k = 1; k < r.size(); ++k) {
    EXPECT_LE(r.min_of(k + 1), r.min_of(k)) << "k=" << k;
  }
  // Saturates at the full-sample minimum.
  EXPECT_DOUBLE_EQ(r.min_of(1000), r.min_of(r.size()));
  EXPECT_DOUBLE_EQ(r.min_of(r.size()), r.summarize().min);
}

TEST(Replicates, BootstrapCiIsDeterministic) {
  sim::Rng rng(11);
  exp::Replicates r;
  for (int i = 0; i < 20; ++i) r.add(rng.uniform());
  double lo1 = 0.0;
  double hi1 = 0.0;
  double lo2 = 0.0;
  double hi2 = 0.0;
  r.bootstrap_ci(lo1, hi1);
  r.bootstrap_ci(lo2, hi2);
  EXPECT_DOUBLE_EQ(lo1, lo2);
  EXPECT_DOUBLE_EQ(hi1, hi2);
  EXPECT_LT(lo1, hi1);
  EXPECT_LE(lo1, r.mean());
  EXPECT_GE(hi1, r.mean());
}

// Coverage property: across many synthetic draws, the bootstrap 95% CI
// should contain the true mean in roughly 95% of trials.  n=20 percentile
// bootstrap under-covers slightly, so assert a conservative floor; the run
// is fully deterministic, so this cannot flake.
TEST(Replicates, BootstrapCiCoversTrueMeanOnSyntheticDistributions) {
  // Uniform[0, 1): true mean 0.5.
  {
    int covered = 0;
    const int trials = 60;
    for (int t = 0; t < trials; ++t) {
      sim::Rng rng(1000 + static_cast<std::uint64_t>(t));
      exp::Replicates r;
      for (int i = 0; i < 20; ++i) r.add(rng.uniform());
      double lo = 0.0;
      double hi = 0.0;
      r.bootstrap_ci(lo, hi);
      if (lo <= 0.5 && 0.5 <= hi) ++covered;
    }
    EXPECT_GE(covered, trials * 80 / 100) << "uniform coverage " << covered;
  }
  // Skewed (exponential, rate 1): true mean 1.0.
  {
    int covered = 0;
    const int trials = 60;
    for (int t = 0; t < trials; ++t) {
      sim::Rng rng(5000 + static_cast<std::uint64_t>(t));
      exp::Replicates r;
      for (int i = 0; i < 30; ++i) r.add(-std::log(1.0 - rng.uniform()));
      double lo = 0.0;
      double hi = 0.0;
      r.bootstrap_ci(lo, hi);
      if (lo <= 1.0 && 1.0 <= hi) ++covered;
    }
    EXPECT_GE(covered, trials * 75 / 100) << "exponential coverage " << covered;
  }
}

// --- Results schema ---------------------------------------------------------

exp::ExperimentDoc synthetic_doc() {
  // Built through the same path the benches use (spec + engine results →
  // make_doc) so the golden file pins the real production schema.
  exp::ExperimentSpec spec;
  spec.name = "golden";
  spec.replicates = 3;
  spec.base_seed = 1;
  for (int i = 0; i < 2; ++i) {
    exp::Cell cell;
    cell.axes = {{"scheme", i == 0 ? "HLE" : "SLR-SCM"}, {"threads", "8"}};
    cell.id = exp::axes_id(cell.axes);
    cell.run = [i](std::uint64_t seed) {
      const double base = i == 0 ? 10.0 : 30.0;
      return exp::MetricList{
          {"ops_per_mcycle", base + 0.25 * static_cast<double>(seed)},
          {"nonspec_fraction", 0.5 / static_cast<double>(seed + 1)},
      };
    };
    spec.cells.push_back(std::move(cell));
  }
  return exp::make_doc(spec, exp::run_experiment(spec, {1}));
}

TEST(ResultsSchema, SerializeParseRoundTripIsExact) {
  const exp::ExperimentDoc doc = synthetic_doc();
  const std::string text = exp::results_json(doc);
  exp::ExperimentDoc parsed;
  std::string error;
  ASSERT_TRUE(exp::parse_results_json(text, parsed, &error)) << error;
  EXPECT_EQ(parsed.experiment, "golden");
  EXPECT_EQ(parsed.replicates, 3);
  EXPECT_EQ(parsed.base_seed, 1u);
  ASSERT_EQ(parsed.cells.size(), 2u);
  EXPECT_EQ(parsed.cells[0].id, "scheme=HLE/threads=8");
  const exp::MetricRecord* m = parsed.cells[0].find_metric("ops_per_mcycle");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->samples, (std::vector<double>{10.25, 10.5, 10.75}));
  EXPECT_DOUBLE_EQ(m->stats.mean, 10.5);
  // Byte-exact fixed point: re-serializing the parse reproduces the text.
  EXPECT_EQ(exp::results_json(parsed), text);
}

TEST(ResultsSchema, HostMetadataIsOptionalAndRoundTrips) {
  // Not recorded (the deterministic-grid default): the fields are absent
  // from the document, so byte-reproducibility across hosts is preserved,
  // and a pre-metadata document parses with both fields zero.
  const exp::ExperimentDoc bare = synthetic_doc();
  const std::string bare_text = exp::results_json(bare);
  EXPECT_EQ(bare_text.find("host_threads"), std::string::npos);
  EXPECT_EQ(bare_text.find("hw_concurrency"), std::string::npos);
  exp::ExperimentDoc bare_parsed;
  std::string error;
  ASSERT_TRUE(exp::parse_results_json(bare_text, bare_parsed, &error)) << error;
  EXPECT_EQ(bare_parsed.host_threads, 0);
  EXPECT_EQ(bare_parsed.hw_concurrency, 0);

  // Recorded (wall-clock benches): emitted, parsed back, byte-exact fixed
  // point like every other field.
  exp::ExperimentDoc doc = synthetic_doc();
  doc.host_threads = 8;
  doc.hw_concurrency = 16;
  const std::string text = exp::results_json(doc);
  exp::ExperimentDoc parsed;
  ASSERT_TRUE(exp::parse_results_json(text, parsed, &error)) << error;
  EXPECT_EQ(parsed.host_threads, 8);
  EXPECT_EQ(parsed.hw_concurrency, 16);
  EXPECT_EQ(exp::results_json(parsed), text);
}

TEST(ResultsSchema, GoldenFileRoundTrip) {
  const std::string path =
      std::string(SIHLE_TEST_DATA_DIR) + "/results_v1_golden.json";
  const std::string expected = exp::results_json(synthetic_doc());
  if (std::getenv("SIHLE_REGEN_GOLDEN") != nullptr) {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr) << "cannot regenerate " << path;
    std::fwrite(expected.data(), 1, expected.size(), f);
    std::fclose(f);
  }
  exp::ExperimentDoc parsed;
  std::string error;
  ASSERT_TRUE(exp::load_results_file(path, parsed, &error)) << error;
  // The committed golden must byte-match today's writer, and parsing it
  // must reproduce the exact document (schema is stable in both directions).
  EXPECT_EQ(exp::results_json(parsed), expected);
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string on_disk;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) on_disk.append(buf, n);
  std::fclose(f);
  EXPECT_EQ(on_disk, expected)
      << "golden drift: rerun with SIHLE_REGEN_GOLDEN=1 and review the diff";
}

TEST(ResultsSchema, RejectsMalformedDocuments) {
  exp::ExperimentDoc doc;
  std::string error;
  EXPECT_FALSE(exp::parse_results_json("not json", doc, &error));
  EXPECT_FALSE(exp::parse_results_json("{\"version\":2,\"kind\":\"sihle-results\",\"cells\":[]}", doc, &error));
  EXPECT_NE(error.find("version"), std::string::npos);
  EXPECT_FALSE(exp::parse_results_json("{\"version\":1,\"kind\":\"other\",\"cells\":[]}", doc, &error));
  EXPECT_FALSE(exp::parse_results_json("{\"version\":1,\"kind\":\"sihle-results\"}", doc, &error));
  EXPECT_FALSE(exp::load_results_file("/nonexistent/x.json", doc, &error));
}

}  // namespace
}  // namespace sihle
