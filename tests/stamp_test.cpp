// STAMP kernel validation: every application must pass its own semantic
// check under every scheme and both principal locks — aborts, serializing
// paths, SLR zombies and fallbacks must never corrupt application state.
#include <gtest/gtest.h>

#include <string>

#include "stamp/app.h"

namespace sihle {
namespace {

using elision::Scheme;
using locks::LockKind;

struct Param {
  const char* app;
  Scheme scheme;
  LockKind lock;
};

class StampValidation : public ::testing::TestWithParam<Param> {};

TEST_P(StampValidation, RunsAndValidates) {
  const Param p = GetParam();
  const stamp::StampApp* app = nullptr;
  for (const auto& a : stamp::stamp_apps()) {
    if (std::string(a.name) == p.app) app = &a;
  }
  ASSERT_NE(app, nullptr);

  stamp::StampConfig cfg;
  cfg.scheme = p.scheme;
  cfg.lock = p.lock;
  cfg.scale = 0.25;  // small but complete instance
  cfg.seed = 17;
  const auto r = app->run(cfg);
  EXPECT_TRUE(r.valid) << p.app;
  EXPECT_GT(r.stats.ops(), 0u);
  EXPECT_GT(r.time, 0u);
}

std::vector<Param> all_params() {
  std::vector<Param> out;
  for (const auto& app : stamp::stamp_apps()) {
    for (Scheme s : elision::kAllSchemes) {
      out.push_back({app.name, s, LockKind::kTtas});
      out.push_back({app.name, s, LockKind::kMcs});
    }
  }
  return out;
}

std::string param_name(const ::testing::TestParamInfo<Param>& info) {
  std::string name = std::string(info.param.app) + "_" +
                     elision::to_string(info.param.scheme) + "_" +
                     locks::to_string(info.param.lock);
  for (char& ch : name) {
    if (ch == '-' || ch == ' ') ch = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(AllAppsAllSchemes, StampValidation,
                         ::testing::ValuesIn(all_params()), param_name);

// Determinism: the same configuration twice gives the identical makespan
// and statistics.
TEST(StampDeterminism, IdenticalConfigIdenticalRun) {
  stamp::StampConfig cfg;
  cfg.scheme = Scheme::kOptSlr;
  cfg.lock = LockKind::kTtas;
  cfg.scale = 0.25;
  cfg.seed = 5;
  const auto a = stamp::run_intruder(cfg);
  const auto b = stamp::run_intruder(cfg);
  EXPECT_EQ(a.time, b.time);
  EXPECT_EQ(a.stats.ops(), b.stats.ops());
  EXPECT_EQ(a.stats.aborts, b.stats.aborts);
}

// Scale control: a larger instance takes longer in virtual time.
TEST(StampScale, ScaleIncreasesWork) {
  stamp::StampConfig cfg;
  cfg.scheme = Scheme::kStandard;
  cfg.lock = LockKind::kTtas;
  cfg.seed = 5;
  cfg.scale = 0.25;
  const auto small = stamp::run_ssca2(cfg);
  cfg.scale = 0.5;
  const auto big = stamp::run_ssca2(cfg);
  EXPECT_GT(big.time, small.time);
  EXPECT_GT(big.stats.ops(), small.stats.ops());
}

}  // namespace
}  // namespace sihle
