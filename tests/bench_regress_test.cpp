// Unit tests for the benchmark-regression gate logic (src/exp/regress.h):
// crafted baseline/candidate pairs that must pass (CI overlap / within
// noise), must fail (clear regression), and must warn (widened CI, missing
// cell or metric).  Runs under the `regress` ctest label.
#include <gtest/gtest.h>

#include "exp/regress.h"
#include "exp/results.h"

namespace sihle {
namespace {

exp::CellRecord make_cell(const std::string& id, const std::string& metric,
                          double mean, double half_width) {
  exp::CellRecord cell;
  cell.id = id;
  exp::MetricRecord m;
  m.samples = {mean - half_width, mean, mean + half_width};
  m.stats.n = 3;
  m.stats.mean = mean;
  m.stats.median = mean;
  m.stats.min = mean - half_width;
  m.stats.max = mean + half_width;
  m.stats.ci_lo = mean - half_width;
  m.stats.ci_hi = mean + half_width;
  cell.metrics.emplace_back(metric, std::move(m));
  return cell;
}

exp::ExperimentDoc doc_with(std::vector<exp::CellRecord> cells) {
  exp::ExperimentDoc doc;
  doc.experiment = "test";
  doc.replicates = 3;
  doc.cells = std::move(cells);
  return doc;
}

TEST(BenchRegress, IdenticalDocumentsPass) {
  const auto doc = doc_with({make_cell("a", "ops_per_mcycle", 100.0, 1.0),
                             make_cell("b", "ops_per_mcycle", 50.0, 0.5)});
  const exp::RegressReport report = exp::compare_results(doc, doc);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.passes, 2u);
  EXPECT_EQ(report.regressions, 0u);
  EXPECT_EQ(report.cells[0].verdict, exp::Verdict::kPass);
  EXPECT_DOUBLE_EQ(report.cells[0].ratio, 1.0);
}

TEST(BenchRegress, ClearRegressionFails) {
  const auto base = doc_with({make_cell("a", "ops_per_mcycle", 100.0, 1.0)});
  const auto cand = doc_with({make_cell("a", "ops_per_mcycle", 70.0, 1.0)});
  const exp::RegressReport report = exp::compare_results(base, cand);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.regressions, 1u);
  EXPECT_EQ(report.cells[0].verdict, exp::Verdict::kRegressed);
  EXPECT_NEAR(report.cells[0].ratio, 0.7, 1e-12);
}

TEST(BenchRegress, WorseMeanWithCiOverlapPasses) {
  // Candidate mean is 10% lower but its CI reaches back into the
  // baseline's: measurement jitter, not a regression.
  const auto base = doc_with({make_cell("a", "ops_per_mcycle", 100.0, 5.0)});
  const auto cand = doc_with({make_cell("a", "ops_per_mcycle", 90.0, 6.0)});
  const exp::RegressReport report = exp::compare_results(base, cand);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.cells[0].verdict, exp::Verdict::kPass);
}

TEST(BenchRegress, SmallSeparatedDeltaWithinNoisePasses) {
  // CIs are disjoint but the relative delta (3%) is below the 5% noise
  // threshold — deterministic runs produce razor-thin CIs, so the noise
  // floor is what keeps tiny shifts from failing the gate.
  const auto base = doc_with({make_cell("a", "ops_per_mcycle", 100.0, 0.1)});
  const auto cand = doc_with({make_cell("a", "ops_per_mcycle", 97.0, 0.1)});
  const exp::RegressReport report = exp::compare_results(base, cand);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.cells[0].verdict, exp::Verdict::kPass);
}

TEST(BenchRegress, SignificantImprovementPassesAndIsReported) {
  const auto base = doc_with({make_cell("a", "ops_per_mcycle", 100.0, 1.0)});
  const auto cand = doc_with({make_cell("a", "ops_per_mcycle", 130.0, 1.0)});
  const exp::RegressReport report = exp::compare_results(base, cand);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.improvements, 1u);
  EXPECT_EQ(report.cells[0].verdict, exp::Verdict::kImproved);
}

TEST(BenchRegress, MissingCellWarnsButPasses) {
  const auto base = doc_with({make_cell("a", "ops_per_mcycle", 100.0, 1.0),
                              make_cell("gone", "ops_per_mcycle", 10.0, 0.1)});
  const auto cand = doc_with({make_cell("a", "ops_per_mcycle", 100.0, 1.0)});
  const exp::RegressReport report = exp::compare_results(base, cand);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.warnings, 1u);
  EXPECT_EQ(report.cells[1].verdict, exp::Verdict::kWarnMissingCell);
}

TEST(BenchRegress, MissingMetricWarnsButPasses) {
  const auto base = doc_with({make_cell("a", "ops_per_mcycle", 100.0, 1.0)});
  const auto cand = doc_with({make_cell("a", "other_metric", 100.0, 1.0)});
  const exp::RegressReport report = exp::compare_results(base, cand);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.warnings, 1u);
  EXPECT_EQ(report.cells[0].verdict, exp::Verdict::kWarnMissingMetric);
}

TEST(BenchRegress, WidenedCandidateCiWarnsButPasses) {
  // Same mean, but the candidate interval ballooned: the host got noisy.
  const auto base = doc_with({make_cell("a", "ops_per_mcycle", 100.0, 0.5)});
  const auto cand = doc_with({make_cell("a", "ops_per_mcycle", 100.0, 20.0)});
  const exp::RegressReport report = exp::compare_results(base, cand);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.warnings, 1u);
  EXPECT_EQ(report.cells[0].verdict, exp::Verdict::kWarnWidenedCi);
}

TEST(BenchRegress, LowerIsBetterFlipsTheDirection) {
  exp::RegressOptions opt;
  opt.metric = "run_cycles";
  opt.higher_is_better = false;
  const auto base = doc_with({make_cell("a", "run_cycles", 1000.0, 10.0)});
  const auto slower = doc_with({make_cell("a", "run_cycles", 1400.0, 10.0)});
  const auto faster = doc_with({make_cell("a", "run_cycles", 700.0, 10.0)});
  EXPECT_FALSE(exp::compare_results(base, slower, opt).ok());
  const exp::RegressReport improved = exp::compare_results(base, faster, opt);
  EXPECT_TRUE(improved.ok());
  EXPECT_EQ(improved.cells[0].verdict, exp::Verdict::kImproved);
}

TEST(BenchRegress, NoiseThresholdIsConfigurable) {
  const auto base = doc_with({make_cell("a", "ops_per_mcycle", 100.0, 0.1)});
  const auto cand = doc_with({make_cell("a", "ops_per_mcycle", 97.0, 0.1)});
  exp::RegressOptions strict;
  strict.noise_rel = 0.01;
  EXPECT_FALSE(exp::compare_results(base, cand, strict).ok());
  exp::RegressOptions lax;
  lax.noise_rel = 0.10;
  EXPECT_TRUE(exp::compare_results(base, cand, lax).ok());
}

TEST(BenchRegress, ZeroBaselineMeanDoesNotDivide) {
  const auto base = doc_with({make_cell("a", "ops_per_mcycle", 0.0, 0.0)});
  const auto cand = doc_with({make_cell("a", "ops_per_mcycle", 0.0, 0.0)});
  const exp::RegressReport report = exp::compare_results(base, cand);
  EXPECT_TRUE(report.ok());
  EXPECT_DOUBLE_EQ(report.cells[0].ratio, 1.0);
}

// An all-zero baseline metric is a recording artifact (a scenario that
// could never produce the metric still exported it); there is no level to
// gate against, so the cell passes with a note — even when the candidate
// lacks the metric entirely (a fixed bench stops exporting it).
TEST(BenchRegress, AllZeroBaselineMetricIsSkippedAsPass) {
  const auto base = doc_with({make_cell("a", "txs_per_sec", 0.0, 0.0)});
  exp::RegressOptions opt;
  opt.metric = "txs_per_sec";
  {
    const auto cand = doc_with({make_cell("a", "txs_per_sec", 0.0, 0.0)});
    const exp::RegressReport report = exp::compare_results(base, cand, opt);
    EXPECT_TRUE(report.ok());
    EXPECT_EQ(report.passes, 1u);
    EXPECT_EQ(report.cells[0].note, "baseline metric all-zero; skipped");
  }
  {
    // Candidate dropped the metric: still a pass, not a missing-metric
    // warning — there was never a real baseline to hold it to.
    const auto cand = doc_with({make_cell("a", "events_per_sec", 10.0, 0.1)});
    const exp::RegressReport report = exp::compare_results(base, cand, opt);
    EXPECT_TRUE(report.ok());
    EXPECT_EQ(report.passes, 1u);
    EXPECT_EQ(report.warnings, 0u);
  }
}

// End-to-end through the serialized schema: what bench_regress (the CLI)
// actually does — parse two documents, compare, report.
TEST(BenchRegress, RoundTripThroughJsonPreservesVerdicts) {
  const auto base = doc_with({make_cell("a", "ops_per_mcycle", 100.0, 1.0),
                              make_cell("b", "ops_per_mcycle", 50.0, 0.5)});
  auto cand = doc_with({make_cell("a", "ops_per_mcycle", 60.0, 1.0),
                        make_cell("b", "ops_per_mcycle", 50.0, 0.5)});
  exp::ExperimentDoc base_parsed;
  exp::ExperimentDoc cand_parsed;
  std::string error;
  ASSERT_TRUE(exp::parse_results_json(exp::results_json(base), base_parsed, &error))
      << error;
  ASSERT_TRUE(exp::parse_results_json(exp::results_json(cand), cand_parsed, &error))
      << error;
  const exp::RegressReport report = exp::compare_results(base_parsed, cand_parsed);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.regressions, 1u);
  EXPECT_EQ(report.passes, 1u);
}

}  // namespace
}  // namespace sihle
