// Multi-lock composability: a program with several independently elided
// locks (the common real-world shape after applying elision to a legacy
// program lock-by-lock).  Schemes on different locks must not interfere:
// aborts on one lock's critical sections leave the other lock's speculation
// untouched, and cross-lock invariants hold.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "elision/schemes.h"
#include "locks/locks.h"
#include "runtime/ctx.h"

namespace sihle {
namespace {

using elision::Scheme;
using runtime::Ctx;
using runtime::LineHandle;
using runtime::Machine;

struct Region {
  LineHandle la, lb;
  mem::Shared<std::uint64_t> a, b;  // invariant: a == b
  explicit Region(Machine& m) : la(m), lb(m), a(la.line(), 0), b(lb.line(), 0) {}
};

sim::Task<void> bump_region(Ctx& c, Region& r) {
  const std::uint64_t va = co_await c.load(r.a);
  co_await c.store(r.a, va + 1);
  co_await c.work(60);
  const std::uint64_t vb = co_await c.load(r.b);
  co_await c.store(r.b, vb + 1);
}

// Each thread alternates between two lock-protected regions; half the
// threads hammer region 0 (conflict-heavy), all touch region 1 lightly.
template <class Lock>
sim::Task<void> two_lock_worker(Ctx& c, Scheme s, Lock& l0, locks::MCSLock& aux0,
                                Lock& l1, locks::MCSLock& aux1, Region& r0,
                                Region& r1, int ops, stats::OpStats& st0,
                                stats::OpStats& st1) {
  for (int i = 0; i < ops; ++i) {
    co_await elision::run_op(s, c, l0, aux0,
                             [&r0](Ctx& cc) { return bump_region(cc, r0); }, st0);
    if (i % 4 == 0) {
      co_await elision::run_op(s, c, l1, aux1,
                               [&r1](Ctx& cc) { return bump_region(cc, r1); }, st1);
    }
  }
}

class MultiLock : public ::testing::TestWithParam<Scheme> {};

TEST_P(MultiLock, IndependentLocksDoNotInterfere) {
  const Scheme s = GetParam();
  Machine::Config cfg;
  cfg.seed = 23;
  cfg.htm.spurious_abort_per_access = 1e-4;
  Machine m(cfg);
  locks::MCSLock l0(m);
  locks::MCSLock l1(m);
  locks::MCSLock aux0(m);
  locks::MCSLock aux1(m);
  Region r0(m);
  Region r1(m);
  const int threads = 8;
  const int ops = 150;
  std::vector<stats::OpStats> st0(threads);
  std::vector<stats::OpStats> st1(threads);
  for (int t = 0; t < threads; ++t) {
    m.spawn([&, t](Ctx& c) {
      return two_lock_worker<locks::MCSLock>(c, s, l0, aux0, l1, aux1, r0, r1, ops,
                                             st0[t], st1[t]);
    });
  }
  m.run();

  // Cross-lock invariants: both regions consistent and fully counted.
  EXPECT_EQ(r0.a.debug_value(), static_cast<std::uint64_t>(threads) * ops);
  EXPECT_EQ(r0.b.debug_value(), static_cast<std::uint64_t>(threads) * ops);
  const std::uint64_t expected1 =
      static_cast<std::uint64_t>(threads) * ((ops + 3) / 4);
  EXPECT_EQ(r1.a.debug_value(), expected1);
  EXPECT_EQ(r1.b.debug_value(), expected1);

  // Isolation: region 1's critical sections (disjoint data, different lock)
  // stay almost entirely speculative even though region 0 is a conflict
  // storm — no cross-lock lemming leak.
  stats::OpStats total1;
  for (auto& x : st1) total1 += x;
  if (s != Scheme::kStandard && s != Scheme::kAdaptive) {
    EXPECT_LT(total1.nonspec_fraction(), 0.1) << elision::to_string(s);
  }
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, MultiLock,
                         ::testing::ValuesIn(elision::kAllSchemesExtended),
                         [](const ::testing::TestParamInfo<Scheme>& info) {
                           std::string n = elision::to_string(info.param);
                           for (char& ch : n) {
                             if (ch == '-' || ch == ' ') ch = '_';
                           }
                           return n;
                         });

}  // namespace
}  // namespace sihle
