// Open-system service layer (src/service/, docs/SERVICE.md): arrival
// determinism, the shared latency histogram's quantile contract, queue
// depth/drop accounting, open-vs-closed saturation equivalence, and
// byte-identity of open runs across host-parallelism knobs.
#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "harness/rbtree_workload.h"
#include "harness/shard_workload.h"
#include "service/arrival.h"
#include "service/dispatcher.h"
#include "service/queue.h"
#include "sim/rng.h"
#include "stats/latency.h"

namespace sihle {
namespace {

using service::ArrivalProcess;
using service::LoadModel;
using service::LoadSpec;
using service::Request;
using service::RequestQueue;
using service::RequestStream;
using stats::LatencyHistogram;

LoadSpec poisson_spec(double offered, std::uint64_t requests) {
  LoadSpec s;
  s.model = LoadModel::kPoisson;
  s.offered_ops_per_mcycle = offered;
  s.requests = requests;
  return s;
}

// --- Arrival processes ------------------------------------------------------

TEST(Arrival, SameSeedSameSequence) {
  const LoadSpec spec = poisson_spec(1000.0, 0);
  ArrivalProcess a(spec, 42), b(spec, 42);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next(), b.next()) << "diverged at arrival " << i;
  }
}

TEST(Arrival, SeedChangesSequence) {
  const LoadSpec spec = poisson_spec(1000.0, 0);
  ArrivalProcess a(spec, 1), b(spec, 2);
  bool differs = false;
  for (int i = 0; i < 100 && !differs; ++i) differs = a.next() != b.next();
  EXPECT_TRUE(differs);
}

TEST(Arrival, NonDecreasingTimestamps) {
  for (const LoadModel m :
       {LoadModel::kUniform, LoadModel::kPoisson, LoadModel::kOnOff}) {
    LoadSpec spec = poisson_spec(2000.0, 0);
    spec.model = m;
    ArrivalProcess arr(spec, 7);
    sim::Cycles prev = 0;
    for (int i = 0; i < 2000; ++i) {
      const sim::Cycles t = arr.next();
      ASSERT_GE(t, prev) << to_string(m) << " went backwards at " << i;
      prev = t;
    }
  }
}

TEST(Arrival, UniformIsFixedSpacing) {
  LoadSpec spec = poisson_spec(1000.0, 0);  // mean gap 1000 cycles
  spec.model = LoadModel::kUniform;
  ArrivalProcess arr(spec, 9);
  sim::Cycles prev = arr.next();
  EXPECT_EQ(prev, 1000u);
  for (int i = 0; i < 50; ++i) {
    const sim::Cycles t = arr.next();
    EXPECT_EQ(t - prev, 1000u);
    prev = t;
  }
}

TEST(Arrival, PoissonMeanRateApproximatesOffered) {
  const double offered = 2000.0;  // mean gap 500 cycles
  const int n = 20000;
  ArrivalProcess arr(poisson_spec(offered, 0), 11);
  sim::Cycles last = 0;
  for (int i = 0; i < n; ++i) last = arr.next();
  const double mean_gap = static_cast<double>(last) / n;
  EXPECT_NEAR(mean_gap, 1e6 / offered, 0.05 * (1e6 / offered));
}

TEST(Arrival, OnOffArrivalsLandInOnPhases) {
  LoadSpec spec = poisson_spec(5000.0, 0);
  spec.model = LoadModel::kOnOff;
  spec.on_cycles = 10'000;
  spec.off_cycles = 30'000;
  ArrivalProcess arr(spec, 13);
  const sim::Cycles period = spec.on_cycles + spec.off_cycles;
  for (int i = 0; i < 5000; ++i) {
    const sim::Cycles t = arr.next();
    EXPECT_LT(t % period, spec.on_cycles) << "arrival " << i << " at " << t
                                          << " fell into an off phase";
  }
}

// --- LatencyHistogram -------------------------------------------------------

TEST(LatencyHistogram, BucketBoundsAreConsistent) {
  for (sim::Cycles v :
       {sim::Cycles{0}, sim::Cycles{1}, sim::Cycles{31}, sim::Cycles{32},
        sim::Cycles{63}, sim::Cycles{64}, sim::Cycles{1000},
        sim::Cycles{1} << 40, (sim::Cycles{1} << 40) + 12345}) {
    const std::size_t b = LatencyHistogram::bucket_of(v);
    ASSERT_LT(b, LatencyHistogram::kBuckets);
    EXPECT_LE(LatencyHistogram::bucket_lower(b), v);
    EXPECT_GE(LatencyHistogram::bucket_upper(b), v);
  }
}

TEST(LatencyHistogram, SmallValuesExact) {
  LatencyHistogram h;
  for (sim::Cycles v = 0; v < LatencyHistogram::kSubBuckets; ++v) h.record(v);
  for (sim::Cycles v = 0; v < LatencyHistogram::kSubBuckets; ++v) {
    const double p =
        static_cast<double>(v + 1) / LatencyHistogram::kSubBuckets;
    EXPECT_EQ(h.percentile(p), v);
  }
}

// The documented contract against a sorted reference:
//   true_quantile <= percentile(p) <= true_quantile * (1 + 1/32) + 1
TEST(LatencyHistogram, QuantileContractVsSortedReference) {
  sim::Rng rng(12345);  // seed fixed for reproducibility
  LatencyHistogram h;
  std::vector<sim::Cycles> samples;
  for (int i = 0; i < 50000; ++i) {
    // Heavy-tailed-ish mix covering several octaves.
    const sim::Cycles v = rng.below(1u << (1 + rng.below(20)));
    samples.push_back(v);
    h.record(v);
  }
  std::sort(samples.begin(), samples.end());
  for (const double p : {0.01, 0.10, 0.50, 0.90, 0.99, 0.999, 1.0}) {
    const std::size_t rank = static_cast<std::size_t>(
        std::ceil(p * static_cast<double>(samples.size())));
    const sim::Cycles truth = samples[rank - 1];
    const sim::Cycles est = h.percentile(p);
    EXPECT_GE(est, truth) << "p=" << p;
    EXPECT_LE(static_cast<double>(est),
              static_cast<double>(truth) * (1.0 + 1.0 / 32.0) + 1.0)
        << "p=" << p;
  }
  EXPECT_EQ(h.count(), samples.size());
  EXPECT_EQ(h.max_value(), samples.back());
}

TEST(LatencyHistogram, MergeEqualsConcatenation) {
  sim::Rng rng(99);  // seed fixed for reproducibility
  LatencyHistogram a, b, all;
  for (int i = 0; i < 5000; ++i) {
    const sim::Cycles v = rng.below(1 << 16);
    (i % 2 == 0 ? a : b).record(v);
    all.record(v);
  }
  a += b;
  EXPECT_EQ(a, all);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_DOUBLE_EQ(a.mean(), all.mean());
}

TEST(LatencyHistogram, EmptyReportsZero) {
  const LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.percentile(0.5), 0u);
  EXPECT_EQ(h.max_value(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

// --- RequestQueue -----------------------------------------------------------

RequestStream stream_at(std::initializer_list<sim::Cycles> arrivals) {
  RequestStream s;
  std::uint64_t seq = 0;
  for (const sim::Cycles at : arrivals) {
    Request r;
    r.seq = seq++;
    r.arrival = at;
    s.push_back(r);
  }
  return s;
}

// Depth accounting under a pinned claim schedule: every ingest point and
// its resulting backlog depth is enumerated by hand.
TEST(RequestQueue, DepthAccountingUnderPinnedSchedule) {
  RequestQueue q(stream_at({10, 20, 30, 40, 100}), /*capacity=*/0);
  EXPECT_EQ(q.next_arrival(), 10u);
  EXPECT_EQ(q.depth(), 0u);

  auto [r0, ok0] = q.claim(35);  // ingests 10,20,30 -> depth 3, pops one
  ASSERT_TRUE(ok0);
  EXPECT_EQ(r0.arrival, 10u);
  EXPECT_EQ(q.depth(), 2u);
  EXPECT_EQ(q.stats().max_depth, 3u);
  EXPECT_EQ(q.next_arrival(), 40u);

  auto [r1, ok1] = q.claim(35);
  ASSERT_TRUE(ok1);
  EXPECT_EQ(r1.arrival, 20u);

  auto [r2, ok2] = q.claim(60);  // ingests 40 -> depth 2, pops 30
  ASSERT_TRUE(ok2);
  EXPECT_EQ(r2.arrival, 30u);
  EXPECT_EQ(q.depth(), 1u);
  EXPECT_EQ(q.stats().max_depth, 3u);

  auto [r3, ok3] = q.claim(60);
  ASSERT_TRUE(ok3);
  EXPECT_EQ(r3.arrival, 40u);
  EXPECT_FALSE(q.claim(60).second);  // backlog empty, 100 not yet arrived
  EXPECT_FALSE(q.exhausted());
  EXPECT_EQ(q.next_arrival(), 100u);

  auto [r4, ok4] = q.claim(100);
  ASSERT_TRUE(ok4);
  EXPECT_EQ(r4.arrival, 100u);
  EXPECT_TRUE(q.exhausted());
  EXPECT_EQ(q.stats().offered, 5u);
  EXPECT_EQ(q.stats().admitted, 5u);
  EXPECT_EQ(q.stats().served, 5u);
  EXPECT_EQ(q.stats().dropped, 0u);
}

// Server clocks within a pool advance independently: a laggard may claim
// from a backlog its faster peer ingested from the future of its own
// timeline.  It must not be handed a request that has not arrived by its
// own clock — that would start (and finish) the request before its arrival
// and underflow every latency component.
TEST(RequestQueue, LaggardClaimWaitsForArrival) {
  RequestQueue q(stream_at({10, 40}), /*capacity=*/0);
  auto [r0, ok0] = q.claim(50);  // fast server: ingests both, pops 10
  ASSERT_TRUE(ok0);
  EXPECT_EQ(r0.arrival, 10u);
  EXPECT_EQ(q.depth(), 1u);

  EXPECT_FALSE(q.claim(20).second);  // laggard at 20: 40 hasn't arrived yet
  EXPECT_EQ(q.depth(), 1u);
  EXPECT_EQ(q.next_ready(), 40u);  // ...so it sleeps until 40

  auto [r1, ok1] = q.claim(40);
  ASSERT_TRUE(ok1);
  EXPECT_EQ(r1.arrival, 40u);
  EXPECT_TRUE(q.exhausted());
  EXPECT_EQ(q.next_ready(), service::kNever);
}

TEST(RequestQueue, BoundedQueueShedsBeyondCapacity) {
  RequestQueue q(stream_at({1, 2, 3, 4, 5}), /*capacity=*/2);
  auto [r, ok] = q.claim(10);  // ingest all five: admit 1,2; drop 3,4,5
  ASSERT_TRUE(ok);
  EXPECT_EQ(r.arrival, 1u);
  EXPECT_EQ(q.stats().admitted, 2u);
  EXPECT_EQ(q.stats().dropped, 3u);
  EXPECT_EQ(q.stats().max_depth, 2u);
  EXPECT_TRUE(q.claim(10).second);
  EXPECT_FALSE(q.claim(10).second);
  EXPECT_TRUE(q.exhausted());
  EXPECT_EQ(q.stats().served, 2u);
}

// --- Request streams --------------------------------------------------------

TEST(RequestStreams, DeterministicAndRoutedByKey) {
  service::StreamConfig sc;
  sc.load = poisson_spec(3000.0, 2000);
  sc.load.sessions = 64;
  sc.keyspace = 1024;
  sc.zipf_s = 0.9;
  sc.queues = 4;
  sc.route = &harness::shard_of_key;
  sc.seed = 17;
  const auto a = service::build_request_streams(sc);
  const auto b = service::build_request_streams(sc);
  ASSERT_EQ(a.size(), 4u);
  std::uint64_t total = 0;
  for (std::size_t q = 0; q < a.size(); ++q) {
    ASSERT_EQ(a[q].size(), b[q].size());
    sim::Cycles prev = 0;
    for (std::size_t i = 0; i < a[q].size(); ++i) {
      const Request& r = a[q][i];
      EXPECT_EQ(r.arrival, b[q][i].arrival);
      EXPECT_EQ(r.key, b[q][i].key);
      EXPECT_EQ(harness::shard_of_key(static_cast<std::int64_t>(r.key), 4), q);
      EXPECT_EQ(r.seq, i);
      EXPECT_GE(r.arrival, prev);
      EXPECT_LT(r.session, sc.load.sessions);
      prev = r.arrival;
    }
    total += a[q].size();
  }
  EXPECT_EQ(total, sc.load.requests);
}

// --- Open-mode workloads ----------------------------------------------------

harness::WorkloadConfig small_tree_cfg() {
  harness::WorkloadConfig cfg;
  cfg.threads = 4;
  cfg.tree_size = 64;
  cfg.update_pct = 20;
  cfg.seed = 3;
  cfg.duration = 400'000;
  return cfg;
}

TEST(OpenWorkload, LatencySplitAndConservation) {
  harness::WorkloadConfig cfg = small_tree_cfg();
  cfg.load.model = LoadModel::kPoisson;
  cfg.load.offered_ops_per_mcycle = 2000.0;
  cfg.load.requests = 1500;
  cfg.load.sessions = 32;
  const auto r = harness::run_rbtree_workload(cfg);
  EXPECT_TRUE(r.tree_valid);
  // Every request was served (unbounded queue) and every served request
  // contributed one sample to each series.
  EXPECT_EQ(r.open.queue.offered, cfg.load.requests);
  EXPECT_EQ(r.open.queue.served, cfg.load.requests);
  EXPECT_EQ(r.open.queue.dropped, 0u);
  EXPECT_EQ(r.open.sojourn.count(), cfg.load.requests);
  EXPECT_EQ(r.open.qdelay.count(), cfg.load.requests);
  EXPECT_EQ(r.open.service.count(), cfg.load.requests);
  EXPECT_EQ(r.stats.ops(), cfg.load.requests);
  // latency is the sojourn series in open mode.
  EXPECT_EQ(r.latency, r.open.sojourn);
  // sojourn = qdelay + service, per sample: means add exactly.
  EXPECT_NEAR(r.open.sojourn.mean(),
              r.open.qdelay.mean() + r.open.service.mean(), 1e-9);
  // The sojourn tail cannot be shorter than the service tail.
  EXPECT_GE(r.open.sojourn.percentile(0.99),
            r.open.service.percentile(0.99));
  // Causality: no sample can exceed the run's own span (an unsigned
  // underflow in done - arrival would blow past this by ~2^63).
  EXPECT_LE(r.open.sojourn.max_value(), r.elapsed);
  EXPECT_LE(r.open.qdelay.max_value(), r.elapsed);
}

TEST(OpenWorkload, SessionAccountingConserved) {
  harness::WorkloadConfig cfg = small_tree_cfg();
  cfg.load.model = LoadModel::kPoisson;
  cfg.load.offered_ops_per_mcycle = 8000.0;  // well past capacity
  cfg.load.requests = 1200;
  cfg.load.sessions = 16;
  cfg.load.queue_capacity = 24;  // force drops
  const auto r = harness::run_rbtree_workload(cfg);
  EXPECT_GT(r.open.queue.dropped, 0u);
  EXPECT_EQ(r.open.queue.served + r.open.queue.dropped, cfg.load.requests);
  ASSERT_EQ(r.open.sessions.size(), cfg.load.sessions);
  std::uint64_t issued = 0, served = 0, dropped = 0;
  for (const service::Session& s : r.open.sessions) {
    EXPECT_EQ(s.issued, s.served + s.dropped);
    issued += s.issued;
    served += s.served;
    dropped += s.dropped;
  }
  EXPECT_EQ(issued, cfg.load.requests);
  EXPECT_EQ(served, r.open.queue.served);
  EXPECT_EQ(dropped, r.open.queue.dropped);
  // The bound was respected.
  EXPECT_LE(r.open.queue.max_depth, cfg.load.queue_capacity);
}

// At heavy overload the open system's servers never idle, so its
// throughput converges to the closed loop's: the closed system is the
// saturation limit of the open one.
TEST(OpenWorkload, SaturationMatchesClosedThroughput) {
  harness::WorkloadConfig closed = small_tree_cfg();
  closed.duration = 600'000;
  const auto rc = harness::run_rbtree_workload(closed);
  ASSERT_GT(rc.ops_per_mcycle, 0.0);

  harness::WorkloadConfig open = small_tree_cfg();
  open.load.model = LoadModel::kPoisson;
  // Offer several times the closed capacity so the queue never drains.
  open.load.offered_ops_per_mcycle = 5.0 * rc.ops_per_mcycle;
  open.load.requests = 2000;
  open.load.sessions = 32;
  const auto ro = harness::run_rbtree_workload(open);
  EXPECT_TRUE(ro.tree_valid);
  EXPECT_NEAR(ro.ops_per_mcycle, rc.ops_per_mcycle,
              0.25 * rc.ops_per_mcycle);
  // ... and queueing delay dominates the sojourn tail there.
  EXPECT_GT(ro.open.qdelay.percentile(0.5), ro.open.service.percentile(0.5));
}

TEST(OpenWorkload, RunsAreReproducible) {
  harness::WorkloadConfig cfg = small_tree_cfg();
  cfg.load.model = LoadModel::kOnOff;
  cfg.load.offered_ops_per_mcycle = 4000.0;
  cfg.load.on_cycles = 20'000;
  cfg.load.off_cycles = 20'000;
  cfg.load.requests = 1000;
  cfg.load.sessions = 8;
  const auto a = harness::run_rbtree_workload(cfg);
  const auto b = harness::run_rbtree_workload(cfg);
  EXPECT_EQ(a.open.sojourn, b.open.sojourn);
  EXPECT_EQ(a.open.qdelay, b.open.qdelay);
  EXPECT_EQ(a.elapsed, b.elapsed);
  EXPECT_EQ(a.open.queue.max_depth, b.open.queue.max_depth);
}

// --- Open sharded service: byte-identity across host parallelism ------------

harness::ShardWorkloadConfig open_shard_cfg() {
  harness::ShardWorkloadConfig cfg;
  cfg.shards = 4;
  cfg.threads_per_shard = 2;
  cfg.keyspace = 1024;
  cfg.zipf_s = 0.9;
  cfg.update_pct = 20;
  cfg.seed = 5;
  cfg.load.model = LoadModel::kPoisson;
  cfg.load.offered_ops_per_mcycle = 3000.0;
  cfg.load.requests = 3000;
  cfg.load.sessions = 64;
  cfg.load.queue_capacity = 256;
  return cfg;
}

TEST(OpenShardWorkload, ByteIdenticalAcrossDomainThreads) {
  harness::ShardWorkloadConfig cfg = open_shard_cfg();
  cfg.domain_threads = 1;
  const auto a = harness::run_shard_workload(cfg);
  cfg.domain_threads = 2;
  const auto b = harness::run_shard_workload(cfg);
  cfg.domain_threads = 0;  // hardware concurrency
  const auto c = harness::run_shard_workload(cfg);
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.fingerprint, c.fingerprint);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.open.sojourn, b.open.sojourn);
  EXPECT_EQ(a.open.qdelay, c.open.qdelay);
  EXPECT_EQ(a.open.queue.max_depth, b.open.queue.max_depth);
  EXPECT_EQ(a.open.queue.dropped, b.open.queue.dropped);
  EXPECT_TRUE(a.tables_valid);
  EXPECT_GT(a.open.queue.served, 0u);
  // Causality across the server pool: a laggard server must never serve a
  // request from the future of its own clock (queue.h claim gating), so no
  // latency component can exceed the makespan.
  EXPECT_LE(a.open.sojourn.max_value(), a.makespan);
  EXPECT_LE(a.open.qdelay.max_value(), a.makespan);
}

TEST(OpenShardWorkload, SkewConcentratesQueueDepth) {
  harness::ShardWorkloadConfig cfg = open_shard_cfg();
  cfg.load.queue_capacity = 0;  // unbounded: depth is the imbalance signal
  cfg.zipf_s = 0.0;
  const auto uniform = harness::run_shard_workload(cfg);
  cfg.zipf_s = 1.2;
  const auto skewed = harness::run_shard_workload(cfg);
  EXPECT_EQ(uniform.open.queue.served, cfg.load.requests);
  EXPECT_EQ(skewed.open.queue.served, cfg.load.requests);
  // Hot-shard pile-up: the skewed run's deepest queue dominates.
  EXPECT_GT(skewed.open.queue.max_depth, uniform.open.queue.max_depth);
}

// Closed shard runs carry no open-mode extras and (covered by the committed
// figshard baseline) keep their historical fingerprints; here we only pin
// the invariant that the open fields stay empty.
TEST(OpenShardWorkload, ClosedRunsLeaveOpenFieldsEmpty) {
  harness::ShardWorkloadConfig cfg;
  cfg.shards = 2;
  cfg.total_ops = 500;
  cfg.seed = 2;
  const auto r = harness::run_shard_workload(cfg);
  EXPECT_EQ(r.open.sojourn.count(), 0u);
  EXPECT_EQ(r.open.queue.offered, 0u);
  EXPECT_TRUE(r.open.sessions.empty());
  EXPECT_EQ(r.lemming_shards, 0u);
}

}  // namespace
}  // namespace sihle
