// SCM (software-assisted conflict management) progress and isolation tests:
// livelock freedom for adversarial conflict patterns, starvation freedom
// with the fair auxiliary lock, and the headline property that conflicting
// threads serialize on the auxiliary lock without disturbing the other
// speculating threads (the main lock stays free).
#include <gtest/gtest.h>

#include <vector>

#include "elision/schemes.h"
#include "elision/scm_grouped.h"
#include "locks/locks.h"
#include "runtime/ctx.h"

namespace sihle {
namespace {

using elision::Scheme;
using runtime::Ctx;
using runtime::LineHandle;
using runtime::Machine;

struct Cells {
  LineHandle la, lb;
  mem::Shared<std::uint64_t> a, b;
  explicit Cells(Machine& m) : la(m), lb(m), a(la.line(), 0), b(lb.line(), 0) {}
};

// Adversarial body pair: one order writes A then B with a gap, the other
// writes B then A.  Under naive optimistic retry, two such transactions can
// doom each other forever (the livelock §6 opens with); SCM's serializing
// path must guarantee progress.
sim::Task<void> cross_writer_body(Ctx& c, Cells& cells, bool a_first) {
  if (a_first) {
    const std::uint64_t va = co_await c.load(cells.a);
    co_await c.store(cells.a, va + 1);
    co_await c.work(400);
    const std::uint64_t vb = co_await c.load(cells.b);
    co_await c.store(cells.b, vb + 1);
  } else {
    const std::uint64_t vb = co_await c.load(cells.b);
    co_await c.store(cells.b, vb + 1);
    co_await c.work(400);
    const std::uint64_t va = co_await c.load(cells.a);
    co_await c.store(cells.a, va + 1);
  }
}

template <class Lock>
sim::Task<void> adversary(Ctx& c, Scheme s, Lock& lock, locks::MCSLock& aux,
                          Cells& cells, bool a_first, int ops, stats::OpStats& st) {
  for (int i = 0; i < ops; ++i) {
    co_await elision::run_op(
        s, c, lock, aux,
        [&cells, a_first](Ctx& cc) { return cross_writer_body(cc, cells, a_first); },
        st);
  }
}

struct ScmParam {
  Scheme scheme;
  std::uint64_t seed;
};

class ScmProgress : public ::testing::TestWithParam<ScmParam> {};

TEST_P(ScmProgress, AdversarialWritersComplete) {
  const auto p = GetParam();
  Machine::Config cfg;
  cfg.seed = p.seed;
  Machine m(cfg);
  locks::MCSLock lock(m);
  locks::MCSLock aux(m);
  Cells cells(m);
  const int threads = 6;
  const int ops = 100;
  std::vector<stats::OpStats> st(threads);
  for (int t = 0; t < threads; ++t) {
    m.spawn([&, t](Ctx& c) {
      return adversary<locks::MCSLock>(c, p.scheme, lock, aux, cells, t % 2 == 0,
                                       ops, st[t]);
    });
  }
  m.run();  // termination itself is the livelock-freedom check
  EXPECT_EQ(cells.a.debug_value(), static_cast<std::uint64_t>(threads) * ops);
  EXPECT_EQ(cells.b.debug_value(), static_cast<std::uint64_t>(threads) * ops);
  stats::OpStats total;
  for (auto& s : st) total += s;
  EXPECT_EQ(total.ops(), static_cast<std::uint64_t>(threads) * ops);
  // Bounded wasted work: with SCM, conflictors serialize instead of
  // retry-storming, so attempts per op stay small even in this worst case.
  EXPECT_LT(total.attempts_per_op(), 6.0);
  if (p.scheme == Scheme::kHleScm || p.scheme == Scheme::kSlrScm) {
    EXPECT_GT(total.aux_acquisitions, 0u);
  }
  // Starvation freedom: every thread finished its full quota (implied by
  // termination + per-thread loop), and everyone got commits.
  for (int t = 0; t < threads; ++t) {
    EXPECT_EQ(st[t].ops(), static_cast<std::uint64_t>(ops));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, ScmProgress,
    ::testing::Values(ScmParam{Scheme::kHleScm, 1}, ScmParam{Scheme::kHleScm, 2},
                      ScmParam{Scheme::kSlrScm, 1}, ScmParam{Scheme::kSlrScm, 2}),
    [](const ::testing::TestParamInfo<ScmParam>& info) {
      return std::string(info.param.scheme == Scheme::kHleScm ? "HleScm" : "SlrScm") +
             "_s" + std::to_string(info.param.seed);
    });

// The SCM headline: conflicting threads are serialized among themselves and
// do not interfere with the other threads.  Two "fighters" conflict
// constantly on one pair of cells; six "bystanders" work on disjoint cells.
// Under HLE-SCM the bystanders must stay essentially fully speculative
// (the main lock is never taken by the fighters' serializing path).
TEST(ScmIsolation, ConflictorsDoNotDisturbBystanders) {
  Machine::Config cfg;
  cfg.seed = 5;
  Machine m(cfg);
  locks::MCSLock lock(m);
  locks::MCSLock aux(m);
  Cells fight(m);
  const int bystanders = 6;
  std::vector<std::unique_ptr<Cells>> mine;
  for (int i = 0; i < bystanders; ++i) mine.push_back(std::make_unique<Cells>(m));

  std::vector<stats::OpStats> st(2 + bystanders);
  for (int t = 0; t < 2; ++t) {
    m.spawn([&, t](Ctx& c) {
      return adversary<locks::MCSLock>(c, Scheme::kHleScm, lock, aux, fight,
                                       t == 0, 120, st[t]);
    });
  }
  for (int t = 0; t < bystanders; ++t) {
    m.spawn([&, t](Ctx& c) {
      return adversary<locks::MCSLock>(c, Scheme::kHleScm, lock, aux, *mine[t],
                                       true, 120, st[2 + t]);
    });
  }
  m.run();

  stats::OpStats bystander_total;
  for (int t = 0; t < bystanders; ++t) bystander_total += st[2 + t];
  // Bystanders complete speculatively: no lemming effect leaks to them.
  EXPECT_EQ(bystander_total.nonspec, 0u);
  EXPECT_LT(bystander_total.attempts_per_op(), 1.2);
  // The fighters really did conflict and serialize.
  EXPECT_GT((st[0].aux_acquisitions + st[1].aux_acquisitions), 10u);
}

// With a fair auxiliary lock, SCM inherits its fairness: under constant
// conflict the two fighters' completion counts advance together (neither
// starves behind the other).
TEST(ScmFairness, FightersAlternateViaAuxQueue) {
  Machine::Config cfg;
  cfg.seed = 9;
  Machine m(cfg);
  locks::MCSLock lock(m);
  locks::MCSLock aux(m);
  Cells fight(m);
  std::vector<stats::OpStats> st(4);
  for (int t = 0; t < 4; ++t) {
    m.spawn([&, t](Ctx& c) {
      return adversary<locks::MCSLock>(c, Scheme::kHleScm, lock, aux, fight,
                                       t % 2 == 0, 150, st[t]);
    });
  }
  m.run();
  // All four threads completed their quota — enough to rule out starvation,
  // since an unfair serializing path would let one pair finish while the
  // other spun.  (Completion of m.run() already implies progress; the check
  // below additionally confirms everyone used the serializing path.)
  for (int t = 0; t < 4; ++t) {
    EXPECT_EQ(st[t].ops(), 150u);
    EXPECT_GT(st[t].aux_acquisitions, 0u);
  }
}

// The grouped-SCM extension (the paper's future work) must preserve all the
// correctness properties of classic SCM: mutual exclusion, livelock
// freedom, and termination — even when conflicting threads land in
// different groups (the hash of the conflict line does not always match the
// logical group, which must only cost performance, never correctness).
template <class Lock>
sim::Task<void> grouped_adversary(Ctx& c, Lock& lock, elision::GroupedAux& aux,
                                  Cells& cells, bool a_first, int ops,
                                  stats::OpStats& st) {
  for (int i = 0; i < ops; ++i) {
    co_await elision::run_scm_grouped(
        c, lock, aux,
        [&cells, a_first](Ctx& cc) { return cross_writer_body(cc, cells, a_first); },
        st, elision::ScmFlavor::kHle);
  }
}

TEST(ScmGrouped, AdversarialWritersCompleteWithGroups) {
  for (int groups : {1, 2, 4}) {
    Machine::Config cfg;
    cfg.seed = 21;
    Machine m(cfg);
    locks::MCSLock lock(m);
    elision::GroupedAux aux(m, groups);
    Cells cells(m);
    const int threads = 6;
    const int ops = 80;
    std::vector<stats::OpStats> st(threads);
    for (int t = 0; t < threads; ++t) {
      m.spawn([&, t](Ctx& c) {
        return grouped_adversary<locks::MCSLock>(c, lock, aux, cells, t % 2 == 0,
                                                 ops, st[t]);
      });
    }
    m.run();
    EXPECT_EQ(cells.a.debug_value(), static_cast<std::uint64_t>(threads) * ops)
        << groups << " groups";
    EXPECT_EQ(cells.b.debug_value(), static_cast<std::uint64_t>(threads) * ops);
    for (int t = 0; t < threads; ++t) {
      EXPECT_EQ(st[t].ops(), static_cast<std::uint64_t>(ops));
    }
  }
}

}  // namespace
}  // namespace sihle
