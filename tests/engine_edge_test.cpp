// Edge cases of the simulation engine: coroutine-frame cleanup on early
// destruction, two-line watches, wake ordering, thread-count limits, the
// version-based missed-wakeup guard, and directory bookkeeping.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "runtime/ctx.h"

namespace sihle {
namespace {

using runtime::Ctx;
using runtime::LineHandle;
using runtime::Machine;

struct Cell {
  LineHandle line;
  mem::Shared<std::uint64_t> v;
  explicit Cell(Machine& m) : line(m), v(line.line(), 0) {}
};

// --- frame cleanup -----------------------------------------------------------

struct DtorProbe {
  static int live;
  DtorProbe() { ++live; }
  ~DtorProbe() { --live; }
};
int DtorProbe::live = 0;

sim::Task<void> deep_wait(Ctx& c, Cell& cell, int depth) {
  DtorProbe probe;
  if (depth > 0) {
    co_await deep_wait(c, cell, depth - 1);
  } else {
    // Block forever: the machine will be destroyed with this chain
    // suspended; every frame (and its locals) must still be destroyed.
    co_await runtime::spin_until(c, cell.v,
                                 [](std::uint64_t v) { return v == 42; });
  }
}

TEST(FrameCleanup, SuspendedChainsAreDestroyedWithTheMachine) {
  {
    Machine m;
    auto cell = std::make_unique<Cell>(m);
    m.spawn([&](Ctx& c) { return deep_wait(c, *cell, 5); });
    m.spawn([&](Ctx& c) -> sim::Task<void> {
      return [](Ctx& cc) -> sim::Task<void> { co_await cc.work(10); }(c);
    });
    EXPECT_THROW(m.run(), std::runtime_error);  // deadlock reported
    EXPECT_EQ(DtorProbe::live, 6);              // frames still suspended
  }
  EXPECT_EQ(DtorProbe::live, 0);  // destroyed with the executor
}

// --- two-line watch ----------------------------------------------------------

sim::Task<void> watch_two(Ctx& c, Cell& a, Cell& b, int* woken_by) {
  const std::uint32_t va = c.line_version(a.v);
  const std::uint32_t vb = c.line_version(b.v);
  co_await c.watch_lines(a.v, va, b.v, vb);
  const std::uint64_t av = co_await c.load(a.v);
  *woken_by = av != 0 ? 1 : 2;
}

sim::Task<void> store_later(Ctx& c, Cell& cell, sim::Cycles delay) {
  co_await c.work(delay);
  co_await c.store(cell.v, std::uint64_t{1});
}

TEST(TwoLineWatch, WakesOnEitherLine) {
  for (int which = 1; which <= 2; ++which) {
    Machine m;
    Cell a(m);
    Cell b(m);
    int woken_by = 0;
    m.spawn([&](Ctx& c) { return watch_two(c, a, b, &woken_by); });
    m.spawn([&](Ctx& c) { return store_later(c, which == 1 ? a : b, 500); });
    m.run();
    EXPECT_EQ(woken_by, which);
  }
}

// --- missed-wakeup guard -----------------------------------------------------

sim::Task<void> racy_waiter(Ctx& c, Cell& cell) {
  // Sample the version, then deliberately let the publisher run (work)
  // before blocking: watch_line must not block on a stale version.
  const std::uint32_t ver = c.line_version(cell.v);
  co_await c.work(2000);  // publisher stores during this window
  co_await c.watch_line(cell.v, ver);
}

TEST(WatchLine, StaleVersionDoesNotBlock) {
  Machine m;
  Cell cell(m);
  m.spawn([&](Ctx& c) { return racy_waiter(c, cell); });
  m.spawn([&](Ctx& c) { return store_later(c, cell, 100); });
  m.run();  // would deadlock if the wakeup were missed
}

// --- spawn limits --------------------------------------------------------------

sim::Task<void> nop(Ctx& c) { co_await c.work(1); }

TEST(Executor, RejectsTooManyThreads) {
  Machine m;
  for (std::uint32_t i = 0; i < sim::kMaxThreads; ++i) {
    m.spawn([](Ctx& c) { return nop(c); });
  }
  EXPECT_THROW(m.spawn([](Ctx& c) { return nop(c); }), std::runtime_error);
}

// --- wake ordering -------------------------------------------------------------

sim::Task<void> sleeper(Ctx& c, Cell& cell, std::vector<std::uint32_t>* order) {
  co_await runtime::spin_until(c, cell.v, [](std::uint64_t v) { return v != 0; });
  order->push_back(c.id());
}

TEST(WakeOrdering, AllWatchersWakeAfterOnePublish) {
  Machine m;
  Cell cell(m);
  // The cell is a wake flag (publish/spin_until), i.e. a synchronization
  // primitive — exempt it from lockset checking like a lock word.
  m.note_sync_line(cell.line.line());
  std::vector<std::uint32_t> order;
  for (int t = 0; t < 5; ++t) {
    m.spawn([&](Ctx& c) { return sleeper(c, cell, &order); });
  }
  m.spawn([&](Ctx& c) { return store_later(c, cell, 1000); });
  m.run();
  ASSERT_EQ(order.size(), 5u);
  // All watchers resumed at publisher_clock + latency; ties broken by id.
  EXPECT_EQ(order, (std::vector<std::uint32_t>{0, 1, 2, 3, 4}));
}

// --- directory bookkeeping ------------------------------------------------------

TEST(Directory, FootprintClearedAfterEveryOutcome) {
  Machine m;
  auto cell = std::make_unique<Cell>(m);
  sim::Rng rng(1);
  // Commit path.
  m.htm().begin(0, rng);
  (void)m.htm().tx_store(0, cell->v, 1, rng);
  std::vector<mem::Line> pub;
  ASSERT_TRUE(m.htm().commit(0, pub).ok());
  EXPECT_TRUE(m.dir()[cell->v.line()].clean());
  // Rollback path.
  m.htm().begin(0, rng);
  (void)m.htm().tx_load(0, cell->v, rng);
  m.htm().rollback(0);
  EXPECT_TRUE(m.dir()[cell->v.line()].clean());
  // Doomed path.
  m.htm().begin(0, rng);
  (void)m.htm().tx_load(0, cell->v, rng);
  m.htm().doom(0, htm::AbortCause::kConflict);
  EXPECT_TRUE(m.dir()[cell->v.line()].clean());  // cleared eagerly at doom
  m.htm().rollback(0);
}

TEST(Directory, VersionAdvancesOnEveryPublish) {
  Machine m;
  Cell cell(m);
  const std::uint32_t v0 = m.dir()[cell.v.line()].version;
  sim::Rng rng(1);
  m.htm().nontx_store(0, cell.v, 1);
  EXPECT_EQ(m.dir()[cell.v.line()].version, v0 + 1);
  m.htm().begin(0, rng);
  (void)m.htm().tx_store(0, cell.v, 2, rng);
  EXPECT_EQ(m.dir()[cell.v.line()].version, v0 + 1);  // buffered: no publish
  std::vector<mem::Line> pub;
  ASSERT_TRUE(m.htm().commit(0, pub).ok());
  EXPECT_EQ(m.dir()[cell.v.line()].version, v0 + 2);
}

}  // namespace
}  // namespace sihle
