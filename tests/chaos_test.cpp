// Chaos suite: hammer every scheme with hostile abort-injection settings —
// extreme spurious rates, always-latching persistent aborts, tiny capacity
// bounds, tiny access caps — and require that correctness (invariants,
// structural validity, op accounting) never depends on transactions
// succeeding at all.
#include <gtest/gtest.h>

#include <string>

#include "harness/rbtree_workload.h"

namespace sihle {
namespace {

using elision::Scheme;
using harness::WorkloadConfig;

struct ChaosSetting {
  const char* name;
  double spurious;
  double persistent;
  std::uint32_t max_read_lines;  // 0 = default
};

const ChaosSetting kSettings[] = {
    {"spurious_storm", 5e-2, 0.0, 0},
    {"always_persistent", 0.0, 1.0, 0},
    {"tiny_read_capacity", 0.0, 0.0, 4},
    {"everything_hostile", 2e-2, 0.2, 8},
};

struct ChaosParam {
  Scheme scheme;
  locks::LockKind lock;
  int setting;
};

class Chaos : public ::testing::TestWithParam<ChaosParam> {};

TEST_P(Chaos, StructureSurvivesHostileAborts) {
  const ChaosParam p = GetParam();
  const ChaosSetting& s = kSettings[p.setting];
  WorkloadConfig cfg;
  cfg.scheme = p.scheme;
  cfg.lock = p.lock;
  cfg.tree_size = 64;
  cfg.threads = 8;
  cfg.update_pct = 50;
  cfg.duration = 400'000;
  cfg.seed = 1234;
  cfg.spurious = s.spurious;
  cfg.persistent = s.persistent;
  cfg.max_read_lines = s.max_read_lines;

  const auto r = harness::run_rbtree_workload(cfg);
  EXPECT_TRUE(r.tree_valid) << s.name;
  EXPECT_GT(r.stats.ops(), 0u) << s.name;
  // Under "always persistent", literally no transaction can ever commit:
  // every operation must have completed via the lock, at standard-lock
  // throughput, with zero speculative commits.
  if (s.persistent == 1.0) {
    EXPECT_EQ(r.stats.spec_commits, 0u);
    EXPECT_EQ(r.stats.nonspec, r.stats.ops());
  }
  // With a 4-line read set, no tree operation fits either.
  if (s.max_read_lines != 0 && s.max_read_lines <= 4 &&
      p.scheme != Scheme::kStandard) {
    EXPECT_GT(r.stats.abort_causes[static_cast<std::size_t>(
                  htm::AbortCause::kCapacity)],
              0u)
        << s.name;
  }
}

std::vector<ChaosParam> chaos_params() {
  std::vector<ChaosParam> out;
  for (Scheme s : elision::kAllSchemesExtended) {
    for (locks::LockKind l : {locks::LockKind::kTtas, locks::LockKind::kMcs}) {
      for (int setting = 0; setting < 4; ++setting) out.push_back({s, l, setting});
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, Chaos, ::testing::ValuesIn(chaos_params()),
    [](const ::testing::TestParamInfo<ChaosParam>& info) {
      std::string n = std::string(elision::to_string(info.param.scheme)) + "_" +
                      locks::to_string(info.param.lock) + "_" +
                      kSettings[info.param.setting].name;
      for (char& ch : n) {
        if (ch == '-' || ch == ' ') ch = '_';
      }
      return n;
    });

}  // namespace
}  // namespace sihle
