// Unit tests of the TSX model: conflict matrix (requestor wins), write
// buffering and atomic publish, capacity and injected aborts, abort status
// semantics, line reuse, and deferred reclamation.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "htm/htm.h"
#include "mem/directory.h"
#include "mem/shared.h"
#include "runtime/ctx.h"

namespace sihle {
namespace {

using htm::AbortCause;
using htm::Htm;
using htm::HtmConfig;
using mem::Directory;
using mem::Shared;

struct Fixture {
  Directory dir;
  Htm htm;
  sim::Rng rng{1};
  std::vector<std::unique_ptr<Shared<std::uint64_t>>> owned;
  explicit Fixture(HtmConfig cfg = {}) : htm(dir, cfg) {}
  Shared<std::uint64_t>& cell(std::uint64_t init = 0) {
    owned.push_back(std::make_unique<Shared<std::uint64_t>>(dir.alloc(), init));
    return *owned.back();
  }
};

// --- Requestor-wins conflict matrix ------------------------------------------

TEST(HtmConflicts, TxWriteDoomsTxReader) {
  Fixture f;
  auto& x = f.cell();
  f.htm.begin(0, f.rng);
  f.htm.begin(1, f.rng);
  EXPECT_TRUE(f.htm.tx_load(0, x, f.rng).abort.ok());
  EXPECT_TRUE(f.htm.tx_store(1, x, 5, f.rng).abort.ok());  // requestor wins
  EXPECT_TRUE(f.htm.tx(0).doomed);
  EXPECT_FALSE(f.htm.tx(1).doomed);
  // Victim observes the abort at its next access.
  EXPECT_EQ(f.htm.tx_load(0, x, f.rng).abort.cause, AbortCause::kConflict);
}

TEST(HtmConflicts, TxReadDoomsTxWriter) {
  Fixture f;
  auto& x = f.cell();
  f.htm.begin(0, f.rng);
  f.htm.begin(1, f.rng);
  EXPECT_TRUE(f.htm.tx_store(0, x, 5, f.rng).abort.ok());
  EXPECT_TRUE(f.htm.tx_load(1, x, f.rng).abort.ok());  // read request hits writer
  EXPECT_TRUE(f.htm.tx(0).doomed);
  EXPECT_FALSE(f.htm.tx(1).doomed);
}

TEST(HtmConflicts, TxReadersCoexist) {
  Fixture f;
  auto& x = f.cell(9);
  f.htm.begin(0, f.rng);
  f.htm.begin(1, f.rng);
  EXPECT_EQ(f.htm.tx_load(0, x, f.rng).value, 9u);
  EXPECT_EQ(f.htm.tx_load(1, x, f.rng).value, 9u);
  EXPECT_FALSE(f.htm.tx(0).doomed);
  EXPECT_FALSE(f.htm.tx(1).doomed);
}

TEST(HtmConflicts, NonTxStoreDoomsReadersAndWriter) {
  Fixture f;
  auto& x = f.cell();
  f.htm.begin(0, f.rng);
  f.htm.begin(1, f.rng);
  f.htm.begin(2, f.rng);
  (void)f.htm.tx_load(0, x, f.rng);
  (void)f.htm.tx_load(1, x, f.rng);
  f.htm.begin(3, f.rng);
  (void)f.htm.tx_store(3, x, 1, f.rng);  // dooms readers 0 and 1
  EXPECT_TRUE(f.htm.tx(0).doomed);
  EXPECT_TRUE(f.htm.tx(1).doomed);
  f.htm.nontx_store(2, x, 7);  // also dooms writer 3
  EXPECT_TRUE(f.htm.tx(3).doomed);
  EXPECT_EQ(x.debug_value(), 7u);
}

TEST(HtmConflicts, NonTxLoadDoomsOnlyWriter) {
  Fixture f;
  auto& x = f.cell(3);
  f.htm.begin(0, f.rng);
  f.htm.begin(1, f.rng);
  (void)f.htm.tx_load(0, x, f.rng);
  (void)f.htm.tx_store(1, x, 9, f.rng);
  // Thread 0 was doomed by 1's store already; reset scenario with reader only.
  f.htm.rollback(0);
  f.htm.begin(2, f.rng);
  (void)f.htm.tx_load(2, x, f.rng);  // dooms writer 1 (requestor wins)
  EXPECT_TRUE(f.htm.tx(1).doomed);
  EXPECT_EQ(f.htm.nontx_load(5, x), 3u);  // buffered 9 never visible
  EXPECT_FALSE(f.htm.tx(2).doomed);       // readers unaffected by loads
}

// --- Write buffering and atomic publish --------------------------------------

TEST(HtmBuffering, StoresInvisibleUntilCommit) {
  Fixture f;
  auto& x = f.cell(1);
  auto& y = f.cell(2);
  f.htm.begin(0, f.rng);
  (void)f.htm.tx_store(0, x, 10, f.rng);
  (void)f.htm.tx_store(0, y, 20, f.rng);
  EXPECT_EQ(x.debug_value(), 1u);
  EXPECT_EQ(y.debug_value(), 2u);
  // Store-to-load forwarding inside the transaction.
  EXPECT_EQ(f.htm.tx_load(0, x, f.rng).value, 10u);
  std::vector<mem::Line> published;
  EXPECT_TRUE(f.htm.commit(0, published).ok());
  EXPECT_EQ(published.size(), 2u);
  EXPECT_EQ(x.debug_value(), 10u);
  EXPECT_EQ(y.debug_value(), 20u);
}

TEST(HtmBuffering, RollbackDiscardsStores) {
  Fixture f;
  auto& x = f.cell(1);
  f.htm.begin(0, f.rng);
  (void)f.htm.tx_store(0, x, 10, f.rng);
  f.htm.doom(0, AbortCause::kConflict);
  f.htm.rollback(0);
  EXPECT_EQ(x.debug_value(), 1u);
  EXPECT_TRUE(f.dir[x.line()].clean());
}

TEST(HtmBuffering, DoomedCommitFails) {
  Fixture f;
  auto& x = f.cell(1);
  f.htm.begin(0, f.rng);
  (void)f.htm.tx_store(0, x, 10, f.rng);
  f.htm.doom(0, AbortCause::kConflict);
  std::vector<mem::Line> published;
  EXPECT_EQ(f.htm.commit(0, published).cause, AbortCause::kConflict);
  EXPECT_TRUE(published.empty());
  f.htm.rollback(0);
  EXPECT_EQ(x.debug_value(), 1u);
}

TEST(HtmBuffering, UndoActionsRunOnAbortOnly) {
  Fixture f;
  auto& x = f.cell();
  int undone = 0;
  f.htm.begin(0, f.rng);
  (void)f.htm.tx_store(0, x, 1, f.rng);
  f.htm.tx(0).undo_on_abort.push_back([&] { undone++; });
  std::vector<mem::Line> published;
  EXPECT_TRUE(f.htm.commit(0, published).ok());
  EXPECT_EQ(undone, 0);

  f.htm.begin(0, f.rng);
  f.htm.tx(0).undo_on_abort.push_back([&] { undone++; });
  f.htm.doom(0, AbortCause::kConflict);
  f.htm.rollback(0);
  EXPECT_EQ(undone, 1);
}

// --- Capacity and injected aborts ---------------------------------------------

TEST(HtmCapacity, WriteSetBounded) {
  HtmConfig cfg;
  cfg.max_write_lines = 4;
  Fixture f(cfg);
  std::vector<Shared<std::uint64_t>*> cells;
  for (int i = 0; i < 6; ++i) cells.push_back(&f.cell());
  f.htm.begin(0, f.rng);
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(f.htm.tx_store(0, *cells[i], 1, f.rng).abort.ok());
  }
  const auto r = f.htm.tx_store(0, *cells[4], 1, f.rng);
  EXPECT_EQ(r.abort.cause, AbortCause::kCapacity);
  EXPECT_FALSE(r.abort.retry);
  f.htm.rollback(0);
}

TEST(HtmCapacity, ReadSetBounded) {
  HtmConfig cfg;
  cfg.max_read_lines = 3;
  Fixture f(cfg);
  std::vector<Shared<std::uint64_t>*> cells;
  for (int i = 0; i < 5; ++i) cells.push_back(&f.cell());
  f.htm.begin(0, f.rng);
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(f.htm.tx_load(0, *cells[i], f.rng).abort.ok());
  }
  EXPECT_EQ(f.htm.tx_load(0, *cells[3], f.rng).abort.cause, AbortCause::kCapacity);
  f.htm.rollback(0);
}

TEST(HtmCapacity, AccessCapModelsEventAbort) {
  HtmConfig cfg;
  cfg.max_tx_accesses = 10;
  Fixture f(cfg);
  auto& x = f.cell();
  f.htm.begin(0, f.rng);
  htm::AbortStatus last{};
  for (int i = 0; i < 12; ++i) {
    last = f.htm.tx_store(0, x, static_cast<std::uint64_t>(i), f.rng).abort;
    if (!last.ok()) break;
  }
  EXPECT_EQ(last.cause, AbortCause::kInterrupt);
  f.htm.rollback(0);
}

TEST(HtmInjected, SpuriousAbortsAtConfiguredRate) {
  HtmConfig cfg;
  cfg.spurious_abort_per_access = 0.02;
  Fixture f(cfg);
  auto& x = f.cell();
  int aborts = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    f.htm.begin(0, f.rng);
    const auto r = f.htm.tx_load(0, x, f.rng);
    if (!r.abort.ok()) {
      EXPECT_EQ(r.abort.cause, AbortCause::kSpurious);
      EXPECT_TRUE(r.abort.retry);
      ++aborts;
    }
    f.htm.rollback(0);
  }
  EXPECT_GT(aborts, trials * 0.02 * 0.6);
  EXPECT_LT(aborts, trials * 0.02 * 1.4);
}

TEST(HtmInjected, PersistentAbortLatchesUntilNonSpecStore) {
  HtmConfig cfg;
  cfg.persistent_abort_per_tx = 1.0;  // always latch
  Fixture f(cfg);
  auto& x = f.cell();
  for (int attempt = 0; attempt < 3; ++attempt) {
    f.htm.begin(0, f.rng);
    const auto r = f.htm.tx_load(0, x, f.rng);
    EXPECT_EQ(r.abort.cause, AbortCause::kPersistent);
    EXPECT_FALSE(r.abort.retry);
    f.htm.rollback(0);
  }
  // Non-speculative progress services the fault...
  f.htm.nontx_store(0, x, 1);
  // ...but the next transaction re-samples (rate 1.0 here relatches).
  HtmConfig relaxed = cfg;
  relaxed.persistent_abort_per_tx = 0.0;
  f.htm.set_config(relaxed);
  f.htm.begin(0, f.rng);
  EXPECT_TRUE(f.htm.tx_load(0, x, f.rng).abort.ok());
  std::vector<mem::Line> published;
  EXPECT_TRUE(f.htm.commit(0, published).ok());
}

// --- Line lifecycle ------------------------------------------------------------

TEST(HtmLines, FreeingALineDoomsResidualFootprint) {
  Fixture f;
  auto* x = new Shared<std::uint64_t>(f.dir.alloc(), 0);
  f.htm.begin(0, f.rng);
  (void)f.htm.tx_load(0, *x, f.rng);
  const mem::Line line = x->line();
  delete x;
  f.htm.on_line_freed(line);
  EXPECT_TRUE(f.htm.tx(0).doomed);
  f.htm.rollback(0);
  EXPECT_TRUE(f.dir[line].clean());
}

TEST(HtmLines, DirectoryRecyclesLines) {
  Directory dir;
  const mem::Line a = dir.alloc();
  dir.free(a);
  const mem::Line b = dir.alloc();
  EXPECT_EQ(a, b);
  EXPECT_TRUE(dir[b].clean());
}

// --- Deferred reclamation ------------------------------------------------------

TEST(Reclaim, LimboDrainsOnlyAtQuiescence) {
  runtime::Machine m;
  int reclaimed = 0;
  sim::Rng rng(1);
  m.htm().begin(0, rng);
  m.add_limbo([&] { reclaimed++; });
  EXPECT_EQ(reclaimed, 0);  // a transaction is active
  m.htm().rollback(0);
  m.maybe_drain();
  EXPECT_EQ(reclaimed, 1);
}

}  // namespace
}  // namespace sihle
