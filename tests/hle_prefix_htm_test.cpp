// Unit-level tests of the XACQUIRE/XRELEASE model and the conflict-location
// reporting inside the Htm class (the lock-level behaviour is covered by
// hle_prefix_test.cpp).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "htm/htm.h"
#include "mem/directory.h"
#include "mem/shared.h"

namespace sihle {
namespace {

using htm::AbortCause;
using htm::Htm;
using htm::HtmConfig;
using mem::Directory;
using mem::Shared;

struct Fixture {
  Directory dir;
  Htm htm;
  sim::Rng rng{1};
  std::vector<std::unique_ptr<Shared<std::uint64_t>>> owned;
  explicit Fixture(HtmConfig cfg = {}) : htm(dir, cfg) {}
  Shared<std::uint64_t>& cell(std::uint64_t init = 0) {
    owned.push_back(std::make_unique<Shared<std::uint64_t>>(dir.alloc(), init));
    return *owned.back();
  }
};

TEST(XAcquire, ElidesStoreIntoReadSetOnly) {
  Fixture f;
  auto& lock = f.cell(0);
  f.htm.begin(0, f.rng);
  const auto r = f.htm.xacquire_store(0, lock, 1, f.rng);
  EXPECT_TRUE(r.abort.ok());
  EXPECT_EQ(r.value, 0u);                       // pre-store value
  EXPECT_EQ(lock.debug_value(), 0u);            // memory unchanged
  EXPECT_EQ(f.dir[lock.line()].tx_writer, -1);  // read set only
  EXPECT_NE(f.dir[lock.line()].tx_readers & 1u, 0u);
  // Illusion: transactional reads see the elided value.
  EXPECT_EQ(f.htm.tx_load(0, lock, f.rng).value, 1u);
  // ...but another transaction sees the real value and coexists (readers).
  f.htm.begin(1, f.rng);
  EXPECT_EQ(f.htm.tx_load(1, lock, f.rng).value, 0u);
  EXPECT_FALSE(f.htm.tx(0).doomed);
  EXPECT_FALSE(f.htm.tx(1).doomed);
  f.htm.rollback(0);
  f.htm.rollback(1);
}

TEST(XRelease, RestoringStoreBalancesElision) {
  Fixture f;
  auto& lock = f.cell(0);
  f.htm.begin(0, f.rng);
  (void)f.htm.xacquire_store(0, lock, 1, f.rng);
  EXPECT_TRUE(f.htm.xrelease_store(0, lock, 0, f.rng).abort.ok());
  std::vector<mem::Line> published;
  EXPECT_TRUE(f.htm.commit(0, published).ok());
  EXPECT_EQ(lock.debug_value(), 0u);
  EXPECT_TRUE(f.dir[lock.line()].clean());
}

TEST(XRelease, NonRestoringStoreAborts) {
  Fixture f;
  auto& lock = f.cell(0);
  f.htm.begin(0, f.rng);
  (void)f.htm.xacquire_store(0, lock, 1, f.rng);
  const auto r = f.htm.xrelease_store(0, lock, 2, f.rng);  // wrong value
  EXPECT_EQ(r.abort.cause, AbortCause::kExplicit);
  EXPECT_EQ(r.abort.code, Htm::kAbortCodeHleMismatch);
  EXPECT_FALSE(r.abort.retry);
  f.htm.rollback(0);
}

TEST(XRelease, UnbalancedElisionCannotCommit) {
  Fixture f;
  auto& lock = f.cell(0);
  f.htm.begin(0, f.rng);
  (void)f.htm.xacquire_store(0, lock, 1, f.rng);
  std::vector<mem::Line> published;
  const auto st = f.htm.commit(0, published);
  EXPECT_EQ(st.cause, AbortCause::kExplicit);
  EXPECT_EQ(st.code, Htm::kAbortCodeHleMismatch);
  f.htm.rollback(0);
}

TEST(XAcquire, ElidedLockStillCouplesViaReadSet) {
  // The whole point of the paper: the elided lock's line is in the read
  // set, so a real (non-transactional) acquisition dooms the transaction.
  Fixture f;
  auto& lock = f.cell(0);
  f.htm.begin(0, f.rng);
  (void)f.htm.xacquire_store(0, lock, 1, f.rng);
  f.htm.nontx_store(1, lock, 1);  // another thread takes the lock for real
  EXPECT_TRUE(f.htm.tx(0).doomed);
  EXPECT_EQ(f.htm.tx(0).doom_status.conflict_line, lock.line());
  f.htm.rollback(0);
}

TEST(ConflictLocation, ReportedOnDataConflicts) {
  Fixture f;
  auto& x = f.cell(0);
  auto& y = f.cell(0);
  f.htm.begin(0, f.rng);
  (void)f.htm.tx_load(0, x, f.rng);
  (void)f.htm.tx_load(0, y, f.rng);
  f.htm.begin(1, f.rng);
  (void)f.htm.tx_store(1, y, 1, f.rng);  // conflicts on y's line
  EXPECT_TRUE(f.htm.tx(0).doomed);
  EXPECT_EQ(f.htm.tx(0).doom_status.conflict_line, y.line());
  f.htm.rollback(0);
  f.htm.rollback(1);
}

TEST(ConflictLocation, HeatmapCountsPerLine) {
  HtmConfig cfg;
  cfg.track_conflict_lines = true;
  Fixture f(cfg);
  auto& hot = f.cell(0);
  auto& cold = f.cell(0);
  for (int i = 0; i < 5; ++i) {
    f.htm.begin(0, f.rng);
    (void)f.htm.tx_load(0, hot, f.rng);
    f.htm.nontx_store(1, hot, 1);
    f.htm.rollback(0);
  }
  f.htm.begin(0, f.rng);
  (void)f.htm.tx_load(0, cold, f.rng);
  f.htm.nontx_store(1, cold, 1);
  f.htm.rollback(0);

  const auto heat = f.htm.conflict_heatmap(10);
  ASSERT_EQ(heat.size(), 2u);
  EXPECT_EQ(heat[0].first, hot.line());
  EXPECT_EQ(heat[0].second, 5u);
  EXPECT_EQ(heat[1].first, cold.line());
  EXPECT_EQ(heat[1].second, 1u);
  EXPECT_EQ(f.htm.located_conflicts(), 6u);
}

}  // namespace
}  // namespace sihle
