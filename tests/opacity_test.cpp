// Opacity verification: with HtmConfig::verify_opacity on, every committing
// transaction's read set is revalidated against current memory.  Under
// correct requestor-wins tracking this never fails — any overwrite of a
// read line dooms the reader before it can commit — so these tests are a
// soundness check of the conflict-detection machinery under heavy load.
#include <gtest/gtest.h>

#include <vector>

#include "ds/rbtree.h"
#include "elision/schemes.h"
#include "locks/locks.h"
#include "runtime/ctx.h"

namespace sihle {
namespace {

using elision::Scheme;
using runtime::Ctx;
using runtime::Machine;

template <class Lock>
sim::Task<void> tree_worker(Ctx& c, Scheme s, Lock& lock, locks::MCSLock& aux,
                            ds::RBTree& tree, int ops, stats::OpStats& st) {
  for (int i = 0; i < ops; ++i) {
    const auto key = static_cast<std::int64_t>(c.rng().below(96));
    const int action = static_cast<int>(c.rng().below(3));
    co_await elision::run_op(
        s, c, lock, aux,
        [&tree, key, action](Ctx& cc) -> sim::Task<void> {
          return [](Ctx& c2, ds::RBTree& t, std::int64_t k, int a) -> sim::Task<void> {
            if (a == 0) {
              const bool r = co_await t.insert(c2, k);
              (void)r;
            } else if (a == 1) {
              const bool r = co_await t.erase(c2, k);
              (void)r;
            } else {
              const bool r = co_await t.contains(c2, k);
              (void)r;
            }
          }(cc, tree, key, action);
        },
        st);
  }
}

class OpacityVerification : public ::testing::TestWithParam<Scheme> {};

TEST_P(OpacityVerification, NoCommittedTransactionSawStaleState) {
  Machine::Config cfg;
  cfg.seed = 19;
  cfg.htm.verify_opacity = true;
  cfg.htm.spurious_abort_per_access = 2e-4;
  Machine m(cfg);
  locks::TTASLock lock(m);
  locks::MCSLock aux(m);
  ds::RBTree tree(m);
  for (int k = 0; k < 96; k += 2) tree.debug_insert(k);
  std::vector<stats::OpStats> st(8);
  for (int t = 0; t < 8; ++t) {
    m.spawn([&, t](Ctx& c) {
      return tree_worker<locks::TTASLock>(c, GetParam(), lock, aux, tree, 250,
                                          st[t]);
    });
  }
  m.run();
  EXPECT_EQ(m.htm().opacity_violations(), 0u);
  EXPECT_TRUE(tree.debug_validate());
  // The check actually ran for the speculative schemes: commits happened.
  stats::OpStats total;
  for (auto& s : st) total += s;
  if (GetParam() != Scheme::kStandard) EXPECT_GT(total.spec_commits, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, OpacityVerification,
                         ::testing::ValuesIn(elision::kAllSchemesExtended),
                         [](const ::testing::TestParamInfo<Scheme>& info) {
                           std::string n = elision::to_string(info.param);
                           for (char& ch : n) {
                             if (ch == '-' || ch == ' ') ch = '_';
                           }
                           return n;
                         });

// The verifier itself is sound: it also holds for SLR, whose *running*
// transactions may see torn state — but whose *committing* transactions may
// not (the commit-time lock check plus requestor-wins guarantee it); and it
// holds under schedule fuzzing.
TEST(OpacityVerification, HoldsUnderScheduleFuzzing) {
  for (std::uint64_t seed = 300; seed < 306; ++seed) {
    Machine::Config cfg;
    cfg.seed = seed;
    cfg.random_tie_break = true;
    cfg.htm.verify_opacity = true;
    Machine m(cfg);
    locks::MCSLock lock(m);
    locks::MCSLock aux(m);
    ds::RBTree tree(m);
    for (int k = 0; k < 64; k += 2) tree.debug_insert(k);
    std::vector<stats::OpStats> st(6);
    for (int t = 0; t < 6; ++t) {
      m.spawn([&, t](Ctx& c) {
        return tree_worker<locks::MCSLock>(c, Scheme::kOptSlr, lock, aux, tree,
                                           150, st[t]);
      });
    }
    m.run();
    EXPECT_EQ(m.htm().opacity_violations(), 0u) << "seed " << seed;
  }
}

}  // namespace
}  // namespace sihle
