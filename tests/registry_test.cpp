// Policy-registry tests (elision/registry.h): name round-trips, spec
// grammar acceptance and rejection, canonical equivalence of registry
// policies against the legacy per-scheme dispatch, and the parameterized
// variants running end-to-end through the experiment engine.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ds/rbtree.h"
#include "elision/elided_lock.h"
#include "elision/registry.h"
#include "elision/schemes.h"  // legacy run_op: the equivalence reference
#include "exp/engine.h"
#include "exp/spec.h"
#include "locks/locks.h"
#include "runtime/ctx.h"

namespace sihle {
namespace {

using elision::Policy;
using elision::Scheme;
using locks::LockKind;
using runtime::Ctx;
using runtime::Machine;

// --- Name round-trips ------------------------------------------------------

TEST(Registry, RoundTripsEveryRegisteredSchemeName) {
  for (const elision::SchemeRow& row : elision::kSchemeRows) {
    const Policy canonical = elision::policy_for(row.scheme);

    // Parse key, display name, and alias (when present) all land on the
    // canonical policy; matching is case-insensitive.
    for (const char* name : {row.key, row.display, row.alias}) {
      if (name == nullptr) continue;
      SCOPED_TRACE(name);
      const auto parsed = elision::parse_policy(name);
      ASSERT_TRUE(parsed.has_value());
      EXPECT_EQ(*parsed, canonical);
      std::string upper(name);
      for (char& c : upper) c = static_cast<char>(std::toupper(c));
      const auto parsed_upper = elision::parse_policy(upper);
      ASSERT_TRUE(parsed_upper.has_value());
      EXPECT_EQ(*parsed_upper, canonical);
    }

    // Canonical policies print as their bare key and display label.
    EXPECT_EQ(elision::policy_spec(canonical), row.key);
    EXPECT_EQ(elision::policy_label(canonical), row.display);
  }
}

TEST(Registry, RoundTripsEveryRegisteredLockName) {
  for (const LockKind k :
       {LockKind::kTtas, LockKind::kMcs, LockKind::kTicket, LockKind::kClh,
        LockKind::kAnderson, LockKind::kElidableTicket, LockKind::kElidableClh,
        LockKind::kElidableAnderson, LockKind::kRw, LockKind::kRwWp}) {
    const std::string key = elision::lock_key(k);
    SCOPED_TRACE(key);
    EXPECT_NE(key, "?");
    const auto parsed = elision::parse_lock_kind(key);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, k);
    std::string upper = key;
    for (char& c : upper) c = static_cast<char>(std::toupper(c));
    const auto parsed_upper = elision::parse_lock_kind(upper);
    ASSERT_TRUE(parsed_upper.has_value());
    EXPECT_EQ(*parsed_upper, k);
  }
}

// Parameterized specs round-trip through policy_spec: re-parsing the
// printed spec reproduces the policy exactly.
TEST(Registry, ParameterizedSpecsRoundTrip) {
  for (const char* spec :
       {"hle-scm:aux=ticket", "hle-scm:aux=ticket,retries=5",
        "hle-scm:retry-bit=on", "slr:retries=20,backoff=exp",
        "slr:retry-bit=off", "hle:retries=4", "hle:backoff=exp",
        "hle-retries:retries=3,retry-bit=off", "slr-scm:aux=clh,retries=2",
        "adaptive:tries=1,skip=10",
        // The mode axis: shared/update ride through policy_spec like any
        // other non-canonical parameter.
        "hle:mode=shared", "standard:mode=shared", "hle:mode=update",
        "hle-scm:mode=update,aux=ticket", "slr:mode=shared",
        "slr:mode=shared,subscribe=commit-checked",
        "slr-scm:mode=shared,retries=2"}) {
    SCOPED_TRACE(spec);
    const auto p = elision::parse_policy(spec);
    ASSERT_TRUE(p.has_value());
    EXPECT_FALSE(elision::canonical_scheme(*p).has_value());
    const std::string printed = elision::policy_spec(*p);
    const auto reparsed = elision::parse_policy(printed);
    ASSERT_TRUE(reparsed.has_value()) << printed;
    EXPECT_EQ(*reparsed, *p) << printed;
    // Non-canonical policies label as their spec.
    EXPECT_EQ(elision::policy_label(*p), printed);
  }
}

// Parameters explicitly set to their canonical value parse back to the
// canonical policy (and thus the canonical label).
TEST(Registry, CanonicalValuedParametersCollapse) {
  const auto p = elision::parse_policy("hle-scm:aux=mcs,retries=10");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(*p, Policy(Scheme::kHleScm));
  EXPECT_EQ(elision::policy_label(*p), "HLE-SCM");
}

// mode=exclusive is the canonical mode: spelling it out parses back to the
// bare scheme, so every mode=exclusive spec is bit-equal to today's
// baseline policies (Policy operator== is the whole state).
TEST(Registry, ExclusiveModeCollapsesToCanonical) {
  for (const char* base : {"standard", "hle", "hle-retries", "hle-scm", "slr",
                           "slr-scm"}) {
    SCOPED_TRACE(base);
    const auto canonical = elision::parse_policy(base);
    const auto spelled =
        elision::parse_policy(std::string(base) + ":mode=exclusive");
    ASSERT_TRUE(canonical.has_value());
    ASSERT_TRUE(spelled.has_value());
    EXPECT_EQ(*spelled, *canonical);
    EXPECT_EQ(elision::policy_spec(*spelled), base);
    EXPECT_EQ(elision::policy_label(*spelled),
              elision::policy_label(*canonical));
  }
}

// --- Malformed specs -------------------------------------------------------

struct BadSpec {
  const char* spec;
  const char* error_contains;  // every rejection must be actionable
};

class RegistryRejects : public ::testing::TestWithParam<BadSpec> {};

TEST_P(RegistryRejects, WithActionableError) {
  const BadSpec& bad = GetParam();
  std::string error;
  const auto p = elision::parse_policy(bad.spec, &error);
  EXPECT_FALSE(p.has_value()) << bad.spec;
  EXPECT_NE(error.find(bad.error_contains), std::string::npos)
      << "error for '" << bad.spec << "' was:\n"
      << error;
}

INSTANTIATE_TEST_SUITE_P(
    Grammar, RegistryRejects,
    ::testing::Values(
        // Unknown names list the valid ones.
        BadSpec{"wibble", "valid schemes: nolock, standard, hle"},
        BadSpec{"", "valid schemes"},
        // Empty / malformed parameter lists.
        BadSpec{"scm:", "empty parameter list"},
        BadSpec{"scm:aux=", "empty value for 'aux'"},
        BadSpec{"scm:aux", "expected key=value"},
        BadSpec{"scm:=ticket", "expected key=value"},
        // Unknown keys name the scheme's valid keys.
        BadSpec{"hle:bogus=1", "valid keys: retries, backoff, retry-bit"},
        BadSpec{"standard:retries=5", "does not apply to scheme 'standard'"},
        // Out-of-range and non-numeric values.
        BadSpec{"hle:retries=0", "out of range [1, 1000]"},
        BadSpec{"hle:retries=100000", "out of range [1, 1000]"},
        BadSpec{"hle:retries=ten", "out of range"},
        BadSpec{"adaptive:tries=0", "out of range [1, 100]"},
        BadSpec{"adaptive:skip=9999", "out of range [0, 1000]"},
        // Keys that exist but do not apply to the named scheme.
        BadSpec{"hle:aux=ticket", "only applies to the SCM schemes"},
        BadSpec{"adaptive:retries=5", "valid keys: tries, skip"},
        BadSpec{"hle:tries=2", "only applies to scheme 'adaptive'"},
        BadSpec{"slr-scm:retry-bit=off", "fixed for slr-scm"},
        // Bad enumerated values and duplicates.
        BadSpec{"hle:backoff=cubic", "expected none|exp"},
        BadSpec{"hle:retry-bit=maybe", "expected on|off"},
        BadSpec{"scm:aux=spinlock", "valid locks: ttas, mcs"},
        BadSpec{"hle:retries=2,retries=3", "duplicate key 'retries'"},
        // The mode axis: bad values, inapplicable schemes, duplicates.
        BadSpec{"hle:mode=write", "expected exclusive|shared|update"},
        BadSpec{"hle:mode=SHARED", "expected exclusive|shared|update"},
        BadSpec{"standard:mode=both", "expected exclusive|shared|update"},
        BadSpec{"hle:mode=", "empty value for 'mode'"},
        BadSpec{"nolock:mode=shared", "does not apply to scheme 'nolock'"},
        BadSpec{"adaptive:mode=shared", "does not apply to scheme 'adaptive'"},
        BadSpec{"hle:mode=shared,mode=update", "duplicate key 'mode'"},
        BadSpec{"hle:mode=exclusive,mode=exclusive", "duplicate key 'mode'"},
        // Neighboring keys whose rejections ride the same generated lists.
        BadSpec{"nolock:retries=2", "valid keys: (none)"},
        BadSpec{"standard:subscribe=lazy", "only applies to the SLR schemes"},
        BadSpec{"slr:subscribe=eager", "expected lazy|commit-checked"},
        BadSpec{"adaptive:mode=exclusive", "valid keys: tries, skip"}));

TEST(Registry, UnknownLockNameListsValidNames) {
  std::string error;
  const auto k = elision::parse_lock_kind("spinlock", &error);
  EXPECT_FALSE(k.has_value());
  EXPECT_NE(error.find("valid locks: ttas, mcs, ticket"), std::string::npos)
      << error;
  // The reader-writer locks registered themselves into the same list.
  EXPECT_NE(error.find("rw, rw-wp"), std::string::npos) << error;
}

// --- Help/grammar sync -----------------------------------------------------
//
// scheme_help(), lock_help(), and the accepted grammar are generated from
// one registration table; this pins the property so a key added to the
// parser can never be missing from the help text (or vice versa).

TEST(Registry, HelpTextMatchesAcceptedGrammar) {
  const std::string help = elision::scheme_help();
  const auto params = elision::registered_params();
  ASSERT_FALSE(params.empty());
  for (const auto& info : params) {
    SCOPED_TRACE(info.key);
    // Syntax line present in the help verbatim.
    EXPECT_NE(help.find(info.syntax), std::string::npos);
    // The example fragment parses on exactly the schemes the parameter
    // applies to.
    for (const elision::SchemeRow& row : elision::kSchemeRows) {
      const Policy base = elision::policy_for(row.scheme);
      const std::string spec = std::string(row.key) + ":" + info.example;
      std::string error;
      const auto p = elision::parse_policy(spec, &error);
      EXPECT_EQ(p.has_value(), elision::param_applies(info.key, base))
          << spec << (p.has_value() ? "" : ": " + error);
    }
  }
  // Unknown keys are nobody's parameter.
  for (const elision::SchemeRow& row : elision::kSchemeRows) {
    EXPECT_FALSE(
        elision::param_applies("bogus", elision::policy_for(row.scheme)));
  }
  // Every scheme name and every lock name appears in its help text.
  for (const elision::SchemeRow& row : elision::kSchemeRows) {
    EXPECT_NE(help.find(row.key), std::string::npos) << row.key;
  }
  const std::string lhelp = elision::lock_help();
  const auto lock_keys = elision::registered_lock_keys();
  ASSERT_FALSE(lock_keys.empty());
  for (const char* key : lock_keys) {
    SCOPED_TRACE(key);
    EXPECT_NE(lhelp.find(key), std::string::npos);
    EXPECT_NE(help.find(key), std::string::npos)
        << "aux lock list in scheme_help misses a registered lock";
    EXPECT_TRUE(elision::parse_lock_kind(key).has_value());
  }
  // The mode grammar is in the help (the fix this suite pins: help used to
  // be hand-maintained prose that new keys silently missed).
  EXPECT_NE(help.find("mode=exclusive|shared|update"), std::string::npos);
}

// --- Canonical equivalence -------------------------------------------------
//
// Registry-parsed canonical policies must be indistinguishable from the
// legacy per-scheme dispatch: same OpStats, same makespan, on the same
// seeds.  This is the scheme-level half of the byte-for-byte guarantee the
// committed BENCH baselines pin end-to-end.

struct RunOutcome {
  stats::OpStats stats;
  sim::Cycles makespan = 0;
  std::size_t tree_size = 0;
};

sim::Task<void> tree_body(Ctx& c, ds::RBTree& t, std::int64_t k) {
  const bool r = co_await t.insert(c, k);
  if (!r) co_await t.erase(c, k);
}

template <class RunCs>
RunOutcome run_workload(std::uint64_t seed, int threads, RunCs run_cs_factory) {
  Machine::Config mc;
  mc.seed = seed;
  mc.htm.spurious_abort_per_access = 1e-3;
  mc.htm.persistent_abort_per_tx = 2e-3;
  Machine m(mc);
  RunOutcome out;
  ds::RBTree* tree = nullptr;
  auto worker = run_cs_factory(m, tree);
  for (int k = 0; k < 64; k += 2) tree->debug_insert(k);
  std::vector<stats::OpStats> st(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    m.spawn([&, t](Ctx& c) { return worker(c, st[static_cast<std::size_t>(t)]); });
  }
  m.run();
  for (const auto& s : st) out.stats += s;
  out.makespan = m.exec().max_clock();
  out.tree_size = tree->debug_size();
  delete tree;
  return out;
}

// kNoLock provides no mutual exclusion; everything else runs contended.
int threads_for(Scheme s) { return s == Scheme::kNoLock ? 1 : 4; }

template <class Lock>
RunOutcome legacy_run(Scheme scheme, std::uint64_t seed) {
  return run_workload(seed, threads_for(scheme),
                      [scheme](Machine& m, ds::RBTree*& tree) {
    auto lock = std::make_shared<Lock>(m);
    auto aux = std::make_shared<locks::MCSLock>(m);
    tree = new ds::RBTree(m);
    ds::RBTree* tr = tree;
    // One adaptation state shared by every thread, the historical
    // per-workload wiring (ElidedLock owns the equivalent per-lock state).
    auto adapt = std::make_shared<elision::AdaptState>();
    return [scheme, lock, aux, tr, adapt](Ctx& c, stats::OpStats& st) {
      return [](Ctx& cc, Scheme s, Lock& l, locks::MCSLock& a, ds::RBTree& t,
                elision::AdaptState& ad,
                stats::OpStats& so) -> sim::Task<void> {
        for (int i = 0; i < 120; ++i) {
          const auto key = static_cast<std::int64_t>(cc.rng().below(64));
          co_await elision::run_op(
              s, cc, l, a,
              [&t, key](Ctx& c2) { return tree_body(c2, t, key); }, so, &ad);
        }
      }(c, scheme, *lock, *aux, *tr, *adapt, st);
    };
  });
}

RunOutcome registry_run(const std::string& spec, LockKind kind,
                        std::uint64_t seed) {
  const auto policy = elision::parse_policy(spec);
  EXPECT_TRUE(policy.has_value()) << spec;
  const int threads =
      policy->flavor == elision::AttemptFlavor::kNoLock ? 1 : 4;
  return run_workload(seed, threads,
                      [&policy, kind](Machine& m, ds::RBTree*& tree) {
    auto lock =
        std::make_shared<elision::ElidedLock>(m, kind, policy->conflict.aux);
    tree = new ds::RBTree(m);
    ds::RBTree* tr = tree;
    const Policy p = *policy;
    return [p, lock, tr](Ctx& c, stats::OpStats& st) {
      return [](Ctx& cc, Policy pp, elision::ElidedLock& l, ds::RBTree& t,
                stats::OpStats& so) -> sim::Task<void> {
        for (int i = 0; i < 120; ++i) {
          const auto key = static_cast<std::int64_t>(cc.rng().below(64));
          co_await elision::run_cs(
              pp, cc, l, [&t, key](Ctx& c2) { return tree_body(c2, t, key); },
              so);
        }
      }(c, p, *lock, *tr, st);
    };
  });
}

void expect_identical(const RunOutcome& a, const RunOutcome& b) {
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.tree_size, b.tree_size);
  EXPECT_EQ(a.stats.spec_commits, b.stats.spec_commits);
  EXPECT_EQ(a.stats.aborts, b.stats.aborts);
  EXPECT_EQ(a.stats.nonspec, b.stats.nonspec);
  EXPECT_EQ(a.stats.arrivals, b.stats.arrivals);
  EXPECT_EQ(a.stats.arrivals_lock_held, b.stats.arrivals_lock_held);
  EXPECT_EQ(a.stats.aux_acquisitions, b.stats.aux_acquisitions);
}

TEST(RegistryEquivalence, CanonicalPoliciesMatchLegacyDispatch) {
  for (const elision::SchemeRow& row : elision::kSchemeRows) {
    for (const std::uint64_t seed : {1ULL, 7ULL, 42ULL}) {
      SCOPED_TRACE(std::string(row.key) + " seed=" + std::to_string(seed));
      expect_identical(legacy_run<locks::TTASLock>(row.scheme, seed),
                       registry_run(row.key, LockKind::kTtas, seed));
      expect_identical(legacy_run<locks::MCSLock>(row.scheme, seed),
                       registry_run(row.key, LockKind::kMcs, seed));
    }
  }
}

// --- End-to-end through the experiment engine ------------------------------
//
// The two acceptance variants — a non-MCS SCM auxiliary lock and a
// configurable SLR retry budget with exponential backoff — as registry
// strings driving real experiment-engine cells.

TEST(RegistryEquivalence, ParameterizedVariantsRunThroughExpEngine) {
  exp::ExperimentSpec spec;
  spec.name = "registry_variants";
  spec.replicates = 2;
  spec.base_seed = 5;
  for (const char* s : {"hle-scm:aux=ticket", "slr:retries=20,backoff=exp"}) {
    const auto policy = elision::parse_policy(s);
    ASSERT_TRUE(policy.has_value()) << s;
    harness::WorkloadConfig cfg;
    cfg.threads = 4;
    cfg.tree_size = 64;
    cfg.duration = 300'000;
    cfg.scheme = *policy;
    exp::add_workload_cell(spec, {{"scheme", elision::policy_label(*policy)}},
                           cfg);
  }
  const auto results = exp::run_experiment(spec, {/*jobs=*/2});
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].id, "scheme=hle-scm:aux=ticket");
  EXPECT_EQ(results[1].id, "scheme=slr:retries=20,backoff=exp");
  for (const auto& cell : results) {
    SCOPED_TRACE(cell.id);
    EXPECT_GT(cell.metric_mean("ops_per_mcycle"), 0.0);
    EXPECT_EQ(cell.metric_mean("valid"), 1.0);  // DS invariants held
  }
}

// A parameterized aux lock actually changes behavior (the ticket aux is a
// different lock than MCS), while leaving the scheme runnable: distinct
// simulations, same op count.
TEST(RegistryEquivalence, AuxLockParameterIsLive) {
  const RunOutcome mcs = registry_run("hle-scm", LockKind::kTtas, 7);
  const RunOutcome ticket = registry_run("hle-scm:aux=ticket", LockKind::kTtas, 7);
  EXPECT_EQ(mcs.stats.ops(), ticket.stats.ops());
  EXPECT_NE(mcs.makespan, ticket.makespan);
}

}  // namespace
}  // namespace sihle
