// Harness unit tests: CLI parsing, table formatting, OpStats arithmetic,
// the slice recorder, and workload-driver invariants (determinism,
// op accounting, structure validity).
#include <gtest/gtest.h>

#include "harness/cli.h"
#include "harness/rbtree_workload.h"
#include "harness/table.h"
#include "stats/op_stats.h"

namespace sihle {
namespace {

using harness::Args;

Args make_args(std::vector<const char*> argv) {
  static std::vector<std::string> storage;
  storage.assign(argv.begin(), argv.end());
  static std::vector<char*> ptrs;
  ptrs.clear();
  ptrs.push_back(const_cast<char*>("prog"));
  for (auto& s : storage) ptrs.push_back(s.data());
  return Args(static_cast<int>(ptrs.size()), ptrs.data());
}

TEST(Cli, ParsesFlags) {
  Args args = make_args({"--threads=4", "--duration-ms=2.5", "--verbose",
                         "--sizes=2,8,32"});
  EXPECT_EQ(args.get_int("threads", 8), 4);
  EXPECT_DOUBLE_EQ(args.get_double("duration-ms", 1.0), 2.5);
  EXPECT_TRUE(args.has("verbose"));
  EXPECT_FALSE(args.has("quiet"));
  EXPECT_EQ(args.get_int("missing", 77), 77);
  const auto sizes = args.get_list("sizes", {});
  ASSERT_EQ(sizes.size(), 3u);
  EXPECT_EQ(sizes[0], "2");
  EXPECT_EQ(sizes[2], "32");
  const auto def = args.get_list("locks", {"ttas", "mcs"});
  EXPECT_EQ(def.size(), 2u);
}

TEST(Cli, ParsesSchemesAndLocks) {
  EXPECT_EQ(harness::parse_scheme("hle"), elision::Scheme::kHle);
  EXPECT_EQ(harness::parse_scheme("slr"), elision::Scheme::kOptSlr);
  EXPECT_EQ(harness::parse_scheme("hle-scm"), elision::Scheme::kHleScm);
  EXPECT_EQ(harness::parse_scheme("adaptive"), elision::Scheme::kAdaptive);
  EXPECT_EQ(harness::parse_lock("mcs"), locks::LockKind::kMcs);
  EXPECT_EQ(harness::parse_lock("eticket"), locks::LockKind::kElidableTicket);
}

TEST(TableTest, AlignsColumns) {
  harness::Table t({"a", "long-header"});
  t.row({"x", "1"});
  t.row({"longer-cell", "2"});
  // Just exercise printing to a memstream-less FILE: use tmpfile.
  std::FILE* f = std::tmpfile();
  ASSERT_NE(f, nullptr);
  t.print(f);
  std::rewind(f);
  char buf[256];
  ASSERT_NE(std::fgets(buf, sizeof(buf), f), nullptr);
  const std::string header(buf);
  EXPECT_NE(header.find("a"), std::string::npos);
  EXPECT_NE(header.find("long-header"), std::string::npos);
  std::fclose(f);
  EXPECT_EQ(harness::Table::num(1.23456, 2), "1.23");
  EXPECT_EQ(harness::Table::num(2.0, 0), "2");
}

TEST(OpStatsTest, DerivedMetrics) {
  stats::OpStats st;
  st.spec_commits = 60;  // S
  st.nonspec = 40;       // N
  st.aborts = 100;       // A
  st.arrivals = 100;
  st.arrivals_lock_held = 25;
  EXPECT_EQ(st.ops(), 100u);
  EXPECT_DOUBLE_EQ(st.attempts_per_op(), 2.0);  // (A+N+S)/(N+S)
  EXPECT_DOUBLE_EQ(st.nonspec_fraction(), 0.4);
  EXPECT_DOUBLE_EQ(st.arrival_lock_held_fraction(), 0.25);

  stats::OpStats sum;
  sum += st;
  sum += st;
  EXPECT_EQ(sum.ops(), 200u);
  EXPECT_DOUBLE_EQ(sum.attempts_per_op(), 2.0);
}

TEST(OpStatsTest, AbortCauseHistogram) {
  stats::OpStats st;
  st.record_abort({htm::AbortCause::kConflict, 0, true});
  st.record_abort({htm::AbortCause::kConflict, 0, true});
  st.record_abort({htm::AbortCause::kCapacity, 0, false});
  EXPECT_EQ(st.aborts, 3u);
  EXPECT_EQ(st.abort_causes[static_cast<std::size_t>(htm::AbortCause::kConflict)], 2u);
  EXPECT_EQ(st.abort_causes[static_cast<std::size_t>(htm::AbortCause::kCapacity)], 1u);
}

TEST(LatencyHistogramTest, PercentilesAndMerge) {
  stats::LatencyHistogram h;
  for (int i = 0; i < 90; ++i) h.record(100);    // bucket ~2^7
  for (int i = 0; i < 9; ++i) h.record(1000);    // bucket ~2^10
  h.record(100000);                              // bucket ~2^17
  EXPECT_EQ(h.count(), 100u);
  EXPECT_LE(h.percentile(0.50), 256u);
  EXPECT_GE(h.percentile(0.95), 512u);
  EXPECT_LE(h.percentile(0.95), 2048u);
  EXPECT_GE(h.percentile(0.999), 65536u);

  stats::LatencyHistogram other;
  other.record(100);
  h += other;
  EXPECT_EQ(h.count(), 101u);
}

TEST(LatencyHistogramTest, EmptyAndExtremes) {
  stats::LatencyHistogram h;
  EXPECT_EQ(h.percentile(0.5), 0u);
  h.record(0);
  h.record(~sim::Cycles{0});
  EXPECT_EQ(h.count(), 2u);
  EXPECT_GE(h.percentile(0.99), 1u);
}

TEST(SliceRecorderTest, BucketsByVirtualTime) {
  stats::SliceRecorder rec(1000);
  rec.record_op(10, false);
  rec.record_op(999, true);
  rec.record_op(1000, false);
  rec.record_op(5500, true);
  ASSERT_EQ(rec.slices(), 6u);
  EXPECT_EQ(rec.ops_in(0), 2u);
  EXPECT_EQ(rec.nonspec_in(0), 1u);
  EXPECT_EQ(rec.ops_in(1), 1u);
  EXPECT_EQ(rec.ops_in(5), 1u);
  EXPECT_EQ(rec.nonspec_in(5), 1u);
}

// --- Workload driver ----------------------------------------------------------

TEST(WorkloadDriver, DeterministicForASeed) {
  harness::WorkloadConfig cfg;
  cfg.tree_size = 64;
  cfg.duration = 300'000;
  cfg.scheme = elision::Scheme::kOptSlr;
  cfg.seed = 99;
  const auto a = harness::run_rbtree_workload(cfg);
  const auto b = harness::run_rbtree_workload(cfg);
  EXPECT_EQ(a.stats.ops(), b.stats.ops());
  EXPECT_EQ(a.stats.aborts, b.stats.aborts);
  EXPECT_EQ(a.elapsed, b.elapsed);
  EXPECT_EQ(a.final_size, b.final_size);
}

TEST(WorkloadDriver, PrefillsExactly) {
  harness::WorkloadConfig cfg;
  cfg.tree_size = 300;
  cfg.threads = 1;
  cfg.update_pct = 0;  // lookups do not change the size
  cfg.duration = 100'000;
  const auto r = harness::run_rbtree_workload(cfg);
  EXPECT_EQ(r.final_size, 300u);
  EXPECT_TRUE(r.tree_valid);
}

TEST(WorkloadDriver, EveryDataStructureRuns) {
  for (auto ds : {harness::DsKind::kRbTree, harness::DsKind::kHashTable,
                  harness::DsKind::kLinkedList, harness::DsKind::kSkipList}) {
    harness::WorkloadConfig cfg;
    cfg.ds = ds;
    cfg.tree_size = 64;
    cfg.duration = 200'000;
    cfg.scheme = elision::Scheme::kHleScm;
    const auto r = harness::run_rbtree_workload(cfg);
    EXPECT_TRUE(r.tree_valid) << harness::to_string(ds);
    EXPECT_GT(r.stats.ops(), 0u) << harness::to_string(ds);
  }
}

TEST(WorkloadDriver, SlicesCoverTheRun) {
  harness::WorkloadConfig cfg;
  cfg.tree_size = 64;
  cfg.record_slices = true;
  cfg.slice_cycles = 100'000;
  cfg.duration = 500'000;
  const auto r = harness::run_rbtree_workload(cfg);
  ASSERT_NE(r.slices, nullptr);
  EXPECT_GE(r.slices->slices(), 5u);
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < r.slices->slices(); ++i) total += r.slices->ops_in(i);
  EXPECT_EQ(total, r.stats.ops());
}

}  // namespace
}  // namespace sihle
