// Unit tests for the discrete-event core: task plumbing, min-clock
// scheduling, deterministic replay, blocking/wakeup, RNG quality basics.
#include <gtest/gtest.h>

#include <vector>

#include "runtime/ctx.h"
#include "sim/executor.h"
#include "sim/rng.h"
#include "sim/task.h"

namespace sihle {
namespace {

using runtime::Ctx;
using runtime::LineHandle;
using runtime::Machine;

// --- Task basics ------------------------------------------------------------

sim::Task<int> answer() { co_return 42; }
sim::Task<int> add(int a, int b) {
  const int x = co_await answer();
  co_return a + b + x - 42;
}
sim::Task<int> thrower() {
  co_await answer();
  throw std::runtime_error("boom");
}

sim::RootTask drive(sim::Task<int> t, int* out, bool* threw) {
  try {
    *out = co_await std::move(t);
  } catch (const std::runtime_error&) {
    *threw = true;
  }
}

TEST(Task, ReturnsValueThroughNesting) {
  int out = 0;
  bool threw = false;
  auto root = drive(add(20, 22), &out, &threw);
  root.handle.resume();
  EXPECT_TRUE(root.handle.done());
  EXPECT_EQ(out, 42);
  EXPECT_FALSE(threw);
  root.handle.destroy();
}

TEST(Task, PropagatesExceptions) {
  int out = 0;
  bool threw = false;
  auto root = drive(thrower(), &out, &threw);
  root.handle.resume();
  EXPECT_TRUE(root.handle.done());
  EXPECT_TRUE(threw);
  root.handle.destroy();
}

// --- Executor scheduling -----------------------------------------------------

struct Cell {
  LineHandle line;
  mem::Shared<std::uint64_t> v;
  explicit Cell(Machine& m) : line(m), v(line.line(), 0) {}
};

sim::Task<void> append_id(Ctx& c, Cell& cell, std::vector<std::uint32_t>& order,
                          std::uint64_t work_per_step, int steps) {
  for (int i = 0; i < steps; ++i) {
    order.push_back(c.id());
    co_await c.work(work_per_step);
  }
  (void)cell;
}

TEST(Executor, MinClockInterleavesFairly) {
  Machine m;
  Cell cell(m);
  std::vector<std::uint32_t> order;
  for (int t = 0; t < 3; ++t) {
    m.spawn([&](Ctx& c) { return append_id(c, cell, order, 100, 4); });
  }
  m.run();
  // Equal costs => strict round-robin by thread id.
  const std::vector<std::uint32_t> expected = {0, 1, 2, 0, 1, 2, 0, 1, 2, 0, 1, 2};
  EXPECT_EQ(order, expected);
}

TEST(Executor, FasterThreadRunsMoreOften) {
  Machine m;
  Cell cell(m);
  std::vector<std::uint32_t> order;
  m.spawn([&](Ctx& c) { return append_id(c, cell, order, 50, 8); });   // fast
  m.spawn([&](Ctx& c) { return append_id(c, cell, order, 200, 2); });  // slow
  m.run();
  int fast_first_half = 0;
  for (std::size_t i = 0; i < order.size() / 2; ++i) {
    fast_first_half += order[i] == 0 ? 1 : 0;
  }
  EXPECT_GE(fast_first_half, 3);
}

sim::Task<void> waiter(Ctx& c, Cell& cell, sim::Cycles* woken_at) {
  co_await runtime::spin_until(c, cell.v, [](std::uint64_t v) { return v == 7; });
  *woken_at = c.now();
}
sim::Task<void> publisher(Ctx& c, Cell& cell) {
  co_await c.work(5000);
  co_await c.store(cell.v, std::uint64_t{7});
}

TEST(Executor, BlockedThreadWakesOnPublish) {
  Machine m;
  Cell cell(m);
  // The cell is a wake flag (publish/spin_until), i.e. a synchronization
  // primitive — exempt it from lockset checking like a lock word.
  m.note_sync_line(cell.line.line());
  sim::Cycles woken_at = 0;
  m.spawn([&](Ctx& c) { return waiter(c, cell, &woken_at); });
  m.spawn([&](Ctx& c) { return publisher(c, cell); });
  m.run();
  // Waker publishes at ~5000 + store cost; waiter wakes just after.
  EXPECT_GT(woken_at, 5000u);
  EXPECT_LT(woken_at, 5600u);
}

sim::Task<void> never_satisfied(Ctx& c, Cell& cell) {
  co_await runtime::spin_until(c, cell.v, [](std::uint64_t v) { return v == 99; });
}

TEST(Executor, DeadlockIsDetected) {
  Machine m;
  Cell cell(m);
  m.spawn([&](Ctx& c) { return never_satisfied(c, cell); });
  EXPECT_THROW(m.run(), std::runtime_error);
}

// --- Determinism -------------------------------------------------------------

sim::Task<void> chaos_worker(Ctx& c, Cell& cell, std::uint64_t* trace) {
  for (int i = 0; i < 50; ++i) {
    const std::uint64_t v = co_await c.load(cell.v);
    co_await c.store(cell.v, v + c.rng().below(10));
    co_await c.work(c.rng().below(100));
    *trace = *trace * 31 + c.now() + v;
  }
}

std::uint64_t run_chaos(std::uint64_t seed) {
  Machine::Config cfg;
  cfg.seed = seed;
  // The chaos workload races plain loads/stores on purpose; the lockset
  // checker would (correctly) flag it.
  cfg.analysis.enabled = false;
  Machine m(cfg);
  Cell cell(m);
  std::uint64_t traces[4] = {0, 0, 0, 0};
  for (int t = 0; t < 4; ++t) {
    m.spawn([&, t](Ctx& c) { return chaos_worker(c, cell, &traces[t]); });
  }
  m.run();
  std::uint64_t h = cell.v.debug_value();
  for (auto t : traces) h = h * 1099511628211ULL + t;
  return h;
}

TEST(Determinism, IdenticalSeedIdenticalTrace) {
  EXPECT_EQ(run_chaos(123), run_chaos(123));
  EXPECT_EQ(run_chaos(7), run_chaos(7));
  EXPECT_NE(run_chaos(123), run_chaos(124));
}

// --- RNG ---------------------------------------------------------------------

TEST(Rng, UniformBitsRoughlyBalanced) {
  sim::Rng rng(42);
  int ones = 0;
  for (int i = 0; i < 10000; ++i) ones += rng.next() & 1 ? 1 : 0;
  EXPECT_GT(ones, 4700);
  EXPECT_LT(ones, 5300);
}

TEST(Rng, BelowStaysInRange) {
  sim::Rng rng(43);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.below(7), 7u);
    const auto r = rng.range(5, 9);
    EXPECT_GE(r, 5u);
    EXPECT_LE(r, 9u);
  }
}

TEST(Rng, ChanceMatchesProbability) {
  sim::Rng rng(44);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += rng.chance(0.1) ? 1 : 0;
  EXPECT_GT(hits, 9000);
  EXPECT_LT(hits, 11000);
}

TEST(Rng, DistinctSeedsDiverge) {
  sim::Rng a(1);
  sim::Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a.next() == b.next() ? 1 : 0;
  EXPECT_EQ(same, 0);
}

}  // namespace
}  // namespace sihle
