// Locks in the executor's RNG draw order under random tie-breaking.
//
// pick_next() reservoir-samples among equal-clock runnable threads while
// scanning candidates in ascending thread id; one RNG draw happens per tie
// with the running best.  That draw sequence is part of the repo's
// reproducibility contract: results/BENCH_fig9.json and friends were
// produced under it, and any scheduler data-structure change that visits
// candidates in a different order (or skips a tie comparison) silently
// invalidates every committed baseline even though each run is still
// "deterministic per seed".
//
// These tests pin the contract with golden fingerprints of the scheduled
// interleaving (tests/data/rng_draworder_golden.txt).  If a scheduler
// change is *intended* to alter schedules, regenerate the golden file —
// and every committed BENCH_*.json baseline with it:
//
//   SIHLE_REGEN_GOLDEN=1 ./build/tests/rng_draworder_test
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "ds/rbtree.h"
#include "elision/elided_lock.h"
#include "locks/locks.h"
#include "runtime/ctx.h"

namespace {

using namespace sihle;
using runtime::Ctx;
using runtime::Machine;

constexpr const char* kGoldenPath =
    SIHLE_TEST_DATA_DIR "/rng_draworder_golden.txt";

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFF;
    h *= 0x100000001B3ULL;
  }
  return h;
}
constexpr std::uint64_t kFnvBasis = 0xCBF29CE484222325ULL;

// name → fingerprint, in file line order.
using Golden = std::map<std::string, std::uint64_t>;

Golden load_golden() {
  Golden g;
  std::ifstream in(kGoldenPath);
  std::string name;
  std::uint64_t value = 0;
  while (in >> name >> std::hex >> value) g[name] = value;
  return g;
}

bool regen_requested() { return std::getenv("SIHLE_REGEN_GOLDEN") != nullptr; }

// Accumulates every fingerprint the binary computes, so regeneration (which
// must run the whole binary, unfiltered) rewrites the complete file.
Golden& collected() {
  static Golden g;
  return g;
}

void check_or_collect(Golden& out, const std::string& name,
                      std::uint64_t value) {
  out[name] = value;
  if (regen_requested()) return;
  static const Golden golden = load_golden();
  const auto it = golden.find(name);
  ASSERT_NE(it, golden.end())
      << name << " missing from golden file; regenerate with "
      << "SIHLE_REGEN_GOLDEN=1 (and refresh the BENCH baselines!)";
  EXPECT_EQ(it->second, value)
      << name << ": schedule fingerprint changed — the tie-break RNG draw "
      << "order is no longer the one the committed baselines were produced "
      << "under";
}

void maybe_write_golden(const Golden& collected) {
  if (!regen_requested()) return;
  std::ofstream out(kGoldenPath);
  for (const auto& [name, value] : collected) {
    out << name << " " << std::hex << value << "\n";
  }
  std::fprintf(stderr, "regenerated %s (%zu entries)\n", kGoldenPath,
               collected.size());
}

// --- Direct pick-order observation --------------------------------------
//
// Four threads repeatedly perform a unit-cost step and log their id into a
// host-side vector as they run.  Equal step costs keep all four clocks tied
// at every scheduling decision, so the logged sequence is exactly the
// reservoir sampler's output stream.

sim::Task<void> step_logger(Ctx& c, std::vector<int>& log, int tid, int steps) {
  for (int i = 0; i < steps; ++i) {
    log.push_back(tid);
    co_await c.work(1);
  }
}

TEST(RngDrawOrder, TiedThreadsPickSequence) {
  Machine::Config mc;
  mc.seed = 42;
  mc.random_tie_break = true;
  Machine m(mc);
  std::vector<int> log;
  for (int t = 0; t < 4; ++t) {
    m.spawn([&, t](Ctx& c) { return step_logger(c, log, t, 64); });
  }
  m.run();
  ASSERT_EQ(log.size(), 4u * 64u);
  std::uint64_t h = kFnvBasis;
  for (const int tid : log) h = fnv1a(h, static_cast<std::uint64_t>(tid));
  check_or_collect(collected(), "tied_pick_sequence", h);
  maybe_write_golden(collected());
}

// --- Per-thread schedule fingerprints across all six schemes -------------
//
// A contended rbtree run under every scheme of the paper's methodology,
// with random tie-breaking on.  Each thread's final virtual clock, event
// count, and op statistics summarize the interleaving it experienced; any
// divergence in the RNG draw sequence cascades into these within a few
// scheduling decisions.

sim::Task<void> tree_worker(Ctx& c, elision::Policy policy,
                            elision::ElidedLock& lock, ds::RBTree& tree, int ops,
                            stats::OpStats& st) {
  for (int i = 0; i < ops; ++i) {
    const std::int64_t key = static_cast<std::int64_t>(c.rng().below(64));
    co_await elision::run_cs(
        policy, c, lock,
        [&tree, key](Ctx& cc) -> sim::Task<void> {
          return [](Ctx& c2, ds::RBTree& t, std::int64_t k) -> sim::Task<void> {
            const bool r = co_await t.insert(c2, k);
            if (!r) co_await t.erase(c2, k);
          }(cc, tree, key);
        },
        st);
  }
}

TEST(RngDrawOrder, SchemeScheduleFingerprints) {
  for (const elision::Scheme scheme : elision::kAllSchemes) {
    Machine::Config mc;
    mc.seed = 7;
    mc.random_tie_break = true;
    mc.htm.spurious_abort_per_access = 1e-3;
    Machine m(mc);
    // TTAS main lock then MCS aux then the tree — run_cs/ElidedLock must
    // reproduce the exact schedules the golden file pins.
    elision::ElidedLock lock(m, locks::LockKind::kTtas);
    ds::RBTree tree(m);
    for (int k = 0; k < 64; k += 2) tree.debug_insert(k);
    constexpr int kThreads = 4;
    std::vector<stats::OpStats> st(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      m.spawn([&, t](Ctx& c) {
        return tree_worker(c, scheme, lock, tree, 100, st[t]);
      });
    }
    m.run();
    for (int t = 0; t < kThreads; ++t) {
      std::uint64_t h = kFnvBasis;
      h = fnv1a(h, m.exec().thread(t).clock);
      h = fnv1a(h, m.exec().thread(t).events);
      h = fnv1a(h, st[t].spec_commits);
      h = fnv1a(h, st[t].aborts);
      h = fnv1a(h, st[t].nonspec);
      h = fnv1a(h, st[t].aux_acquisitions);
      std::string name = std::string("scheme_") + elision::to_string(scheme) +
                         "_thread" + std::to_string(t);
      // The file format is whitespace-delimited; scheme names may not be.
      for (char& ch : name) {
        if (ch == ' ') ch = '_';
      }
      check_or_collect(collected(), name, h);
    }
  }
  maybe_write_golden(collected());
}

}  // namespace
