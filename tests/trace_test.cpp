// Transaction-trace tests: every attempt is recorded with a consistent
// interval and outcome; commits plus aborts reconcile with the schemes'
// statistics; and the trace exposes the lemming effect's signature
// (overlapping doomed transactions around a lock acquisition).
#include <gtest/gtest.h>

#include <vector>

#include "elision/schemes.h"
#include "locks/locks.h"
#include "runtime/ctx.h"
#include "stats/tx_trace.h"

namespace sihle {
namespace {

using elision::Scheme;
using runtime::Ctx;
using runtime::LineHandle;
using runtime::Machine;

struct Counter {
  LineHandle line;
  mem::Shared<std::uint64_t> value;
  explicit Counter(Machine& m) : line(m), value(line.line(), 0) {}
};

sim::Task<void> incr(Ctx& c, Counter& cnt) {
  const std::uint64_t v = co_await c.load(cnt.value);
  co_await c.work(40);
  co_await c.store(cnt.value, v + 1);
}

template <class Lock>
sim::Task<void> worker(Ctx& c, Scheme s, Lock& lock, locks::MCSLock& aux,
                       Counter& cnt, int ops, stats::OpStats& st) {
  for (int i = 0; i < ops; ++i) {
    co_await elision::run_op(s, c, lock, aux,
                             [&cnt](Ctx& cc) { return incr(cc, cnt); }, st);
  }
}

TEST(TxTraceTest, RecordsReconcileWithStats) {
  Machine::Config cfg;
  cfg.seed = 8;
  cfg.htm.spurious_abort_per_access = 1e-3;
  Machine m(cfg);
  stats::TxTrace trace;
  m.set_tx_trace(&trace);
  locks::TTASLock lock(m);
  locks::MCSLock aux(m);
  Counter cnt(m);
  std::vector<stats::OpStats> st(4);
  for (int t = 0; t < 4; ++t) {
    m.spawn([&, t](Ctx& c) {
      return worker<locks::TTASLock>(c, Scheme::kHleRetries, lock, aux, cnt, 200,
                                     st[t]);
    });
  }
  m.run();

  stats::OpStats total;
  for (auto& s : st) total += s;
  EXPECT_EQ(trace.commits(), total.spec_commits);
  // Every scheme-counted abort is a traced transactional attempt; the trace
  // may also contain lock-busy attempts that the scheme did not count.
  EXPECT_GE(trace.aborts(), total.aborts);
  EXPECT_EQ(trace.records().size(), trace.commits() + trace.aborts());
  for (const auto& r : trace.records()) {
    EXPECT_LE(r.begin, r.end);
    EXPECT_LT(r.thread, 4u);
  }
}

TEST(TxTraceTest, CommitOnlyRunHasNoAborts) {
  Machine m;  // no spurious aborts, single thread: every attempt commits
  stats::TxTrace trace;
  m.set_tx_trace(&trace);
  locks::TTASLock lock(m);
  locks::MCSLock aux(m);
  Counter cnt(m);
  stats::OpStats st;
  m.spawn([&](Ctx& c) {
    return worker<locks::TTASLock>(c, Scheme::kHle, lock, aux, cnt, 50, st);
  });
  m.run();
  EXPECT_EQ(trace.commits(), 50u);
  EXPECT_EQ(trace.aborts(), 0u);
}

TEST(TxTraceTest, LemmingSignatureVisibleInTrace) {
  // Under plain HLE on MCS with spurious aborts, the trace shows clustered
  // conflict aborts (the chain reaction) and very few commits.
  Machine::Config cfg;
  cfg.seed = 12;
  cfg.htm.spurious_abort_per_access = 1e-3;
  Machine m(cfg);
  stats::TxTrace trace;
  m.set_tx_trace(&trace);
  locks::MCSLock lock(m);
  locks::MCSLock aux(m);
  Counter cnt(m);
  std::vector<stats::OpStats> st(6);
  for (int t = 0; t < 6; ++t) {
    m.spawn([&, t](Ctx& c) {
      return worker<locks::MCSLock>(c, Scheme::kHle, lock, aux, cnt, 150, st[t]);
    });
  }
  m.run();
  EXPECT_EQ(cnt.value.debug_value(), 6u * 150u);
  // Virtually everything that tried to speculate aborted.
  EXPECT_GT(trace.aborts(), trace.commits() * 3);
  EXPECT_GT(trace.count(htm::AbortCause::kConflict), 0u);
}

TEST(TxTraceTest, CsvDumpIsWellFormed) {
  Machine m;
  stats::TxTrace trace;
  m.set_tx_trace(&trace);
  locks::TTASLock lock(m);
  locks::MCSLock aux(m);
  Counter cnt(m);
  stats::OpStats st;
  m.spawn([&](Ctx& c) {
    return worker<locks::TTASLock>(c, Scheme::kHle, lock, aux, cnt, 5, st);
  });
  m.run();
  std::FILE* f = std::tmpfile();
  ASSERT_NE(f, nullptr);
  trace.dump_csv(f);
  std::rewind(f);
  char buf[128];
  int lines = 0;
  while (std::fgets(buf, sizeof(buf), f) != nullptr) ++lines;
  std::fclose(f);
  EXPECT_EQ(lines, 1 + static_cast<int>(trace.records().size()));
}

}  // namespace
}  // namespace sihle
