// Transaction-trace tests: every attempt is recorded with a consistent
// interval and outcome; commits plus aborts reconcile with the schemes'
// statistics; and the trace exposes the lemming effect's signature
// (overlapping doomed transactions around a lock acquisition).
#include <gtest/gtest.h>

#include <vector>

#include "elision/schemes.h"
#include "locks/locks.h"
#include "runtime/ctx.h"
#include "stats/tx_trace.h"

namespace sihle {
namespace {

using elision::Scheme;
using runtime::Ctx;
using runtime::LineHandle;
using runtime::Machine;

struct Counter {
  LineHandle line;
  mem::Shared<std::uint64_t> value;
  explicit Counter(Machine& m) : line(m), value(line.line(), 0) {}
};

sim::Task<void> incr(Ctx& c, Counter& cnt) {
  const std::uint64_t v = co_await c.load(cnt.value);
  co_await c.work(40);
  co_await c.store(cnt.value, v + 1);
}

template <class Lock>
sim::Task<void> worker(Ctx& c, Scheme s, Lock& lock, locks::MCSLock& aux,
                       Counter& cnt, int ops, stats::OpStats& st) {
  for (int i = 0; i < ops; ++i) {
    co_await elision::run_op(s, c, lock, aux,
                             [&cnt](Ctx& cc) { return incr(cc, cnt); }, st);
  }
}

TEST(TxTraceTest, RecordsReconcileWithStats) {
  Machine::Config cfg;
  cfg.seed = 8;
  cfg.htm.spurious_abort_per_access = 1e-3;
  Machine m(cfg);
  stats::TxTrace trace;
  m.set_tx_trace(&trace);
  locks::TTASLock lock(m);
  locks::MCSLock aux(m);
  Counter cnt(m);
  std::vector<stats::OpStats> st(4);
  for (int t = 0; t < 4; ++t) {
    m.spawn([&, t](Ctx& c) {
      return worker<locks::TTASLock>(c, Scheme::kHleRetries, lock, aux, cnt, 200,
                                     st[t]);
    });
  }
  m.run();

  stats::OpStats total;
  for (auto& s : st) total += s;
  EXPECT_EQ(trace.commits(), total.spec_commits);
  // Every scheme-counted abort is a traced transactional attempt; the trace
  // may also contain lock-busy attempts that the scheme did not count.
  EXPECT_GE(trace.aborts(), total.aborts);
  EXPECT_EQ(trace.records().size(), trace.commits() + trace.aborts());
  for (const auto& r : trace.records()) {
    EXPECT_LE(r.begin, r.end);
    EXPECT_LT(r.thread, 4u);
  }
}

TEST(TxTraceTest, CommitOnlyRunHasNoAborts) {
  Machine m;  // no spurious aborts, single thread: every attempt commits
  stats::TxTrace trace;
  m.set_tx_trace(&trace);
  locks::TTASLock lock(m);
  locks::MCSLock aux(m);
  Counter cnt(m);
  stats::OpStats st;
  m.spawn([&](Ctx& c) {
    return worker<locks::TTASLock>(c, Scheme::kHle, lock, aux, cnt, 50, st);
  });
  m.run();
  EXPECT_EQ(trace.commits(), 50u);
  EXPECT_EQ(trace.aborts(), 0u);
}

TEST(TxTraceTest, LemmingSignatureVisibleInTrace) {
  // Under plain HLE on MCS with spurious aborts, the trace shows clustered
  // conflict aborts (the chain reaction) and very few commits.
  Machine::Config cfg;
  cfg.seed = 12;
  cfg.htm.spurious_abort_per_access = 1e-3;
  Machine m(cfg);
  stats::TxTrace trace;
  m.set_tx_trace(&trace);
  locks::MCSLock lock(m);
  locks::MCSLock aux(m);
  Counter cnt(m);
  std::vector<stats::OpStats> st(6);
  for (int t = 0; t < 6; ++t) {
    m.spawn([&, t](Ctx& c) {
      return worker<locks::MCSLock>(c, Scheme::kHle, lock, aux, cnt, 150, st[t]);
    });
  }
  m.run();
  EXPECT_EQ(cnt.value.debug_value(), 6u * 150u);
  // Virtually everything that tried to speculate aborted.
  EXPECT_GT(trace.aborts(), trace.commits() * 3);
  EXPECT_GT(trace.count(htm::AbortCause::kConflict), 0u);
}

// Regression: on_end without a preceding on_begin used to read a stale (or
// zero) open-begin slot and fabricate an interval.  Pairing is now explicit:
// the record is flagged unpaired with a zero-length interval, and a normal
// begin/end afterwards still pairs correctly.
TEST(TxTraceTest, UnpairedEndIsFlaggedNotFabricated) {
  stats::TxTrace trace;

  // An end for a thread never seen: no stale slot to read.
  trace.on_end(0, 500, htm::AbortCause::kConflict);
  ASSERT_EQ(trace.records().size(), 1u);
  EXPECT_FALSE(trace.records()[0].paired);
  EXPECT_EQ(trace.records()[0].begin, 500u);
  EXPECT_EQ(trace.records()[0].end, 500u);
  EXPECT_EQ(trace.unpaired_ends(), 1u);

  // A paired attempt consumes its begin ...
  trace.on_begin(0, 600);
  EXPECT_TRUE(trace.open(0));
  trace.on_end(0, 650, htm::AbortCause::kNone);
  EXPECT_FALSE(trace.open(0));
  ASSERT_EQ(trace.records().size(), 2u);
  EXPECT_TRUE(trace.records()[1].paired);
  EXPECT_EQ(trace.records()[1].begin, 600u);

  // ... so a double end cannot reuse the stale begin from that attempt.
  trace.on_end(0, 700, htm::AbortCause::kExplicit);
  ASSERT_EQ(trace.records().size(), 3u);
  EXPECT_FALSE(trace.records()[2].paired);
  EXPECT_EQ(trace.records()[2].begin, 700u);
  EXPECT_EQ(trace.unpaired_ends(), 2u);

  // Other threads' slots are independent.
  trace.on_begin(3, 800);
  trace.on_end(3, 900, htm::AbortCause::kCapacity);
  EXPECT_TRUE(trace.records()[3].paired);
  EXPECT_EQ(trace.unpaired_ends(), 2u);
}

TEST(TxTraceTest, InstrumentedRunHasNoUnpairedEnds) {
  Machine::Config cfg;
  cfg.seed = 5;
  cfg.htm.spurious_abort_per_access = 1e-3;
  Machine m(cfg);
  stats::TxTrace trace;
  m.set_tx_trace(&trace);
  locks::MCSLock lock(m);
  locks::MCSLock aux(m);
  Counter cnt(m);
  std::vector<stats::OpStats> st(4);
  for (int t = 0; t < 4; ++t) {
    m.spawn([&, t](Ctx& c) {
      return worker<locks::MCSLock>(c, Scheme::kSlrScm, lock, aux, cnt, 100,
                                    st[t]);
    });
  }
  m.run();
  EXPECT_EQ(trace.unpaired_ends(), 0u);
  for (std::uint32_t t = 0; t < 4; ++t) EXPECT_FALSE(trace.open(t));
  for (const auto& r : trace.records()) EXPECT_TRUE(r.paired);
}

TEST(TxTraceTest, CsvDumpIsWellFormed) {
  Machine m;
  stats::TxTrace trace;
  m.set_tx_trace(&trace);
  locks::TTASLock lock(m);
  locks::MCSLock aux(m);
  Counter cnt(m);
  stats::OpStats st;
  m.spawn([&](Ctx& c) {
    return worker<locks::TTASLock>(c, Scheme::kHle, lock, aux, cnt, 5, st);
  });
  m.run();
  std::FILE* f = std::tmpfile();
  ASSERT_NE(f, nullptr);
  trace.dump_csv(f);
  std::rewind(f);
  char buf[128];
  int lines = 0;
  while (std::fgets(buf, sizeof(buf), f) != nullptr) ++lines;
  std::fclose(f);
  EXPECT_EQ(lines, 1 + static_cast<int>(trace.records().size()));
}

}  // namespace
}  // namespace sihle
