// Domain-parallel simulation suite (runtime/domains.h; ctest label
// `domains`, also the CI tsan leg's entry point for the epoch-parallel
// executor).  Locks in the determinism contract:
//
//   * a one-domain DomainSet is bit-equal to a plain Machine run,
//   * sharded-workload results (content fingerprint, merged-timeline hash,
//     per-op stats) are byte-identical across --domain-threads counts and
//     across repeated runs,
//   * cross-domain accesses apply with external-agent semantics (values,
//     remote_access pricing, dooming a target transaction, deterministic
//     barrier order), and an all-blocked set reports deadlock,
//
// plus unit coverage of the Zipf generator and the persistent WorkPool the
// epoch loop fans out on.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "exp/engine.h"
#include "harness/shard_workload.h"
#include "util/zipf.h"
#include "runtime/ctx.h"
#include "runtime/domains.h"

namespace sihle {
namespace {

using runtime::Ctx;
using runtime::DomainSet;
using runtime::LineHandle;
using runtime::Machine;

struct Cell {
  LineHandle line;
  mem::Shared<std::uint64_t> v;
  explicit Cell(Machine& m, std::uint64_t init = 0)
      : line(m), v(line.line(), init) {}
};

sim::Task<void> tx_increments(Ctx& c, Cell& cell, int n, std::uint64_t& commits) {
  for (int i = 0; i < n; ++i) {
    const auto s = co_await c.with_tx([&c, &cell] {
      return [](Ctx& cc, Cell& k) -> sim::Task<void> {
        const std::uint64_t v = co_await cc.load(k.v);
        co_await cc.work(20);
        co_await cc.store(k.v, v + 1);
      }(c, cell);
    });
    if (s.ok()) ++commits;
  }
}

// --- single-domain equivalence -----------------------------------------------

TEST(Domains, SingleDomainMatchesPlainMachine) {
  constexpr int kThreads = 4;
  constexpr int kOps = 40;

  Machine::Config mc;
  mc.seed = 7;
  Machine plain(mc);
  auto plain_cell = std::make_unique<Cell>(plain);
  std::vector<std::uint64_t> plain_commits(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    plain.spawn([&, t](Ctx& c) {
      return tx_increments(c, *plain_cell, kOps, plain_commits[t]);
    });
  }
  plain.run();

  DomainSet::Config dc;
  dc.seed = 7;
  dc.domains = 1;
  dc.epoch_cycles = 512;  // the horizon only slices the schedule
  DomainSet set(dc);
  auto set_cell = std::make_unique<Cell>(set.domain(0));
  std::vector<std::uint64_t> set_commits(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    set.spawn(0, [&, t](Ctx& c) {
      return tx_increments(c, *set_cell, kOps, set_commits[t]);
    });
  }
  set.run();

  EXPECT_EQ(plain_cell->v.debug_value(), set_cell->v.debug_value());
  EXPECT_EQ(plain_commits, set_commits);
  EXPECT_EQ(plain.exec().max_clock(), set.max_clock());
  for (std::uint32_t t = 0; t < plain.exec().thread_count(); ++t) {
    EXPECT_EQ(plain.exec().thread(t).clock, set.domain(0).exec().thread(t).clock)
        << "thread " << t;
    EXPECT_EQ(plain.exec().thread(t).events,
              set.domain(0).exec().thread(t).events)
        << "thread " << t;
  }
}

// --- cross-domain access semantics -------------------------------------------

TEST(Domains, RemoteOpsReturnValuesAndChargeRemoteAccess) {
  DomainSet::Config dc;
  dc.domains = 2;
  dc.epoch_cycles = 128;
  DomainSet set(dc);
  auto cell = std::make_unique<Cell>(set.domain(0), 41);

  std::uint64_t loaded = 0;
  std::uint64_t pre_add = 0;
  sim::Cycles load_cost = 0;
  set.spawn(1, [&](Ctx& c) -> sim::Task<void> {
    return [](Ctx& cc, DomainSet& ds, Cell& k, std::uint64_t& out,
              std::uint64_t& pre, sim::Cycles& cost) -> sim::Task<void> {
      const sim::Cycles before = cc.now();
      out = co_await ds.remote_load(cc, 0, k.v);
      cost = cc.now() - before;
      pre = co_await ds.remote_fetch_add(cc, 0, k.v, std::uint64_t{1});
      co_await ds.remote_store(cc, 0, k.v, std::uint64_t{7});
    }(c, set, *cell, loaded, pre_add, load_cost);
  });
  set.run();

  EXPECT_EQ(loaded, 41u);
  EXPECT_EQ(pre_add, 41u);
  EXPECT_EQ(cell->v.debug_value(), 7u);
  EXPECT_EQ(set.remote_ops(), 3u);
  // The issuer resumes exactly remote_access cycles after issue: a remote
  // round trip is priced the same regardless of host-thread timing.
  EXPECT_EQ(load_cost, set.domain(0).costs().remote_access);
}

TEST(Domains, RemoteStoreDoomsTargetTransaction) {
  DomainSet::Config dc;
  dc.domains = 2;
  dc.epoch_cycles = 64;
  DomainSet set(dc);
  auto cell = std::make_unique<Cell>(set.domain(0));

  int aborts = 0;
  bool committed = false;
  set.spawn(0, [&](Ctx& c) -> sim::Task<void> {
    return [](Ctx& cc, Cell& k, int& ab, bool& done) -> sim::Task<void> {
      for (int i = 0; i < 50 && !done; ++i) {
        const auto s = co_await cc.with_tx([&cc, &k] {
          return [](Ctx& c2, Cell& k2) -> sim::Task<void> {
            const std::uint64_t v = co_await c2.load(k2.v);
            // Long enough to span several 64-cycle epochs, so the remote
            // store lands while the transaction is in flight.
            co_await c2.work(600);
            co_await c2.store(k2.v, v + 1);
          }(cc, k);
        });
        if (s.ok()) {
          done = true;
        } else {
          ++ab;
        }
      }
    }(c, *cell, aborts, committed);
  });
  set.spawn(1, [&](Ctx& c) -> sim::Task<void> {
    return [](Ctx& cc, DomainSet& ds, Cell& k) -> sim::Task<void> {
      co_await cc.work(100);
      co_await ds.remote_store(cc, 0, k.v, std::uint64_t{99});
    }(c, set, *cell);
  });
  set.run();

  EXPECT_TRUE(committed);
  EXPECT_GE(aborts, 1);  // the external store doomed the in-flight tx
  EXPECT_EQ(cell->v.debug_value(), 100u);  // retry read 99, committed +1
}

TEST(Domains, BarrierAppliesOpsInDeterministicOrder) {
  DomainSet::Config dc;
  dc.domains = 3;
  dc.epoch_cycles = 256;
  DomainSet set(dc);
  auto cell = std::make_unique<Cell>(set.domain(0));

  std::uint64_t pre[2] = {0, 0};
  for (std::size_t d = 1; d <= 2; ++d) {
    set.spawn(d, [&, d](Ctx& c) -> sim::Task<void> {
      return [](Ctx& cc, DomainSet& ds, Cell& k,
                std::uint64_t& out, std::uint64_t delta) -> sim::Task<void> {
        co_await cc.work(10);
        out = co_await ds.remote_fetch_add(cc, 0, k.v, delta);
      }(c, set, *cell, pre[d - 1], static_cast<std::uint64_t>(d));
    });
  }
  set.run();

  // Both adds land in one barrier; (clock, src_domain, tid) orders them, so
  // the pre-values partition {0, first delta} deterministically.
  EXPECT_EQ(cell->v.debug_value(), 3u);
  const bool domain1_first = pre[0] == 0 && pre[1] == 1;
  const bool domain2_first = pre[1] == 0 && pre[0] == 2;
  EXPECT_TRUE(domain1_first || domain2_first);
  EXPECT_EQ(set.remote_ops(), 2u);
}

TEST(Domains, AllBlockedWithNoPendingOpsThrowsDeadlock) {
  DomainSet::Config dc;
  dc.domains = 2;
  dc.epoch_cycles = 64;
  DomainSet set(dc);
  auto cell = std::make_unique<Cell>(set.domain(0));
  set.spawn(0, [&](Ctx& c) -> sim::Task<void> {
    return [](Ctx& cc, Cell& k) -> sim::Task<void> {
      (void)co_await runtime::spin_until(
          cc, k.v, [](std::uint64_t v) { return v == 42; });
    }(c, *cell);
  });
  set.spawn(1, [&](Ctx& c) -> sim::Task<void> {
    return [](Ctx& cc) -> sim::Task<void> { co_await cc.work(10); }(c);
  });
  EXPECT_THROW(set.run(), std::runtime_error);
}

// --- sharded-workload determinism --------------------------------------------

harness::ShardWorkloadConfig small_cfg() {
  harness::ShardWorkloadConfig cfg;
  cfg.shards = 4;
  cfg.threads_per_shard = 2;
  cfg.buckets_per_shard = 16;
  cfg.keyspace = 512;
  cfg.zipf_s = 0.4;
  cfg.total_ops = 2000;
  cfg.remote_every = 32;
  cfg.epoch_cycles = 512;
  cfg.seed = 3;
  cfg.hash_timeline = true;
  return cfg;
}

TEST(Domains, ShardedResultsAreIdenticalAcrossHostThreadCounts) {
  harness::ShardWorkloadConfig cfg = small_cfg();
  cfg.domain_threads = 1;
  const auto r1 = harness::run_shard_workload(cfg);
  ASSERT_TRUE(r1.tables_valid);
  EXPECT_GT(r1.remote_ops, 0u);

  for (const int dt : {2, 8}) {
    cfg.domain_threads = dt;
    const auto r = harness::run_shard_workload(cfg);
    EXPECT_EQ(r.fingerprint, r1.fingerprint) << "domain_threads=" << dt;
    EXPECT_EQ(r.timeline_hash, r1.timeline_hash) << "domain_threads=" << dt;
    EXPECT_EQ(r.makespan, r1.makespan) << "domain_threads=" << dt;
    EXPECT_EQ(r.total_events, r1.total_events) << "domain_threads=" << dt;
    EXPECT_EQ(r.remote_ops, r1.remote_ops) << "domain_threads=" << dt;
    EXPECT_EQ(r.telemetry, r1.telemetry) << "domain_threads=" << dt;
    EXPECT_EQ(r.stats.ops(), r1.stats.ops()) << "domain_threads=" << dt;
    EXPECT_EQ(r.epochs, r1.epochs) << "domain_threads=" << dt;
  }
}

TEST(Domains, RepeatedRunsAreIdentical) {
  const harness::ShardWorkloadConfig cfg = small_cfg();
  const auto a = harness::run_shard_workload(cfg);
  const auto b = harness::run_shard_workload(cfg);
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.timeline_hash, b.timeline_hash);
  EXPECT_EQ(a.makespan, b.makespan);
}

TEST(Domains, SeedChangesTheResult) {
  harness::ShardWorkloadConfig cfg = small_cfg();
  const auto a = harness::run_shard_workload(cfg);
  cfg.seed = cfg.seed + 1;
  const auto b = harness::run_shard_workload(cfg);
  EXPECT_NE(a.fingerprint, b.fingerprint);
}

TEST(Domains, ShardsOverlapInVirtualTime) {
  // The same op budget spread over 8 domains finishes in far less virtual
  // time than one domain: domains advance concurrently in simulated time
  // no matter how many host threads exist.
  harness::ShardWorkloadConfig cfg = small_cfg();
  cfg.remote_every = 0;  // isolate the partitioning effect
  cfg.shards = 1;
  const auto one = harness::run_shard_workload(cfg);
  cfg.shards = 8;
  const auto eight = harness::run_shard_workload(cfg);
  EXPECT_LT(eight.makespan * 3, one.makespan);
}

// --- zipf --------------------------------------------------------------------

TEST(Zipf, MassesSumToOneAndSkewOrdersRanks) {
  const util::Zipf z(64, 0.9);
  double sum = 0.0;
  for (std::size_t r = 0; r < z.n(); ++r) sum += z.mass(r);
  EXPECT_NEAR(sum, 1.0, 1e-12);
  EXPECT_GT(z.mass(0), z.mass(63));

  const util::Zipf uniform(64, 0.0);
  EXPECT_NEAR(uniform.mass(0), uniform.mass(63), 1e-12);
}

TEST(Zipf, DrawsAreInRangeAndDeterministic) {
  const util::Zipf z(100, 1.0);
  sim::Rng a(5);
  sim::Rng b(5);
  for (int i = 0; i < 1000; ++i) {
    const std::size_t ra = z.draw(a);
    EXPECT_LT(ra, 100u);
    EXPECT_EQ(ra, z.draw(b));
  }
}

// --- WorkPool ----------------------------------------------------------------

TEST(WorkPool, RunsEveryIndexOnceAndIsReusable) {
  exp::WorkPool pool(4);
  for (int round = 0; round < 3; ++round) {
    std::vector<std::atomic<int>> counts(97);
    pool.parallel_run(counts.size(),
                      [&](std::size_t i) { counts[i].fetch_add(1); });
    for (std::size_t i = 0; i < counts.size(); ++i) {
      EXPECT_EQ(counts[i].load(), 1) << "round " << round << " index " << i;
    }
  }
}

TEST(WorkPool, InlineModeRunsOnTheCallingThread) {
  exp::WorkPool pool(1);
  EXPECT_EQ(pool.jobs(), 1);
  std::vector<int> order;
  pool.parallel_run(5, [&](std::size_t i) {
    order.push_back(static_cast<int>(i));
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(WorkPool, TaskExceptionsPropagateToTheCaller) {
  exp::WorkPool pool(3);
  EXPECT_THROW(pool.parallel_run(16,
                                 [](std::size_t i) {
                                   if (i == 7) {
                                     throw std::runtime_error("boom");
                                   }
                                 }),
               std::runtime_error);
  // The pool survives a failed round.
  std::atomic<int> n{0};
  pool.parallel_run(8, [&](std::size_t) { n.fetch_add(1); });
  EXPECT_EQ(n.load(), 8);
}

}  // namespace
}  // namespace sihle
