// Bounded-model-checker explorer suite (src/mc; docs/VERIFICATION.md):
// exhaustive opacity + atomicity verification of the registry schemes on
// the small coupled-increment configs, the partial-order-reduction ratio
// gate, and determinism/trace plumbing of the explorer itself.
//
// These port the repo's opacity and final-state invariants from the
// statistical suites (opacity_test.cpp, linearizability_test.cpp) to
// *exhaustive* 2-thread exploration: instead of sampling schedules with a
// seeded RNG, every schedule within the bound is executed and judged.
#include <gtest/gtest.h>

#include "mc/explore.h"
#include "mc/workloads.h"
#include "stats/findings.h"

namespace sihle {
namespace {

using locks::LockKind;
using stats::FindingKind;

void expect_verified_clean(const mc::McScenarioResult& r, const char* what) {
  EXPECT_TRUE(r.stats.complete) << what << ": exploration was clipped";
  EXPECT_TRUE(r.clean()) << what << ": " << r.findings.total()
                         << " finding(s); first witness: "
                         << (r.counterexamples.empty()
                                 ? "none"
                                 : r.counterexamples[0].witness);
  EXPECT_EQ(r.bad_schedules, 0u) << what;
  EXPECT_GT(r.stats.runs, 0u) << what;
}

class SchemeSweep
    : public ::testing::TestWithParam<std::pair<const char*, LockKind>> {};

TEST_P(SchemeSweep, EveryScheduleIsOpaqueAndAtomic) {
  const auto& [spec, kind] = GetParam();
  expect_verified_clean(mc::explore_scheme(spec, kind), spec);
}

INSTANTIATE_TEST_SUITE_P(
    Registry, SchemeSweep,
    ::testing::Values(std::pair{"standard", LockKind::kTtas},
                      std::pair{"standard", LockKind::kMcs},
                      std::pair{"hle", LockKind::kTtas},
                      std::pair{"hle", LockKind::kMcs},
                      std::pair{"hle-scm", LockKind::kTtas},
                      std::pair{"hle-scm", LockKind::kMcs},
                      std::pair{"hle-retries:retries=2", LockKind::kTtas}),
    [](const auto& info) {
      std::string name = std::string(info.param.first) + "_" +
                         (info.param.second == LockKind::kTtas ? "ttas" : "mcs");
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

TEST(SchemeSweep, ScmGroupedBothFlavorsVerify) {
  expect_verified_clean(mc::explore_scm_grouped(elision::ScmFlavor::kHle),
                        "scm-grouped:hle");
  expect_verified_clean(mc::explore_scm_grouped(elision::ScmFlavor::kSlr),
                        "scm-grouped:slr");
}

// The acceptance config: 2 threads, 3 critical sections total, exhaustively
// verified for the paper's headline schemes.
TEST(SchemeSweep, ThreeOpConfigVerifies) {
  mc::ScenarioOptions opts;
  opts.ops0 = 2;
  opts.ops1 = 1;
  expect_verified_clean(mc::explore_scheme("hle", LockKind::kTtas, opts),
                        "hle 2x1");
  expect_verified_clean(mc::explore_scheme("hle-scm", LockKind::kTtas, opts),
                        "hle-scm 2x1");
}

// Spurious-abort injection branches the tree; the fallback paths it forces
// must stay opaque too.
TEST(SchemeSweep, SpuriousAbortBranchesStayClean) {
  mc::ScenarioOptions opts;
  opts.mc.spurious_budget = 1;
  const auto r = mc::explore_scheme("hle", LockKind::kTtas, opts);
  expect_verified_clean(r, "hle +spurious");
  // The budgeted injection point must actually have branched the space.
  EXPECT_GT(r.stats.runs, mc::explore_scheme("hle", LockKind::kTtas).stats.runs);
}

// Plain SLR: lazy subscription concedes that zombies may *read* torn state
// (kMcInconsistentAbortedRead — the documented concession), but within the
// explored bound no zombie may ever *commit* it, deadlock, or corrupt the
// counters.
TEST(SchemeSweep, SlrConcedesOnlyAbortedReads) {
  const auto r = mc::explore_scheme("slr:retries=2", LockKind::kTtas);
  EXPECT_TRUE(r.stats.complete);
  EXPECT_EQ(r.findings.count(FindingKind::kMcNonSerializableCommit), 0u);
  EXPECT_EQ(r.findings.count(FindingKind::kMcDeadlock), 0u);
  EXPECT_EQ(r.findings.count(FindingKind::kMcStepLimit), 0u);
  EXPECT_GT(r.findings.count(FindingKind::kMcInconsistentAbortedRead), 0u)
      << "the lazy-subscription concession should be observable";
}

// Mixed workload sensitivity: a standard-locking writer against a lazy SLR
// reader still exhibits the aborted-read concession — the detector is not
// blind to asymmetric configurations.
TEST(SchemeSweep, MixedStandardSlrShowsAbortedReads) {
  const auto r =
      mc::explore_mixed("standard", "slr:retries=2", LockKind::kTtas);
  EXPECT_TRUE(r.stats.complete);
  EXPECT_EQ(r.findings.count(FindingKind::kMcNonSerializableCommit), 0u);
  EXPECT_GT(r.findings.count(FindingKind::kMcInconsistentAbortedRead), 0u);
}

// The acceptance gate: sleep sets + invisible-step commitment must reduce
// the explored-schedule count by at least 10x against the naive DFS on the
// same scenario.  The naive run is capped, so the ratio is a lower bound.
TEST(Reduction, PartialOrderReductionAtLeastTenfold) {
  mc::ScenarioOptions naive;
  naive.mc.use_sleep_sets = false;
  naive.mc.use_singleton_steps = false;
  naive.mc.max_runs = 20000;
  const auto rn = mc::explore_scheme("hle", LockKind::kTtas, naive);
  const auto rp = mc::explore_scheme("hle", LockKind::kTtas);
  ASSERT_TRUE(rp.stats.complete);
  ASSERT_GT(rp.stats.runs, 0u);
  EXPECT_GT(rp.stats.sleep_pruned, 0u);
  EXPECT_GT(rp.stats.singleton_commits, 0u);
  const std::uint64_t naive_explored = rn.stats.runs + rn.stats.step_limited;
  EXPECT_GE(naive_explored, 10 * rp.stats.runs)
      << "POR explored " << rp.stats.runs << " schedules vs naive "
      << naive_explored;
}

// Exploration is deterministic: two sweeps of the same scenario agree on
// every statistic (the replay-based DFS has no hidden state).
TEST(Explorer, DeterministicAcrossRuns) {
  const auto a = mc::explore_scheme("hle", LockKind::kTtas);
  const auto b = mc::explore_scheme("hle", LockKind::kTtas);
  EXPECT_EQ(a.stats.runs, b.stats.runs);
  EXPECT_EQ(a.stats.transitions, b.stats.transitions);
  EXPECT_EQ(a.stats.sleep_pruned, b.stats.sleep_pruned);
  EXPECT_EQ(a.stats.singleton_commits, b.stats.singleton_commits);
  EXPECT_EQ(a.findings.total(), b.findings.total());
}

TEST(Explorer, ChoiceTraceRecsRoundTrip) {
  const mc::ChoiceTrace trace = {{sim::ChoiceKind::kThread, 1},
                                 {sim::ChoiceKind::kSpurious, 0},
                                 {sim::ChoiceKind::kConflictTie, 1}};
  const auto recs = mc::recs_from_trace(trace);
  ASSERT_EQ(recs.size(), 3u);
  EXPECT_EQ(recs[0].kind, "thread");
  EXPECT_EQ(recs[1].kind, "spurious");
  EXPECT_EQ(recs[2].kind, "conflict-tie");
  mc::ChoiceTrace back;
  ASSERT_TRUE(mc::trace_from_recs(recs, back));
  EXPECT_EQ(back, trace);
  // Unknown kind names are rejected, not guessed.
  ASSERT_FALSE(mc::trace_from_recs({{"coin-flip", 0}}, back));
  sim::ChoiceKind k;
  EXPECT_FALSE(mc::choice_kind_from_string("coin-flip", k));
  EXPECT_TRUE(mc::choice_kind_from_string("thread", k));
  EXPECT_EQ(k, sim::ChoiceKind::kThread);
}

TEST(Explorer, BadSpecThrows) {
  EXPECT_THROW(mc::explore_scheme("no-such-scheme", LockKind::kTtas),
               std::invalid_argument);
}

// PR-1's lockset checker runs under every explored schedule: with the
// planted test_omit_reader_doom bug the sweep must surface missed-doom
// findings that a lucky sampled schedule could miss; with a correct HTM it
// must stay silent.
TEST(LocksetUnderMc, PlantedMissedDoomIsFoundExhaustively) {
  mc::ScenarioOptions opts;
  opts.htm.test_omit_reader_doom = true;
  const auto r = mc::explore_scheme("hle", LockKind::kTtas, opts);
  EXPECT_GT(r.findings.count(FindingKind::kMissedDoom), 0u)
      << "exhaustive exploration should exhibit the planted bug";
}

}  // namespace
}  // namespace sihle
