// Tests of the simulator hot-path machinery (docs/PERFORMANCE.md): the
// staged-write buffer's O(1) store-to-load forwarding across its
// inline→overflow boundary, capacity aborts at the same boundary, and the
// coroutine-frame pool's recycling across commit and abort unwinds.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "htm/htm.h"
#include "mem/directory.h"
#include "mem/shared.h"
#include "runtime/ctx.h"
#include "sim/frame_pool.h"
#include "sim/task.h"

namespace sihle {
namespace {

using htm::AbortCause;
using htm::Htm;
using htm::HtmConfig;
using mem::Directory;
using mem::Shared;
using runtime::Ctx;
using runtime::LineHandle;
using runtime::Machine;

struct Fixture {
  Directory dir;
  Htm htm;
  sim::Rng rng{1};
  std::vector<std::unique_ptr<Shared<std::uint64_t>>> owned;
  explicit Fixture(HtmConfig cfg = {}) : htm(dir, cfg) {}
  Shared<std::uint64_t>& cell(std::uint64_t init = 0) {
    owned.push_back(std::make_unique<Shared<std::uint64_t>>(dir.alloc(), init));
    return *owned.back();
  }
};

// --- Store-to-load forwarding across the write buffer ---------------------

TEST(WriteBufferForwarding, LastStoreWinsOnRepeatedStores) {
  Fixture f;
  auto& x = f.cell(7);
  f.htm.begin(0, f.rng);
  for (std::uint64_t v = 1; v <= 5; ++v) {
    EXPECT_TRUE(f.htm.tx_store(0, x, v, f.rng).abort.ok());
    const auto r = f.htm.tx_load(0, x, f.rng);
    EXPECT_TRUE(r.abort.ok());
    EXPECT_EQ(r.value, v);  // forwarded, not memory's 7
  }
  std::vector<mem::Line> published;
  EXPECT_TRUE(f.htm.commit(0, published).ok());
  EXPECT_EQ(f.htm.nontx_load(1, x), 5u);
}

// Writes spill past the buffer's inline capacity (8 entries) into the
// hashed index; forwarding must stay exact for every staged cell through
// the crossover, and repeated stores must keep updating in place.
TEST(WriteBufferForwarding, ForwardingAcrossInlineOverflowBoundary) {
  HtmConfig cfg;
  cfg.max_write_lines = 64;
  Fixture f(cfg);
  constexpr int kCells = 12;  // inline capacity is 8 — crosses the boundary
  std::vector<Shared<std::uint64_t>*> cells;
  for (int i = 0; i < kCells; ++i) cells.push_back(&f.cell(1000 + i));

  f.htm.begin(0, f.rng);
  for (int i = 0; i < kCells; ++i) {
    EXPECT_TRUE(f.htm.tx_store(0, *cells[i], 100 + i, f.rng).abort.ok());
    // After every insertion — including the one that triggers the index
    // rebuild — every staged cell must forward its own value.
    for (int j = 0; j <= i; ++j) {
      const auto r = f.htm.tx_load(0, *cells[j], f.rng);
      ASSERT_TRUE(r.abort.ok());
      EXPECT_EQ(r.value, 100u + j) << "cell " << j << " after " << i + 1
                                   << " staged writes";
    }
  }
  // Overwrite each cell now that the buffer is in overflow mode: updates
  // must hit the existing entry, not append duplicates.
  for (int i = 0; i < kCells; ++i) {
    EXPECT_TRUE(f.htm.tx_store(0, *cells[i], 200 + i, f.rng).abort.ok());
  }
  for (int i = 0; i < kCells; ++i) {
    const auto r = f.htm.tx_load(0, *cells[i], f.rng);
    ASSERT_TRUE(r.abort.ok());
    EXPECT_EQ(r.value, 200u + i);
  }

  std::vector<mem::Line> published;
  EXPECT_TRUE(f.htm.commit(0, published).ok());
  // One published line per distinct cell (no duplicate entries), in
  // first-store order — the contract the old linear buffer established.
  ASSERT_EQ(published.size(), static_cast<std::size_t>(kCells));
  for (int i = 0; i < kCells; ++i) {
    EXPECT_EQ(published[i], cells[i]->line());
    EXPECT_EQ(f.htm.nontx_load(1, *cells[i]), 200u + i);
  }
}

TEST(WriteBufferForwarding, CapacityAbortAtInlineOverflowBoundary) {
  // max_write_lines one past the inline capacity: the buffer must overflow
  // into its index and then hit the capacity wall, in that order.
  HtmConfig cfg;
  cfg.max_write_lines = 9;
  Fixture f(cfg);
  std::vector<Shared<std::uint64_t>*> cells;
  for (int i = 0; i < 10; ++i) cells.push_back(&f.cell(50 + i));

  f.htm.begin(0, f.rng);
  for (int i = 0; i < 9; ++i) {
    EXPECT_TRUE(f.htm.tx_store(0, *cells[i], i, f.rng).abort.ok());
  }
  const auto r = f.htm.tx_store(0, *cells[9], 9, f.rng);
  EXPECT_EQ(r.abort.cause, AbortCause::kCapacity);
  EXPECT_FALSE(r.abort.retry);  // capacity aborts are not transient
  f.htm.rollback(0);
  // Nothing leaked to memory, and the buffer is clean for the next tx.
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(f.htm.nontx_load(1, *cells[i]), 50u + i);
  }
  f.htm.begin(0, f.rng);
  const auto reread = f.htm.tx_load(0, *cells[0], f.rng);
  EXPECT_TRUE(reread.abort.ok());
  EXPECT_EQ(reread.value, 50u);  // no stale forwarding from the aborted tx
  f.htm.rollback(0);
}

// An abort with the buffer in overflow mode must discard all staged writes
// (the O(1) generation-bump clear) and run undo actions as before.
TEST(WriteBufferForwarding, AbortDiscardsOverflowedBuffer) {
  HtmConfig cfg;
  cfg.max_write_lines = 64;
  Fixture f(cfg);
  std::vector<Shared<std::uint64_t>*> cells;
  for (int i = 0; i < 12; ++i) cells.push_back(&f.cell(9000 + i));

  int undone = 0;
  f.htm.begin(0, f.rng);
  f.htm.tx(0).undo_on_abort.push_back([&] { undone++; });
  for (int i = 0; i < 12; ++i) {
    EXPECT_TRUE(f.htm.tx_store(0, *cells[i], i, f.rng).abort.ok());
  }
  // A non-transactional store from another thread dooms the writer.
  f.htm.nontx_store(1, *cells[3], 1234);
  EXPECT_TRUE(f.htm.tx(0).doomed);
  f.htm.rollback(0);
  EXPECT_EQ(undone, 1);
  EXPECT_EQ(f.htm.nontx_load(1, *cells[3]), 1234u);
  for (int i = 0; i < 12; ++i) {
    if (i == 3) continue;
    EXPECT_EQ(f.htm.nontx_load(1, *cells[i]), 9000u + i);
  }
}

// --- Coroutine-frame pool -------------------------------------------------

struct Counter {
  LineHandle line;
  Shared<std::uint64_t> value;
  explicit Counter(Machine& m) : line(m), value(line.line(), 0) {}
};

sim::Task<void> incr_once(Ctx& c, Counter& cnt) {
  const std::uint64_t v = co_await c.load(cnt.value);
  co_await c.store(cnt.value, v + 1);
}

sim::Task<void> committed_tx_loop(Ctx& c, Counter& cnt, int n) {
  for (int i = 0; i < n; ++i) {
    const auto s = co_await c.with_tx([&c, &cnt] { return incr_once(c, cnt); });
    (void)s;
  }
}

TEST(FramePool, ReusesFramesAcrossManyTransactions) {
  Machine m;
  Counter cnt(m);
  constexpr int kTxs = 10000;
  m.spawn([&](Ctx& c) { return committed_tx_loop(c, cnt, kTxs); });
  m.run();
  EXPECT_EQ(m.htm().nontx_load(0, cnt.value), static_cast<std::uint64_t>(kTxs));

  const sim::FramePool& pool = m.frame_pool();
  if (!sim::kFramePoolRecycles) {
    // Under ASan the pool deliberately serves nothing (frames come from the
    // host allocator so use-after-free stays byte-exact).
    EXPECT_EQ(pool.served(), 0u);
    return;
  }
  // Every transaction allocates at least a with_tx frame and a body frame.
  EXPECT_GT(pool.served(), static_cast<std::uint64_t>(2 * kTxs));
  // Steady state: after the first few operations warm the buckets, frames
  // come from the free lists.  Fresh allocations are bounded by the warmup,
  // not by the transaction count.
  EXPECT_LT(pool.fresh(), 64u);
  EXPECT_GT(pool.recycled(), pool.served() - 64);
  // Only the root wrapper and the thread-body frame it owns are still live
  // after the run (both are freed in ~Executor).
  EXPECT_LE(pool.outstanding(), 2u);
}

sim::Task<void> contended_tx_loop(Ctx& c, Counter& cnt, int n) {
  for (int i = 0; i < n; ++i) {
    while (true) {
      const auto s = co_await c.with_tx([&c, &cnt] { return incr_once(c, cnt); });
      if (s.ok()) break;
      co_await c.work(5 + c.rng().below(16));  // randomized backoff
    }
  }
}

// Aborts unwind the workload coroutine chain via TxAbortException; every
// frame destroyed during the unwind must return to the pool (and under
// ASan, where recycling is off, the unwind must stay allocator-clean).
TEST(FramePool, AbortUnwindRecyclesFrames) {
  Machine::Config mc;
  mc.seed = 11;
  mc.htm.spurious_abort_per_access = 0.01;
  Machine m(mc);
  Counter cnt(m);
  constexpr int kThreads = 2;
  constexpr int kTxs = 300;
  for (int t = 0; t < kThreads; ++t) {
    m.spawn([&](Ctx& c) { return contended_tx_loop(c, cnt, kTxs); });
  }
  m.run();
  EXPECT_EQ(m.htm().nontx_load(0, cnt.value),
            static_cast<std::uint64_t>(kThreads * kTxs));

  const sim::FramePool& pool = m.frame_pool();
  if (!sim::kFramePoolRecycles) return;
  // All frames allocated during the run — including those destroyed by
  // abort unwinds — are back in the free lists except the root wrapper and
  // the thread-body frame it owns (two per thread, freed in ~Executor).
  EXPECT_LE(pool.outstanding(), static_cast<std::uint64_t>(2 * kThreads));
  EXPECT_LT(pool.fresh(), 96u);
}

sim::Task<void> trivial_task() { co_return; }

// A frame may outlive the pool that served it: the allocation header keeps
// a control block alive, and late frees fall back to the host allocator.
TEST(FramePool, FramesMayOutliveTheirPool) {
  std::optional<sim::Task<void>> survivor;
  {
    sim::FramePool pool;
    sim::ActiveFramePool scope(&pool);
    survivor.emplace(trivial_task());
    if (sim::kFramePoolRecycles) {
      EXPECT_EQ(pool.outstanding(), 1u);
    }
    // scope restores the previous active pool, then pool dies with the
    // frame still live — orphaning it rather than freeing it.
  }
  survivor.reset();  // must not crash or touch freed pool memory
}

}  // namespace
}  // namespace sihle
