// Linearizability of the lock-elided data structures, checked on real
// concurrent histories rather than just final state.
//
// Each completed operation is recorded with its invocation and response
// times (virtual clocks), its kind, key, and result.  For set ADTs,
// operations on distinct keys commute, so the full history is linearizable
// iff each per-key subhistory is linearizable against the sequential set
// spec — which a small Wing & Gong search decides exactly.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "ds/hashtable.h"
#include "ds/linkedlist.h"
#include "ds/rbtree.h"
#include "ds/skiplist.h"
#include "elision/schemes.h"
#include "locks/locks.h"
#include "runtime/ctx.h"

namespace sihle {
namespace {

using elision::Scheme;
using runtime::Ctx;
using runtime::Machine;

enum class OpKind : std::uint8_t { kInsert, kErase, kContains };

struct Event {
  sim::Cycles invoke;
  sim::Cycles respond;
  OpKind kind;
  std::int64_t key;
  bool result;
};

// Wing & Gong linearizability check of one key's subhistory against the
// single-element set spec (state = present/absent).
class PerKeyChecker {
 public:
  explicit PerKeyChecker(std::vector<Event> events, bool initially_present)
      : events_(std::move(events)), init_(initially_present) {
    std::sort(events_.begin(), events_.end(),
              [](const Event& a, const Event& b) { return a.invoke < b.invoke; });
  }

  bool linearizable() {
    taken_.assign(events_.size(), false);
    return search(0, init_);
  }

 private:
  static bool apply(OpKind k, bool result, bool& present) {
    switch (k) {
      case OpKind::kInsert:
        if (result != !present) return false;
        present = true;
        return true;
      case OpKind::kErase:
        if (result != present) return false;
        present = false;
        return true;
      case OpKind::kContains:
        return result == present;
    }
    return false;
  }

  bool search(std::size_t done, bool present) {
    if (done == events_.size()) return true;
    // Candidates: minimal (by invoke) pending operations that could go
    // next, i.e. every pending op whose invocation precedes the earliest
    // pending response.
    sim::Cycles earliest_respond = ~sim::Cycles{0};
    for (std::size_t i = 0; i < events_.size(); ++i) {
      if (!taken_[i]) earliest_respond = std::min(earliest_respond, events_[i].respond);
    }
    for (std::size_t i = 0; i < events_.size(); ++i) {
      if (taken_[i] || events_[i].invoke > earliest_respond) continue;
      bool next = present;
      if (!apply(events_[i].kind, events_[i].result, next)) continue;
      taken_[i] = true;
      if (search(done + 1, next)) return true;
      taken_[i] = false;
    }
    return false;
  }

  std::vector<Event> events_;
  bool init_;
  std::vector<bool> taken_;
};

// --- History recording -------------------------------------------------------

template <class DS>
sim::Task<void> history_body(Ctx& c, DS& ds, OpKind kind, std::int64_t key,
                             bool* result) {
  if (kind == OpKind::kInsert) {
    *result = co_await ds.insert(c, key);
  } else if (kind == OpKind::kErase) {
    *result = co_await ds.erase(c, key);
  } else {
    *result = co_await ds.contains(c, key);
  }
}

template <class DS, class Lock>
sim::Task<void> history_worker(Ctx& c, Scheme s, Lock& lock, locks::MCSLock& aux,
                               DS& ds, int ops, std::uint64_t key_domain,
                               stats::OpStats& st, std::vector<Event>& log) {
  for (int i = 0; i < ops; ++i) {
    const auto key = static_cast<std::int64_t>(c.rng().below(key_domain));
    const auto kind = static_cast<OpKind>(c.rng().below(3));
    Event e;
    e.invoke = c.now();
    e.kind = kind;
    e.key = key;
    bool result = false;
    co_await elision::run_op(
        s, c, lock, aux,
        [&ds, kind, key, &result](Ctx& cc) {
          return history_body(cc, ds, kind, key, &result);
        },
        st);
    e.respond = c.now();
    e.result = result;
    log.push_back(e);
    co_await c.work(c.rng().below(100));
  }
}

template <class DS>
struct MakeDs;
template <>
struct MakeDs<ds::RBTree> {
  static ds::RBTree* make(Machine& m) { return new ds::RBTree(m); }
};
template <>
struct MakeDs<ds::HashTable> {
  static ds::HashTable* make(Machine& m) { return new ds::HashTable(m, 32); }
};
template <>
struct MakeDs<ds::LinkedListSet> {
  static ds::LinkedListSet* make(Machine& m) { return new ds::LinkedListSet(m); }
};
template <>
struct MakeDs<ds::SkipList> {
  static ds::SkipList* make(Machine& m) { return new ds::SkipList(m); }
};

template <class DS>
void check_linearizable(Scheme scheme, std::uint64_t seed) {
  Machine::Config cfg;
  cfg.seed = seed;
  cfg.htm.spurious_abort_per_access = 2e-4;
  Machine m(cfg);
  locks::TTASLock lock(m);
  locks::MCSLock aux(m);
  std::unique_ptr<DS> ds(MakeDs<DS>::make(m));
  constexpr std::uint64_t kDomain = 12;  // few keys -> dense per-key histories
  std::vector<std::int64_t> initial;
  for (std::int64_t k = 0; k < static_cast<std::int64_t>(kDomain); k += 2) {
    ds->debug_insert(k);
    initial.push_back(k);
  }

  const int threads = 6;
  std::vector<stats::OpStats> st(threads);
  std::vector<std::vector<Event>> logs(threads);
  for (int t = 0; t < threads; ++t) {
    m.spawn([&, t](Ctx& c) {
      return history_worker<DS, locks::TTASLock>(c, scheme, lock, aux, *ds, 120,
                                                 kDomain, st[t], logs[t]);
    });
  }
  m.run();

  std::map<std::int64_t, std::vector<Event>> per_key;
  std::size_t total = 0;
  for (const auto& log : logs) {
    for (const Event& e : log) {
      per_key[e.key].push_back(e);
      ++total;
    }
  }
  EXPECT_EQ(total, static_cast<std::size_t>(threads) * 120u);

  for (auto& [key, events] : per_key) {
    const bool initially =
        std::find(initial.begin(), initial.end(), key) != initial.end();
    PerKeyChecker checker(std::move(events), initially);
    EXPECT_TRUE(checker.linearizable())
        << "key " << key << " under " << elision::to_string(scheme) << " seed "
        << seed;
  }
}

struct LinParam {
  Scheme scheme;
  std::uint64_t seed;
};

class Linearizability : public ::testing::TestWithParam<LinParam> {};

TEST_P(Linearizability, RBTreeHistories) {
  check_linearizable<ds::RBTree>(GetParam().scheme, GetParam().seed);
}
TEST_P(Linearizability, HashTableHistories) {
  check_linearizable<ds::HashTable>(GetParam().scheme, GetParam().seed);
}
TEST_P(Linearizability, LinkedListHistories) {
  check_linearizable<ds::LinkedListSet>(GetParam().scheme, GetParam().seed);
}
TEST_P(Linearizability, SkipListHistories) {
  check_linearizable<ds::SkipList>(GetParam().scheme, GetParam().seed);
}

std::vector<LinParam> lin_params() {
  std::vector<LinParam> out;
  for (Scheme s : elision::kAllSchemes) {
    for (std::uint64_t seed : {3u, 5u}) out.push_back({s, seed});
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, Linearizability,
                         ::testing::ValuesIn(lin_params()),
                         [](const ::testing::TestParamInfo<LinParam>& info) {
                           std::string n =
                               std::string(elision::to_string(info.param.scheme)) +
                               "_s" + std::to_string(info.param.seed);
                           for (char& ch : n) {
                             if (ch == '-' || ch == ' ') ch = '_';
                           }
                           return n;
                         });

// Sanity: the checker itself rejects a non-linearizable history.
TEST(PerKeyCheckerSelfTest, RejectsImpossibleHistory) {
  // Sequential (non-overlapping) history: insert->true, then insert->true
  // again without an erase in between: impossible.
  std::vector<Event> bad = {
      {0, 10, OpKind::kInsert, 1, true},
      {20, 30, OpKind::kInsert, 1, true},
  };
  PerKeyChecker checker(std::move(bad), false);
  EXPECT_FALSE(checker.linearizable());
}

TEST(PerKeyCheckerSelfTest, AcceptsOverlapReordering) {
  // Two overlapping ops whose only valid linearization inverts real-time
  // response order within the overlap window.
  std::vector<Event> h = {
      {0, 100, OpKind::kContains, 1, true},  // sees the insert...
      {10, 50, OpKind::kInsert, 1, true},    // ...that responds earlier
  };
  PerKeyChecker checker(std::move(h), false);
  EXPECT_TRUE(checker.linearizable());
}

}  // namespace
}  // namespace sihle
