// End-to-end mutual-exclusion property test: a shared counter incremented
// through every scheme × lock combination must equal threads × ops — under
// any interleaving, any abort pattern, and with spurious aborts injected.
//
// Runs through elision::run_cs / ElidedLock — the scheme × LockKind product
// lives in one place (elision/elided_lock.h), so there is no per-lock
// template switch here.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

#include "elision/elided_lock.h"
#include "elision/registry.h"
#include "locks/locks.h"
#include "runtime/ctx.h"

namespace sihle {
namespace {

using elision::Scheme;
using locks::LockKind;
using runtime::Ctx;
using runtime::LineHandle;
using runtime::Machine;

struct Counter {
  LineHandle line;
  mem::Shared<std::uint64_t> value;
  explicit Counter(Machine& m) : line(m), value(line.line(), 0) {}
};

sim::Task<void> incr_body(Ctx& c, Counter& cnt, std::uint64_t work) {
  const std::uint64_t v = co_await c.load(cnt.value);
  co_await c.work(work);
  co_await c.store(cnt.value, v + 1);
}

sim::Task<void> worker(Ctx& c, elision::Policy policy, elision::ElidedLock& lock,
                       Counter& cnt, int ops, stats::OpStats& st) {
  for (int i = 0; i < ops; ++i) {
    co_await elision::run_cs(
        policy, c, lock, [&cnt](Ctx& cc) { return incr_body(cc, cnt, 30); }, st);
  }
}

stats::OpStats run_counter(elision::Policy policy, LockKind kind, int threads,
                           int ops, std::uint64_t seed, double spurious = 0.0) {
  Machine::Config cfg;
  cfg.seed = seed;
  cfg.htm.spurious_abort_per_access = spurious;
  Machine m(cfg);
  elision::ElidedLock lock(m, kind, policy.conflict.aux);
  Counter cnt(m);
  std::vector<stats::OpStats> per_thread(threads);
  for (int t = 0; t < threads; ++t) {
    m.spawn([&, t](Ctx& c) {
      return worker(c, policy, lock, cnt, ops, per_thread[t]);
    });
  }
  m.run();
  EXPECT_EQ(cnt.value.debug_value(),
            static_cast<std::uint64_t>(threads) * static_cast<std::uint64_t>(ops));
  EXPECT_FALSE(lock.main().debug_locked());
  stats::OpStats total;
  for (const auto& st : per_thread) total += st;
  EXPECT_EQ(total.ops(), static_cast<std::uint64_t>(threads) * ops);
  return total;
}

struct Param {
  Scheme scheme;
  LockKind lock;
  int threads;
  std::uint64_t seed;
  double spurious;
};

class CounterInvariant : public ::testing::TestWithParam<Param> {};

TEST_P(CounterInvariant, CountsExactly) {
  const Param p = GetParam();
  run_counter(p.scheme, p.lock, p.threads, 300, p.seed, p.spurious);
}

std::vector<Param> all_params() {
  std::vector<Param> out;
  const LockKind lock_kinds[] = {
      LockKind::kTtas,           LockKind::kMcs,
      LockKind::kTicket,         LockKind::kClh,
      LockKind::kAnderson,       LockKind::kElidableTicket,
      LockKind::kElidableClh,    LockKind::kElidableAnderson};
  for (Scheme s : elision::kAllSchemesExtended) {
    for (LockKind l : lock_kinds) {
      for (int threads : {1, 2, 4, 8}) {
        out.push_back({s, l, threads, 42, 0.0});
      }
      // With spurious aborts injected, every path (retry, serializing path,
      // non-speculative fallback) gets exercised.
      out.push_back({s, l, 8, 7, 1e-3});
    }
  }
  return out;
}

std::string param_name(const ::testing::TestParamInfo<Param>& info) {
  const Param& p = info.param;
  std::string name = std::string(elision::to_string(p.scheme)) + "_" +
                     locks::to_string(p.lock) + "_t" + std::to_string(p.threads) +
                     (p.spurious > 0 ? "_spurious" : "");
  for (char& ch : name) {
    if (ch == '-' || ch == ' ') ch = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(AllSchemesAllLocks, CounterInvariant,
                         ::testing::ValuesIn(all_params()), param_name);

// Parameterized (non-canonical) policies must uphold the same invariant:
// a ticket-lock SCM aux, a widened SLR retry budget with backoff, and a
// retuned adaptive policy, across a fair and an unfair main lock.
TEST(CounterInvariant, ParameterizedPolicies) {
  for (const char* spec :
       {"hle-scm:aux=ticket", "hle-scm:aux=ticket,retries=5",
        "slr:retries=20,backoff=exp", "hle:retries=4,backoff=exp",
        "adaptive:tries=1,skip=10"}) {
    SCOPED_TRACE(spec);
    const auto policy = elision::parse_policy(spec);
    ASSERT_TRUE(policy.has_value());
    for (LockKind l : {LockKind::kTtas, LockKind::kMcs}) {
      run_counter(*policy, l, 8, 300, 42, 1e-3);
    }
  }
}

// The single-thread no-lock baseline used to normalize Figure 9.
TEST(CounterInvariant, NoLockSingleThread) {
  Machine m;
  elision::ElidedLock lock(m, LockKind::kTtas);
  Counter cnt(m);
  stats::OpStats st;
  m.spawn([&](Ctx& c) {
    return worker(c, Scheme::kNoLock, lock, cnt, 500, st);
  });
  m.run();
  EXPECT_EQ(cnt.value.debug_value(), 500u);
  EXPECT_EQ(st.nonspec, 500u);
}

}  // namespace
}  // namespace sihle
