// The mechanized SLR lazy-subscription safety argument
// (docs/VERIFICATION.md): the explorer must *exhibit* the unsafety of lazy
// subscription as a concrete minimal counterexample under both modeled
// failure modes (wild store to the lock line, early commit), and must
// *prove* — exhaustively, within the bound — that Dice et al.'s commit-time
// subscription check (slr:subscribe=commit-checked) closes the hole.
//
// A pinned counterexample trace lives in tests/data/ as sihle-mc JSON and
// is replayed on every run, so the specific interleaving that breaks lazy
// subscription is a regression artifact, not a rediscovery.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "mc/workloads.h"
#include "stats/export.h"
#include "stats/findings.h"

namespace sihle {
namespace {

using elision::SubscribeKind;
using htm::SlrHazard;
using stats::FindingKind;

class HazardSweep : public ::testing::TestWithParam<SlrHazard> {};

TEST_P(HazardSweep, LazySubscriptionCommitsATornSnapshot) {
  const auto r = mc::explore_slr_hazard(GetParam(), SubscribeKind::kLazy);
  ASSERT_TRUE(r.stats.complete);
  EXPECT_GT(r.findings.count(FindingKind::kMcNonSerializableCommit), 0u)
      << "the checker must exhibit the lazy-subscription violation";
  // The shortest counterexample is kept first and must be replayable.
  ASSERT_FALSE(r.counterexamples.empty());
  bool found_commit_violation = false;
  for (const auto& cx : r.counterexamples) {
    if (cx.finding.kind != FindingKind::kMcNonSerializableCommit) continue;
    found_commit_violation = true;
    EXPECT_FALSE(cx.trace.empty());
    EXPECT_NE(cx.witness.find("no serial witness"), std::string::npos);
    EXPECT_TRUE(
        mc::replay_hazard_counterexample(cx, GetParam(), SubscribeKind::kLazy))
        << "recorded counterexample did not reproduce on replay";
    break;
  }
  EXPECT_TRUE(found_commit_violation)
      << "no commit violation survived the shortest-trace filter";
}

TEST_P(HazardSweep, CommitCheckedSubscriptionClosesTheHole) {
  const auto r =
      mc::explore_slr_hazard(GetParam(), SubscribeKind::kCommitChecked);
  ASSERT_TRUE(r.stats.complete)
      << "the proof is exhaustive only if exploration completed";
  EXPECT_EQ(r.findings.count(FindingKind::kMcNonSerializableCommit), 0u)
      << "commit-checked subscription must never commit a torn snapshot";
  EXPECT_EQ(r.findings.count(FindingKind::kMcDeadlock), 0u);
  // The aborted-read concession is inherent to *any* lazy-read SLR (the
  // zombie reads before the doom lands); commit-time checking bounds the
  // damage to aborts, it does not prevent the reads.
  EXPECT_GT(r.findings.count(FindingKind::kMcInconsistentAbortedRead), 0u);
}

INSTANTIATE_TEST_SUITE_P(Modes, HazardSweep,
                         ::testing::Values(SlrHazard::kWildStore,
                                           SlrHazard::kEarlyCommit),
                         [](const auto& info) {
                           return info.param == SlrHazard::kWildStore
                                      ? "wild_store"
                                      : "early_commit";
                         });

std::string golden_path() {
  return std::string(SIHLE_TEST_DATA_DIR) + "/mc_slr_wildstore_cx.json";
}

// The pinned minimal counterexample: committed to the repo, byte-stable,
// and replayed (not re-searched) on every test run.
TEST(PinnedCounterexample, WildStoreTraceStillReproduces) {
  if (std::getenv("SIHLE_REGEN_GOLDEN") != nullptr) {
    const auto r =
        mc::explore_slr_hazard(SlrHazard::kWildStore, SubscribeKind::kLazy);
    stats::McDocument doc;
    for (const auto& cx : r.counterexamples) {
      if (cx.finding.kind == FindingKind::kMcNonSerializableCommit) {
        doc.counterexamples.push_back(cx);  // shortest-first ordering
        break;
      }
    }
    ASSERT_FALSE(doc.counterexamples.empty());
    std::ofstream out(golden_path(), std::ios::binary);
    ASSERT_TRUE(out) << "cannot regenerate " << golden_path();
    out << stats::export_mc_json(doc);
  }

  std::ifstream in(golden_path(), std::ios::binary);
  ASSERT_TRUE(in) << "missing golden " << golden_path()
                  << " (regenerate with SIHLE_REGEN_GOLDEN=1)";
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();

  stats::McDocument doc;
  std::string error;
  ASSERT_TRUE(stats::parse_mc_json(text, doc, &error)) << error;
  ASSERT_EQ(doc.counterexamples.size(), 1u);
  const auto& cx = doc.counterexamples[0];
  EXPECT_EQ(cx.finding.kind, FindingKind::kMcNonSerializableCommit);
  EXPECT_EQ(cx.scheme, "slr:subscribe=lazy");

  // Byte-exact round trip mirrors results_v1_golden.json's guarantee.
  EXPECT_EQ(stats::export_mc_json(doc), text)
      << "golden drift: rerun with SIHLE_REGEN_GOLDEN=1 and review the diff";

  // The pinned schedule still commits a torn snapshot under lazy
  // subscription...
  EXPECT_TRUE(mc::replay_hazard_counterexample(cx, SlrHazard::kWildStore,
                                               SubscribeKind::kLazy))
      << "pinned counterexample no longer reproduces";
  // ...and the same schedule is benign once subscription is commit-checked.
  EXPECT_FALSE(mc::replay_hazard_counterexample(cx, SlrHazard::kWildStore,
                                                SubscribeKind::kCommitChecked))
      << "commit-checked subscription should neutralize this trace";
}

}  // namespace
}  // namespace sihle
