// Deterministic trace tests for the observability layer: event-ring
// mechanics, per-thread stream invariants across all six schemes of the
// paper's methodology, window aggregation, the lemming-effect detector
// (including the paper-core scheme-contrast claim), and the JSON
// export/parse round trip.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "elision/schemes.h"
#include "locks/locks.h"
#include "runtime/ctx.h"
#include "stats/event_ring.h"
#include "stats/export.h"
#include "stats/timeline.h"

namespace sihle {
namespace {

using elision::Scheme;
using runtime::Ctx;
using runtime::LineHandle;
using runtime::Machine;
using stats::Event;
using stats::EventKind;
using stats::EventTrace;
using stats::Timeline;

struct Counter {
  LineHandle line;
  mem::Shared<std::uint64_t> value;
  explicit Counter(Machine& m) : line(m), value(line.line(), 0) {}
};

sim::Task<void> incr(Ctx& c, Counter& cnt) {
  const std::uint64_t v = co_await c.load(cnt.value);
  co_await c.work(40);
  co_await c.store(cnt.value, v + 1);
}

template <class Lock>
sim::Task<void> worker(Ctx& c, Scheme s, Lock& lock, locks::MCSLock& aux,
                       Counter& cnt, int ops, stats::OpStats& st) {
  for (int i = 0; i < ops; ++i) {
    co_await elision::run_op(s, c, lock, aux,
                             [&cnt](Ctx& cc) { return incr(cc, cnt); }, st);
  }
}

struct SchemeRun {
  EventTrace events;
  stats::OpStats stats;
  sim::Cycles elapsed = 0;
};

// Runs the contended counter workload under one scheme with event tracing.
template <class Lock>
SchemeRun run_counter(Scheme s, int threads, int ops, std::uint64_t seed,
                      double spurious) {
  SchemeRun out;
  Machine::Config cfg;
  cfg.seed = seed;
  cfg.htm.spurious_abort_per_access = spurious;
  Machine m(cfg);
  m.set_event_trace(&out.events);
  Lock lock(m);
  locks::MCSLock aux(m);
  Counter cnt(m);
  std::vector<stats::OpStats> st(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    m.spawn([&, t](Ctx& c) {
      return worker<Lock>(c, s, lock, aux, cnt, ops, st[static_cast<std::size_t>(t)]);
    });
  }
  m.run();
  for (const auto& x : st) out.stats += x;
  out.elapsed = m.exec().max_clock();
  EXPECT_EQ(cnt.value.debug_value(),
            static_cast<std::uint64_t>(threads) * static_cast<std::uint64_t>(ops));
  return out;
}

// --- Event-ring mechanics ---------------------------------------------------

TEST(EventRingTest, PreservesOrderAndDropsOldestWhenFull) {
  stats::EventRing ring(4);
  for (std::uint64_t i = 0; i < 6; ++i) {
    ring.push({i, EventKind::kTxBegin, htm::AbortCause::kNone, 0});
  }
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.dropped(), 2u);
  for (std::size_t i = 0; i < ring.size(); ++i) {
    EXPECT_EQ(ring[i].at, i + 2);  // events 0 and 1 were overwritten
  }
}

TEST(EventRingTest, TraceGrowsPerThreadRingsLazily) {
  EventTrace trace(8);
  trace.record(3, {10, EventKind::kTxCommit, htm::AbortCause::kNone, 0});
  ASSERT_EQ(trace.threads(), 4u);
  EXPECT_EQ(trace.ring(0).size(), 0u);
  EXPECT_EQ(trace.ring(3).size(), 1u);
  EXPECT_EQ(trace.total_events(), 1u);
  EXPECT_EQ(trace.count(EventKind::kTxCommit), 1u);
  EXPECT_EQ(trace.max_time(), 10u);
}

// --- Stream invariants across the six schemes -------------------------------

class SchemeStreamInvariants : public ::testing::TestWithParam<Scheme> {};

TEST_P(SchemeStreamInvariants, EventStreamIsWellFormed) {
  const Scheme s = GetParam();
  const int threads = 4;
  const auto run = run_counter<locks::TTASLock>(s, threads, 120, 21, 1e-3);
  const EventTrace& tr = run.events;
  ASSERT_LE(tr.threads(), static_cast<std::size_t>(threads));
  EXPECT_EQ(tr.total_dropped(), 0u);

  for (std::uint32_t t = 0; t < tr.threads(); ++t) {
    const auto& ring = tr.ring(t);
    sim::Cycles prev = 0;
    bool in_tx = false;
    for (std::size_t i = 0; i < ring.size(); ++i) {
      const Event& e = ring[i];
      // Per-thread timestamps never run backwards.
      EXPECT_GE(e.at, prev) << "thread " << t << " event " << i;
      prev = e.at;
      switch (e.kind) {
        case EventKind::kTxBegin:
          // Begin/end pairing: no nested or dangling begins...
          EXPECT_FALSE(in_tx) << "thread " << t << " event " << i;
          in_tx = true;
          break;
        case EventKind::kTxCommit:
          EXPECT_TRUE(in_tx) << "thread " << t << " event " << i;
          EXPECT_EQ(e.cause, htm::AbortCause::kNone);
          in_tx = false;
          break;
        case EventKind::kTxAbort:
          EXPECT_TRUE(in_tx) << "thread " << t << " event " << i;
          // ... and every abort carries a cause.
          EXPECT_NE(e.cause, htm::AbortCause::kNone)
              << "thread " << t << " event " << i;
          in_tx = false;
          break;
        default:
          // Scheme-level events only occur outside transactions.
          EXPECT_FALSE(in_tx) << "thread " << t << " event " << i;
          break;
      }
    }
    EXPECT_FALSE(in_tx) << "thread " << t << " ends inside a transaction";
  }

  // The event stream reconciles with the schemes' own accounting.
  EXPECT_EQ(tr.count(EventKind::kTxCommit), run.stats.spec_commits);
  EXPECT_EQ(tr.count(EventKind::kLockRelease), run.stats.nonspec);
  EXPECT_EQ(tr.count(EventKind::kAuxAcquire), run.stats.aux_acquisitions);
  EXPECT_EQ(tr.count(EventKind::kAuxAcquire), tr.count(EventKind::kAuxRelease));
  // The trace may additionally contain lock-busy attempts the scheme did
  // not count as aborts (plain HLE + TTAS re-spins).
  EXPECT_GE(tr.count(EventKind::kTxAbort), run.stats.aborts);
  EXPECT_EQ(tr.count(EventKind::kTxBegin),
            tr.count(EventKind::kTxCommit) + tr.count(EventKind::kTxAbort));
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, SchemeStreamInvariants,
                         ::testing::ValuesIn(elision::kAllSchemes),
                         [](const auto& info) {
                           std::string n = elision::to_string(info.param);
                           for (auto& ch : n) {
                             if (ch == '-' || ch == ' ') ch = '_';
                           }
                           return n;
                         });

// --- Window aggregation -----------------------------------------------------

TEST(TimelineTest, WindowsPartitionTheEventStream) {
  const auto run = run_counter<locks::MCSLock>(Scheme::kHleScm, 4, 100, 5, 1e-3);
  const sim::Cycles window = run.elapsed / 16 + 1;
  const Timeline tl = Timeline::aggregate(run.events, window);
  ASSERT_GT(tl.size(), 4u);
  for (std::size_t w = 0; w < tl.size(); ++w) {
    EXPECT_EQ(tl[w].start, static_cast<sim::Cycles>(w) * window);
  }
  const stats::Window totals = tl.totals();
  EXPECT_EQ(totals.begins, run.events.count(EventKind::kTxBegin));
  EXPECT_EQ(totals.commits, run.events.count(EventKind::kTxCommit));
  EXPECT_EQ(totals.aborts, run.events.count(EventKind::kTxAbort));
  EXPECT_EQ(totals.nonspec, run.events.count(EventKind::kLockRelease));
  EXPECT_EQ(totals.aux_acquires, run.events.count(EventKind::kAuxAcquire));
  EXPECT_EQ(totals.lock_acquires, run.events.count(EventKind::kLockAcquire));
  std::uint64_t cause_sum = 0;
  for (std::size_t c = 0; c < totals.abort_causes.size(); ++c) {
    cause_sum += totals.abort_causes[c];
  }
  EXPECT_EQ(cause_sum, totals.aborts);
  EXPECT_EQ(totals.commits, run.stats.spec_commits);
  EXPECT_EQ(totals.nonspec, run.stats.nonspec);
}

TEST(TimelineTest, AggregationIsWindowAnchoredAndDeterministic) {
  const auto a = run_counter<locks::TTASLock>(Scheme::kOptSlr, 4, 80, 9, 1e-3);
  const auto b = run_counter<locks::TTASLock>(Scheme::kOptSlr, 4, 80, 9, 1e-3);
  const Timeline ta = Timeline::aggregate(a.events, 20000);
  const Timeline tb = Timeline::aggregate(b.events, 20000);
  EXPECT_EQ(ta, tb);
}

// --- Lemming detector -------------------------------------------------------

EventTrace synthetic_trace(bool with_trigger_abort, std::size_t serialized_windows) {
  // Window width 100: window 0 holds a commit (and optionally the
  // triggering abort); windows 1..N hold one non-speculative completion
  // each and nothing speculative.
  EventTrace tr;
  tr.record(0, {10, EventKind::kTxBegin, htm::AbortCause::kNone, 0});
  tr.record(0, {20, EventKind::kTxCommit, htm::AbortCause::kNone, 0});
  if (with_trigger_abort) {
    tr.record(1, {30, EventKind::kTxBegin, htm::AbortCause::kNone, 0});
    tr.record(1, {40, EventKind::kTxAbort, htm::AbortCause::kConflict, 0});
  }
  for (std::size_t w = 1; w <= serialized_windows; ++w) {
    const sim::Cycles base = static_cast<sim::Cycles>(w) * 100;
    tr.record(1, {base + 10, EventKind::kLockAcquire, htm::AbortCause::kNone, 0});
    tr.record(1, {base + 50, EventKind::kLockRelease, htm::AbortCause::kNone, 0});
  }
  return tr;
}

TEST(LemmingDetectorTest, FiresOnSustainedSerializationAfterAbort) {
  const Timeline tl = Timeline::aggregate(synthetic_trace(true, 5), 100);
  const stats::LemmingReport rep = stats::detect_lemming(tl);
  EXPECT_TRUE(rep.fired);
  EXPECT_EQ(rep.trigger_window, 0u);
  EXPECT_EQ(rep.first_window, 1u);
  EXPECT_EQ(rep.run_length, 5u);
  EXPECT_DOUBLE_EQ(rep.peak_nonspec, 1.0);
}

TEST(LemmingDetectorTest, NeedsAnAbortAnchor) {
  // Same serialized tail, but no abort anywhere: sustained non-speculative
  // execution alone (e.g. the Standard scheme) is not the lemming effect.
  const Timeline tl = Timeline::aggregate(synthetic_trace(false, 5), 100);
  EXPECT_FALSE(stats::detect_lemming(tl).fired);
}

TEST(LemmingDetectorTest, NeedsASustainedRun) {
  const Timeline tl = Timeline::aggregate(synthetic_trace(true, 2), 100);
  stats::LemmingConfig cfg;
  cfg.min_windows = 3;
  const stats::LemmingReport rep = stats::detect_lemming(tl, cfg);
  EXPECT_FALSE(rep.fired);
  EXPECT_EQ(rep.run_length, 2u);
}

// The paper's core claim, executable (§4 vs §5-6): with a fair lock and an
// injected conflict, plain HLE collapses into sustained non-speculative
// execution (the lemming effect) — while SCM conflict management over the
// same lock, workload, and seed keeps speculation alive, under both the
// HLE and SLR flavors.
TEST(LemmingDetectorTest, FiresUnderHleButNotUnderScmWithIdenticalSeeds) {
  constexpr std::uint64_t kSeed = 12;
  constexpr int kThreads = 6;
  constexpr int kOps = 150;
  constexpr double kSpurious = 1e-3;
  stats::LemmingConfig cfg;
  cfg.nonspec_threshold = 0.9;
  cfg.min_windows = 3;
  cfg.min_ops_per_window = 2;

  const auto hle =
      run_counter<locks::MCSLock>(Scheme::kHle, kThreads, kOps, kSeed, kSpurious);
  const Timeline hle_tl = Timeline::aggregate(hle.events, hle.elapsed / 24 + 1);
  const stats::LemmingReport hle_rep = stats::detect_lemming(hle_tl, cfg);
  EXPECT_TRUE(hle_rep.fired)
      << "plain HLE on MCS should serialize: longest run " << hle_rep.run_length;
  EXPECT_GT(hle.stats.nonspec_fraction(), 0.9);

  for (Scheme s : {Scheme::kHleScm, Scheme::kSlrScm}) {
    const auto scm =
        run_counter<locks::MCSLock>(s, kThreads, kOps, kSeed, kSpurious);
    const Timeline scm_tl = Timeline::aggregate(scm.events, scm.elapsed / 24 + 1);
    const stats::LemmingReport scm_rep = stats::detect_lemming(scm_tl, cfg);
    EXPECT_FALSE(scm_rep.fired)
        << elision::to_string(s) << " serialized for " << scm_rep.run_length
        << " windows (peak nonspec " << scm_rep.peak_nonspec << ")";
    EXPECT_LT(scm.stats.nonspec_fraction(), 0.5) << elision::to_string(s);
  }
}

// --- Export / parse round trip ---------------------------------------------

TEST(TraceExportTest, JsonRoundTripReproducesWindowsAndEvents) {
  const auto run = run_counter<locks::TTASLock>(Scheme::kHleScm, 4, 60, 3, 1e-3);
  stats::TraceWriter writer;
  stats::TraceRunMeta meta;
  meta.label = "unit/hle-scm";
  meta.scheme = "HLE-SCM";
  meta.lock = "TTAS";
  meta.threads = 4;
  meta.seed = 3;
  writer.add_run(meta, run.events, 25000, {}, /*include_events=*/true);

  stats::ParsedTrace parsed;
  std::string error;
  ASSERT_TRUE(stats::parse_trace_json(writer.json(), parsed, &error)) << error;
  EXPECT_EQ(parsed.version, 1);
  ASSERT_EQ(parsed.runs.size(), 1u);
  const stats::TraceRun& pr = parsed.runs[0];
  EXPECT_EQ(pr.meta.label, meta.label);
  EXPECT_EQ(pr.meta.scheme, meta.scheme);
  EXPECT_EQ(pr.meta.lock, meta.lock);
  EXPECT_EQ(pr.meta.threads, meta.threads);
  EXPECT_EQ(pr.meta.seed, meta.seed);
  EXPECT_EQ(pr.window_cycles, 25000u);

  // Stored windows equal direct aggregation ...
  const Timeline direct = Timeline::aggregate(run.events, 25000);
  EXPECT_EQ(pr.timeline(), direct);
  // ... and re-aggregating the embedded events reproduces them too.
  ASSERT_TRUE(pr.has_events);
  const EventTrace rebuilt = stats::rebuild_events(pr);
  EXPECT_EQ(rebuilt.total_events(), run.events.total_events());
  EXPECT_EQ(Timeline::aggregate(rebuilt, 25000), direct);
  // The lemming verdict survives the trip.
  const stats::LemmingReport direct_rep = stats::detect_lemming(direct);
  EXPECT_EQ(pr.lemming.fired, direct_rep.fired);
  EXPECT_EQ(pr.lemming.run_length, direct_rep.run_length);
  EXPECT_DOUBLE_EQ(pr.lemming.peak_nonspec, direct_rep.peak_nonspec);
}

TEST(TraceExportTest, ParserRejectsMalformedDocuments) {
  stats::ParsedTrace parsed;
  std::string error;
  EXPECT_FALSE(stats::parse_trace_json("", parsed, &error));
  EXPECT_FALSE(stats::parse_trace_json("{\"version\":1", parsed, &error));
  EXPECT_FALSE(stats::parse_trace_json("{\"version\":2,\"runs\":[]}", parsed, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(stats::parse_trace_json(
      "{\"version\":1,\"runs\":[{\"label\":\"x\"}]}", parsed, &error));
  EXPECT_TRUE(stats::parse_trace_json("{\"version\":1,\"runs\":[]}", parsed, &error));
}

TEST(TraceExportTest, CsvExportsAreWellFormed) {
  const auto run = run_counter<locks::TTASLock>(Scheme::kHle, 2, 20, 7, 0.0);
  std::FILE* f = std::tmpfile();
  ASSERT_NE(f, nullptr);
  stats::export_events_csv(f, run.events);
  std::rewind(f);
  char buf[256];
  int lines = 0;
  while (std::fgets(buf, sizeof(buf), f) != nullptr) ++lines;
  std::fclose(f);
  EXPECT_EQ(static_cast<std::uint64_t>(lines), 1 + run.events.total_events());

  const Timeline tl = Timeline::aggregate(run.events, run.elapsed / 8 + 1);
  f = std::tmpfile();
  ASSERT_NE(f, nullptr);
  stats::export_timeline_csv(f, tl);
  std::rewind(f);
  lines = 0;
  while (std::fgets(buf, sizeof(buf), f) != nullptr) ++lines;
  std::fclose(f);
  EXPECT_EQ(static_cast<std::size_t>(lines), 1 + tl.size());
}

}  // namespace
}  // namespace sihle
