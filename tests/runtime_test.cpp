// Runtime-layer unit tests: SharedArray line packing, Barrier, LineHandle
// lifecycle, Ctx transactional allocation/retirement, and the work/watch
// primitives.
#include <gtest/gtest.h>

#include <vector>

#include "runtime/barrier.h"
#include "runtime/ctx.h"
#include "runtime/shared_array.h"

namespace sihle {
namespace {

using runtime::Barrier;
using runtime::Ctx;
using runtime::LineHandle;
using runtime::Machine;
using runtime::SharedArray;

TEST(SharedArray, PacksEightCellsPerLine) {
  Machine m;
  SharedArray<std::int64_t> a(m, 20, 7);
  EXPECT_EQ(a.size(), 20u);
  for (std::size_t i = 0; i < 20; ++i) EXPECT_EQ(a[i].debug_value(), 7);
  // Cells 0-7 share a line; 8-15 the next; 16-19 the third.
  EXPECT_EQ(a[0].line(), a[7].line());
  EXPECT_NE(a[7].line(), a[8].line());
  EXPECT_EQ(a[8].line(), a[15].line());
  EXPECT_NE(a[15].line(), a[16].line());
}

TEST(SharedArray, FalseSharingWithinALine) {
  // A transactional write to one cell conflicts with a reader of a
  // different cell on the same line — by design.
  Machine m;
  SharedArray<std::int64_t> a(m, 8, 0);
  sim::Rng rng(1);
  m.htm().begin(0, rng);
  m.htm().begin(1, rng);
  (void)m.htm().tx_load(0, a[0], rng);
  (void)m.htm().tx_store(1, a[7], 5, rng);  // same line, different cell
  EXPECT_TRUE(m.htm().tx(0).doomed);
  m.htm().rollback(0);
  m.htm().rollback(1);
}

sim::Task<void> barrier_worker(Ctx& c, Barrier& bar, std::vector<int>& phase_of,
                               int rounds) {
  for (int r = 0; r < rounds; ++r) {
    co_await c.work(100 + c.id() * 173);  // deliberately skewed arrival
    phase_of[c.id()] = r;
    co_await bar.arrive(c);
    // After the barrier, every thread must have finished round r.
    for (std::size_t t = 0; t < phase_of.size(); ++t) {
      EXPECT_GE(phase_of[t], r) << "thread " << t << " behind at round " << r;
    }
  }
}

TEST(BarrierTest, SeparatesPhases) {
  Machine m;
  const int threads = 5;
  Barrier bar(m, threads);
  std::vector<int> phase_of(threads, -1);
  for (int t = 0; t < threads; ++t) {
    m.spawn([&](Ctx& c) { return barrier_worker(c, bar, phase_of, 4); });
  }
  m.run();
}

TEST(LineHandleTest, FreesAndRecycles) {
  Machine m;
  mem::Line first;
  {
    LineHandle h(m);
    first = h.line();
  }
  LineHandle h2(m);
  EXPECT_EQ(h2.line(), first);  // the freed line was recycled
}

TEST(LineHandleTest, MoveTransfersOwnership) {
  Machine m;
  LineHandle a(m);
  const mem::Line line = a.line();
  LineHandle b(std::move(a));
  EXPECT_EQ(b.line(), line);
  LineHandle c(m);
  c = std::move(b);
  EXPECT_EQ(c.line(), line);
}

// tx_new inside an aborting transaction must delete the allocation; inside
// a committing one it must survive.
struct Probe {
  static int live;
  Probe() { ++live; }
  ~Probe() { --live; }
};
int Probe::live = 0;

sim::Task<void> alloc_then(Ctx& c, mem::Shared<std::uint64_t>& cell, bool abort_it,
                           Probe** out) {
  *out = c.tx_new<Probe>();
  co_await c.store(cell, std::uint64_t{1});
  if (abort_it) c.xabort(0x11);
}

sim::Task<void> alloc_driver(Ctx& c, Machine& m) {
  LineHandle line(m);
  mem::Shared<std::uint64_t> cell(line.line(), 0);
  Probe* p = nullptr;
  const auto aborted =
      co_await c.with_tx([&c, &cell, &p] { return alloc_then(c, cell, true, &p); });
  EXPECT_FALSE(aborted.ok());
  EXPECT_EQ(Probe::live, 0);  // rolled back

  const auto committed =
      co_await c.with_tx([&c, &cell, &p] { return alloc_then(c, cell, false, &p); });
  EXPECT_TRUE(committed.ok());
  EXPECT_EQ(Probe::live, 1);  // survived
  delete p;
}

TEST(CtxAllocation, TxNewFollowsTransactionOutcome) {
  Machine m;
  m.spawn([&](Ctx& c) { return alloc_driver(c, m); });
  m.run();
  EXPECT_EQ(Probe::live, 0);
}

// retire() inside a transaction only takes effect on commit.
sim::Task<void> retire_driver(Ctx& c, Machine& m, int* reclaimed) {
  LineHandle line(m);
  mem::Shared<std::uint64_t> cell(line.line(), 0);

  struct OnDelete {
    int* counter;
    ~OnDelete() { ++*counter; }
  };
  auto* victim = new OnDelete{reclaimed};
  const auto aborted = co_await c.with_tx([&c, &cell, victim] {
    return [](Ctx& cc, mem::Shared<std::uint64_t>& cl, OnDelete* v) -> sim::Task<void> {
      cc.retire(v);
      co_await cc.store(cl, std::uint64_t{1});
      cc.xabort(0x22);
    }(c, cell, victim);
  });
  EXPECT_FALSE(aborted.ok());
  EXPECT_EQ(*reclaimed, 0);  // retirement dropped with the abort

  const auto committed = co_await c.with_tx([&c, &cell, victim] {
    return [](Ctx& cc, mem::Shared<std::uint64_t>& cl, OnDelete* v) -> sim::Task<void> {
      cc.retire(v);
      co_await cc.store(cl, std::uint64_t{2});
    }(c, cell, victim);
  });
  EXPECT_TRUE(committed.ok());
  EXPECT_EQ(*reclaimed, 1);  // reclaimed at quiescence after commit
}

TEST(CtxAllocation, RetireFollowsTransactionOutcome) {
  Machine m;
  int reclaimed = 0;
  m.spawn([&](Ctx& c) { return retire_driver(c, m, &reclaimed); });
  m.run();
  EXPECT_EQ(reclaimed, 1);
}

// work() advances only the calling thread's clock.
sim::Task<void> work_probe(Ctx& c, sim::Cycles* before, sim::Cycles* after) {
  *before = c.now();
  co_await c.work(12345);
  *after = c.now();
}

TEST(CtxWork, ChargesExactCycles) {
  Machine m;
  sim::Cycles before = 0;
  sim::Cycles after = 0;
  m.spawn([&](Ctx& c) { return work_probe(c, &before, &after); });
  m.run();
  EXPECT_EQ(after - before, 12345u);
}

}  // namespace
}  // namespace sihle
