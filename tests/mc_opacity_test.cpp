// Unit tests of the opacity checker (mc/opacity.h) on hand-driven
// histories: the HistoryRecorder is fed through its AccessObserver
// interface directly, so each case pins down exactly one property of the
// serializability search — witness existence, real-time order, read-own-
// write replay, the aborted-read prefix check, and budget clipping.
#include <gtest/gtest.h>

#include "mc/history.h"
#include "mc/opacity.h"
#include "mem/shared.h"
#include "runtime/ctx.h"

namespace sihle {
namespace {

using runtime::Machine;
using U64Cell = mem::Shared<std::uint64_t>;

// Fixture owning a machine (for the recorder's Htm reference), two tracked
// cells, and a dummy grouping-lock identity.  The machine never runs — the
// observer calls below *are* the history.
class OpacityCheck : public ::testing::Test {
 protected:
  OpacityCheck()
      : m_(Machine::Config{}),
        rec_(m_.htm(), &lock_id_),
        lx_(m_),
        x_(lx_.line(), 0),
        ly_(m_),
        y_(ly_.line(), 0) {
    rec_.track(x_, "x");
    rec_.track(y_, "y");
  }

  // One locked critical section of `tid`: each (cell, value, is_write)
  // access in order.  Writes set the cell so later reads observe them.
  struct Access {
    U64Cell* cell;
    std::uint64_t value;
    bool is_write;
  };
  void locked_cs(std::uint32_t tid, std::initializer_list<Access> accesses) {
    rec_.on_lock_acquired(tid, &lock_id_);
    for (const Access& a : accesses) {
      if (a.is_write) {
        a.cell->set_raw(a.value);
        rec_.on_nontx_write(tid, *a.cell, /*rmw=*/false);
      } else {
        a.cell->set_raw(a.value);  // the value this read should observe
        rec_.on_nontx_read(tid, *a.cell, /*rmw=*/false);
      }
    }
    rec_.on_lock_released(tid, &lock_id_);
  }

  // One *aborted* hardware transaction of `tid` that read the given values.
  void aborted_tx(std::uint32_t tid, std::initializer_list<Access> reads) {
    rec_.on_tx_begin(tid);
    for (const Access& a : reads) {
      a.cell->set_raw(a.value);
      rec_.on_tx_read(tid, *a.cell);
    }
    rec_.on_rollback(tid);
  }

  Machine m_;
  int lock_id_ = 0;
  mc::HistoryRecorder rec_;
  runtime::LineHandle lx_;
  U64Cell x_;
  runtime::LineHandle ly_;
  U64Cell y_;
};

TEST_F(OpacityCheck, SerialHistoryHasWitness) {
  locked_cs(0, {{&x_, 1, true}, {&y_, 1, true}});
  locked_cs(1, {{&x_, 1, false}, {&y_, 1, false}});
  const auto res = mc::check_opacity(rec_);
  EXPECT_FALSE(res.search_clipped);
  EXPECT_TRUE(res.serializable) << res.explanation;
  EXPECT_TRUE(res.inconsistent_aborted.empty());
  ASSERT_EQ(res.witness.size(), 2u);
}

TEST_F(OpacityCheck, CommitOrderMismatchStillFindsReorderedWitness) {
  // T1 commits *after* T0 in real time but observed pre-T0 state while
  // overlapping with it; the witness must order T1 first.
  rec_.on_lock_acquired(1, &lock_id_);  // T1's section opens first
  locked_cs(0, {{&x_, 1, true}});
  x_.set_raw(0);  // what T1 actually read, before T0's write
  rec_.on_nontx_read(1, x_, /*rmw=*/false);
  rec_.on_lock_released(1, &lock_id_);
  const auto res = mc::check_opacity(rec_);
  ASSERT_TRUE(res.serializable) << res.explanation;
  ASSERT_EQ(res.witness.size(), 2u);
  EXPECT_EQ(rec_.records()[res.witness[0]].tid, 1u);
}

TEST_F(OpacityCheck, TornCommittedReadHasNoWitness) {
  locked_cs(0, {{&x_, 1, true}, {&y_, 1, true}});
  // A committed unit that saw x after T0's write but y before it: no serial
  // order explains both reads.
  locked_cs(1, {{&x_, 1, false}, {&y_, 0, false}});
  const auto res = mc::check_opacity(rec_);
  EXPECT_FALSE(res.search_clipped);
  EXPECT_FALSE(res.serializable);
  EXPECT_NE(res.explanation.find("no serial witness"), std::string::npos)
      << res.explanation;
}

TEST_F(OpacityCheck, RealTimeOrderConstrainsWitness) {
  // T0's section completes entirely before T1's begins, so a witness may
  // not reorder T1 first even though that would satisfy T1's stale read.
  locked_cs(0, {{&x_, 1, true}});
  locked_cs(1, {{&x_, 0, false}});  // stale: real-time order forbids this
  const auto res = mc::check_opacity(rec_);
  EXPECT_FALSE(res.serializable);
}

TEST_F(OpacityCheck, ReadOwnWriteReplays) {
  locked_cs(0, {{&x_, 7, true}, {&x_, 7, false}, {&x_, 9, true}});
  locked_cs(1, {{&x_, 9, false}});
  const auto res = mc::check_opacity(rec_);
  EXPECT_TRUE(res.serializable) << res.explanation;
}

TEST_F(OpacityCheck, ConsistentAbortedReadIsNotFlagged) {
  locked_cs(0, {{&x_, 1, true}, {&y_, 1, true}});
  // Aborted zombie that saw the complete post-T0 state: consistent.
  aborted_tx(1, {{&x_, 1, false}, {&y_, 1, false}});
  const auto res = mc::check_opacity(rec_);
  EXPECT_TRUE(res.serializable);
  EXPECT_TRUE(res.inconsistent_aborted.empty());
}

TEST_F(OpacityCheck, TornAbortedReadIsFlagged) {
  locked_cs(0, {{&x_, 1, true}, {&y_, 1, true}});
  // Aborted zombie that saw x updated but y not: no reachable serial state
  // matches, even though the abort kept it out of the committed history.
  aborted_tx(1, {{&x_, 1, false}, {&y_, 0, false}});
  const auto res = mc::check_opacity(rec_);
  EXPECT_TRUE(res.serializable);
  ASSERT_EQ(res.inconsistent_aborted.size(), 1u);
  EXPECT_EQ(rec_.records()[res.inconsistent_aborted[0]].tid, 1u);
  EXPECT_FALSE(rec_.records()[res.inconsistent_aborted[0]].committed);
}

TEST_F(OpacityCheck, UntrackedCellsAreInvisible) {
  runtime::LineHandle lz(m_);
  U64Cell z(lz.line(), 0);  // never tracked: a sync cell by construction
  rec_.on_lock_acquired(0, &lock_id_);
  z.set_raw(42);
  rec_.on_nontx_write(0, z, /*rmw=*/false);
  rec_.on_lock_released(0, &lock_id_);
  const auto res = mc::check_opacity(rec_);
  // The unit exists but carries no tracked accesses — vacuously consistent.
  EXPECT_TRUE(res.serializable);
}

TEST_F(OpacityCheck, ExhaustedBudgetClipsInsteadOfLying) {
  locked_cs(0, {{&x_, 1, true}, {&y_, 1, true}});
  locked_cs(1, {{&x_, 1, false}, {&y_, 0, false}});
  mc::OpacityOptions opts;
  opts.max_expansions = 1;
  const auto res = mc::check_opacity(rec_, opts);
  EXPECT_TRUE(res.search_clipped)
      << "a clipped search must not report a verdict";
}

TEST_F(OpacityCheck, SingletonAccessesFormUnits) {
  x_.set_raw(1);
  rec_.on_nontx_write(0, x_, /*rmw=*/false);  // lone store outside any lock
  locked_cs(1, {{&x_, 1, false}});
  const auto res = mc::check_opacity(rec_);
  EXPECT_TRUE(res.serializable) << res.explanation;
  ASSERT_EQ(res.witness.size(), 2u);
  EXPECT_EQ(rec_.records()[res.witness[0]].kind,
            mc::HistoryRecorder::TxRecord::Kind::kSingleton);
}

}  // namespace
}  // namespace sihle
