// Determinism and concurrency-safety suite for the parallel experiment
// engine (src/exp/engine.h).
//
// The engine's contract is that results — and therefore the exported
// results JSON — are a pure function of the spec: byte-identical whether
// the grid runs on 1 host thread or 8, and regardless of host-thread
// interleaving.  The concurrent-engines test doubles as the ThreadSanitizer
// target proving two engine jobs can run at once (CI builds this test with
// SIHLE_SANITIZE=thread; see .github/workflows/ci.yml).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "exp/engine.h"
#include "exp/harness.h"
#include "exp/results.h"
#include "exp/spec.h"

namespace sihle {
namespace {

// Small but real workload grid: all six paper schemes on both paper locks.
exp::ExperimentSpec six_scheme_spec(int replicates) {
  exp::ExperimentSpec spec;
  spec.name = "engine-test";
  spec.replicates = replicates;
  spec.base_seed = 1;
  for (locks::LockKind lock : {locks::LockKind::kTtas, locks::LockKind::kMcs}) {
    for (elision::Scheme scheme : elision::kAllSchemes) {
      harness::WorkloadConfig cfg;
      cfg.threads = 4;
      cfg.tree_size = 32;
      cfg.update_pct = 20;
      cfg.lock = lock;
      cfg.scheme = scheme;
      cfg.duration = static_cast<sim::Cycles>(0.2 * cfg.costs.cycles_per_ms);
      exp::add_workload_cell(spec,
                             {{"scheme", elision::to_string(scheme)},
                              {"lock", locks::to_string(lock)}},
                             cfg);
    }
  }
  return spec;
}

std::string run_to_json(const exp::ExperimentSpec& spec, int jobs) {
  return exp::results_json(
      exp::make_doc(spec, exp::run_experiment(spec, {jobs})));
}

TEST(ExpEngine, SameSeedByteIdenticalAcrossJobCounts) {
  const exp::ExperimentSpec spec = six_scheme_spec(2);
  const std::string sequential = run_to_json(spec, 1);
  const std::string parallel8 = run_to_json(spec, 8);
  EXPECT_EQ(sequential, parallel8);
  // And regardless of interleaving: a second parallel run matches too.
  EXPECT_EQ(parallel8, run_to_json(spec, 8));
  // Odd job counts exercise uneven round-robin dealing.
  EXPECT_EQ(sequential, run_to_json(spec, 3));
}

TEST(ExpEngine, DifferentSeedsProduceDifferentResults) {
  exp::ExperimentSpec spec = six_scheme_spec(1);
  const std::string a = run_to_json(spec, 2);
  spec.base_seed = 99;
  EXPECT_NE(a, run_to_json(spec, 2));
}

TEST(ExpEngine, ResultsOrderedLikeSpecWithAllReplicatesFilled) {
  const exp::ExperimentSpec spec = six_scheme_spec(3);
  const auto results = exp::run_experiment(spec, {4});
  ASSERT_EQ(results.size(), spec.cells.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].id, spec.cells[i].id);
    ASSERT_EQ(results[i].samples.size(), 3u);
    for (const auto& sample : results[i].samples) {
      EXPECT_FALSE(sample.empty());
    }
    // Every workload run must have left a valid tree behind.
    const exp::Replicates valid = results[i].metric("valid");
    for (double v : valid.samples()) {
      EXPECT_EQ(v, 1.0);
    }
  }
}

// Two engines running concurrently (each itself multi-threaded) must not
// interfere: Machines, Rngs, and trace sinks are all run-local.  Under
// SIHLE_SANITIZE=thread this is the proof that concurrent Machine
// instantiation races on no shared state.
TEST(ExpEngine, ConcurrentEnginesProduceIndependentIdenticalResults) {
  const exp::ExperimentSpec spec = six_scheme_spec(2);
  const std::string reference = run_to_json(spec, 1);
  std::string a;
  std::string b;
  std::thread ta([&] { a = run_to_json(spec, 2); });
  std::thread tb([&] { b = run_to_json(spec, 2); });
  ta.join();
  tb.join();
  EXPECT_EQ(a, reference);
  EXPECT_EQ(b, reference);
}

TEST(ExpEngine, MoreJobsThanRunsAndAutoJobs) {
  exp::ExperimentSpec spec;
  spec.name = "tiny";
  spec.replicates = 2;
  std::atomic<int> calls{0};
  for (int i = 0; i < 3; ++i) {
    exp::Cell cell;
    cell.id = "cell-" + std::to_string(i);
    cell.axes = {{"i", std::to_string(i)}};
    cell.run = [&calls, i](std::uint64_t seed) {
      calls.fetch_add(1, std::memory_order_relaxed);
      return exp::MetricList{{"value", static_cast<double>(seed * 10 + i)}};
    };
    spec.cells.push_back(std::move(cell));
  }
  const auto results = exp::run_experiment(spec, {64});
  EXPECT_EQ(calls.load(), 6);
  ASSERT_EQ(results.size(), 3u);
  // seed = base_seed + replicate: replicate 0 → 1, replicate 1 → 2.
  EXPECT_EQ(results[1].metric("value").samples(),
            (std::vector<double>{11.0, 21.0}));
  EXPECT_GE(exp::resolve_jobs(0), 1);
  const auto auto_results = exp::run_experiment(spec, {0});
  EXPECT_EQ(auto_results[2].metric("value").samples(),
            (std::vector<double>{12.0, 22.0}));
}

TEST(ExpEngine, CliParsingDefaultsAndAliases) {
  {
    const char* argv[] = {"bench", "--jobs=4", "--replicates=5", "--seed=7",
                          "--out=o.json", "--baseline=b.json", "--noise=0.1"};
    harness::Args args(7, const_cast<char**>(argv));
    const exp::CliOptions cli = exp::parse_cli(args);
    EXPECT_EQ(cli.jobs, 4);
    EXPECT_EQ(cli.replicates, 5);
    EXPECT_EQ(cli.base_seed, 7u);
    EXPECT_EQ(cli.out_path, "o.json");
    EXPECT_EQ(cli.baseline_path, "b.json");
    EXPECT_DOUBLE_EQ(cli.regress.noise_rel, 0.1);
  }
  {
    // --seeds is the historical spelling of --replicates.
    const char* argv[] = {"bench", "--seeds=4"};
    harness::Args args(2, const_cast<char**>(argv));
    EXPECT_EQ(exp::parse_cli(args).replicates, 4);
  }
  {
    const char* argv[] = {"bench"};
    harness::Args args(1, const_cast<char**>(argv));
    const exp::CliOptions cli = exp::parse_cli(args);
    EXPECT_EQ(cli.jobs, 0);  // auto
    EXPECT_EQ(cli.replicates, 3);
    EXPECT_TRUE(cli.out_path.empty());
    EXPECT_TRUE(cli.baseline_path.empty());
  }
}

}  // namespace
}  // namespace sihle
