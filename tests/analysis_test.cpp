// Tests of the lockset/dooming/commit-read analysis layer (src/analysis).
//
// The checker's job is to stay silent on correct executions and to catch
// planted bugs.  Both directions are exercised: Htm-level fixtures drive the
// state machines directly (including the test_omit_reader_doom seeded bug),
// and a full rb-tree workload run asserts the production schemes are clean.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "analysis/lockset.h"
#include "harness/rbtree_workload.h"
#include "htm/htm.h"
#include "mem/directory.h"
#include "mem/shared.h"
#include "stats/findings.h"

namespace sihle {
namespace {

using analysis::AnalysisConfig;
using analysis::LocksetChecker;
using htm::Htm;
using htm::HtmConfig;
using mem::Directory;
using mem::Shared;
using stats::FindingKind;

AnalysisConfig enabled_config() {
  AnalysisConfig cfg;
  cfg.enabled = true;
  cfg.fatal = false;
  return cfg;
}

struct Fixture {
  Directory dir;
  Htm htm;
  LocksetChecker checker;
  sim::Rng rng{1};
  std::vector<std::unique_ptr<Shared<std::uint64_t>>> owned;
  explicit Fixture(HtmConfig cfg = {})
      : htm(dir, cfg), checker(htm, dir, enabled_config()) {
    htm.set_observer(&checker);
  }
  Shared<std::uint64_t>& cell(std::uint64_t init = 0) {
    owned.push_back(std::make_unique<Shared<std::uint64_t>>(dir.alloc(), init));
    return *owned.back();
  }
};

// --- Seeded bug: dooming omission --------------------------------------------

// With test_omit_reader_doom, a non-transactional store dooms the line's
// transactional writer but leaves its readers live — a requestor-wins
// violation.  The checker must catch it twice: at the store (the reader's
// footprint survives) and at the zombie's commit (its read is stale).
TEST(AnalysisSeededBug, OmittedReaderDoomIsDetected) {
  HtmConfig hc;
  hc.test_omit_reader_doom = true;
  Fixture f(hc);
  auto& x = f.cell(3);

  f.htm.begin(0, f.rng);
  EXPECT_EQ(f.htm.tx_load(0, x, f.rng).value, 3u);
  f.htm.nontx_store(1, x, 42);  // planted bug: reader 0 is not doomed

  EXPECT_EQ(f.checker.report().count(FindingKind::kMissedDoom), 1u);

  // The breach is real: the zombie commits having read a value that is no
  // longer in memory.
  std::vector<mem::Line> published;
  EXPECT_TRUE(f.htm.commit(0, published).ok());
  EXPECT_EQ(f.checker.report().count(FindingKind::kInvalidatedCommitRead), 1u);
}

// Identical scenario without the planted bug: requestor wins dooms the
// reader, the commit fails, and the checker stays silent.
TEST(AnalysisSeededBug, NormalDoomingIsClean) {
  Fixture f;
  auto& x = f.cell(3);

  f.htm.begin(0, f.rng);
  EXPECT_EQ(f.htm.tx_load(0, x, f.rng).value, 3u);
  f.htm.nontx_store(1, x, 42);

  EXPECT_TRUE(f.htm.tx(0).doomed);
  std::vector<mem::Line> published;
  EXPECT_FALSE(f.htm.commit(0, published).ok());
  EXPECT_TRUE(f.checker.report().clean()) << "unexpected findings:\n";
}

// --- Eraser lockset state machine --------------------------------------------

TEST(AnalysisLockset, UnprotectedWriteSharingIsReported) {
  Fixture f;
  auto& x = f.cell();
  f.htm.nontx_store(0, x, 1);  // Virgin -> Exclusive(0)
  EXPECT_TRUE(f.checker.report().clean());
  f.htm.nontx_store(1, x, 2);  // write-shared, no protection at all
  EXPECT_EQ(f.checker.report().count(FindingKind::kEmptyLockset), 1u);
  // Reported once per line, not per access.
  f.htm.nontx_store(0, x, 3);
  EXPECT_EQ(f.checker.report().count(FindingKind::kEmptyLockset), 1u);
}

TEST(AnalysisLockset, ExclusiveUseIsClean) {
  Fixture f;
  auto& x = f.cell();
  for (int i = 0; i < 8; ++i) f.htm.nontx_store(0, x, i);
  EXPECT_TRUE(f.checker.report().clean());
}

TEST(AnalysisLockset, ReadSharingIsClean) {
  Fixture f;
  auto& x = f.cell(7);
  f.htm.nontx_store(0, x, 9);  // Exclusive writer...
  (void)f.htm.nontx_load(1, x);
  (void)f.htm.nontx_load(2, x);  // ...then read-shared: no lockset enforced
  EXPECT_TRUE(f.checker.report().clean());
}

TEST(AnalysisLockset, ConsistentLockProtectionIsClean) {
  Fixture f;
  auto& x = f.cell();
  int lock_word = 0;  // any stable address works as a lock identity
  for (std::uint32_t tid = 0; tid < 3; ++tid) {
    f.checker.on_lock_acquired(tid, &lock_word);
    f.htm.nontx_store(tid, x, tid);
    f.checker.on_lock_released(tid, &lock_word);
  }
  EXPECT_TRUE(f.checker.report().clean());
}

TEST(AnalysisLockset, DroppingTheProtectingLockIsReported) {
  Fixture f;
  auto& x = f.cell();
  int lock_word = 0;
  f.checker.on_lock_acquired(0, &lock_word);
  f.htm.nontx_store(0, x, 1);
  f.checker.on_lock_released(0, &lock_word);
  f.checker.on_lock_acquired(1, &lock_word);
  f.htm.nontx_store(1, x, 2);  // candidate set = {lock_word}
  f.checker.on_lock_released(1, &lock_word);
  EXPECT_TRUE(f.checker.report().clean());
  f.htm.nontx_store(2, x, 3);  // no lock: candidate set drops to empty
  EXPECT_EQ(f.checker.report().count(FindingKind::kEmptyLockset), 1u);
}

TEST(AnalysisLockset, AtomicRmwIsExempt) {
  Fixture f;
  auto& x = f.cell();
  f.htm.nontx_store(0, x, 1, /*rmw=*/true);
  f.htm.nontx_store(1, x, 2, /*rmw=*/true);  // e.g. contended fetch_add
  EXPECT_TRUE(f.checker.report().clean());
}

TEST(AnalysisLockset, SyncLinesAreExempt) {
  Fixture f;
  auto& x = f.cell();
  f.checker.on_sync_line(x.line());
  f.htm.nontx_store(0, x, 1);
  f.htm.nontx_store(1, x, 2);  // lock-word-style traffic: expected to race
  EXPECT_TRUE(f.checker.report().clean());
}

TEST(AnalysisLockset, FreedLineStateIsRecycled) {
  Fixture f;
  auto& x = f.cell();
  f.htm.nontx_store(0, x, 1);
  f.htm.nontx_store(1, x, 2);
  EXPECT_EQ(f.checker.report().count(FindingKind::kEmptyLockset), 1u);
  // Free the line and reuse the id for a fresh thread-local cell: the old
  // Shared-Modified state must not follow the recycled id.
  const mem::Line reused = x.line();
  f.htm.on_line_freed(reused);
  f.dir.free(reused);
  Shared<std::uint64_t> y(f.dir.alloc(), 0);
  ASSERT_EQ(y.line(), reused);
  f.htm.nontx_store(2, y, 5);
  f.htm.nontx_store(2, y, 6);
  EXPECT_EQ(f.checker.report().total(), 1u);  // no new findings
}

// --- Report plumbing ----------------------------------------------------------

TEST(AnalysisReport, CountsAndCapsRecordedFindings) {
  stats::AnalysisReport r;
  r.set_max_recorded(2);
  EXPECT_TRUE(r.clean());
  for (int i = 0; i < 5; ++i) {
    r.add({FindingKind::kEmptyLockset, static_cast<mem::Line>(i), 0, "x"});
  }
  EXPECT_FALSE(r.clean());
  EXPECT_EQ(r.total(), 5u);
  EXPECT_EQ(r.count(FindingKind::kEmptyLockset), 5u);
  EXPECT_EQ(r.findings().size(), 2u);  // recording capped, counting exact
}

// --- Full workload under the checker ------------------------------------------

// The production schemes must be clean: every shared access is protected by
// the elided lock's transaction or by holding the lock in the fallback path.
TEST(AnalysisWorkload, RbTreeWorkloadIsClean) {
  for (const auto scheme :
       {elision::Scheme::kStandard, elision::Scheme::kHle,
        elision::Scheme::kOptSlr, elision::Scheme::kSlrScm}) {
    for (const auto lock : {locks::LockKind::kTtas, locks::LockKind::kMcs}) {
      harness::WorkloadConfig cfg;
      cfg.threads = 4;
      cfg.tree_size = 64;
      cfg.update_pct = 40;
      cfg.duration = 300'000;
      cfg.scheme = scheme;
      cfg.lock = lock;
      cfg.analysis = enabled_config();
      const auto res = harness::run_rbtree_workload(cfg);
      EXPECT_TRUE(res.tree_valid);
      EXPECT_TRUE(res.analysis.clean())
          << "scheme=" << static_cast<int>(scheme)
          << " lock=" << static_cast<int>(lock) << " findings=" << res.analysis.total();
    }
  }
}

}  // namespace
}  // namespace sihle
