// Hash-table correctness: sequential oracle comparison and concurrent runs
// under every scheme.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "ds/hashtable.h"
#include "elision/schemes.h"
#include "locks/locks.h"
#include "runtime/ctx.h"

namespace sihle {
namespace {

using ds::HashTable;
using elision::Scheme;
using runtime::Ctx;
using runtime::Machine;

sim::Task<void> sequential_driver(Ctx& c, HashTable& table,
                                  std::set<std::int64_t>& oracle, int ops,
                                  int* mismatches) {
  for (int i = 0; i < ops; ++i) {
    const std::int64_t key = static_cast<std::int64_t>(c.rng().below(300));
    const int action = static_cast<int>(c.rng().below(3));
    if (action == 0) {
      const bool added = co_await table.insert(c, key);
      if (added != oracle.insert(key).second) ++*mismatches;
    } else if (action == 1) {
      const bool removed = co_await table.erase(c, key);
      if (removed != (oracle.erase(key) > 0)) ++*mismatches;
    } else {
      const bool found = co_await table.contains(c, key);
      if (found != (oracle.count(key) > 0)) ++*mismatches;
    }
  }
}

TEST(HashTableSequential, MatchesSetOracle) {
  for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    Machine::Config cfg;
    cfg.seed = seed;
    Machine m(cfg);
    HashTable table(m, 64);  // intentionally small: long chains get exercised
    std::set<std::int64_t> oracle;
    int mismatches = 0;
    m.spawn([&](Ctx& c) {
      return sequential_driver(c, table, oracle, 5000, &mismatches);
    });
    m.run();
    EXPECT_EQ(mismatches, 0) << "seed " << seed;
    EXPECT_TRUE(table.debug_validate());
    EXPECT_EQ(table.debug_size(), oracle.size());
    for (auto k : oracle) EXPECT_TRUE(table.debug_contains(k));
  }
}

sim::Task<void> op_body(Ctx& c, HashTable& t, int action, std::int64_t key) {
  if (action == 0) {
    const bool r = co_await t.insert(c, key);
    (void)r;
  } else if (action == 1) {
    const bool r = co_await t.erase(c, key);
    (void)r;
  } else {
    const bool r = co_await t.contains(c, key);
    (void)r;
  }
}

template <class Lock>
sim::Task<void> concurrent_worker(Ctx& c, Scheme s, Lock& lock, locks::MCSLock& aux,
                                  HashTable& table, int ops, stats::OpStats& st) {
  for (int i = 0; i < ops; ++i) {
    const std::int64_t key = static_cast<std::int64_t>(c.rng().below(256));
    const int action = static_cast<int>(c.rng().below(4));
    co_await elision::run_op(
        s, c, lock, aux,
        [&table, action, key](Ctx& cc) {
          return op_body(cc, table, action > 2 ? 2 : action, key);
        },
        st);
  }
}

class HashTableConcurrent : public ::testing::TestWithParam<Scheme> {};

TEST_P(HashTableConcurrent, ValidUnderAllSchemes) {
  const Scheme scheme = GetParam();
  Machine::Config cfg;
  cfg.seed = 31;
  cfg.htm.spurious_abort_per_access = 1e-4;
  Machine m(cfg);
  locks::TTASLock lock(m);
  locks::MCSLock aux(m);
  HashTable table(m, 64);
  for (int k = 0; k < 128; k += 3) table.debug_insert(k);
  std::vector<stats::OpStats> st(8);
  for (int t = 0; t < 8; ++t) {
    m.spawn([&, t](Ctx& c) {
      return concurrent_worker<locks::TTASLock>(c, scheme, lock, aux, table, 300,
                                                st[t]);
    });
  }
  m.run();
  EXPECT_TRUE(table.debug_validate());
  stats::OpStats total;
  for (auto& s : st) total += s;
  EXPECT_EQ(total.ops(), 8u * 300u);
  EXPECT_EQ(m.limbo_size(), 0u);
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, HashTableConcurrent,
                         ::testing::ValuesIn(elision::kAllSchemes),
                         [](const ::testing::TestParamInfo<Scheme>& info) {
                           std::string n = elision::to_string(info.param);
                           for (char& ch : n) {
                             if (ch == '-' || ch == ' ') ch = '_';
                           }
                           return n;
                         });

}  // namespace
}  // namespace sihle
