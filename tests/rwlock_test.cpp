// Reader-writer lock state-machine tests (src/locks/rw.h): occupancy
// invariants (shared count, update exclusivity, upgrade draining) under
// randomized interleavings, plus the two policy-defining schedules pinned
// by seed — reader-preference writer starvation on RwLock, and
// writer-preference reader draining on RwWpLock.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "locks/locks.h"
#include "runtime/ctx.h"

namespace sihle {
namespace {

using locks::LockMode;
using runtime::Ctx;
using runtime::LineHandle;
using runtime::Machine;

// --- Word-level unit checks --------------------------------------------------

TEST(RwWord, AvailabilityMatrix) {
  using L = locks::RwLock;  // no writer preference
  // Free word: every mode available.
  EXPECT_TRUE(L::available(0, LockMode::kShared));
  EXPECT_TRUE(L::available(0, LockMode::kUpdate));
  EXPECT_TRUE(L::available(0, LockMode::kExclusive));
  // Readers exclude only exclusive.
  const std::uint64_t two_readers = 2 * L::kReaderInc;
  EXPECT_TRUE(L::available(two_readers, LockMode::kShared));
  EXPECT_TRUE(L::available(two_readers, LockMode::kUpdate));
  EXPECT_FALSE(L::available(two_readers, LockMode::kExclusive));
  // An update holder excludes update and exclusive, not shared.
  EXPECT_TRUE(L::available(L::kUpdate, LockMode::kShared));
  EXPECT_FALSE(L::available(L::kUpdate, LockMode::kUpdate));
  EXPECT_FALSE(L::available(L::kUpdate, LockMode::kExclusive));
  // A writer excludes everything.
  EXPECT_FALSE(L::available(L::kWriter, LockMode::kShared));
  EXPECT_FALSE(L::available(L::kWriter, LockMode::kUpdate));
  EXPECT_FALSE(L::available(L::kWriter, LockMode::kExclusive));

  using W = locks::RwWpLock;  // writer preference: WPENDING stalls arrivals
  EXPECT_FALSE(W::available(W::kWPending, LockMode::kShared));
  EXPECT_FALSE(W::available(W::kWPending, LockMode::kUpdate));
  // ...but not the pending writer itself.
  EXPECT_TRUE(W::available(W::kWPending, LockMode::kExclusive));
}

// --- Randomized state-machine property ---------------------------------------

// Ground-truth occupancy mirrored outside the lock word.  readers uses
// fetch_add (concurrent shared holders mutate it); update/writer flags are
// written only under the respective exclusivity being tested.
struct Track {
  LineHandle lr, lu, lw;
  mem::Shared<std::uint64_t> readers, update, writer;
  explicit Track(Machine& m)
      : lr(m), lu(m), lw(m),
        readers(lr.line(), 0), update(lu.line(), 0), writer(lw.line(), 0) {}
};

constexpr std::uint64_t kMinusOne = ~std::uint64_t{0};

template <class Lock>
sim::Task<void> rw_worker(Ctx& c, Lock& lock, Track& t, int ops,
                          std::uint64_t* violations) {
  for (int i = 0; i < ops; ++i) {
    const std::uint64_t dice = c.rng().below(100);
    if (dice < 50) {
      // Shared: any number of concurrent holders, but never with a writer.
      co_await lock.acquire(c, LockMode::kShared);
      co_await c.fetch_add(t.readers, std::uint64_t{1});
      const std::uint64_t w0 = co_await c.load(t.writer);
      if (w0 != 0) ++*violations;
      co_await c.work(20 + c.rng().below(60));
      const std::uint64_t w1 = co_await c.load(t.writer);
      if (w1 != 0) ++*violations;
      co_await c.fetch_add(t.readers, kMinusOne);
      co_await lock.release(c, LockMode::kShared);
    } else if (dice < 80) {
      // Update: excluded by writer and the other update holder; coexists
      // with readers; odd draws upgrade to exclusive.
      co_await lock.acquire(c, LockMode::kUpdate);
      const std::uint64_t u = co_await c.load(t.update);
      const std::uint64_t w = co_await c.load(t.writer);
      if (u != 0 || w != 0) ++*violations;
      co_await c.store(t.update, std::uint64_t{1});
      co_await c.work(10 + c.rng().below(40));
      if (dice % 2 == 1) {
        co_await lock.upgrade(c);
        // Upgraded: the reader count must have drained, and stays drained.
        const std::uint64_t r0 = co_await c.load(t.readers);
        if (r0 != 0) ++*violations;
        co_await c.store(t.writer, std::uint64_t{1});
        co_await c.work(10 + c.rng().below(30));
        const std::uint64_t r1 = co_await c.load(t.readers);
        if (r1 != 0) ++*violations;
        co_await c.store(t.writer, std::uint64_t{0});
        co_await c.store(t.update, std::uint64_t{0});
        co_await lock.release_upgraded(c);
      } else {
        co_await c.store(t.update, std::uint64_t{0});
        co_await lock.release(c, LockMode::kUpdate);
      }
    } else {
      // Exclusive: sole occupant.
      co_await lock.acquire(c);
      const std::uint64_t r = co_await c.load(t.readers);
      const std::uint64_t u = co_await c.load(t.update);
      const std::uint64_t w = co_await c.load(t.writer);
      if (r != 0 || u != 0 || w != 0) ++*violations;
      co_await c.store(t.writer, std::uint64_t{1});
      co_await c.work(10 + c.rng().below(40));
      co_await c.store(t.writer, std::uint64_t{0});
      co_await lock.release(c);
    }
    co_await c.work(c.rng().below(40));
  }
}

template <class Lock>
void check_state_machine(std::uint64_t seed) {
  Machine::Config cfg;
  cfg.seed = seed;
  Machine m(cfg);
  Lock lock(m);
  Track t(m);
  std::uint64_t violations = 0;
  for (int i = 0; i < 6; ++i) {
    m.spawn([&](Ctx& c) { return rw_worker(c, lock, t, 40, &violations); });
  }
  m.run();
  EXPECT_EQ(violations, 0u) << "seed " << seed;
  EXPECT_FALSE(lock.debug_locked());
  EXPECT_EQ(lock.debug_readers(), 0u);
  EXPECT_FALSE(lock.debug_writer());
  EXPECT_FALSE(lock.debug_update());
}

TEST(RwStateMachine, ReaderPreference) {
  for (std::uint64_t s : {1u, 2u, 3u, 4u, 5u}) {
    check_state_machine<locks::RwLock>(s);
  }
}

TEST(RwStateMachine, WriterPreference) {
  for (std::uint64_t s : {1u, 2u, 3u, 4u, 5u}) {
    check_state_machine<locks::RwWpLock>(s);
  }
}

// Shared holders really do overlap: under a pure reader load, at some point
// more than one reader is inside the critical section (the lock would be
// pointless otherwise — and a bug collapsing kReaderInc to a mutex would
// pass every exclusion test above).
template <class Lock>
sim::Task<void> overlap_reader(Ctx& c, Lock& lock, Track& t,
                               std::uint64_t* max_seen) {
  for (int i = 0; i < 30; ++i) {
    co_await lock.acquire(c, LockMode::kShared);
    const std::uint64_t now =
        co_await c.fetch_add(t.readers, std::uint64_t{1}) + 1;
    *max_seen = std::max(*max_seen, now);
    co_await c.work(80);
    co_await c.fetch_add(t.readers, kMinusOne);
    co_await lock.release(c, LockMode::kShared);
    co_await c.work(c.rng().below(20));
  }
}

template <class Lock>
void check_reader_overlap() {
  Machine::Config cfg;
  cfg.seed = 7;
  Machine m(cfg);
  Lock lock(m);
  Track t(m);
  std::uint64_t max_seen = 0;
  for (int i = 0; i < 4; ++i) {
    m.spawn([&](Ctx& c) { return overlap_reader(c, lock, t, &max_seen); });
  }
  m.run();
  EXPECT_GT(max_seen, 1u) << "readers never overlapped";
  EXPECT_EQ(lock.debug_readers(), 0u);
}

TEST(RwSharing, ReadersOverlapOnRw) { check_reader_overlap<locks::RwLock>(); }
TEST(RwSharing, ReadersOverlapOnRwWp) {
  check_reader_overlap<locks::RwWpLock>();
}

// --- Pinned preference schedules ---------------------------------------------

// A steady three-phase reader stream plus one late-arriving writer.
// Returns (reader acquire timestamps, writer arrival time, writer acquire
// time).  Everything is deterministic for a given seed; the two lock
// variants are run on the SAME schedule parameters, so the assertion is a
// policy difference, not a scheduling accident.
template <class Lock>
struct PreferenceRun {
  std::vector<sim::Cycles> reader_acquires;
  sim::Cycles writer_arrival = 0;
  sim::Cycles writer_acquired = 0;
};

template <class Lock>
sim::Task<void> stream_reader(Ctx& c, Lock& lock, int phase,
                              std::vector<sim::Cycles>* acquires) {
  co_await c.work(static_cast<sim::Cycles>(phase) * 30);
  for (int i = 0; i < 40; ++i) {
    co_await lock.acquire(c, LockMode::kShared);
    acquires->push_back(c.now());
    co_await c.work(100);
    co_await lock.release(c, LockMode::kShared);
    co_await c.work(10);
  }
}

template <class Lock>
sim::Task<void> late_writer(Ctx& c, Lock& lock, PreferenceRun<Lock>* out) {
  co_await c.work(500);
  out->writer_arrival = c.now();
  co_await lock.acquire(c);
  out->writer_acquired = c.now();
  co_await c.work(50);
  co_await lock.release(c);
}

template <class Lock>
PreferenceRun<Lock> run_preference_schedule(std::uint64_t seed) {
  Machine::Config cfg;
  cfg.seed = seed;
  Machine m(cfg);
  Lock lock(m);
  PreferenceRun<Lock> out;
  for (int phase = 0; phase < 3; ++phase) {
    m.spawn([&, phase](Ctx& c) {
      return stream_reader(c, lock, phase, &out.reader_acquires);
    });
  }
  m.spawn([&](Ctx& c) { return late_writer(c, lock, &out); });
  m.run();
  return out;
}

template <class Lock>
std::size_t acquires_while_writer_waited(const PreferenceRun<Lock>& r) {
  std::size_t n = 0;
  for (sim::Cycles t : r.reader_acquires) {
    if (t > r.writer_arrival && t < r.writer_acquired) ++n;
  }
  return n;
}

// Reader preference: the phased reader stream keeps the word nonzero, so
// the late writer starves behind a long run of reader acquisitions.
TEST(RwPreference, ReaderPreferenceStarvesTheWriter) {
  const auto r = run_preference_schedule<locks::RwLock>(11);
  ASSERT_GT(r.writer_acquired, r.writer_arrival);
  EXPECT_GE(acquires_while_writer_waited(r), 20u)
      << "expected a long reader run before the writer got in";
}

// Writer preference: the same schedule, but WPENDING stalls new shared
// arrivals, so the in-flight readers drain and the writer gets in after at
// most the handful of readers that already held the lock.
TEST(RwPreference, WriterPreferenceDrainsReaders) {
  const auto wp = run_preference_schedule<locks::RwWpLock>(11);
  ASSERT_GT(wp.writer_acquired, wp.writer_arrival);
  EXPECT_LE(acquires_while_writer_waited(wp), 3u)
      << "pending writer should stall new shared arrivals";
  // And the policy gap itself: the writer-preference writer acquires
  // strictly earlier in virtual time than the reader-preference one.
  const auto rp = run_preference_schedule<locks::RwLock>(11);
  EXPECT_LT(wp.writer_acquired, rp.writer_acquired);
}

// --- Single-thread API smoke -------------------------------------------------

template <class Lock>
sim::Task<void> try_acquire_script(Ctx& c, Lock& lock, int* failures) {
  auto expect = [&](bool cond) {
    if (!cond) ++*failures;
  };
  // Shared then update coexist; exclusive must fail while they hold.
  co_await lock.acquire(c, LockMode::kShared);
  {
    const bool got = co_await lock.try_acquire_once(c, LockMode::kUpdate);
    expect(got);
  }
  {
    const bool got = co_await lock.try_acquire_once(c, LockMode::kExclusive);
    expect(!got);
  }
  {
    const bool locked_ex = co_await lock.is_locked(c, LockMode::kExclusive);
    expect(locked_ex);  // unavailable for exclusive
  }
  {
    const bool locked_sh = co_await lock.is_locked(c, LockMode::kShared);
    expect(!locked_sh);  // still available for more readers
  }
  co_await lock.release(c, LockMode::kUpdate);
  co_await lock.release(c, LockMode::kShared);
  {
    const bool got = co_await lock.try_acquire_once(c, LockMode::kExclusive);
    expect(got);
  }
  co_await lock.release(c);
}

TEST(RwApi, TryAcquireAndIsLockedFollowTheMatrix) {
  Machine m;
  locks::RwLock lock(m);
  int failures = 0;
  m.spawn([&](Ctx& c) { return try_acquire_script(c, lock, &failures); });
  m.run();
  EXPECT_EQ(failures, 0);
  EXPECT_EQ(lock.debug_word(), 0u);
}

}  // namespace
}  // namespace sihle
