// sihle-mc v1 schema tests (stats/export.h): byte-exact serialize/parse
// round trip of model-checker counterexamples, a committed golden file
// mirroring results_v1_golden.json's drift gate, and malformed-document
// rejection.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "stats/export.h"
#include "stats/findings.h"

namespace sihle {
namespace {

stats::McDocument synthetic_doc() {
  stats::McDocument doc;
  stats::McCounterexample cx;
  cx.scheme = "slr:subscribe=lazy";
  cx.lock = "hazard-ttas";
  cx.workload = "slr-hazard wild-store";
  cx.finding = {stats::FindingKind::kMcNonSerializableCommit, 3, 1,
                "committed history admits no serial witness"};
  cx.witness = "no serial witness for committed history: "
               "T1 tx[R x=1 R y=0] T0 locked-cs[W x=1 W y=1]";
  cx.trace = {{"thread", 0}, {"thread", 1}, {"spurious", 1},
              {"conflict-tie", 0}, {"thread", 1}};
  doc.counterexamples.push_back(cx);

  stats::McCounterexample cx2;
  cx2.scheme = "hle";
  cx2.lock = "mcs";
  cx2.workload = "coupled-increment 2x1";
  cx2.finding = {stats::FindingKind::kMcDeadlock, 0, 0,
                 "no runnable thread under this schedule"};
  cx2.witness = "";  // empty fields must survive the round trip
  cx2.trace = {};
  doc.counterexamples.push_back(cx2);
  return doc;
}

TEST(McSchema, SerializeParseRoundTripIsExact) {
  const stats::McDocument doc = synthetic_doc();
  const std::string text = stats::export_mc_json(doc);
  stats::McDocument parsed;
  std::string error;
  ASSERT_TRUE(stats::parse_mc_json(text, parsed, &error)) << error;
  EXPECT_EQ(parsed, doc);
  // Byte-exact fixed point: re-serializing the parse reproduces the text.
  EXPECT_EQ(stats::export_mc_json(parsed), text);
}

TEST(McSchema, EscapesSpecialCharacters) {
  stats::McDocument doc;
  stats::McCounterexample cx;
  cx.scheme = "a\"b\\c";
  cx.witness = "line1\nline2\ttab";
  cx.finding = {stats::FindingKind::kMcStepLimit, 0, 0, "detail \"quoted\""};
  doc.counterexamples.push_back(cx);
  const std::string text = stats::export_mc_json(doc);
  stats::McDocument parsed;
  std::string error;
  ASSERT_TRUE(stats::parse_mc_json(text, parsed, &error)) << error;
  EXPECT_EQ(parsed, doc);
}

TEST(McSchema, GoldenFileRoundTrip) {
  const std::string path =
      std::string(SIHLE_TEST_DATA_DIR) + "/mc_v1_golden.json";
  const std::string expected = stats::export_mc_json(synthetic_doc());
  if (std::getenv("SIHLE_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out) << "cannot regenerate " << path;
    out << expected;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in) << "missing golden " << path;
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string on_disk = ss.str();
  EXPECT_EQ(on_disk, expected)
      << "golden drift: rerun with SIHLE_REGEN_GOLDEN=1 and review the diff";
  stats::McDocument parsed;
  std::string error;
  ASSERT_TRUE(stats::parse_mc_json(on_disk, parsed, &error)) << error;
  EXPECT_EQ(parsed, synthetic_doc());
}

TEST(McSchema, RejectsMalformedDocuments) {
  stats::McDocument doc;
  std::string error;
  EXPECT_FALSE(stats::parse_mc_json("not json", doc, &error));
  EXPECT_FALSE(stats::parse_mc_json(
      R"({"format":"sihle-mc","version":2,"counterexamples":[]})", doc,
      &error));
  EXPECT_NE(error.find("version"), std::string::npos);
  EXPECT_FALSE(stats::parse_mc_json(
      R"({"format":"other","version":1,"counterexamples":[]})", doc, &error));
  EXPECT_FALSE(stats::parse_mc_json(
      R"({"format":"sihle-mc","version":1})", doc, &error));
}

TEST(McSchema, EmptyDocumentRoundTrips) {
  const stats::McDocument doc;
  const std::string text = stats::export_mc_json(doc);
  stats::McDocument parsed;
  std::string error;
  ASSERT_TRUE(stats::parse_mc_json(text, parsed, &error)) << error;
  EXPECT_EQ(parsed, doc);
}

}  // namespace
}  // namespace sihle
