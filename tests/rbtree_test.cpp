// Red-black tree correctness: sequential oracle comparison, invariant
// checks after randomized workloads, and concurrent runs under every
// elision scheme compared against a sequential replay oracle.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "ds/rbtree.h"
#include "elision/schemes.h"
#include "locks/locks.h"
#include "runtime/ctx.h"

namespace sihle {
namespace {

using ds::RBTree;
using elision::Scheme;
using runtime::Ctx;
using runtime::Machine;

// --- Sequential: simulated ops against std::set ----------------------------

sim::Task<void> sequential_driver(Ctx& c, RBTree& tree, std::set<std::int64_t>& oracle,
                                  int ops, std::uint64_t seed, int* mismatches) {
  sim::Rng rng(seed);
  for (int i = 0; i < ops; ++i) {
    const std::int64_t key = static_cast<std::int64_t>(rng.below(200));
    const int action = static_cast<int>(rng.below(3));
    if (action == 0) {
      const bool added = co_await tree.insert(c, key);
      const bool oracle_added = oracle.insert(key).second;
      if (added != oracle_added) ++*mismatches;
    } else if (action == 1) {
      const bool removed = co_await tree.erase(c, key);
      const bool oracle_removed = oracle.erase(key) > 0;
      if (removed != oracle_removed) ++*mismatches;
    } else {
      const bool found = co_await tree.contains(c, key);
      const bool oracle_found = oracle.count(key) > 0;
      if (found != oracle_found) ++*mismatches;
    }
  }
}

TEST(RBTreeSequential, MatchesSetOracle) {
  for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    Machine m;
    RBTree tree(m);
    std::set<std::int64_t> oracle;
    int mismatches = 0;
    m.spawn([&](Ctx& c) {
      return sequential_driver(c, tree, oracle, 4000, seed, &mismatches);
    });
    m.run();
    EXPECT_EQ(mismatches, 0) << "seed " << seed;
    int bh = 0;
    EXPECT_TRUE(tree.debug_validate(&bh)) << "seed " << seed;
    const std::vector<std::int64_t> keys = tree.debug_keys();
    EXPECT_TRUE(std::equal(keys.begin(), keys.end(), oracle.begin(), oracle.end()));
  }
}

TEST(RBTreeDebugInsert, MatchesSimulatedInsert) {
  Machine m;
  RBTree direct(m);
  RBTree simulated(m);
  sim::Rng rng(99);
  std::vector<std::int64_t> keys;
  for (int i = 0; i < 1000; ++i) keys.push_back(static_cast<std::int64_t>(rng.below(5000)));
  for (auto k : keys) direct.debug_insert(k);
  m.spawn([&](Ctx& c) -> sim::Task<void> {
    struct Body {};
    return [](Ctx& cc, RBTree& t, std::vector<std::int64_t> ks) -> sim::Task<void> {
      for (auto k : ks) co_await t.insert(cc, k);
    }(c, simulated, keys);
  });
  m.run();
  EXPECT_TRUE(direct.debug_validate());
  EXPECT_TRUE(simulated.debug_validate());
  EXPECT_EQ(direct.debug_keys(), simulated.debug_keys());
}

// --- Concurrent: every scheme preserves the tree's invariants and the
// linearized effect of each completed operation ------------------------------

struct OpRecord {
  std::uint8_t kind;  // 0 insert, 1 erase
  std::int64_t key;
  bool result;
};

template <class Lock>
sim::Task<void> concurrent_worker(Ctx& c, Scheme s, Lock& lock, locks::MCSLock& aux,
                                  RBTree& tree, int ops, std::uint64_t domain,
                                  stats::OpStats& st) {
  for (int i = 0; i < ops; ++i) {
    const std::int64_t key = static_cast<std::int64_t>(c.rng().below(domain));
    const int action = static_cast<int>(c.rng().below(4));
    if (action == 0) {
      co_await elision::run_op(
          s, c, lock, aux,
          [&tree, key](Ctx& cc) -> sim::Task<void> {
            return [](Ctx& c2, RBTree& t, std::int64_t k) -> sim::Task<void> {
              const bool r = co_await t.insert(c2, k);
              (void)r;
            }(cc, tree, key);
          },
          st);
    } else if (action == 1) {
      co_await elision::run_op(
          s, c, lock, aux,
          [&tree, key](Ctx& cc) -> sim::Task<void> {
            return [](Ctx& c2, RBTree& t, std::int64_t k) -> sim::Task<void> {
              const bool r = co_await t.erase(c2, k);
              (void)r;
            }(cc, tree, key);
          },
          st);
    } else {
      co_await elision::run_op(
          s, c, lock, aux,
          [&tree, key](Ctx& cc) -> sim::Task<void> {
            return [](Ctx& c2, RBTree& t, std::int64_t k) -> sim::Task<void> {
              const bool r = co_await t.contains(c2, k);
              (void)r;
            }(cc, tree, key);
          },
          st);
    }
  }
}

struct ConcParam {
  Scheme scheme;
  std::uint64_t seed;
  double spurious;
};

class RBTreeConcurrent : public ::testing::TestWithParam<ConcParam> {};

TEST_P(RBTreeConcurrent, InvariantsHoldUnderTTASAndMCS) {
  const ConcParam p = GetParam();
  for (int lock_kind = 0; lock_kind < 2; ++lock_kind) {
    Machine::Config cfg;
    cfg.seed = p.seed;
    cfg.htm.spurious_abort_per_access = p.spurious;
    Machine m(cfg);
    locks::TTASLock ttas(m);
    locks::MCSLock mcs(m);
    locks::MCSLock aux(m);
    RBTree tree(m);
    for (int k = 0; k < 64; k += 2) tree.debug_insert(k);
    std::vector<stats::OpStats> st(8);
    for (int t = 0; t < 8; ++t) {
      m.spawn([&, t](Ctx& c) -> sim::Task<void> {
        if (lock_kind == 0) {
          return concurrent_worker<locks::TTASLock>(c, p.scheme, ttas, aux, tree,
                                                    250, 128, st[t]);
        }
        return concurrent_worker<locks::MCSLock>(c, p.scheme, mcs, aux, tree, 250,
                                                 128, st[t]);
      });
    }
    m.run();
    int bh = 0;
    EXPECT_TRUE(tree.debug_validate(&bh))
        << elision::to_string(p.scheme) << " lock " << lock_kind;
    stats::OpStats total;
    for (auto& s : st) total += s;
    EXPECT_EQ(total.ops(), 8u * 250u);
    EXPECT_EQ(m.limbo_size(), 0u);  // everything reclaimed at run end
  }
}

std::vector<ConcParam> conc_params() {
  std::vector<ConcParam> out;
  for (Scheme s : elision::kAllSchemes) {
    for (std::uint64_t seed : {11u, 22u, 33u}) out.push_back({s, seed, 0.0});
    out.push_back({s, 44u, 5e-4});
  }
  return out;
}

std::string conc_name(const ::testing::TestParamInfo<ConcParam>& info) {
  std::string name = std::string(elision::to_string(info.param.scheme)) + "_s" +
                     std::to_string(info.param.seed) +
                     (info.param.spurious > 0 ? "_spurious" : "");
  for (char& ch : name) {
    if (ch == '-' || ch == ' ') ch = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, RBTreeConcurrent,
                         ::testing::ValuesIn(conc_params()), conc_name);

}  // namespace
}  // namespace sihle
