// Lock unit and property tests: mutual exclusion, FIFO fairness of the
// queue locks, the Appendix-A state-restoration property of the elidable
// ticket/CLH locks, and elided-acquire semantics.
#include <gtest/gtest.h>

#include <vector>

#include "locks/locks.h"
#include "runtime/ctx.h"

namespace sihle {
namespace {

using runtime::Ctx;
using runtime::LineHandle;
using runtime::Machine;

struct Tracker {
  LineHandle line;
  mem::Shared<std::uint64_t> in_cs;
  explicit Tracker(Machine& m) : line(m), in_cs(line.line(), 0) {}
};

template <class Lock>
sim::Task<void> mutex_worker(Ctx& c, Lock& lock, Tracker& t, int ops,
                             std::uint64_t* violations, std::vector<std::uint32_t>* order) {
  for (int i = 0; i < ops; ++i) {
    co_await lock.acquire(c);
    const std::uint64_t occupants = co_await c.load(t.in_cs);
    if (occupants != 0) ++*violations;
    co_await c.store(t.in_cs, occupants + 1);
    if (order != nullptr) order->push_back(c.id());
    co_await c.work(50 + c.rng().below(100));
    const std::uint64_t now_in = co_await c.load(t.in_cs);
    co_await c.store(t.in_cs, now_in - 1);
    co_await lock.release(c);
    co_await c.work(c.rng().below(60));
  }
}

template <class Lock>
void check_mutual_exclusion(std::uint64_t seed, std::vector<std::uint32_t>* order = nullptr) {
  Machine::Config cfg;
  cfg.seed = seed;
  Machine m(cfg);
  Lock lock(m);
  Tracker t(m);
  std::uint64_t violations = 0;
  for (int i = 0; i < 6; ++i) {
    m.spawn([&](Ctx& c) {
      return mutex_worker<Lock>(c, lock, t, 60, &violations, order);
    });
  }
  m.run();
  EXPECT_EQ(violations, 0u);
  EXPECT_FALSE(lock.debug_locked());
}

TEST(LockMutex, TTAS) {
  for (std::uint64_t s : {1u, 2u, 3u}) check_mutual_exclusion<locks::TTASLock>(s);
}
TEST(LockMutex, MCS) {
  for (std::uint64_t s : {1u, 2u, 3u}) check_mutual_exclusion<locks::MCSLock>(s);
}
TEST(LockMutex, Ticket) {
  for (std::uint64_t s : {1u, 2u, 3u}) check_mutual_exclusion<locks::TicketLock>(s);
}
TEST(LockMutex, CLH) {
  for (std::uint64_t s : {1u, 2u, 3u}) check_mutual_exclusion<locks::CLHLock>(s);
}
TEST(LockMutex, ElidableTicket) {
  for (std::uint64_t s : {1u, 2u, 3u}) check_mutual_exclusion<locks::ElidableTicketLock>(s);
}
TEST(LockMutex, ElidableCLH) {
  for (std::uint64_t s : {1u, 2u, 3u}) check_mutual_exclusion<locks::ElidableCLHLock>(s);
}
TEST(LockMutex, Anderson) {
  for (std::uint64_t s : {1u, 2u, 3u}) check_mutual_exclusion<locks::AndersonLock>(s);
}
TEST(LockMutex, ElidableAnderson) {
  for (std::uint64_t s : {1u, 2u, 3u}) check_mutual_exclusion<locks::ElidableAndersonLock>(s);
}

// Fairness: with a fair lock, per-thread acquisition counts stay balanced
// over any window, and no thread finishes while another has barely run.
template <class Lock>
void check_fairness() {
  std::vector<std::uint32_t> order;
  check_mutual_exclusion<Lock>(77, &order);
  // Sliding-window balance: in any window of 3 * threads acquisitions, every
  // thread appears at least once (FIFO queues guarantee this; TTAS does not).
  const int threads = 6;
  const std::size_t window = 3 * threads;
  // Threads near the end have finished their quota, so only check the first
  // 80% of the acquisition sequence.
  const std::size_t usable = order.size() * 8 / 10;
  for (std::size_t start = 0; start + window <= usable; start += window) {
    std::vector<int> seen(threads, 0);
    for (std::size_t i = start; i < start + window; ++i) seen[order[i]]++;
    for (int t = 0; t < threads; ++t) {
      EXPECT_GE(seen[t], 1) << "thread " << t << " starved in window " << start;
    }
  }
}

TEST(LockFairness, MCSIsFifoFair) { check_fairness<locks::MCSLock>(); }
TEST(LockFairness, TicketIsFifoFair) { check_fairness<locks::TicketLock>(); }
TEST(LockFairness, CLHIsFifoFair) { check_fairness<locks::CLHLock>(); }
TEST(LockFairness, ElidableTicketIsFifoFair) {
  check_fairness<locks::ElidableTicketLock>();
}
TEST(LockFairness, ElidableCLHIsFifoFair) {
  check_fairness<locks::ElidableCLHLock>();
}
TEST(LockFairness, AndersonIsFifoFair) { check_fairness<locks::AndersonLock>(); }
TEST(LockFairness, ElidableAndersonIsFifoFair) {
  check_fairness<locks::ElidableAndersonLock>();
}

// --- Appendix A: solo-run state restoration ----------------------------------
//
// HLE requires that the XRELEASE store restore the lock to its pre-acquire
// state.  The adjusted ticket/CLH locks guarantee this for a thread running
// alone: acquire+release leaves every lock word bit-for-bit unchanged.

sim::Task<void> solo_cycle(Ctx& c, locks::ElidableTicketLock& lock, int n) {
  for (int i = 0; i < n; ++i) {
    co_await lock.acquire(c);
    co_await c.work(10);
    co_await lock.release(c);
  }
}

TEST(AppendixA, ElidableTicketSoloRunRestoresState) {
  Machine m;
  locks::ElidableTicketLock lock(m);
  m.spawn([&](Ctx& c) { return solo_cycle(c, lock, 25); });
  m.run();
  // The plain ticket lock would have next == owner == 25 here; the elidable
  // variant is back at the initial state because every release's CAS
  // succeeded (no other requesters).
  EXPECT_EQ(lock.debug_next(), 0u);
  EXPECT_EQ(lock.debug_owner(), 0u);
}

TEST(AppendixA, PlainTicketSoloRunDoesNotRestore) {
  Machine m;
  locks::TicketLock lock(m);
  m.spawn([&](Ctx& c) -> sim::Task<void> {
    return [](Ctx& cc, locks::TicketLock& l) -> sim::Task<void> {
      for (int i = 0; i < 25; ++i) {
        co_await l.acquire(cc);
        co_await l.release(cc);
      }
    }(c, lock);
  });
  m.run();
  // This is exactly why the plain ticket lock is not HLE-compatible.
  EXPECT_EQ(lock.debug_next(), 25u);
  EXPECT_EQ(lock.debug_owner(), 25u);
}

sim::Task<void> solo_clh(Ctx& c, locks::ElidableCLHLock& lock, int n, bool* ok) {
  *ok = true;
  for (int i = 0; i < n; ++i) {
    const bool locked_before = co_await lock.is_locked(c);
    if (locked_before) *ok = false;
    co_await lock.acquire(c);
    co_await c.work(10);
    co_await lock.release(c);
    const bool locked_after = co_await lock.is_locked(c);
    if (locked_after) *ok = false;
  }
}

TEST(AppendixA, ElidableCLHSoloRunRestoresState) {
  Machine m;
  locks::ElidableCLHLock lock(m);
  const void* initial_tail = lock.debug_tail();
  bool ok = false;
  m.spawn([&](Ctx& c) { return solo_clh(c, lock, 25, &ok); });
  m.run();
  EXPECT_TRUE(ok);
  // Every release's CAS moved the tail back to the predecessor, erasing the
  // node's presence: the tail is the original dummy again.
  EXPECT_EQ(lock.debug_tail(), initial_tail);
}

TEST(AppendixA, PlainCLHSoloRunDoesNotRestore) {
  Machine m;
  locks::CLHLock lock(m);
  const void* initial_tail = lock.debug_tail();
  m.spawn([&](Ctx& c) -> sim::Task<void> {
    return [](Ctx& cc, locks::CLHLock& l) -> sim::Task<void> {
      co_await l.acquire(cc);
      co_await l.release(cc);
    }(c, lock);
  });
  m.run();
  EXPECT_NE(lock.debug_tail(), initial_tail);
  EXPECT_FALSE(lock.debug_locked());
}

// Under contention the elidable variants degrade to the standard algorithm
// and stay correct — covered by the mutex/fairness tests above.

// --- Elided acquire semantics -------------------------------------------------

template <class Lock>
sim::Task<void> elide_when_free(Ctx& c, Lock& lock, bool* committed) {
  const auto status = co_await c.with_tx([&c, &lock] {
    return [](Ctx& cc, Lock& l) -> sim::Task<void> {
      co_await l.elided_acquire(cc);
    }(c, lock);
  });
  *committed = status.ok();
}

template <class Lock>
void check_elide_free() {
  Machine m;
  Lock lock(m);
  bool committed = false;
  m.spawn([&](Ctx& c) { return elide_when_free(c, lock, &committed); });
  m.run();
  EXPECT_TRUE(committed);
  EXPECT_FALSE(lock.debug_locked());  // elision never writes the lock
}

TEST(ElidedAcquire, FreeLockElidesWithoutWriting) {
  check_elide_free<locks::TTASLock>();
  check_elide_free<locks::MCSLock>();
  check_elide_free<locks::TicketLock>();
  check_elide_free<locks::CLHLock>();
  check_elide_free<locks::AndersonLock>();
  check_elide_free<locks::ElidableTicketLock>();
  check_elide_free<locks::ElidableCLHLock>();
  check_elide_free<locks::ElidableAndersonLock>();
}

// Appendix-A recipe applied to the Anderson lock: a solo run restores the
// ticket counter exactly; the plain variant advances the baton instead.
TEST(AppendixA, ElidableAndersonSoloRunRestoresState) {
  Machine m;
  locks::ElidableAndersonLock lock(m);
  m.spawn([&](Ctx& c) -> sim::Task<void> {
    return [](Ctx& cc, locks::ElidableAndersonLock& l) -> sim::Task<void> {
      for (int i = 0; i < 25; ++i) {
        co_await l.acquire(cc);
        co_await l.release(cc);
      }
    }(c, lock);
  });
  m.run();
  EXPECT_EQ(lock.debug_tail(), 0u);
  EXPECT_FALSE(lock.debug_locked());
}

TEST(AppendixA, PlainAndersonSoloRunDoesNotRestore) {
  Machine m;
  locks::AndersonLock lock(m);
  m.spawn([&](Ctx& c) -> sim::Task<void> {
    return [](Ctx& cc, locks::AndersonLock& l) -> sim::Task<void> {
      for (int i = 0; i < 25; ++i) {
        co_await l.acquire(cc);
        co_await l.release(cc);
      }
    }(c, lock);
  });
  m.run();
  EXPECT_EQ(lock.debug_tail(), 25u);
  EXPECT_FALSE(lock.debug_locked());
}

}  // namespace
}  // namespace sihle
