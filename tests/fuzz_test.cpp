// Schedule fuzzing: re-run the core invariants under randomized
// equal-clock tie-breaking, across many seeds.  Strict lowest-id ordering
// explores one interleaving per seed; the fuzzing mode explores different
// (still deterministic) ones, widening the schedule coverage of the
// mutual-exclusion, structure-validity and accounting checks.
#include <gtest/gtest.h>

#include <vector>

#include "elision/schemes.h"
#include "harness/rbtree_workload.h"
#include "locks/locks.h"
#include "runtime/ctx.h"

namespace sihle {
namespace {

using elision::Scheme;
using runtime::Ctx;
using runtime::LineHandle;
using runtime::Machine;

struct Counter {
  LineHandle line;
  mem::Shared<std::uint64_t> value;
  explicit Counter(Machine& m) : line(m), value(line.line(), 0) {}
};

sim::Task<void> incr(Ctx& c, Counter& cnt) {
  const std::uint64_t v = co_await c.load(cnt.value);
  co_await c.work(c.rng().below(50));
  co_await c.store(cnt.value, v + 1);
}

template <class Lock>
sim::Task<void> worker(Ctx& c, Scheme s, Lock& lock, locks::MCSLock& aux,
                       Counter& cnt, int ops, stats::OpStats& st) {
  for (int i = 0; i < ops; ++i) {
    co_await elision::run_op(s, c, lock, aux,
                             [&cnt](Ctx& cc) { return incr(cc, cnt); }, st);
  }
}

class FuzzCounter : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzCounter, InvariantUnderRandomSchedules) {
  const std::uint64_t seed = GetParam();
  for (Scheme s : {Scheme::kHle, Scheme::kHleScm, Scheme::kOptSlr}) {
    Machine::Config cfg;
    cfg.seed = seed;
    cfg.random_tie_break = true;
    cfg.htm.spurious_abort_per_access = 5e-4;
    Machine m(cfg);
    locks::MCSLock lock(m);
    locks::MCSLock aux(m);
    Counter cnt(m);
    std::vector<stats::OpStats> st(8);
    for (int t = 0; t < 8; ++t) {
      m.spawn([&, t](Ctx& c) {
        return worker<locks::MCSLock>(c, s, lock, aux, cnt, 120, st[t]);
      });
    }
    m.run();
    EXPECT_EQ(cnt.value.debug_value(), 8u * 120u)
        << elision::to_string(s) << " seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzCounter,
                         ::testing::Range<std::uint64_t>(100, 120));

class FuzzTree : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzTree, StructureValidUnderRandomSchedules) {
  harness::WorkloadConfig cfg;
  cfg.seed = GetParam();
  cfg.random_tie_break = true;
  cfg.tree_size = 48;
  cfg.update_pct = 60;
  cfg.duration = 300'000;
  cfg.scheme = GetParam() % 2 == 0 ? Scheme::kOptSlr : Scheme::kHleScm;
  cfg.lock = locks::LockKind::kTtas;
  const auto r = harness::run_rbtree_workload(cfg);
  EXPECT_TRUE(r.tree_valid);
  EXPECT_GT(r.stats.ops(), 0u);
  EXPECT_EQ(r.latency.count(), r.stats.ops());
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTree,
                         ::testing::Range<std::uint64_t>(200, 230));

// The fuzzing mode is itself deterministic per seed, and distinct from the
// strict ordering.
TEST(FuzzDeterminism, SameSeedSameRun) {
  harness::WorkloadConfig cfg;
  cfg.seed = 77;
  cfg.random_tie_break = true;
  cfg.tree_size = 64;
  cfg.duration = 200'000;
  cfg.scheme = Scheme::kHle;
  const auto a = harness::run_rbtree_workload(cfg);
  const auto b = harness::run_rbtree_workload(cfg);
  EXPECT_EQ(a.stats.ops(), b.stats.ops());
  EXPECT_EQ(a.stats.aborts, b.stats.aborts);
  EXPECT_EQ(a.elapsed, b.elapsed);
}

}  // namespace
}  // namespace sihle
