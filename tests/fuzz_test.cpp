// Schedule fuzzing: re-run the core invariants under randomized
// equal-clock tie-breaking, across many seeds.  Strict lowest-id ordering
// explores one interleaving per seed; the fuzzing mode explores different
// (still deterministic) ones, widening the schedule coverage of the
// mutual-exclusion, structure-validity and accounting checks.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "elision/schemes.h"
#include "harness/rbtree_workload.h"
#include "locks/locks.h"
#include "runtime/ctx.h"
#include "stats/export.h"
#include "stats/timeline.h"

namespace sihle {
namespace {

using elision::Scheme;
using runtime::Ctx;
using runtime::LineHandle;
using runtime::Machine;

struct Counter {
  LineHandle line;
  mem::Shared<std::uint64_t> value;
  explicit Counter(Machine& m) : line(m), value(line.line(), 0) {}
};

sim::Task<void> incr(Ctx& c, Counter& cnt) {
  const std::uint64_t v = co_await c.load(cnt.value);
  co_await c.work(c.rng().below(50));
  co_await c.store(cnt.value, v + 1);
}

template <class Lock>
sim::Task<void> worker(Ctx& c, Scheme s, Lock& lock, locks::MCSLock& aux,
                       Counter& cnt, int ops, stats::OpStats& st) {
  for (int i = 0; i < ops; ++i) {
    co_await elision::run_op(s, c, lock, aux,
                             [&cnt](Ctx& cc) { return incr(cc, cnt); }, st);
  }
}

class FuzzCounter : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzCounter, InvariantUnderRandomSchedules) {
  const std::uint64_t seed = GetParam();
  for (Scheme s : {Scheme::kHle, Scheme::kHleScm, Scheme::kOptSlr}) {
    Machine::Config cfg;
    cfg.seed = seed;
    cfg.random_tie_break = true;
    cfg.htm.spurious_abort_per_access = 5e-4;
    Machine m(cfg);
    locks::MCSLock lock(m);
    locks::MCSLock aux(m);
    Counter cnt(m);
    std::vector<stats::OpStats> st(8);
    for (int t = 0; t < 8; ++t) {
      m.spawn([&, t](Ctx& c) {
        return worker<locks::MCSLock>(c, s, lock, aux, cnt, 120, st[t]);
      });
    }
    m.run();
    EXPECT_EQ(cnt.value.debug_value(), 8u * 120u)
        << elision::to_string(s) << " seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzCounter,
                         ::testing::Range<std::uint64_t>(100, 120));

class FuzzTree : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzTree, StructureValidUnderRandomSchedules) {
  harness::WorkloadConfig cfg;
  cfg.seed = GetParam();
  cfg.random_tie_break = true;
  cfg.tree_size = 48;
  cfg.update_pct = 60;
  cfg.duration = 300'000;
  cfg.scheme = GetParam() % 2 == 0 ? Scheme::kOptSlr : Scheme::kHleScm;
  cfg.lock = locks::LockKind::kTtas;
  const auto r = harness::run_rbtree_workload(cfg);
  EXPECT_TRUE(r.tree_valid);
  EXPECT_GT(r.stats.ops(), 0u);
  EXPECT_EQ(r.latency.count(), r.stats.ops());
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTree,
                         ::testing::Range<std::uint64_t>(200, 230));

// Observability round trip under fuzzed schedules: whatever event stream a
// randomized (but per-seed deterministic) schedule produces, exporting it to
// JSON, parsing the JSON back, and re-aggregating the embedded events must
// reproduce the directly aggregated timeline and the lemming verdict.
class FuzzTraceRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzTraceRoundTrip, ExportParseReaggregateIsLossless) {
  const std::uint64_t seed = GetParam();
  const Scheme scheme = seed % 2 == 0 ? Scheme::kHle : Scheme::kSlrScm;
  Machine::Config cfg;
  cfg.seed = seed;
  cfg.random_tie_break = true;
  cfg.htm.spurious_abort_per_access = 5e-4;
  Machine m(cfg);
  stats::EventTrace events;
  m.set_event_trace(&events);
  locks::MCSLock lock(m);
  locks::MCSLock aux(m);
  Counter cnt(m);
  std::vector<stats::OpStats> st(6);
  for (int t = 0; t < 6; ++t) {
    m.spawn([&, t](Ctx& c) {
      return worker<locks::MCSLock>(c, scheme, lock, aux, cnt, 80, st[t]);
    });
  }
  m.run();
  ASSERT_EQ(cnt.value.debug_value(), 6u * 80u);
  ASSERT_EQ(events.total_dropped(), 0u);

  // Vary the window width with the seed so bucketing edges get fuzzed too.
  const sim::Cycles window = 10'000 + 1'000 * (seed % 7);
  stats::TraceRunMeta meta;
  meta.label = "fuzz/" + std::to_string(seed);
  meta.scheme = elision::to_string(scheme);
  meta.lock = "MCS";
  meta.threads = 6;
  meta.seed = seed;
  stats::TraceWriter writer;
  writer.add_run(meta, events, window, {}, /*include_events=*/true);

  stats::ParsedTrace parsed;
  std::string error;
  ASSERT_TRUE(stats::parse_trace_json(writer.json(), parsed, &error))
      << "seed " << seed << ": " << error;
  ASSERT_EQ(parsed.runs.size(), 1u);
  const stats::TraceRun& run = parsed.runs[0];
  ASSERT_TRUE(run.has_events);
  EXPECT_EQ(run.events.size(), events.total_events());

  const stats::Timeline direct = stats::Timeline::aggregate(events, window);
  EXPECT_EQ(run.timeline(), direct) << "seed " << seed;
  const stats::EventTrace rebuilt = stats::rebuild_events(run);
  EXPECT_EQ(stats::Timeline::aggregate(rebuilt, window), direct)
      << "seed " << seed;
  const stats::LemmingReport want = stats::detect_lemming(direct);
  EXPECT_EQ(run.lemming.fired, want.fired) << "seed " << seed;
  EXPECT_EQ(run.lemming.run_length, want.run_length) << "seed " << seed;

  // Serializing the parsed document again is byte-identical (the writer is
  // canonical, so export ∘ parse is idempotent).
  stats::TraceWriter rewriter;
  rewriter.add_run(run.meta, rebuilt, run.window_cycles, {},
                   /*include_events=*/true);
  EXPECT_EQ(rewriter.json(), writer.json()) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTraceRoundTrip,
                         ::testing::Range<std::uint64_t>(300, 315));

// The fuzzing mode is itself deterministic per seed, and distinct from the
// strict ordering.
TEST(FuzzDeterminism, SameSeedSameRun) {
  harness::WorkloadConfig cfg;
  cfg.seed = 77;
  cfg.random_tie_break = true;
  cfg.tree_size = 64;
  cfg.duration = 200'000;
  cfg.scheme = Scheme::kHle;
  const auto a = harness::run_rbtree_workload(cfg);
  const auto b = harness::run_rbtree_workload(cfg);
  EXPECT_EQ(a.stats.ops(), b.stats.ops());
  EXPECT_EQ(a.stats.aborts, b.stats.aborts);
  EXPECT_EQ(a.elapsed, b.elapsed);
}

}  // namespace
}  // namespace sihle
