// Linked-list-set and skiplist correctness: sequential oracle comparisons,
// structural validation after concurrent runs under every scheme, and the
// capacity-abort behaviour the linked list exists to exercise.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "ds/linkedlist.h"
#include "ds/skiplist.h"
#include "elision/schemes.h"
#include "harness/rbtree_workload.h"
#include "locks/locks.h"
#include "runtime/ctx.h"

namespace sihle {
namespace {

using elision::Scheme;
using runtime::Ctx;
using runtime::Machine;

template <class DS>
sim::Task<void> oracle_driver(Ctx& c, DS& set, std::set<std::int64_t>& oracle,
                              int ops, int* mismatches) {
  for (int i = 0; i < ops; ++i) {
    const std::int64_t key = static_cast<std::int64_t>(c.rng().below(120));
    const int action = static_cast<int>(c.rng().below(3));
    if (action == 0) {
      const bool r = co_await set.insert(c, key);
      if (r != oracle.insert(key).second) ++*mismatches;
    } else if (action == 1) {
      const bool r = co_await set.erase(c, key);
      if (r != (oracle.erase(key) > 0)) ++*mismatches;
    } else {
      const bool r = co_await set.contains(c, key);
      if (r != (oracle.count(key) > 0)) ++*mismatches;
    }
  }
}

template <class DS>
void run_oracle(std::uint64_t seed) {
  Machine::Config cfg;
  cfg.seed = seed;
  Machine m(cfg);
  DS set(m);
  std::set<std::int64_t> oracle;
  int mismatches = 0;
  m.spawn([&](Ctx& c) { return oracle_driver(c, set, oracle, 3000, &mismatches); });
  m.run();
  EXPECT_EQ(mismatches, 0) << "seed " << seed;
  EXPECT_TRUE(set.debug_validate());
  EXPECT_EQ(set.debug_size(), oracle.size());
}

TEST(LinkedListSequential, MatchesSetOracle) {
  for (std::uint64_t s : {1u, 2u, 3u}) run_oracle<ds::LinkedListSet>(s);
}
TEST(SkipListSequential, MatchesSetOracle) {
  for (std::uint64_t s : {1u, 2u, 3u}) run_oracle<ds::SkipList>(s);
}

TEST(SkipListStructure, DebugInsertBuildsValidLevels) {
  Machine m;
  ds::SkipList set(m);
  for (int i = 0; i < 500; ++i) set.debug_insert(i * 7 % 501);
  EXPECT_TRUE(set.debug_validate());
  EXPECT_EQ(set.debug_size(), 500u);  // i*7 mod 501 is injective for i<501
}

TEST(SkipListStructure, SizeMatchesDistinctKeys) {
  Machine m;
  ds::SkipList set(m);
  std::set<std::int64_t> oracle;
  sim::Rng rng(9);
  for (int i = 0; i < 800; ++i) {
    const auto k = static_cast<std::int64_t>(rng.below(300));
    set.debug_insert(k);
    oracle.insert(k);
  }
  EXPECT_EQ(set.debug_size(), oracle.size());
  EXPECT_TRUE(set.debug_validate());
}

// Concurrent validation through the workload driver (which also checks
// structural validity and op accounting).
class SetsConcurrent : public ::testing::TestWithParam<Scheme> {};

TEST_P(SetsConcurrent, LinkedListValidUnderScheme) {
  harness::WorkloadConfig cfg;
  cfg.ds = harness::DsKind::kLinkedList;
  cfg.tree_size = 64;
  cfg.scheme = GetParam();
  cfg.lock = locks::LockKind::kTtas;
  cfg.duration = 400'000;
  const auto r = harness::run_rbtree_workload(cfg);
  EXPECT_TRUE(r.tree_valid);
  EXPECT_GT(r.stats.ops(), 0u);
}

TEST_P(SetsConcurrent, SkipListValidUnderScheme) {
  harness::WorkloadConfig cfg;
  cfg.ds = harness::DsKind::kSkipList;
  cfg.tree_size = 256;
  cfg.scheme = GetParam();
  cfg.lock = locks::LockKind::kMcs;
  cfg.duration = 400'000;
  const auto r = harness::run_rbtree_workload(cfg);
  EXPECT_TRUE(r.tree_valid);
  EXPECT_GT(r.stats.ops(), 0u);
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, SetsConcurrent,
                         ::testing::ValuesIn(elision::kAllSchemesExtended),
                         [](const ::testing::TestParamInfo<Scheme>& info) {
                           std::string n = elision::to_string(info.param);
                           for (char& ch : n) {
                             if (ch == '-' || ch == ' ') ch = '_';
                           }
                           return n;
                         });

// Capacity wall: with the read-set bound tightened, linked-list traversals
// longer than the bound abort with kCapacity and the scheme must fall back
// — correctly, every time.
TEST(LinkedListCapacity, LongTraversalsHitTheReadSetWall) {
  harness::WorkloadConfig cfg;
  cfg.ds = harness::DsKind::kLinkedList;
  cfg.tree_size = 512;
  cfg.max_read_lines = 128;  // wall well inside the list
  cfg.scheme = Scheme::kHle;
  cfg.lock = locks::LockKind::kTtas;
  cfg.update_pct = 20;
  cfg.duration = 600'000;
  cfg.spurious = 0.0;
  cfg.persistent = 0.0;
  const auto r = harness::run_rbtree_workload(cfg);
  EXPECT_TRUE(r.tree_valid);
  const auto capacity_aborts =
      r.stats.abort_causes[static_cast<std::size_t>(htm::AbortCause::kCapacity)];
  EXPECT_GT(capacity_aborts, r.stats.ops() / 4);  // most deep ops hit it
  EXPECT_GT(r.stats.nonspec_fraction(), 0.3);     // and complete via the lock
}

}  // namespace
}  // namespace sihle
