// Interactive explorer for the red-black-tree benchmark: pick a scheme,
// lock, tree size, thread count and update mix on the command line and get
// the full statistics breakdown, including abort causes.
//
// Run: ./build/examples/rbtree_explorer --scheme=slr --lock=mcs --size=512 \
//          --threads=8 --updates=20 --duration-ms=2 --seed=1
// Add --trace=FILE to dump a per-transaction CSV timeline
// (thread,begin,end,outcome) for offline analysis.
#include <cstdio>

#include "harness/cli.h"
#include "harness/rbtree_workload.h"

using namespace sihle;
using harness::Args;

int main(int argc, char** argv) {
  Args args(argc, argv);
  harness::apply_analysis_flag(args);
  harness::WorkloadConfig cfg;
  cfg.scheme = harness::parse_scheme(args.get("scheme", "hle"));
  cfg.lock = harness::parse_lock(args.get("lock", "ttas"));
  cfg.tree_size = static_cast<std::size_t>(args.get_int("size", 128));
  cfg.threads = static_cast<int>(args.get_int("threads", 8));
  cfg.update_pct = static_cast<int>(args.get_int("updates", 20));
  cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  cfg.spurious = args.get_double("spurious", harness::kDefaultSpurious);
  cfg.persistent = args.get_double("persistent", harness::kDefaultPersistent);
  const std::string ds_name = args.get("ds", "rbtree");
  if (ds_name == "hashtable") {
    cfg.ds = harness::DsKind::kHashTable;
  } else if (ds_name == "linkedlist") {
    cfg.ds = harness::DsKind::kLinkedList;
  } else if (ds_name == "skiplist") {
    cfg.ds = harness::DsKind::kSkipList;
  } else {
    cfg.ds = harness::DsKind::kRbTree;
  }
  cfg.duration = static_cast<sim::Cycles>(args.get_double("duration-ms", 1.5) *
                                          cfg.costs.cycles_per_ms);
  stats::TxTrace trace;
  const std::string trace_path = args.get("trace", "");
  if (!trace_path.empty()) cfg.trace = &trace;

  const auto r = harness::run_rbtree_workload(cfg);

  if (!trace_path.empty()) {
    std::FILE* f = std::fopen(trace_path.c_str(), "w");
    if (f != nullptr) {
      trace.dump_csv(f);
      std::fclose(f);
      std::printf("wrote %zu transaction records to %s\n", trace.records().size(),
                  trace_path.c_str());
    }
  }

  std::printf("workload:   %s, %zu elements, %d threads, %d%% updates\n",
              harness::to_string(cfg.ds), cfg.tree_size, cfg.threads,
              cfg.update_pct);
  std::printf("scheme:     %s on %s lock (seed %llu)\n",
              elision::policy_label(cfg.scheme).c_str(), locks::to_string(cfg.lock),
              static_cast<unsigned long long>(cfg.seed));
  std::printf("\n");
  std::printf("virtual time:        %llu cycles (%.3f simulated ms)\n",
              static_cast<unsigned long long>(r.elapsed),
              static_cast<double>(r.elapsed) / cfg.costs.cycles_per_ms);
  std::printf("operations:          %llu (%.1f per 1K cycles)\n",
              static_cast<unsigned long long>(r.stats.ops()),
              r.ops_per_mcycle / 1000.0);
  std::printf("speculative commits: %llu\n",
              static_cast<unsigned long long>(r.stats.spec_commits));
  std::printf("non-speculative:     %llu (fraction %.4f)\n",
              static_cast<unsigned long long>(r.stats.nonspec),
              r.stats.nonspec_fraction());
  std::printf("aborted attempts:    %llu (%.3f attempts per op)\n",
              static_cast<unsigned long long>(r.stats.aborts),
              r.stats.attempts_per_op());
  std::printf("arrived-lock-held:   %.4f of arrivals\n",
              r.stats.arrival_lock_held_fraction());
  std::printf("SCM aux entries:     %llu\n",
              static_cast<unsigned long long>(r.stats.aux_acquisitions));
  std::printf("abort causes:\n");
  for (std::size_t i = 1; i < htm::kNumAbortCauses; ++i) {
    if (r.stats.abort_causes[i] == 0) continue;
    std::printf("  %-10s %llu\n",
                std::string(htm::to_string(static_cast<htm::AbortCause>(i))).c_str(),
                static_cast<unsigned long long>(r.stats.abort_causes[i]));
  }
  std::printf("\nstructure valid: %s, final size %zu\n", r.tree_valid ? "yes" : "NO",
              r.final_size);
  return r.tree_valid ? 0 : 1;
}
