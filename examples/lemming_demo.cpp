// Narrated demonstration of the lemming effect and its cure.
//
// Runs the same red-black-tree workload three times on an HLE-elided MCS
// lock — plain HLE, HLE with Intel's retry recommendation, and HLE with the
// paper's software-assisted conflict management — and prints a per-
// millisecond timeline of how much of the execution was speculative.
//
// Run: ./build/examples/lemming_demo
#include <cstdio>

#include "harness/rbtree_workload.h"

using namespace sihle;

void run_and_narrate(elision::Scheme scheme, const char* story) {
  harness::WorkloadConfig cfg;
  cfg.scheme = scheme;
  cfg.lock = locks::LockKind::kMcs;
  cfg.tree_size = 128;
  cfg.threads = 8;
  cfg.update_pct = 20;
  cfg.seed = 3;
  cfg.record_slices = true;
  cfg.slice_cycles = cfg.costs.cycles_per_ms / 4;  // 0.25 ms slices
  cfg.duration = 16 * cfg.slice_cycles;

  const auto r = harness::run_rbtree_workload(cfg);

  std::printf("=== %s on an MCS lock ===\n%s\n\n", elision::to_string(scheme), story);
  std::printf("  slot | ops | speculative share\n");
  const auto& sl = *r.slices;
  for (std::size_t i = 0; i < sl.slices(); ++i) {
    const auto ops = sl.ops_in(i);
    const double spec =
        ops == 0 ? 0.0 : 1.0 - static_cast<double>(sl.nonspec_in(i)) / ops;
    std::printf("  %4zu | %3llu | %5.1f%% |%s\n", i,
                static_cast<unsigned long long>(ops), spec * 100.0,
                std::string(static_cast<std::size_t>(spec * 40), '#').c_str());
  }
  std::printf("\n  whole run: %llu ops, %.1f%% speculative, %.2f attempts/op\n\n",
              static_cast<unsigned long long>(r.stats.ops()),
              (1.0 - r.stats.nonspec_fraction()) * 100.0,
              r.stats.attempts_per_op());
}

int main() {
  std::printf(
      "The lemming effect (Afek, Levy & Morrison, PODC'14):\n"
      "an aborted HLE transaction acquires the lock for real, which aborts\n"
      "every other speculating thread; with a fair queue lock the queue\n"
      "'remembers' the event and the whole system stays non-speculative\n"
      "until a quiescent period that never comes.\n\n");

  run_and_narrate(elision::Scheme::kHle,
                  "Plain HLE: the first abort sends everyone into the MCS queue\n"
                  "and speculation never recovers — throughput equals the plain\n"
                  "lock despite the hardware's best intentions.");

  run_and_narrate(elision::Scheme::kHleRetries,
                  "Intel's recommendation (retry 10 times): retries burn out\n"
                  "against the standing queue at 8 threads, so the lemming\n"
                  "march continues.");

  run_and_narrate(elision::Scheme::kHleScm,
                  "Software-assisted conflict management: aborted threads\n"
                  "serialize on an auxiliary lock and rejoin speculation; the\n"
                  "main lock stays free and the timeline stays speculative.");

  run_and_narrate(elision::Scheme::kOptSlr,
                  "Software-assisted lock removal: transactions ignore the lock\n"
                  "until commit, so a lock acquisition cannot chain-abort them\n"
                  "(at the price of opacity).");
  return 0;
}
