// Run any STAMP kernel under any scheme and lock from the command line,
// with the full statistics breakdown — the quickest way to explore how the
// paper's techniques behave on application-shaped workloads.
//
// Run: ./build/examples/stamp_runner --app=vacation_high --scheme=slr \
//          --lock=mcs --threads=8 --scale=1.0 --seed=1
//      ./build/examples/stamp_runner --list
#include <cstdio>
#include <cstring>
#include <string>

#include "harness/cli.h"
#include "stamp/app.h"

using namespace sihle;
using harness::Args;

int main(int argc, char** argv) {
  Args args(argc, argv);
  harness::apply_analysis_flag(args);
  if (args.has("list")) {
    std::printf("available kernels:\n");
    for (const auto& app : stamp::stamp_apps()) std::printf("  %s\n", app.name);
    return 0;
  }

  const std::string app_name = args.get("app", "intruder");
  const stamp::StampApp* app = nullptr;
  for (const auto& a : stamp::stamp_apps()) {
    if (app_name == a.name) app = &a;
  }
  if (app == nullptr) {
    std::fprintf(stderr, "unknown app '%s' (try --list)\n", app_name.c_str());
    return 2;
  }

  stamp::StampConfig cfg;
  cfg.scheme = harness::parse_scheme(args.get("scheme", "hle"));
  cfg.lock = harness::parse_lock(args.get("lock", "ttas"));
  cfg.threads = static_cast<int>(args.get_int("threads", 8));
  cfg.scale = args.get_double("scale", 1.0);
  cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));

  const auto r = app->run(cfg);
  // A standard-lock run of the same configuration for context.
  stamp::StampConfig base_cfg = cfg;
  base_cfg.scheme = elision::Scheme::kStandard;
  const auto base = app->run(base_cfg);

  std::printf("%s under %s on %s lock, %d threads (scale %.2f, seed %llu)\n\n",
              app->name, elision::policy_label(cfg.scheme).c_str(), locks::to_string(cfg.lock),
              cfg.threads, cfg.scale, static_cast<unsigned long long>(cfg.seed));
  std::printf("virtual run time:    %llu cycles (%.2fx vs standard lock)\n",
              static_cast<unsigned long long>(r.time),
              static_cast<double>(r.time) / static_cast<double>(base.time));
  std::printf("critical sections:   %llu (%llu speculative, %llu via the lock)\n",
              static_cast<unsigned long long>(r.stats.ops()),
              static_cast<unsigned long long>(r.stats.spec_commits),
              static_cast<unsigned long long>(r.stats.nonspec));
  std::printf("aborted attempts:    %llu (%.3f attempts per section)\n",
              static_cast<unsigned long long>(r.stats.aborts),
              r.stats.attempts_per_op());
  std::printf("abort causes:\n");
  for (std::size_t i = 1; i < htm::kNumAbortCauses; ++i) {
    if (r.stats.abort_causes[i] == 0) continue;
    std::printf("  %-10s %llu\n",
                std::string(htm::to_string(static_cast<htm::AbortCause>(i))).c_str(),
                static_cast<unsigned long long>(r.stats.abort_causes[i]));
  }
  std::printf("\napplication validation: %s\n", r.valid ? "PASSED" : "FAILED");
  return r.valid ? 0 : 1;
}
