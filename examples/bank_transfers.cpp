// Bank-transfer workload: the coarse-grained-lock pattern the paper's
// introduction motivates.  A legacy program protects ALL accounts with one
// global lock; transfers between random accounts rarely conflict, so lock
// elision should recover almost all the lost parallelism — unless the
// lemming effect strikes.
//
// This example also demonstrates SLR's loss of opacity staying harmless:
// an auditor thread sums all balances in one long critical section; the
// money-conservation invariant must hold in every committed observation.
//
// Run: ./build/examples/bank_transfers [threads] [accounts]
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "elision/elided_lock.h"
#include "locks/locks.h"
#include "runtime/ctx.h"
#include "runtime/shared_array.h"

using namespace sihle;
using runtime::Ctx;
using runtime::Machine;
using runtime::SharedArray;

constexpr std::int64_t kInitialBalance = 1000;

sim::Task<void> transfer(Ctx& c, SharedArray<std::int64_t>& accounts, int from,
                         int to, std::int64_t amount) {
  const std::int64_t f = co_await c.load(accounts[from]);
  if (f < amount) co_return;  // insufficient funds
  co_await c.store(accounts[from], f - amount);
  co_await c.work(15);
  const std::int64_t t = co_await c.load(accounts[to]);
  co_await c.store(accounts[to], t + amount);
}

sim::Task<void> audit(Ctx& c, SharedArray<std::int64_t>& accounts,
                      std::int64_t* observed_total) {
  std::int64_t total = 0;
  for (std::size_t i = 0; i < accounts.size(); ++i) {
    total += co_await c.load(accounts[i]);
  }
  *observed_total = total;
}

sim::Task<void> teller(Ctx& c, elision::Policy scheme, elision::ElidedLock& lock,
                       SharedArray<std::int64_t>& accounts, int ops,
                       stats::OpStats& st, std::uint64_t* audit_failures) {
  const auto n = static_cast<std::uint64_t>(accounts.size());
  for (int i = 0; i < ops; ++i) {
    if (c.rng().chance(0.02)) {
      // Occasional full audit: a long read-only critical section.
      std::int64_t total = 0;
      co_await elision::run_cs(
          scheme, c, lock,
          [&accounts, &total](Ctx& cc) { return audit(cc, accounts, &total); }, st);
      if (total != static_cast<std::int64_t>(n) * kInitialBalance) {
        ++*audit_failures;
      }
    } else {
      const int from = static_cast<int>(c.rng().below(n));
      int to = static_cast<int>(c.rng().below(n));
      if (to == from) to = (to + 1) % static_cast<int>(n);
      const std::int64_t amount = 1 + static_cast<std::int64_t>(c.rng().below(50));
      co_await elision::run_cs(
          scheme, c, lock,
          [&accounts, from, to, amount](Ctx& cc) {
            return transfer(cc, accounts, from, to, amount);
          },
          st);
    }
  }
}

int main(int argc, char** argv) {
  const int threads = argc > 1 ? std::atoi(argv[1]) : 8;
  const int accounts_n = argc > 2 ? std::atoi(argv[2]) : 256;
  const int ops = 1500;

  std::printf("Bank: %d tellers, %d accounts, one global lock\n\n", threads,
              accounts_n);
  std::printf("%-6s %-12s %12s %9s %8s %8s\n", "lock", "scheme", "virt-cycles",
              "aborts", "nonspec", "audits-ok");

  for (locks::LockKind lk : {locks::LockKind::kTtas, locks::LockKind::kMcs}) {
    for (elision::Scheme scheme : elision::kAllSchemes) {
      Machine::Config cfg;
      cfg.seed = 7;
      cfg.htm.spurious_abort_per_access = 1e-4;
      Machine m(cfg);
      SharedArray<std::int64_t> accounts(m, static_cast<std::size_t>(accounts_n),
                                         kInitialBalance);
      // The global lock under test, with its SCM aux lock and adaptation
      // state bundled; the LockKind product lives inside ElidedLock.
      elision::ElidedLock lock(m, lk);

      std::vector<stats::OpStats> st(threads);
      std::uint64_t audit_failures = 0;
      for (int t = 0; t < threads; ++t) {
        m.spawn([&, t](Ctx& c) -> sim::Task<void> {
          return teller(c, scheme, lock, accounts, ops, st[t], &audit_failures);
        });
      }
      m.run();

      std::int64_t total = 0;
      for (std::size_t i = 0; i < accounts.size(); ++i) {
        total += accounts[i].debug_value();
      }
      stats::OpStats sum;
      for (const auto& s : st) sum += s;
      std::printf("%-6s %-12s %12llu %9llu %8llu %8s\n", locks::to_string(lk),
                  elision::to_string(scheme),
                  static_cast<unsigned long long>(m.exec().max_clock()),
                  static_cast<unsigned long long>(sum.aborts),
                  static_cast<unsigned long long>(sum.nonspec),
                  audit_failures == 0 ? "yes" : "NO");
      if (total != static_cast<std::int64_t>(accounts_n) * kInitialBalance) {
        std::printf("MONEY NOT CONSERVED: %lld\n", static_cast<long long>(total));
        return 1;
      }
    }
  }
  std::printf("\nMoney conserved under every scheme; note how MCS needs the\n"
              "software-assisted schemes (SCM/SLR) to avoid serialization.\n");
  return 0;
}
