// Quickstart: protect a shared counter with a lock, then run the same
// critical section under hardware lock elision and under the paper's
// software-assisted schemes, and compare.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart
#include <cstdio>

#include "elision/elided_lock.h"
#include "locks/locks.h"
#include "runtime/ctx.h"

using namespace sihle;
using runtime::Ctx;
using runtime::LineHandle;
using runtime::Machine;

// Shared state lives in mem::Shared<T> cells; each cell belongs to a
// simulated 64-byte cache line owned through a LineHandle.
struct Account {
  LineHandle line;
  mem::Shared<std::int64_t> balance;
  explicit Account(Machine& m) : line(m), balance(line.line(), 0) {}
};

// Critical sections are C++20 coroutines: every shared access is awaited,
// which is where the simulator interleaves threads and detects conflicts.
sim::Task<void> deposit(Ctx& ctx, Account& acct, std::int64_t amount) {
  const std::int64_t cur = co_await ctx.load(acct.balance);
  co_await ctx.work(20);  // some private computation inside the section
  co_await ctx.store(acct.balance, cur + amount);
}

sim::Task<void> worker(Ctx& ctx, elision::Policy policy,
                       elision::ElidedLock& lock, Account& acct, int ops,
                       stats::OpStats& st) {
  for (int i = 0; i < ops; ++i) {
    // run_cs executes `deposit` as one critical section of `lock` under the
    // chosen policy: plain locking, HLE, HLE with retries, HLE+SCM,
    // optimistic SLR, or SLR+SCM — any canonical scheme or parameterized
    // composition (see elision/registry.h for the spec grammar).
    co_await elision::run_cs(
        policy, ctx, lock,
        [&acct](Ctx& c) { return deposit(c, acct, 1); }, st);
  }
}

int main() {
  constexpr int kThreads = 8;
  constexpr int kOps = 2000;

  std::printf("%-12s %12s %10s %9s %8s\n", "scheme", "virt-cycles", "spec-ops",
              "aborts", "nonspec");
  for (elision::Scheme scheme : elision::kAllSchemes) {
    Machine::Config cfg;
    cfg.seed = 42;
    cfg.htm.spurious_abort_per_access = 1e-4;
    Machine m(cfg);

    // One elidable lock: a TTAS main lock plus SCM's fair MCS auxiliary
    // lock, bundled with the per-lock adaptation state.
    elision::ElidedLock lock(m, locks::LockKind::kTtas);
    Account acct(m);

    std::vector<stats::OpStats> st(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      m.spawn([&, t](Ctx& c) {
        return worker(c, scheme, lock, acct, kOps, st[t]);
      });
    }
    m.run();  // deterministic: same seed => same run

    stats::OpStats total;
    for (const auto& s : st) total += s;
    std::printf("%-12s %12llu %10llu %9llu %8llu\n", elision::to_string(scheme),
                static_cast<unsigned long long>(m.exec().max_clock()),
                static_cast<unsigned long long>(total.spec_commits),
                static_cast<unsigned long long>(total.aborts),
                static_cast<unsigned long long>(total.nonspec));

    if (acct.balance.debug_value() != kThreads * kOps) {
      std::printf("INVARIANT VIOLATED: balance=%lld\n",
                  static_cast<long long>(acct.balance.debug_value()));
      return 1;
    }
  }
  std::printf("\nAll schemes preserved the invariant (balance == %d).\n",
              kThreads * kOps);
  return 0;
}
