// mc_explore: bounded model checking of the elision-policy registry.
//
// Exhaustively enumerates thread interleavings (plus optional spurious-abort
// and conflict-arbitration branching) of a small two-thread critical-section
// workload for every requested policy spec × lock kind, checking opacity,
// lockset invariants, and final-state atomicity on every schedule
// (docs/VERIFICATION.md).  Also runs the SLR lazy-subscription hazard
// scenario, exhibiting the Figure-5 unsafety as a minimal replayable
// counterexample and proving subscribe=commit-checked closes it.
//
// Usage:
//   mc_explore [--sweep] [--hazard] [--ratio] [--ops0 N] [--ops1 N]
//              [--spurious N] [--ties] [--scheme SPEC] [--lock KIND]
//              [--json FILE]
//
//   --sweep        all extended schemes x {ttas, mcs} + SCM-grouped (default)
//   --scheme/--lock  one registry spec instead of the sweep
//   --hazard       the lazy-subscription hazard demonstration + proof
//   --ratio        naive-DFS vs POR state-count comparison
//   --json FILE    export counterexamples as sihle-mc v1 JSON
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "elision/registry.h"
#include "mc/workloads.h"
#include "stats/export.h"

namespace {

using namespace sihle;  // NOLINT(google-build-using-namespace): CLI driver

void print_result(const char* what, const mc::McScenarioResult& r) {
  const auto& s = r.stats;
  std::printf(
      "%-34s schedules=%-7llu transitions=%-8llu sleep-pruned=%-6llu "
      "singleton=%-5llu%s findings=%llu\n",
      what, static_cast<unsigned long long>(s.runs),
      static_cast<unsigned long long>(s.transitions),
      static_cast<unsigned long long>(s.sleep_pruned),
      static_cast<unsigned long long>(s.singleton_commits),
      s.complete ? "" : " INCOMPLETE",
      static_cast<unsigned long long>(r.findings.total()));
  if (!r.findings.clean()) {
    // Per-kind summary only; the individual findings repeat across
    // schedules, and the counterexamples below carry the detail.
    std::printf("  analysis: %llu finding(s) over %llu bad schedule(s)",
                static_cast<unsigned long long>(r.findings.total()),
                static_cast<unsigned long long>(r.bad_schedules));
    for (const auto k :
         {stats::FindingKind::kMcNonSerializableCommit,
          stats::FindingKind::kMcInconsistentAbortedRead,
          stats::FindingKind::kMcDeadlock, stats::FindingKind::kMcStepLimit}) {
      const auto n = r.findings.count(k);
      if (n != 0) {
        std::printf("  %s=%llu", to_string(k),
                    static_cast<unsigned long long>(n));
      }
    }
    std::printf("\n");
    std::uint64_t mc_total = 0;
    for (const auto k :
         {stats::FindingKind::kMcNonSerializableCommit,
          stats::FindingKind::kMcInconsistentAbortedRead,
          stats::FindingKind::kMcDeadlock, stats::FindingKind::kMcStepLimit}) {
      mc_total += r.findings.count(k);
    }
    // Anything else came from the lockset checker — print it in full.
    if (r.findings.total() > mc_total) r.findings.print(stdout);
    for (const auto& cx : r.counterexamples) {
      std::printf("  counterexample (%zu choices): %s\n", cx.trace.size(),
                  cx.witness.c_str());
      std::printf("    trace:");
      for (const auto& c : cx.trace) {
        std::printf(" %s:%u", c.kind.c_str(), c.chosen);
      }
      std::printf("\n");
    }
  }
}

void collect(stats::McDocument& doc, const mc::McScenarioResult& r) {
  for (const auto& cx : r.counterexamples) doc.counterexamples.push_back(cx);
}

// Findings that fail the run.  For SLR-flavored specs the
// inconsistent-aborted-read concession is inherent to lazy subscription
// (zombies may observe a torn snapshot before the doom lands; commit-time
// subscription checking stops them *committing*, not reading) — the sweep
// reports it but does not treat it as a verification failure
// (docs/VERIFICATION.md).
bool has_fatal(const mc::McScenarioResult& r, bool allow_aborted_read) {
  std::uint64_t fatal = r.findings.total();
  if (allow_aborted_read) {
    fatal -= r.findings.count(stats::FindingKind::kMcInconsistentAbortedRead);
  }
  return fatal != 0;
}

bool is_slr_flavor(const std::string& spec) {
  std::string error;
  const auto p = elision::parse_policy(spec, &error);
  return p && p->flavor == elision::AttemptFlavor::kSlr;
}

int usage() {
  std::fprintf(stderr,
               "usage: mc_explore [--sweep] [--hazard] [--ratio] [--ops0 N] "
               "[--ops1 N] [--spurious N] [--ties] [--scheme SPEC] "
               "[--lock KIND] [--json FILE]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool sweep = false;
  bool hazard = false;
  bool ratio = false;
  std::string scheme;
  std::string lock_name = "ttas";
  std::string json_path;
  mc::ScenarioOptions opts;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "mc_explore: %s needs a value\n", what);
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--sweep") {
      sweep = true;
    } else if (a == "--hazard") {
      hazard = true;
    } else if (a == "--ratio") {
      ratio = true;
    } else if (a == "--scheme") {
      scheme = next("--scheme");
    } else if (a == "--lock") {
      lock_name = next("--lock");
    } else if (a == "--ops0") {
      opts.ops0 = std::atoi(next("--ops0"));
    } else if (a == "--ops1") {
      opts.ops1 = std::atoi(next("--ops1"));
    } else if (a == "--spurious") {
      opts.mc.spurious_budget = std::atoi(next("--spurious"));
    } else if (a == "--ties") {
      opts.mc.explore_conflict_ties = true;
    } else if (a == "--json") {
      json_path = next("--json");
    } else {
      return usage();
    }
  }
  if (!sweep && !hazard && !ratio && scheme.empty()) sweep = true;

  std::string error;
  const auto kind = elision::parse_lock_kind(lock_name, &error);
  if (!kind) {
    std::fprintf(stderr, "mc_explore: %s\n", error.c_str());
    return 2;
  }

  stats::McDocument doc;
  bool any_violation = false;
  auto run_one = [&](const std::string& spec, locks::LockKind k) {
    const auto r = mc::explore_scheme(spec, k, opts);
    print_result((spec + " x " + elision::lock_key(k)).c_str(), r);
    collect(doc, r);
    any_violation |= has_fatal(r, is_slr_flavor(spec));
  };

  if (!scheme.empty()) run_one(scheme, *kind);

  if (sweep) {
    std::printf("== registry sweep: coupled-increment %dx%d, spurious=%d ==\n",
                opts.ops0, opts.ops1, opts.mc.spurious_budget);
    for (const auto s : elision::kAllSchemesExtended) {
      // Concurrent re-speculation with the full 10-attempt budget makes the
      // schedule space astronomically large for the non-SCM retry schemes
      // (SCM's auxiliary lock serializes retries); the sweep verifies them
      // with a small budget, which exercises the same protocol logic.
      std::string spec = elision::scheme_row(s).key;
      if (s == elision::Scheme::kHleRetries || s == elision::Scheme::kOptSlr) {
        spec += ":retries=2";
      }
      for (const auto k : {locks::LockKind::kTtas, locks::LockKind::kMcs}) {
        run_one(spec, k);
      }
    }
    for (const auto flavor :
         {elision::ScmFlavor::kHle, elision::ScmFlavor::kSlr}) {
      const auto r = mc::explore_scm_grouped(flavor, opts);
      print_result(flavor == elision::ScmFlavor::kHle ? "scm-grouped:hle"
                                                      : "scm-grouped:slr",
                   r);
      collect(doc, r);
      any_violation |= has_fatal(r, flavor == elision::ScmFlavor::kSlr);
    }
  }

  if (ratio) {
    std::printf("== partial-order reduction ratio (hle x ttas, %dx%d) ==\n",
                opts.ops0, opts.ops1);
    mc::ScenarioOptions naive = opts;
    naive.mc.use_sleep_sets = false;
    naive.mc.use_singleton_steps = false;
    naive.mc.max_runs = 500000;
    const auto rn = mc::explore_scheme("hle", *kind, naive);
    const auto rp = mc::explore_scheme("hle", *kind, opts);
    print_result("naive DFS", rn);
    print_result("sleep sets + singleton steps", rp);
    const double explored_naive =
        static_cast<double>(rn.stats.runs + rn.stats.step_limited);
    const double explored_por = static_cast<double>(rp.stats.runs);
    if (explored_por > 0) {
      std::printf("reduction: %.1fx%s\n", explored_naive / explored_por,
                  rn.stats.complete ? "" : " (naive capped: lower bound)");
    }
  }

  if (hazard) {
    std::printf("== SLR lazy-subscription hazard (docs/VERIFICATION.md) ==\n");
    for (const auto hz :
         {htm::SlrHazard::kWildStore, htm::SlrHazard::kEarlyCommit}) {
      for (const auto sub : {elision::SubscribeKind::kLazy,
                             elision::SubscribeKind::kCommitChecked}) {
        const auto r = mc::explore_slr_hazard(hz, sub, opts);
        const bool broken =
            r.findings.count(stats::FindingKind::kMcNonSerializableCommit) > 0;
        std::string label = std::string(to_string(hz)) + " / subscribe=" +
                            (sub == elision::SubscribeKind::kCommitChecked
                                 ? "commit-checked"
                                 : "lazy");
        print_result(label.c_str(), r);
        std::printf("  -> %s\n",
                    broken ? "VIOLATION: zombie committed a torn snapshot"
                           : "safe: no non-serializable commit in any schedule");
        collect(doc, r);
        // Hazard violations under lazy subscription are the expected
        // demonstration, not a failure of the tool.
        if (sub == elision::SubscribeKind::kCommitChecked) {
          any_violation |= broken;
        }
      }
    }
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "mc_explore: cannot write %s\n", json_path.c_str());
      return 2;
    }
    out << stats::export_mc_json(doc);
    std::printf("wrote %zu counterexample(s) to %s\n",
                doc.counterexamples.size(), json_path.c_str());
  }

  return any_violation ? 1 : 0;
}
