#!/usr/bin/env python3
"""Repo-invariant linter for the SIHLE codebase.

Checks C++ sources for hazards that the compiler accepts but that violate
repo rules (documented in src/elision/policy.h and docs/ANALYSIS.md):

  R001  gcc12-coawait        A co_await whose operand is a Task-valued call
                             must be its own statement or the initializer of
                             a declaration/assignment.  GCC 12 miscompiles
                             Task-valued awaits nested in conditions or in
                             `co_return co_await ...` (the temporary task's
                             coroutine frame is destroyed at the wrong point).
  R002  raw-shared-access    Raw access to simulated memory (.raw(),
                             .set_raw(), .debug_value()) bypasses the
                             simulation's cost and conflict accounting; it is
                             only allowed inside debug_* functions and inside
                             the simulation engine itself (allowlisted dirs).
  R003  discarded-status     The AbortStatus returned by a transaction
                             attempt was discarded (`co_await attempt(...);`
                             as a bare statement).  Retry loops must inspect
                             the abort status to honour dooming/lemming
                             policy; dropping it retries blindly.
  R004  private-dispatch     A legacy `elision::run_op(...)` call or a
                             `case Scheme::` / `case LockKind::` /
                             `case LockMode::` switch arm re-creates the
                             scheme x lock x mode dispatch product
                             privately.  That product lives in one place:
                             elision::run_cs / ElidedLock
                             (elision/elided_lock.h), fed by the registry
                             name table (elision/registry.h).  The dispatch
                             point, the compat shim, and the enums' defining
                             modules (src/elision, src/locks) are exempt.
  R005  unlogged-choice      A nondeterminism source outside the simulator —
                             direct sim::Rng construction, C rand()/srand(),
                             std::random_device, <random> engines, or a
                             time-based seed — is invisible to the bounded
                             model checker.  Every scheduling-relevant
                             decision must flow through the simulator's RNG
                             or the choice-point API (sim/choice.h) so
                             src/mc can reify and enumerate it.  The
                             simulator and checker themselves (src/sim,
                             src/mc) are exempt; anything else (e.g. a
                             wall-clock perf gate) must carry an explicit
                             suppression.
  R006  private-load-loop    A file that names a workload config
                             (WorkloadConfig / ShardWorkloadConfig) AND
                             drives critical sections itself
                             (elision::run_cs) re-creates the load
                             generation loop privately.  Load flows through
                             one stack (docs/SERVICE.md): the service
                             layer's arrival -> queue -> dispatcher pipeline
                             with src/harness's workload drivers as the only
                             config-fed run_cs call sites; src/service and
                             src/harness are exempt.  Benches and tests
                             configure a WorkloadConfig and hand it to
                             harness::run_*_workload instead of looping over
                             run_cs themselves.

Suppressions:
  // sihle-lint: disable=R001[,R002...]       this line or the next line
  // sihle-lint: disable-file=R002[,R003...]  whole file

Usage:
  sihle_lint.py [--rules=R001,...,R006] [--allow-dir=PATH ...] PATH...

PATH arguments may be files or directories (searched recursively for
.h/.cpp/.cc/.hpp).  Exit status is 1 if any finding is emitted, else 0.
"""

from __future__ import annotations

import argparse
import os
import re
import sys
from dataclasses import dataclass

ALL_RULES = ("R001", "R002", "R003", "R004", "R005", "R006")

# Directories whose files implement the simulated memory itself and may touch
# raw cell state freely (relative to the repo root or any scanned root).
# src/mc is the model checker: its history recorder and state fingerprints
# read committed cell state by design.
DEFAULT_ALLOW_DIRS = ("src/mem", "src/htm", "src/sim", "src/analysis",
                      "src/mc")

# Directories that legitimately own scheme/lock dispatch: the single dispatch
# point plus the run_op compat shim (src/elision) and the LockKind enum's own
# module (src/locks).  Exempt from R004.
DISPATCH_ALLOW_DIRS = ("src/elision", "src/locks")

# Directories that own nondeterminism: the simulator (whose seeded Rng is
# the sanctioned randomness source) and the model checker (which reifies
# decisions as choice points).  Exempt from R005.
CHOICE_ALLOW_DIRS = ("src/sim", "src/mc")

# Directories that own load generation: the service layer (arrival
# processes, request queues, dispatcher) and the harness workload drivers —
# the only places where a workload config legitimately feeds run_cs call
# sites.  Exempt from R006.
LOAD_ALLOW_DIRS = ("src/service", "src/harness")

CPP_EXTENSIONS = (".h", ".hpp", ".cc", ".cpp")

RAW_ACCESS_RE = re.compile(r"(?:\.|->)(raw|set_raw|debug_value)\s*\(")
RUN_OP_RE = re.compile(r"\b(?:elision\s*::\s*)?run_op\s*\(")
# R006: a workload-config name plus a direct critical-section call in the
# same file means the file drives load itself instead of handing the config
# to a harness/service entry point.
WORKLOAD_CONFIG_RE = re.compile(r"\b(?:Shard)?WorkloadConfig\b")
RUN_CS_RE = re.compile(r"\b(?:elision\s*::\s*)?run_cs\s*\(")
DISPATCH_SWITCH_RE = re.compile(
    r"\bcase\s+(?:\w+\s*::\s*)*(?:Scheme|LockKind|LockMode)\s*::\s*\w+")
TASK_DECL_RE = re.compile(r"\bTask<([^<>]*(?:<[^<>]*>)?[^<>]*)>\s+(\w+)\s*\(")
CO_AWAIT_CALL_RE = re.compile(
    r"\bco_await\s+(?:[\w:]+(?:\.|->))*(\w+)\s*\(")
# R005: nondeterminism sources that bypass the simulator's seeded Rng and
# the choice-point API.  Each pattern pairs with a human-readable label.
UNLOGGED_CHOICE_PATTERNS = (
    (re.compile(r"\bs?rand\s*\("), "C library rand()/srand()"),
    (re.compile(r"\brandom_device\b"), "std::random_device"),
    (re.compile(r"\b(?:minstd_rand0?|mt19937(?:_64)?|ranlux\w+|knuth_b)\b"),
     "<random> engine"),
    (re.compile(r"\b(?:steady_clock|system_clock|high_resolution_clock|"
                r"clock)\s*::\s*now\b"),
     "wall-clock time"),
    (re.compile(r"\btime\s*\(\s*(?:nullptr|NULL|0)\s*\)"),
     "time()-based seed"),
)
SUPPRESS_LINE_RE = re.compile(r"//\s*sihle-lint:\s*disable=([\w,\s]+)")
SUPPRESS_FILE_RE = re.compile(r"//\s*sihle-lint:\s*disable-file=([\w,\s]+)")
# A function definition: identifier (with optional ~ for destructors),
# argument list, optional qualifiers, then an opening brace.  Control-flow
# keywords are filtered out afterwards.
FUNC_DEF_RE = re.compile(
    r"(?<!\w)(~?\w+)\s*\((?:[^()]|\([^()]*\))*\)\s*"
    r"(?:const\s*)?(?:noexcept\s*)?(?:override\s*)?(?:->\s*[^{;]+?)?\s*\{")
NOT_FUNCTIONS = {"if", "for", "while", "switch", "catch", "return", "sizeof",
                 "alignof", "decltype", "static_assert", "defined", "co_await",
                 "co_return", "co_yield", "new", "delete"}


@dataclass
class Finding:
    path: str
    line: int  # 1-based
    rule: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: {self.rule}: {self.message}"


def strip_comments_and_strings(text: str) -> str:
    """Blanks out comments, string and char literals, preserving offsets."""
    out = list(text)
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if ch == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                out[i] = " "
                i += 1
        elif ch == "/" and nxt == "*":
            out[i] = out[i + 1] = " "
            i += 2
            while i < n and not (text[i] == "*" and i + 1 < n and text[i + 1] == "/"):
                if text[i] != "\n":
                    out[i] = " "
                i += 1
            if i < n:
                out[i] = out[i + 1] = " "
                i += 2
        elif ch in "\"'":
            quote = ch
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    out[i] = " "
                    i += 1
                if i < n and text[i] != "\n":
                    out[i] = " "
                i += 1
            i += 1
        else:
            i += 1
    return "".join(out)


def collect_suppressions(text: str):
    """Returns (file_disabled_rules, {line_number: {rules}}).

    A line suppression applies to its own line and to the following line, so
    it can sit either trailing the offending statement or just above it.
    """
    file_rules: set[str] = set()
    line_rules: dict[int, set[str]] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        m = SUPPRESS_FILE_RE.search(line)
        if m:
            file_rules.update(r.strip() for r in m.group(1).split(","))
        m = SUPPRESS_LINE_RE.search(line)
        if m:
            rules = {r.strip() for r in m.group(1).split(",")}
            line_rules.setdefault(lineno, set()).update(rules)
            line_rules.setdefault(lineno + 1, set()).update(rules)
    return file_rules, line_rules


def build_registry(stripped_texts) -> dict:
    """Maps every Task-returning function name to 'status' (Task<AbortStatus>)
    or 'task' (any other Task<...>), across all scanned files."""
    registry: dict[str, str] = {}
    for text in stripped_texts:
        for m in TASK_DECL_RE.finditer(text):
            inner, name = m.group(1).strip(), m.group(2)
            kind = "status" if inner.endswith("AbortStatus") else "task"
            # 'status' wins: discarding an AbortStatus is the sharper signal.
            if registry.get(name) != "status":
                registry[name] = kind
    return registry


def iter_statements(stripped: str):
    """Yields (start_offset, statement_text) chunks delimited by ; { }."""
    start = 0
    for i, ch in enumerate(stripped):
        if ch in ";{}":
            yield start, stripped[start:i]
            start = i + 1
    if start < len(stripped):
        yield start, stripped[start:]


def line_of(text: str, offset: int) -> int:
    return text.count("\n", 0, offset) + 1


def normalize_prefix(prefix: str) -> str:
    """Strips complete statement guards — labels, `else`, balanced
    `if/while/for (...)` — so that a co_await forming the guarded statement's
    entire body is recognized as its own statement."""
    prev = None
    while prev != prefix:
        prev = prefix
        prefix = re.sub(r"^(?:case\b(?:::|[^:])*:(?!:)|default\s*:|\w+\s*:(?!:))",
                        "", prefix).strip()
        prefix = re.sub(r"^(?:else|do)\b", "", prefix).strip()
        m = re.match(r"^(?:if|while|for|switch)\s*\(", prefix)
        if m:
            depth = 0
            for j in range(m.end() - 1, len(prefix)):
                if prefix[j] == "(":
                    depth += 1
                elif prefix[j] == ")":
                    depth -= 1
                    if depth == 0:
                        prefix = prefix[j + 1:].strip()
                        break
            else:
                break  # guard parens not closed before the co_await: nested
    return prefix


def check_coawait_rules(path, stripped, registry, findings):
    """R001 and R003 over statement chunks."""
    for start, stmt in iter_statements(stripped):
        for m in CO_AWAIT_CALL_RE.finditer(stmt):
            name = m.group(1)
            kind = registry.get(name)
            if kind is None:
                continue  # plain awaiter (Ctx op) or unknown: not a Task
            lineno = line_of(stripped, start + m.start())
            prefix = normalize_prefix(stmt[: m.start()].strip())
            nested = prefix.count("(") > prefix.count(")")
            if nested:
                findings.append(Finding(
                    path, lineno, "R001",
                    f"Task-valued 'co_await {name}(...)' nested inside "
                    "parentheses; GCC 12 destroys the temporary task's frame "
                    "at the wrong point — await into a named local first"))
                continue
            if re.search(r"\b(?:co_return|return)$", prefix):
                findings.append(Finding(
                    path, lineno, "R001",
                    f"'co_return co_await {name}(...)' — GCC 12 releases the "
                    "temporary task's frame before the await completes; "
                    "await into a named local, then co_return it"))
                continue
            if prefix and not prefix.endswith("="):
                findings.append(Finding(
                    path, lineno, "R001",
                    f"Task-valued 'co_await {name}(...)' embedded in an "
                    "expression; make it its own statement or a "
                    "declaration's initializer"))
                continue
            # The await must also END the statement: a trailing operator
            # (`co_await f() && flag`) embeds the task in a larger
            # expression just the same.
            depth, close = 0, None
            for j in range(m.end() - 1, len(stmt)):
                if stmt[j] == "(":
                    depth += 1
                elif stmt[j] == ")":
                    depth -= 1
                    if depth == 0:
                        close = j
                        break
            if close is not None and stmt[close + 1:].strip():
                findings.append(Finding(
                    path, lineno, "R001",
                    f"Task-valued 'co_await {name}(...)' is a subexpression "
                    "of a larger expression; await into a named local "
                    "first"))
                continue
            if not prefix and kind == "status":
                findings.append(Finding(
                    path, lineno, "R003",
                    f"AbortStatus returned by '{name}' is discarded; retry "
                    "logic must inspect the abort status (doomed, capacity, "
                    "lock-busy) before re-attempting"))


def function_spans(stripped: str):
    """Returns [(open_brace_offset, close_brace_offset, name)] for every
    function-looking definition, innermost resolvable by smallest span."""
    # Pre-match braces.
    stack, match = [], {}
    for i, ch in enumerate(stripped):
        if ch == "{":
            stack.append(i)
        elif ch == "}" and stack:
            match[stack.pop()] = i
    spans = []
    for m in FUNC_DEF_RE.finditer(stripped):
        name = m.group(1)
        if name in NOT_FUNCTIONS:
            continue
        open_brace = m.end() - 1
        close = match.get(open_brace)
        if close is not None:
            spans.append((open_brace, close, name))
    return spans


def check_raw_access(path, stripped, findings):
    """R002: raw Shared<T> access outside debug_* functions."""
    spans = function_spans(stripped)
    for m in RAW_ACCESS_RE.finditer(stripped):
        pos = m.start()
        enclosing = [s for s in spans if s[0] < pos < s[1]]
        # debug_* functions are the sanctioned raw-access surface;
        # destructors tear down raw state after the simulation by nature.
        if any(name.startswith(("debug_", "~")) for _, _, name in enclosing):
            continue
        lineno = line_of(stripped, pos)
        findings.append(Finding(
            path, lineno, "R002",
            f"raw simulated-memory access '.{m.group(1)}()' outside a "
            "debug_* function bypasses cost/conflict accounting; use Ctx "
            "load/store ops (or rename the enclosing function debug_*)"))


def check_private_dispatch(path, stripped, findings):
    """R004: legacy run_op calls and Scheme/LockKind switch dispatch."""
    for m in RUN_OP_RE.finditer(stripped):
        findings.append(Finding(
            path, line_of(stripped, m.start()), "R004",
            "legacy per-scheme 'elision::run_op(...)' outside src/elision/; "
            "dispatch through elision::run_cs with an ElidedLock "
            "(elision/elided_lock.h) or a registry policy "
            "(elision/registry.h)"))
    for m in DISPATCH_SWITCH_RE.finditer(stripped):
        findings.append(Finding(
            path, line_of(stripped, m.start()), "R004",
            "'case Scheme::' / 'case LockKind::' / 'case LockMode::' outside "
            "src/elision/ and src/locks/ duplicates the scheme x lock x mode "
            "dispatch product; route through elision::run_cs / ElidedLock "
            "and the registry name table (elision/registry.h)"))


# Rng(seed) / Rng{seed} calls and Rng declarations (`Rng g{7};`, `Rng g;`).
# References and pointers (`Rng& r`) are uses, not constructions.
RNG_CONSTRUCT_RE = re.compile(
    r"\b(?:sim\s*::\s*)?Rng\s*(?:(?=[({])|\s\w+\s*(?=[({;=]))")
SEEDED_ARG_RE = re.compile(r"seed", re.IGNORECASE)


def check_unlogged_choice(path, stripped, findings):
    """R005: nondeterminism sources invisible to the model checker."""

    def flag(pos, label):
        findings.append(Finding(
            path, line_of(stripped, pos), "R005",
            f"{label} outside src/sim and src/mc is invisible to the "
            "bounded model checker; route the decision through the "
            "simulator's seeded Rng or the choice-point API "
            "(sim/choice.h), or suppress with a justification"))

    for pattern, label in UNLOGGED_CHOICE_PATTERNS:
        for m in pattern.finditer(stripped):
            flag(m.start(), label)
    # Constructing an Rng from a *propagated* seed expression (anything
    # mentioning "seed": cfg.seed, the replicate seed, seed ^ salt) is the
    # sanctioned deterministic pattern.  Inventing one — default constructor,
    # bare literal, or any seedless expression — creates a random stream the
    # explorer can neither see nor replay.
    for m in RNG_CONSTRUCT_RE.finditer(stripped):
        end = m.end()
        if end < len(stripped) and stripped[end] in "({":
            open_ch = stripped[end]
            close_ch = ")" if open_ch == "(" else "}"
            depth, j = 0, end
            while j < len(stripped):
                if stripped[j] == open_ch:
                    depth += 1
                elif stripped[j] == close_ch:
                    depth -= 1
                    if depth == 0:
                        break
                j += 1
            if SEEDED_ARG_RE.search(stripped[end + 1:j]):
                continue
        flag(m.start(), "sim::Rng construction with an invented seed")


def check_private_load_loop(path, stripped, findings):
    """R006: a config-naming file driving critical sections itself."""
    if not WORKLOAD_CONFIG_RE.search(stripped):
        return
    for m in RUN_CS_RE.finditer(stripped):
        findings.append(Finding(
            path, line_of(stripped, m.start()), "R006",
            "direct 'elision::run_cs(...)' in a file that names a workload "
            "config re-creates the load-generation loop privately; hand the "
            "config to harness::run_rbtree_workload / run_shard_workload "
            "(or drive requests through the service layer's dispatcher — "
            "docs/SERVICE.md)"))


def lint_source(path, text, registry, rules=ALL_RULES, allowed=False,
                dispatch_allowed=False, choice_allowed=False,
                load_allowed=False):
    """Lints one file's contents; returns the surviving findings."""
    stripped = strip_comments_and_strings(text)
    file_disabled, line_disabled = collect_suppressions(text)
    findings: list[Finding] = []
    if "R001" in rules or "R003" in rules:
        check_coawait_rules(path, stripped, registry, findings)
    if "R002" in rules and not allowed:
        check_raw_access(path, stripped, findings)
    if "R004" in rules and not dispatch_allowed:
        check_private_dispatch(path, stripped, findings)
    if "R005" in rules and not choice_allowed:
        check_unlogged_choice(path, stripped, findings)
    if "R006" in rules and not load_allowed:
        check_private_load_loop(path, stripped, findings)
    return [
        f for f in findings
        if f.rule in rules
        and f.rule not in file_disabled
        and f.rule not in line_disabled.get(f.line, set())
    ]


def gather_files(paths):
    files = []
    for p in paths:
        if os.path.isdir(p):
            for root, _dirs, names in os.walk(p):
                for n in sorted(names):
                    if n.endswith(CPP_EXTENSIONS):
                        files.append(os.path.join(root, n))
        else:
            files.append(p)
    return files


def is_allowlisted(path: str, allow_dirs) -> bool:
    norm = os.path.normpath(path).replace(os.sep, "/")
    return any(f"/{d}/" in f"/{norm}" for d in allow_dirs)


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("paths", nargs="+", help="files or directories to lint")
    ap.add_argument("--rules", default=",".join(ALL_RULES),
                    help="comma-separated rule ids to enable")
    ap.add_argument("--allow-dir", action="append", default=[],
                    help="extra directory (relative) exempt from R002")
    args = ap.parse_args(argv)
    rules = tuple(r.strip() for r in args.rules.split(",") if r.strip())
    allow_dirs = tuple(DEFAULT_ALLOW_DIRS) + tuple(args.allow_dir)

    files = gather_files(args.paths)
    texts = {}
    for f in files:
        try:
            with open(f, "r", encoding="utf-8", errors="replace") as fh:
                texts[f] = fh.read()
        except OSError as e:
            print(f"sihle_lint: cannot read {f}: {e}", file=sys.stderr)
            return 2

    registry = build_registry(strip_comments_and_strings(t)
                              for t in texts.values())
    findings = []
    for f, text in texts.items():
        findings.extend(lint_source(
            f, text, registry, rules,
            allowed=is_allowlisted(f, allow_dirs),
            dispatch_allowed=is_allowlisted(f, DISPATCH_ALLOW_DIRS),
            choice_allowed=is_allowlisted(f, CHOICE_ALLOW_DIRS),
            load_allowed=is_allowlisted(f, LOAD_ALLOW_DIRS)))
    for finding in findings:
        print(finding)
    if findings:
        print(f"sihle_lint: {len(findings)} finding(s) in "
              f"{len({f.path for f in findings})} file(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
