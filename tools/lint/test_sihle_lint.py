"""Unit tests for the sihle_lint rule engine (run with python3 -m unittest)."""

import unittest

import sihle_lint as lint


def run_lint(source, registry_sources=(), rules=lint.ALL_RULES, allowed=False,
             dispatch_allowed=False, choice_allowed=False, load_allowed=False):
    stripped = [lint.strip_comments_and_strings(s)
                for s in (source,) + tuple(registry_sources)]
    registry = lint.build_registry(stripped)
    return lint.lint_source("test.cpp", source, registry, rules, allowed,
                            dispatch_allowed, choice_allowed, load_allowed)


TASK_DECLS = """
sim::Task<void> body(Ctx& c);
sim::Task<AbortStatus> hle_attempt(Ctx& c);
sim::Task<bool> insert(Ctx& c, Key k);
"""


class StripTest(unittest.TestCase):
    def test_strips_comments_preserving_lines(self):
        src = "int a; // co_await body(c)\n/* co_await body(c) */ int b;\n"
        out = lint.strip_comments_and_strings(src)
        self.assertNotIn("co_await", out)
        self.assertEqual(out.count("\n"), src.count("\n"))

    def test_strips_string_literals(self):
        out = lint.strip_comments_and_strings('f("co_await body(c)");')
        self.assertNotIn("co_await", out)


class RegistryTest(unittest.TestCase):
    def test_classifies_status_and_task(self):
        reg = lint.build_registry([lint.strip_comments_and_strings(TASK_DECLS)])
        self.assertEqual(reg["hle_attempt"], "status")
        self.assertEqual(reg["body"], "task")
        self.assertEqual(reg["insert"], "task")


class R001Test(unittest.TestCase):
    def assert_rules(self, source, expected):
        found = [f.rule for f in run_lint(source, (TASK_DECLS,))]
        self.assertEqual(found, expected, msg=source)

    def test_flags_await_in_if_condition(self):
        self.assert_rules("sim::Task<void> f(Ctx& c) {\n"
                          "  if (co_await insert(c, k)) { x(); }\n}\n",
                          ["R001"])

    def test_flags_negated_await_in_condition(self):
        self.assert_rules("sim::Task<void> f(Ctx& c) {\n"
                          "  if (!(co_await insert(c, k))) { x(); }\n}\n",
                          ["R001"])

    def test_flags_co_return_co_await(self):
        self.assert_rules("sim::Task<bool> f(Ctx& c) {\n"
                          "  co_return co_await insert(c, k);\n}\n",
                          ["R001"])

    def test_flags_await_in_binary_expression(self):
        self.assert_rules("sim::Task<void> f(Ctx& c) {\n"
                          "  const bool both = co_await insert(c, a) "
                          "&& flag;\n}\n",
                          ["R001"])

    def test_flags_await_as_call_argument(self):
        self.assert_rules("sim::Task<void> f(Ctx& c) {\n"
                          "  g(co_await insert(c, k));\n}\n",
                          ["R001"])

    def test_allows_await_into_named_local(self):
        self.assert_rules("sim::Task<void> f(Ctx& c) {\n"
                          "  const bool r = co_await insert(c, k);\n}\n",
                          [])

    def test_allows_bare_statement_await(self):
        self.assert_rules("sim::Task<void> f(Ctx& c) {\n"
                          "  co_await body(c);\n}\n",
                          [])

    def test_allows_await_as_if_body(self):
        self.assert_rules("sim::Task<void> f(Ctx& c) {\n"
                          "  if (flag) co_await body(c);\n}\n",
                          [])

    def test_allows_await_as_case_body(self):
        # (A non-dispatch enum: case Scheme::/LockKind:: labels are R004's
        # business, exercised in R004Test.)
        self.assert_rules("sim::Task<void> f(Ctx& c) {\n"
                          "  switch (s) {\n"
                          "    case Phase::kStandard:\n"
                          "      co_await body(c);\n"
                          "      break;\n"
                          "  }\n}\n",
                          [])

    def test_ignores_non_task_awaitables(self):
        # Ctx ops return plain awaiters, not Tasks: conditions are fine.
        self.assert_rules("sim::Task<void> f(Ctx& c) {\n"
                          "  if (co_await c.load(x) == 0) { y(); }\n}\n",
                          [])


class R002Test(unittest.TestCase):
    def test_flags_raw_access_in_plain_function(self):
        src = "bool peek() { return cell.debug_value() != 0; }\n"
        self.assertEqual([f.rule for f in run_lint(src)], ["R002"])

    def test_flags_set_raw(self):
        src = "void put() { cell.set_raw(1); }\n"
        self.assertEqual([f.rule for f in run_lint(src)], ["R002"])

    def test_allows_debug_functions(self):
        src = "bool debug_peek() { return cell.debug_value() != 0; }\n"
        self.assertEqual(run_lint(src), [])

    def test_allows_destructors(self):
        src = "Table::~Table() { delete head_.debug_value(); }\n"
        self.assertEqual(run_lint(src), [])

    def test_allowlisted_file_is_exempt(self):
        src = "bool peek() { return cell.debug_value() != 0; }\n"
        self.assertEqual(run_lint(src, allowed=True), [])


class R003Test(unittest.TestCase):
    def test_flags_discarded_abort_status(self):
        src = ("sim::Task<void> f(Ctx& c) {\n"
               "  for (;;) {\n"
               "    co_await hle_attempt(c);\n"
               "  }\n}\n")
        self.assertEqual([f.rule for f in run_lint(src, (TASK_DECLS,))],
                         ["R003"])

    def test_allows_consumed_abort_status(self):
        src = ("sim::Task<void> f(Ctx& c) {\n"
               "  const AbortStatus s = co_await hle_attempt(c);\n"
               "  if (s.ok()) co_return;\n}\n")
        self.assertEqual(run_lint(src, (TASK_DECLS,)), [])


class R004Test(unittest.TestCase):
    def test_flags_qualified_run_op_call(self):
        src = ("sim::Task<void> f(Ctx& c) {\n"
               "  co_await elision::run_op(s, c, lock, aux, body, st);\n}\n")
        self.assertEqual([f.rule for f in run_lint(src)], ["R004"])

    def test_flags_unqualified_run_op_call(self):
        src = ("sim::Task<void> f(Ctx& c) {\n"
               "  co_await run_op(s, c, lock, aux, body, st);\n}\n")
        self.assertEqual([f.rule for f in run_lint(src)], ["R004"])

    def test_flags_scheme_switch(self):
        src = ("const char* name(elision::Scheme s) {\n"
               "  switch (s) {\n"
               "    case elision::Scheme::kHle: return \"HLE\";\n"
               "    default: return \"?\";\n"
               "  }\n}\n")
        found = [f.rule for f in run_lint(src)]
        self.assertEqual(found, ["R004"])

    def test_flags_lock_kind_switch(self):
        src = ("void pick(locks::LockKind k) {\n"
               "  switch (k) {\n"
               "    case locks::LockKind::kTtas: use_ttas(); break;\n"
               "    case LockKind::kMcs: use_mcs(); break;\n"
               "  }\n}\n")
        found = [f.rule for f in run_lint(src)]
        self.assertEqual(found, ["R004", "R004"])

    def test_flags_lock_mode_switch(self):
        src = ("int weight(locks::LockMode m) {\n"
               "  switch (m) {\n"
               "    case locks::LockMode::kShared: return 0;\n"
               "    case LockMode::kExclusive: return 1;\n"
               "  }\n}\n")
        found = [f.rule for f in run_lint(src)]
        self.assertEqual(found, ["R004", "R004"])

    def test_lock_mode_switch_exempt_in_dispatch_dirs(self):
        src = ("int weight(locks::LockMode m) {\n"
               "  switch (m) { case locks::LockMode::kUpdate: return 2; }\n"
               "}\n")
        self.assertEqual(run_lint(src, dispatch_allowed=True), [])

    def test_allows_run_cs(self):
        src = ("sim::Task<void> f(Ctx& c) {\n"
               "  co_await elision::run_cs(policy, c, lock, body, st);\n}\n")
        self.assertEqual(run_lint(src), [])

    def test_allows_other_enum_switches(self):
        src = ("void pick(DsKind k) {\n"
               "  switch (k) {\n"
               "    case DsKind::kRbTree: use_tree(); break;\n"
               "  }\n}\n")
        self.assertEqual(run_lint(src), [])

    def test_ignores_run_op_in_comments_and_strings(self):
        src = ('// migrated off elision::run_op(...)\n'
               'const char* kHint = "use run_op(scheme, ...)";\n')
        self.assertEqual(run_lint(src), [])

    def test_dispatch_allowlisted_file_is_exempt(self):
        src = ("sim::Task<void> f(Ctx& c) {\n"
               "  co_await elision::run_op(s, c, lock, aux, body, st);\n"
               "  switch (s) { case Scheme::kHle: break; }\n}\n")
        self.assertEqual(run_lint(src, dispatch_allowed=True), [])

    def test_allowlist_covers_elision_and_locks_dirs(self):
        self.assertTrue(lint.is_allowlisted("src/elision/schemes.h",
                                            lint.DISPATCH_ALLOW_DIRS))
        self.assertTrue(lint.is_allowlisted("src/locks/locks.h",
                                            lint.DISPATCH_ALLOW_DIRS))
        self.assertFalse(lint.is_allowlisted("src/harness/cli.h",
                                             lint.DISPATCH_ALLOW_DIRS))

    def test_line_suppression_applies(self):
        src = ("sim::Task<void> f(Ctx& c) {\n"
               "  // sihle-lint: disable=R004 (legacy comparison harness)\n"
               "  co_await elision::run_op(s, c, lock, aux, body, st);\n}\n")
        self.assertEqual(run_lint(src), [])


class R005Test(unittest.TestCase):
    def assert_r005(self, source, count):
        findings = run_lint(source)
        self.assertEqual([f.rule for f in findings], ["R005"] * count)

    def test_flags_invented_seed_rng_construction(self):
        self.assert_r005("void f() { auto g = sim::Rng(42); }\n", 1)
        self.assert_r005("void f() { Rng g{7}; }\n", 1)
        self.assert_r005("void f() { Rng g; }\n", 1)

    def test_allows_seed_propagated_rng_construction(self):
        self.assert_r005(
            "void f(const Cfg& cfg) { sim::Rng r(cfg.seed ^ 0xF1); }\n", 0)
        self.assert_r005(
            "void f(std::uint64_t seed) { sim::Rng rng(seed); }\n", 0)
        self.assert_r005("void f() { Rng g{next_seed()}; }\n", 0)

    def test_flags_c_rand(self):
        self.assert_r005("int f() { return rand() % 4; }\n", 1)
        self.assert_r005("void f() { srand(1); }\n", 1)

    def test_flags_random_device(self):
        self.assert_r005("std::random_device rd;\n", 1)

    def test_flags_std_random_engine(self):
        self.assert_r005("std::mt19937 gen(1);\n", 1)
        self.assert_r005("std::mt19937_64 gen(1);\n", 1)

    def test_flags_time_based_seed(self):
        self.assert_r005(
            "auto s = std::chrono::steady_clock::now();\n", 1)
        self.assert_r005("auto s = clock::now();\n", 1)
        self.assert_r005("auto s = time(nullptr);\n", 1)

    def test_allows_simulator_rng_use(self):
        # Drawing from an already-seeded simulator Rng is the sanctioned
        # path; only *construction* (fresh seeding) is a choice source.
        self.assert_r005("void f(sim::Rng& r) { auto v = r.next(); }\n", 0)

    def test_allows_time_point_types(self):
        self.assert_r005("clock::time_point start;\n", 0)

    def test_ignores_comments_and_strings(self):
        self.assert_r005("// seeded via sim::Rng(seed)\n"
                         'const char* s = "rand()";\n', 0)

    def test_choice_allowlisted_file_is_exempt(self):
        src = "void f() { auto g = sim::Rng(42); }\n"
        self.assertEqual(run_lint(src, choice_allowed=True), [])

    def test_allowlist_covers_sim_and_mc_dirs(self):
        self.assertTrue(lint.is_allowlisted("src/sim/executor.cpp",
                                            lint.CHOICE_ALLOW_DIRS))
        self.assertTrue(lint.is_allowlisted("src/mc/explore.cpp",
                                            lint.CHOICE_ALLOW_DIRS))
        self.assertFalse(lint.is_allowlisted("src/elision/policy.h",
                                             lint.CHOICE_ALLOW_DIRS))

    def test_line_suppression_applies(self):
        src = ("void f() {\n"
               "  auto g = sim::Rng(42);  // sihle-lint: disable=R005\n"
               "}\n")
        self.assertEqual(run_lint(src), [])


class R006Test(unittest.TestCase):
    def test_flags_config_plus_direct_run_cs(self):
        src = ("sim::Task<void> drive(Ctx& c, const WorkloadConfig& cfg) {\n"
               "  for (int i = 0; i < cfg.threads; ++i) {\n"
               "    co_await elision::run_cs(policy, c, lock, body, st);\n"
               "  }\n}\n")
        self.assertEqual([f.rule for f in run_lint(src)], ["R006"])

    def test_flags_shard_config_plus_unqualified_run_cs(self):
        src = ("sim::Task<void> drive(Ctx& c, ShardWorkloadConfig cfg) {\n"
               "  co_await run_cs(policy, c, lock, body, st);\n}\n")
        self.assertEqual([f.rule for f in run_lint(src)], ["R006"])

    def test_flags_each_run_cs_site(self):
        src = ("sim::Task<void> drive(Ctx& c, WorkloadConfig cfg) {\n"
               "  co_await elision::run_cs(p1, c, lock, body, st);\n"
               "  co_await elision::run_cs(p2, c, lock, body, st);\n}\n")
        self.assertEqual([f.rule for f in run_lint(src)], ["R006", "R006"])

    def test_allows_config_handed_to_harness(self):
        # The sanctioned bench/test shape: configure, then call the driver.
        src = ("int main() {\n"
               "  WorkloadConfig cfg;\n"
               "  cfg.threads = 8;\n"
               "  const auto r = harness::run_rbtree_workload(cfg);\n"
               "  return r.ops == 0;\n}\n")
        self.assertEqual(run_lint(src), [])

    def test_allows_run_cs_without_config(self):
        # Policy/lock unit tests exercise run_cs directly without naming a
        # workload config: that is dispatch testing, not load generation.
        src = ("sim::Task<void> f(Ctx& c) {\n"
               "  co_await elision::run_cs(policy, c, lock, body, st);\n}\n")
        self.assertEqual(run_lint(src), [])

    def test_load_allowlisted_file_is_exempt(self):
        src = ("sim::Task<void> drive(Ctx& c, WorkloadConfig cfg) {\n"
               "  co_await elision::run_cs(policy, c, lock, body, st);\n}\n")
        self.assertEqual(run_lint(src, load_allowed=True), [])

    def test_allowlist_covers_service_and_harness_dirs(self):
        self.assertTrue(lint.is_allowlisted("src/service/dispatcher.cpp",
                                            lint.LOAD_ALLOW_DIRS))
        self.assertTrue(lint.is_allowlisted("src/harness/shard_workload.cpp",
                                            lint.LOAD_ALLOW_DIRS))
        self.assertFalse(lint.is_allowlisted("bench/figservice_tail.cpp",
                                             lint.LOAD_ALLOW_DIRS))

    def test_ignores_config_named_in_comments(self):
        src = ("// unlike a WorkloadConfig-driven loop, this tests dispatch\n"
               "sim::Task<void> f(Ctx& c) {\n"
               "  co_await elision::run_cs(policy, c, lock, body, st);\n}\n")
        self.assertEqual(run_lint(src), [])

    def test_line_suppression_applies(self):
        src = ("sim::Task<void> drive(Ctx& c, WorkloadConfig cfg) {\n"
               "  // sihle-lint: disable=R006 (micro-harness for the docs)\n"
               "  co_await elision::run_cs(policy, c, lock, body, st);\n}\n")
        self.assertEqual(run_lint(src), [])


class SuppressionTest(unittest.TestCase):
    def test_trailing_line_suppression(self):
        src = ("bool peek() {\n"
               "  return cell.debug_value() != 0;  "
               "// sihle-lint: disable=R002 (reason)\n}\n")
        self.assertEqual(run_lint(src), [])

    def test_preceding_line_suppression(self):
        src = ("bool peek() {\n"
               "  // sihle-lint: disable=R002\n"
               "  return cell.debug_value() != 0;\n}\n")
        self.assertEqual(run_lint(src), [])

    def test_file_suppression(self):
        src = ("// sihle-lint: disable-file=R002\n"
               "bool peek() { return cell.debug_value() != 0; }\n"
               "bool poke() { return other.debug_value() != 0; }\n")
        self.assertEqual(run_lint(src), [])

    def test_suppression_is_rule_specific(self):
        src = ("// sihle-lint: disable-file=R001\n"
               "bool peek() { return cell.debug_value() != 0; }\n")
        self.assertEqual([f.rule for f in run_lint(src)], ["R002"])


class CliTest(unittest.TestCase):
    def test_rules_filter(self):
        src = "bool peek() { return cell.debug_value() != 0; }\n"
        self.assertEqual(run_lint(src, rules=("R001", "R003")), [])


if __name__ == "__main__":
    unittest.main()
