// trace_report — reads a trace document exported by the benches
// (--trace-out=, stats/export.h schema) and prints Figure-2/3-style
// dynamics summaries per run: the per-window throughput / abort-rate /
// non-speculative-fraction series, whole-run totals, and the
// lemming-effect detector's verdict.
//
// When the document embeds raw events (--trace-events at export time) the
// tool can *replay* them: re-bucket at a different window width
// (--window-cycles=) and cross-check that re-aggregation at the stored
// width reproduces the stored window series exactly.
//
// Usage:
//   trace_report FILE [--run=SUBSTR] [--window-cycles=N] [--csv]
//                [--threshold=F] [--min-windows=N] [--min-ops=N]
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "harness/cli.h"
#include "harness/table.h"
#include "stats/export.h"
#include "stats/timeline.h"

using namespace sihle;
using harness::Table;

namespace {

std::string read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    std::fprintf(stderr, "trace_report: cannot open '%s'\n", path.c_str());
    std::exit(2);
  }
  std::string out;
  char buf[65536];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

void print_run(const stats::TraceRun& run, const stats::Timeline& tl,
               const stats::LemmingConfig& lemming_cfg, bool replayed) {
  std::printf("run: %s  (scheme=%s lock=%s threads=%d seed=%llu)\n",
              run.meta.label.c_str(), run.meta.scheme.c_str(),
              run.meta.lock.c_str(), run.meta.threads,
              static_cast<unsigned long long>(run.meta.seed));
  std::printf("  window: %llu cycles%s",
              static_cast<unsigned long long>(tl.window_cycles()),
              replayed ? " (re-bucketed from embedded events)" : "");
  if (run.dropped_events != 0) {
    std::printf("  [ring dropped %llu oldest events]",
                static_cast<unsigned long long>(run.dropped_events));
  }
  std::printf("\n");

  const double mean_ops = tl.mean_ops_per_window();
  Table table({"w", "ops", "norm-thr", "abort-rate", "nonspec-frac", "aux",
               "lockacq", "bar"});
  for (std::size_t i = 0; i < tl.size(); ++i) {
    const stats::Window& w = tl[i];
    const double norm =
        mean_ops > 0 ? static_cast<double>(w.ops()) / mean_ops : 0.0;
    table.row({std::to_string(i), std::to_string(w.ops()), Table::num(norm),
               Table::num(w.abort_rate(), 3), Table::num(w.nonspec_fraction(), 3),
               std::to_string(w.aux_acquires), std::to_string(w.lock_acquires),
               std::string(static_cast<std::size_t>(
                               w.nonspec_fraction() * 20.0 + 0.5), '#')});
  }
  table.print();

  const stats::Window totals = tl.totals();
  std::printf(
      "  totals: begins=%llu commits=%llu aborts=%llu nonspec=%llu "
      "aux=%llu lockacq=%llu  nonspec-frac=%.3f abort-rate=%.3f\n",
      static_cast<unsigned long long>(totals.begins),
      static_cast<unsigned long long>(totals.commits),
      static_cast<unsigned long long>(totals.aborts),
      static_cast<unsigned long long>(totals.nonspec),
      static_cast<unsigned long long>(totals.aux_acquires),
      static_cast<unsigned long long>(totals.lock_acquires),
      totals.nonspec_fraction(), totals.abort_rate());
  bool any_cause = false;
  for (std::size_t c = 0; c < totals.abort_causes.size(); ++c) {
    if (totals.abort_causes[c] == 0) continue;
    std::printf("%s%s=%llu", any_cause ? " " : "  abort causes: ",
                std::string(htm::to_string(static_cast<htm::AbortCause>(c))).c_str(),
                static_cast<unsigned long long>(totals.abort_causes[c]));
    any_cause = true;
  }
  if (any_cause) std::printf("\n");

  const stats::LemmingReport lem = detect_lemming(tl, lemming_cfg);
  if (lem.fired) {
    std::printf(
        "  LEMMING: fired — %zu consecutive windows >= %.0f%% non-speculative "
        "starting at window %zu (trigger abort in window %zu, peak %.3f)\n",
        lem.run_length, lemming_cfg.nonspec_threshold * 100.0, lem.first_window,
        lem.trigger_window, lem.peak_nonspec);
  } else {
    std::printf("  lemming: not fired (longest serialized run %zu window(s), "
                "peak nonspec %.3f)\n",
                lem.run_length, lem.peak_nonspec);
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  harness::Args args(argc, argv);
  std::string path = args.get("in", "");
  for (int i = 1; i < argc && path.empty(); ++i) {
    if (argv[i][0] != '-') path = argv[i];
  }
  if (path.empty()) {
    std::fprintf(stderr,
                 "usage: trace_report FILE [--run=SUBSTR] [--window-cycles=N] "
                 "[--csv] [--threshold=F] [--min-windows=N] [--min-ops=N]\n");
    return 2;
  }

  stats::ParsedTrace doc;
  std::string error;
  if (!stats::parse_trace_json(read_file(path), doc, &error)) {
    std::fprintf(stderr, "trace_report: %s\n", error.c_str());
    return 2;
  }

  const std::string run_filter = args.get("run", "");
  const auto window_override =
      static_cast<sim::Cycles>(args.get_int("window-cycles", 0));
  const bool csv = args.has("csv");
  stats::LemmingConfig lemming_cfg;
  lemming_cfg.nonspec_threshold =
      args.get_double("threshold", lemming_cfg.nonspec_threshold);
  lemming_cfg.min_windows = static_cast<std::size_t>(
      args.get_int("min-windows", static_cast<long>(lemming_cfg.min_windows)));
  lemming_cfg.min_ops_per_window = static_cast<std::uint64_t>(
      args.get_int("min-ops", static_cast<long>(lemming_cfg.min_ops_per_window)));

  int shown = 0;
  for (const stats::TraceRun& run : doc.runs) {
    if (!run_filter.empty() &&
        run.meta.label.find(run_filter) == std::string::npos) {
      continue;
    }
    ++shown;
    stats::Timeline tl = run.timeline();
    bool replayed = false;
    if (run.has_events) {
      // Replay path: re-aggregate the raw events, verifying the stored
      // series (at the stored width) before any re-bucketing.
      const stats::EventTrace events = stats::rebuild_events(run);
      const stats::Timeline check =
          stats::Timeline::aggregate(events, run.window_cycles);
      if (run.dropped_events == 0 && !(check == tl)) {
        std::fprintf(stderr,
                     "trace_report: run '%s': stored windows disagree with "
                     "re-aggregated events\n",
                     run.meta.label.c_str());
        return 1;
      }
      if (window_override != 0) {
        tl = stats::Timeline::aggregate(events, window_override);
        replayed = true;
      }
    } else if (window_override != 0) {
      std::fprintf(stderr,
                   "trace_report: run '%s' has no embedded events; "
                   "--window-cycles needs an export made with --trace-events\n",
                   run.meta.label.c_str());
      return 1;
    }
    if (csv) {
      std::printf("# %s\n", run.meta.label.c_str());
      stats::export_timeline_csv(stdout, tl);
    } else {
      print_run(run, tl, lemming_cfg, replayed);
    }
  }
  if (shown == 0) {
    std::fprintf(stderr, "trace_report: no runs matched '%s' (of %zu)\n",
                 run_filter.c_str(), doc.runs.size());
    return 1;
  }
  return 0;
}
