// bench_regress — the benchmark-regression gate (docs/EXPERIMENTS.md).
//
// Diffs a fresh engine results file against a committed BENCH_*.json
// baseline using the CI-overlap logic in exp/regress.h:
//
//   bench_regress BASELINE CANDIDATE [--metric=ops_per_mcycle]
//                 [--noise=0.05] [--lower-is-better] [--verbose]
//   bench_regress --baseline=FILE --candidate=FILE [...]
//
// Exit codes: 0 = no regression (warnings allowed), 1 = regression beyond
// the noise threshold, 2 = usage or IO/parse error.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "exp/regress.h"
#include "exp/results.h"
#include "harness/cli.h"

using namespace sihle;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: bench_regress BASELINE CANDIDATE [--metric=NAME] "
               "[--noise=F] [--lower-is-better] [--verbose]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  harness::Args args(argc, argv);
  std::string baseline_path = args.get("baseline", "");
  std::string candidate_path = args.get("candidate", "");

  // Positional form: the first two non-flag arguments.
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--", 2) != 0) positional.emplace_back(argv[i]);
  }
  if (baseline_path.empty() && !positional.empty()) baseline_path = positional[0];
  if (candidate_path.empty() && positional.size() > 1) candidate_path = positional[1];
  if (baseline_path.empty() || candidate_path.empty()) return usage();

  exp::RegressOptions opt;
  opt.metric = args.get("metric", opt.metric);
  opt.noise_rel = args.get_double("noise", opt.noise_rel);
  if (args.has("lower-is-better")) opt.higher_is_better = false;

  exp::ExperimentDoc baseline;
  exp::ExperimentDoc candidate;
  std::string error;
  if (!exp::load_results_file(baseline_path, baseline, &error)) {
    std::fprintf(stderr, "bench_regress: baseline: %s\n", error.c_str());
    return 2;
  }
  if (!exp::load_results_file(candidate_path, candidate, &error)) {
    std::fprintf(stderr, "bench_regress: candidate: %s\n", error.c_str());
    return 2;
  }
  if (!baseline.experiment.empty() && !candidate.experiment.empty() &&
      baseline.experiment != candidate.experiment) {
    std::fprintf(stderr,
                 "bench_regress: experiment mismatch: baseline '%s' vs "
                 "candidate '%s'\n",
                 baseline.experiment.c_str(), candidate.experiment.c_str());
    return 2;
  }

  const exp::RegressReport report =
      exp::compare_results(baseline, candidate, opt);
  exp::print_report(stdout, report, opt, args.has("verbose"));
  return report.ok() ? 0 : 1;
}
