#include "exp/regress.h"

#include <algorithm>
#include <cmath>

namespace sihle::exp {

namespace {

bool intervals_overlap(const SummaryStats& a, const SummaryStats& b) {
  return a.ci_lo <= b.ci_hi && b.ci_lo <= a.ci_hi;
}

CellComparison compare_cell(const CellRecord& base, const CellRecord* cand,
                            const RegressOptions& opt) {
  CellComparison out;
  out.id = base.id;
  if (cand == nullptr) {
    out.verdict = Verdict::kWarnMissingCell;
    out.note = "cell missing from candidate";
    return out;
  }
  const MetricRecord* bm = base.find_metric(opt.metric);
  if (bm == nullptr) {
    // The baseline itself lacks the gated metric; nothing to compare.
    out.verdict = Verdict::kWarnMissingMetric;
    out.note = "metric '" + opt.metric + "' missing from baseline cell";
    return out;
  }
  // An all-zero baseline metric is a recording artifact (e.g. a scenario
  // that produced no transactions exporting txs_per_sec anyway), not a
  // level to hold the candidate to: every ratio against it is meaningless.
  // Skip it as a pass so stale baselines cannot wedge the gate.
  if (!bm->samples.empty() &&
      std::all_of(bm->samples.begin(), bm->samples.end(),
                  [](double s) { return s == 0.0; })) {
    out.verdict = Verdict::kPass;
    out.note = "baseline metric all-zero; skipped";
    return out;
  }
  const MetricRecord* cm = cand->find_metric(opt.metric);
  if (cm == nullptr) {
    out.verdict = Verdict::kWarnMissingMetric;
    out.note = "metric '" + opt.metric + "' missing from candidate cell";
    return out;
  }

  out.baseline_mean = bm->stats.mean;
  out.candidate_mean = cm->stats.mean;
  out.ratio = bm->stats.mean != 0.0 ? cm->stats.mean / bm->stats.mean : 1.0;

  const double scale = std::max(std::abs(bm->stats.mean), std::abs(cm->stats.mean));
  const double delta = cm->stats.mean - bm->stats.mean;
  const double rel = scale != 0.0 ? std::abs(delta) / scale : 0.0;
  const bool worse = opt.higher_is_better ? delta < 0.0 : delta > 0.0;
  const bool separated = !intervals_overlap(bm->stats, cm->stats);
  const bool beyond_noise = rel > opt.noise_rel;

  if (worse && separated && beyond_noise) {
    out.verdict = Verdict::kRegressed;
    return out;
  }
  if (!worse && separated && beyond_noise) {
    out.verdict = Verdict::kImproved;
    return out;
  }
  const double widen_floor = opt.noise_rel * std::abs(cm->stats.mean);
  if (cm->stats.ci_width() >
          opt.ci_widen_factor * std::max(bm->stats.ci_width(), 1e-300) &&
      cm->stats.ci_width() > widen_floor) {
    out.verdict = Verdict::kWarnWidenedCi;
    out.note = "candidate CI much wider than baseline";
    return out;
  }
  out.verdict = Verdict::kPass;
  return out;
}

}  // namespace

RegressReport compare_results(const ExperimentDoc& baseline,
                              const ExperimentDoc& candidate,
                              const RegressOptions& opt) {
  RegressReport report;
  report.cells.reserve(baseline.cells.size());
  for (const CellRecord& base : baseline.cells) {
    CellComparison c = compare_cell(base, candidate.find_cell(base.id), opt);
    switch (c.verdict) {
      case Verdict::kPass: report.passes++; break;
      case Verdict::kImproved: report.improvements++; break;
      case Verdict::kRegressed: report.regressions++; break;
      default: report.warnings++; break;
    }
    report.cells.push_back(std::move(c));
  }
  return report;
}

void print_report(std::FILE* out, const RegressReport& report,
                  const RegressOptions& opt, bool verbose) {
  for (const CellComparison& c : report.cells) {
    if (!verbose && c.verdict == Verdict::kPass) continue;
    if (c.note.empty()) {
      std::fprintf(out, "%-18s %s  %.4g -> %.4g (x%.3f)\n",
                   to_string(c.verdict), c.id.c_str(), c.baseline_mean,
                   c.candidate_mean, c.ratio);
    } else {
      std::fprintf(out, "%-18s %s  %s\n", to_string(c.verdict), c.id.c_str(),
                   c.note.c_str());
    }
  }
  std::fprintf(out,
               "bench_regress: metric=%s cells=%zu pass=%zu improved=%zu "
               "warn=%zu regressed=%zu => %s\n",
               opt.metric.c_str(), report.cells.size(), report.passes,
               report.improvements, report.warnings, report.regressions,
               report.ok() ? "OK" : "REGRESSION");
}

}  // namespace sihle::exp
