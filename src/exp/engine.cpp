#include "exp/engine.h"

#include <algorithm>
#include <deque>
#include <mutex>
#include <thread>

namespace sihle::exp {

namespace {

struct RunSlot {
  std::size_t cell = 0;
  int replicate = 0;
};

// Per-worker deque: the owner pops from the front, thieves steal from the
// back.  No task ever spawns another task, so a worker may exit as soon as
// one full scan over every queue comes up empty.
class StealQueue {
 public:
  void push(RunSlot t) {
    std::lock_guard<std::mutex> g(mu_);
    q_.push_back(t);
  }
  bool pop_front(RunSlot& t) {
    std::lock_guard<std::mutex> g(mu_);
    if (q_.empty()) return false;
    t = q_.front();
    q_.pop_front();
    return true;
  }
  bool steal_back(RunSlot& t) {
    std::lock_guard<std::mutex> g(mu_);
    if (q_.empty()) return false;
    t = q_.back();
    q_.pop_back();
    return true;
  }

 private:
  std::mutex mu_;
  std::deque<RunSlot> q_;
};

}  // namespace

int resolve_jobs(int jobs) {
  if (jobs > 0) return jobs;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

Replicates CellResult::metric(std::string_view name) const {
  Replicates out;
  for (const MetricList& sample : samples) {
    for (const auto& [k, v] : sample) {
      if (k == name) {
        out.add(v);
        break;
      }
    }
  }
  return out;
}

std::vector<CellResult> run_experiment(const ExperimentSpec& spec,
                                       const EngineOptions& opt) {
  std::vector<CellResult> out(spec.cells.size());
  const int reps = std::max(spec.replicates, 1);
  for (std::size_t i = 0; i < spec.cells.size(); ++i) {
    out[i].id = spec.cells[i].id;
    out[i].axes = spec.cells[i].axes;
    out[i].samples.resize(static_cast<std::size_t>(reps));
  }

  const auto execute = [&](const RunSlot& t) {
    const std::uint64_t seed =
        spec.base_seed + static_cast<std::uint64_t>(t.replicate);
    out[t.cell].samples[static_cast<std::size_t>(t.replicate)] =
        spec.cells[t.cell].run(seed);
  };

  const int jobs = resolve_jobs(opt.jobs);
  if (jobs <= 1) {
    for (std::size_t c = 0; c < spec.cells.size(); ++c) {
      for (int r = 0; r < reps; ++r) execute({c, r});
    }
    return out;
  }

  // Deal runs round-robin across the worker queues, replicate-major so one
  // cell's replicates land on different workers (cells within a grid can
  // differ in cost by orders of magnitude; spreading replicates narrows the
  // tail).
  std::vector<StealQueue> queues(static_cast<std::size_t>(jobs));
  std::size_t next = 0;
  for (int r = 0; r < reps; ++r) {
    for (std::size_t c = 0; c < spec.cells.size(); ++c) {
      queues[next % queues.size()].push({c, r});
      ++next;
    }
  }

  auto worker = [&](std::size_t me) {
    RunSlot t;
    for (;;) {
      if (queues[me].pop_front(t)) {
        execute(t);
        continue;
      }
      bool stole = false;
      for (std::size_t i = 1; i < queues.size(); ++i) {
        if (queues[(me + i) % queues.size()].steal_back(t)) {
          stole = true;
          break;
        }
      }
      if (!stole) return;  // every queue empty and no producer exists
      execute(t);
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(jobs));
  for (int w = 0; w < jobs; ++w) {
    pool.emplace_back(worker, static_cast<std::size_t>(w));
  }
  for (auto& th : pool) th.join();
  return out;
}

}  // namespace sihle::exp
