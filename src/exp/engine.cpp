#include "exp/engine.h"

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>

namespace sihle::exp {

namespace {

// Per-worker deque: the owner pops from the front, thieves steal from the
// back.  No task ever spawns another task, so a worker may exit as soon as
// one full scan over every queue comes up empty.
class StealQueue {
 public:
  void push(std::size_t t) {
    std::lock_guard<std::mutex> g(mu_);
    q_.push_back(t);
  }
  bool pop_front(std::size_t& t) {
    std::lock_guard<std::mutex> g(mu_);
    if (q_.empty()) return false;
    t = q_.front();
    q_.pop_front();
    return true;
  }
  bool steal_back(std::size_t& t) {
    std::lock_guard<std::mutex> g(mu_);
    if (q_.empty()) return false;
    t = q_.back();
    q_.pop_back();
    return true;
  }

 private:
  std::mutex mu_;
  std::deque<std::size_t> q_;
};

}  // namespace

int resolve_jobs(int jobs) {
  if (jobs > 0) return jobs;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

struct WorkPool::Impl {
  explicit Impl(int jobs) : queues(static_cast<std::size_t>(jobs)) {
    workers.reserve(static_cast<std::size_t>(jobs));
    for (int w = 0; w < jobs; ++w) {
      workers.emplace_back([this, w] { worker(static_cast<std::size_t>(w)); });
    }
  }

  ~Impl() {
    {
      std::lock_guard<std::mutex> g(mu);
      stop = true;
    }
    start_cv.notify_all();
    for (auto& th : workers) th.join();
  }

  // Pop-then-steal until every queue is empty.  Tasks never enqueue more
  // tasks, so a full empty scan means the round's work is exhausted.
  void drain(std::size_t me) {
    std::size_t t;
    for (;;) {
      if (queues[me].pop_front(t)) {
        run_one(t);
        continue;
      }
      bool stole = false;
      for (std::size_t i = 1; i < queues.size(); ++i) {
        if (queues[(me + i) % queues.size()].steal_back(t)) {
          stole = true;
          break;
        }
      }
      if (!stole) return;
      run_one(t);
    }
  }

  void run_one(std::size_t t) {
    try {
      (*task)(t);
    } catch (...) {
      std::lock_guard<std::mutex> g(mu);
      if (!failure) failure = std::current_exception();
    }
  }

  void worker(std::size_t me) {
    std::uint64_t seen = 0;
    for (;;) {
      {
        std::unique_lock<std::mutex> lk(mu);
        start_cv.wait(lk, [&] { return stop || round != seen; });
        if (stop) return;
        seen = round;
      }
      drain(me);
      std::lock_guard<std::mutex> g(mu);
      if (--remaining == 0) done_cv.notify_all();
    }
  }

  std::vector<StealQueue> queues;
  const std::function<void(std::size_t)>* task = nullptr;

  std::mutex mu;
  std::condition_variable start_cv;
  std::condition_variable done_cv;
  std::uint64_t round = 0;   // bumped to release workers into a round
  int remaining = 0;         // workers still draining the current round
  bool stop = false;
  std::exception_ptr failure;  // first task exception of the round

  std::vector<std::thread> workers;
};

WorkPool::WorkPool(int jobs) : jobs_(std::max(jobs, 1)) {
  if (jobs_ > 1) impl_ = std::make_unique<Impl>(jobs_);
}

WorkPool::~WorkPool() = default;

void WorkPool::parallel_run(std::size_t n,
                            const std::function<void(std::size_t)>& task) {
  if (impl_ == nullptr || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) task(i);
    return;
  }
  // Deal round-robin: index order across the queues, so contiguous indices
  // land on different workers (callers order their work so neighbours are
  // the expensive-together ones — run_experiment deals replicate-major for
  // exactly this reason).
  for (std::size_t i = 0; i < n; ++i) {
    impl_->queues[i % impl_->queues.size()].push(i);
  }
  impl_->task = &task;
  {
    std::lock_guard<std::mutex> g(impl_->mu);
    impl_->remaining = jobs_;
    impl_->failure = nullptr;
    ++impl_->round;
  }
  impl_->start_cv.notify_all();
  std::exception_ptr failure;
  {
    std::unique_lock<std::mutex> lk(impl_->mu);
    impl_->done_cv.wait(lk, [&] { return impl_->remaining == 0; });
    failure = impl_->failure;
  }
  impl_->task = nullptr;
  if (failure) std::rethrow_exception(failure);
}

Replicates CellResult::metric(std::string_view name) const {
  Replicates out;
  for (const MetricList& sample : samples) {
    for (const auto& [k, v] : sample) {
      if (k == name) {
        out.add(v);
        break;
      }
    }
  }
  return out;
}

std::vector<CellResult> run_experiment(const ExperimentSpec& spec,
                                       const EngineOptions& opt) {
  std::vector<CellResult> out(spec.cells.size());
  const int reps = std::max(spec.replicates, 1);
  for (std::size_t i = 0; i < spec.cells.size(); ++i) {
    out[i].id = spec.cells[i].id;
    out[i].axes = spec.cells[i].axes;
    out[i].samples.resize(static_cast<std::size_t>(reps));
  }

  struct RunSlot {
    std::size_t cell = 0;
    int replicate = 0;
  };
  const auto execute = [&](const RunSlot& t) {
    const std::uint64_t seed =
        spec.base_seed + static_cast<std::uint64_t>(t.replicate);
    out[t.cell].samples[static_cast<std::size_t>(t.replicate)] =
        spec.cells[t.cell].run(seed);
  };

  const int jobs = resolve_jobs(opt.jobs);
  if (jobs <= 1) {
    for (std::size_t c = 0; c < spec.cells.size(); ++c) {
      for (int r = 0; r < reps; ++r) execute({c, r});
    }
    return out;
  }

  // Flatten replicate-major so one cell's replicates land on different
  // workers (cells within a grid can differ in cost by orders of magnitude;
  // spreading replicates narrows the tail).
  std::vector<RunSlot> slots;
  slots.reserve(spec.cells.size() * static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    for (std::size_t c = 0; c < spec.cells.size(); ++c) slots.push_back({c, r});
  }

  WorkPool pool(jobs);
  pool.parallel_run(slots.size(),
                    [&](std::size_t i) { execute(slots[i]); });
  return out;
}

}  // namespace sihle::exp
