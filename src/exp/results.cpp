#include "exp/results.h"

#include <cstdio>
#include <utility>

#include "stats/json.h"

namespace sihle::exp {

using stats::json::append_double;
using stats::json::append_escaped;
using stats::json::append_u64;
using stats::json::JsonParser;
using stats::json::JValue;

const MetricRecord* CellRecord::find_metric(std::string_view name) const {
  for (const auto& [k, v] : metrics) {
    if (k == name) return &v;
  }
  return nullptr;
}

const CellRecord* ExperimentDoc::find_cell(std::string_view id) const {
  for (const CellRecord& c : cells) {
    if (c.id == id) return &c;
  }
  return nullptr;
}

ExperimentDoc make_doc(const ExperimentSpec& spec,
                       const std::vector<CellResult>& results) {
  ExperimentDoc doc;
  doc.experiment = spec.name;
  doc.replicates = spec.replicates;
  doc.base_seed = spec.base_seed;
  doc.cells.reserve(results.size());
  for (const CellResult& r : results) {
    CellRecord cell;
    cell.id = r.id;
    cell.axes = r.axes;
    // Metric order follows the first replicate's MetricList; every
    // replicate of a cell runs the same code, so the lists agree.
    if (!r.samples.empty()) {
      for (const auto& [name, unused] : r.samples.front()) {
        (void)unused;
        MetricRecord rec;
        const Replicates reps = r.metric(name);
        rec.samples = reps.samples();
        rec.stats = reps.summarize();
        cell.metrics.emplace_back(name, std::move(rec));
      }
    }
    doc.cells.push_back(std::move(cell));
  }
  return doc;
}

namespace {

void append_metric(std::string& out, const MetricRecord& m) {
  out += "{\"samples\":[";
  for (std::size_t i = 0; i < m.samples.size(); ++i) {
    if (i != 0) out += ',';
    append_double(out, m.samples[i]);
  }
  out += "],\"mean\":";
  append_double(out, m.stats.mean);
  out += ",\"median\":";
  append_double(out, m.stats.median);
  out += ",\"stddev\":";
  append_double(out, m.stats.stddev);
  out += ",\"min\":";
  append_double(out, m.stats.min);
  out += ",\"max\":";
  append_double(out, m.stats.max);
  out += ",\"ci95\":[";
  append_double(out, m.stats.ci_lo);
  out += ',';
  append_double(out, m.stats.ci_hi);
  out += "]}";
}

void append_cell(std::string& out, const CellRecord& cell) {
  out += "{\"id\":";
  append_escaped(out, cell.id);
  out += ",\"axes\":{";
  for (std::size_t i = 0; i < cell.axes.size(); ++i) {
    if (i != 0) out += ',';
    append_escaped(out, cell.axes[i].first);
    out += ':';
    append_escaped(out, cell.axes[i].second);
  }
  out += "},\"metrics\":{";
  for (std::size_t i = 0; i < cell.metrics.size(); ++i) {
    if (i != 0) out += ',';
    out += "\n      ";
    append_escaped(out, cell.metrics[i].first);
    out += ':';
    append_metric(out, cell.metrics[i].second);
  }
  out += "}}";
}

bool parse_metric(const JValue& jm, MetricRecord& m, std::string* error) {
  if (jm.kind != JValue::Kind::kObject) {
    if (error != nullptr) *error = "metric is not an object";
    return false;
  }
  const JValue* samples = jm.find("samples");
  if (samples == nullptr || samples->kind != JValue::Kind::kArray) {
    if (error != nullptr) *error = "metric has no samples array";
    return false;
  }
  for (const JValue& v : samples->array) m.samples.push_back(v.number);
  m.stats.n = m.samples.size();
  auto num = [&](std::string_view key) {
    const JValue* v = jm.find(key);
    return v != nullptr ? v->number : 0.0;
  };
  m.stats.mean = num("mean");
  m.stats.median = num("median");
  m.stats.stddev = num("stddev");
  m.stats.min = num("min");
  m.stats.max = num("max");
  if (const JValue* ci = jm.find("ci95");
      ci != nullptr && ci->kind == JValue::Kind::kArray && ci->array.size() == 2) {
    m.stats.ci_lo = ci->array[0].number;
    m.stats.ci_hi = ci->array[1].number;
  }
  return true;
}

bool parse_cell(const JValue& jc, CellRecord& cell, std::string* error) {
  if (jc.kind != JValue::Kind::kObject) {
    if (error != nullptr) *error = "cell is not an object";
    return false;
  }
  const JValue* id = jc.find("id");
  if (id == nullptr || id->kind != JValue::Kind::kString) {
    if (error != nullptr) *error = "cell has no id";
    return false;
  }
  cell.id = id->string;
  if (const JValue* axes = jc.find("axes");
      axes != nullptr && axes->kind == JValue::Kind::kObject) {
    for (const auto& [k, v] : axes->object) {
      if (v.kind == JValue::Kind::kString) cell.axes.emplace_back(k, v.string);
    }
  }
  if (const JValue* metrics = jc.find("metrics");
      metrics != nullptr && metrics->kind == JValue::Kind::kObject) {
    for (const auto& [name, jm] : metrics->object) {
      MetricRecord rec;
      if (!parse_metric(jm, rec, error)) return false;
      cell.metrics.emplace_back(name, std::move(rec));
    }
  }
  return true;
}

}  // namespace

std::string results_json(const ExperimentDoc& doc) {
  std::string out = "{\"version\":1,\"kind\":\"sihle-results\",\"experiment\":";
  append_escaped(out, doc.experiment);
  out += ",\"replicates\":";
  append_u64(out, static_cast<std::uint64_t>(doc.replicates));
  out += ",\"base_seed\":";
  append_u64(out, doc.base_seed);
  // Host metadata is opt-in (emitted only when recorded) so documents from
  // deterministic grids stay byte-identical across hosts.
  if (doc.host_threads != 0) {
    out += ",\"host_threads\":";
    append_u64(out, static_cast<std::uint64_t>(doc.host_threads));
  }
  if (doc.hw_concurrency != 0) {
    out += ",\"hw_concurrency\":";
    append_u64(out, static_cast<std::uint64_t>(doc.hw_concurrency));
  }
  out += ",\"cells\":[";
  for (std::size_t i = 0; i < doc.cells.size(); ++i) {
    if (i != 0) out += ',';
    out += "\n  ";
    append_cell(out, doc.cells[i]);
  }
  out += "\n]}\n";
  return out;
}

bool write_results_file(const ExperimentDoc& doc, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "results export: cannot open '%s' for writing\n",
                 path.c_str());
    return false;
  }
  const std::string text = results_json(doc);
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  return true;
}

bool parse_results_json(std::string_view text, ExperimentDoc& out,
                        std::string* error) {
  JValue root;
  JsonParser parser(text);
  if (!parser.parse(root, error)) return false;
  if (root.kind != JValue::Kind::kObject) {
    if (error != nullptr) *error = "top level is not an object";
    return false;
  }
  const JValue* version = root.find("version");
  out.version = version != nullptr ? static_cast<int>(version->u64_or(0)) : 0;
  if (out.version != 1) {
    if (error != nullptr) {
      *error = "unsupported results version " + std::to_string(out.version);
    }
    return false;
  }
  const JValue* kind = root.find("kind");
  if (kind == nullptr || kind->string != "sihle-results") {
    if (error != nullptr) *error = "document kind is not sihle-results";
    return false;
  }
  const JValue* experiment = root.find("experiment");
  if (experiment != nullptr) out.experiment = experiment->string;
  const JValue* replicates = root.find("replicates");
  if (replicates != nullptr) {
    out.replicates = static_cast<int>(replicates->u64_or(0));
  }
  const JValue* base_seed = root.find("base_seed");
  if (base_seed != nullptr) out.base_seed = base_seed->u64_or(1);
  // Optional host metadata (absent in pre-metadata documents).
  if (const JValue* ht = root.find("host_threads"); ht != nullptr) {
    out.host_threads = static_cast<int>(ht->u64_or(0));
  }
  if (const JValue* hc = root.find("hw_concurrency"); hc != nullptr) {
    out.hw_concurrency = static_cast<int>(hc->u64_or(0));
  }
  const JValue* cells = root.find("cells");
  if (cells == nullptr || cells->kind != JValue::Kind::kArray) {
    if (error != nullptr) *error = "document has no cells array";
    return false;
  }
  out.cells.resize(cells->array.size());
  for (std::size_t i = 0; i < cells->array.size(); ++i) {
    if (!parse_cell(cells->array[i], out.cells[i], error)) return false;
  }
  return true;
}

bool load_results_file(const std::string& path, ExperimentDoc& out,
                       std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    if (error != nullptr) *error = "cannot open '" + path + "'";
    return false;
  }
  std::string text;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  std::fclose(f);
  return parse_results_json(text, out, error);
}

}  // namespace sihle::exp
