// Shared CLI surface for engine-backed benches (docs/EXPERIMENTS.md):
//
//   --jobs=N          host threads for the run fan-out (0 = one per core)
//   --replicates=K    seeds per cell (alias: --seeds, the pre-engine flag)
//   --seed=S          base seed (replicate r runs with seed S + r)
//   --out=FILE        write the versioned results JSON
//   --baseline=FILE   diff this run against a committed BENCH_*.json and
//                     exit nonzero on regression (exp/regress.h)
//   --noise=F         relative noise threshold for the regression gate
//
// Typical bench main():
//
//   exp::CliOptions cli = exp::parse_cli(args);
//   exp::ExperimentSpec spec = build_spec(...);
//   spec.replicates = cli.replicates;
//   spec.base_seed = cli.base_seed;
//   auto results = exp::run_experiment(spec, {cli.jobs});
//   ... print tables from `results` ...
//   return exp::finish_cli(spec, results, cli);
#pragma once

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "exp/engine.h"
#include "exp/regress.h"
#include "exp/results.h"
#include "harness/cli.h"

namespace sihle::exp {

struct CliOptions {
  int jobs = 0;  // 0 = auto (hardware concurrency)
  int replicates = 3;
  std::uint64_t base_seed = 1;
  std::string out_path;       // empty = no results export
  std::string baseline_path;  // empty = no regression gate
  RegressOptions regress;     // metric/direction defaults set per bench
  // Record host_threads/hw_concurrency in the exported document.  Benches
  // whose metrics depend on the host (wall-clock rates) set this so the
  // committed baseline says what machine produced it; deterministic-grid
  // benches leave it off to keep their documents byte-identical everywhere.
  bool record_host = false;
};

inline CliOptions parse_cli(const harness::Args& args,
                            int default_replicates = 3,
                            const RegressOptions& regress_defaults = {}) {
  CliOptions cli;
  cli.regress = regress_defaults;
  cli.jobs = static_cast<int>(args.get_int("jobs", 0));
  // --seeds is the historical spelling of the replication count; keep it
  // working so existing invocations keep their meaning.
  cli.replicates = static_cast<int>(
      args.get_int("replicates", args.get_int("seeds", default_replicates)));
  if (cli.replicates < 1) cli.replicates = 1;
  cli.base_seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  cli.out_path = args.get("out", "");
  cli.baseline_path = args.get("baseline", "");
  cli.regress.noise_rel = args.get_double("noise", cli.regress.noise_rel);
  return cli;
}

// Post-run bookkeeping: exports --out and runs the --baseline gate.
// Returns the process exit code: 0 on success (including gate warnings),
// 1 on regression, 2 when a requested file cannot be written or read.
inline int finish_cli(const ExperimentSpec& spec,
                      const std::vector<CellResult>& results,
                      const CliOptions& cli) {
  ExperimentDoc doc = make_doc(spec, results);
  if (cli.record_host) {
    doc.host_threads = resolve_jobs(cli.jobs);
    doc.hw_concurrency =
        static_cast<int>(std::thread::hardware_concurrency());
  }
  if (!cli.out_path.empty()) {
    if (!write_results_file(doc, cli.out_path)) return 2;
    std::fprintf(stderr, "results: wrote %zu cell(s) to %s\n", doc.cells.size(),
                 cli.out_path.c_str());
  }
  if (!cli.baseline_path.empty()) {
    ExperimentDoc baseline;
    std::string error;
    if (!load_results_file(cli.baseline_path, baseline, &error)) {
      std::fprintf(stderr, "baseline: %s\n", error.c_str());
      return 2;
    }
    const RegressReport report = compare_results(baseline, doc, cli.regress);
    print_report(stderr, report, cli.regress);
    if (!report.ok()) return 1;
  }
  return 0;
}

}  // namespace sihle::exp
