// Versioned experiment-results interchange: the JSON document produced by
// every engine-backed bench (--out=FILE), committed as the BENCH_*.json
// perf baselines, and diffed by tools/bench/bench_regress.
//
// Schema ("version": 1, "kind": "sihle-results"):
//
//   {
//     "version": 1,
//     "kind": "sihle-results",
//     "experiment": "fig9",
//     "replicates": 3,
//     "base_seed": 1,
//     "cells": [
//       { "id": "scheme=HLE/lock=MCS/threads=8",
//         "axes": { "scheme": "HLE", "lock": "MCS", "threads": "8" },
//         "metrics": {
//           "ops_per_mcycle": {
//             "samples": [ 12.1, 12.3, 12.0 ],
//             "mean": 12.13, "median": 12.1, "stddev": 0.15,
//             "min": 12.0, "max": 12.3, "ci95": [ 12.0, 12.3 ] } } } ] }
//
// Doubles are emitted with %.17g so parse(serialize(doc)) round-trips
// exactly and a re-run of a deterministic grid reproduces the file byte for
// byte.  Unknown keys are ignored on parse so the schema can grow.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "exp/engine.h"
#include "exp/replicates.h"

namespace sihle::exp {

struct MetricRecord {
  std::vector<double> samples;
  SummaryStats stats;
};

struct CellRecord {
  std::string id;
  AxisList axes;
  std::vector<std::pair<std::string, MetricRecord>> metrics;

  const MetricRecord* find_metric(std::string_view name) const;
};

struct ExperimentDoc {
  int version = 1;
  std::string experiment;
  int replicates = 0;
  std::uint64_t base_seed = 1;
  // Recording-host metadata, for interpreting wall-clock metrics: how many
  // host threads the run used and how many the host had.  0 = not recorded;
  // the fields are emitted only when nonzero (a committed deterministic-grid
  // baseline stays byte-reproducible on any host) and the parser tolerates
  // their absence, so pre-metadata documents keep loading.
  int host_threads = 0;
  int hw_concurrency = 0;
  std::vector<CellRecord> cells;

  const CellRecord* find_cell(std::string_view id) const;
};

// Summarizes engine output into a document (stats recomputed from the
// per-replicate samples; deterministic — see exp/replicates.h).
ExperimentDoc make_doc(const ExperimentSpec& spec,
                       const std::vector<CellResult>& results);

std::string results_json(const ExperimentDoc& doc);
// Returns false (and prints to stderr) if the file cannot be opened.
bool write_results_file(const ExperimentDoc& doc, const std::string& path);

// Parses a version-1 results document; returns false and fills `error`
// (when non-null) on malformed input.
bool parse_results_json(std::string_view text, ExperimentDoc& out,
                        std::string* error = nullptr);
// Reads and parses `path`; returns false and fills `error` on IO or parse
// failure.
bool load_results_file(const std::string& path, ExperimentDoc& out,
                       std::string* error = nullptr);

}  // namespace sihle::exp
