// ExperimentSpec: a declarative grid of independent simulation runs.
//
// A spec is a list of cells; each cell is one point of a (scheme × lock ×
// threads × workload-knob) grid plus a run function mapping a 64-bit seed
// to a list of named metric values.  The engine (exp/engine.h) executes
// every (cell, replicate) pair — replicate r uses seed base_seed + r —
// across a pool of host threads; because each run builds its own Machine,
// Rng, and trace sinks, runs share no mutable state and the grid is
// embarrassingly parallel.
//
// Cells are identified by a stable id string derived from their axes; the
// id is the join key for baseline comparison (exp/regress.h), so axis names
// and value spellings are part of the results-schema contract.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "harness/rbtree_workload.h"

namespace sihle::exp {

// Ordered (name, value) pairs — insertion order is presentation order.
using MetricList = std::vector<std::pair<std::string, double>>;
using AxisList = std::vector<std::pair<std::string, std::string>>;

// Must be a pure function of the seed (no shared mutable state): the
// engine calls it from arbitrary host threads in arbitrary order.
using RunFn = std::function<MetricList(std::uint64_t seed)>;

struct Cell {
  std::string id;  // unique within the spec; derived from axes by axes_id()
  AxisList axes;
  RunFn run;
};

struct ExperimentSpec {
  std::string name;  // e.g. "fig9", "fig10", "ablation_tuning"
  int replicates = 3;
  std::uint64_t base_seed = 1;
  std::vector<Cell> cells;
};

// "scheme=HLE/lock=MCS/threads=8" — stable, readable, order-preserving.
inline std::string axes_id(const AxisList& axes) {
  std::string id;
  for (const auto& [k, v] : axes) {
    if (!id.empty()) id += '/';
    id += k;
    id += '=';
    id += v;
  }
  return id;
}

// The standard metric set exported for data-structure workload cells.
inline MetricList workload_metrics(const harness::WorkloadResult& r) {
  return {
      {"ops_per_mcycle", r.ops_per_mcycle},
      {"nonspec_fraction", r.stats.nonspec_fraction()},
      {"attempts_per_op", r.stats.attempts_per_op()},
      {"arrival_lock_held_fraction", r.stats.arrival_lock_held_fraction()},
      {"valid", r.tree_valid ? 1.0 : 0.0},
  };
}

// RunFn over the shared data-structure workload driver.  Captures the
// config by value; the per-replicate seed overrides cfg.seed, and any
// caller-attached trace sinks are detached (engine runs are measurement
// runs — tracing designated runs stays a sequential, main-thread affair).
inline RunFn workload_run(harness::WorkloadConfig cfg) {
  cfg.trace = nullptr;
  cfg.events = nullptr;
  return [cfg](std::uint64_t seed) {
    harness::WorkloadConfig c = cfg;
    c.seed = seed;
    return workload_metrics(harness::run_rbtree_workload(c));
  };
}

// Convenience: append a workload cell with the given axes.
inline void add_workload_cell(ExperimentSpec& spec, AxisList axes,
                              const harness::WorkloadConfig& cfg) {
  Cell cell;
  cell.id = axes_id(axes);
  cell.axes = std::move(axes);
  cell.run = workload_run(cfg);
  spec.cells.push_back(std::move(cell));
}

}  // namespace sihle::exp
