// Parallel experiment engine: fans the independent (cell, replicate) runs
// of an ExperimentSpec out across a work-stealing pool of host threads.
//
// Determinism contract: the result of run_experiment() is a pure function
// of the spec — every run writes into its pre-assigned (cell, replicate)
// slot, so the output is byte-for-byte independent of the job count and of
// host-thread interleaving (tests/exp_engine_test.cpp locks this in).
//
// The pool itself is exposed as WorkPool: persistent workers that can be
// fanned out over an index range repeatedly.  run_experiment uses a single
// round; the domain-parallel epoch loop (runtime/domains.h) reuses one pool
// every epoch, so an epoch costs a wakeup, not a thread spawn.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <string_view>
#include <vector>

#include "exp/replicates.h"
#include "exp/spec.h"

namespace sihle::exp {

struct EngineOptions {
  // Host threads to fan runs across; 0 = one per hardware thread, 1 = run
  // inline on the calling thread (no pool).
  int jobs = 0;
};

// 0 → std::thread::hardware_concurrency() (at least 1).
int resolve_jobs(int jobs);

// Persistent work-stealing pool over host threads.
//
// `jobs` counts workers (pass a resolved value; resolve_jobs() maps 0).
// With jobs <= 1 no threads are created and every round runs inline on the
// calling thread.  Workers are parked on a condition variable between
// rounds, so a round costs one broadcast + one join-wait, not jobs thread
// spawns — the property the per-epoch fan-out of the domain-parallel
// simulation depends on.
class WorkPool {
 public:
  explicit WorkPool(int jobs);
  ~WorkPool();

  WorkPool(const WorkPool&) = delete;
  WorkPool& operator=(const WorkPool&) = delete;

  int jobs() const { return jobs_; }

  // Runs task(i) for every i in [0, n), fanned across the pool: indices are
  // dealt round-robin to per-worker deques, each owner pops from the front
  // and thieves steal from the back.  Blocks until every task returns.
  // With jobs() == 1 or n <= 1 the tasks run inline in index order.  The
  // first exception a task throws is rethrown here (which tasks ran to
  // completion by then is not specified).  Not reentrant: one round at a
  // time per pool, and tasks must not call back into the same pool.
  void parallel_run(std::size_t n, const std::function<void(std::size_t)>& task);

 private:
  struct Impl;
  int jobs_;
  std::unique_ptr<Impl> impl_;  // null when jobs_ <= 1 (inline mode)
};

struct CellResult {
  std::string id;
  AxisList axes;
  std::vector<MetricList> samples;  // [replicate] → ordered (name, value)

  // All replicate values of one named metric, in replicate order.
  Replicates metric(std::string_view name) const;
  double metric_mean(std::string_view name) const { return metric(name).mean(); }
};

// Executes every (cell, replicate) pair; replicate r runs with seed
// base_seed + r.  Results are ordered exactly like spec.cells.
std::vector<CellResult> run_experiment(const ExperimentSpec& spec,
                                       const EngineOptions& opt = {});

}  // namespace sihle::exp
