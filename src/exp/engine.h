// Parallel experiment engine: fans the independent (cell, replicate) runs
// of an ExperimentSpec out across a work-stealing pool of host threads.
//
// Determinism contract: the result of run_experiment() is a pure function
// of the spec — every run writes into its pre-assigned (cell, replicate)
// slot, so the output is byte-for-byte independent of the job count and of
// host-thread interleaving (tests/exp_engine_test.cpp locks this in).
#pragma once

#include <string_view>
#include <vector>

#include "exp/replicates.h"
#include "exp/spec.h"

namespace sihle::exp {

struct EngineOptions {
  // Host threads to fan runs across; 0 = one per hardware thread, 1 = run
  // inline on the calling thread (no pool).
  int jobs = 0;
};

// 0 → std::thread::hardware_concurrency() (at least 1).
int resolve_jobs(int jobs);

struct CellResult {
  std::string id;
  AxisList axes;
  std::vector<MetricList> samples;  // [replicate] → ordered (name, value)

  // All replicate values of one named metric, in replicate order.
  Replicates metric(std::string_view name) const;
  double metric_mean(std::string_view name) const { return metric(name).mean(); }
};

// Executes every (cell, replicate) pair; replicate r runs with seed
// base_seed + r.  Results are ordered exactly like spec.cells.
std::vector<CellResult> run_experiment(const ExperimentSpec& spec,
                                       const EngineOptions& opt = {});

}  // namespace sihle::exp
