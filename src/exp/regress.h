// Benchmark-regression gate logic: compares a candidate results document
// against a committed baseline, cell by cell, with CI-overlap reasoning.
//
// A cell regresses only when all three hold for the gated metric:
//   1. the candidate mean is on the *worse* side of the baseline mean,
//   2. the 95% confidence intervals do not overlap, and
//   3. the relative delta exceeds the noise threshold.
// A worse mean with overlapping CIs (or within noise) is measurement
// jitter, not a regression.  Structural mismatches — a baseline cell or
// metric the candidate lacks — and a candidate CI much wider than the
// baseline's are *warnings*: they don't fail the gate but are printed so a
// grid change or a noisy host can't silently pass as "no regression".
//
// tools/bench/bench_regress is the CLI wrapper; the logic lives here so
// tests/bench_regress_test.cpp can unit-test it on crafted documents.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "exp/results.h"

namespace sihle::exp {

struct RegressOptions {
  std::string metric = "ops_per_mcycle";
  bool higher_is_better = true;
  // Relative mean delta below this is noise regardless of CI separation.
  double noise_rel = 0.05;
  // Candidate CI wider than this multiple of the baseline CI (and wider
  // than noise_rel × |mean|) draws a widened-CI warning.
  double ci_widen_factor = 4.0;
};

enum class Verdict {
  kPass,           // within noise or CIs overlap
  kImproved,       // significantly better — passes, reported for visibility
  kWarnWidenedCi,  // candidate much noisier than baseline
  kWarnMissingCell,
  kWarnMissingMetric,
  kRegressed,
};

constexpr const char* to_string(Verdict v) {
  switch (v) {
    case Verdict::kPass: return "pass";
    case Verdict::kImproved: return "improved";
    case Verdict::kWarnWidenedCi: return "warn-widened-ci";
    case Verdict::kWarnMissingCell: return "warn-missing-cell";
    case Verdict::kWarnMissingMetric: return "warn-missing-metric";
    case Verdict::kRegressed: return "REGRESSED";
  }
  return "?";
}

struct CellComparison {
  std::string id;
  Verdict verdict = Verdict::kPass;
  double baseline_mean = 0.0;
  double candidate_mean = 0.0;
  double ratio = 1.0;  // candidate / baseline (1.0 when baseline is 0)
  std::string note;
};

struct RegressReport {
  std::vector<CellComparison> cells;
  std::size_t passes = 0;
  std::size_t improvements = 0;
  std::size_t warnings = 0;
  std::size_t regressions = 0;

  bool ok() const { return regressions == 0; }
};

// Walks every baseline cell (baseline is the contract; candidate-only cells
// are ignored) and classifies the gated metric.
RegressReport compare_results(const ExperimentDoc& baseline,
                              const ExperimentDoc& candidate,
                              const RegressOptions& opt = {});

// Human-readable report: one line per non-pass cell plus a summary line.
// `verbose` prints every cell.
void print_report(std::FILE* out, const RegressReport& report,
                  const RegressOptions& opt, bool verbose = false);

}  // namespace sihle::exp
