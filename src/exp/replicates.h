// Replicate statistics for the experiment engine (docs/EXPERIMENTS.md).
//
// Every cell of an experiment grid is run K times with consecutive seeds;
// this module turns the K per-seed samples into the summary the results
// schema stores: mean, median, sample stddev, min/max, and a bootstrap 95%
// confidence interval of the mean.  The bootstrap uses the repo's own
// deterministic Rng with a fixed seed, so identical samples always produce
// identical intervals — a requirement for byte-reproducible results files.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "sim/rng.h"

namespace sihle::exp {

// Fixed bootstrap seed: the interval is a pure function of the samples.
inline constexpr std::uint64_t kBootstrapSeed = 0x51BE5EEDULL;
inline constexpr int kBootstrapResamples = 2000;

struct SummaryStats {
  std::size_t n = 0;
  double mean = 0.0;
  double median = 0.0;
  double stddev = 0.0;  // sample (n-1) standard deviation; 0 when n < 2
  double min = 0.0;
  double max = 0.0;
  double ci_lo = 0.0;  // bootstrap 95% CI of the mean
  double ci_hi = 0.0;

  double ci_width() const { return ci_hi - ci_lo; }
};

class Replicates {
 public:
  Replicates() = default;
  explicit Replicates(std::vector<double> samples) : samples_(std::move(samples)) {}

  void add(double v) { samples_.push_back(v); }
  // Ref-qualified so `cell.metric("x").samples()` (a temporary) can't hand
  // out a dangling reference — the rvalue overload returns by value.
  const std::vector<double>& samples() const& { return samples_; }
  std::vector<double> samples() && { return std::move(samples_); }
  std::size_t size() const { return samples_.size(); }

  double mean() const {
    if (samples_.empty()) return 0.0;
    double s = 0.0;
    for (double v : samples_) s += v;
    return s / static_cast<double>(samples_.size());
  }

  double median() const {
    if (samples_.empty()) return 0.0;
    std::vector<double> sorted = samples_;
    std::sort(sorted.begin(), sorted.end());
    const std::size_t n = sorted.size();
    return n % 2 == 1 ? sorted[n / 2] : 0.5 * (sorted[n / 2 - 1] + sorted[n / 2]);
  }

  double stddev() const {
    const std::size_t n = samples_.size();
    if (n < 2) return 0.0;
    const double m = mean();
    double ss = 0.0;
    for (double v : samples_) ss += (v - m) * (v - m);
    return std::sqrt(ss / static_cast<double>(n - 1));
  }

  // Minimum over the first k samples (all samples when k >= n); the
  // "min-of-k" estimator is monotone non-increasing in k by construction.
  double min_of(std::size_t k) const {
    if (samples_.empty() || k == 0) return 0.0;
    k = std::min(k, samples_.size());
    double m = samples_[0];
    for (std::size_t i = 1; i < k; ++i) m = std::min(m, samples_[i]);
    return m;
  }

  // Percentile-bootstrap 95% CI of the mean.  Deterministic: resampling
  // uses sim::Rng(seed), so the same samples give the same interval.
  // Degenerate inputs collapse cleanly: n <= 1 or constant samples give a
  // zero-width interval at the mean.
  void bootstrap_ci(double& lo, double& hi, int resamples = kBootstrapResamples,
                    std::uint64_t seed = kBootstrapSeed) const {
    const std::size_t n = samples_.size();
    if (n == 0) {
      lo = hi = 0.0;
      return;
    }
    if (n == 1) {
      lo = hi = samples_[0];
      return;
    }
    sim::Rng rng(seed);
    std::vector<double> means;
    means.reserve(static_cast<std::size_t>(resamples));
    for (int r = 0; r < resamples; ++r) {
      double s = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        s += samples_[rng.below(n)];
      }
      means.push_back(s / static_cast<double>(n));
    }
    std::sort(means.begin(), means.end());
    const auto idx = [&](double q) {
      const auto i = static_cast<std::size_t>(q * static_cast<double>(means.size() - 1));
      return means[i];
    };
    lo = idx(0.025);
    hi = idx(0.975);
  }

  SummaryStats summarize() const {
    SummaryStats s;
    s.n = samples_.size();
    if (s.n == 0) return s;
    s.mean = mean();
    s.median = median();
    s.stddev = stddev();
    s.min = *std::min_element(samples_.begin(), samples_.end());
    s.max = *std::max_element(samples_.begin(), samples_.end());
    bootstrap_ci(s.ci_lo, s.ci_hi);
    return s;
  }

 private:
  std::vector<double> samples_;
};

}  // namespace sihle::exp
