#include "ds/rbtree.h"

#include <cassert>

namespace sihle::ds {

using mem::Shared;

namespace {

// Inside a transaction, dereferencing an "impossible" null pointer models a
// page fault, which on real TSX aborts the transaction rather than crashing
// — this can only happen to a zombie transaction reading inconsistent state
// under SLR.  Outside a transaction it is a genuine bug.
void fault_if_tx(Ctx& c) {
  if (c.in_tx()) {
    throw htm::TxAbortException(
        htm::AbortStatus{htm::AbortCause::kInterrupt, 0, /*retry=*/true});
  }
  assert(false && "null dereference outside a transaction");
}

}  // namespace

RBTree::~RBTree() { debug_destroy(root_.debug_value()); }

void RBTree::debug_destroy(Node* n) {
  if (n == nullptr) return;
  debug_destroy(n->left.debug_value());
  debug_destroy(n->right.debug_value());
  delete n;
}

// --- Simulated operations ---------------------------------------------------

sim::Task<std::uint8_t> RBTree::color_of(Ctx& c, Node* n) {
  if (n == nullptr) co_return kBlack;
  const std::uint8_t col = co_await c.load(n->color);
  co_return col;
}

sim::Task<bool> RBTree::contains(Ctx& c, Key key) {
  Node* x = co_await c.load(root_);
  while (x != nullptr) {
    const Key k = co_await c.load(x->key);
    if (key == k) co_return true;
    if (key < k) {
      x = co_await c.load(x->left);
    } else {
      x = co_await c.load(x->right);
    }
  }
  co_return false;
}

sim::Task<void> RBTree::rotate_left(Ctx& c, Node* x) {
  Node* y = co_await c.load(x->right);
  if (y == nullptr) {
    fault_if_tx(c);
    co_return;
  }
  Node* b = co_await c.load(y->left);
  co_await c.store(x->right, b);
  if (b != nullptr) co_await c.store(b->parent, x);
  Node* xp = co_await c.load(x->parent);
  co_await c.store(y->parent, xp);
  if (xp == nullptr) {
    co_await c.store(root_, y);
  } else {
    Node* xpl = co_await c.load(xp->left);
    if (xpl == x) {
      co_await c.store(xp->left, y);
    } else {
      co_await c.store(xp->right, y);
    }
  }
  co_await c.store(y->left, x);
  co_await c.store(x->parent, y);
}

sim::Task<void> RBTree::rotate_right(Ctx& c, Node* x) {
  Node* y = co_await c.load(x->left);
  if (y == nullptr) {
    fault_if_tx(c);
    co_return;
  }
  Node* b = co_await c.load(y->right);
  co_await c.store(x->left, b);
  if (b != nullptr) co_await c.store(b->parent, x);
  Node* xp = co_await c.load(x->parent);
  co_await c.store(y->parent, xp);
  if (xp == nullptr) {
    co_await c.store(root_, y);
  } else {
    Node* xpl = co_await c.load(xp->left);
    if (xpl == x) {
      co_await c.store(xp->left, y);
    } else {
      co_await c.store(xp->right, y);
    }
  }
  co_await c.store(y->right, x);
  co_await c.store(x->parent, y);
}

sim::Task<bool> RBTree::insert(Ctx& c, Key key) {
  Node* y = nullptr;
  Key yk = 0;
  Node* x = co_await c.load(root_);
  while (x != nullptr) {
    y = x;
    yk = co_await c.load(x->key);
    if (key == yk) co_return false;
    if (key < yk) {
      x = co_await c.load(x->left);
    } else {
      x = co_await c.load(x->right);
    }
  }
  // A fresh node is private until linked; its constructor initializes the
  // committed state directly.  tx_new undoes the allocation on abort.
  Node* z = c.tx_new<Node>(m_, key);
  co_await c.store(z->parent, y);
  if (y == nullptr) {
    co_await c.store(root_, z);
  } else if (key < yk) {
    co_await c.store(y->left, z);
  } else {
    co_await c.store(y->right, z);
  }
  co_await insert_fixup(c, z);
  co_return true;
}

sim::Task<void> RBTree::insert_fixup(Ctx& c, Node* z) {
  for (;;) {
    Node* zp = co_await c.load(z->parent);
    if (zp == nullptr) break;
    const std::uint8_t zp_color = co_await c.load(zp->color);
    if (zp_color != kRed) break;
    Node* zpp = co_await c.load(zp->parent);
    if (zpp == nullptr) {
      // A red parent is never the root in a consistent tree.
      fault_if_tx(c);
      break;
    }
    Node* zppl = co_await c.load(zpp->left);
    if (zp == zppl) {
      Node* u = co_await c.load(zpp->right);  // uncle
      const std::uint8_t u_color = co_await color_of(c, u);
      if (u_color == kRed) {
        co_await c.store(zp->color, std::uint8_t{kBlack});
        co_await c.store(u->color, std::uint8_t{kBlack});
        co_await c.store(zpp->color, std::uint8_t{kRed});
        z = zpp;
      } else {
        Node* zpr = co_await c.load(zp->right);
        if (z == zpr) {
          z = zp;
          co_await rotate_left(c, z);
          zp = co_await c.load(z->parent);
          if (zp == nullptr) {
            fault_if_tx(c);
            break;
          }
        }
        co_await c.store(zp->color, std::uint8_t{kBlack});
        co_await c.store(zpp->color, std::uint8_t{kRed});
        co_await rotate_right(c, zpp);
      }
    } else {
      Node* u = zppl;  // uncle
      const std::uint8_t u_color = co_await color_of(c, u);
      if (u_color == kRed) {
        co_await c.store(zp->color, std::uint8_t{kBlack});
        co_await c.store(u->color, std::uint8_t{kBlack});
        co_await c.store(zpp->color, std::uint8_t{kRed});
        z = zpp;
      } else {
        Node* zpl = co_await c.load(zp->left);
        if (z == zpl) {
          z = zp;
          co_await rotate_right(c, z);
          zp = co_await c.load(z->parent);
          if (zp == nullptr) {
            fault_if_tx(c);
            break;
          }
        }
        co_await c.store(zp->color, std::uint8_t{kBlack});
        co_await c.store(zpp->color, std::uint8_t{kRed});
        co_await rotate_left(c, zpp);
      }
    }
  }
  // HTM-friendliness: avoid the silent store of CLRS's unconditional
  // root-blackening — a same-value store still dirties the line and would
  // doom every concurrent transaction that read the root.
  Node* r = co_await c.load(root_);
  if (r != nullptr) {
    const std::uint8_t rc = co_await c.load(r->color);
    if (rc != kBlack) co_await c.store(r->color, std::uint8_t{kBlack});
  }
}

// Replace subtree rooted at u with subtree rooted at v (v may be null).
sim::Task<void> RBTree::transplant(Ctx& c, Node* u, Node* v) {
  Node* up = co_await c.load(u->parent);
  if (up == nullptr) {
    co_await c.store(root_, v);
  } else {
    Node* upl = co_await c.load(up->left);
    if (upl == u) {
      co_await c.store(up->left, v);
    } else {
      co_await c.store(up->right, v);
    }
  }
  if (v != nullptr) co_await c.store(v->parent, up);
}

sim::Task<bool> RBTree::erase(Ctx& c, Key key) {
  // Locate the node.
  Node* z = co_await c.load(root_);
  while (z != nullptr) {
    const Key k = co_await c.load(z->key);
    if (key == k) break;
    if (key < k) {
      z = co_await c.load(z->left);
    } else {
      z = co_await c.load(z->right);
    }
  }
  if (z == nullptr) co_return false;

  Node* y = z;
  std::uint8_t y_color = co_await c.load(y->color);
  Node* x = nullptr;   // the child that replaces y (may be null)
  Node* xp = nullptr;  // x's parent after the splice

  Node* zl = co_await c.load(z->left);
  Node* zr = co_await c.load(z->right);
  if (zl == nullptr) {
    x = zr;
    xp = co_await c.load(z->parent);
    co_await transplant(c, z, zr);
  } else if (zr == nullptr) {
    x = zl;
    xp = co_await c.load(z->parent);
    co_await transplant(c, z, zl);
  } else {
    // y = minimum of z's right subtree.
    y = zr;
    for (;;) {
      Node* yl = co_await c.load(y->left);
      if (yl == nullptr) break;
      y = yl;
    }
    y_color = co_await c.load(y->color);
    x = co_await c.load(y->right);
    Node* y_parent = co_await c.load(y->parent);
    if (y_parent == z) {
      xp = y;
    } else {
      xp = y_parent;
      co_await transplant(c, y, x);
      co_await c.store(y->right, zr);
      co_await c.store(zr->parent, y);
    }
    co_await transplant(c, z, y);
    co_await c.store(y->left, zl);
    co_await c.store(zl->parent, y);
    const std::uint8_t z_color = co_await c.load(z->color);
    co_await c.store(y->color, z_color);
  }

  c.retire(z);
  if (y_color == kBlack) co_await erase_fixup(c, x, xp);
  co_return true;
}

sim::Task<void> RBTree::erase_fixup(Ctx& c, Node* x, Node* xp) {
  for (;;) {
    if (xp == nullptr) break;  // x is the root
    const std::uint8_t x_color = co_await color_of(c, x);
    if (x_color != kBlack) break;
    Node* xpl = co_await c.load(xp->left);
    if (x == xpl) {
      Node* w = co_await c.load(xp->right);
      if (w == nullptr) {
        fault_if_tx(c);
        break;
      }
      std::uint8_t w_color = co_await c.load(w->color);
      if (w_color == kRed) {
        co_await c.store(w->color, std::uint8_t{kBlack});
        co_await c.store(xp->color, std::uint8_t{kRed});
        co_await rotate_left(c, xp);
        w = co_await c.load(xp->right);
        if (w == nullptr) {
          fault_if_tx(c);
          break;
        }
      }
      Node* wl = co_await c.load(w->left);
      Node* wr = co_await c.load(w->right);
      const std::uint8_t wl_color = co_await color_of(c, wl);
      std::uint8_t wr_color = co_await color_of(c, wr);
      if (wl_color == kBlack && wr_color == kBlack) {
        co_await c.store(w->color, std::uint8_t{kRed});
        x = xp;
        xp = co_await c.load(x->parent);
      } else {
        if (wr_color == kBlack) {
          if (wl != nullptr) co_await c.store(wl->color, std::uint8_t{kBlack});
          co_await c.store(w->color, std::uint8_t{kRed});
          co_await rotate_right(c, w);
          w = co_await c.load(xp->right);
          if (w == nullptr) {
            fault_if_tx(c);
            break;
          }
          wr = co_await c.load(w->right);
        }
        const std::uint8_t xp_color = co_await c.load(xp->color);
        co_await c.store(w->color, xp_color);
        co_await c.store(xp->color, std::uint8_t{kBlack});
        if (wr != nullptr) co_await c.store(wr->color, std::uint8_t{kBlack});
        co_await rotate_left(c, xp);
        break;
      }
    } else {
      Node* w = xpl;
      if (w == nullptr) {
        fault_if_tx(c);
        break;
      }
      std::uint8_t w_color = co_await c.load(w->color);
      if (w_color == kRed) {
        co_await c.store(w->color, std::uint8_t{kBlack});
        co_await c.store(xp->color, std::uint8_t{kRed});
        co_await rotate_right(c, xp);
        w = co_await c.load(xp->left);
        if (w == nullptr) {
          fault_if_tx(c);
          break;
        }
      }
      Node* wl = co_await c.load(w->left);
      Node* wr = co_await c.load(w->right);
      std::uint8_t wl_color = co_await color_of(c, wl);
      const std::uint8_t wr_color = co_await color_of(c, wr);
      if (wl_color == kBlack && wr_color == kBlack) {
        co_await c.store(w->color, std::uint8_t{kRed});
        x = xp;
        xp = co_await c.load(x->parent);
      } else {
        if (wl_color == kBlack) {
          if (wr != nullptr) co_await c.store(wr->color, std::uint8_t{kBlack});
          co_await c.store(w->color, std::uint8_t{kRed});
          co_await rotate_left(c, w);
          w = co_await c.load(xp->left);
          if (w == nullptr) {
            fault_if_tx(c);
            break;
          }
          wl = co_await c.load(w->left);
        }
        const std::uint8_t xp_color = co_await c.load(xp->color);
        co_await c.store(w->color, xp_color);
        co_await c.store(xp->color, std::uint8_t{kBlack});
        if (wl != nullptr) co_await c.store(wl->color, std::uint8_t{kBlack});
        co_await rotate_right(c, xp);
        break;
      }
    }
  }
  if (x != nullptr) {
    const std::uint8_t xc = co_await c.load(x->color);
    if (xc != kBlack) co_await c.store(x->color, std::uint8_t{kBlack});
  }
}

// --- Direct (non-simulated) operations --------------------------------------

void RBTree::debug_rotate_left(Node* x) {
  Node* y = x->right.debug_value();
  Node* b = y->left.debug_value();
  x->right.set_raw(Shared<Node*>::pack(b));
  if (b != nullptr) b->parent.set_raw(Shared<Node*>::pack(x));
  Node* xp = x->parent.debug_value();
  y->parent.set_raw(Shared<Node*>::pack(xp));
  if (xp == nullptr) {
    root_.set_raw(Shared<Node*>::pack(y));
  } else if (xp->left.debug_value() == x) {
    xp->left.set_raw(Shared<Node*>::pack(y));
  } else {
    xp->right.set_raw(Shared<Node*>::pack(y));
  }
  y->left.set_raw(Shared<Node*>::pack(x));
  x->parent.set_raw(Shared<Node*>::pack(y));
}

void RBTree::debug_rotate_right(Node* x) {
  Node* y = x->left.debug_value();
  Node* b = y->right.debug_value();
  x->left.set_raw(Shared<Node*>::pack(b));
  if (b != nullptr) b->parent.set_raw(Shared<Node*>::pack(x));
  Node* xp = x->parent.debug_value();
  y->parent.set_raw(Shared<Node*>::pack(xp));
  if (xp == nullptr) {
    root_.set_raw(Shared<Node*>::pack(y));
  } else if (xp->left.debug_value() == x) {
    xp->left.set_raw(Shared<Node*>::pack(y));
  } else {
    xp->right.set_raw(Shared<Node*>::pack(y));
  }
  y->right.set_raw(Shared<Node*>::pack(x));
  x->parent.set_raw(Shared<Node*>::pack(y));
}

void RBTree::debug_insert(Key key) {
  Node* y = nullptr;
  Node* x = root_.debug_value();
  while (x != nullptr) {
    y = x;
    const Key k = x->key.debug_value();
    if (key == k) return;
    x = key < k ? x->left.debug_value() : x->right.debug_value();
  }
  Node* z = new Node(m_, key);
  z->parent.set_raw(Shared<Node*>::pack(y));
  if (y == nullptr) {
    root_.set_raw(Shared<Node*>::pack(z));
  } else if (key < y->key.debug_value()) {
    y->left.set_raw(Shared<Node*>::pack(z));
  } else {
    y->right.set_raw(Shared<Node*>::pack(z));
  }
  debug_insert_fixup(z);
}

void RBTree::debug_insert_fixup(Node* z) {
  for (;;) {
    Node* zp = z->parent.debug_value();
    if (zp == nullptr || zp->color.debug_value() != kRed) break;
    Node* zpp = zp->parent.debug_value();
    if (zp == zpp->left.debug_value()) {
      Node* u = zpp->right.debug_value();
      if (debug_color(u) == kRed) {
        zp->color.set_raw(kBlack);
        u->color.set_raw(kBlack);
        zpp->color.set_raw(kRed);
        z = zpp;
      } else {
        if (z == zp->right.debug_value()) {
          z = zp;
          debug_rotate_left(z);
          zp = z->parent.debug_value();
        }
        zp->color.set_raw(kBlack);
        zpp->color.set_raw(kRed);
        debug_rotate_right(zpp);
      }
    } else {
      Node* u = zpp->left.debug_value();
      if (debug_color(u) == kRed) {
        zp->color.set_raw(kBlack);
        u->color.set_raw(kBlack);
        zpp->color.set_raw(kRed);
        z = zpp;
      } else {
        if (z == zp->left.debug_value()) {
          z = zp;
          debug_rotate_right(z);
          zp = z->parent.debug_value();
        }
        zp->color.set_raw(kBlack);
        zpp->color.set_raw(kRed);
        debug_rotate_left(zpp);
      }
    }
  }
  root_.debug_value()->color.set_raw(kBlack);
}

bool RBTree::debug_contains(Key key) const {
  const Node* x = root_.debug_value();
  while (x != nullptr) {
    const Key k = x->key.debug_value();
    if (key == k) return true;
    x = key < k ? x->left.debug_value() : x->right.debug_value();
  }
  return false;
}

std::vector<RBTree::Key> RBTree::debug_keys() const {
  std::vector<Key> out;
  // Iterative in-order traversal using parent pointers.
  const Node* n = root_.debug_value();
  if (n == nullptr) return out;
  while (n->left.debug_value() != nullptr) n = n->left.debug_value();
  while (n != nullptr) {
    out.push_back(n->key.debug_value());
    if (n->right.debug_value() != nullptr) {
      n = n->right.debug_value();
      while (n->left.debug_value() != nullptr) n = n->left.debug_value();
    } else {
      const Node* p = n->parent.debug_value();
      while (p != nullptr && n == p->right.debug_value()) {
        n = p;
        p = p->parent.debug_value();
      }
      n = p;
    }
  }
  return out;
}

std::size_t RBTree::debug_size() const { return debug_keys().size(); }

bool RBTree::debug_check(const Node* n, const Node* parent, Key lo, bool has_lo,
                         Key hi, bool has_hi, int* bh) const {
  if (n == nullptr) {
    *bh = 1;
    return true;
  }
  if (n->parent.debug_value() != parent) return false;
  const Key k = n->key.debug_value();
  if ((has_lo && k <= lo) || (has_hi && k >= hi)) return false;
  const std::uint8_t col = n->color.debug_value();
  const Node* l = n->left.debug_value();
  const Node* r = n->right.debug_value();
  if (col == kRed && (debug_color(l) == kRed || debug_color(r) == kRed)) return false;
  int lbh = 0;
  int rbh = 0;
  if (!debug_check(l, n, lo, has_lo, k, true, &lbh)) return false;
  if (!debug_check(r, n, k, true, hi, has_hi, &rbh)) return false;
  if (lbh != rbh) return false;
  *bh = lbh + (col == kBlack ? 1 : 0);
  return true;
}

bool RBTree::debug_validate(int* black_height) const {
  const Node* r = root_.debug_value();
  if (r != nullptr && r->color.debug_value() != kBlack) return false;
  int bh = 0;
  const bool ok = debug_check(r, nullptr, 0, false, 0, false, &bh);
  if (ok && black_height != nullptr) *black_height = bh;
  return ok;
}

}  // namespace sihle::ds
