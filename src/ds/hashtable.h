// Chained hash table protected by a single global lock — the paper's second
// data-structure benchmark (§7.1).  Hash-table transactions are always
// short, "zooming in" on the short-transaction end of the red-black-tree
// workload spectrum.
//
// Same conventions as RBTree: simulated operations are critical-section
// bodies; debug_* operate directly for pre-fill and validation.
#pragma once

#include <cstdint>
#include <vector>

#include "runtime/ctx.h"
#include "runtime/shared_array.h"

namespace sihle::ds {

class HashTable {
 public:
  using Key = std::int64_t;

  HashTable(runtime::Machine& m, std::size_t buckets)
      : m_(m), buckets_(m, buckets, nullptr) {}
  ~HashTable();

  HashTable(const HashTable&) = delete;
  HashTable& operator=(const HashTable&) = delete;

  sim::Task<bool> contains(runtime::Ctx& c, Key key);
  sim::Task<bool> insert(runtime::Ctx& c, Key key);
  sim::Task<bool> erase(runtime::Ctx& c, Key key);

  void debug_insert(Key key);
  bool debug_contains(Key key) const;
  std::size_t debug_size() const;
  // Every chain's nodes hash to their bucket; no duplicate keys.
  bool debug_validate() const;

 private:
  struct Node {
    runtime::LineHandle line;
    mem::Shared<Key> key;
    mem::Shared<Node*> next;
    Node(runtime::Machine& m, Key k)
        : line(m), key(line.line(), k), next(line.line(), nullptr) {}
  };

  std::size_t bucket_of(Key key) const {
    // Fibonacci hashing; buckets_.size() need not be a power of two.
    return static_cast<std::size_t>(
        (static_cast<std::uint64_t>(key) * 0x9E3779B97F4A7C15ULL) % buckets_.size());
  }

  runtime::Machine& m_;
  runtime::SharedArray<Node*> buckets_;
};

}  // namespace sihle::ds
