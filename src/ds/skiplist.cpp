#include "ds/skiplist.h"

#include <vector>

namespace sihle::ds {

using runtime::Ctx;

SkipList::~SkipList() {
  Node* n = head_;
  while (n != nullptr) {
    Node* next = n->next[0]->debug_value();
    delete n;
    n = next;
  }
}

sim::Task<bool> SkipList::contains(Ctx& c, Key key) {
  Node* cur = head_;
  for (int l = kMaxLevel - 1; l >= 0; --l) {
    for (;;) {
      Node* nxt = co_await c.load(*cur->next[l]);
      if (nxt == nullptr) break;
      const Key k = co_await c.load(nxt->key);
      if (k == key) co_return true;
      if (k > key) break;
      cur = nxt;
    }
  }
  co_return false;
}

sim::Task<bool> SkipList::insert(Ctx& c, Key key) {
  std::array<Node*, kMaxLevel> preds;
  Node* cur = head_;
  for (int l = kMaxLevel - 1; l >= 0; --l) {
    for (;;) {
      Node* nxt = co_await c.load(*cur->next[l]);
      if (nxt == nullptr) break;
      const Key k = co_await c.load(nxt->key);
      if (k == key) co_return false;
      if (k > key) break;
      cur = nxt;
    }
    preds[static_cast<std::size_t>(l)] = cur;
  }
  const int level = level_of(key);
  Node* fresh = c.tx_new<Node>(m_, key);
  for (int l = 0; l < level; ++l) {
    Node* succ = co_await c.load(*preds[static_cast<std::size_t>(l)]->next[l]);
    fresh->next[l]->set_raw(mem::Shared<Node*>::pack(succ));  // sihle-lint: disable=R002 (private until linked)
    co_await c.store(*preds[static_cast<std::size_t>(l)]->next[l], fresh);
  }
  co_return true;
}

sim::Task<bool> SkipList::erase(Ctx& c, Key key) {
  std::array<Node*, kMaxLevel> preds;
  Node* cur = head_;
  Node* victim = nullptr;
  for (int l = kMaxLevel - 1; l >= 0; --l) {
    for (;;) {
      Node* nxt = co_await c.load(*cur->next[l]);
      if (nxt == nullptr) break;
      const Key k = co_await c.load(nxt->key);
      if (k >= key) {
        if (k == key) victim = nxt;
        break;
      }
      cur = nxt;
    }
    preds[static_cast<std::size_t>(l)] = cur;
  }
  if (victim == nullptr) co_return false;
  for (int l = 0; l < kMaxLevel; ++l) {
    Node* nxt = co_await c.load(*preds[static_cast<std::size_t>(l)]->next[l]);
    if (nxt == victim) {
      Node* after = co_await c.load(*victim->next[l]);
      co_await c.store(*preds[static_cast<std::size_t>(l)]->next[l], after);
    }
  }
  c.retire(victim);
  co_return true;
}

void SkipList::debug_insert(Key key) {
  std::array<Node*, kMaxLevel> preds;
  Node* cur = head_;
  for (int l = kMaxLevel - 1; l >= 0; --l) {
    for (;;) {
      Node* nxt = cur->next[l]->debug_value();
      if (nxt == nullptr || nxt->key.debug_value() > key) break;
      if (nxt->key.debug_value() == key) return;
      cur = nxt;
    }
    preds[static_cast<std::size_t>(l)] = cur;
  }
  const int level = level_of(key);
  Node* fresh = new Node(m_, key);
  for (int l = 0; l < level; ++l) {
    fresh->next[l]->set_raw(preds[static_cast<std::size_t>(l)]->next[l]->raw());
    preds[static_cast<std::size_t>(l)]->next[l]->set_raw(
        mem::Shared<Node*>::pack(fresh));
  }
}

std::size_t SkipList::debug_size() const {
  std::size_t n = 0;
  for (Node* cur = head_->next[0]->debug_value(); cur != nullptr;
       cur = cur->next[0]->debug_value()) {
    ++n;
  }
  return n;
}

bool SkipList::debug_validate() const {
  // Level 0: strictly sorted.
  std::vector<const Node*> level0;
  Key last = kMinKey;
  for (Node* cur = head_->next[0]->debug_value(); cur != nullptr;
       cur = cur->next[0]->debug_value()) {
    const Key k = cur->key.debug_value();
    if (k <= last) return false;
    last = k;
    level0.push_back(cur);
  }
  // Upper levels: sorted sublists of level 0, consistent with level_of.
  for (int l = 1; l < kMaxLevel; ++l) {
    std::size_t idx = 0;
    for (Node* cur = head_->next[l]->debug_value(); cur != nullptr;
         cur = cur->next[l]->debug_value()) {
      if (level_of(cur->key.debug_value()) <= l) return false;
      while (idx < level0.size() && level0[idx] != cur) ++idx;
      if (idx == level0.size()) return false;  // not reachable at level 0
    }
  }
  return true;
}

}  // namespace sihle::ds
