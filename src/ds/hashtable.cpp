#include "ds/hashtable.h"

namespace sihle::ds {

using runtime::Ctx;

HashTable::~HashTable() {
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    Node* n = buckets_[b].debug_value();
    while (n != nullptr) {
      Node* next = n->next.debug_value();
      delete n;
      n = next;
    }
  }
}

sim::Task<bool> HashTable::contains(Ctx& c, Key key) {
  Node* n = co_await c.load(buckets_[bucket_of(key)]);
  while (n != nullptr) {
    const Key k = co_await c.load(n->key);
    if (k == key) co_return true;
    n = co_await c.load(n->next);
  }
  co_return false;
}

sim::Task<bool> HashTable::insert(Ctx& c, Key key) {
  mem::Shared<Node*>& head = buckets_[bucket_of(key)];
  Node* first = co_await c.load(head);
  for (Node* n = first; n != nullptr;) {
    const Key k = co_await c.load(n->key);
    if (k == key) co_return false;
    n = co_await c.load(n->next);
  }
  Node* fresh = c.tx_new<Node>(m_, key);
  fresh->next.set_raw(mem::Shared<Node*>::pack(first));  // sihle-lint: disable=R002 (private until linked)
  co_await c.store(head, fresh);
  co_return true;
}

sim::Task<bool> HashTable::erase(Ctx& c, Key key) {
  mem::Shared<Node*>& head = buckets_[bucket_of(key)];
  Node* n = co_await c.load(head);
  Node* prev = nullptr;
  while (n != nullptr) {
    const Key k = co_await c.load(n->key);
    if (k == key) {
      Node* next = co_await c.load(n->next);
      if (prev == nullptr) {
        co_await c.store(head, next);
      } else {
        co_await c.store(prev->next, next);
      }
      c.retire(n);
      co_return true;
    }
    prev = n;
    n = co_await c.load(n->next);
  }
  co_return false;
}

void HashTable::debug_insert(Key key) {
  mem::Shared<Node*>& head = buckets_[bucket_of(key)];
  for (Node* n = head.debug_value(); n != nullptr; n = n->next.debug_value()) {
    if (n->key.debug_value() == key) return;
  }
  Node* fresh = new Node(m_, key);
  fresh->next.set_raw(mem::Shared<Node*>::pack(head.debug_value()));
  head.set_raw(mem::Shared<Node*>::pack(fresh));
}

bool HashTable::debug_contains(Key key) const {
  const auto& head = buckets_[bucket_of(key)];
  for (Node* n = head.debug_value(); n != nullptr; n = n->next.debug_value()) {
    if (n->key.debug_value() == key) return true;
  }
  return false;
}

std::size_t HashTable::debug_size() const {
  std::size_t count = 0;
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    for (Node* n = buckets_[b].debug_value(); n != nullptr; n = n->next.debug_value()) {
      ++count;
    }
  }
  return count;
}

bool HashTable::debug_validate() const {
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    std::vector<Key> seen;
    for (Node* n = buckets_[b].debug_value(); n != nullptr; n = n->next.debug_value()) {
      const Key k = n->key.debug_value();
      if (bucket_of(k) != b) return false;
      for (Key s : seen) {
        if (s == k) return false;
      }
      seen.push_back(k);
    }
  }
  return true;
}

}  // namespace sihle::ds
