// Skiplist set under a single global lock.
//
// Logarithmic traversals like the red-black tree, but with a different
// conflict signature: writes touch only the new/removed node and its
// predecessors' forward pointers (no rebalancing cascades), and the tall
// "express lane" nodes are read by almost every operation.
#pragma once

#include <array>
#include <cstdint>

#include "runtime/ctx.h"

namespace sihle::ds {

class SkipList {
 public:
  using Key = std::int64_t;
  static constexpr int kMaxLevel = 8;

  explicit SkipList(runtime::Machine& m) : m_(m), head_(new Node(m, kMinKey)) {}
  ~SkipList();

  SkipList(const SkipList&) = delete;
  SkipList& operator=(const SkipList&) = delete;

  sim::Task<bool> contains(runtime::Ctx& c, Key key);
  sim::Task<bool> insert(runtime::Ctx& c, Key key);
  sim::Task<bool> erase(runtime::Ctx& c, Key key);

  void debug_insert(Key key);
  std::size_t debug_size() const;
  // Sorted at every level; every node reachable at level 0; each node's
  // higher-level successors consistent with level 0.
  bool debug_validate() const;

 private:
  static constexpr Key kMinKey = INT64_MIN;

  struct Node {
    // key + 8 forward pointers: 72 bytes, two cache lines (like a real
    // skiplist node with a forward array).
    runtime::LineHandle line_a;
    runtime::LineHandle line_b;
    mem::Shared<Key> key;
    std::array<std::unique_ptr<mem::Shared<Node*>>, kMaxLevel> next;
    Node(runtime::Machine& m, Key k) : line_a(m), line_b(m), key(line_a.line(), k) {
      for (int l = 0; l < kMaxLevel; ++l) {
        next[l] = std::make_unique<mem::Shared<Node*>>(
            (l < 3 ? line_a : line_b).line(), nullptr);
      }
    }
  };

  // Deterministic geometric level in [1, kMaxLevel] from the key hash, so
  // the structure is identical across runs and schemes.
  static int level_of(Key key) {
    std::uint64_t h = static_cast<std::uint64_t>(key) * 0x9E3779B97F4A7C15ULL;
    h ^= h >> 29;
    int level = 1;
    while (level < kMaxLevel && (h & 3) == 0) {
      ++level;
      h >>= 2;
    }
    return level;
  }

  runtime::Machine& m_;
  Node* head_;  // sentinel with all kMaxLevel forward pointers
};

}  // namespace sihle::ds
