// Red-black tree protected by a single global lock — the paper's primary
// data-structure benchmark (§4, §7.1).
//
// Every shared access in insert/erase/contains goes through the simulator
// (Ctx), so operations are usable as critical-section bodies under any
// elision scheme.  Each node occupies one cache line.  Nodes removed by
// erase() are retired through the deferred-reclamation machinery so that
// zombie transactions (possible under SLR) never touch freed memory.
//
// debug_* methods operate directly on committed values without simulating
// accesses: they are for pre-filling trees before a timed run and for
// validating invariants afterwards, never for workload code.
#pragma once

#include <cstdint>
#include <vector>

#include "runtime/ctx.h"

namespace sihle::ds {

using runtime::Ctx;
using runtime::LineHandle;
using runtime::Machine;

class RBTree {
 public:
  using Key = std::int64_t;

  explicit RBTree(Machine& m)
      : m_(m), root_line_(m), root_(root_line_.line(), nullptr) {}
  ~RBTree();

  RBTree(const RBTree&) = delete;
  RBTree& operator=(const RBTree&) = delete;

  // --- Simulated operations (critical-section bodies) ----------------------

  sim::Task<bool> contains(Ctx& c, Key key);
  // Returns false if the key was already present.
  sim::Task<bool> insert(Ctx& c, Key key);
  // Returns false if the key was absent.
  sim::Task<bool> erase(Ctx& c, Key key);

  // --- Direct (non-simulated) operations -----------------------------------

  void debug_insert(Key key);
  bool debug_contains(Key key) const;
  std::size_t debug_size() const;
  // In-order key sequence.
  std::vector<Key> debug_keys() const;
  // Checks the red-black invariants: root black, no red-red edge, equal
  // black height on every path, BST ordering, parent links consistent.
  // Returns true and sets *black_height if valid.
  bool debug_validate(int* black_height = nullptr) const;

 private:
  enum Color : std::uint8_t { kRed = 0, kBlack = 1 };

  struct Node {
    LineHandle line;
    mem::Shared<Key> key;
    mem::Shared<std::uint8_t> color;
    mem::Shared<Node*> left;
    mem::Shared<Node*> right;
    mem::Shared<Node*> parent;
    Node(Machine& m, Key k)
        : line(m),
          key(line.line(), k),
          color(line.line(), kRed),
          left(line.line(), nullptr),
          right(line.line(), nullptr),
          parent(line.line(), nullptr) {}
  };

  // Simulated helpers.
  sim::Task<void> rotate_left(Ctx& c, Node* x);
  sim::Task<void> rotate_right(Ctx& c, Node* x);
  sim::Task<void> insert_fixup(Ctx& c, Node* z);
  sim::Task<void> erase_fixup(Ctx& c, Node* x, Node* xp);
  sim::Task<void> transplant(Ctx& c, Node* u, Node* v);
  sim::Task<std::uint8_t> color_of(Ctx& c, Node* n);  // null nodes are black

  // Direct helpers.
  void debug_rotate_left(Node* x);
  void debug_rotate_right(Node* x);
  void debug_insert_fixup(Node* z);
  static std::uint8_t debug_color(const Node* n) {
    return n == nullptr ? kBlack : n->color.debug_value();
  }
  void debug_destroy(Node* n);
  bool debug_check(const Node* n, const Node* parent, Key lo, bool has_lo, Key hi,
                   bool has_hi, int* bh) const;

  Machine& m_;
  LineHandle root_line_;
  mem::Shared<Node*> root_;
};

}  // namespace sihle::ds
