// Sorted singly-linked list set under a single global lock.
//
// The classic elision stress case: every operation's read set grows
// linearly with the list prefix it traverses, so transactions run into the
// HTM's read-set capacity — the regime where lock elision stops helping no
// matter the scheme.  Used by the transaction-length-spectrum bench.
#pragma once

#include <cstdint>

#include "runtime/ctx.h"

namespace sihle::ds {

class LinkedListSet {
 public:
  using Key = std::int64_t;

  explicit LinkedListSet(runtime::Machine& m)
      : m_(m), head_(new Node(m, kMinKey)) {}
  ~LinkedListSet();

  LinkedListSet(const LinkedListSet&) = delete;
  LinkedListSet& operator=(const LinkedListSet&) = delete;

  sim::Task<bool> contains(runtime::Ctx& c, Key key);
  sim::Task<bool> insert(runtime::Ctx& c, Key key);
  sim::Task<bool> erase(runtime::Ctx& c, Key key);

  void debug_insert(Key key);
  std::size_t debug_size() const;
  // Strictly sorted, sentinel intact.
  bool debug_validate() const;

 private:
  static constexpr Key kMinKey = INT64_MIN;

  struct Node {
    runtime::LineHandle line;
    mem::Shared<Key> key;
    mem::Shared<Node*> next;
    Node(runtime::Machine& m, Key k)
        : line(m), key(line.line(), k), next(line.line(), nullptr) {}
  };

  runtime::Machine& m_;
  Node* head_;  // sentinel
};

}  // namespace sihle::ds
