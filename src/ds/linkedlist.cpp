#include "ds/linkedlist.h"

namespace sihle::ds {

using runtime::Ctx;

LinkedListSet::~LinkedListSet() {
  Node* n = head_;
  while (n != nullptr) {
    Node* next = n->next.debug_value();
    delete n;
    n = next;
  }
}

sim::Task<bool> LinkedListSet::contains(Ctx& c, Key key) {
  Node* cur = co_await c.load(head_->next);
  while (cur != nullptr) {
    const Key k = co_await c.load(cur->key);
    if (k == key) co_return true;
    if (k > key) co_return false;
    cur = co_await c.load(cur->next);
  }
  co_return false;
}

sim::Task<bool> LinkedListSet::insert(Ctx& c, Key key) {
  Node* prev = head_;
  Node* cur = co_await c.load(head_->next);
  while (cur != nullptr) {
    const Key k = co_await c.load(cur->key);
    if (k == key) co_return false;
    if (k > key) break;
    prev = cur;
    cur = co_await c.load(cur->next);
  }
  Node* fresh = c.tx_new<Node>(m_, key);
  fresh->next.set_raw(mem::Shared<Node*>::pack(cur));  // sihle-lint: disable=R002 (private until linked)
  co_await c.store(prev->next, fresh);
  co_return true;
}

sim::Task<bool> LinkedListSet::erase(Ctx& c, Key key) {
  Node* prev = head_;
  Node* cur = co_await c.load(head_->next);
  while (cur != nullptr) {
    const Key k = co_await c.load(cur->key);
    if (k == key) {
      Node* next = co_await c.load(cur->next);
      co_await c.store(prev->next, next);
      c.retire(cur);
      co_return true;
    }
    if (k > key) co_return false;
    prev = cur;
    cur = co_await c.load(cur->next);
  }
  co_return false;
}

void LinkedListSet::debug_insert(Key key) {
  Node* prev = head_;
  Node* cur = head_->next.debug_value();
  while (cur != nullptr && cur->key.debug_value() < key) {
    prev = cur;
    cur = cur->next.debug_value();
  }
  if (cur != nullptr && cur->key.debug_value() == key) return;
  Node* fresh = new Node(m_, key);
  fresh->next.set_raw(mem::Shared<Node*>::pack(cur));
  prev->next.set_raw(mem::Shared<Node*>::pack(fresh));
}

std::size_t LinkedListSet::debug_size() const {
  std::size_t n = 0;
  for (Node* cur = head_->next.debug_value(); cur != nullptr;
       cur = cur->next.debug_value()) {
    ++n;
  }
  return n;
}

bool LinkedListSet::debug_validate() const {
  if (head_->key.debug_value() != kMinKey) return false;
  Key last = kMinKey;
  for (Node* cur = head_->next.debug_value(); cur != nullptr;
       cur = cur->next.debug_value()) {
    const Key k = cur->key.debug_value();
    if (k <= last) return false;
    last = k;
  }
  return true;
}

}  // namespace sihle::ds
