// Transaction-level tracing: one record per transactional attempt (begin
// time, end time, outcome), collected machine-wide.  Used for debugging
// scheme dynamics, for the trace-based tests, and for CSV export from the
// rbtree_explorer example.  Enable with Machine-level set_tx_trace; the
// overhead is one append per attempt.
#pragma once

#include <cstdint>
#include <cstdio>
#include <vector>

#include "htm/abort.h"
#include "sim/cost_model.h"

namespace sihle::stats {

struct TxRecord {
  std::uint32_t thread = 0;
  sim::Cycles begin = 0;
  sim::Cycles end = 0;
  htm::AbortCause outcome = htm::AbortCause::kNone;  // kNone == committed
};

class TxTrace {
 public:
  void on_begin(std::uint32_t tid, sim::Cycles now) {
    if (open_.size() <= tid) open_.resize(tid + 1, 0);
    open_[tid] = now;
  }
  void on_end(std::uint32_t tid, sim::Cycles now, htm::AbortCause outcome) {
    TxRecord r;
    r.thread = tid;
    r.begin = open_.size() > tid ? open_[tid] : 0;
    r.end = now;
    r.outcome = outcome;
    records_.push_back(r);
  }

  const std::vector<TxRecord>& records() const { return records_; }

  std::uint64_t commits() const { return count(htm::AbortCause::kNone); }
  std::uint64_t aborts() const {
    return static_cast<std::uint64_t>(records_.size()) - commits();
  }
  std::uint64_t count(htm::AbortCause cause) const {
    std::uint64_t n = 0;
    for (const auto& r : records_) n += r.outcome == cause ? 1 : 0;
    return n;
  }

  // Attempts whose [begin, end] interval overlaps the given one — e.g. "how
  // many transactions were in flight when this one aborted".
  std::uint64_t overlapping(sim::Cycles lo, sim::Cycles hi) const {
    std::uint64_t n = 0;
    for (const auto& r : records_) n += (r.begin <= hi && r.end >= lo) ? 1 : 0;
    return n;
  }

  void dump_csv(std::FILE* out) const {
    std::fprintf(out, "thread,begin,end,outcome\n");
    for (const auto& r : records_) {
      std::fprintf(out, "%u,%llu,%llu,%s\n", r.thread,
                   static_cast<unsigned long long>(r.begin),
                   static_cast<unsigned long long>(r.end),
                   std::string(htm::to_string(r.outcome)).c_str());
    }
  }

 private:
  std::vector<sim::Cycles> open_;
  std::vector<TxRecord> records_;
};

}  // namespace sihle::stats
