// Legacy transaction-level tracing: one record per transactional attempt
// (begin time, end time, outcome), collected machine-wide in a single
// vector.  Kept for the interval-overlap queries and CSV export that the
// trace tests and the rbtree_explorer example use; new consumers should
// prefer the structured per-thread event rings (stats/event_ring.h), which
// this machine-wide vector predates.  Enable with Machine::set_tx_trace.
#pragma once

#include <cstdint>
#include <cstdio>
#include <vector>

#include "htm/abort.h"
#include "sim/cost_model.h"

namespace sihle::stats {

struct TxRecord {
  std::uint32_t thread = 0;
  sim::Cycles begin = 0;
  sim::Cycles end = 0;
  htm::AbortCause outcome = htm::AbortCause::kNone;  // kNone == committed
  // False when no on_begin preceded this record's on_end (the begin
  // timestamp is then synthesized as the end timestamp, not a stale or zero
  // value from an earlier attempt).
  bool paired = true;
};

class TxTrace {
 public:
  void on_begin(std::uint32_t tid, sim::Cycles now) {
    if (open_.size() <= tid) open_.resize(tid + 1, kNoOpenTx);
    open_[tid] = now;
  }

  // Pairing is explicit: each on_end consumes the thread's open begin, so a
  // second on_end without an intervening on_begin — or an on_end for a
  // thread never seen — is recorded as unpaired (begin = end, zero-length)
  // and counted, instead of silently reusing a stale or zero begin.
  void on_end(std::uint32_t tid, sim::Cycles now, htm::AbortCause outcome) {
    TxRecord r;
    r.thread = tid;
    r.end = now;
    r.outcome = outcome;
    if (tid < open_.size() && open_[tid] != kNoOpenTx) {
      r.begin = open_[tid];
      open_[tid] = kNoOpenTx;
    } else {
      r.begin = now;
      r.paired = false;
      ++unpaired_ends_;
    }
    records_.push_back(r);
  }

  const std::vector<TxRecord>& records() const { return records_; }

  // Ends that had no matching begin (0 in a correctly instrumented run).
  std::uint64_t unpaired_ends() const { return unpaired_ends_; }
  // Whether thread `tid` currently has a begun-but-unended attempt.
  bool open(std::uint32_t tid) const {
    return tid < open_.size() && open_[tid] != kNoOpenTx;
  }

  std::uint64_t commits() const { return count(htm::AbortCause::kNone); }
  std::uint64_t aborts() const {
    return static_cast<std::uint64_t>(records_.size()) - commits();
  }
  std::uint64_t count(htm::AbortCause cause) const {
    std::uint64_t n = 0;
    for (const auto& r : records_) n += r.outcome == cause ? 1 : 0;
    return n;
  }

  // Attempts whose [begin, end] interval overlaps the given one — e.g. "how
  // many transactions were in flight when this one aborted".
  std::uint64_t overlapping(sim::Cycles lo, sim::Cycles hi) const {
    std::uint64_t n = 0;
    for (const auto& r : records_) n += (r.begin <= hi && r.end >= lo) ? 1 : 0;
    return n;
  }

  void dump_csv(std::FILE* out) const {
    std::fprintf(out, "thread,begin,end,outcome\n");
    for (const auto& r : records_) {
      std::fprintf(out, "%u,%llu,%llu,%s\n", r.thread,
                   static_cast<unsigned long long>(r.begin),
                   static_cast<unsigned long long>(r.end),
                   std::string(htm::to_string(r.outcome)).c_str());
    }
  }

 private:
  static constexpr sim::Cycles kNoOpenTx = ~sim::Cycles{0};

  std::vector<sim::Cycles> open_;
  std::vector<TxRecord> records_;
  std::uint64_t unpaired_ends_ = 0;
};

}  // namespace sihle::stats
