// Per-thread operation statistics, matching the paper's measurements (§4):
//   S = spec_commits   — operations completed speculatively
//   A = aborts         — aborted speculative attempts
//   N = nonspec        — operations completed non-speculatively
// Total operations = S + N; attempts per operation = (A + N + S) / (N + S);
// non-speculative fraction = N / (N + S).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "htm/abort.h"
#include "sim/cost_model.h"

namespace sihle::stats {

struct OpStats {
  std::uint64_t spec_commits = 0;  // S
  std::uint64_t aborts = 0;        // A
  std::uint64_t nonspec = 0;       // N
  std::uint64_t arrivals = 0;
  std::uint64_t arrivals_lock_held = 0;
  std::uint64_t aux_acquisitions = 0;  // SCM serializing-path entries
  std::array<std::uint64_t, htm::kNumAbortCauses> abort_causes{};

  std::uint64_t ops() const { return spec_commits + nonspec; }
  double attempts_per_op() const {
    const auto o = ops();
    return o == 0 ? 0.0 : static_cast<double>(aborts + o) / static_cast<double>(o);
  }
  double nonspec_fraction() const {
    const auto o = ops();
    return o == 0 ? 0.0 : static_cast<double>(nonspec) / static_cast<double>(o);
  }
  double arrival_lock_held_fraction() const {
    return arrivals == 0 ? 0.0
                         : static_cast<double>(arrivals_lock_held) /
                               static_cast<double>(arrivals);
  }

  void record_abort(htm::AbortStatus s) {
    aborts++;
    abort_causes[static_cast<std::size_t>(s.cause)]++;
  }

  OpStats& operator+=(const OpStats& o) {
    spec_commits += o.spec_commits;
    aborts += o.aborts;
    nonspec += o.nonspec;
    arrivals += o.arrivals;
    arrivals_lock_held += o.arrivals_lock_held;
    aux_acquisitions += o.aux_acquisitions;
    for (std::size_t i = 0; i < abort_causes.size(); ++i) abort_causes[i] += o.abort_causes[i];
    return *this;
  }
};

// The per-operation latency histogram historically defined here moved to
// stats/latency.h as the shared log-linear stats::LatencyHistogram: the
// open-system service stack records queueing delay, service time, and
// sojourn time into three instances of the same class the closed workloads
// use for per-op latency, so quantile columns are comparable everywhere.

// Virtual-time-sliced counters for the Figure 3 dynamics plots: operations
// completed and non-speculative completions per slice (1 simulated ms by
// default).
class SliceRecorder {
 public:
  explicit SliceRecorder(sim::Cycles slice_cycles) : slice_(slice_cycles) {}

  void record_op(sim::Cycles at, bool nonspec) {
    const std::size_t slot = static_cast<std::size_t>(at / slice_);
    if (slot >= ops_.size()) {
      ops_.resize(slot + 1, 0);
      nonspec_.resize(slot + 1, 0);
    }
    ops_[slot]++;
    if (nonspec) nonspec_[slot]++;
  }

  std::size_t slices() const { return ops_.size(); }
  std::uint64_t ops_in(std::size_t s) const { return ops_[s]; }
  std::uint64_t nonspec_in(std::size_t s) const { return nonspec_[s]; }
  sim::Cycles slice_cycles() const { return slice_; }

 private:
  sim::Cycles slice_;
  std::vector<std::uint64_t> ops_;
  std::vector<std::uint64_t> nonspec_;
};

}  // namespace sihle::stats
