// Time-sliced aggregation of structured trace events (stats/event_ring.h)
// into the per-window series the paper's dynamics figures plot, plus the
// lemming-effect detector that makes Figure 2/3's visual signature an
// executable predicate.
//
// A Timeline partitions virtual time into fixed-width windows and counts,
// per window: transaction begins, speculative commits, aborts (by cause),
// non-speculative completions, auxiliary-lock acquisitions (SCM serializing
// path entries) and non-speculative main-lock acquisitions (fallback
// entries).  From these it derives the three series of Figures 2/3:
// throughput (ops per window), abort rate, and non-speculative fraction.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "htm/abort.h"
#include "stats/event_ring.h"

namespace sihle::stats {

struct Window {
  sim::Cycles start = 0;  // window covers [start, start + window_cycles)
  std::uint64_t begins = 0;
  std::uint64_t commits = 0;
  std::uint64_t aborts = 0;
  std::uint64_t nonspec = 0;        // non-speculative completions
  std::uint64_t aux_acquires = 0;   // SCM serializing-path entries
  std::uint64_t lock_acquires = 0;  // non-speculative main-lock acquisitions
  std::array<std::uint64_t, htm::kNumAbortCauses> abort_causes{};

  std::uint64_t ops() const { return commits + nonspec; }
  double nonspec_fraction() const {
    const auto o = ops();
    return o == 0 ? 0.0 : static_cast<double>(nonspec) / static_cast<double>(o);
  }
  // Aborted attempts over all attempts that ended in this window.
  double abort_rate() const {
    const auto att = aborts + commits;
    return att == 0 ? 0.0 : static_cast<double>(aborts) / static_cast<double>(att);
  }

  friend bool operator==(const Window&, const Window&) = default;
};

class Timeline {
 public:
  // Buckets every recorded event into windows of `window_cycles`.  The
  // window grid is anchored at cycle 0 so identical runs aggregate to
  // identical timelines regardless of when tracing was attached.
  static Timeline aggregate(const EventTrace& trace, sim::Cycles window_cycles) {
    Timeline tl;
    tl.window_cycles_ = window_cycles == 0 ? 1 : window_cycles;
    const sim::Cycles horizon = trace.max_time();
    const std::size_t n_windows =
        trace.total_events() == 0
            ? 0
            : static_cast<std::size_t>(horizon / tl.window_cycles_) + 1;
    tl.windows_.resize(n_windows);
    for (std::size_t w = 0; w < n_windows; ++w) {
      tl.windows_[w].start = static_cast<sim::Cycles>(w) * tl.window_cycles_;
    }
    for (std::uint32_t t = 0; t < trace.threads(); ++t) {
      trace.ring(t).for_each([&](const Event& e) {
        auto& w = tl.windows_[static_cast<std::size_t>(e.at / tl.window_cycles_)];
        switch (e.kind) {
          case EventKind::kTxBegin: w.begins++; break;
          case EventKind::kTxCommit: w.commits++; break;
          case EventKind::kTxAbort:
            w.aborts++;
            w.abort_causes[static_cast<std::size_t>(e.cause)]++;
            break;
          case EventKind::kAuxAcquire: w.aux_acquires++; break;
          case EventKind::kAuxRelease: break;
          case EventKind::kLockAcquire: w.lock_acquires++; break;
          case EventKind::kLockRelease: w.nonspec++; break;
          case EventKind::kNumKinds: break;
        }
      });
    }
    return tl;
  }

  sim::Cycles window_cycles() const { return window_cycles_; }
  const std::vector<Window>& windows() const { return windows_; }
  std::size_t size() const { return windows_.size(); }
  const Window& operator[](std::size_t w) const { return windows_[w]; }

  // Whole-run totals (sum over windows).
  Window totals() const {
    Window t;
    for (const auto& w : windows_) {
      t.begins += w.begins;
      t.commits += w.commits;
      t.aborts += w.aborts;
      t.nonspec += w.nonspec;
      t.aux_acquires += w.aux_acquires;
      t.lock_acquires += w.lock_acquires;
      for (std::size_t c = 0; c < t.abort_causes.size(); ++c) {
        t.abort_causes[c] += w.abort_causes[c];
      }
    }
    return t;
  }

  // Mean ops per window over the non-empty prefix, for normalized
  // throughput plots (Figure 3's y-axis).
  double mean_ops_per_window() const {
    if (windows_.empty()) return 0.0;
    std::uint64_t ops = 0;
    for (const auto& w : windows_) ops += w.ops();
    return static_cast<double>(ops) / static_cast<double>(windows_.size());
  }

  // Direct construction from precomputed windows (the export round-trip
  // path: a parsed trace re-materializes its Timeline).
  static Timeline from_windows(sim::Cycles window_cycles, std::vector<Window> ws) {
    Timeline tl;
    tl.window_cycles_ = window_cycles == 0 ? 1 : window_cycles;
    tl.windows_ = std::move(ws);
    return tl;
  }

  friend bool operator==(const Timeline&, const Timeline&) = default;

 private:
  sim::Cycles window_cycles_ = 1;
  std::vector<Window> windows_;
};

// --- Lemming-effect detector -----------------------------------------------
//
// The lemming effect (paper §4): a single abort makes one thread acquire
// the lock for real, which aborts every eliding transaction; with a fair
// lock the re-executed XACQUIREs enqueue everyone behind it and the system
// stays serialized — a *sustained* run of windows executing almost entirely
// non-speculatively, entered right after one conflict.  End-of-run averages
// hide this; the window series exposes it.

struct LemmingConfig {
  // A window is "serialized" when its non-speculative fraction is at least
  // this threshold ...
  double nonspec_threshold = 0.9;
  // ... and it completed at least this many operations (guards against
  // declaring an idle window serialized).
  std::uint64_t min_ops_per_window = 1;
  // The detector fires on a run of at least this many consecutive
  // serialized windows starting at or directly after an aborting window.
  std::size_t min_windows = 3;
};

struct LemmingReport {
  bool fired = false;
  std::size_t trigger_window = 0;  // window of the abort that precedes the run
  std::size_t first_window = 0;    // first serialized window of the run
  std::size_t run_length = 0;      // longest qualifying run, in windows
  double peak_nonspec = 0.0;       // max per-window nonspec fraction seen
};

inline LemmingReport detect_lemming(const Timeline& tl,
                                    const LemmingConfig& cfg = {}) {
  LemmingReport rep;
  const auto& ws = tl.windows();
  auto serialized = [&](const Window& w) {
    return w.ops() >= cfg.min_ops_per_window &&
           w.nonspec_fraction() >= cfg.nonspec_threshold;
  };
  for (const auto& w : ws) {
    if (w.ops() > 0) rep.peak_nonspec = std::max(rep.peak_nonspec, w.nonspec_fraction());
  }
  // Scan for runs of serialized windows whose start is anchored to an abort:
  // the triggering conflict lies in the run's first window or the one before
  // it (the abort and the pile-up can straddle a window boundary).
  std::size_t i = 0;
  while (i < ws.size()) {
    if (!serialized(ws[i])) {
      ++i;
      continue;
    }
    const bool anchored =
        ws[i].aborts > 0 || (i > 0 && ws[i - 1].aborts > 0);
    std::size_t j = i;
    while (j < ws.size() && serialized(ws[j])) ++j;
    const std::size_t len = j - i;
    if (anchored && len > rep.run_length) {
      rep.run_length = len;
      rep.first_window = i;
      rep.trigger_window = ws[i].aborts > 0 ? i : i - 1;
    }
    i = j;
  }
  rep.fired = rep.run_length >= cfg.min_windows;
  return rep;
}

}  // namespace sihle::stats
