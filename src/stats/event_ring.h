// Structured transaction-event tracing: the hot-path half of the
// observability layer (docs/OBSERVABILITY.md).
//
// Each logical thread appends fixed-size Event records to its own ring
// buffer — no shared append point, no allocation after construction — so
// tracing perturbs the simulated schedule as little as the legacy global
// TxTrace vector perturbed it a lot.  The rings record the five event kinds
// the paper's dynamics figures need (begin / commit / abort / aux-acquire /
// lock-acquire, plus the matching releases), each with a virtual-cycle
// timestamp and, for aborts, the abort cause and XABORT code.
//
// Consumers (stats/timeline.h aggregation, stats/export.h serialization,
// tools/trace reporting) iterate the rings after the run; the ring bounds
// memory by dropping the *oldest* events when full and counting the drops,
// so a long run degrades into a suffix trace rather than OOM or silent
// truncation of the interesting tail.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "htm/abort.h"
#include "sim/cost_model.h"

namespace sihle::stats {

enum class EventKind : std::uint8_t {
  kTxBegin = 0,   // XBEGIN retired (timestamp after tx_begin cost)
  kTxCommit,      // XEND succeeded; speculative completion of an attempt
  kTxAbort,       // rollback completed; `cause`/`code` carry the status
  kAuxAcquire,    // SCM serializing path entered (auxiliary lock acquired)
  kAuxRelease,    // SCM serializing path left
  kLockAcquire,   // main lock acquired non-speculatively (fallback entry)
  kLockRelease,   // main lock released; non-speculative completion
  kNumKinds,
};

inline constexpr std::size_t kNumEventKinds =
    static_cast<std::size_t>(EventKind::kNumKinds);

constexpr const char* to_string(EventKind k) {
  switch (k) {
    case EventKind::kTxBegin: return "tx-begin";
    case EventKind::kTxCommit: return "tx-commit";
    case EventKind::kTxAbort: return "tx-abort";
    case EventKind::kAuxAcquire: return "aux-acquire";
    case EventKind::kAuxRelease: return "aux-release";
    case EventKind::kLockAcquire: return "lock-acquire";
    case EventKind::kLockRelease: return "lock-release";
    default: return "?";
  }
}

// Parse counterpart of to_string; returns kNumKinds for unknown names.
inline EventKind event_kind_from_string(std::string_view s) {
  for (std::size_t k = 0; k < kNumEventKinds; ++k) {
    if (s == to_string(static_cast<EventKind>(k))) {
      return static_cast<EventKind>(k);
    }
  }
  return EventKind::kNumKinds;
}

inline htm::AbortCause abort_cause_from_string(std::string_view s) {
  for (std::size_t c = 0; c < htm::kNumAbortCauses; ++c) {
    if (s == htm::to_string(static_cast<htm::AbortCause>(c))) {
      return static_cast<htm::AbortCause>(c);
    }
  }
  return htm::AbortCause::kNumCauses;
}

// One structured trace event; 16 bytes, trivially copyable.
struct Event {
  sim::Cycles at = 0;  // thread-local virtual clock when the event retired
  EventKind kind = EventKind::kTxBegin;
  htm::AbortCause cause = htm::AbortCause::kNone;  // kTxAbort only
  std::uint8_t code = 0;  // XABORT imm8, for explicit aborts

  friend bool operator==(const Event&, const Event&) = default;
};

// Fixed-capacity single-writer ring of events.  Appending when full
// overwrites the oldest event and bumps dropped(); iteration yields the
// surviving events oldest-first.
class EventRing {
 public:
  explicit EventRing(std::size_t capacity) : buf_(capacity) {
    assert(capacity > 0);
  }

  void push(Event e) {
    if (size_ < buf_.size()) {
      buf_[(head_ + size_) % buf_.size()] = e;
      ++size_;
    } else {
      buf_[head_] = e;
      head_ = (head_ + 1) % buf_.size();
      ++dropped_;
    }
  }

  std::size_t size() const { return size_; }
  std::size_t capacity() const { return buf_.size(); }
  std::uint64_t dropped() const { return dropped_; }

  // i-th surviving event, oldest first (0 <= i < size()).
  const Event& operator[](std::size_t i) const {
    assert(i < size_);
    return buf_[(head_ + i) % buf_.size()];
  }

  template <class Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t i = 0; i < size_; ++i) fn((*this)[i]);
  }

  void clear() {
    head_ = 0;
    size_ = 0;
    dropped_ = 0;
  }

 private:
  std::vector<Event> buf_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  std::uint64_t dropped_ = 0;
};

// Machine-wide event trace: one ring per logical thread, grown lazily on
// first use by each thread.  Attach with Machine::set_event_trace; must
// outlive the run.
class EventTrace {
 public:
  static constexpr std::size_t kDefaultCapacityPerThread = std::size_t{1} << 16;

  explicit EventTrace(std::size_t capacity_per_thread = kDefaultCapacityPerThread)
      : capacity_(capacity_per_thread) {}

  void record(std::uint32_t tid, Event e) {
    if (tid >= rings_.size()) rings_.resize(tid + 1, EventRing(capacity_));
    rings_[tid].push(e);
  }

  std::size_t threads() const { return rings_.size(); }
  const EventRing& ring(std::uint32_t tid) const { return rings_[tid]; }

  std::uint64_t total_events() const {
    std::uint64_t n = 0;
    for (const auto& r : rings_) n += r.size();
    return n;
  }
  std::uint64_t total_dropped() const {
    std::uint64_t n = 0;
    for (const auto& r : rings_) n += r.dropped();
    return n;
  }

  std::uint64_t count(EventKind k) const {
    std::uint64_t n = 0;
    for (const auto& r : rings_) {
      r.for_each([&](const Event& e) { n += e.kind == k ? 1 : 0; });
    }
    return n;
  }

  // Latest timestamp across all rings (0 for an empty trace).
  sim::Cycles max_time() const {
    sim::Cycles t = 0;
    for (const auto& r : rings_) {
      r.for_each([&](const Event& e) { t = e.at > t ? e.at : t; });
    }
    return t;
  }

  void clear() {
    for (auto& r : rings_) r.clear();
  }

 private:
  std::size_t capacity_;
  std::vector<EventRing> rings_;
};

}  // namespace sihle::stats
