// Shared log-linear latency histogram (docs/SERVICE.md "Metrics").
//
// One histogram class serves every latency series in the repo: the closed
// workloads' per-operation latency (harness/rbtree_workload.h), the open
// service stack's queueing-delay / service-time / sojourn-time split
// (service/dispatcher.h), and the fairness-tail bench's quantile columns.
//
// Bucketing is HDR-style log-linear: values below kSubBuckets (32) are
// recorded exactly; above that, each power-of-two octave is divided into
// kSubBuckets equal-width sub-buckets, so the relative width of any bucket
// is at most 1/32 (~3.1%).  Merging (`operator+=`) is exact: the merged
// histogram equals the histogram of the concatenated samples, which is what
// lets per-thread and per-shard recordings aggregate without bias.
//
// Quantile contract (tested against a sorted reference in
// tests/service_test.cpp): percentile(p) returns bucket_upper(b) where b is
// the bucket containing the ceil(p * count)-th smallest recorded sample
// (1-indexed, p clamped to (0, 1]); hence
//
//   true_quantile <= percentile(p) <= true_quantile * (1 + 1/32) + 1
//
// and for values below kSubBuckets the returned quantile is exact.  An
// empty histogram reports 0 for every quantile.
#pragma once

#include <array>
#include <bit>
#include <cmath>
#include <cstdint>

#include "sim/cost_model.h"

namespace sihle::stats {

class LatencyHistogram {
 public:
  static constexpr int kSubBits = 5;
  static constexpr std::uint64_t kSubBuckets = std::uint64_t{1} << kSubBits;
  // Buckets: kSubBuckets exact small-value buckets plus kSubBuckets per
  // octave for octaves [kSubBits, 63].
  static constexpr std::size_t kBuckets =
      static_cast<std::size_t>(kSubBuckets) * (64 - kSubBits + 1);

  // Index of the bucket containing `v`.
  static constexpr std::size_t bucket_of(sim::Cycles v) {
    if (v < kSubBuckets) return static_cast<std::size_t>(v);
    const int msb = 63 - std::countl_zero(v);  // msb >= kSubBits
    const int shift = msb - kSubBits;
    const std::uint64_t sub = (v >> shift) - kSubBuckets;  // [0, kSubBuckets)
    return static_cast<std::size_t>(kSubBuckets +
                                    static_cast<std::uint64_t>(shift) * kSubBuckets + sub);
  }

  // Smallest / largest value mapping to bucket `b`.
  static constexpr sim::Cycles bucket_lower(std::size_t b) {
    if (b < kSubBuckets) return static_cast<sim::Cycles>(b);
    const std::uint64_t shift = (b - kSubBuckets) / kSubBuckets;
    const std::uint64_t sub = (b - kSubBuckets) % kSubBuckets;
    return (kSubBuckets + sub) << shift;
  }
  static constexpr sim::Cycles bucket_upper(std::size_t b) {
    if (b < kSubBuckets) return static_cast<sim::Cycles>(b);
    const std::uint64_t shift = (b - kSubBuckets) / kSubBuckets;
    return bucket_lower(b) + ((sim::Cycles{1} << shift) - 1);
  }

  void record(sim::Cycles v) {
    buckets_[bucket_of(v)]++;
    count_++;
    sum_ += v;
    if (v > max_) max_ = v;
  }

  std::uint64_t count() const { return count_; }
  sim::Cycles max_value() const { return max_; }
  // Exact mean of the recorded samples (the sum is tracked exactly).
  double mean() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) / static_cast<double>(count_);
  }

  // See the quantile contract above.
  sim::Cycles percentile(double p) const {
    if (count_ == 0) return 0;
    const double clamped = p < 0.0 ? 0.0 : (p > 1.0 ? 1.0 : p);
    std::uint64_t rank =
        static_cast<std::uint64_t>(std::ceil(clamped * static_cast<double>(count_)));
    if (rank < 1) rank = 1;
    if (rank > count_) rank = count_;
    std::uint64_t seen = 0;
    for (std::size_t b = 0; b < kBuckets; ++b) {
      seen += buckets_[b];
      if (seen >= rank) return bucket_upper(b);
    }
    return max_;  // unreachable: every sample lives in some bucket
  }

  LatencyHistogram& operator+=(const LatencyHistogram& o) {
    for (std::size_t b = 0; b < kBuckets; ++b) buckets_[b] += o.buckets_[b];
    count_ += o.count_;
    sum_ += o.sum_;
    if (o.max_ > max_) max_ = o.max_;
    return *this;
  }

  friend bool operator==(const LatencyHistogram&, const LatencyHistogram&) = default;

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;  // wraps mod 2^64; latencies are cycle counts
  sim::Cycles max_ = 0;
};

}  // namespace sihle::stats
