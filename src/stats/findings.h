// Structured findings report of the correctness-analysis layer.
//
// Each finding is one detected violation of a protocol invariant the
// paper's correctness argument rests on; the report aggregates them per
// kind so tests can assert exact expectations ("one missed doom, nothing
// else") and benches can print a one-line summary.
#pragma once

#include <array>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

namespace sihle::stats {

enum class FindingKind : std::uint8_t {
  // A write-shared line was accessed non-transactionally with no lock held:
  // the access is protected by nothing (Eraser's empty-lockset condition).
  kEmptyLockset = 0,
  // A non-transactional access completed while another thread's live
  // transaction still had the line in its footprint: requestor-wins dooming
  // was incomplete, so a zombie could commit stale state.
  kMissedDoom,
  // A transaction passed the hardware commit checks although a value it
  // read was no longer current: its read set was invalidated without the
  // conflict being detected.
  kInvalidatedCommitRead,
  // Model-checker verdicts (src/mc).  The committed transactions of an
  // explored schedule admit no serial witness order: some transaction
  // published state no serial execution could produce.
  kMcNonSerializableCommit,
  // An *aborted* transaction observed a read prefix inconsistent with every
  // serial order — the opacity condition the SLR paper concedes lazy
  // subscription gives up (zombies may read torn state before aborting).
  kMcInconsistentAbortedRead,
  // The explorer reached a schedule where no thread is runnable but work
  // remains: a genuine deadlock under some interleaving.
  kMcDeadlock,
  // A schedule exceeded the step bound; the space was not fully explored
  // down that branch (bounded-verification caveat, not a violation).
  kMcStepLimit,
  kNumKinds,
};

inline constexpr std::size_t kNumFindingKinds =
    static_cast<std::size_t>(FindingKind::kNumKinds);

constexpr const char* to_string(FindingKind k) {
  switch (k) {
    case FindingKind::kEmptyLockset: return "empty-lockset";
    case FindingKind::kMissedDoom: return "missed-doom";
    case FindingKind::kInvalidatedCommitRead: return "invalidated-commit-read";
    case FindingKind::kMcNonSerializableCommit: return "mc-non-serializable-commit";
    case FindingKind::kMcInconsistentAbortedRead: return "mc-inconsistent-aborted-read";
    case FindingKind::kMcDeadlock: return "mc-deadlock";
    case FindingKind::kMcStepLimit: return "mc-step-limit";
    default: return "?";
  }
}

// Inverse of to_string; returns kNumKinds for unknown names (parser use).
inline FindingKind finding_kind_from_string(std::string_view s) {
  for (std::size_t k = 0; k < kNumFindingKinds; ++k) {
    const auto kind = static_cast<FindingKind>(k);
    if (s == to_string(kind)) return kind;
  }
  return FindingKind::kNumKinds;
}

struct Finding {
  FindingKind kind = FindingKind::kEmptyLockset;
  std::uint32_t line = 0;    // simulated cache line the violation is on
  std::uint32_t thread = 0;  // thread whose access exposed it
  std::string detail;        // human-readable specifics
  friend bool operator==(const Finding&, const Finding&) = default;
};

class AnalysisReport {
 public:
  void add(Finding f) {
    counts_[static_cast<std::size_t>(f.kind)]++;
    ++total_;
    if (findings_.size() < max_recorded_) findings_.push_back(std::move(f));
  }

  void set_max_recorded(std::size_t n) { max_recorded_ = n; }

  std::uint64_t total() const { return total_; }
  bool clean() const { return total_ == 0; }
  std::uint64_t count(FindingKind k) const {
    return counts_[static_cast<std::size_t>(k)];
  }
  const std::vector<Finding>& findings() const { return findings_; }

  void clear() {
    findings_.clear();
    counts_.fill(0);
    total_ = 0;
  }

  void print(std::FILE* out) const {
    std::fprintf(out, "analysis: %llu finding(s)",
                 static_cast<unsigned long long>(total_));
    for (std::size_t k = 0; k < kNumFindingKinds; ++k) {
      if (counts_[k] != 0) {
        std::fprintf(out, "  %s=%llu", to_string(static_cast<FindingKind>(k)),
                     static_cast<unsigned long long>(counts_[k]));
      }
    }
    std::fprintf(out, "\n");
    for (const auto& f : findings_) {
      std::fprintf(out, "  [%s] line %u thread %u: %s\n", to_string(f.kind),
                   f.line, f.thread, f.detail.c_str());
    }
    if (total_ > findings_.size()) {
      std::fprintf(out, "  ... %llu more not recorded\n",
                   static_cast<unsigned long long>(total_ - findings_.size()));
    }
  }

 private:
  std::vector<Finding> findings_;
  std::array<std::uint64_t, kNumFindingKinds> counts_{};
  std::uint64_t total_ = 0;
  std::size_t max_recorded_ = 64;
};

}  // namespace sihle::stats
