// Machine-readable export of trace timelines and raw event streams, plus
// the matching parser — the interchange half of the observability layer.
//
// One JSON document (schema below, "version": 1) carries any number of
// labelled runs; each run has its aggregated window series, the lemming
// detector's verdict, and optionally the raw per-thread event stream, so
// the tools/trace reporter can re-bucket the run at a different window
// width ("replay").  The parser reads exactly what the writer emits; the
// round-trip (export → parse → re-aggregate) is fuzz-tested to equal direct
// aggregation in tests/fuzz_test.cpp.
//
//   {
//     "version": 1,
//     "runs": [
//       { "label": "...", "scheme": "HLE", "lock": "MCS",
//         "threads": 8, "seed": 1, "window_cycles": 34000,
//         "dropped_events": 0,
//         "lemming": { "fired": true, "trigger_window": 2,
//                      "first_window": 2, "run_length": 9,
//                      "peak_nonspec": 1.0 },
//         "windows": [
//           { "start": 0, "begins": 12, "commits": 10, "aborts": 3,
//             "nonspec": 1, "aux_acquires": 0, "lock_acquires": 1,
//             "causes": { "conflict": 2, "spurious": 1 } }, ... ],
//         "events": [ [ at, tid, "tx-begin", "none", 0 ], ... ] } ] }
//
// Benches reach this through --trace-out= / SIHLE_TRACE (harness/cli.h).
#pragma once

#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "stats/event_ring.h"
#include "stats/findings.h"
#include "stats/timeline.h"

namespace sihle::stats {

struct TraceRunMeta {
  std::string label;
  std::string scheme;
  std::string lock;
  int threads = 0;
  std::uint64_t seed = 0;
};

// One run of a trace document, as written or as parsed back.
struct TraceRun {
  TraceRunMeta meta;
  sim::Cycles window_cycles = 1;
  std::uint64_t dropped_events = 0;
  std::vector<Window> windows;
  LemmingReport lemming;
  bool has_events = false;
  struct TaggedEvent {
    std::uint32_t tid = 0;
    Event event;
    friend bool operator==(const TaggedEvent&, const TaggedEvent&) = default;
  };
  std::vector<TaggedEvent> events;  // thread-major, oldest-first per thread

  Timeline timeline() const { return Timeline::from_windows(window_cycles, windows); }
};

// Rebuilds a per-thread EventTrace from a parsed run's embedded events
// (capacity sized to fit: nothing is dropped on rebuild).
EventTrace rebuild_events(const TraceRun& run);

// Collects labelled runs and serializes them as one JSON document.
class TraceWriter {
 public:
  // Aggregates `trace` at `window_cycles`, runs the lemming detector, and
  // appends the bundle.  `include_events` embeds the raw event stream
  // (larger file, enables re-bucketing in tools/trace).
  void add_run(const TraceRunMeta& meta, const EventTrace& trace,
               sim::Cycles window_cycles, const LemmingConfig& lemming = {},
               bool include_events = false);

  std::size_t runs() const { return runs_.size(); }
  const std::vector<TraceRun>& run_list() const { return runs_; }

  std::string json() const;
  void write_json(std::FILE* out) const;
  // Returns false (and prints to stderr) if the file cannot be opened.
  bool write_json_file(const std::string& path) const;

 private:
  std::vector<TraceRun> runs_;
};

struct ParsedTrace {
  int version = 0;
  std::vector<TraceRun> runs;
};

// Parses a version-1 trace document.  Returns false and fills `error`
// (when non-null) on malformed input; unknown keys are ignored so the
// format can grow compatibly.
bool parse_trace_json(std::string_view text, ParsedTrace& out,
                      std::string* error = nullptr);

// --- Model-checker counterexamples ("sihle-mc", version 1) -----------------
//
// One document carries the counterexamples of one model-checking sweep
// (src/mc).  Each counterexample pairs a structured finding with the
// replayable choice trace that reproduces it — feeding the trace back into
// the explorer deterministically re-runs the violating schedule — plus the
// opacity checker's witness description.
//
//   { "format": "sihle-mc", "version": 1,
//     "counterexamples": [
//       { "scheme": "slr", "lock": "TTAS", "workload": "hazard-wild-store",
//         "kind": "mc-non-serializable-commit", "line": 3, "thread": 1,
//         "detail": "...", "witness": "...",
//         "trace": [ ["thread", 0], ["spurious", 1], ["conflict-tie", 0] ] } ] }

// One recorded scheduling decision: `kind` is the choice-point kind name
// ("thread" | "spurious" | "conflict-tie"), `chosen` the picked tid (thread)
// or 0/1 (spurious injected, requestor wins).
struct McChoiceRec {
  std::string kind;
  std::uint32_t chosen = 0;
  friend bool operator==(const McChoiceRec&, const McChoiceRec&) = default;
};

struct McCounterexample {
  std::string scheme;    // registry policy spec that was running
  std::string lock;      // lock kind name
  std::string workload;  // mc workload name
  Finding finding;       // kind/line/thread/detail, as in AnalysisReport
  std::string witness;   // serial-witness / violating-prefix description
  std::vector<McChoiceRec> trace;  // replayable choice trace
  friend bool operator==(const McCounterexample&,
                         const McCounterexample&) = default;
};

struct McDocument {
  std::vector<McCounterexample> counterexamples;
  friend bool operator==(const McDocument&, const McDocument&) = default;
};

// Serializes `doc` as one sihle-mc version-1 JSON document (byte-stable:
// export(parse(export(d))) == export(d)).
std::string export_mc_json(const McDocument& doc);

// Parses a sihle-mc version-1 document.  Returns false and fills `error`
// (when non-null) on malformed input; unknown keys are ignored.
bool parse_mc_json(std::string_view text, McDocument& out,
                   std::string* error = nullptr);

// Raw-event CSV: "at,thread,kind,cause,code", one row per event.
void export_events_csv(std::FILE* out, const EventTrace& trace);

// Window-series CSV: one row per window with derived rates included.
void export_timeline_csv(std::FILE* out, const Timeline& tl);

}  // namespace sihle::stats
