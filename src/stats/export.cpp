#include "stats/export.h"

#include <cctype>
#include <cinttypes>
#include <cstdlib>
#include <utility>

namespace sihle::stats {

namespace {

// --- JSON writing ----------------------------------------------------------

void append_escaped(std::string& out, std::string_view s) {
  out += '"';
  for (char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  out += '"';
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out += buf;
}

// Doubles round-trip exactly with %.17g; the only double in the schema is
// peak_nonspec, but exactness keeps parse(export(x)) == x testable.
void append_double(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

void append_window(std::string& out, const Window& w) {
  out += "{\"start\":";
  append_u64(out, w.start);
  out += ",\"begins\":";
  append_u64(out, w.begins);
  out += ",\"commits\":";
  append_u64(out, w.commits);
  out += ",\"aborts\":";
  append_u64(out, w.aborts);
  out += ",\"nonspec\":";
  append_u64(out, w.nonspec);
  out += ",\"aux_acquires\":";
  append_u64(out, w.aux_acquires);
  out += ",\"lock_acquires\":";
  append_u64(out, w.lock_acquires);
  out += ",\"causes\":{";
  bool first = true;
  for (std::size_t c = 0; c < w.abort_causes.size(); ++c) {
    if (w.abort_causes[c] == 0) continue;
    if (!first) out += ',';
    first = false;
    append_escaped(out, htm::to_string(static_cast<htm::AbortCause>(c)));
    out += ':';
    append_u64(out, w.abort_causes[c]);
  }
  out += "}}";
}

void append_run(std::string& out, const TraceRun& run) {
  out += "{\"label\":";
  append_escaped(out, run.meta.label);
  out += ",\"scheme\":";
  append_escaped(out, run.meta.scheme);
  out += ",\"lock\":";
  append_escaped(out, run.meta.lock);
  out += ",\"threads\":";
  append_u64(out, static_cast<std::uint64_t>(run.meta.threads));
  out += ",\"seed\":";
  append_u64(out, run.meta.seed);
  out += ",\"window_cycles\":";
  append_u64(out, run.window_cycles);
  out += ",\"dropped_events\":";
  append_u64(out, run.dropped_events);
  out += ",\"lemming\":{\"fired\":";
  out += run.lemming.fired ? "true" : "false";
  out += ",\"trigger_window\":";
  append_u64(out, run.lemming.trigger_window);
  out += ",\"first_window\":";
  append_u64(out, run.lemming.first_window);
  out += ",\"run_length\":";
  append_u64(out, run.lemming.run_length);
  out += ",\"peak_nonspec\":";
  append_double(out, run.lemming.peak_nonspec);
  out += "},\"windows\":[";
  for (std::size_t i = 0; i < run.windows.size(); ++i) {
    if (i != 0) out += ',';
    out += "\n    ";
    append_window(out, run.windows[i]);
  }
  out += ']';
  if (run.has_events) {
    out += ",\"events\":[";
    for (std::size_t i = 0; i < run.events.size(); ++i) {
      const auto& te = run.events[i];
      if (i != 0) out += ',';
      if (i % 8 == 0) out += "\n    ";
      out += '[';
      append_u64(out, te.event.at);
      out += ',';
      append_u64(out, te.tid);
      out += ',';
      append_escaped(out, to_string(te.event.kind));
      out += ',';
      append_escaped(out, htm::to_string(te.event.cause));
      out += ',';
      append_u64(out, te.event.code);
      out += ']';
    }
    out += ']';
  }
  out += '}';
}

// --- JSON parsing ----------------------------------------------------------
//
// Minimal recursive-descent parser for the subset the writer emits (no
// unicode escapes beyond \uXXXX pass-through, no nesting past what the
// schema needs).  Self-contained: the repo bakes in no JSON dependency.

struct JValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::uint64_t integer = 0;  // valid when the token had no '.', 'e', '-'
  bool is_integer = false;
  std::string string;
  std::vector<JValue> array;
  std::vector<std::pair<std::string, JValue>> object;

  const JValue* find(std::string_view key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
  std::uint64_t u64_or(std::uint64_t def) const {
    return kind == Kind::kNumber && is_integer ? integer : def;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : s_(text) {}

  bool parse(JValue& out, std::string* error) {
    skip_ws();
    if (!value(out)) {
      if (error != nullptr) {
        *error = "trace JSON parse error at offset " + std::to_string(pos_) +
                 ": " + err_;
      }
      return false;
    }
    skip_ws();
    if (pos_ != s_.size()) {
      if (error != nullptr) *error = "trailing characters after JSON document";
      return false;
    }
    return true;
  }

 private:
  bool fail(const char* msg) {
    if (err_.empty()) err_ = msg;
    return false;
  }
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])) != 0) {
      ++pos_;
    }
  }
  bool consume(char c) {
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool literal(std::string_view lit) {
    if (s_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  bool value(JValue& out) {
    skip_ws();
    if (pos_ >= s_.size()) return fail("unexpected end of input");
    const char c = s_[pos_];
    if (c == '{') return object(out);
    if (c == '[') return array(out);
    if (c == '"') {
      out.kind = JValue::Kind::kString;
      return string(out.string);
    }
    if (literal("true")) {
      out.kind = JValue::Kind::kBool;
      out.boolean = true;
      return true;
    }
    if (literal("false")) {
      out.kind = JValue::Kind::kBool;
      out.boolean = false;
      return true;
    }
    if (literal("null")) {
      out.kind = JValue::Kind::kNull;
      return true;
    }
    return number(out);
  }

  bool string(std::string& out) {
    if (!consume('"')) return fail("expected string");
    out.clear();
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= s_.size()) return fail("bad escape");
        const char e = s_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (pos_ + 4 > s_.size()) return fail("bad \\u escape");
            const unsigned long cp =
                std::strtoul(std::string(s_.substr(pos_, 4)).c_str(), nullptr, 16);
            pos_ += 4;
            // Writer only emits \u00XX control escapes; keep it byte-wide.
            out += static_cast<char>(cp & 0xFF);
            break;
          }
          default: return fail("unknown escape");
        }
      } else {
        out += c;
      }
    }
    return fail("unterminated string");
  }

  bool number(JValue& out) {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
    bool integral = true;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '-' || c == '+') {
        integral = false;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) return fail("expected value");
    const std::string tok(s_.substr(start, pos_ - start));
    out.kind = JValue::Kind::kNumber;
    out.number = std::strtod(tok.c_str(), nullptr);
    out.is_integer = integral && tok[0] != '-';
    if (out.is_integer) out.integer = std::strtoull(tok.c_str(), nullptr, 10);
    return true;
  }

  bool array(JValue& out) {
    if (!consume('[')) return fail("expected array");
    out.kind = JValue::Kind::kArray;
    skip_ws();
    if (consume(']')) return true;
    for (;;) {
      JValue v;
      if (!value(v)) return false;
      out.array.push_back(std::move(v));
      if (consume(',')) continue;
      if (consume(']')) return true;
      return fail("expected ',' or ']' in array");
    }
  }

  bool object(JValue& out) {
    if (!consume('{')) return fail("expected object");
    out.kind = JValue::Kind::kObject;
    skip_ws();
    if (consume('}')) return true;
    for (;;) {
      skip_ws();
      std::string key;
      if (!string(key)) return false;
      if (!consume(':')) return fail("expected ':' in object");
      JValue v;
      if (!value(v)) return false;
      out.object.emplace_back(std::move(key), std::move(v));
      if (consume(',')) continue;
      if (consume('}')) return true;
      return fail("expected ',' or '}' in object");
    }
  }

  std::string_view s_;
  std::size_t pos_ = 0;
  std::string err_;
};

bool parse_window(const JValue& jw, Window& w, std::string* error) {
  if (jw.kind != JValue::Kind::kObject) {
    if (error != nullptr) *error = "window is not an object";
    return false;
  }
  auto get = [&](std::string_view key) -> std::uint64_t {
    const JValue* v = jw.find(key);
    return v != nullptr ? v->u64_or(0) : 0;
  };
  w.start = get("start");
  w.begins = get("begins");
  w.commits = get("commits");
  w.aborts = get("aborts");
  w.nonspec = get("nonspec");
  w.aux_acquires = get("aux_acquires");
  w.lock_acquires = get("lock_acquires");
  if (const JValue* causes = jw.find("causes");
      causes != nullptr && causes->kind == JValue::Kind::kObject) {
    for (const auto& [name, count] : causes->object) {
      const htm::AbortCause c = abort_cause_from_string(name);
      if (c == htm::AbortCause::kNumCauses) {
        if (error != nullptr) *error = "unknown abort cause '" + name + "'";
        return false;
      }
      w.abort_causes[static_cast<std::size_t>(c)] = count.u64_or(0);
    }
  }
  return true;
}

bool parse_run(const JValue& jr, TraceRun& run, std::string* error) {
  if (jr.kind != JValue::Kind::kObject) {
    if (error != nullptr) *error = "run is not an object";
    return false;
  }
  auto str = [&](std::string_view key) -> std::string {
    const JValue* v = jr.find(key);
    return v != nullptr && v->kind == JValue::Kind::kString ? v->string : "";
  };
  run.meta.label = str("label");
  run.meta.scheme = str("scheme");
  run.meta.lock = str("lock");
  const JValue* threads = jr.find("threads");
  run.meta.threads = threads != nullptr ? static_cast<int>(threads->u64_or(0)) : 0;
  const JValue* seed = jr.find("seed");
  run.meta.seed = seed != nullptr ? seed->u64_or(0) : 0;
  const JValue* wc = jr.find("window_cycles");
  run.window_cycles = wc != nullptr ? wc->u64_or(1) : 1;
  const JValue* dropped = jr.find("dropped_events");
  run.dropped_events = dropped != nullptr ? dropped->u64_or(0) : 0;

  if (const JValue* lem = jr.find("lemming");
      lem != nullptr && lem->kind == JValue::Kind::kObject) {
    const JValue* fired = lem->find("fired");
    run.lemming.fired = fired != nullptr && fired->boolean;
    auto lget = [&](std::string_view key) -> std::uint64_t {
      const JValue* v = lem->find(key);
      return v != nullptr ? v->u64_or(0) : 0;
    };
    run.lemming.trigger_window = static_cast<std::size_t>(lget("trigger_window"));
    run.lemming.first_window = static_cast<std::size_t>(lget("first_window"));
    run.lemming.run_length = static_cast<std::size_t>(lget("run_length"));
    const JValue* peak = lem->find("peak_nonspec");
    run.lemming.peak_nonspec = peak != nullptr ? peak->number : 0.0;
  }

  const JValue* windows = jr.find("windows");
  if (windows == nullptr || windows->kind != JValue::Kind::kArray) {
    if (error != nullptr) *error = "run has no windows array";
    return false;
  }
  run.windows.resize(windows->array.size());
  for (std::size_t i = 0; i < windows->array.size(); ++i) {
    if (!parse_window(windows->array[i], run.windows[i], error)) return false;
  }

  if (const JValue* events = jr.find("events");
      events != nullptr && events->kind == JValue::Kind::kArray) {
    run.has_events = true;
    run.events.reserve(events->array.size());
    for (const JValue& je : events->array) {
      if (je.kind != JValue::Kind::kArray || je.array.size() != 5) {
        if (error != nullptr) *error = "event is not a 5-tuple";
        return false;
      }
      TraceRun::TaggedEvent te;
      te.event.at = je.array[0].u64_or(0);
      te.tid = static_cast<std::uint32_t>(je.array[1].u64_or(0));
      te.event.kind = event_kind_from_string(je.array[2].string);
      te.event.cause = abort_cause_from_string(je.array[3].string);
      te.event.code = static_cast<std::uint8_t>(je.array[4].u64_or(0));
      if (te.event.kind == EventKind::kNumKinds ||
          te.event.cause == htm::AbortCause::kNumCauses) {
        if (error != nullptr) *error = "event with unknown kind or cause";
        return false;
      }
      run.events.push_back(te);
    }
  }
  return true;
}

}  // namespace

EventTrace rebuild_events(const TraceRun& run) {
  std::size_t max_per_thread = 1;
  {
    std::vector<std::size_t> counts;
    for (const auto& te : run.events) {
      if (te.tid >= counts.size()) counts.resize(te.tid + 1, 0);
      counts[te.tid]++;
    }
    for (std::size_t n : counts) max_per_thread = std::max(max_per_thread, n);
  }
  EventTrace trace(max_per_thread);
  for (const auto& te : run.events) trace.record(te.tid, te.event);
  return trace;
}

void TraceWriter::add_run(const TraceRunMeta& meta, const EventTrace& trace,
                          sim::Cycles window_cycles, const LemmingConfig& lemming,
                          bool include_events) {
  TraceRun run;
  run.meta = meta;
  run.window_cycles = window_cycles == 0 ? 1 : window_cycles;
  run.dropped_events = trace.total_dropped();
  const Timeline tl = Timeline::aggregate(trace, run.window_cycles);
  run.windows = tl.windows();
  run.lemming = detect_lemming(tl, lemming);
  run.has_events = include_events;
  if (include_events) {
    run.events.reserve(static_cast<std::size_t>(trace.total_events()));
    for (std::uint32_t t = 0; t < trace.threads(); ++t) {
      trace.ring(t).for_each([&](const Event& e) {
        run.events.push_back({t, e});
      });
    }
  }
  runs_.push_back(std::move(run));
}

std::string TraceWriter::json() const {
  std::string out = "{\"version\":1,\"runs\":[";
  for (std::size_t i = 0; i < runs_.size(); ++i) {
    if (i != 0) out += ',';
    out += "\n  ";
    append_run(out, runs_[i]);
  }
  out += "\n]}\n";
  return out;
}

void TraceWriter::write_json(std::FILE* out) const {
  const std::string doc = json();
  std::fwrite(doc.data(), 1, doc.size(), out);
}

bool TraceWriter::write_json_file(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "trace export: cannot open '%s' for writing\n",
                 path.c_str());
    return false;
  }
  write_json(f);
  std::fclose(f);
  return true;
}

bool parse_trace_json(std::string_view text, ParsedTrace& out,
                      std::string* error) {
  JValue root;
  JsonParser parser(text);
  if (!parser.parse(root, error)) return false;
  if (root.kind != JValue::Kind::kObject) {
    if (error != nullptr) *error = "top level is not an object";
    return false;
  }
  const JValue* version = root.find("version");
  out.version = version != nullptr ? static_cast<int>(version->u64_or(0)) : 0;
  if (out.version != 1) {
    if (error != nullptr) {
      *error = "unsupported trace version " + std::to_string(out.version);
    }
    return false;
  }
  const JValue* runs = root.find("runs");
  if (runs == nullptr || runs->kind != JValue::Kind::kArray) {
    if (error != nullptr) *error = "document has no runs array";
    return false;
  }
  out.runs.resize(runs->array.size());
  for (std::size_t i = 0; i < runs->array.size(); ++i) {
    if (!parse_run(runs->array[i], out.runs[i], error)) return false;
  }
  return true;
}

void export_events_csv(std::FILE* out, const EventTrace& trace) {
  std::fprintf(out, "at,thread,kind,cause,code\n");
  for (std::uint32_t t = 0; t < trace.threads(); ++t) {
    trace.ring(t).for_each([&](const Event& e) {
      std::fprintf(out, "%" PRIu64 ",%u,%s,%s,%u\n", e.at, t,
                   to_string(e.kind),
                   std::string(htm::to_string(e.cause)).c_str(), e.code);
    });
  }
}

void export_timeline_csv(std::FILE* out, const Timeline& tl) {
  std::fprintf(out,
               "start,begins,commits,aborts,nonspec,aux_acquires,"
               "lock_acquires,ops,nonspec_fraction,abort_rate\n");
  for (const Window& w : tl.windows()) {
    std::fprintf(out,
                 "%" PRIu64 ",%" PRIu64 ",%" PRIu64 ",%" PRIu64 ",%" PRIu64
                 ",%" PRIu64 ",%" PRIu64 ",%" PRIu64 ",%.6f,%.6f\n",
                 w.start, w.begins, w.commits, w.aborts, w.nonspec,
                 w.aux_acquires, w.lock_acquires, w.ops(), w.nonspec_fraction(),
                 w.abort_rate());
  }
}

}  // namespace sihle::stats
