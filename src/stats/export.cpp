#include "stats/export.h"

#include <cctype>
#include <cinttypes>
#include <cstdlib>
#include <utility>

#include "stats/json.h"

namespace sihle::stats {

namespace {

// JSON primitives shared with the experiment-results format (exp/results.cpp).
using json::append_double;
using json::append_escaped;
using json::append_u64;
using json::JsonParser;
using json::JValue;

void append_window(std::string& out, const Window& w) {
  out += "{\"start\":";
  append_u64(out, w.start);
  out += ",\"begins\":";
  append_u64(out, w.begins);
  out += ",\"commits\":";
  append_u64(out, w.commits);
  out += ",\"aborts\":";
  append_u64(out, w.aborts);
  out += ",\"nonspec\":";
  append_u64(out, w.nonspec);
  out += ",\"aux_acquires\":";
  append_u64(out, w.aux_acquires);
  out += ",\"lock_acquires\":";
  append_u64(out, w.lock_acquires);
  out += ",\"causes\":{";
  bool first = true;
  for (std::size_t c = 0; c < w.abort_causes.size(); ++c) {
    if (w.abort_causes[c] == 0) continue;
    if (!first) out += ',';
    first = false;
    append_escaped(out, htm::to_string(static_cast<htm::AbortCause>(c)));
    out += ':';
    append_u64(out, w.abort_causes[c]);
  }
  out += "}}";
}

void append_run(std::string& out, const TraceRun& run) {
  out += "{\"label\":";
  append_escaped(out, run.meta.label);
  out += ",\"scheme\":";
  append_escaped(out, run.meta.scheme);
  out += ",\"lock\":";
  append_escaped(out, run.meta.lock);
  out += ",\"threads\":";
  append_u64(out, static_cast<std::uint64_t>(run.meta.threads));
  out += ",\"seed\":";
  append_u64(out, run.meta.seed);
  out += ",\"window_cycles\":";
  append_u64(out, run.window_cycles);
  out += ",\"dropped_events\":";
  append_u64(out, run.dropped_events);
  out += ",\"lemming\":{\"fired\":";
  out += run.lemming.fired ? "true" : "false";
  out += ",\"trigger_window\":";
  append_u64(out, run.lemming.trigger_window);
  out += ",\"first_window\":";
  append_u64(out, run.lemming.first_window);
  out += ",\"run_length\":";
  append_u64(out, run.lemming.run_length);
  out += ",\"peak_nonspec\":";
  append_double(out, run.lemming.peak_nonspec);
  out += "},\"windows\":[";
  for (std::size_t i = 0; i < run.windows.size(); ++i) {
    if (i != 0) out += ',';
    out += "\n    ";
    append_window(out, run.windows[i]);
  }
  out += ']';
  if (run.has_events) {
    out += ",\"events\":[";
    for (std::size_t i = 0; i < run.events.size(); ++i) {
      const auto& te = run.events[i];
      if (i != 0) out += ',';
      if (i % 8 == 0) out += "\n    ";
      out += '[';
      append_u64(out, te.event.at);
      out += ',';
      append_u64(out, te.tid);
      out += ',';
      append_escaped(out, to_string(te.event.kind));
      out += ',';
      append_escaped(out, htm::to_string(te.event.cause));
      out += ',';
      append_u64(out, te.event.code);
      out += ']';
    }
    out += ']';
  }
  out += '}';
}

bool parse_window(const JValue& jw, Window& w, std::string* error) {
  if (jw.kind != JValue::Kind::kObject) {
    if (error != nullptr) *error = "window is not an object";
    return false;
  }
  auto get = [&](std::string_view key) -> std::uint64_t {
    const JValue* v = jw.find(key);
    return v != nullptr ? v->u64_or(0) : 0;
  };
  w.start = get("start");
  w.begins = get("begins");
  w.commits = get("commits");
  w.aborts = get("aborts");
  w.nonspec = get("nonspec");
  w.aux_acquires = get("aux_acquires");
  w.lock_acquires = get("lock_acquires");
  if (const JValue* causes = jw.find("causes");
      causes != nullptr && causes->kind == JValue::Kind::kObject) {
    for (const auto& [name, count] : causes->object) {
      const htm::AbortCause c = abort_cause_from_string(name);
      if (c == htm::AbortCause::kNumCauses) {
        if (error != nullptr) *error = "unknown abort cause '" + name + "'";
        return false;
      }
      w.abort_causes[static_cast<std::size_t>(c)] = count.u64_or(0);
    }
  }
  return true;
}

bool parse_run(const JValue& jr, TraceRun& run, std::string* error) {
  if (jr.kind != JValue::Kind::kObject) {
    if (error != nullptr) *error = "run is not an object";
    return false;
  }
  auto str = [&](std::string_view key) -> std::string {
    const JValue* v = jr.find(key);
    return v != nullptr && v->kind == JValue::Kind::kString ? v->string : "";
  };
  run.meta.label = str("label");
  run.meta.scheme = str("scheme");
  run.meta.lock = str("lock");
  const JValue* threads = jr.find("threads");
  run.meta.threads = threads != nullptr ? static_cast<int>(threads->u64_or(0)) : 0;
  const JValue* seed = jr.find("seed");
  run.meta.seed = seed != nullptr ? seed->u64_or(0) : 0;
  const JValue* wc = jr.find("window_cycles");
  run.window_cycles = wc != nullptr ? wc->u64_or(1) : 1;
  const JValue* dropped = jr.find("dropped_events");
  run.dropped_events = dropped != nullptr ? dropped->u64_or(0) : 0;

  if (const JValue* lem = jr.find("lemming");
      lem != nullptr && lem->kind == JValue::Kind::kObject) {
    const JValue* fired = lem->find("fired");
    run.lemming.fired = fired != nullptr && fired->boolean;
    auto lget = [&](std::string_view key) -> std::uint64_t {
      const JValue* v = lem->find(key);
      return v != nullptr ? v->u64_or(0) : 0;
    };
    run.lemming.trigger_window = static_cast<std::size_t>(lget("trigger_window"));
    run.lemming.first_window = static_cast<std::size_t>(lget("first_window"));
    run.lemming.run_length = static_cast<std::size_t>(lget("run_length"));
    const JValue* peak = lem->find("peak_nonspec");
    run.lemming.peak_nonspec = peak != nullptr ? peak->number : 0.0;
  }

  const JValue* windows = jr.find("windows");
  if (windows == nullptr || windows->kind != JValue::Kind::kArray) {
    if (error != nullptr) *error = "run has no windows array";
    return false;
  }
  run.windows.resize(windows->array.size());
  for (std::size_t i = 0; i < windows->array.size(); ++i) {
    if (!parse_window(windows->array[i], run.windows[i], error)) return false;
  }

  if (const JValue* events = jr.find("events");
      events != nullptr && events->kind == JValue::Kind::kArray) {
    run.has_events = true;
    run.events.reserve(events->array.size());
    for (const JValue& je : events->array) {
      if (je.kind != JValue::Kind::kArray || je.array.size() != 5) {
        if (error != nullptr) *error = "event is not a 5-tuple";
        return false;
      }
      TraceRun::TaggedEvent te;
      te.event.at = je.array[0].u64_or(0);
      te.tid = static_cast<std::uint32_t>(je.array[1].u64_or(0));
      te.event.kind = event_kind_from_string(je.array[2].string);
      te.event.cause = abort_cause_from_string(je.array[3].string);
      te.event.code = static_cast<std::uint8_t>(je.array[4].u64_or(0));
      if (te.event.kind == EventKind::kNumKinds ||
          te.event.cause == htm::AbortCause::kNumCauses) {
        if (error != nullptr) *error = "event with unknown kind or cause";
        return false;
      }
      run.events.push_back(te);
    }
  }
  return true;
}

}  // namespace

EventTrace rebuild_events(const TraceRun& run) {
  std::size_t max_per_thread = 1;
  {
    std::vector<std::size_t> counts;
    for (const auto& te : run.events) {
      if (te.tid >= counts.size()) counts.resize(te.tid + 1, 0);
      counts[te.tid]++;
    }
    for (std::size_t n : counts) max_per_thread = std::max(max_per_thread, n);
  }
  EventTrace trace(max_per_thread);
  for (const auto& te : run.events) trace.record(te.tid, te.event);
  return trace;
}

void TraceWriter::add_run(const TraceRunMeta& meta, const EventTrace& trace,
                          sim::Cycles window_cycles, const LemmingConfig& lemming,
                          bool include_events) {
  TraceRun run;
  run.meta = meta;
  run.window_cycles = window_cycles == 0 ? 1 : window_cycles;
  run.dropped_events = trace.total_dropped();
  const Timeline tl = Timeline::aggregate(trace, run.window_cycles);
  run.windows = tl.windows();
  run.lemming = detect_lemming(tl, lemming);
  run.has_events = include_events;
  if (include_events) {
    run.events.reserve(static_cast<std::size_t>(trace.total_events()));
    for (std::uint32_t t = 0; t < trace.threads(); ++t) {
      trace.ring(t).for_each([&](const Event& e) {
        run.events.push_back({t, e});
      });
    }
  }
  runs_.push_back(std::move(run));
}

std::string TraceWriter::json() const {
  std::string out = "{\"version\":1,\"runs\":[";
  for (std::size_t i = 0; i < runs_.size(); ++i) {
    if (i != 0) out += ',';
    out += "\n  ";
    append_run(out, runs_[i]);
  }
  out += "\n]}\n";
  return out;
}

void TraceWriter::write_json(std::FILE* out) const {
  const std::string doc = json();
  std::fwrite(doc.data(), 1, doc.size(), out);
}

bool TraceWriter::write_json_file(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "trace export: cannot open '%s' for writing\n",
                 path.c_str());
    return false;
  }
  write_json(f);
  std::fclose(f);
  return true;
}

bool parse_trace_json(std::string_view text, ParsedTrace& out,
                      std::string* error) {
  JValue root;
  JsonParser parser(text);
  if (!parser.parse(root, error)) return false;
  if (root.kind != JValue::Kind::kObject) {
    if (error != nullptr) *error = "top level is not an object";
    return false;
  }
  const JValue* version = root.find("version");
  out.version = version != nullptr ? static_cast<int>(version->u64_or(0)) : 0;
  if (out.version != 1) {
    if (error != nullptr) {
      *error = "unsupported trace version " + std::to_string(out.version);
    }
    return false;
  }
  const JValue* runs = root.find("runs");
  if (runs == nullptr || runs->kind != JValue::Kind::kArray) {
    if (error != nullptr) *error = "document has no runs array";
    return false;
  }
  out.runs.resize(runs->array.size());
  for (std::size_t i = 0; i < runs->array.size(); ++i) {
    if (!parse_run(runs->array[i], out.runs[i], error)) return false;
  }
  return true;
}

std::string export_mc_json(const McDocument& doc) {
  std::string out = "{\"format\":\"sihle-mc\",\"version\":1,\"counterexamples\":[";
  for (std::size_t i = 0; i < doc.counterexamples.size(); ++i) {
    const McCounterexample& cx = doc.counterexamples[i];
    if (i != 0) out += ',';
    out += "\n  {\"scheme\":";
    append_escaped(out, cx.scheme);
    out += ",\"lock\":";
    append_escaped(out, cx.lock);
    out += ",\"workload\":";
    append_escaped(out, cx.workload);
    out += ",\"kind\":";
    append_escaped(out, to_string(cx.finding.kind));
    out += ",\"line\":";
    append_u64(out, cx.finding.line);
    out += ",\"thread\":";
    append_u64(out, cx.finding.thread);
    out += ",\"detail\":";
    append_escaped(out, cx.finding.detail);
    out += ",\"witness\":";
    append_escaped(out, cx.witness);
    out += ",\"trace\":[";
    for (std::size_t j = 0; j < cx.trace.size(); ++j) {
      if (j != 0) out += ',';
      if (j % 8 == 0) out += "\n    ";
      out += '[';
      append_escaped(out, cx.trace[j].kind);
      out += ',';
      append_u64(out, cx.trace[j].chosen);
      out += ']';
    }
    out += "]}";
  }
  out += "\n]}\n";
  return out;
}

bool parse_mc_json(std::string_view text, McDocument& out, std::string* error) {
  JValue root;
  JsonParser parser(text);
  if (!parser.parse(root, error)) return false;
  if (root.kind != JValue::Kind::kObject) {
    if (error != nullptr) *error = "top level is not an object";
    return false;
  }
  const JValue* format = root.find("format");
  if (format == nullptr || format->string != "sihle-mc") {
    if (error != nullptr) *error = "document format is not sihle-mc";
    return false;
  }
  const JValue* version = root.find("version");
  const int ver = version != nullptr ? static_cast<int>(version->u64_or(0)) : 0;
  if (ver != 1) {
    if (error != nullptr) {
      *error = "unsupported sihle-mc version " + std::to_string(ver);
    }
    return false;
  }
  const JValue* cxs = root.find("counterexamples");
  if (cxs == nullptr || cxs->kind != JValue::Kind::kArray) {
    if (error != nullptr) *error = "document has no counterexamples array";
    return false;
  }
  out.counterexamples.clear();
  out.counterexamples.reserve(cxs->array.size());
  for (const JValue& jc : cxs->array) {
    if (jc.kind != JValue::Kind::kObject) {
      if (error != nullptr) *error = "counterexample is not an object";
      return false;
    }
    auto str = [&](std::string_view key) -> std::string {
      const JValue* v = jc.find(key);
      return v != nullptr && v->kind == JValue::Kind::kString ? v->string : "";
    };
    McCounterexample cx;
    cx.scheme = str("scheme");
    cx.lock = str("lock");
    cx.workload = str("workload");
    cx.finding.kind = finding_kind_from_string(str("kind"));
    if (cx.finding.kind == FindingKind::kNumKinds) {
      if (error != nullptr) {
        *error = "counterexample with unknown finding kind '" + str("kind") + "'";
      }
      return false;
    }
    const JValue* line = jc.find("line");
    cx.finding.line = line != nullptr ? static_cast<std::uint32_t>(line->u64_or(0)) : 0;
    const JValue* thread = jc.find("thread");
    cx.finding.thread =
        thread != nullptr ? static_cast<std::uint32_t>(thread->u64_or(0)) : 0;
    cx.finding.detail = str("detail");
    cx.witness = str("witness");
    if (const JValue* trace = jc.find("trace");
        trace != nullptr && trace->kind == JValue::Kind::kArray) {
      cx.trace.reserve(trace->array.size());
      for (const JValue& jt : trace->array) {
        if (jt.kind != JValue::Kind::kArray || jt.array.size() != 2 ||
            jt.array[0].kind != JValue::Kind::kString) {
          if (error != nullptr) *error = "trace entry is not a [kind, chosen] pair";
          return false;
        }
        cx.trace.push_back({jt.array[0].string,
                            static_cast<std::uint32_t>(jt.array[1].u64_or(0))});
      }
    }
    out.counterexamples.push_back(std::move(cx));
  }
  return true;
}

void export_events_csv(std::FILE* out, const EventTrace& trace) {
  std::fprintf(out, "at,thread,kind,cause,code\n");
  for (std::uint32_t t = 0; t < trace.threads(); ++t) {
    trace.ring(t).for_each([&](const Event& e) {
      std::fprintf(out, "%" PRIu64 ",%u,%s,%s,%u\n", e.at, t,
                   to_string(e.kind),
                   std::string(htm::to_string(e.cause)).c_str(), e.code);
    });
  }
}

void export_timeline_csv(std::FILE* out, const Timeline& tl) {
  std::fprintf(out,
               "start,begins,commits,aborts,nonspec,aux_acquires,"
               "lock_acquires,ops,nonspec_fraction,abort_rate\n");
  for (const Window& w : tl.windows()) {
    std::fprintf(out,
                 "%" PRIu64 ",%" PRIu64 ",%" PRIu64 ",%" PRIu64 ",%" PRIu64
                 ",%" PRIu64 ",%" PRIu64 ",%" PRIu64 ",%.6f,%.6f\n",
                 w.start, w.begins, w.commits, w.aborts, w.nonspec,
                 w.aux_acquires, w.lock_acquires, w.ops(), w.nonspec_fraction(),
                 w.abort_rate());
  }
}

}  // namespace sihle::stats
