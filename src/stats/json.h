// Minimal JSON reading/writing shared by the observability trace format
// (stats/export.cpp) and the experiment-results format (exp/results.cpp).
//
// The writer half is a set of append_* helpers over std::string; the reader
// half is a recursive-descent parser for the subset our writers emit (no
// unicode escapes beyond \uXXXX pass-through).  Self-contained: the repo
// bakes in no JSON dependency.
#pragma once

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cctype>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace sihle::stats::json {

// --- Writing ---------------------------------------------------------------

inline void append_escaped(std::string& out, std::string_view s) {
  out += '"';
  for (char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  out += '"';
}

inline void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out += buf;
}

// Doubles round-trip exactly with %.17g; exactness is what makes
// parse(export(x)) == x testable and exported results byte-reproducible.
inline void append_double(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

// --- Reading ---------------------------------------------------------------

struct JValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::uint64_t integer = 0;  // valid when the token had no '.', 'e', '-'
  bool is_integer = false;
  std::string string;
  std::vector<JValue> array;
  std::vector<std::pair<std::string, JValue>> object;

  const JValue* find(std::string_view key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
  std::uint64_t u64_or(std::uint64_t def) const {
    return kind == Kind::kNumber && is_integer ? integer : def;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : s_(text) {}

  bool parse(JValue& out, std::string* error) {
    skip_ws();
    if (!value(out)) {
      if (error != nullptr) {
        *error = "JSON parse error at offset " + std::to_string(pos_) + ": " +
                 err_;
      }
      return false;
    }
    skip_ws();
    if (pos_ != s_.size()) {
      if (error != nullptr) *error = "trailing characters after JSON document";
      return false;
    }
    return true;
  }

 private:
  bool fail(const char* msg) {
    if (err_.empty()) err_ = msg;
    return false;
  }
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])) != 0) {
      ++pos_;
    }
  }
  bool consume(char c) {
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool literal(std::string_view lit) {
    if (s_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  bool value(JValue& out) {
    skip_ws();
    if (pos_ >= s_.size()) return fail("unexpected end of input");
    const char c = s_[pos_];
    if (c == '{') return object(out);
    if (c == '[') return array(out);
    if (c == '"') {
      out.kind = JValue::Kind::kString;
      return string(out.string);
    }
    if (literal("true")) {
      out.kind = JValue::Kind::kBool;
      out.boolean = true;
      return true;
    }
    if (literal("false")) {
      out.kind = JValue::Kind::kBool;
      out.boolean = false;
      return true;
    }
    if (literal("null")) {
      out.kind = JValue::Kind::kNull;
      return true;
    }
    return number(out);
  }

  bool string(std::string& out) {
    if (!consume('"')) return fail("expected string");
    out.clear();
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= s_.size()) return fail("bad escape");
        const char e = s_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (pos_ + 4 > s_.size()) return fail("bad \\u escape");
            const unsigned long cp =
                std::strtoul(std::string(s_.substr(pos_, 4)).c_str(), nullptr, 16);
            pos_ += 4;
            // Writers only emit \u00XX control escapes; keep it byte-wide.
            out += static_cast<char>(cp & 0xFF);
            break;
          }
          default: return fail("unknown escape");
        }
      } else {
        out += c;
      }
    }
    return fail("unterminated string");
  }

  bool number(JValue& out) {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
    bool integral = true;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '-' || c == '+') {
        integral = false;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) return fail("expected value");
    const std::string tok(s_.substr(start, pos_ - start));
    out.kind = JValue::Kind::kNumber;
    out.number = std::strtod(tok.c_str(), nullptr);
    out.is_integer = integral && tok[0] != '-';
    if (out.is_integer) out.integer = std::strtoull(tok.c_str(), nullptr, 10);
    return true;
  }

  bool array(JValue& out) {
    if (!consume('[')) return fail("expected array");
    out.kind = JValue::Kind::kArray;
    skip_ws();
    if (consume(']')) return true;
    for (;;) {
      JValue v;
      if (!value(v)) return false;
      out.array.push_back(std::move(v));
      if (consume(',')) continue;
      if (consume(']')) return true;
      return fail("expected ',' or ']' in array");
    }
  }

  bool object(JValue& out) {
    if (!consume('{')) return fail("expected object");
    out.kind = JValue::Kind::kObject;
    skip_ws();
    if (consume('}')) return true;
    for (;;) {
      skip_ws();
      std::string key;
      if (!string(key)) return false;
      if (!consume(':')) return fail("expected ':' in object");
      JValue v;
      if (!value(v)) return false;
      out.object.emplace_back(std::move(key), std::move(v));
      if (consume(',')) continue;
      if (consume('}')) return true;
      return fail("expected ',' or '}' in object");
    }
  }

  std::string_view s_;
  std::size_t pos_ = 0;
  std::string err_;
};

}  // namespace sihle::stats::json
