// InplaceFn<Sig, Cap>: a type-erased callable that never heap-allocates.
//
// std::function heap-allocates when a capture exceeds its small-buffer
// optimisation and, on libstdc++, costs an indirect manager call per copy.
// The transaction hot path queues one compensation/reclamation action per
// instrumented allocation (Ctx::tx_new / Ctx::retire), so those queues use
// this fixed-capacity callable instead: the capture is stored inline (a
// static_assert rejects anything over Cap bytes) and move/destroy go
// through a single manager function pointer.
//
// Move-only.  Invoking an empty InplaceFn is undefined (asserts in debug).
#pragma once

#include <cassert>
#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace sihle::util {

template <typename Sig, std::size_t Cap = 32>
class InplaceFn;

template <typename R, typename... Args, std::size_t Cap>
class InplaceFn<R(Args...), Cap> {
 public:
  InplaceFn() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InplaceFn> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  InplaceFn(F&& f) {  // NOLINT(google-explicit-constructor) — mirrors std::function
    using Fn = std::decay_t<F>;
    static_assert(sizeof(Fn) <= Cap, "capture too large for InplaceFn inline storage");
    static_assert(alignof(Fn) <= alignof(std::max_align_t));
    static_assert(std::is_nothrow_move_constructible_v<Fn>);
    ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
    invoke_ = [](void* s, Args... args) -> R {
      return (*static_cast<Fn*>(s))(std::forward<Args>(args)...);
    };
    manage_ = [](void* dst, void* src) {
      if (dst != nullptr) {  // move-construct dst from src, destroy src
        ::new (dst) Fn(std::move(*static_cast<Fn*>(src)));
      }
      static_cast<Fn*>(src)->~Fn();
    };
  }

  InplaceFn(InplaceFn&& other) noexcept { move_from(std::move(other)); }
  InplaceFn& operator=(InplaceFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(std::move(other));
    }
    return *this;
  }

  InplaceFn(const InplaceFn&) = delete;
  InplaceFn& operator=(const InplaceFn&) = delete;

  ~InplaceFn() { reset(); }

  explicit operator bool() const { return invoke_ != nullptr; }

  R operator()(Args... args) {
    assert(invoke_ != nullptr);
    return invoke_(storage_, std::forward<Args>(args)...);
  }

  void reset() {
    if (manage_ != nullptr) manage_(nullptr, storage_);
    invoke_ = nullptr;
    manage_ = nullptr;
  }

 private:
  void move_from(InplaceFn&& other) noexcept {
    invoke_ = other.invoke_;
    manage_ = other.manage_;
    if (manage_ != nullptr) manage_(storage_, other.storage_);
    other.invoke_ = nullptr;
    other.manage_ = nullptr;
  }

  alignas(std::max_align_t) unsigned char storage_[Cap];
  R (*invoke_)(void*, Args...) = nullptr;
  // manage(dst, src): dst != null → move src into dst then destroy src;
  // dst == null → destroy src.
  void (*manage_)(void*, void*) = nullptr;
};

}  // namespace sihle::util
