// Discrete Zipfian rank generator for skewed key streams.
//
// P(rank r) ∝ 1/(r+1)^s over ranks [0, n); s = 0 degenerates to uniform,
// s ≈ 1 is the classic web/caching skew.  Workload-agnostic: the closed-loop
// sharded workload (harness/shard_workload.h) draws per-op keys from it, and
// the open-system load generator (service/dispatcher.h) draws per-request
// keys from it — key popularity concentrates load on the shards owning hot
// keys, which is both the load-imbalance signal figshard_scaling sweeps and
// the hot-key tail-latency signal figservice_tail sweeps.
//
// Construction is O(n) (one cumulative table); a draw is one rng draw plus
// a binary search — the rng draw *count* per call is exactly one, so
// schedules that interleave zipf draws with other per-thread rng use stay a
// pure function of the seed regardless of skew.
#pragma once

#include <cassert>
#include <cmath>
#include <cstddef>
#include <vector>

#include "sim/rng.h"

namespace sihle::util {

class Zipf {
 public:
  Zipf(std::size_t n, double s) : cdf_(n) {
    assert(n > 0);
    double sum = 0.0;
    for (std::size_t r = 0; r < n; ++r) {
      sum += 1.0 / std::pow(static_cast<double>(r + 1), s);
      cdf_[r] = sum;
    }
    for (double& c : cdf_) c /= sum;
    cdf_.back() = 1.0;  // guard the tail against fp round-down
  }

  std::size_t n() const { return cdf_.size(); }

  // Probability mass of a single rank (for host-side load accounting).
  double mass(std::size_t rank) const {
    assert(rank < cdf_.size());
    return rank == 0 ? cdf_[0] : cdf_[rank] - cdf_[rank - 1];
  }

  // Rank in [0, n); rank 0 is the hottest.  Consumes exactly one rng draw.
  std::size_t draw(sim::Rng& rng) const {
    const double u = rng.uniform();
    std::size_t lo = 0;
    std::size_t hi = cdf_.size() - 1;
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      if (cdf_[mid] <= u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

 private:
  std::vector<double> cdf_;  // cdf_[r] = P(rank <= r)
};

}  // namespace sihle::util
