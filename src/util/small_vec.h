// SmallVec<T, N>: a vector with N elements of inline storage.
//
// The simulator's steady-state path (one simulation event) must not touch
// the heap (docs/PERFORMANCE.md).  Per-transaction bookkeeping — read/write
// line sets, the staged write buffer, undo/retire action lists — lives in
// SmallVecs sized for typical transaction footprints: short transactions
// stay entirely inline, and clear() keeps whatever heap capacity a large
// transaction did force, so a long-lived TxContext allocates at most a few
// times over a whole run.
//
// Supported operations are the subset the hot paths need (push/emplace,
// indexed access, iteration, erase, clear-retaining-capacity).  Move-only
// element types are supported; moved-from SmallVecs are empty.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <iterator>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace sihle::util {

template <typename T, std::size_t N>
class SmallVec {
  static_assert(N > 0, "inline capacity must be nonzero");

 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;

  SmallVec() = default;

  SmallVec(SmallVec&& other) noexcept { move_from(std::move(other)); }
  SmallVec& operator=(SmallVec&& other) noexcept {
    if (this != &other) {
      destroy_all();
      release_heap();
      move_from(std::move(other));
    }
    return *this;
  }

  SmallVec(const SmallVec&) = delete;
  SmallVec& operator=(const SmallVec&) = delete;

  ~SmallVec() {
    destroy_all();
    release_heap();
  }

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }
  std::size_t capacity() const { return capacity_; }

  T* data() { return data_; }
  const T* data() const { return data_; }

  iterator begin() { return data_; }
  iterator end() { return data_ + size_; }
  const_iterator begin() const { return data_; }
  const_iterator end() const { return data_ + size_; }

  std::reverse_iterator<iterator> rbegin() { return std::reverse_iterator<iterator>(end()); }
  std::reverse_iterator<iterator> rend() { return std::reverse_iterator<iterator>(begin()); }

  T& operator[](std::size_t i) {
    assert(i < size_);
    return data_[i];
  }
  const T& operator[](std::size_t i) const {
    assert(i < size_);
    return data_[i];
  }

  T& back() {
    assert(size_ > 0);
    return data_[size_ - 1];
  }

  void push_back(const T& v) { emplace_back(v); }
  void push_back(T&& v) { emplace_back(std::move(v)); }

  template <class... Args>
  T& emplace_back(Args&&... args) {
    if (size_ == capacity_) grow(capacity_ * 2);
    T* slot = ::new (static_cast<void*>(data_ + size_)) T(std::forward<Args>(args)...);
    ++size_;
    return *slot;
  }

  void pop_back() {
    assert(size_ > 0);
    --size_;
    data_[size_].~T();
  }

  // Erases the element at `pos`, preserving the order of the remainder.
  iterator erase(iterator pos) {
    assert(pos >= begin() && pos < end());
    for (iterator it = pos; it + 1 != end(); ++it) *it = std::move(*(it + 1));
    pop_back();
    return pos;
  }

  // Destroys elements but keeps the current storage (inline or heap), so a
  // hot loop that clears and refills never reallocates at steady state.
  void clear() {
    destroy_all();
    size_ = 0;
  }

  void reserve(std::size_t cap) {
    if (cap > capacity_) grow(cap);
  }

 private:
  void grow(std::size_t new_cap) {
    if (new_cap < capacity_ * 2) new_cap = capacity_ * 2;
    T* fresh = static_cast<T*>(::operator new(new_cap * sizeof(T), std::align_val_t(alignof(T))));
    for (std::size_t i = 0; i < size_; ++i) {
      ::new (static_cast<void*>(fresh + i)) T(std::move(data_[i]));
      data_[i].~T();
    }
    release_heap();
    data_ = fresh;
    capacity_ = new_cap;
  }

  void destroy_all() {
    for (std::size_t i = 0; i < size_; ++i) data_[i].~T();
  }

  void release_heap() {
    if (data_ != inline_data()) {
      ::operator delete(data_, std::align_val_t(alignof(T)));
    }
    data_ = inline_data();
    capacity_ = N;
  }

  void move_from(SmallVec&& other) noexcept {
    if (other.data_ != other.inline_data()) {
      // Steal the heap buffer.
      data_ = other.data_;
      capacity_ = other.capacity_;
      size_ = other.size_;
      other.data_ = other.inline_data();
      other.capacity_ = N;
      other.size_ = 0;
    } else {
      data_ = inline_data();
      capacity_ = N;
      size_ = other.size_;
      for (std::size_t i = 0; i < size_; ++i) {
        ::new (static_cast<void*>(data_ + i)) T(std::move(other.data_[i]));
        other.data_[i].~T();
      }
      other.size_ = 0;
    }
  }

  T* inline_data() { return reinterpret_cast<T*>(inline_storage_); }

  alignas(alignof(T)) unsigned char inline_storage_[N * sizeof(T)];
  T* data_ = inline_data();
  std::size_t size_ = 0;
  std::size_t capacity_ = N;
};

}  // namespace sihle::util
