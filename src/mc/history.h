// Transaction-history recorder for the opacity checker.
//
// An AccessObserver (analysis/hooks.h) that reconstructs, from the HTM's
// event stream, the sequence of atomic units a schedule executed:
//
//  * kHardware — one hardware transaction (XBEGIN..XEND / abort).  Read
//    accesses are recorded with the value observed; write accesses are
//    snapshotted from the staged write buffer at on_pre_commit (the hook
//    fires after every commit check passed, so pre-commit implies commit).
//    Store-to-load-forwarded and elision-illusion reads never reach the
//    observer, which is exactly right: they are self-consistent by
//    construction and carry no serializability content.
//  * kLocked — one critical section of the scenario's grouping lock
//    (on_lock_acquired..on_lock_released with a matching lock id); the
//    non-transactional accesses inside it form one atomic unit, since the
//    lock is what makes them atomic.
//  * kSingleton — a non-transactional access outside the grouping lock
//    (an atomic RMW's read+write halves pair into one unit).
//
// Only cells registered with track() participate: lock words, queue nodes
// and other synchronization cells implement atomicity rather than being
// subject to it, and must not pollute the serializability spec.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "analysis/hooks.h"
#include "htm/htm.h"
#include "mem/shared.h"

namespace sihle::mc {

class HistoryRecorder final : public analysis::AccessObserver {
 public:
  struct Access {
    bool is_write;
    const mem::RawCell* cell;
    std::uint64_t value;
  };

  struct TxRecord {
    enum class Kind : std::uint8_t { kHardware, kLocked, kSingleton };
    Kind kind;
    std::uint32_t tid = 0;
    bool committed = false;
    // Global event indices bracketing the unit, for the real-time order.
    std::uint64_t begin_idx = 0;
    std::uint64_t end_idx = 0;
    std::vector<Access> accesses;
  };

  // `grouping_lock` is the identity the scenario's critical-section lock
  // passes to Ctx::note_lock_acquired (LockAdapter::lock_id(), or the lock
  // object's address); its sections become kLocked units.  Other locks'
  // ownership events (e.g. the SCM auxiliary lock) are ignored.
  HistoryRecorder(htm::Htm& htm, const void* grouping_lock)
      : htm_(&htm), lock_(grouping_lock) {}

  // The recorder is usually installed (via TeeObserver) before the
  // scenario's locks exist — lock construction already routes sync-line
  // registration through the observer — so the grouping identity is
  // supplied afterwards.  Must be set before Machine::run.
  void set_grouping_lock(const void* lock) { lock_ = lock; }

  // Registers a data cell under `name` and captures its current committed
  // value as the initial state.  Call before Machine::run.
  void track(const mem::RawCell& cell, std::string name) {
    cells_.emplace(&cell, Info{std::move(name), cell.raw()});
  }

  const std::vector<TxRecord>& records() const { return records_; }
  bool tracked(const mem::RawCell* cell) const { return cells_.count(cell) != 0; }
  std::uint64_t initial(const mem::RawCell* cell) const {
    return cells_.at(cell).initial;
  }
  const std::string& name(const mem::RawCell* cell) const {
    return cells_.at(cell).name;
  }
  std::vector<const mem::RawCell*> tracked_cells() const {
    std::vector<const mem::RawCell*> out;
    out.reserve(cells_.size());
    for (const auto& [cell, info] : cells_) out.push_back(cell);
    return out;
  }

  // --- analysis::AccessObserver --------------------------------------------
  void on_tx_begin(std::uint32_t tid) override {
    ++now_;
    open_record(tid, TxRecord::Kind::kHardware);
  }
  void on_tx_read(std::uint32_t tid, const mem::RawCell& cell) override {
    ++now_;
    if (!tracked(&cell)) return;
    if (TxRecord* r = open(tid)) {
      // The hook fires after the load resolved, so raw() is the value read.
      r->accesses.push_back({false, &cell, cell.raw()});
    }
  }
  void on_tx_write(std::uint32_t /*tid*/, const mem::RawCell& /*cell*/) override {
    ++now_;  // staged values are snapshotted at pre-commit
  }
  void on_pre_commit(std::uint32_t tid) override {
    ++now_;
    TxRecord* r = open(tid);
    if (r == nullptr) return;
    // Every commit check has passed: the staged buffer is exactly what will
    // be published, in publication order.
    for (const auto& e : htm_->tx(tid).writes) {
      if (tracked(e.cell)) r->accesses.push_back({true, e.cell, e.staged});
    }
    close_record(tid, /*committed=*/true);
  }
  void on_rollback(std::uint32_t tid) override {
    ++now_;
    if (open(tid) != nullptr) close_record(tid, /*committed=*/false);
  }
  void on_nontx_read(std::uint32_t tid, const mem::RawCell& cell,
                     bool rmw) override {
    ++now_;
    if (!tracked(&cell)) return;
    nontx_access(tid, {false, &cell, cell.raw()}, rmw);
  }
  void on_nontx_write(std::uint32_t tid, const mem::RawCell& cell,
                      bool rmw) override {
    ++now_;
    if (!tracked(&cell)) return;
    // Fires after the store, so raw() is the value written.
    nontx_access(tid, {true, &cell, cell.raw()}, rmw);
  }
  void on_lock_acquired(std::uint32_t tid, const void* lock) override {
    ++now_;
    if (lock != lock_) return;
    open_record(tid, TxRecord::Kind::kLocked);
  }
  void on_lock_released(std::uint32_t tid, const void* lock) override {
    ++now_;
    if (lock != lock_) return;
    if (open(tid) != nullptr) close_record(tid, /*committed=*/true);
  }

 private:
  struct Info {
    std::string name;
    std::uint64_t initial;
  };

  TxRecord* open(std::uint32_t tid) {
    if (tid >= open_.size()) return nullptr;
    const int idx = open_[tid];
    return idx < 0 ? nullptr : &records_[static_cast<std::size_t>(idx)];
  }
  void open_record(std::uint32_t tid, TxRecord::Kind kind) {
    if (tid >= open_.size()) open_.resize(tid + 1, -1);
    TxRecord r;
    r.kind = kind;
    r.tid = tid;
    r.begin_idx = now_;
    open_[tid] = static_cast<int>(records_.size());
    records_.push_back(std::move(r));
  }
  void close_record(std::uint32_t tid, bool committed) {
    TxRecord* r = open(tid);
    r->committed = committed;
    r->end_idx = now_;
    open_[tid] = -1;
  }
  void nontx_access(std::uint32_t tid, Access a, bool rmw) {
    if (TxRecord* r = open(tid)) {
      // Inside a grouped critical section (or an RMW's second half).
      r->accesses.push_back(a);
      if (r->kind == TxRecord::Kind::kSingleton && (!rmw || a.is_write)) {
        close_record(tid, /*committed=*/true);
      }
      return;
    }
    // A lone access is its own atomic unit; an RMW read opens a unit that
    // the paired write closes.
    open_record(tid, TxRecord::Kind::kSingleton);
    TxRecord* r = open(tid);
    r->accesses.push_back(a);
    if (!rmw || a.is_write) close_record(tid, /*committed=*/true);
  }

  htm::Htm* htm_;
  const void* lock_;
  std::unordered_map<const mem::RawCell*, Info> cells_;
  std::vector<TxRecord> records_;
  std::vector<int> open_;  // per-tid index of the open record, -1 if none
  std::uint64_t now_ = 0;
};

}  // namespace sihle::mc
