#include "mc/explore.h"

#include <bit>
#include <stdexcept>
#include <string>

namespace sihle::mc {

bool choice_kind_from_string(std::string_view name, sim::ChoiceKind& out) {
  using sim::ChoiceKind;
  for (auto k : {ChoiceKind::kThread, ChoiceKind::kSpurious,
                 ChoiceKind::kConflictTie}) {
    if (name == to_string(k)) {
      out = k;
      return true;
    }
  }
  return false;
}

bool Explorer::dependent(std::uint32_t tid_a, const Footprint& a,
                         std::uint32_t tid_b, const Footprint& b) {
  if (tid_a == tid_b) return true;
  if ((a.writes & (b.reads | b.writes)) != 0) return true;
  if ((a.reads & b.writes) != 0) return true;
  if (((a.interact >> tid_b) & 1) != 0) return true;
  if (((b.interact >> tid_a) & 1) != 0) return true;
  return false;
}

std::uint64_t Explorer::sleep_tids(const std::vector<SleepEntry>& sleep) {
  std::uint64_t mask = 0;
  for (const auto& z : sleep) mask |= std::uint64_t{1} << z.tid;
  return mask;
}

// Sleep set for the child of the step at cur_step_: entries of the parent's
// sleep and done sets survive iff they are independent of the step the
// parent just executed (a dependent step "wakes" the slept thread — its
// reordering is no longer covered by the already-explored branch).
std::vector<Explorer::SleepEntry> Explorer::child_sleep() const {
  std::vector<SleepEntry> out;
  if (cur_step_ == kNoStep) return out;
  const Node& p = path_[cur_step_];
  auto consider = [&](const SleepEntry& z) {
    if (!dependent(z.tid, z.fp, p.chosen, p.fp)) out.push_back(z);
  };
  for (const auto& z : p.sleep) consider(z);
  for (const auto& z : p.done) consider(z);
  return out;
}

// A step whose final footprint is invisible (no shared line touched, no
// other thread doomed or woken) commutes with every other step, so its
// scheduling node is a valid singleton persistent set: mark all
// alternatives as tried without running them.  Only valid when no inner
// decision of the step still has unexplored branches (a different spurious
// or tie resolution could make the step visible).
void Explorer::finalize_step(std::size_t end_depth) {
  if (cur_step_ == kNoStep || replaying_ || !opts_.use_singleton_steps) return;
  Node& n = path_[cur_step_];
  if (std::popcount(n.tried) != 1) return;  // already branched here
  if (!n.fp.invisible()) return;
  if (std::popcount(n.options) <= 1) return;  // nothing to collapse
  for (std::size_t j = cur_step_ + 1; j < end_depth && j < path_.size(); ++j) {
    if (std::popcount(path_[j].options) > 1) return;
  }
  n.tried = n.options;
  ++stats_.singleton_commits;
}

std::uint32_t Explorer::pick_thread(std::uint64_t runnable_mask) {
  // The previous step's footprint is complete once the next scheduling
  // decision arrives.
  finalize_step(depth_);

  if (depth_ < path_.size()) {
    // Replaying the committed prefix.
    Node& n = path_[depth_];
    if (n.kind != sim::ChoiceKind::kThread) {
      throw std::logic_error("mc: replay diverged (expected thread choice)");
    }
    if (((runnable_mask >> n.chosen) & 1) == 0) {
      throw std::logic_error("mc: replay diverged (chosen thread not runnable)");
    }
    cur_step_ = depth_;
    ++depth_;
    ++steps_;
    ++stats_.transitions;
    return n.chosen;
  }

  if (steps_ >= opts_.max_steps) {
    if (!replaying_) {
      ++stats_.step_limited;
      stats_.complete = false;
    }
    throw McPrune{McPrune::Why::kStepLimit};
  }
  if (opts_.use_state_hash && !replaying_ && state_hash_) {
    const std::uint64_t h = state_hash_();
    if (!seen_hashes_.insert(h).second) {
      ++stats_.hash_pruned;
      throw McPrune{McPrune::Why::kStateHash};
    }
  }

  Node n;
  n.kind = sim::ChoiceKind::kThread;
  n.options = runnable_mask;
  if (opts_.use_sleep_sets && !replaying_) {
    n.sleep = child_sleep();
    const std::uint64_t awake = runnable_mask & ~sleep_tids(n.sleep);
    if (awake == 0) {
      // Every enabled thread is asleep: this schedule is a reordering of an
      // already-explored one.
      ++stats_.sleep_pruned;
      throw McPrune{McPrune::Why::kSleepSet};
    }
    n.chosen = static_cast<std::uint32_t>(std::countr_zero(awake));
  } else {
    n.chosen = static_cast<std::uint32_t>(std::countr_zero(runnable_mask));
  }
  n.tried = std::uint64_t{1} << n.chosen;
  path_.push_back(std::move(n));
  cur_step_ = depth_;
  ++depth_;
  ++steps_;
  ++stats_.transitions;
  return path_.back().chosen;
}

std::uint32_t Explorer::decide(sim::ChoiceKind kind, std::uint64_t options,
                               std::uint32_t default_choice) {
  if (depth_ < path_.size()) {
    Node& n = path_[depth_];
    if (n.kind != kind) {
      throw std::logic_error(std::string("mc: replay diverged (expected ") +
                             to_string(kind) + " choice)");
    }
    ++depth_;
    ++stats_.transitions;
    return n.chosen;
  }
  Node n;
  n.kind = kind;
  n.options = options;
  n.chosen = default_choice;
  n.tried = std::uint64_t{1} << default_choice;
  path_.push_back(std::move(n));
  ++depth_;
  ++stats_.transitions;
  return default_choice;
}

bool Explorer::inject_spurious(std::uint32_t tid) {
  (void)tid;
  // Choice 0 = no abort (default), choice 1 = inject; branching into the
  // injection is offered only while budget remains.
  const std::uint64_t options = spurious_left_ > 0 ? 0b11u : 0b01u;
  const std::uint32_t chosen = decide(sim::ChoiceKind::kSpurious, options, 0);
  if (chosen == 1) {
    --spurious_left_;  // also during replay: budget tracks the trace
    return true;
  }
  return false;
}

bool Explorer::resolve_conflict(std::uint32_t requestor, std::uint32_t victim,
                                std::uint32_t line) {
  (void)requestor;
  (void)victim;
  (void)line;
  // Choice 1 = requestor wins (the hardware default), choice 0 = requestor
  // loses; the latter is explored only when configured.
  const std::uint64_t options = opts_.explore_conflict_ties ? 0b11u : 0b10u;
  return decide(sim::ChoiceKind::kConflictTie, options, 1) == 1;
}

void Explorer::note_line(std::uint32_t line, bool is_write) {
  if (cur_step_ == kNoStep) return;
  Footprint& fp = path_[cur_step_].fp;
  const std::uint64_t bit = std::uint64_t{1} << (line % 64);
  if (is_write) {
    fp.writes |= bit;
  } else {
    fp.reads |= bit;
  }
}

void Explorer::note_interaction(std::uint32_t tid) {
  if (cur_step_ == kNoStep) return;
  path_[cur_step_].fp.interact |= std::uint64_t{1} << tid;
}

void Explorer::begin_run() {
  depth_ = 0;
  cur_step_ = kNoStep;
  spurious_left_ = opts_.spurious_budget;
  steps_ = 0;
}

// Moves to the next unexplored branch: flips the deepest decision with an
// untried option (kThread nodes skip slept threads) and truncates the path
// below it.  A flipped kThread node archives the explored choice — with the
// footprint its step accumulated across all inner variants — in its done
// set, feeding descendants' sleep sets.
bool Explorer::backtrack() {
  while (!path_.empty()) {
    Node& n = path_.back();
    std::uint64_t untried = n.options & ~n.tried;
    if (n.kind == sim::ChoiceKind::kThread && opts_.use_sleep_sets) {
      untried &= ~sleep_tids(n.sleep);
    }
    if (untried != 0) {
      if (n.kind == sim::ChoiceKind::kThread) {
        n.done.push_back({n.chosen, n.fp});
        n.fp = Footprint{};
      }
      n.chosen = static_cast<std::uint32_t>(std::countr_zero(untried));
      n.tried |= std::uint64_t{1} << n.chosen;
      return true;
    }
    path_.pop_back();
  }
  return false;
}

McStats Explorer::explore(const std::function<void(Explorer&)>& run_one) {
  stats_ = McStats{};
  path_.clear();
  seen_hashes_.clear();
  replaying_ = false;
  for (;;) {
    if (stats_.runs + stats_.sleep_pruned + stats_.hash_pruned +
            stats_.step_limited >=
        opts_.max_runs) {
      stats_.complete = false;
      break;
    }
    begin_run();
    try {
      run_one(*this);
      finalize_step(path_.size());
      ++stats_.runs;
    } catch (const McPrune&) {
      // Schedule cut mid-run; the counters were bumped at the throw site.
    }
    if (!backtrack()) break;
  }
  return stats_;
}

void Explorer::replay(const ChoiceTrace& trace,
                      const std::function<void(Explorer&)>& run_one) {
  path_.clear();
  path_.reserve(trace.size());
  for (const Choice& c : trace) {
    Node n;
    n.kind = c.kind;
    n.chosen = c.chosen;
    n.options = std::uint64_t{1} << c.chosen;
    n.tried = n.options;
    path_.push_back(std::move(n));
  }
  replaying_ = true;
  begin_run();
  try {
    run_one(*this);
  } catch (...) {
    replaying_ = false;
    throw;
  }
  replaying_ = false;
}

ChoiceTrace Explorer::trace() const {
  ChoiceTrace t;
  const std::size_t n = depth_ < path_.size() ? depth_ : path_.size();
  t.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    t.push_back({path_[i].kind, path_[i].chosen});
  }
  return t;
}

}  // namespace sihle::mc
