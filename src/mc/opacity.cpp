#include "mc/opacity.h"

#include <algorithm>
#include <sstream>
#include <unordered_map>

namespace sihle::mc {
namespace {

using TxRecord = HistoryRecorder::TxRecord;
using Mem = std::unordered_map<const mem::RawCell*, std::uint64_t>;

Mem initial_memory(const HistoryRecorder& hist) {
  Mem m;
  for (const mem::RawCell* cell : hist.tracked_cells()) {
    m.emplace(cell, hist.initial(cell));
  }
  return m;
}

// Replays one unit against `m` in program order: reads must match the
// current value, writes update it.  On a read mismatch, reports the cell
// and leaves `m` partially updated (callers copy first).
bool apply(const TxRecord& r, Mem& m, const mem::RawCell** bad_cell) {
  for (const auto& a : r.accesses) {
    auto it = m.find(a.cell);
    if (a.is_write) {
      it->second = a.value;
    } else if (it->second != a.value) {
      if (bad_cell != nullptr) *bad_cell = a.cell;
      return false;
    }
  }
  return true;
}

struct Search {
  const std::vector<TxRecord>* records;
  const std::vector<std::size_t>* committed;  // indices into records
  std::size_t expansions = 0;
  std::size_t budget = 0;
  bool clipped = false;

  bool spend() {
    if (++expansions > budget) {
      clipped = true;
      return false;
    }
    return true;
  }

  // `i` may be placed next only if no other unplaced unit really finished
  // before it began (real-time order).
  bool placeable(std::size_t i, const std::vector<bool>& placed) const {
    const TxRecord& ri = (*records)[(*committed)[i]];
    for (std::size_t j = 0; j < committed->size(); ++j) {
      if (j == i || placed[j]) continue;
      const TxRecord& rj = (*records)[(*committed)[j]];
      if (rj.end_idx < ri.begin_idx) return false;
    }
    return true;
  }

  // Finds a full serial witness over the committed units.
  bool witness_dfs(std::vector<bool>& placed, std::size_t n_placed, Mem& m,
                   std::vector<std::size_t>& order) {
    if (n_placed == committed->size()) return true;
    for (std::size_t i = 0; i < committed->size(); ++i) {
      if (placed[i] || !placeable(i, placed)) continue;
      if (!spend()) return false;
      Mem copy = m;
      if (!apply((*records)[(*committed)[i]], copy, nullptr)) continue;
      placed[i] = true;
      order.push_back((*committed)[i]);
      if (witness_dfs(placed, n_placed + 1, copy, order)) {
        m = std::move(copy);
        return true;
      }
      placed[i] = false;
      order.pop_back();
      if (clipped) return false;
    }
    return false;
  }

  // True iff some reachable state of a serial execution of committed units
  // (including intermediate prefixes, downward-closed under real time)
  // satisfies every read in `reads`.
  bool prefix_dfs(std::vector<bool>& placed, const Mem& m,
                  const std::vector<HistoryRecorder::Access>& reads) {
    bool ok = true;
    for (const auto& a : reads) {
      if (a.is_write) continue;
      if (m.at(a.cell) != a.value) {
        ok = false;
        break;
      }
    }
    if (ok) return true;
    for (std::size_t i = 0; i < committed->size(); ++i) {
      if (placed[i] || !placeable(i, placed)) continue;
      if (!spend()) return false;
      Mem copy = m;
      if (!apply((*records)[(*committed)[i]], copy, nullptr)) continue;
      placed[i] = true;
      if (prefix_dfs(placed, copy, reads)) {
        placed[i] = false;
        return true;
      }
      placed[i] = false;
      if (clipped) return false;
    }
    return false;
  }
};

const char* kind_name(TxRecord::Kind k) {
  switch (k) {
    case TxRecord::Kind::kHardware:
      return "tx";
    case TxRecord::Kind::kLocked:
      return "locked-cs";
    case TxRecord::Kind::kSingleton:
      return "singleton";
  }
  return "?";
}

void describe_record(std::ostringstream& os, const HistoryRecorder& hist,
                     const TxRecord& r) {
  os << "T" << r.tid << " " << kind_name(r.kind) << "[";
  bool first = true;
  for (const auto& a : r.accesses) {
    if (!first) os << " ";
    first = false;
    os << (a.is_write ? "W " : "R ") << hist.name(a.cell) << "=" << a.value;
  }
  os << "]";
}

}  // namespace

OpacityResult check_opacity(const HistoryRecorder& hist,
                            const OpacityOptions& opts) {
  OpacityResult res;
  const auto& records = hist.records();

  std::vector<std::size_t> committed;
  for (std::size_t i = 0; i < records.size(); ++i) {
    if (records[i].committed && !records[i].accesses.empty()) {
      committed.push_back(i);
    }
  }
  // Commit order respects real time by construction (end_idx sorted).
  std::sort(committed.begin(), committed.end(),
            [&](std::size_t a, std::size_t b) {
              return records[a].end_idx < records[b].end_idx;
            });

  Search search{&records, &committed, 0, opts.max_expansions, false};

  // Fast path: replay in commit order.
  {
    Mem m = initial_memory(hist);
    bool ok = true;
    for (std::size_t i : committed) {
      const mem::RawCell* bad = nullptr;
      Mem copy = m;
      if (!apply(records[i], copy, &bad)) {
        ok = false;
        res.blamed_record = i;
        res.blamed_cell = bad;
        break;
      }
      m = std::move(copy);
      res.witness.push_back(i);
    }
    if (!ok) {
      // Commit order fails; search the full order space.
      res.witness.clear();
      std::vector<bool> placed(committed.size(), false);
      Mem fresh = initial_memory(hist);
      if (!search.witness_dfs(placed, 0, fresh, res.witness)) {
        res.witness.clear();
        res.serializable = false;
      }
    }
  }

  // Aborted hardware transactions: every read set must match a reachable
  // serial state.  Only meaningful when the committed part has a witness.
  if (res.serializable && !search.clipped) {
    for (std::size_t i = 0; i < records.size(); ++i) {
      const TxRecord& r = records[i];
      if (r.committed || r.kind != TxRecord::Kind::kHardware) continue;
      bool has_read = false;
      for (const auto& a : r.accesses) has_read |= !a.is_write;
      if (!has_read) continue;
      std::vector<bool> placed(committed.size(), false);
      Mem m = initial_memory(hist);
      if (!search.prefix_dfs(placed, m, r.accesses)) {
        if (search.clipped) break;
        res.inconsistent_aborted.push_back(i);
      }
    }
  }
  res.search_clipped = search.clipped;

  std::ostringstream os;
  if (!res.serializable) {
    os << "no serial witness for committed history:";
    for (std::size_t i : committed) {
      os << " ";
      describe_record(os, hist, records[i]);
    }
  } else {
    os << "witness:";
    for (std::size_t i : res.witness) {
      os << " ";
      describe_record(os, hist, records[i]);
    }
    for (std::size_t i : res.inconsistent_aborted) {
      os << " | inconsistent aborted ";
      describe_record(os, hist, records[i]);
    }
  }
  if (res.search_clipped) os << " | SEARCH CLIPPED (no verdict)";
  res.explanation = os.str();
  return res;
}

}  // namespace sihle::mc
