#include "mc/hazard.h"

#include "elision/policy.h"

namespace sihle::mc {
namespace {

using elision::SubscribeKind;
using htm::AbortStatus;
using htm::SlrHazard;

// Functor wrapper so the probe can be handed to run_slr by value without a
// coroutine-lambda lifetime hazard (the coroutine function's parameters
// capture; see Machine::spawn's contract).
struct ProbeBody {
  HazardLock* lock;
  mem::Shared<std::uint64_t>* x;
  mem::Shared<std::uint64_t>* y;
  SlrHazard hazard;
  bool* torn;
  sim::Task<void> operator()(Ctx& c) const {
    return hazard_probe(c, *lock, *x, *y, hazard, torn);
  }
};

// Transaction body for the kEarlyCommit hazard: Figure 5's body, except the
// lazy end-of-body lock check is reachable only when the snapshot was
// consistent — a torn snapshot "jumps" straight to XEND.
sim::Task<void> early_commit_tx_body(Ctx& c, HazardLock& lock, ProbeBody& body,
                                     SubscribeKind subscribe, bool* torn) {
  bool armed = false;
  if (subscribe == SubscribeKind::kCommitChecked) {
    armed = lock.commit_subscribe(c);
  }
  co_await body(c);
  if (*torn) co_return;  // corrupted control flow: straight to XEND
  if (!armed) {
    const bool locked = co_await lock.is_locked(c);
    if (locked) c.xabort(runtime::kAbortCodeLockBusy);
  }
}

// SLR attempt loop for the kEarlyCommit hazard: identical to run_slr except
// that the lazy end-of-body lock check is skipped when the body observed a
// torn snapshot — modelling corrupted control flow jumping straight to
// XEND.  Commit-checked subscription, being architectural, still applies.
sim::Task<void> run_slr_early_commit(Ctx& c, HazardLock& lock, ProbeBody body,
                                     stats::OpStats& st,
                                     SubscribeKind subscribe, bool* torn) {
  st.arrivals++;
  int attempts = 0;
  for (;;) {
    const AbortStatus s = co_await c.with_tx([&]() -> sim::Task<void> {
      return early_commit_tx_body(c, lock, body, subscribe, torn);
    });
    if (s.ok()) {
      st.spec_commits++;
      co_return;
    }
    st.record_abort(s);
    ++attempts;
    if (!s.retry || attempts >= 2) break;
  }
  co_await elision::detail::run_nonspec(c, lock, body, st);
}

}  // namespace

sim::Task<void> hazard_updater(Ctx& c, HazardLock& lock,
                               mem::Shared<std::uint64_t>& x,
                               mem::Shared<std::uint64_t>& y) {
  co_await lock.acquire(c);
  co_await c.store(x, std::uint64_t{1});
  co_await c.store(y, std::uint64_t{1});
  co_await lock.release(c);
}

sim::Task<void> hazard_probe(Ctx& c, HazardLock& lock,
                             mem::Shared<std::uint64_t>& x,
                             mem::Shared<std::uint64_t>& y,
                             htm::SlrHazard hazard, bool* torn) {
  const std::uint64_t vx = co_await c.load(x);
  const std::uint64_t vy = co_await c.load(y);
  *torn = vx != vy;
  if (*torn && hazard == htm::SlrHazard::kWildStore) {
    // The zombie's corrupted continuation: a store through a garbage
    // address that lands on the lock line, with a garbage value equal to
    // the lock's free state.  The lazy subscription check that run_slr
    // performs next is an ordinary transactional load of this same word, so
    // store-to-load forwarding serves it this staged 0: lock "free",
    // transaction commits the torn computation.
    co_await c.store(lock.word(), std::uint64_t{0});
  }
}

sim::Task<void> hazard_victim(Ctx& c, HazardLock& lock,
                              mem::Shared<std::uint64_t>& x,
                              mem::Shared<std::uint64_t>& y,
                              htm::SlrHazard hazard,
                              elision::SubscribeKind subscribe,
                              stats::OpStats& st) {
  bool torn = false;
  ProbeBody body{&lock, &x, &y, hazard, &torn};
  if (hazard == htm::SlrHazard::kEarlyCommit) {
    co_await run_slr_early_commit(c, lock, body, st, subscribe, &torn);
  } else {
    co_await elision::run_slr(c, lock, body, st, /*max_retries=*/2,
                              /*honor_retry_bit=*/true, /*backoff=*/{},
                              subscribe);
  }
}

}  // namespace sihle::mc
