// Bounded model checker: exhaustive schedule exploration over the
// deterministic simulator.
//
// The simulator resolves three kinds of nondeterminism — which runnable
// thread performs the next event, whether a transactional access aborts
// spuriously, and which side wins conflict arbitration.  With a
// sim::ChoicePoint hook installed (sim/choice.h) every such decision is
// delegated; the Explorer here implements the hook as a stateless
// depth-first enumerator: each schedule is a fresh run of the scenario that
// replays the recorded decision prefix and extends it with default
// resolutions, and backtracking flips the deepest non-exhausted decision.
// Determinism of the simulator makes replay exact, so no simulator state is
// ever checkpointed.
//
// Partial-order reduction (docs/VERIFICATION.md):
//  * sleep sets (Godefroid) — after a thread's step is fully explored at a
//    node, sibling branches carry it in their sleep set until a dependent
//    step executes; schedules whose every enabled thread is asleep are cut.
//    Sound: at least one representative per Mazurkiewicz trace survives,
//    and the per-schedule checks (opacity, lockset, final state) are
//    invariant under commuting independent steps.
//  * invisible-step commitment — a step that touched no shared line and
//    affected no other thread is independent of everything, so its choice
//    node is a singleton persistent set: alternatives at that node are
//    dropped without being run.
//  * optional, approximate state-hash pruning — see McOptions.
//
// Dependence between steps comes from the hook's note_line/note_interaction
// feed: 64-bit line masks (bit = line mod 64) whose collisions
// over-approximate dependence — the sound direction.
#pragma once

#include <cstdint>
#include <functional>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "sim/choice.h"

namespace sihle::mc {

// Thrown from inside a run to cut the remainder of a schedule (sleep-set,
// state-hash, or step-limit pruning).  pick_thread is invoked from the
// executor's top-level run loop — never from inside a coroutine frame — so
// the throw unwinds cleanly out of Machine::run and is caught by
// Explorer::explore.  Scenario code must not swallow it.
struct McPrune {
  enum class Why : std::uint8_t { kSleepSet, kStateHash, kStepLimit };
  Why why;
};

// One recorded decision; a schedule is the sequence of these.
struct Choice {
  sim::ChoiceKind kind;
  std::uint32_t chosen;
  friend bool operator==(const Choice&, const Choice&) = default;
};
using ChoiceTrace = std::vector<Choice>;

// Inverse of sim::to_string(ChoiceKind); nullopt-free: returns false on an
// unknown name (parser use, see stats::McChoiceRec).
bool choice_kind_from_string(std::string_view name, sim::ChoiceKind& out);

struct McOptions {
  // kThread decisions allowed per schedule before the run is cut (and the
  // result marked incomplete): the "bounded" in bounded model checking.
  std::uint64_t max_steps = 20000;
  // Spurious aborts the explorer may inject per schedule.  Injection points
  // branch only while budget remains; 0 keeps spurious aborts off entirely.
  int spurious_budget = 0;
  // Also explore the requestor-loses resolution of conflict arbitration
  // (the hardware's requestor-wins policy is always the default branch).
  bool explore_conflict_ties = false;
  // Sleep-set partial-order reduction (sound; see header comment).
  bool use_sleep_sets = true;
  // Invisible-step singleton commitment (sound; see header comment).
  bool use_singleton_steps = true;
  // Approximate state-hash pruning: cut a schedule whenever the
  // caller-supplied fingerprint (set_state_hash) was seen before.  OFF by
  // default and excluded from the soundness story: fingerprint collisions —
  // and the known unsound interaction between state caching and sleep sets —
  // can prune behaviour that was never explored.  A scalability escape
  // hatch for sweeps, not for proofs.
  bool use_state_hash = false;
  // Backstop against runaway exploration; hitting it marks the result
  // incomplete instead of looping forever.
  std::uint64_t max_runs = 2'000'000;
};

struct McStats {
  std::uint64_t runs = 0;              // complete schedules executed
  std::uint64_t transitions = 0;       // decisions taken, all kinds
  std::uint64_t sleep_pruned = 0;      // schedules cut by sleep sets
  std::uint64_t singleton_commits = 0; // branch points collapsed (invisible)
  std::uint64_t hash_pruned = 0;       // schedules cut by the state hash
  std::uint64_t step_limited = 0;      // schedules cut by max_steps
  // False when max_runs or max_steps clipped the space: the verdict is then
  // "no violation found within the bound", not a proof.
  bool complete = true;
};

class Explorer final : public sim::ChoicePoint {
 public:
  explicit Explorer(McOptions opts = {}) : opts_(opts) {}

  // Exhaustively enumerates schedules: calls run_one(*this) once per
  // schedule until the decision tree is exhausted.  run_one must build a
  // fresh, deterministic scenario, install this explorer on both the
  // executor and the HTM (Executor::set_choice_point, Htm::set_choice_point),
  // run it to completion, and perform its per-schedule checking.  McPrune
  // must be allowed to escape run_one.
  McStats explore(const std::function<void(Explorer&)>& run_one);

  // Deterministically re-executes one recorded schedule (counterexample
  // reproduction).  Decisions beyond the trace take default resolutions; a
  // decision whose kind diverges from the recording throws std::logic_error.
  void replay(const ChoiceTrace& trace,
              const std::function<void(Explorer&)>& run_one);

  // The decision sequence of the schedule just executed — the replayable
  // counterexample trace.  Valid between run_one returning and the next run.
  ChoiceTrace trace() const;

  // Caller-supplied state fingerprint for use_state_hash; re-register from
  // run_one each schedule (it must read the *current* scenario's state).
  void set_state_hash(std::function<std::uint64_t()> fn) {
    state_hash_ = std::move(fn);
  }

  const McOptions& options() const { return opts_; }
  const McStats& stats() const { return stats_; }

  // --- sim::ChoicePoint ----------------------------------------------------
  std::uint32_t pick_thread(std::uint64_t runnable_mask) override;
  bool inject_spurious(std::uint32_t tid) override;
  bool resolve_conflict(std::uint32_t requestor, std::uint32_t victim,
                        std::uint32_t line) override;
  void note_line(std::uint32_t line, bool is_write) override;
  void note_interaction(std::uint32_t tid) override;

 private:
  // Read/write/interaction summary of one executed step — the independence
  // relation's input.  Line sets are 64-bit masks (bit = line mod 64);
  // collisions over-approximate dependence, which is sound.
  struct Footprint {
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t interact = 0;  // tids doomed or woken by the step
    bool invisible() const { return (reads | writes | interact) == 0; }
  };

  // Steps are dependent iff they belong to the same thread, their line
  // footprints conflict (either's writes meet the other's reads or writes),
  // or either step doomed/woke the other's thread.
  static bool dependent(std::uint32_t tid_a, const Footprint& a,
                        std::uint32_t tid_b, const Footprint& b);

  struct SleepEntry {
    std::uint32_t tid;
    Footprint fp;
  };

  struct Node {
    sim::ChoiceKind kind;
    std::uint32_t chosen = 0;
    std::uint64_t options = 0;  // bit per available resolution
    std::uint64_t tried = 0;    // resolutions explored or in progress
    // kThread bookkeeping.  fp is the executed step's footprint, unioned
    // over inner (spurious / tie) variants of the same scheduling choice.
    Footprint fp;
    std::vector<SleepEntry> sleep;  // sleep set on entry to this node
    std::vector<SleepEntry> done;   // fully explored sibling choices
  };

  void begin_run();
  bool backtrack();  // advance to the next unexplored branch; false = done
  std::uint32_t decide(sim::ChoiceKind kind, std::uint64_t options,
                       std::uint32_t default_choice);
  // Completes the step started at cur_step_ (its footprint is final once
  // the next scheduling decision — or the run's end — arrives).
  void finalize_step(std::size_t end_depth);
  std::vector<SleepEntry> child_sleep() const;
  static std::uint64_t sleep_tids(const std::vector<SleepEntry>& sleep);

  static constexpr std::size_t kNoStep = static_cast<std::size_t>(-1);

  McOptions opts_;
  std::function<std::uint64_t()> state_hash_;
  std::vector<Node> path_;
  std::size_t depth_ = 0;         // next decision index in the current run
  std::size_t cur_step_ = kNoStep;  // node whose step is currently executing
  int spurious_left_ = 0;
  std::uint64_t steps_ = 0;       // kThread decisions this run
  std::unordered_set<std::uint64_t> seen_hashes_;
  McStats stats_;
  bool replaying_ = false;
};

}  // namespace sihle::mc
