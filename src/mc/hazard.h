// Lazy-subscription hazard harness: concrete scenario pieces that let the
// model checker exhibit the SLR failure modes named in htm/hazard.h as
// replayable counterexamples, and prove slr:subscribe=commit-checked closes
// them.
//
// The scenario is the classic two-thread straddle.  T0 runs a plain locked
// update of two words (x then y, so x==y in every lock-respecting
// execution).  T1 runs an SLR attempt whose body reads both words; a
// schedule that lands T1's reads between T0's two stores hands T1 the torn
// snapshot x != y — a state no serial execution produces.  Under correct
// eager subscription T1 would have been doomed before the straddle; under
// lazy subscription T1 is a live zombie, and what the zombie's corrupted
// continuation does next is the hazard:
//
//  * kWildStore — the garbage address it stores through happens to be the
//    lock word, and the garbage value happens to be the lock's free value.
//    Nothing else needs to go wrong: the lazy end-of-body check is a plain
//    transactional load of the lock word, so it is store-to-load forwarded
//    from the zombie's own staged store, sees "free", and the transaction
//    commits the torn computation — T1 is never even doomed, because its
//    read set {x} is untouched once the straddle completes before T0's y
//    store.
//  * kEarlyCommit — the corrupted control flow jumps past the lazy check
//    altogether (an indirect branch through clobbered state landing on
//    XEND).  Modelled by a runner that skips the end-of-body check exactly
//    when the body observed torn state.
//
// Under SubscribeKind::kCommitChecked the subscription is architectural
// (Htm::set_commit_subscription, armed at XBEGIN): commit itself refuses
// the wild store (kAbortCodeSubscriptionWildStore) and re-reads the lock
// word from memory, immune to both forwarding and control-flow corruption.
#pragma once

#include <cstdint>

#include "elision/policy.h"
#include "htm/hazard.h"
#include "mc/history.h"
#include "runtime/ctx.h"
#include "runtime/machine.h"
#include "sim/task.h"
#include "stats/op_stats.h"

namespace sihle::mc {

using runtime::Ctx;

// Minimal TTAS lock that exposes its word, so the hazard body can address
// a "wild" store at the lock line (the production locks keep their words
// private, as they should).  Satisfies the lock concept the SLR runners
// need: acquire/release/is_locked/commit_subscribe.
class HazardLock {
 public:
  explicit HazardLock(runtime::Machine& m) : line_(m), word_(line_.line(), 0) {
    m.note_sync_line(line_.line());
  }

  static constexpr bool kHleArrivalWaits = true;
  static constexpr bool kFair = false;
  static constexpr const char* kName = "hazard-ttas";

  mem::Shared<std::uint64_t>& word() { return word_; }

  sim::Task<void> acquire(Ctx& c) {
    for (;;) {
      co_await runtime::spin_until(c, word_,
                                   [](std::uint64_t v) { return v == 0; });
      const std::uint64_t old = co_await c.exchange(word_, std::uint64_t{1});
      if (old == 0) {
        c.note_lock_acquired(this);
        co_return;
      }
    }
  }
  sim::Task<void> release(Ctx& c) {
    co_await c.store(word_, std::uint64_t{0});
    c.note_lock_released(this);
  }
  sim::Task<bool> is_locked(Ctx& c) {
    const std::uint64_t v = co_await c.load(word_);
    co_return v != 0;
  }
  bool commit_subscribe(Ctx& c) {
    c.set_commit_subscription(word_, std::uint64_t{0});
    return true;
  }
  bool debug_locked() const { return word_.debug_value() != 0; }

 private:
  runtime::LineHandle line_;
  mem::Shared<std::uint64_t> word_;
};

// T0: the lock-respecting updater.  Establishes the invariant that x and y
// are never observably unequal.
sim::Task<void> hazard_updater(Ctx& c, HazardLock& lock,
                               mem::Shared<std::uint64_t>& x,
                               mem::Shared<std::uint64_t>& y);

// T1's transaction body: reads both words; on a torn snapshot, enacts the
// kWildStore corruption (see header comment).  `torn` is set either way so
// the kEarlyCommit runner can condition its control flow on it.
sim::Task<void> hazard_probe(Ctx& c, HazardLock& lock,
                             mem::Shared<std::uint64_t>& x,
                             mem::Shared<std::uint64_t>& y,
                             htm::SlrHazard hazard, bool* torn);

// T1: the zombie-prone SLR attempt.  For kWildStore this is the stock
// run_slr (the genuine lazy check is what gets fooled); for kEarlyCommit a
// local SLR loop whose lazy check is skipped when the body saw torn state.
// `subscribe` selects the protection under test.
sim::Task<void> hazard_victim(Ctx& c, HazardLock& lock,
                              mem::Shared<std::uint64_t>& x,
                              mem::Shared<std::uint64_t>& y,
                              htm::SlrHazard hazard,
                              elision::SubscribeKind subscribe,
                              stats::OpStats& st);

}  // namespace sihle::mc
