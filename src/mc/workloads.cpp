#include "mc/workloads.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "analysis/hooks.h"
#include "analysis/lockset.h"
#include "elision/elided_lock.h"
#include "elision/registry.h"
#include "elision/scm_grouped.h"
#include "mc/hazard.h"
#include "mc/history.h"
#include "mc/opacity.h"
#include "runtime/ctx.h"
#include "runtime/machine.h"

namespace sihle::mc {
namespace {

using elision::ElidedLock;
using elision::Policy;
using runtime::Ctx;
using runtime::Machine;

using U64Cell = mem::Shared<std::uint64_t>;

// The coupled-increment critical-section body: every lock-respecting
// serialization keeps x == y.
sim::Task<void> coupled_increment(Ctx& c, U64Cell& x, U64Cell& y) {
  const std::uint64_t vx = co_await c.load(x);
  const std::uint64_t vy = co_await c.load(y);
  co_await c.store(x, vx + 1);
  co_await c.store(y, vy + 1);
}

struct IncBody {
  U64Cell* x;
  U64Cell* y;
  sim::Task<void> operator()(Ctx& c) const {
    return coupled_increment(c, *x, *y);
  }
};

sim::Task<void> scheme_worker(Ctx& c, Policy p, ElidedLock& lock, U64Cell& x,
                              U64Cell& y, int ops, stats::OpStats& st) {
  for (int i = 0; i < ops; ++i) {
    co_await elision::run_cs(p, c, lock, IncBody{&x, &y}, st);
  }
}

// Read-only body for the reader/writer scenario: every consistent snapshot
// has x == y (the writer keeps them coupled), so a torn observation that
// commits surfaces via the opacity checker — no in-body assertion needed.
sim::Task<void> coupled_read(Ctx& c, U64Cell& x, U64Cell& y) {
  const std::uint64_t vx = co_await c.load(x);
  const std::uint64_t vy = co_await c.load(y);
  (void)vx;
  (void)vy;
}

struct ReadBody {
  U64Cell* x;
  U64Cell* y;
  sim::Task<void> operator()(Ctx& c) const { return coupled_read(c, *x, *y); }
};

sim::Task<void> reader_worker(Ctx& c, Policy p, ElidedLock& lock, U64Cell& x,
                              U64Cell& y, int ops, stats::OpStats& st) {
  for (int i = 0; i < ops; ++i) {
    co_await elision::run_cs(p, c, lock, ReadBody{&x, &y}, st);
  }
}

sim::Task<void> grouped_worker(Ctx& c, locks::TTASLock& main,
                               elision::GroupedAux& aux,
                               elision::ScmFlavor flavor, U64Cell& x, U64Cell& y,
                               int ops, stats::OpStats& st) {
  for (int i = 0; i < ops; ++i) {
    co_await elision::run_scm_grouped(c, main, aux, IncBody{&x, &y}, st, flavor,
                                      /*max_retries=*/2);
  }
}

// Per-schedule judging shared by all scenarios: opacity over the recorded
// history, the lockset checker's report, final-state validation, deadlock.
struct Judge {
  McScenarioResult* out;
  const ScenarioOptions* so;
  std::string scheme;
  std::string lock;
  std::string workload;

  void operator()(Explorer& ex, const HistoryRecorder& rec,
                  analysis::LocksetChecker* checker, bool deadlocked,
                  const std::string& final_err) const {
    bool bad = false;
    auto violation = [&](stats::Finding f, const std::string& witness) {
      bad = true;
      record(ex, f, witness);
      out->findings.add(std::move(f));
    };

    if (deadlocked) {
      violation({stats::FindingKind::kMcDeadlock, 0, 0,
                 "no runnable thread under this schedule"},
                "");
    } else {
      const OpacityResult res = check_opacity(rec);
      if (res.search_clipped) {
        out->findings.add({stats::FindingKind::kMcStepLimit, 0, 0,
                           "opacity witness search clipped: no verdict"});
      } else {
        if (!res.serializable) {
          stats::Finding f;
          f.kind = stats::FindingKind::kMcNonSerializableCommit;
          f.line = res.blamed_cell != nullptr ? res.blamed_cell->line() : 0;
          f.thread = rec.records()[res.blamed_record].tid;
          f.detail = "committed history admits no serial witness";
          violation(std::move(f), res.explanation);
        }
        for (std::size_t i : res.inconsistent_aborted) {
          const auto& r = rec.records()[i];
          stats::Finding f;
          f.kind = stats::FindingKind::kMcInconsistentAbortedRead;
          for (const auto& a : r.accesses) {
            if (!a.is_write) {
              f.line = a.cell->line();
              break;
            }
          }
          f.thread = r.tid;
          f.detail = "aborted transaction observed a torn snapshot";
          violation(std::move(f), res.explanation);
        }
      }
      if (!final_err.empty()) {
        violation({stats::FindingKind::kMcNonSerializableCommit, 0, 0,
                   final_err},
                  final_err);
      }
    }
    if (checker != nullptr) {
      for (const stats::Finding& f : checker->report().findings()) {
        violation(f, "lockset checker finding");
      }
    }
    if (bad) ++out->bad_schedules;
  }

  void record(Explorer& ex, const stats::Finding& f,
              const std::string& witness) const {
    stats::McCounterexample cx;
    cx.scheme = scheme;
    cx.lock = lock;
    cx.workload = workload;
    cx.finding = f;
    cx.witness = witness;
    cx.trace = recs_from_trace(ex.trace());
    auto& v = out->counterexamples;
    v.push_back(std::move(cx));
    // Keep the shortest schedules (stable: first-found wins among equals).
    std::stable_sort(v.begin(), v.end(),
                     [](const stats::McCounterexample& a,
                        const stats::McCounterexample& b) {
                       return a.trace.size() < b.trace.size();
                     });
    if (v.size() > so->max_counterexamples) v.resize(so->max_counterexamples);
  }
};

Machine::Config machine_config(const ScenarioOptions& so) {
  Machine::Config mcfg;
  mcfg.seed = 1;
  mcfg.htm = so.htm;
  // The lockset checker runs under every explored schedule; findings are
  // collected, never fatal (the explorer owns the verdict).
  mcfg.analysis.enabled = true;
  mcfg.analysis.fatal = false;
  return mcfg;
}

std::string final_state_error(std::uint64_t x, std::uint64_t y,
                              std::uint64_t expect) {
  if (x == expect && y == expect) return {};
  std::ostringstream os;
  os << "final state x=" << x << " y=" << y << " != expected " << expect
     << " (lost or torn update)";
  return os.str();
}

// One schedule of the registry-driven two-thread scenario.  With
// `read_only_t1` thread 1 runs the read-only body instead, and the expected
// final state counts only thread 0's increments.
void run_scheme_schedule(Explorer& ex, const Policy& p0, const Policy& p1,
                         locks::LockKind kind, const ScenarioOptions& so,
                         const Judge& judge, bool read_only_t1 = false) {
  Machine m(machine_config(so));
  m.exec().set_choice_point(&ex);
  m.htm().set_choice_point(&ex);
  HistoryRecorder rec(m.htm(), nullptr);
  analysis::TeeObserver tee(m.analysis(), &rec);
  m.htm().set_observer(&tee);

  ElidedLock lock = elision::make_elided_lock(m, kind, p0);
  rec.set_grouping_lock(lock.main().lock_id());
  runtime::LineHandle lx(m);
  U64Cell x(lx.line(), 0);
  runtime::LineHandle ly(m);
  U64Cell y(ly.line(), 0);
  rec.track(x, "x");
  rec.track(y, "y");

  stats::OpStats st;
  m.spawn([&](Ctx& c) {
    return scheme_worker(c, p0, lock, x, y, so.ops0, st);
  });
  m.spawn([&](Ctx& c) {
    if (read_only_t1) return reader_worker(c, p1, lock, x, y, so.ops1, st);
    return scheme_worker(c, p1, lock, x, y, so.ops1, st);
  });
  if (so.mc.use_state_hash) {
    ex.set_state_hash([&] {
      std::uint64_t h = 0;
      auto mix = [&h](std::uint64_t v) {
        h ^= (v + 0x9E3779B97F4A7C15ULL) + (h << 6) + (h >> 2);
      };
      mix(x.raw());
      mix(y.raw());
      mix(lock.main().debug_locked() ? 1 : 0);
      mix(lock.aux().debug_locked() ? 1 : 0);
      mix(m.htm().in_tx(0) ? 1 : 0);
      mix(m.htm().in_tx(1) ? 1 : 0);
      return h;
    });
  }

  bool deadlocked = false;
  try {
    m.run();
  } catch (const std::runtime_error&) {
    deadlocked = true;
  }
  const std::uint64_t expect =
      static_cast<std::uint64_t>(so.ops0) +
      (read_only_t1 ? 0 : static_cast<std::uint64_t>(so.ops1));
  const std::string err =
      deadlocked ? std::string{}
                 : final_state_error(x.raw(), y.raw(), expect);
  judge(ex, rec, m.analysis(), deadlocked, err);
}

void add_step_limit_summary(McScenarioResult& out) {
  if (out.stats.step_limited != 0) {
    out.findings.add({stats::FindingKind::kMcStepLimit, 0, 0,
                      std::to_string(out.stats.step_limited) +
                          " schedule(s) cut by the step bound"});
  }
}

}  // namespace

std::vector<stats::McChoiceRec> recs_from_trace(const ChoiceTrace& trace) {
  std::vector<stats::McChoiceRec> out;
  out.reserve(trace.size());
  for (const Choice& c : trace) {
    out.push_back({to_string(c.kind), c.chosen});
  }
  return out;
}

bool trace_from_recs(const std::vector<stats::McChoiceRec>& recs,
                     ChoiceTrace& out) {
  out.clear();
  out.reserve(recs.size());
  for (const auto& r : recs) {
    sim::ChoiceKind kind;
    if (!choice_kind_from_string(r.kind, kind)) return false;
    out.push_back({kind, r.chosen});
  }
  return true;
}

McScenarioResult explore_mixed(const std::string& spec0,
                               const std::string& spec1, locks::LockKind kind,
                               const ScenarioOptions& opts) {
  std::string error;
  const auto p0 = elision::parse_policy(spec0, &error);
  if (!p0) throw std::invalid_argument("mc: bad policy spec '" + spec0 + "': " + error);
  const auto p1 = elision::parse_policy(spec1, &error);
  if (!p1) throw std::invalid_argument("mc: bad policy spec '" + spec1 + "': " + error);

  McScenarioResult result;
  Judge judge{&result, &opts,
              spec0 == spec1 ? spec0 : spec0 + "+" + spec1,
              elision::lock_key(kind),
              "coupled-increment " + std::to_string(opts.ops0) + "x" +
                  std::to_string(opts.ops1)};
  Explorer ex(opts.mc);
  result.stats = ex.explore([&](Explorer& e) {
    run_scheme_schedule(e, *p0, *p1, kind, opts, judge);
  });
  add_step_limit_summary(result);
  return result;
}

McScenarioResult explore_scheme(const std::string& spec, locks::LockKind kind,
                                const ScenarioOptions& opts) {
  return explore_mixed(spec, spec, kind, opts);
}

McScenarioResult explore_rw(const std::string& writer_spec,
                            const std::string& reader_spec,
                            locks::LockKind kind, const ScenarioOptions& opts) {
  std::string error;
  const auto pw = elision::parse_policy(writer_spec, &error);
  if (!pw) {
    throw std::invalid_argument("mc: bad policy spec '" + writer_spec + "': " +
                                error);
  }
  const auto pr = elision::parse_policy(reader_spec, &error);
  if (!pr) {
    throw std::invalid_argument("mc: bad policy spec '" + reader_spec + "': " +
                                error);
  }
  for (const Policy* p : {&*pw, &*pr}) {
    if (!locks::supports_mode(kind, p->mode)) {
      throw std::invalid_argument(
          std::string("mc: lock '") + elision::lock_key(kind) +
          "' does not support mode=" + locks::to_string(p->mode));
    }
  }

  McScenarioResult result;
  Judge judge{&result, &opts, writer_spec + "+" + reader_spec + "(ro)",
              elision::lock_key(kind),
              "coupled-rw " + std::to_string(opts.ops0) + "w x " +
                  std::to_string(opts.ops1) + "r"};
  Explorer ex(opts.mc);
  result.stats = ex.explore([&](Explorer& e) {
    run_scheme_schedule(e, *pw, *pr, kind, opts, judge, /*read_only_t1=*/true);
  });
  add_step_limit_summary(result);
  return result;
}

McScenarioResult explore_scm_grouped(elision::ScmFlavor flavor,
                                     const ScenarioOptions& opts) {
  McScenarioResult result;
  Judge judge{&result, &opts,
              flavor == elision::ScmFlavor::kHle ? "scm-grouped:hle"
                                                 : "scm-grouped:slr",
              "ttas",
              "coupled-increment " + std::to_string(opts.ops0) + "x" +
                  std::to_string(opts.ops1)};
  Explorer ex(opts.mc);
  result.stats = ex.explore([&](Explorer& e) {
    Machine m(machine_config(opts));
    m.exec().set_choice_point(&e);
    m.htm().set_choice_point(&e);
    HistoryRecorder rec(m.htm(), nullptr);
    analysis::TeeObserver tee(m.analysis(), &rec);
    m.htm().set_observer(&tee);

    locks::TTASLock main(m);
    elision::GroupedAux aux(m, /*groups=*/2);
    rec.set_grouping_lock(&main);
    runtime::LineHandle lx(m);
    U64Cell x(lx.line(), 0);
    runtime::LineHandle ly(m);
    U64Cell y(ly.line(), 0);
    rec.track(x, "x");
    rec.track(y, "y");

    stats::OpStats st;
    m.spawn([&](Ctx& c) {
      return grouped_worker(c, main, aux, flavor, x, y, opts.ops0, st);
    });
    m.spawn([&](Ctx& c) {
      return grouped_worker(c, main, aux, flavor, x, y, opts.ops1, st);
    });

    bool deadlocked = false;
    try {
      m.run();
    } catch (const std::runtime_error&) {
      deadlocked = true;
    }
    const std::string err =
        deadlocked
            ? std::string{}
            : final_state_error(x.raw(), y.raw(),
                                static_cast<std::uint64_t>(opts.ops0) +
                                    static_cast<std::uint64_t>(opts.ops1));
    judge(e, rec, m.analysis(), deadlocked, err);
  });
  add_step_limit_summary(result);
  return result;
}

namespace {

// One schedule of the lazy-subscription straddle.
void run_hazard_schedule(Explorer& ex, htm::SlrHazard hazard,
                         elision::SubscribeKind subscribe,
                         const ScenarioOptions& so, const Judge& judge) {
  Machine m(machine_config(so));
  m.exec().set_choice_point(&ex);
  m.htm().set_choice_point(&ex);
  HistoryRecorder rec(m.htm(), nullptr);
  analysis::TeeObserver tee(m.analysis(), &rec);
  m.htm().set_observer(&tee);

  HazardLock lock(m);
  rec.set_grouping_lock(&lock);
  runtime::LineHandle lx(m);
  U64Cell x(lx.line(), 0);
  runtime::LineHandle ly(m);
  U64Cell y(ly.line(), 0);
  rec.track(x, "x");
  rec.track(y, "y");

  stats::OpStats st;
  m.spawn([&](Ctx& c) { return hazard_updater(c, lock, x, y); });
  m.spawn([&](Ctx& c) {
    return hazard_victim(c, lock, x, y, hazard, subscribe, st);
  });

  bool deadlocked = false;
  try {
    m.run();
  } catch (const std::runtime_error&) {
    deadlocked = true;
  }
  // No final-state invariant: T1 only reads.  The opacity checker is the
  // whole verdict here.
  judge(ex, rec, m.analysis(), deadlocked, {});
}

Judge hazard_judge(McScenarioResult& result, const ScenarioOptions& opts,
                   htm::SlrHazard hazard, elision::SubscribeKind subscribe) {
  std::string scheme = "slr:subscribe=";
  scheme += subscribe == elision::SubscribeKind::kCommitChecked
                ? "commit-checked"
                : "lazy";
  return Judge{&result, &opts, std::move(scheme), "hazard-ttas",
               std::string("slr-hazard ") + to_string(hazard)};
}

// --- Shared-mode rw wild-store hazard ---------------------------------------

// Shared-mode view of the rw lock, satisfying the lock concept the SLR
// runner templates need (acquire/release/is_locked/commit_subscribe).
struct RwSharedView {
  locks::RwLock* l;
  static constexpr bool kHleArrivalWaits = true;
  static constexpr bool kFair = false;
  static constexpr const char* kName = "rw-shared";
  sim::Task<void> acquire(Ctx& c) {
    return l->acquire(c, locks::LockMode::kShared);
  }
  sim::Task<void> release(Ctx& c) {
    return l->release(c, locks::LockMode::kShared);
  }
  sim::Task<bool> is_locked(Ctx& c) {
    return l->is_locked(c, locks::LockMode::kShared);
  }
  bool commit_subscribe(Ctx& c) {
    return l->commit_subscribe(c, locks::LockMode::kShared);
  }
};

// T1's body: reads both words; on a torn snapshot the zombie's corrupted
// continuation stores a writer-bits-clear garbage value through the rw
// state word.  The lazy shared-mode check that follows is an ordinary
// transactional load of that word, so store-to-load forwarding serves it
// the staged 0: "no writer", and the torn computation commits.
sim::Task<void> rw_hazard_probe(Ctx& c, locks::RwLock& lock, U64Cell& x,
                                U64Cell& y, bool* torn) {
  const std::uint64_t vx = co_await c.load(x);
  const std::uint64_t vy = co_await c.load(y);
  *torn = vx != vy;
  if (*torn) {
    co_await c.store(lock.word(), std::uint64_t{0});
  }
}

struct RwProbeBody {
  locks::RwLock* lock;
  U64Cell* x;
  U64Cell* y;
  bool* torn;
  sim::Task<void> operator()(Ctx& c) const {
    return rw_hazard_probe(c, *lock, *x, *y, torn);
  }
};

// T0: exclusive rw-locked updater keeping x == y in every lock-respecting
// execution.
sim::Task<void> rw_hazard_updater(Ctx& c, locks::RwLock& lock, U64Cell& x,
                                  U64Cell& y) {
  co_await lock.acquire(c);
  co_await c.store(x, std::uint64_t{1});
  co_await c.store(y, std::uint64_t{1});
  co_await lock.release(c);
}

// T1: the SLR reader eliding in shared mode.  Under kCommitChecked the
// subscription is masked to the writer bits (RwLock::commit_subscribe), and
// commit itself refuses the staged wild store to the subscribed word.
sim::Task<void> rw_hazard_victim(Ctx& c, locks::RwLock& lock, U64Cell& x,
                                 U64Cell& y, elision::SubscribeKind subscribe,
                                 stats::OpStats& st) {
  bool torn = false;
  RwSharedView view{&lock};
  RwProbeBody body{&lock, &x, &y, &torn};
  co_await elision::run_slr(c, view, body, st, /*max_retries=*/2,
                            /*honor_retry_bit=*/true, /*backoff=*/{},
                            subscribe);
}

void run_rw_hazard_schedule(Explorer& ex, elision::SubscribeKind subscribe,
                            const ScenarioOptions& so, const Judge& judge) {
  Machine m(machine_config(so));
  m.exec().set_choice_point(&ex);
  m.htm().set_choice_point(&ex);
  HistoryRecorder rec(m.htm(), nullptr);
  analysis::TeeObserver tee(m.analysis(), &rec);
  m.htm().set_observer(&tee);

  locks::RwLock lock(m);
  rec.set_grouping_lock(&lock);
  runtime::LineHandle lx(m);
  U64Cell x(lx.line(), 0);
  runtime::LineHandle ly(m);
  U64Cell y(ly.line(), 0);
  rec.track(x, "x");
  rec.track(y, "y");

  stats::OpStats st;
  m.spawn([&](Ctx& c) { return rw_hazard_updater(c, lock, x, y); });
  m.spawn([&](Ctx& c) { return rw_hazard_victim(c, lock, x, y, subscribe, st); });

  bool deadlocked = false;
  try {
    m.run();
  } catch (const std::runtime_error&) {
    deadlocked = true;
  }
  // No final-state invariant: T1 only reads (modulo the modelled wild
  // store).  The opacity checker is the whole verdict.
  judge(ex, rec, m.analysis(), deadlocked, {});
}

Judge rw_hazard_judge(McScenarioResult& result, const ScenarioOptions& opts,
                      elision::SubscribeKind subscribe) {
  std::string scheme = "slr:mode=shared,subscribe=";
  scheme += subscribe == elision::SubscribeKind::kCommitChecked
                ? "commit-checked"
                : "lazy";
  return Judge{&result, &opts, std::move(scheme), "rw",
               "rw-hazard wild-store"};
}

}  // namespace

McScenarioResult explore_rw_hazard(elision::SubscribeKind subscribe,
                                   const ScenarioOptions& opts) {
  McScenarioResult result;
  const Judge judge = rw_hazard_judge(result, opts, subscribe);
  Explorer ex(opts.mc);
  result.stats = ex.explore([&](Explorer& e) {
    run_rw_hazard_schedule(e, subscribe, opts, judge);
  });
  add_step_limit_summary(result);
  return result;
}

McScenarioResult explore_slr_hazard(htm::SlrHazard hazard,
                                    elision::SubscribeKind subscribe,
                                    const ScenarioOptions& opts) {
  McScenarioResult result;
  const Judge judge = hazard_judge(result, opts, hazard, subscribe);
  Explorer ex(opts.mc);
  result.stats = ex.explore([&](Explorer& e) {
    run_hazard_schedule(e, hazard, subscribe, opts, judge);
  });
  add_step_limit_summary(result);
  return result;
}

bool replay_hazard_counterexample(const stats::McCounterexample& cx,
                                  htm::SlrHazard hazard,
                                  elision::SubscribeKind subscribe) {
  ChoiceTrace trace;
  if (!trace_from_recs(cx.trace, trace)) return false;
  ScenarioOptions opts;
  McScenarioResult result;
  const Judge judge = hazard_judge(result, opts, hazard, subscribe);
  Explorer ex(opts.mc);
  try {
    ex.replay(trace, [&](Explorer& e) {
      run_hazard_schedule(e, hazard, subscribe, opts, judge);
    });
  } catch (const std::logic_error&) {
    // The schedule diverged from the recording — expected when replaying a
    // trace under a different policy (e.g. lazy's counterexample under
    // commit-checked subscription): the violation did not reproduce.
    return false;
  }
  return result.findings.count(
             stats::FindingKind::kMcNonSerializableCommit) > 0;
}

}  // namespace sihle::mc
