// Model-checking scenarios: small, fixed workloads the Explorer enumerates
// exhaustively, with per-schedule opacity checking (mc/opacity.h), lockset
// checking (the PR-1 analysis layer runs under every explored schedule),
// and final-state validation.
//
// Every scenario is two threads over two shared words x and y with the
// coupled invariant x == y outside critical sections:
//
//  * explore_scheme / explore_mixed — each thread runs N critical sections
//    incrementing both words through the policy registry (parse_policy +
//    ElidedLock + run_cs, so any spec string × lock kind is checkable);
//    final state must be x == y == ops0 + ops1.
//  * explore_scm_grouped — the same workload under run_scm_grouped (which
//    has no registry spelling).
//  * explore_slr_hazard — the lazy-subscription straddle of mc/hazard.h.
//
// Violations are reported as stats::Findings aggregated across schedules,
// and the shortest offending schedules are kept as replayable
// counterexamples (stats::McCounterexample, exportable as sihle-mc JSON).
#pragma once

#include <string>

#include "elision/policy.h"
#include "htm/hazard.h"
#include "htm/htm.h"
#include "locks/locks.h"
#include "mc/explore.h"
#include "stats/export.h"
#include "stats/findings.h"

namespace sihle::mc {

struct ScenarioOptions {
  McOptions mc{};
  int ops0 = 1;  // critical sections run by thread 0
  int ops1 = 1;  // critical sections run by thread 1
  std::size_t max_counterexamples = 4;
  // HTM configuration for every schedule's machine (e.g. the planted
  // test_omit_reader_doom bug for the lockset-under-mc test).
  htm::HtmConfig htm{};
};

struct McScenarioResult {
  McStats stats;
  // Aggregated over all explored schedules: opacity verdicts, deadlocks,
  // final-state mismatches, plus everything the lockset checker reported.
  stats::AnalysisReport findings;
  // Shortest-trace violations, at most max_counterexamples.
  std::vector<stats::McCounterexample> counterexamples;
  // Schedules on which at least one violation was recorded.
  std::uint64_t bad_schedules = 0;

  bool clean() const { return findings.clean(); }
};

// Both threads run `spec` (a registry policy spec) over `kind` locks.
McScenarioResult explore_scheme(const std::string& spec, locks::LockKind kind,
                                const ScenarioOptions& opts = {});

// Thread i runs spec_i; the grouping lock (and SCM aux kind) come from
// spec0.  This is how the detector-sensitivity scenarios mix, e.g., a
// standard-locking writer with an SLR reader.
McScenarioResult explore_mixed(const std::string& spec0,
                               const std::string& spec1, locks::LockKind kind,
                               const ScenarioOptions& opts = {});

// The future-work grouped-SCM runner (TTAS main lock, 2 aux groups).
McScenarioResult explore_scm_grouped(elision::ScmFlavor flavor,
                                     const ScenarioOptions& opts = {});

// Coupled reader/writer scenario: thread 0 runs `writer_spec` (coupled
// increments, ops0 critical sections); thread 1 runs `reader_spec` —
// typically a mode=shared policy over an rw lock — with a read-only body
// (ops1 sections).  Final state must be x == y == ops0; a reader that
// commits a torn x != y snapshot surfaces via the opacity checker, and the
// lockset checker runs under every schedule as usual.
McScenarioResult explore_rw(const std::string& writer_spec,
                            const std::string& reader_spec,
                            locks::LockKind kind,
                            const ScenarioOptions& opts = {});

// The shared-mode rw variant of the lazy-subscription hazard: T0 is an
// exclusive rw-locked two-word updater; T1 an SLR *reader* eliding in
// shared mode whose zombie continuation wild-stores the rw state word with
// a writer-bits-clear value — exactly the value the lazy shared-mode check
// is store-to-load forwarded.  With kLazy the checker exhibits the torn
// commit; with kCommitChecked the masked writer-bit subscription (armed at
// XBEGIN, wild-store-refusing at commit) must find none.
McScenarioResult explore_rw_hazard(elision::SubscribeKind subscribe,
                                   const ScenarioOptions& opts = {});

// The SLR lazy-subscription hazard scenario (see mc/hazard.h): T0 is a
// locked two-word updater, T1 the hazard-bodied SLR victim.  With
// subscribe == kLazy the checker exhibits the violation; with
// kCommitChecked it must find none (zero kMcNonSerializableCommit — the
// aborted-read concession remains, see docs/VERIFICATION.md).
McScenarioResult explore_slr_hazard(htm::SlrHazard hazard,
                                    elision::SubscribeKind subscribe,
                                    const ScenarioOptions& opts = {});

// Re-executes one recorded hazard-scenario schedule and reports whether the
// committed history is non-serializable again (pinned-counterexample
// regression).  The scenario parameters must match the recording's.
bool replay_hazard_counterexample(const stats::McCounterexample& cx,
                                  htm::SlrHazard hazard,
                                  elision::SubscribeKind subscribe);

// ChoiceTrace <-> export-layer trace records (stats::McChoiceRec).
std::vector<stats::McChoiceRec> recs_from_trace(const ChoiceTrace& trace);
// Returns false (and leaves `out` unspecified) on an unknown kind name.
bool trace_from_recs(const std::vector<stats::McChoiceRec>& recs,
                     ChoiceTrace& out);

}  // namespace sihle::mc
