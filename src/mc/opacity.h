// Opacity checker: decides, for one recorded schedule, whether the atomic
// units the HistoryRecorder reconstructed admit a serial explanation.
//
// Committed units (hardware transactions, grouped critical sections,
// singleton accesses) must be serializable: there must exist a total order,
// consistent with real time (a unit that finished before another began must
// precede it), whose sequential replay from the initial memory reproduces
// every recorded read value.  The replay applies each unit's accesses in
// program order, so read-own-write inside a unit is handled naturally.
//
// Aborted hardware transactions are held to opacity's stronger standard:
// even a transaction that never commits must only ever observe a consistent
// snapshot — there must exist a reachable state of some serial execution of
// committed units that matches all of its recorded reads.  A violation here
// is a "zombie" that computed on impossible state, the hazard SLR admits by
// sacrificing opacity (PAPER.md §4) and HLE never exhibits.
//
// Search strategy: the commit order (end_idx) is tried first — with
// requestor-wins conflict detection it is almost always a witness — and
// only on failure does the checker fall back to a bounded permutation DFS.
// Config sizes here are tiny (2–3 threads, a handful of units), so the
// bound exists only as a safety rail; hitting it is reported, not silently
// treated as either verdict.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "mc/history.h"

namespace sihle::mc {

struct OpacityResult {
  // Committed units admit a serial witness.
  bool serializable = true;
  // Indices into records() in witness order (valid when serializable).
  std::vector<std::size_t> witness;
  // Aborted hardware transactions (indices into records()) whose read set
  // matches no reachable serial state: opacity violations.
  std::vector<std::size_t> inconsistent_aborted;
  // Human-readable account: the witness order, or the reason none exists.
  std::string explanation;
  // The unit and cell to blame for a non-serializable verdict (diagnostics;
  // the first read the commit-order replay cannot explain).
  std::size_t blamed_record = 0;
  const mem::RawCell* blamed_cell = nullptr;
  // True if the permutation DFS hit its budget: the verdict is then
  // unreliable and the caller must not report a violation.
  bool search_clipped = false;
};

// DFS budget (node expansions) for both searches combined; far beyond
// anything a 2–3 thread config can produce.
struct OpacityOptions {
  std::size_t max_expansions = 4'000'000;
};

OpacityResult check_opacity(const HistoryRecorder& hist,
                            const OpacityOptions& opts = {});

}  // namespace sihle::mc
