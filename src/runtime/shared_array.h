// Array of Shared<T> cells packed eight per 64-byte cache line, as a real
// array of 8-byte slots would be.  Used for hash-table bucket heads, grids,
// and other array-shaped shared state.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "mem/shared.h"
#include "runtime/machine.h"

namespace sihle::runtime {

template <mem::SharedValue T>
class SharedArray {
 public:
  static constexpr std::size_t kCellsPerLine = 8;  // 64B / 8B

  SharedArray(Machine& m, std::size_t n, T init) {
    const std::size_t lines = (n + kCellsPerLine - 1) / kCellsPerLine;
    lines_.reserve(lines);
    for (std::size_t i = 0; i < lines; ++i) lines_.emplace_back(m);
    cells_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      cells_.push_back(
          std::make_unique<mem::Shared<T>>(lines_[i / kCellsPerLine].line(), init));
    }
  }

  std::size_t size() const { return cells_.size(); }
  mem::Shared<T>& operator[](std::size_t i) { return *cells_[i]; }
  const mem::Shared<T>& operator[](std::size_t i) const { return *cells_[i]; }

 private:
  std::vector<LineHandle> lines_;
  std::vector<std::unique_ptr<mem::Shared<T>>> cells_;
};

}  // namespace sihle::runtime
