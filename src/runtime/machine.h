// Machine: composition root of the simulator.
//
// Owns the discrete-event executor, the cache-line directory, the HTM model
// and the cost model, and provides line lifecycle management with deferred
// (quiescence-based) reclamation so that zombie transactions — possible
// under SLR, which sacrifices opacity — can never dereference freed memory.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "analysis/config.h"
#include "analysis/lockset.h"
#include "htm/htm.h"
#include "mem/directory.h"
#include "sim/cost_model.h"
#include "sim/executor.h"
#include "sim/frame_pool.h"
#include "stats/event_ring.h"
#include "stats/tx_trace.h"

namespace sihle::runtime {

class Ctx;

// Hot-path trace dispatch: every instrumentation point funnels through one
// of these inline methods, which cost a null test per attached sink when
// tracing is off.  The structured per-thread event rings
// (stats::EventTrace) are the primary sink; the legacy machine-wide
// stats::TxTrace record vector is kept for its interval queries.
struct TraceHub {
  stats::EventTrace* events = nullptr;
  stats::TxTrace* legacy = nullptr;

  bool enabled() const { return events != nullptr || legacy != nullptr; }

  void on_tx_begin(std::uint32_t tid, sim::Cycles now) {
    if (events != nullptr) {
      events->record(tid, {now, stats::EventKind::kTxBegin,
                           htm::AbortCause::kNone, 0});
    }
    if (legacy != nullptr) legacy->on_begin(tid, now);
  }
  void on_tx_commit(std::uint32_t tid, sim::Cycles now) {
    if (events != nullptr) {
      events->record(tid, {now, stats::EventKind::kTxCommit,
                           htm::AbortCause::kNone, 0});
    }
    if (legacy != nullptr) legacy->on_end(tid, now, htm::AbortCause::kNone);
  }
  void on_tx_abort(std::uint32_t tid, sim::Cycles now, htm::AbortStatus s) {
    if (events != nullptr) {
      events->record(tid, {now, stats::EventKind::kTxAbort, s.cause, s.code});
    }
    if (legacy != nullptr) legacy->on_end(tid, now, s.cause);
  }
  // Scheme-level events (aux-lock and non-speculative main-lock
  // transitions); only the event rings carry these.
  void on_scheme_event(std::uint32_t tid, sim::Cycles now, stats::EventKind k) {
    if (events != nullptr) {
      events->record(tid, {now, k, htm::AbortCause::kNone, 0});
    }
  }
};

class Machine {
 public:
  struct Config {
    std::uint64_t seed = 1;
    sim::CostModel costs{};
    htm::HtmConfig htm{};
    // Schedule fuzzing: break equal-virtual-clock ties randomly (still
    // deterministic per seed) instead of by lowest thread id.
    bool random_tie_break = false;
    // Correctness-analysis layer (lockset race checker, dooming audit,
    // commit read-set audit).  Defaults from the SIHLE_ANALYSIS environment
    // variable so existing tests and benches can be run under the checker
    // without touching any call site.
    analysis::AnalysisConfig analysis = analysis::config_from_env();
  };

  Machine() : Machine(Config{}) {}
  explicit Machine(Config cfg)
      : cfg_(cfg), exec_(cfg.seed, cfg.random_tie_break), htm_(dir_, cfg.htm) {
    if (cfg_.analysis.enabled) {
      checker_ = std::make_unique<analysis::LocksetChecker>(htm_, dir_,
                                                            cfg_.analysis);
      htm_.set_observer(checker_.get());
    }
    // Aborts are asynchronous on real hardware: a doomed transaction whose
    // thread is blocked (sleeping in-transaction) must be woken so it can
    // observe the abort.
    htm_.set_doom_listener([this](std::uint32_t victim) {
      // Direct HTM use (tests) may run without simulated threads.
      if (victim >= exec_.thread_count()) return;
      exec_.wake_blocked(victim, exec_.current().clock + cfg_.costs.wake_latency);
    });
  }

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;
  ~Machine();

  // Registers a logical thread.  `make_body` is invoked once, immediately,
  // with the thread's Ctx and must return the (lazy) root task — typically
  // by calling a coroutine function whose parameters capture what the
  // thread needs.  Do not pass a coroutine lambda: its captures would not
  // outlive this call.
  template <class F>
  std::uint32_t spawn(F&& make_body);  // defined in ctx.h

  // Runs the simulation to completion and drains deferred reclamation.
  void run();

  // Bounded run for the domain-parallel epoch loop (runtime/domains.h):
  // advances until every runnable thread reaches `horizon` (or the machine
  // finishes / has no runnable thread), with this machine's frame pool
  // active — entering run_until is the pool's ownership handoff to the
  // calling host thread.  Drains deferred reclamation once finished.
  sim::RunOutcome run_until(sim::Cycles horizon);

  sim::Executor& exec() { return exec_; }
  mem::Directory& dir() { return dir_; }
  htm::Htm& htm() { return htm_; }
  const sim::CostModel& costs() const { return cfg_.costs; }
  const Config& config() const { return cfg_; }

  Ctx& ctx(std::uint32_t tid) { return *ctxs_[tid]; }

  // Optional tracing; any attached sink must outlive the run, and passing
  // nullptr detaches it.  set_event_trace attaches the structured
  // per-thread event rings (the observability layer's hot-path collector);
  // set_tx_trace attaches the legacy machine-wide record vector.  Both may
  // be active at once.
  void set_event_trace(stats::EventTrace* t) { trace_.events = t; }
  stats::EventTrace* event_trace() { return trace_.events; }
  void set_tx_trace(stats::TxTrace* t) { trace_.legacy = t; }
  stats::TxTrace* tx_trace() { return trace_.legacy; }
  TraceHub& trace() { return trace_; }

  // --- Correctness analysis ------------------------------------------------
  // Null unless Config::analysis.enabled.
  analysis::LocksetChecker* analysis() { return checker_.get(); }
  const analysis::LocksetChecker* analysis() const { return checker_.get(); }
  // Registers a line as belonging to a synchronization object (lock word,
  // queue node, barrier): its accesses implement synchronization and are
  // exempt from lockset checking.  Routed through the HTM's observer slot —
  // the checker when analysis is enabled, or whatever observer (possibly a
  // TeeObserver fanning out to several) a harness installed.  No-op when no
  // observer is set.
  void note_sync_line(mem::Line l) {
    if (auto* o = htm_.observer()) o->on_sync_line(l);
  }

  // --- Line lifecycle ------------------------------------------------------
  mem::Line alloc_line() { return dir_.alloc(); }
  void free_line(mem::Line l) { htm_.on_line_freed(l); }

  // --- Deferred reclamation ------------------------------------------------
  // Queue a reclamation action; it runs once no transaction is active, so a
  // zombie transaction can still safely read the dead object's lines.
  // Actions are inline-stored (htm::TxAction) — queuing one allocates at
  // most amortized vector growth, never per action.
  void add_limbo(htm::TxAction f) {
    limbo_.push_back(std::move(f));
    maybe_drain();
  }
  void maybe_drain() {
    if (htm_.active_count() != 0 || limbo_.empty()) return;
    // Reclaimers may retire further objects; swap first.
    std::vector<htm::TxAction> batch;
    batch.swap(limbo_);
    for (auto& f : batch) f();
  }
  std::size_t limbo_size() const { return limbo_.size(); }

  // --- Hot-path scratch ----------------------------------------------------
  // Reusable buffer for the lines published by a commit (capacity is
  // retained, so steady-state commits don't allocate).  Owned by the single
  // in-flight CommitOp; commit processing never nests.
  std::vector<mem::Line>& publish_scratch() { return publish_scratch_; }

  // The machine's coroutine-frame pool (sim/frame_pool.h); activated around
  // spawn() and run(), exposed for the hot-path tests.
  sim::FramePool& frame_pool() { return frame_pool_; }

 private:
  // Declared first: frames served by this pool are freed by members
  // destroyed after it would be (notably exec_'s root frames), so the pool
  // must be destroyed last.  (Frame headers keep late frees safe even so;
  // this ordering just keeps them on the recycling fast path.)
  sim::FramePool frame_pool_;
  Config cfg_;
  sim::Executor exec_;
  mem::Directory dir_;
  htm::Htm htm_;
  std::unique_ptr<analysis::LocksetChecker> checker_;
  std::vector<std::unique_ptr<Ctx>> ctxs_;
  std::vector<htm::TxAction> limbo_;
  std::vector<mem::Line> publish_scratch_;
  TraceHub trace_{};
};

// RAII ownership of one simulated cache line.  Objects holding Shared<T>
// fields own their line(s) through this handle; destruction returns the
// line to the directory (dooming any residual speculative footprint, which
// models the physical line being reused).
class LineHandle {
 public:
  explicit LineHandle(Machine& m) : m_(&m), line_(m.alloc_line()) {}
  LineHandle(LineHandle&& o) noexcept
      : m_(std::exchange(o.m_, nullptr)), line_(o.line_) {}
  LineHandle& operator=(LineHandle&& o) noexcept {
    if (this != &o) {
      release();
      m_ = std::exchange(o.m_, nullptr);
      line_ = o.line_;
    }
    return *this;
  }
  LineHandle(const LineHandle&) = delete;
  LineHandle& operator=(const LineHandle&) = delete;
  ~LineHandle() { release(); }

  mem::Line line() const { return line_; }

 private:
  void release() {
    if (m_ != nullptr) m_->free_line(line_);
    m_ = nullptr;
  }
  Machine* m_;
  mem::Line line_ = 0;
};

}  // namespace sihle::runtime
