#include "runtime/domains.h"

#include <algorithm>
#include <stdexcept>

#include "exp/engine.h"

namespace sihle::runtime {

namespace {

// Domain 0 runs the configured seed verbatim (a one-domain set must be
// bit-equal to a plain Machine at that seed); other domains get decorrelated
// streams — plain seed+d would alias thread-RNG seeding across domains
// (Executor seeds thread t from seed + 0x100 + t).
std::uint64_t domain_seed(std::uint64_t seed, std::size_t d) {
  if (d == 0) return seed;
  std::uint64_t sm = seed ^ (0xD0A11ULL + 0x9E3779B97F4A7C15ULL * d);
  return sim::splitmix64(sm);
}

}  // namespace

DomainSet::DomainSet(Config cfg) : cfg_(cfg) {
  if (cfg_.domains == 0) cfg_.domains = 1;
  if (cfg_.epoch_cycles == 0) cfg_.epoch_cycles = 4096;
  machines_.reserve(cfg_.domains);
  for (std::size_t d = 0; d < cfg_.domains; ++d) {
    Machine::Config mc = cfg_.machine;
    mc.seed = domain_seed(cfg_.seed, d);
    machines_.push_back(std::make_unique<Machine>(mc));
  }
  pending_.resize(cfg_.domains);
  // More workers than domains can never help: a domain is sequential.
  const int jobs =
      std::min(exp::resolve_jobs(cfg_.host_threads),
               static_cast<int>(cfg_.domains));
  pool_ = std::make_unique<exp::WorkPool>(jobs);
}

DomainSet::~DomainSet() = default;

void DomainSet::attach_traces(std::size_t capacity_per_thread) {
  traces_.reserve(machines_.size());
  for (auto& m : machines_) {
    traces_.push_back(std::make_unique<stats::EventTrace>(capacity_per_thread));
    m->set_event_trace(traces_.back().get());
  }
}

std::uint32_t DomainSet::index_of(const Machine& m) const {
  for (std::size_t d = 0; d < machines_.size(); ++d) {
    if (machines_[d].get() == &m) return static_cast<std::uint32_t>(d);
  }
  assert(false && "Ctx does not belong to this DomainSet");
  return 0;
}

void DomainSet::issue(RemoteOpBase& op, std::coroutine_handle<> h) {
  assert(!op.ctx.in_tx() &&
         "cross-domain accesses must be non-transactional (no cross-domain "
         "conflict detection exists by design)");
  assert(op.target < machines_.size());
  Machine& m = op.ctx.machine();
  const std::uint32_t src = index_of(m);
  const sim::Cycles issue_clock = m.exec().thread(op.ctx.id()).clock;
  pending_[src].push_back({issue_clock, src, op.ctx.id(), &op});
  m.exec().block_current(h);
}

bool DomainSet::apply_barrier() {
  barrier_scratch_.clear();
  for (auto& v : pending_) {
    barrier_scratch_.insert(barrier_scratch_.end(), v.begin(), v.end());
    v.clear();
  }
  if (barrier_scratch_.empty()) return false;
  // Deterministic total order.  A blocked thread has at most one pending op,
  // so (clock, domain, tid) is a unique key — no tie left to host timing.
  std::sort(barrier_scratch_.begin(), barrier_scratch_.end(),
            [](const PendingOp& a, const PendingOp& b) {
              if (a.issue_clock != b.issue_clock) {
                return a.issue_clock < b.issue_clock;
              }
              if (a.src_domain != b.src_domain) {
                return a.src_domain < b.src_domain;
              }
              return a.src_tid < b.src_tid;
            });
  for (const PendingOp& p : barrier_scratch_) {
    RemoteOpBase& op = *p.op;
    Machine& tgt = *machines_[op.target];
    const sim::Cycles done = p.issue_clock + tgt.costs().remote_access;
    switch (op.kind) {
      case OpKind::kLoad:
        op.value = tgt.htm().external_load(*op.cell);
        break;
      case OpKind::kStore:
        tgt.htm().external_store(*op.cell, op.operand);
        op.value = op.operand;
        tgt.exec().wake_watchers(op.cell->line(), done, tgt.costs());
        break;
      case OpKind::kFetchAdd:
        op.value = tgt.htm().external_load(*op.cell);
        tgt.htm().external_store(*op.cell, op.value + op.operand);
        tgt.exec().wake_watchers(op.cell->line(), done, tgt.costs());
        break;
    }
    machines_[p.src_domain]->exec().wake_blocked(p.src_tid, done);
    ++remote_ops_;
  }
  return true;
}

void DomainSet::run() {
  const std::size_t n = machines_.size();
  std::vector<sim::RunOutcome> outcome(n, sim::RunOutcome::kHorizon);
  std::vector<char> finished(n, 0);
  sim::Cycles horizon = 0;
  for (;;) {
    horizon += cfg_.epoch_cycles;
    // Parallel phase: disjoint per-domain state, any host interleaving.
    pool_->parallel_run(n, [&](std::size_t d) {
      if (finished[d]) return;
      outcome[d] = machines_[d]->run_until(horizon);
    });
    ++epochs_;
    // Barrier phase: coordinator only.
    const bool applied = apply_barrier();
    bool all_finished = true;
    bool all_blocked = true;
    for (std::size_t d = 0; d < n; ++d) {
      if (outcome[d] == sim::RunOutcome::kFinished) finished[d] = 1;
      if (!finished[d]) {
        all_finished = false;
        if (outcome[d] != sim::RunOutcome::kAllBlocked) all_blocked = false;
      }
    }
    if (all_finished) return;
    if (all_blocked && !applied) {
      throw std::runtime_error(
          "DomainSet: deadlock — every unfinished domain is blocked and no "
          "cross-domain operation is pending");
    }
  }
}

std::vector<DomainSet::MergedEvent> DomainSet::merged_timeline() const {
  std::vector<MergedEvent> out;
  assert(!traces_.empty() && "attach_traces() before the run");
  for (std::size_t d = 0; d < traces_.size(); ++d) {
    const stats::EventTrace& tr = *traces_[d];
    for (std::uint32_t tid = 0; tid < tr.threads(); ++tid) {
      tr.ring(tid).for_each([&](const stats::Event& e) {
        out.push_back({static_cast<std::uint32_t>(d), tid, e});
      });
    }
  }
  // Stable: equal (at, domain, tid) keeps ring (program) order.
  std::stable_sort(out.begin(), out.end(),
                   [](const MergedEvent& a, const MergedEvent& b) {
                     if (a.event.at != b.event.at) return a.event.at < b.event.at;
                     if (a.domain != b.domain) return a.domain < b.domain;
                     return a.tid < b.tid;
                   });
  return out;
}

sim::Cycles DomainSet::max_clock() const {
  sim::Cycles m = 0;
  for (const auto& mach : machines_) m = std::max(m, mach->exec().max_clock());
  return m;
}

std::uint64_t DomainSet::total_events() const {
  std::uint64_t n = 0;
  for (const auto& mach : machines_) {
    const auto& ex = mach->exec();
    for (std::uint32_t t = 0; t < ex.thread_count(); ++t) {
      n += ex.thread(t).events;
    }
  }
  return n;
}

}  // namespace sihle::runtime
