// Ctx: the per-logical-thread access API.
//
// Workload code receives a Ctx& and performs every shared-memory access
// through it: `co_await ctx.load(cell)`, `co_await ctx.store(cell, v)`, etc.
// Each access is one simulation event: the effect is applied against the
// directory/HTM, the thread's virtual clock is charged, and the coroutine
// suspends back to the executor so other logical threads interleave.
//
// Inside a transaction (Ctx::with_tx) the same calls become transactional
// accesses; an abort unwinds the workload coroutine with TxAbortException,
// which with_tx converts into a returned AbortStatus.
#pragma once

#include <cassert>
#include <coroutine>
#include <cstdint>
#include <utility>
#include <vector>

#include "htm/abort.h"
#include "htm/htm.h"
#include "mem/shared.h"
#include "runtime/machine.h"
#include "sim/task.h"

namespace sihle::runtime {

using mem::Shared;
using mem::SharedValue;

// XABORT code used by the schemes to signal "lock was observed taken".
inline constexpr std::uint8_t kAbortCodeLockBusy = 0xff;
// The HTM's commit-time subscription reports a held lock with the same code
// so the policy layer's lock-busy classification applies to both paths.
static_assert(htm::Htm::kAbortCodeSubscriptionBusy == kAbortCodeLockBusy);

class Ctx {
 public:
  Ctx(Machine& m, std::uint32_t tid) : m_(m), tid_(tid) {}

  Machine& machine() { return m_; }
  std::uint32_t id() const { return tid_; }
  sim::Cycles now() const { return m_.exec().thread(tid_).clock; }
  sim::Rng& rng() { return m_.exec().thread(tid_).rng; }
  bool in_tx() const { return m_.htm().in_tx(tid_); }

 private:
  sim::ThreadState& ts() { return m_.exec().thread(tid_); }

  // --- awaitables ----------------------------------------------------------

  struct OpBase {
    Ctx& c;
    htm::AbortStatus abort{};
    std::uint64_t value = 0;
    bool await_ready() const noexcept { return false; }
    void finish(std::coroutine_handle<> h, sim::Cycles cost) {
      c.ts().clock += cost;
      c.m_.exec().suspend_current(h);
    }
    std::uint64_t resume_raw() {
      if (!abort.ok()) throw htm::TxAbortException(abort);
      return value;
    }
  };

  struct LoadOp : OpBase {
    const mem::RawCell& cell;
    LoadOp(Ctx& c, const mem::RawCell& cell) : OpBase{c}, cell(cell) {}
    void await_suspend(std::coroutine_handle<> h) {
      auto& m = c.m_;
      if (m.htm().in_tx(c.tid_)) {
        auto r = m.htm().tx_load(c.tid_, cell, c.rng());
        value = r.value;
        abort = r.abort;
        finish(h, m.costs().tx_access);
      } else {
        value = m.htm().nontx_load(c.tid_, cell);
        finish(h, m.costs().mem_access);
      }
    }
  };

  struct StoreOp : OpBase {
    mem::RawCell& cell;
    std::uint64_t v;
    StoreOp(Ctx& c, mem::RawCell& cell, std::uint64_t v) : OpBase{c}, cell(cell), v(v) {}
    void await_suspend(std::coroutine_handle<> h) {
      auto& m = c.m_;
      if (m.htm().in_tx(c.tid_)) {
        auto r = m.htm().tx_store(c.tid_, cell, v, c.rng());
        abort = r.abort;
        finish(h, m.costs().tx_access);
      } else {
        m.htm().nontx_store(c.tid_, cell, v);
        finish(h, m.costs().mem_access);
        m.exec().wake_watchers(cell.line(), c.ts().clock, m.costs());
      }
    }
  };

  enum class RmwKind { kExchange, kCompareExchange, kFetchAdd };

  // Atomic read-modify-write.  Non-transactionally this is a locked bus op:
  // it always counts as a write for conflict purposes (the RFO dooms every
  // transaction with the line in its footprint, even if a CAS fails).
  // Transactionally it is a read + buffered write in one event.
  struct RmwOp : OpBase {
    mem::RawCell& cell;
    RmwKind kind;
    std::uint64_t a, b;
    bool success = false;  // CAS outcome
    RmwOp(Ctx& c, mem::RawCell& cell, RmwKind k, std::uint64_t a, std::uint64_t b)
        : OpBase{c}, cell(cell), kind(k), a(a), b(b) {}

    std::uint64_t apply(std::uint64_t old) {
      switch (kind) {
        case RmwKind::kExchange:
          success = true;
          return a;
        case RmwKind::kCompareExchange:
          success = (old == a);
          return success ? b : old;
        case RmwKind::kFetchAdd:
          success = true;
          return old + a;
      }
      return old;
    }

    void await_suspend(std::coroutine_handle<> h) {
      auto& m = c.m_;
      if (m.htm().in_tx(c.tid_)) {
        auto r = m.htm().tx_load(c.tid_, cell, c.rng());
        if (!r.abort.ok()) {
          abort = r.abort;
          finish(h, m.costs().tx_access);
          return;
        }
        value = r.value;
        const std::uint64_t nv = apply(r.value);
        auto w = m.htm().tx_store(c.tid_, cell, nv, c.rng());
        abort = w.abort;
        finish(h, m.costs().rmw);
      } else {
        value = m.htm().nontx_load(c.tid_, cell, /*rmw=*/true);
        const std::uint64_t nv = apply(value);
        // The RFO write request dooms conflicting transactions regardless of
        // whether the value changes.
        m.htm().nontx_store(c.tid_, cell, nv, /*rmw=*/true);
        finish(h, m.costs().rmw);
        m.exec().wake_watchers(cell.line(), c.ts().clock, m.costs());
      }
    }
  };

  struct WorkOp {
    Ctx& c;
    std::uint64_t units;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      c.ts().clock += units * c.m_.costs().work_unit;
      c.m_.exec().suspend_current(h);
    }
    void await_resume() const noexcept {}
  };

  // Advance this thread's virtual clock to an absolute deadline (no-op when
  // the deadline has passed).  One scheduling event, no rng draws, no memory
  // traffic: the open-system service layer uses it for an idle server
  // awaiting the next request arrival — virtual idle time must cost exactly
  // the gap, independent of the cost model's work_unit scaling.
  struct SleepUntilOp {
    Ctx& c;
    sim::Cycles deadline;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      if (deadline > c.ts().clock) c.ts().clock = deadline;
      c.m_.exec().suspend_current(h);
    }
    void await_resume() const noexcept {}
  };

  struct WatchLineOp {
    Ctx& c;
    mem::Line line;
    std::uint32_t seen_version;
    mem::Line line2 = sim::kInvalidLine;
    std::uint32_t seen_version2 = 0;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      assert(!c.in_tx() && "watch_line() is a non-transactional primitive");
      // mc dependence feed: the version probe reads the watched lines
      // whether or not the thread ends up blocking.
      c.m_.exec().note_choice_line(line, /*is_write=*/false);
      if (line2 != sim::kInvalidLine) {
        c.m_.exec().note_choice_line(line2, /*is_write=*/false);
      }
      const bool moved =
          c.m_.dir()[line].version != seen_version ||
          (line2 != sim::kInvalidLine && c.m_.dir()[line2].version != seen_version2);
      if (moved) {
        // A watched line was published to since the caller sampled it:
        // charge one spin probe and stay runnable (guards against missed
        // wakeups).
        c.ts().clock += c.m_.costs().spin_iter;
        c.m_.exec().suspend_current(h);
      } else {
        c.m_.exec().block_current_on_line(line, h, line2);
      }
    }
    void await_resume() const noexcept {}
  };

  // In-transaction sleep: models spinning inside a transaction on a line in
  // the read set (e.g. an elided queue-lock acquire spinning on its phantom
  // predecessor).  The cell's line joins the read set, so any disturbance —
  // a write to it or to anything else this transaction read — dooms the
  // transaction and wakes the sleeper.  Always ends by throwing the abort.
  struct TxSleepOp : OpBase {
    const mem::RawCell& cell;
    TxSleepOp(Ctx& c, const mem::RawCell& cell) : OpBase{c}, cell(cell) {}
    void await_suspend(std::coroutine_handle<> h) {
      assert(c.in_tx() && "tx_sleep() is only meaningful inside a transaction");
      auto& m = c.m_;
      auto r = m.htm().tx_load(c.tid_, cell, c.rng());
      abort = r.abort;
      if (!abort.ok()) {
        finish(h, m.costs().tx_access);
        return;
      }
      c.ts().clock += m.costs().tx_access;
      m.exec().block_current_on_line(cell.line(), h);
    }
    void await_resume() {
      if (!abort.ok()) throw htm::TxAbortException(abort);
      const auto& t = c.m_.htm().tx(c.tid_);
      throw htm::TxAbortException(
          t.doomed ? t.doom_status
                   : htm::AbortStatus{htm::AbortCause::kConflict, 0, /*retry=*/true});
    }
  };

  enum class XAcquireKind { kExchange, kFetchAdd };

  struct XAcquireOp : OpBase {
    mem::RawCell& cell;
    std::uint64_t operand;
    XAcquireKind kind;
    XAcquireOp(Ctx& c, mem::RawCell& cell, std::uint64_t operand, XAcquireKind k)
        : OpBase{c}, cell(cell), operand(operand), kind(k) {}
    void await_suspend(std::coroutine_handle<> h) {
      assert(c.in_tx() && "XACQUIRE is only modelled inside a transaction");
      auto& m = c.m_;
      // Peek the current (illusion-aware) value to compute the intended
      // stored value, then record the elision.
      auto peek = m.htm().tx_load(c.tid_, cell, c.rng());
      if (!peek.abort.ok()) {
        abort = peek.abort;
        finish(h, m.costs().tx_access);
        return;
      }
      const std::uint64_t intended =
          kind == XAcquireKind::kExchange ? operand : peek.value + operand;
      auto r = m.htm().xacquire_store(c.tid_, cell, intended, c.rng());
      abort = r.abort;
      value = peek.value;
      finish(h, m.costs().rmw);
    }
  };

  struct XReleaseOp : OpBase {
    mem::RawCell& cell;
    std::uint64_t v;
    XReleaseOp(Ctx& c, mem::RawCell& cell, std::uint64_t v) : OpBase{c}, cell(cell), v(v) {}
    void await_suspend(std::coroutine_handle<> h) {
      assert(c.in_tx() && "XRELEASE is only modelled inside a transaction");
      auto& m = c.m_;
      auto r = m.htm().xrelease_store(c.tid_, cell, v, c.rng());
      abort = r.abort;
      finish(h, m.costs().tx_access);
    }
  };

  struct BeginOp {
    Ctx& c;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      c.m_.htm().begin(c.tid_, c.rng());
      c.ts().clock += c.m_.costs().tx_begin;
      c.m_.trace().on_tx_begin(c.tid_, c.ts().clock);
      c.m_.exec().suspend_current(h);
    }
    void await_resume() const noexcept {}
  };

  struct CommitOp : OpBase {
    explicit CommitOp(Ctx& c) : OpBase{c} {}
    void await_suspend(std::coroutine_handle<> h) {
      auto& m = c.m_;
      // Machine-owned scratch: commit publishes through a capacity-retaining
      // buffer instead of a fresh vector per commit.
      std::vector<mem::Line>& published = m.publish_scratch();
      published.clear();
      abort = m.htm().commit(c.tid_, published);
      if (abort.ok()) {
        finish(h, m.costs().tx_commit);
        m.trace().on_tx_commit(c.tid_, c.ts().clock);
        for (mem::Line l : published) {
          m.exec().wake_watchers(l, c.ts().clock, m.costs());
        }
        auto& t = m.htm().tx(c.tid_);
        for (auto& f : t.retire_on_commit) m.add_limbo(std::move(f));
        t.retire_on_commit.clear();
        m.maybe_drain();
      } else {
        finish(h, m.costs().mem_access);
      }
    }
    void await_resume() { (void)resume_raw(); }
  };

  struct RollbackOp {
    Ctx& c;
    htm::AbortStatus status{};
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      c.m_.htm().rollback(c.tid_);
      c.ts().clock += c.m_.costs().tx_abort;
      c.m_.trace().on_tx_abort(c.tid_, c.ts().clock, status);
      c.m_.exec().suspend_current(h);
      c.m_.maybe_drain();
    }
    void await_resume() const noexcept {}
  };

 public:
  // --- Memory access -------------------------------------------------------

  template <SharedValue T>
  auto load(const Shared<T>& cell) {
    struct Op : LoadOp {
      using LoadOp::LoadOp;
      T await_resume() { return Shared<T>::unpack(this->resume_raw()); }
    };
    return Op{*this, cell};
  }

  template <SharedValue T>
  auto store(Shared<T>& cell, T v) {
    struct Op : StoreOp {
      using StoreOp::StoreOp;
      void await_resume() { (void)this->resume_raw(); }
    };
    return Op{*this, cell, Shared<T>::pack(v)};
  }

  // Atomic swap; returns the previous value.
  template <SharedValue T>
  auto exchange(Shared<T>& cell, T v) {
    struct Op : RmwOp {
      using RmwOp::RmwOp;
      T await_resume() { return Shared<T>::unpack(this->resume_raw()); }
    };
    return Op{*this, cell, RmwKind::kExchange, Shared<T>::pack(v), 0};
  }

  // Atomic compare-and-swap; returns true on success.
  template <SharedValue T>
  auto compare_exchange(Shared<T>& cell, T expected, T desired) {
    struct Op : RmwOp {
      using RmwOp::RmwOp;
      bool await_resume() {
        (void)this->resume_raw();
        return this->success;
      }
    };
    return Op{*this, cell, RmwKind::kCompareExchange, Shared<T>::pack(expected),
              Shared<T>::pack(desired)};
  }

  // Atomic fetch-and-add; returns the previous value.  T must be integral.
  template <SharedValue T>
  auto fetch_add(Shared<T>& cell, T delta) {
    static_assert(std::is_integral_v<T>);
    struct Op : RmwOp {
      using RmwOp::RmwOp;
      T await_resume() { return Shared<T>::unpack(this->resume_raw()); }
    };
    return Op{*this, cell, RmwKind::kFetchAdd, Shared<T>::pack(delta), 0};
  }

  // Private computation: advances this thread's clock without touching
  // shared memory.
  auto work(std::uint64_t units) { return WorkOp{*this, units}; }

  // Idle until virtual time `deadline` (absolute); returns immediately if it
  // already passed.  See SleepUntilOp.
  auto sleep_until(sim::Cycles deadline) { return SleepUntilOp{*this, deadline}; }

  // Sleep inside the running transaction until it is doomed (or the cell's
  // line is republished); always aborts.  See TxSleepOp.
  template <SharedValue T>
  auto tx_sleep(const Shared<T>& cell) {
    return TxSleepOp{*this, cell};
  }

  // --- True HLE prefixes (§3); only meaningful inside a transaction --------

  // XACQUIRE-prefixed swap: elides the store (line joins the read set only)
  // and returns the pre-store value; later reads of the cell see `v`.
  template <SharedValue T>
  auto xacquire_exchange(Shared<T>& cell, T v) {
    struct Op : XAcquireOp {
      using XAcquireOp::XAcquireOp;
      T await_resume() { return Shared<T>::unpack(this->resume_raw()); }
    };
    return Op{*this, cell, Shared<T>::pack(v), XAcquireKind::kExchange};
  }

  // XACQUIRE-prefixed fetch-and-add; returns the pre-add value.
  template <SharedValue T>
  auto xacquire_fetch_add(Shared<T>& cell, T delta) {
    static_assert(std::is_integral_v<T>);
    struct Op : XAcquireOp {
      using XAcquireOp::XAcquireOp;
      T await_resume() { return Shared<T>::unpack(this->resume_raw()); }
    };
    return Op{*this, cell, Shared<T>::pack(delta), XAcquireKind::kFetchAdd};
  }

  // XRELEASE-prefixed store: must restore the elided cell's original value
  // or the transaction aborts (kAbortCodeHleMismatch).
  template <SharedValue T>
  auto xrelease_store(Shared<T>& cell, T v) {
    struct Op : XReleaseOp {
      using XReleaseOp::XReleaseOp;
      void await_resume() { (void)this->resume_raw(); }
    };
    return Op{*this, cell, Shared<T>::pack(v)};
  }

  // XRELEASE-prefixed CAS (the Appendix-A locks' releasing instruction):
  // on success the store goes through xrelease semantics; on failure it is
  // just the transactional read.  Returns whether the CAS succeeded.
  template <SharedValue T>
  sim::Task<bool> xrelease_compare_exchange(Shared<T>& cell, T expected, T desired) {
    const T cur = co_await load(cell);
    if (Shared<T>::pack(cur) != Shared<T>::pack(expected)) co_return false;
    co_await xrelease_store(cell, desired);
    co_return true;
  }

  // Current publish-version of the cell's line.  A simulator-internal peek
  // (no event) used together with watch_line() to wait without spinning.
  // Reported to the mc dependence feed (free when no hook is installed):
  // the peeked version steers the caller's subsequent control flow.
  std::uint32_t line_version(const mem::RawCell& cell) {
    m_.exec().note_choice_line(cell.line(), /*is_write=*/false);
    return m_.dir()[cell.line()].version;
  }

  // Block until the cell's line is published to again (its version moves
  // past `seen_version`).  Non-transactional only.  Usage: sample
  // line_version, load and test the condition, then watch_line with the
  // sampled version — a publish in between makes watch_line return
  // immediately, so wakeups cannot be missed.
  auto watch_line(const mem::RawCell& cell, std::uint32_t seen_version) {
    return WatchLineOp{*this, cell.line(), seen_version};
  }

  // Two-line variant, for wait conditions spanning two cache lines (e.g.
  // the CLH lock's tail pointer and the tail node's locked flag).
  auto watch_lines(const mem::RawCell& a, std::uint32_t ver_a,
                   const mem::RawCell& b, std::uint32_t ver_b) {
    return WatchLineOp{*this, a.line(), ver_a, b.line(), ver_b};
  }

  // --- Transactions --------------------------------------------------------

  // Runs `body()` (a callable returning Task<void>) as one transaction.
  // Returns AbortStatus with cause kNone on commit.  Nesting is forbidden.
  template <class Body>
  sim::Task<htm::AbortStatus> with_tx(Body body) {
    assert(!in_tx());
    co_await BeginOp{*this};
    htm::AbortStatus status{};
    try {
      co_await body();
      co_await CommitOp{*this};
    } catch (const htm::TxAbortException& e) {
      status = e.status();
    }
    if (!status.ok()) co_await RollbackOp{*this, status};
    co_return status;
  }

  // Arm the Dice et al. commit-time lock subscription for the running
  // transaction (slr:subscribe=commit-checked): commit will atomically
  // verify `cell` holds `free_value` in memory and refuse to publish a
  // staged store to it.  Architectural registration — consumes no
  // simulation event and adds nothing to the read set.
  template <SharedValue T>
  void set_commit_subscription(const Shared<T>& cell, T free_value) {
    assert(in_tx());
    m_.htm().set_commit_subscription(tid_, cell, Shared<T>::pack(free_value));
  }

  // Masked variant: only the bits set in `mask` participate in the
  // commit-time compare.  A reader-writer lock's shared-mode subscription
  // watches the writer bits and ignores the reader count sharing the word.
  template <SharedValue T>
  void set_commit_subscription(const Shared<T>& cell, T free_value,
                               std::uint64_t mask) {
    assert(in_tx());
    m_.htm().set_commit_subscription(tid_, cell, Shared<T>::pack(free_value),
                                     mask);
  }

  // XABORT: self-abort the running transaction with an 8-bit code.
  [[noreturn]] void xabort(std::uint8_t code) {
    assert(in_tx());
    throw htm::TxAbortException(
        htm::AbortStatus{htm::AbortCause::kExplicit, code, /*retry=*/true});
  }

  // --- Scheme-level trace events -------------------------------------------
  //
  // The elision schemes report their serialization transitions (auxiliary
  // lock, non-speculative main-lock path) here; one branch when no event
  // trace is attached.
  void trace_event(stats::EventKind k) {
    m_.trace().on_scheme_event(tid_, now(), k);
  }

  // --- Lock attribution for the analysis layer ----------------------------
  //
  // The lock implementations report their ownership transitions here so the
  // lockset checker can attribute subsequent accesses to the held locks.
  // `lock` is any stable identity for the lock object (its address).
  // No-ops (one branch) when analysis is disabled.
  void note_lock_acquired(const void* lock) {
    if (auto* o = m_.htm().observer()) o->on_lock_acquired(tid_, lock);
  }
  void note_lock_released(const void* lock) {
    if (auto* o = m_.htm().observer()) o->on_lock_released(tid_, lock);
  }

  // --- Speculation-safe allocation ----------------------------------------

  // Allocate an object; if called inside a transaction, the allocation is
  // undone should the transaction abort.
  template <class T, class... Args>
  T* tx_new(Args&&... args) {
    T* p = new T(std::forward<Args>(args)...);
    if (in_tx()) {
      m_.htm().tx(tid_).undo_on_abort.push_back([p] { delete p; });
    }
    return p;
  }

  // Retire an object unlinked by the current critical section.  Reclamation
  // is deferred until no transaction is active; if called inside a
  // transaction, it only takes effect if the transaction commits.
  template <class T>
  void retire(T* p) {
    auto reclaim = [p] { delete p; };
    if (in_tx()) {
      m_.htm().tx(tid_).retire_on_commit.push_back(reclaim);
    } else {
      m_.add_limbo(reclaim);
    }
  }

 private:
  Machine& m_;
  std::uint32_t tid_;
};

// Spin until pred(value of cell) holds; returns the satisfying value.
// Non-transactional: waiting threads block on the cell's line and are woken
// by publishes, so waiting costs no simulation events while idle.
template <SharedValue T, class Pred>
sim::Task<T> spin_until(Ctx& ctx, const Shared<T>& cell, Pred pred) {
  for (;;) {
    const std::uint32_t ver = ctx.line_version(cell);
    T v = co_await ctx.load(cell);
    if (pred(v)) co_return v;
    co_await ctx.watch_line(cell, ver);
  }
}

template <class F>
std::uint32_t Machine::spawn(F&& make_body) {
  // Root and body frames allocated while materializing the thread go to
  // this machine's pool (calling a coroutine function allocates its frame
  // eagerly, before the initial suspend).
  sim::ActiveFramePool scope(&frame_pool_);
  const auto tid = static_cast<std::uint32_t>(ctxs_.size());
  ctxs_.push_back(std::make_unique<Ctx>(*this, tid));
  const std::uint32_t got = exec_.spawn(make_body(*ctxs_.back()));
  assert(got == tid);
  (void)got;
  return tid;
}

}  // namespace sihle::runtime
