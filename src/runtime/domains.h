// Domain-parallel simulation: independent lock domains on host threads.
//
// A *domain* is one complete simulated machine — executor, directory, HTM,
// frame pool, trace sinks — hosting one elided lock (or a small family of
// locks) and the cache lines its critical sections touch.  Workloads whose
// locks are causally independent most of the time (a sharded hash map, one
// elided lock per shard) partition naturally into domains, and DomainSet
// advances the domains concurrently on host threads while keeping the
// result a pure function of the seed:
//
//   * Epoch loop.  Virtual time is cut into fixed epochs of `epoch_cycles`.
//     Each epoch every unfinished domain runs run_until(horizon) — its own
//     executor, its own state, nothing shared — fanned across an
//     exp::WorkPool of host threads.  Which host thread runs which domain
//     is immaterial: domains touch disjoint state during the parallel
//     phase, so any interleaving computes the same per-domain result.
//
//   * Epoch barrier.  Cross-domain accesses issued during the epoch (each
//     recorded in a *domain-local* pending list by the issuing domain) are
//     applied by the coordinating thread after all workers quiesce, sorted
//     by (issue clock, source domain, source thread) — a deterministic
//     total order.  The issuing logical thread blocks at issue
//     (Executor::block_current) and is woken remote_access cycles later,
//     so a cross-domain access conservatively costs a remote round trip
//     regardless of host-thread timing.
//
//   * Determinism.  Per-domain phases are sequential deterministic
//     simulations; the barrier is single-threaded over a deterministically
//     ordered op list; the epoch schedule (horizon sequence) is a fixed
//     function of epoch_cycles.  Hence the merged event order — and every
//     result derived from it — is byte-identical across --domain-threads
//     counts and across repeated runs (tests/domains_test.cpp, ctest label
//     `domains`).  A single-domain DomainSet reproduces a plain
//     Machine::run() exactly: run_until's horizon pause does not perturb
//     the min-clock schedule, it only slices it.
//
// Cross-domain semantics are conservative by design: remote accesses are
// non-transactional (asserted), apply with external-agent conflict rules
// (doom the target line's writer, and on stores its readers —
// htm::Htm::external_load/external_store), and wake line watchers in the
// target domain.  That models an uncached remote-socket access, the worst
// honest cost; domains exist to make such accesses rare.
#pragma once

#include <cassert>
#include <coroutine>
#include <cstdint>
#include <memory>
#include <vector>

#include "mem/shared.h"
#include "runtime/ctx.h"
#include "runtime/machine.h"
#include "sim/cost_model.h"
#include "sim/executor.h"
#include "stats/event_ring.h"

namespace sihle::exp {
class WorkPool;
}

namespace sihle::runtime {

class DomainSet {
 public:
  struct Config {
    std::uint64_t seed = 1;
    std::size_t domains = 1;
    // Host threads fanning domains out per epoch: 0 = one per hardware
    // thread, 1 = run every domain inline on the calling thread.
    int host_threads = 1;
    // Epoch length in virtual cycles.  Longer epochs amortize barrier
    // overhead; cross-domain ops resolve only at barriers, so an op waits
    // up to one epoch.  Result bytes do NOT depend on host_threads, but DO
    // depend on epoch_cycles (it is part of the virtual-time model).
    sim::Cycles epoch_cycles = 4096;
    // Per-domain machine template; `seed` above overrides machine.seed
    // (domain 0 uses it verbatim, so a one-domain DomainSet is bit-equal to
    // Machine{machine} with that seed).
    Machine::Config machine{};
  };

  explicit DomainSet(Config cfg);
  ~DomainSet();

  DomainSet(const DomainSet&) = delete;
  DomainSet& operator=(const DomainSet&) = delete;

  std::size_t domain_count() const { return machines_.size(); }
  Machine& domain(std::size_t d) { return *machines_[d]; }
  const Config& config() const { return cfg_; }

  // Registers a logical thread on domain `d` (see Machine::spawn).
  template <class F>
  std::uint32_t spawn(std::size_t d, F&& make_body) {
    return machines_[d]->spawn(std::forward<F>(make_body));
  }

  // Runs every domain to completion through the epoch loop.  Throws
  // std::runtime_error on deadlock: every unfinished domain blocked with no
  // pending cross-domain operation to resolve it.
  void run();

  // --- Cross-domain access (awaitables) ------------------------------------
  //
  // Issued by a logical thread of any domain against a cell owned by domain
  // `target`.  Non-transactional only (asserted): a speculative cross-domain
  // access would need cross-domain conflict detection, which is exactly what
  // domain partitioning removes.  The issuing thread blocks until the next
  // epoch barrier applies the op, resuming remote_access cycles after issue.

  template <mem::SharedValue T>
  auto remote_load(Ctx& ctx, std::size_t target, const mem::Shared<T>& cell) {
    struct Op : RemoteOpBase {
      using RemoteOpBase::RemoteOpBase;
      T await_resume() { return mem::Shared<T>::unpack(this->value); }
    };
    return Op{*this, ctx, static_cast<std::uint32_t>(target), OpKind::kLoad,
              const_cast<mem::RawCell*>(static_cast<const mem::RawCell*>(&cell)),
              0};
  }

  template <mem::SharedValue T>
  auto remote_store(Ctx& ctx, std::size_t target, mem::Shared<T>& cell, T v) {
    struct Op : RemoteOpBase {
      using RemoteOpBase::RemoteOpBase;
      void await_resume() const noexcept {}
    };
    return Op{*this, ctx, static_cast<std::uint32_t>(target), OpKind::kStore,
              &cell, mem::Shared<T>::pack(v)};
  }

  // Atomic at the barrier (the coordinating thread applies ops one at a
  // time); returns the pre-add value.
  template <mem::SharedValue T>
  auto remote_fetch_add(Ctx& ctx, std::size_t target, mem::Shared<T>& cell,
                        T delta) {
    static_assert(std::is_integral_v<T>);
    struct Op : RemoteOpBase {
      using RemoteOpBase::RemoteOpBase;
      T await_resume() { return mem::Shared<T>::unpack(this->value); }
    };
    return Op{*this, ctx, static_cast<std::uint32_t>(target),
              OpKind::kFetchAdd, &cell, mem::Shared<T>::pack(delta)};
  }

  // --- Merged observability -------------------------------------------------

  // Attaches one stats::EventTrace per domain (Machine::set_event_trace);
  // call before run().  Traces are owned by the set.
  void attach_traces(
      std::size_t capacity_per_thread = stats::EventTrace::kDefaultCapacityPerThread);
  stats::EventTrace* trace(std::size_t d) {
    return traces_.empty() ? nullptr : traces_[d].get();
  }

  // One event of the canonical merged stream: (at, domain, tid, ring order)
  // — a pure function of the seed, independent of host_threads.
  struct MergedEvent {
    std::uint32_t domain = 0;
    std::uint32_t tid = 0;
    stats::Event event{};
  };
  // Requires attach_traces() before the run.  Events are merged across
  // every domain's rings by (timestamp, domain, tid), ties keeping ring
  // (per-thread program) order.
  std::vector<MergedEvent> merged_timeline() const;

  // --- Run accounting -------------------------------------------------------

  sim::Cycles max_clock() const;        // makespan over all domains
  std::uint64_t total_events() const;   // simulation events over all threads
  std::uint64_t epochs() const { return epochs_; }
  std::uint64_t remote_ops() const { return remote_ops_; }

 private:
  enum class OpKind : std::uint8_t { kLoad, kStore, kFetchAdd };

  struct RemoteOpBase {
    DomainSet& ds;
    Ctx& ctx;
    std::uint32_t target;
    OpKind kind;
    mem::RawCell* cell;
    std::uint64_t operand;
    std::uint64_t value = 0;

    RemoteOpBase(DomainSet& ds, Ctx& ctx, std::uint32_t target, OpKind kind,
                 mem::RawCell* cell, std::uint64_t operand)
        : ds(ds), ctx(ctx), target(target), kind(kind), cell(cell),
          operand(operand) {}

    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) { ds.issue(*this, h); }
  };

  struct PendingOp {
    sim::Cycles issue_clock = 0;
    std::uint32_t src_domain = 0;
    std::uint32_t src_tid = 0;
    RemoteOpBase* op = nullptr;  // lives in the blocked coroutine's frame
  };

  // Records the op in the issuing domain's pending list and blocks the
  // issuing thread; runs inside that domain's parallel phase.
  void issue(RemoteOpBase& op, std::coroutine_handle<> h);
  std::uint32_t index_of(const Machine& m) const;
  // Applies every pending op in deterministic order and wakes the issuers.
  // Single-threaded (coordinator only).  Returns whether any op applied.
  bool apply_barrier();

  Config cfg_;
  std::vector<std::unique_ptr<Machine>> machines_;
  std::vector<std::unique_ptr<stats::EventTrace>> traces_;
  std::unique_ptr<exp::WorkPool> pool_;
  // pending_[d]: ops issued by domain d's threads this epoch.  Written only
  // by the host thread running domain d's phase; drained at the barrier.
  std::vector<std::vector<PendingOp>> pending_;
  std::vector<PendingOp> barrier_scratch_;
  std::uint64_t epochs_ = 0;
  std::uint64_t remote_ops_ = 0;
};

}  // namespace sihle::runtime
