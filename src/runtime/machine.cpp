#include "runtime/machine.h"

#include "runtime/ctx.h"

namespace sihle::runtime {

Machine::~Machine() = default;

void Machine::run() {
  exec_.run();
  maybe_drain();
}

}  // namespace sihle::runtime
