#include "runtime/machine.h"

#include <cstdio>

#include "runtime/ctx.h"

namespace sihle::runtime {

Machine::~Machine() {
  // Surface analysis findings even when no one inspected the report (e.g. a
  // bench run with --analysis=on); non-fatal mode otherwise stays silent.
  if (checker_ && !checker_->report().clean()) {
    checker_->report().print(stderr);
  }
  // checker_ is destroyed before htm_ (reverse declaration order): drop the
  // observer pointer so htm_ never dangles mid-destruction.
  htm_.set_observer(nullptr);
}

void Machine::run() {
  // Coroutine frames created while the simulation executes (every workload
  // coroutine call) are served from this machine's recycling pool.
  sim::ActiveFramePool scope(&frame_pool_);
  exec_.run();
  maybe_drain();
}

}  // namespace sihle::runtime
