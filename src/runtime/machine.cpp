#include "runtime/machine.h"

#include <cstdio>

#include "runtime/ctx.h"

namespace sihle::runtime {

Machine::~Machine() {
  // A machine that last ran on an epoch-loop worker may be destroyed by the
  // thread that owns the DomainSet; destruction implies the owner has
  // synchronized with every worker, so take the frame pool back before the
  // executor's root-frame teardown releases frames into it.
  frame_pool_.bind_to_this_thread();
  // Surface analysis findings even when no one inspected the report (e.g. a
  // bench run with --analysis=on); non-fatal mode otherwise stays silent.
  if (checker_ && !checker_->report().clean()) {
    checker_->report().print(stderr);
  }
  // checker_ is destroyed before htm_ (reverse declaration order): drop the
  // observer pointer so htm_ never dangles mid-destruction.
  htm_.set_observer(nullptr);
}

void Machine::run() {
  // Coroutine frames created while the simulation executes (every workload
  // coroutine call) are served from this machine's recycling pool.
  sim::ActiveFramePool scope(&frame_pool_);
  exec_.run();
  maybe_drain();
}

sim::RunOutcome Machine::run_until(sim::Cycles horizon) {
  sim::ActiveFramePool scope(&frame_pool_);
  const sim::RunOutcome r = exec_.run_until(horizon);
  if (r == sim::RunOutcome::kFinished) maybe_drain();
  return r;
}

}  // namespace sihle::runtime
