// Sense-reversing barrier over simulated memory, for multi-phase workloads
// (e.g. genome's dedup → link phases).  Non-transactional: arrive() must be
// called outside any critical section.
#pragma once

#include <cstdint>

#include "runtime/ctx.h"

namespace sihle::runtime {

class Barrier {
 public:
  Barrier(Machine& m, std::uint32_t threads)
      : line_(m), count_(line_.line(), 0), gen_(line_.line(), 0), threads_(threads) {
    m.note_sync_line(line_.line());
  }

  sim::Task<void> arrive(Ctx& c) {
    const std::uint64_t g = co_await c.load(gen_);
    const std::uint64_t n = co_await c.fetch_add(count_, std::uint64_t{1}) + 1;
    if (n == threads_) {
      co_await c.store(count_, std::uint64_t{0});
      co_await c.store(gen_, g + 1);
      co_return;
    }
    co_await spin_until(c, gen_, [g](std::uint64_t cur) { return cur != g; });
  }

 private:
  LineHandle line_;
  mem::Shared<std::uint64_t> count_;
  mem::Shared<std::uint64_t> gen_;
  std::uint32_t threads_;
};

}  // namespace sihle::runtime
