// Abort causes and status word, modelled on Intel TSX's RTM abort status
// (the EAX register filled in on an abort).
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace sihle::htm {

enum class AbortCause : std::uint8_t {
  kNone = 0,      // no abort (transaction committed)
  kConflict,      // data conflict: another agent touched our footprint
  kCapacity,      // read/write set exceeded buffering capacity
  kExplicit,      // XABORT executed; `code` carries the imm8 operand
  kSpurious,      // unexplained abort (TSX exhibits these; see paper §3.1)
  kPersistent,    // abort that repeats on retry until the thread runs
                  // non-speculatively (models page faults on first-touch,
                  // e.g. of freshly allocated nodes); retry bit clear
  kInterrupt,     // event-based abort (models interrupts / sandbox cap)
  kNumCauses,
};

inline constexpr std::size_t kNumAbortCauses = static_cast<std::size_t>(AbortCause::kNumCauses);

constexpr std::string_view to_string(AbortCause c) {
  switch (c) {
    case AbortCause::kNone: return "none";
    case AbortCause::kConflict: return "conflict";
    case AbortCause::kCapacity: return "capacity";
    case AbortCause::kExplicit: return "explicit";
    case AbortCause::kSpurious: return "spurious";
    case AbortCause::kPersistent: return "persistent";
    case AbortCause::kInterrupt: return "interrupt";
    default: return "?";
  }
}

// "No conflict location available" marker for AbortStatus::conflict_line.
inline constexpr std::uint32_t kNoConflictLine = 0xFFFFFFFFu;

struct AbortStatus {
  AbortCause cause = AbortCause::kNone;
  std::uint8_t code = 0;  // XABORT imm8 operand, valid when cause == kExplicit
  // Intel's "retry possible" hint: set for transient causes (conflicts,
  // spurious/interrupt events, explicit aborts), clear for capacity.
  bool retry = false;
  // The cache line on which the conflict occurred, when the cause is
  // kConflict.  Haswell does not expose this; the paper's conclusion names
  // it as the promising hardware hint for refined conflict management, and
  // the simulator provides it to implement that extension (grouped SCM).
  std::uint32_t conflict_line = kNoConflictLine;

  bool ok() const { return cause == AbortCause::kNone; }
};

// Thrown by simulated transactional accesses when the enclosing transaction
// must abort; caught by Ctx::with_tx, never by workload code.
class TxAbortException {
 public:
  explicit TxAbortException(AbortStatus s) : status_(s) {}
  AbortStatus status() const { return status_; }

 private:
  AbortStatus status_;
};

}  // namespace sihle::htm
