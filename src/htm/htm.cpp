#include "htm/htm.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace sihle::htm {

void Htm::begin(std::uint32_t tid, sim::Rng& rng) {
  TxContext& t = tx(tid);
  assert(!t.active && "nested transactions are not supported");
  if (!t.persistent && cfg_.persistent_abort_per_tx > 0.0 &&
      rng.chance(cfg_.persistent_abort_per_tx)) {
    t.persistent = true;
  }
  t.active = true;
  t.doomed = false;
  t.doom_status = {};
  t.read_lines.clear();
  t.write_lines.clear();
  t.writes.clear();
  t.accesses = 0;
  t.undo_on_abort.clear();
  t.retire_on_commit.clear();
  t.elided.clear();
  t.observations.clear();
  t.sub_armed = false;
  t.sub_cell = nullptr;
  t.sub_mask = ~std::uint64_t{0};
  ++active_count_;
  if (observer_) observer_->on_tx_begin(tid);
}

void Htm::doom(std::uint32_t victim, AbortCause cause, std::uint32_t line) {
  TxContext& t = tx(victim);
  if (!t.active || t.doomed) return;
  t.doomed = true;
  t.doom_status = AbortStatus{cause, 0, /*retry=*/true, line};
  clear_footprint(victim);
  ++total_dooms_;
  if (cfg_.track_conflict_lines && line != kNoConflictLine) {
    if (line >= conflict_counts_.size()) {
      // Size from the directory's allocated-line high-water mark and grow
      // geometrically, so a run dooming on successively higher lines does
      // O(log n) resizes rather than one per new line.
      std::size_t want = std::max<std::size_t>(
          static_cast<std::size_t>(line) + 1, conflict_counts_.size() * 2);
      want = std::max(want, dir_.line_capacity());
      conflict_counts_.resize(want, 0);
    }
    conflict_counts_[line]++;
    ++located_conflicts_;
  }
  if (choice_ != nullptr) choice_->note_interaction(victim);
  if (doom_listener_) doom_listener_(victim);
}

void Htm::clear_footprint(std::uint32_t tid) {
  TxContext& t = tx(tid);
  const std::uint64_t bit = 1ULL << tid;
  for (mem::Line l : t.read_lines) dir_[l].tx_readers &= ~bit;
  for (mem::Line l : t.write_lines) {
    if (dir_[l].tx_writer == static_cast<std::int16_t>(tid)) dir_[l].tx_writer = -1;
  }
  t.read_lines.clear();
  t.write_lines.clear();
}

bool Htm::requestor_wins(std::uint32_t tid, std::uint32_t victim,
                         std::uint32_t line) {
  if (choice_ == nullptr || !in_tx(tid)) return true;  // hardware default
  if (choice_->resolve_conflict(tid, victim, line)) return true;
  doom(tid, AbortCause::kConflict, line);
  return false;
}

void Htm::doom_conflictors(std::uint32_t tid, mem::LineState& st, bool is_write,
                           std::uint32_t line) {
  if (st.tx_writer != -1 && st.tx_writer != static_cast<std::int16_t>(tid)) {
    const auto victim = static_cast<std::uint32_t>(st.tx_writer);
    if (!requestor_wins(tid, victim, line)) return;
    doom(victim, AbortCause::kConflict, line);
  }
  if (is_write) {
    std::uint64_t readers = st.tx_readers & ~(1ULL << tid);
    while (readers != 0) {
      const int r = __builtin_ctzll(readers);
      readers &= readers - 1;
      if (!requestor_wins(tid, static_cast<std::uint32_t>(r), line)) return;
      doom(static_cast<std::uint32_t>(r), AbortCause::kConflict, line);
    }
  }
}

TxResult Htm::tx_load(std::uint32_t tid, const mem::RawCell& cell, sim::Rng& rng) {
  TxContext& t = tx(tid);
  assert(t.active);
  if (t.doomed) return {0, t.doom_status};
  if (t.persistent) {
    return {0, AbortStatus{AbortCause::kPersistent, 0, /*retry=*/false}};
  }
  if (++t.accesses > cfg_.max_tx_accesses) {
    return {0, AbortStatus{AbortCause::kInterrupt, 0, /*retry=*/false}};
  }
  if (choice_ != nullptr) {
    // mc mode: spurious aborts are a reified choice, not an RNG draw.
    if (choice_->inject_spurious(tid)) {
      return {0, AbortStatus{AbortCause::kSpurious, 0, /*retry=*/true}};
    }
  } else if (cfg_.spurious_abort_per_access > 0.0 &&
             rng.chance(cfg_.spurious_abort_per_access)) {
    return {0, AbortStatus{AbortCause::kSpurious, 0, /*retry=*/true}};
  }

  // Read own staged store if present (store-to-load forwarding).  O(1):
  // repeated stores update the staged slot in place, so the slot always
  // holds the latest (last-wins) value.
  if (const WriteBuffer::Entry* w = t.writes.find(&cell)) return {w->staged, {}};
  // An elided XACQUIRE maintains the local illusion that the lock was
  // acquired: reads of the lock see the value "stored".
  for (const auto& e : t.elided) {
    if (e.cell == &cell) return {e.illusion, {}};
  }

  mem::LineState& st = dir_[cell.line()];
  if (choice_ != nullptr) choice_->note_line(cell.line(), /*is_write=*/false);
  doom_conflictors(tid, st, /*is_write=*/false, cell.line());
  if (t.doomed) return {0, t.doom_status};  // requestor lost the mc tie

  const std::uint64_t bit = 1ULL << tid;
  if ((st.tx_readers & bit) == 0) {
    if (t.read_lines.size() >= cfg_.max_read_lines) {
      return {0, AbortStatus{AbortCause::kCapacity, 0, /*retry=*/false}};
    }
    st.tx_readers |= bit;
    t.read_lines.push_back(cell.line());
  }
  if (cfg_.verify_opacity) t.observations.push_back({&cell, cell.raw()});
  if (observer_) observer_->on_tx_read(tid, cell);
  return {cell.raw(), {}};
}

TxResult Htm::tx_store(std::uint32_t tid, mem::RawCell& cell, std::uint64_t value,
                       sim::Rng& rng) {
  TxContext& t = tx(tid);
  assert(t.active);
  if (t.doomed) return {0, t.doom_status};
  if (t.persistent) {
    return {0, AbortStatus{AbortCause::kPersistent, 0, /*retry=*/false}};
  }
  if (++t.accesses > cfg_.max_tx_accesses) {
    return {0, AbortStatus{AbortCause::kInterrupt, 0, /*retry=*/false}};
  }
  if (choice_ != nullptr) {
    if (choice_->inject_spurious(tid)) {
      return {0, AbortStatus{AbortCause::kSpurious, 0, /*retry=*/true}};
    }
  } else if (cfg_.spurious_abort_per_access > 0.0 &&
             rng.chance(cfg_.spurious_abort_per_access)) {
    return {0, AbortStatus{AbortCause::kSpurious, 0, /*retry=*/true}};
  }

  mem::LineState& st = dir_[cell.line()];
  if (choice_ != nullptr) choice_->note_line(cell.line(), /*is_write=*/true);
  doom_conflictors(tid, st, /*is_write=*/true, cell.line());
  if (t.doomed) return {0, t.doom_status};  // requestor lost the mc tie

  if (st.tx_writer != static_cast<std::int16_t>(tid)) {
    if (t.write_lines.size() >= cfg_.max_write_lines) {
      return {0, AbortStatus{AbortCause::kCapacity, 0, /*retry=*/false}};
    }
    st.tx_writer = static_cast<std::int16_t>(tid);
    t.write_lines.push_back(cell.line());
  }

  if (observer_) observer_->on_tx_write(tid, cell);

  // Update staged value in place if the cell was written before.
  if (WriteBuffer::Entry* w = t.writes.find(&cell)) {
    w->staged = value;
    return {value, {}};
  }
  t.writes.insert(&cell, value);
  return {value, {}};
}

AbortStatus Htm::commit(std::uint32_t tid, std::vector<mem::Line>& published) {
  TxContext& t = tx(tid);
  assert(t.active);
  if (t.doomed) return t.doom_status;
  if (!t.elided.empty()) {
    // An elided XACQUIRE was never balanced by a restoring XRELEASE — the
    // hardware cannot commit the elision (e.g. a plain ticket lock's
    // release, which increments owner instead of restoring next).
    return AbortStatus{AbortCause::kExplicit, kAbortCodeHleMismatch,
                       /*retry=*/false};
  }
  if (t.sub_armed) {
    // Commit-time subscription (Dice et al.): enforced by the commit
    // machinery itself, atomically with publication, so no transaction
    // control flow — however corrupted — can skip it.  A staged store to
    // the subscribed lock line is the wild-store signature and must not be
    // allowed to reach memory; the lock's committed value is read from
    // memory, deliberately bypassing store-to-load forwarding.
    if (t.writes.find(t.sub_cell) != nullptr) {
      return AbortStatus{AbortCause::kExplicit, kAbortCodeSubscriptionWildStore,
                         /*retry=*/false};
    }
    mem::LineState& sub_st = dir_[t.sub_cell->line()];
    if (choice_ != nullptr) {
      choice_->note_line(t.sub_cell->line(), /*is_write=*/false);
    }
    doom_conflictors(tid, sub_st, /*is_write=*/false, t.sub_cell->line());
    if (t.doomed) return t.doom_status;
    if ((t.sub_cell->raw() & t.sub_mask) != (t.sub_free & t.sub_mask)) {
      return AbortStatus{AbortCause::kExplicit, kAbortCodeSubscriptionBusy,
                         /*retry=*/true};
    }
  }
  if (observer_) observer_->on_pre_commit(tid);
  if (cfg_.verify_opacity) {
    // Every value this transaction read must still be current: an
    // intervening overwrite would have doomed it (requestor wins).  Skip
    // cells the transaction itself staged (their memory value is published
    // below).
    for (const auto& ob : t.observations) {
      const bool self_written =
          t.writes.find(ob.cell) != nullptr;
      if (!self_written && ob.cell->raw() != ob.value) ++opacity_violations_;
    }
  }

  for (const auto& w : t.writes) w.cell->set_raw(w.staged);
  for (mem::Line l : t.write_lines) {
    dir_[l].version++;
    published.push_back(l);
    if (choice_ != nullptr) choice_->note_line(l, /*is_write=*/true);
  }

  clear_footprint(tid);
  t.writes.clear();
  t.undo_on_abort.clear();
  t.elided.clear();
  // retire_on_commit is harvested by the runtime (Machine) after commit.
  t.active = false;
  --active_count_;
  return {};
}

void Htm::rollback(std::uint32_t tid) {
  TxContext& t = tx(tid);
  assert(t.active);
  if (observer_) observer_->on_rollback(tid);
  clear_footprint(tid);
  t.writes.clear();
  t.retire_on_commit.clear();
  t.elided.clear();
  for (auto it = t.undo_on_abort.rbegin(); it != t.undo_on_abort.rend(); ++it) (*it)();
  t.undo_on_abort.clear();
  t.doomed = false;
  t.active = false;
  --active_count_;
}

std::uint64_t Htm::nontx_load(std::uint32_t tid, const mem::RawCell& cell,
                              bool rmw) {
  mem::LineState& st = dir_[cell.line()];
  if (choice_ != nullptr) choice_->note_line(cell.line(), /*is_write=*/false);
  // A coherence read request for a line in another transaction's write set
  // aborts that transaction (its speculatively-modified line is requested).
  if (st.tx_writer != -1 && st.tx_writer != static_cast<std::int16_t>(tid)) {
    doom(static_cast<std::uint32_t>(st.tx_writer), AbortCause::kConflict,
         cell.line());
  }
  if (observer_) observer_->on_nontx_read(tid, cell, rmw);
  return cell.raw();
}

void Htm::nontx_store(std::uint32_t tid, mem::RawCell& cell, std::uint64_t value,
                      bool rmw) {
  // Non-speculative progress by the thread resolves any latched persistent
  // abort condition (the fault is serviced on the fallback path).
  tx(tid).persistent = false;
  mem::LineState& st = dir_[cell.line()];
  if (choice_ != nullptr) choice_->note_line(cell.line(), /*is_write=*/true);
  if (cfg_.test_omit_reader_doom) {
    // TEST HOOK (see HtmConfig): doom only the writer, leaving transactional
    // readers of the line live — the planted bug the analysis tests detect.
    if (st.tx_writer != -1 && st.tx_writer != static_cast<std::int16_t>(tid)) {
      doom(static_cast<std::uint32_t>(st.tx_writer), AbortCause::kConflict,
           cell.line());
    }
  } else {
    doom_conflictors(tid, st, /*is_write=*/true, cell.line());
  }
  st.version++;
  cell.set_raw(value);
  if (observer_) observer_->on_nontx_write(tid, cell, rmw);
}

std::uint64_t Htm::external_load(const mem::RawCell& cell) {
  mem::LineState& st = dir_[cell.line()];
  if (st.tx_writer != -1) {
    doom(static_cast<std::uint32_t>(st.tx_writer), AbortCause::kConflict,
         cell.line());
  }
  return cell.raw();
}

void Htm::external_store(mem::RawCell& cell, std::uint64_t value) {
  mem::LineState& st = dir_[cell.line()];
  if (st.tx_writer != -1) {
    doom(static_cast<std::uint32_t>(st.tx_writer), AbortCause::kConflict,
         cell.line());
  }
  std::uint64_t readers = st.tx_readers;
  while (readers != 0) {
    const int r = __builtin_ctzll(readers);
    readers &= readers - 1;
    doom(static_cast<std::uint32_t>(r), AbortCause::kConflict, cell.line());
  }
  st.version++;
  cell.set_raw(value);
}

void Htm::on_line_freed(mem::Line line) {
  if (observer_) observer_->on_line_freed(line);
  mem::LineState& st = dir_[line];
  if (st.tx_writer != -1) doom(static_cast<std::uint32_t>(st.tx_writer), AbortCause::kConflict);
  std::uint64_t readers = st.tx_readers;
  while (readers != 0) {
    const int r = __builtin_ctzll(readers);
    readers &= readers - 1;
    doom(static_cast<std::uint32_t>(r), AbortCause::kConflict);
  }
  dir_.free(line);
}

TxResult Htm::xacquire_store(std::uint32_t tid, const mem::RawCell& cell,
                             std::uint64_t intended, sim::Rng& rng) {
  // The elided store is a transactional READ of the line plus a local
  // illusion entry; nothing joins the write set.
  TxResult r = tx_load(tid, cell, rng);
  if (!r.abort.ok()) return r;
  tx(tid).elided.push_back({&cell, r.value, intended});
  return r;  // value = the pre-store memory value (e.g. TAS's old value)
}

TxResult Htm::xrelease_store(std::uint32_t tid, const mem::RawCell& cell,
                             std::uint64_t value, sim::Rng& rng) {
  TxContext& t = tx(tid);
  if (t.doomed) return {0, t.doom_status};
  (void)rng;
  for (auto it = t.elided.begin(); it != t.elided.end(); ++it) {
    if (it->cell == &cell) {
      if (it->original != value) {
        // Haswell conservatively requires the releasing store to restore
        // the lock's original value; otherwise the transaction aborts.
        return {0, AbortStatus{AbortCause::kExplicit, kAbortCodeHleMismatch,
                               /*retry=*/false}};
      }
      t.elided.erase(it);
      return {value, {}};
    }
  }
  // XRELEASE without a matching XACQUIRE behaves as an ordinary
  // transactional store.
  return tx_store(tid, const_cast<mem::RawCell&>(cell), value, rng);
}

std::vector<std::pair<mem::Line, std::uint64_t>> Htm::conflict_heatmap(
    std::size_t top_n) const {
  std::vector<std::pair<mem::Line, std::uint64_t>> out;
  for (mem::Line l = 0; l < conflict_counts_.size(); ++l) {
    if (conflict_counts_[l] != 0) out.emplace_back(l, conflict_counts_[l]);
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.second > b.second;
  });
  if (out.size() > top_n) out.resize(top_n);
  return out;
}

}  // namespace sihle::htm
