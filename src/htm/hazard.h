// Lazy-subscription failure modes (the hazard layer).
//
// SLR's lazy subscription reads the fallback lock only at the *end* of the
// transaction body.  Until that read, the transaction can run on state that
// a concurrent lock-holder is mutating non-transactionally — a "zombie"
// execution.  The paper sandboxes zombies behind the HTM (inconsistent
// reads eventually doom the transaction, and its stores are buffered), but
// Dice, Harris, Kogan and Lev ("Hardware extensions to make lazy
// subscription safe") show the sandbox is leaky in exactly two ways, both
// seeded by an inconsistent read:
//
//  * kWildStore — the zombie's data-dependent store lands on the *lock
//    line itself*.  The late subscription load is then satisfied by
//    store-to-load forwarding from the transaction's own staged store: the
//    lock appears free, the transaction commits, and publication both
//    releases damage into shared state and corrupts the lock word.
//
//  * kEarlyCommit — the inconsistent read steers control flow past the
//    subscription check entirely (a corrupted branch reaches XEND early),
//    so the transaction commits while the lock is demonstrably held.
//
// These modes are modeled by adversarial transaction bodies in src/mc
// (mc/hazard.h) so the bounded model checker can exhibit each violation as
// a minimal counterexample schedule, and the commit-time subscription
// machinery in this directory (TxContext::sub_armed et al., enforced inside
// Htm::commit) is Dice et al.'s hardware fix that closes both holes:
// registration is architectural, the check is atomic with commit, and a
// staged store to the subscribed line aborts with
// kAbortCodeSubscriptionWildStore.
#pragma once

#include <cstdint>

namespace sihle::htm {

enum class SlrHazard : std::uint8_t {
  kNone,         // faithful SLR body: subscription check runs as written
  kWildStore,    // inconsistent read -> store to the lock line
  kEarlyCommit,  // inconsistent read -> branch skips the subscription check
};

inline const char* to_string(SlrHazard h) {
  switch (h) {
    case SlrHazard::kNone: return "none";
    case SlrHazard::kWildStore: return "wild-store";
    case SlrHazard::kEarlyCommit: return "early-commit";
  }
  return "?";
}

}  // namespace sihle::htm
