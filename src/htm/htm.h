// Software model of Intel Haswell's transactional memory (TSX/RTM) with the
// paper's observed behaviours:
//
//  * cache-line-granular conflict detection over the mem::Directory;
//  * "requestor wins": any access (transactional or not) that conflicts with
//    another transaction's footprint dooms that transaction on the spot;
//  * write buffering: transactional stores are invisible until commit and
//    are published atomically;
//  * capacity aborts for L1-bounded write sets and bounded read sets;
//  * spurious aborts at a configurable per-access probability (§3.1);
//  * an access cap per transaction that models event-based (interrupt)
//    aborts and bounds SLR zombie transactions (sandboxing).
//
// The methods here are plain synchronous state transitions; the runtime
// layer (Ctx awaitables) invokes them at simulation events and converts
// returned abort statuses into TxAbortException unwinds inside the victim's
// own coroutine.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "analysis/hooks.h"
#include "htm/abort.h"
#include "mem/directory.h"
#include "mem/shared.h"
#include "sim/choice.h"
#include "sim/rng.h"
#include "util/inplace_fn.h"
#include "util/small_vec.h"

namespace sihle::htm {

// Compensation / reclamation action attached to a transaction (tx_new,
// retire).  Inline-stored: queuing one costs no allocation
// (docs/PERFORMANCE.md).
using TxAction = util::InplaceFn<void()>;

struct HtmConfig {
  // Haswell's write set is bounded by the 32 KB L1d: 512 lines.
  std::uint32_t max_write_lines = 512;
  // Read sets are tracked beyond L1 via a bloom-ish structure; we model a
  // generous fixed bound.
  std::uint32_t max_read_lines = 16384;
  // Probability that any single transactional access aborts spuriously.
  double spurious_abort_per_access = 0.0;
  // Probability, sampled at each XBEGIN of a fresh critical section, that
  // the section has latched a persistent abort condition (e.g. a page fault
  // on a first-touched allocation).  While latched, every transactional
  // attempt by the thread aborts with kPersistent (retry bit clear); the
  // latch clears once the thread makes non-speculative progress (its first
  // non-transactional store, i.e. the fallback path running the faulting
  // work for real).
  double persistent_abort_per_tx = 0.0;
  // Sandbox: a transaction performing more than this many accesses aborts
  // with kInterrupt (real TSX transactions never survive a timer interrupt).
  std::uint64_t max_tx_accesses = 100000;
  // Record a per-line histogram of conflict dooms (the "conflict location"
  // hardware hint of the paper's conclusion); costs one counter bump per
  // doom when enabled.
  bool track_conflict_lines = false;
  // Debug mode: record every transactional read's (cell, value) pair and
  // re-validate the whole read set at commit.  With correct requestor-wins
  // tracking, a committing transaction's reads are always still current
  // (any overwrite would have doomed it first), so a validation failure
  // indicates a conflict-detection bug, never a legal execution.
  // (Subsumed by the analysis layer's check_commit_reads, which reports
  // structured findings; kept for the historical counter interface.)
  bool verify_opacity = false;
  // TEST HOOK — deliberately plants a dooming omission: non-transactional
  // stores doom only the line's transactional writer and leave its readers
  // live, breaking requestor-wins completeness.  Exists solely so the
  // analysis tests can assert the lockset checker detects the breakage
  // (no false negatives).  Never set outside tests.
  bool test_omit_reader_doom = false;
};

// Outcome of a single transactional access.
struct TxResult {
  std::uint64_t value = 0;
  AbortStatus abort{};  // abort.ok() == true means the access succeeded
};

// Staged write buffer with O(1) per-cell lookup (store-to-load forwarding).
//
// Entries are kept in insertion (first-store) order — commit publishes them
// in exactly the order the old linear buffer did.  Lookups scan the inline
// array while the footprint is small (the typical case: a handful of cells,
// one cache line of entries) and switch to an open-addressed index once the
// buffer spills past the inline capacity.  The index is cleared in O(1) by
// bumping a generation stamp, and both the entry array's heap spill and the
// index table are retained across transactions, so a long-lived TxContext
// reaches a steady state where begin/access/commit never allocate.
class WriteBuffer {
 public:
  struct Entry {
    mem::RawCell* cell;
    std::uint64_t staged;
  };
  static constexpr std::size_t kInlineEntries = 8;

  bool empty() const { return entries_.empty(); }
  std::size_t size() const { return entries_.size(); }
  const Entry* begin() const { return entries_.begin(); }
  const Entry* end() const { return entries_.end(); }

  // The staged entry for `cell`, or null.  O(1): inline scan below the
  // spill threshold, hash probe above it.
  Entry* find(const mem::RawCell* cell) {
    if (entries_.size() <= kInlineEntries) {
      for (Entry& e : entries_) {
        if (e.cell == cell) return &e;
      }
      return nullptr;
    }
    const std::size_t mask = table_.size() - 1;
    for (std::size_t i = hash(cell) & mask;; i = (i + 1) & mask) {
      const Slot& s = table_[i];
      if (s.gen != gen_ || s.key == nullptr) return nullptr;
      if (s.key == cell) return &entries_[s.idx];
    }
  }

  // Appends a fresh entry.  Precondition: find(cell) == nullptr (repeated
  // stores update the staged value in place via find()).
  void insert(mem::RawCell* cell, std::uint64_t staged) {
    entries_.push_back({cell, staged});
    const std::size_t n = entries_.size();
    if (n <= kInlineEntries) return;
    if (n == kInlineEntries + 1 || table_.size() < 2 * n) {
      rebuild_index();
    } else {
      place(cell, static_cast<std::uint32_t>(n - 1));
    }
  }

  // O(1): drops the entries and invalidates the index by generation bump;
  // all storage is retained for the next transaction.
  void clear() {
    entries_.clear();
    if (++gen_ == 0) {  // stamp wrapped: physically reset the table once
      for (Slot& s : table_) s = Slot{};
      gen_ = 1;
    }
  }

 private:
  struct Slot {
    const mem::RawCell* key = nullptr;
    std::uint32_t idx = 0;
    std::uint32_t gen = 0;
  };

  static std::size_t hash(const mem::RawCell* p) {
    return static_cast<std::size_t>(
        (reinterpret_cast<std::uintptr_t>(p) >> 3) * 0x9E3779B97F4A7C15ULL >> 17);
  }

  void place(const mem::RawCell* key, std::uint32_t idx) {
    const std::size_t mask = table_.size() - 1;
    std::size_t i = hash(key) & mask;
    while (table_[i].gen == gen_ && table_[i].key != nullptr) i = (i + 1) & mask;
    table_[i] = Slot{key, idx, gen_};
  }

  void rebuild_index() {
    std::size_t cap = 32;
    while (cap < 4 * entries_.size()) cap *= 2;  // load factor <= 1/2
    if (table_.size() < cap) table_.assign(cap, Slot{});
    if (++gen_ == 0) {
      for (Slot& s : table_) s = Slot{};
      gen_ = 1;
    }
    for (std::uint32_t i = 0; i < entries_.size(); ++i) place(entries_[i].cell, i);
  }

  util::SmallVec<Entry, kInlineEntries> entries_;  // insertion order
  std::vector<Slot> table_;                        // pow2 open-addressed index
  std::uint32_t gen_ = 1;
};

// Per-thread transaction context.  The containers all have inline
// small-buffer storage sized for short transactions, and every clear()
// retains capacity: at steady state a transaction's bookkeeping performs no
// heap allocation (docs/PERFORMANCE.md).
struct TxContext {
  bool active = false;
  bool doomed = false;
  AbortStatus doom_status{};

  util::SmallVec<mem::Line, 16> read_lines;  // distinct lines in read set
  util::SmallVec<mem::Line, 8> write_lines;  // distinct lines in write set
  // Staged stores, first-store order (repeated stores update in place).
  WriteBuffer writes;
  std::uint64_t accesses = 0;

  // Compensation for speculative allocation: run on abort, dropped on
  // commit (e.g. delete a node allocated inside the transaction).
  util::SmallVec<TxAction, 4> undo_on_abort;
  // Deferred reclamation: moved to the machine's limbo list on commit,
  // dropped on abort (e.g. a node unlinked by the transaction).
  util::SmallVec<TxAction, 4> retire_on_commit;

  // Latched persistent-abort condition (see
  // HtmConfig::persistent_abort_per_tx).
  bool persistent = false;

  // verify_opacity mode: values observed by reads, revalidated at commit.
  struct ReadObservation {
    const mem::RawCell* cell;
    std::uint64_t value;
  };
  util::SmallVec<ReadObservation, 8> observations;

  // True-HLE elided lock acquisitions (§3): the XACQUIRE-prefixed store was
  // elided — the line is only in the read set — but the transaction sees
  // the "acquired" value locally.  XRELEASE must restore `original`.
  // At most a handful of locks are ever elided at once; kept as a linear
  // inline array.
  struct ElidedEntry {
    const mem::RawCell* cell;
    std::uint64_t original;
    std::uint64_t illusion;
  };
  util::SmallVec<ElidedEntry, 2> elided;

  // Commit-time lock subscription (Dice et al., "Hardware extensions to
  // make lazy subscription safe"; surfaced as slr:subscribe=commit-checked).
  // When armed, commit atomically verifies that the subscribed cell holds
  // its free value — reading *memory*, never the transaction's own staged
  // stores — and that no store to the subscribed cell was staged (a wild
  // store to the lock line, the classic lazy-subscription corruption).
  // `sub_mask` restricts the compare to the bits that encode "busy for this
  // subscriber": a reader-writer lock's shared-mode subscription watches
  // only the writer bits, so concurrently-acquired readers (a non-zero
  // reader count in the same word) do not abort the commit.  The default
  // all-ones mask is the historical exact-value compare.
  bool sub_armed = false;
  const mem::RawCell* sub_cell = nullptr;
  std::uint64_t sub_free = 0;
  std::uint64_t sub_mask = ~std::uint64_t{0};
};

class Htm {
 public:
  Htm(mem::Directory& dir, HtmConfig cfg) : dir_(dir), cfg_(cfg) {}

  // Called with the victim's thread id whenever a transaction is doomed.
  // The runtime uses this to wake victims that are blocked (e.g. sleeping
  // in-transaction on a phantom lock-queue entry) so the asynchronous abort
  // is observed promptly, as on real hardware.
  void set_doom_listener(std::function<void(std::uint32_t)> f) {
    doom_listener_ = std::move(f);
  }

  // Optional correctness-analysis observer (see analysis::LocksetChecker).
  // Must outlive this Htm or be reset to null first; costs one branch per
  // event when unset.
  void set_observer(analysis::AccessObserver* obs) { observer_ = obs; }
  analysis::AccessObserver* observer() const { return observer_; }

  // Model-checking hook (see sim/choice.h).  While installed it replaces the
  // spurious-abort RNG draw and arbitrates conflict dooming; every call site
  // guards on null, so normal runs pay one predictable branch.
  void set_choice_point(sim::ChoicePoint* cp) { choice_ = cp; }

  const HtmConfig& config() const { return cfg_; }
  void set_config(const HtmConfig& cfg) { cfg_ = cfg; }

  TxContext& tx(std::uint32_t tid) {
    if (tid >= txs_.size()) txs_.resize(tid + 1);
    return txs_[tid];
  }
  bool in_tx(std::uint32_t tid) const {
    return tid < txs_.size() && txs_[tid].active;
  }
  std::uint32_t active_count() const { return active_count_; }

  // --- Transactional interface --------------------------------------------

  // XBEGIN.  Nesting is not supported (TSX flattens; our runtime forbids).
  void begin(std::uint32_t tid, sim::Rng& rng);

  TxResult tx_load(std::uint32_t tid, const mem::RawCell& cell, sim::Rng& rng);
  TxResult tx_store(std::uint32_t tid, mem::RawCell& cell, std::uint64_t value,
                    sim::Rng& rng);

  // --- True HLE prefix semantics (§3) --------------------------------------
  //
  // XACQUIRE-prefixed store/RMW: the store is elided.  The lock's line joins
  // the READ set only; the returned value is the pre-store (memory) value,
  // and subsequent transactional reads of the cell observe `intended`
  // locally (the illusion that the lock was acquired).
  TxResult xacquire_store(std::uint32_t tid, const mem::RawCell& cell,
                          std::uint64_t intended, sim::Rng& rng);
  // XRELEASE-prefixed store: must restore the cell to its pre-XACQUIRE
  // value; a mismatching value aborts the transaction (code
  // kAbortCodeHleMismatch), as Haswell requires.
  static constexpr std::uint8_t kAbortCodeHleMismatch = 0xfe;
  TxResult xrelease_store(std::uint32_t tid, const mem::RawCell& cell,
                          std::uint64_t value, sim::Rng& rng);

  // --- Commit-time subscription (lazy-subscription hardening) ---------------
  //
  // Arms the Dice et al. commit-time lock check for the current transaction:
  // commit refuses to publish unless `cell`'s committed value equals
  // `free_raw` (lock busy → kAbortCodeSubscriptionBusy) and the transaction
  // never staged a store to `cell` (wild store to the lock line →
  // kAbortCodeSubscriptionWildStore).  Registration is architectural state,
  // not a memory access: it consumes no simulation event and adds nothing to
  // the read set, so corrupted transaction control flow cannot skip the
  // check — exactly the property lazy subscription lacks.
  // `mask` restricts the commit-time compare to the busy-encoding bits (see
  // TxContext::sub_mask); the default preserves the exact-value compare.
  void set_commit_subscription(std::uint32_t tid, const mem::RawCell& cell,
                               std::uint64_t free_raw,
                               std::uint64_t mask = ~std::uint64_t{0}) {
    TxContext& t = tx(tid);
    t.sub_armed = true;
    t.sub_cell = &cell;
    t.sub_free = free_raw;
    t.sub_mask = mask;
  }
  // The transaction staged a store to the subscribed lock line.
  static constexpr std::uint8_t kAbortCodeSubscriptionWildStore = 0xfd;
  // The subscribed lock was held at commit.  Equals
  // runtime::kAbortCodeLockBusy so the policy layer's retry classification
  // applies unchanged (static_assert'd in runtime/ctx.h).
  static constexpr std::uint8_t kAbortCodeSubscriptionBusy = 0xff;

  // XEND, phase 1: returns kNone status if the transaction may commit
  // (not doomed), otherwise the doom status.  On success the staged writes
  // are published to memory and the lines written are appended to
  // `published` so the caller can wake watchers.
  AbortStatus commit(std::uint32_t tid, std::vector<mem::Line>& published);

  // Clean up after an abort (doomed, capacity, explicit, ...): clears any
  // remaining footprint, discards the write buffer, runs undo actions.
  void rollback(std::uint32_t tid);

  // --- Non-transactional accesses that interact with transactions ---------

  // `rmw` marks the access as half of an atomic read-modify-write; it only
  // affects how the analysis observer classifies the access.
  std::uint64_t nontx_load(std::uint32_t tid, const mem::RawCell& cell,
                           bool rmw = false);
  void nontx_store(std::uint32_t tid, mem::RawCell& cell, std::uint64_t value,
                   bool rmw = false);

  // --- Cross-domain (external-agent) accesses -------------------------------
  //
  // A coherence request arriving from outside this machine — another
  // domain's thread, applied at the DomainSet epoch barrier
  // (runtime/domains.h).  There is no local thread id to attribute the
  // access to, so the conflict rule is the conservative one already used
  // for line reuse: a load dooms the line's transactional writer, a store
  // dooms the writer and every transactional reader.  The analysis observer
  // is not consulted — cross-domain traffic is non-transactional by
  // construction, and its synchronization discipline is the barrier's job.
  std::uint64_t external_load(const mem::RawCell& cell);
  void external_store(mem::RawCell& cell, std::uint64_t value);

  // Abort `victim`'s transaction with the given cause (requestor wins).
  // Clears the victim's directory footprint immediately; the victim unwinds
  // at its next access or commit.  `line` is the conflicting cache line
  // when known (the future-work hardware hint the paper's conclusion asks
  // for).
  void doom(std::uint32_t victim, AbortCause cause,
            std::uint32_t line = kNoConflictLine);

  // Line lifecycle: dooms any transaction with residual footprint on the
  // line (models the line being reused), then returns it to the pool.
  void on_line_freed(mem::Line line);

  // Monotone counters for tests / stats.
  std::uint64_t total_dooms() const { return total_dooms_; }
  // Opacity-verification failures observed at commit (always 0 unless the
  // conflict tracking is broken); only counted with verify_opacity.
  std::uint64_t opacity_violations() const { return opacity_violations_; }

  // Top-N conflicting lines by doom count (requires track_conflict_lines).
  std::vector<std::pair<mem::Line, std::uint64_t>> conflict_heatmap(
      std::size_t top_n) const;
  std::uint64_t located_conflicts() const { return located_conflicts_; }

 private:
  void clear_footprint(std::uint32_t tid);
  // Dooms every transaction conflicting with an access to `line`:
  // writers always; readers too when `is_write`.  Under a choice-point hook
  // the requestor-wins tie is delegated per victim; if the hook rules
  // against the requestor, the requestor's own transaction is doomed
  // instead and remaining victims survive.
  void doom_conflictors(std::uint32_t tid, mem::LineState& st, bool is_write,
                        std::uint32_t line);
  // True iff the requestor wins arbitration against `victim` (always, unless
  // a choice-point hook rules otherwise).  Dooms the requestor on a loss.
  bool requestor_wins(std::uint32_t tid, std::uint32_t victim,
                      std::uint32_t line);

  mem::Directory& dir_;
  HtmConfig cfg_;
  std::vector<TxContext> txs_;
  std::function<void(std::uint32_t)> doom_listener_;
  sim::ChoicePoint* choice_ = nullptr;
  analysis::AccessObserver* observer_ = nullptr;
  std::vector<std::uint64_t> conflict_counts_;  // by line, when tracking
  std::uint32_t active_count_ = 0;
  std::uint64_t total_dooms_ = 0;
  std::uint64_t located_conflicts_ = 0;
  std::uint64_t opacity_violations_ = 0;
};

}  // namespace sihle::htm
