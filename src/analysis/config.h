// Configuration of the correctness-analysis layer (see docs/ANALYSIS.md).
#pragma once

#include <cstdlib>
#include <cstring>

namespace sihle::analysis {

struct AnalysisConfig {
  // Master switch.  When false the Machine installs no observer and the
  // simulation pays nothing.
  bool enabled = false;
  // Print the finding and abort() the process as soon as one is recorded.
  // Used by `SIHLE_ANALYSIS=fatal ctest` to turn any protocol violation in
  // any test into a hard failure.
  bool fatal = false;

  // Eraser-style lockset checking: report any shared line whose candidate
  // protection set (locks held ∪ transaction context) becomes empty while
  // the line is write-shared between threads.
  bool check_lockset = true;
  // Requestor-wins completeness: a non-transactional access must have
  // doomed every overlapping transaction by the time it completes.
  bool check_dooming = true;
  // Commit-time read-set audit: a committing transaction's observed values
  // must still be current (generalizes HtmConfig::verify_opacity).
  bool check_commit_reads = true;

  // Findings beyond this many are counted but not stored verbatim.
  std::size_t max_recorded = 64;
};

// Reads SIHLE_ANALYSIS from the environment: unset/"", "0", "off" disable;
// "1", "on" enable; "fatal" enables with fatal = true.  Machine::Config and
// harness::WorkloadConfig default their analysis field from this, so the
// whole test suite and every bench can be run under the checker without
// touching any call site:
//
//   SIHLE_ANALYSIS=fatal ctest --test-dir build
inline AnalysisConfig config_from_env() {
  AnalysisConfig cfg;
  const char* v = std::getenv("SIHLE_ANALYSIS");
  if (v == nullptr || *v == '\0') return cfg;
  if (std::strcmp(v, "0") == 0 || std::strcmp(v, "off") == 0) return cfg;
  cfg.enabled = true;
  cfg.fatal = std::strcmp(v, "fatal") == 0;
  return cfg;
}

}  // namespace sihle::analysis
