#include "analysis/lockset.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace sihle::analysis {

namespace {

bool holds(const std::vector<const void*>& held, const void* lock) {
  return std::find(held.begin(), held.end(), lock) != held.end();
}

}  // namespace

void LocksetChecker::record(stats::Finding f) {
  if (cfg_.fatal) {
    std::fprintf(stderr, "SIHLE-ANALYSIS fatal finding: [%s] line %u thread %u: %s\n",
                 stats::to_string(f.kind), f.line, f.thread, f.detail.c_str());
    std::abort();
  }
  report_.add(std::move(f));
}

// --- Lock attribution ------------------------------------------------------

void LocksetChecker::on_lock_acquired(std::uint32_t tid, const void* lock) {
  thread_info(tid).held.push_back(lock);
}

void LocksetChecker::on_lock_released(std::uint32_t tid, const void* lock) {
  auto& held = thread_info(tid).held;
  // Erase the most recent acquisition (locks may be released out of order:
  // SCM releases the aux lock after the main lock's critical section).
  for (auto it = held.rbegin(); it != held.rend(); ++it) {
    if (*it == lock) {
      held.erase(std::next(it).base());
      return;
    }
  }
}

void LocksetChecker::on_sync_line(mem::Line line) { line_info(line).sync = true; }

void LocksetChecker::on_line_freed(mem::Line line) {
  // The id is about to be recycled for an unrelated object.
  if (line < lines_.size()) lines_[line] = LineInfo{};
}

// --- Transaction lifecycle -------------------------------------------------

void LocksetChecker::on_tx_begin(std::uint32_t tid) {
  ThreadInfo& t = thread_info(tid);
  t.tx_reads.clear();
  t.tx_writes.clear();
}

void LocksetChecker::on_tx_read(std::uint32_t tid, const mem::RawCell& cell) {
  if (!cfg_.check_commit_reads) return;
  thread_info(tid).tx_reads.push_back({&cell, cell.raw()});
}

void LocksetChecker::on_tx_write(std::uint32_t tid, const mem::RawCell& cell) {
  if (!cfg_.check_commit_reads) return;
  thread_info(tid).tx_writes.push_back(&cell);
}

void LocksetChecker::on_pre_commit(std::uint32_t tid) {
  ThreadInfo& t = thread_info(tid);
  if (cfg_.check_commit_reads) {
    for (const auto& ob : t.tx_reads) {
      const bool self_written =
          std::find(t.tx_writes.begin(), t.tx_writes.end(), ob.cell) !=
          t.tx_writes.end();
      if (self_written || ob.cell->raw() == ob.value) continue;
      LineInfo& li = line_info(ob.cell->line());
      if (li.reported_commit) continue;
      li.reported_commit = true;
      record({stats::FindingKind::kInvalidatedCommitRead, ob.cell->line(), tid,
              "committing transaction read value " + std::to_string(ob.value) +
                  " but memory now holds " + std::to_string(ob.cell->raw()) +
                  " (overwrite did not doom the reader)"});
    }
  }
  t.tx_reads.clear();
  t.tx_writes.clear();
}

void LocksetChecker::on_rollback(std::uint32_t tid) {
  ThreadInfo& t = thread_info(tid);
  t.tx_reads.clear();
  t.tx_writes.clear();
}

// --- Non-transactional accesses --------------------------------------------

void LocksetChecker::on_nontx_read(std::uint32_t tid, const mem::RawCell& cell,
                                   bool rmw) {
  if (cfg_.check_dooming) {
    check_doom_complete(tid, cell.line(), /*need_readers=*/false);
  }
  if (cfg_.check_lockset) nontx_access(tid, cell, /*is_write=*/false, rmw);
}

void LocksetChecker::on_nontx_write(std::uint32_t tid, const mem::RawCell& cell,
                                    bool rmw) {
  if (cfg_.check_dooming) {
    check_doom_complete(tid, cell.line(), /*need_readers=*/true);
  }
  if (cfg_.check_lockset) nontx_access(tid, cell, /*is_write=*/true, rmw);
}

void LocksetChecker::check_doom_complete(std::uint32_t tid, mem::Line line,
                                         bool need_readers) {
  const mem::LineState& st = dir_[line];
  LineInfo& li = line_info(line);
  if (li.reported_doom) return;

  // Requestor wins: dooming clears the victim's footprint on the spot, so
  // any residual footprint of another thread belongs to a transaction the
  // access failed to doom (or to a footprint-tracking leak).
  if (st.tx_writer != -1 && st.tx_writer != static_cast<std::int16_t>(tid)) {
    const auto w = static_cast<std::uint32_t>(st.tx_writer);
    li.reported_doom = true;
    record({stats::FindingKind::kMissedDoom, line, tid,
            "non-transactional access left thread " + std::to_string(w) +
                "'s transactional write of the line undoomed"});
    return;
  }
  if (!need_readers) return;
  std::uint64_t readers = st.tx_readers & ~(1ULL << tid);
  while (readers != 0) {
    const auto r = static_cast<std::uint32_t>(__builtin_ctzll(readers));
    readers &= readers - 1;
    const htm::TxContext& tx = htm_.tx(r);
    li.reported_doom = true;
    record({stats::FindingKind::kMissedDoom, line, tid,
            std::string("non-transactional store left thread ") +
                std::to_string(r) + "'s transactional read of the line " +
                (tx.active && !tx.doomed ? "undoomed" : "as a stale footprint")});
    return;
  }
}

void LocksetChecker::nontx_access(std::uint32_t tid, const mem::RawCell& cell,
                                  bool is_write, bool rmw) {
  LineInfo& li = line_info(cell.line());
  if (li.sync || li.reported_race) return;
  // Atomic RMWs are the building blocks of synchronization (Eraser exempts
  // them the same way); they cannot themselves be torn.
  if (rmw) return;

  const ThreadInfo& t = thread_info(tid);
  switch (li.st) {
    case LineSt::kVirgin:
      li.st = LineSt::kExclusive;
      li.owner = tid;
      return;
    case LineSt::kExclusive:
      if (li.owner == tid) return;  // thread-local so far: no constraint yet
      li.st = is_write ? LineSt::kSharedModified : LineSt::kShared;
      // The candidate protection set starts at the second thread's holdings
      // (the first thread's set was not tracked retroactively — Eraser's
      // standard initialization).
      li.lockset = t.held;
      li.lockset_valid = true;
      break;
    case LineSt::kShared:
    case LineSt::kSharedModified: {
      std::vector<const void*> refined;
      for (const void* l : li.lockset) {
        if (holds(t.held, l)) refined.push_back(l);
      }
      li.lockset = std::move(refined);
      if (is_write) li.st = LineSt::kSharedModified;
      break;
    }
  }
  if (li.st == LineSt::kSharedModified && li.lockset.empty()) {
    li.reported_race = true;
    record({stats::FindingKind::kEmptyLockset, cell.line(), tid,
            "write-shared line reachable with an empty protection set (no "
            "lock held, outside any transaction)"});
  }
}

}  // namespace sihle::analysis
