// Access-observation hooks for the correctness-analysis layer.
//
// The HTM model and the runtime publish every simulation-visible event —
// transactional and non-transactional accesses, transaction lifecycle,
// lock acquisitions, line lifecycle — to an optional AccessObserver.  The
// production observer is analysis::LocksetChecker; the indirection keeps
// src/htm free of any dependency on the checker itself and costs one
// predictable branch per event when no observer is installed.
#pragma once

#include <cstdint>

#include "mem/shared.h"

namespace sihle::analysis {

class AccessObserver {
 public:
  virtual ~AccessObserver() = default;

  // --- Transaction lifecycle (from htm::Htm) -------------------------------
  virtual void on_tx_begin(std::uint32_t tid) { (void)tid; }
  // A transactional read that reached the directory (store-to-load forwarded
  // and elision-illusion reads are invisible to conflict detection and are
  // not reported).
  virtual void on_tx_read(std::uint32_t tid, const mem::RawCell& cell) {
    (void)tid;
    (void)cell;
  }
  virtual void on_tx_write(std::uint32_t tid, const mem::RawCell& cell) {
    (void)tid;
    (void)cell;
  }
  // Called when a transaction passed every hardware commit check, before its
  // staged writes are published: the last point at which the read set can be
  // audited against memory.
  virtual void on_pre_commit(std::uint32_t tid) { (void)tid; }
  virtual void on_rollback(std::uint32_t tid) { (void)tid; }

  // --- Non-transactional accesses (from htm::Htm) --------------------------
  // Called after requestor-wins dooming for the access has run, so the
  // observer can verify the dooming was complete.  `rmw` marks the access as
  // half of an atomic read-modify-write (a locked bus operation).
  virtual void on_nontx_read(std::uint32_t tid, const mem::RawCell& cell,
                             bool rmw) {
    (void)tid;
    (void)cell;
    (void)rmw;
  }
  virtual void on_nontx_write(std::uint32_t tid, const mem::RawCell& cell,
                              bool rmw) {
    (void)tid;
    (void)cell;
    (void)rmw;
  }

  // --- Line lifecycle (from htm::Htm / runtime::Machine) -------------------
  // The line is about to be returned to the directory pool; any per-line
  // analysis state must be discarded (the id will be reused).
  virtual void on_line_freed(mem::Line line) { (void)line; }
  // The line belongs to a synchronization object (lock word, queue node,
  // barrier); its accesses implement synchronization rather than being
  // protected by it and are exempt from lockset checking.
  virtual void on_sync_line(mem::Line line) { (void)line; }

  // --- Lock attribution (from runtime::Ctx, called by the lock classes) ----
  virtual void on_lock_acquired(std::uint32_t tid, const void* lock) {
    (void)tid;
    (void)lock;
  }
  virtual void on_lock_released(std::uint32_t tid, const void* lock) {
    (void)tid;
    (void)lock;
  }
};

// Fans every event out to two observers (e.g. the lockset checker plus the
// model checker's history recorder — the Htm has a single observer slot).
// Either side may be null.
class TeeObserver final : public AccessObserver {
 public:
  TeeObserver(AccessObserver* a, AccessObserver* b) : a_(a), b_(b) {}

  void on_tx_begin(std::uint32_t tid) override {
    if (a_ != nullptr) a_->on_tx_begin(tid);
    if (b_ != nullptr) b_->on_tx_begin(tid);
  }
  void on_tx_read(std::uint32_t tid, const mem::RawCell& cell) override {
    if (a_ != nullptr) a_->on_tx_read(tid, cell);
    if (b_ != nullptr) b_->on_tx_read(tid, cell);
  }
  void on_tx_write(std::uint32_t tid, const mem::RawCell& cell) override {
    if (a_ != nullptr) a_->on_tx_write(tid, cell);
    if (b_ != nullptr) b_->on_tx_write(tid, cell);
  }
  void on_pre_commit(std::uint32_t tid) override {
    if (a_ != nullptr) a_->on_pre_commit(tid);
    if (b_ != nullptr) b_->on_pre_commit(tid);
  }
  void on_rollback(std::uint32_t tid) override {
    if (a_ != nullptr) a_->on_rollback(tid);
    if (b_ != nullptr) b_->on_rollback(tid);
  }
  void on_nontx_read(std::uint32_t tid, const mem::RawCell& cell,
                     bool rmw) override {
    if (a_ != nullptr) a_->on_nontx_read(tid, cell, rmw);
    if (b_ != nullptr) b_->on_nontx_read(tid, cell, rmw);
  }
  void on_nontx_write(std::uint32_t tid, const mem::RawCell& cell,
                      bool rmw) override {
    if (a_ != nullptr) a_->on_nontx_write(tid, cell, rmw);
    if (b_ != nullptr) b_->on_nontx_write(tid, cell, rmw);
  }
  void on_line_freed(mem::Line line) override {
    if (a_ != nullptr) a_->on_line_freed(line);
    if (b_ != nullptr) b_->on_line_freed(line);
  }
  void on_sync_line(mem::Line line) override {
    if (a_ != nullptr) a_->on_sync_line(line);
    if (b_ != nullptr) b_->on_sync_line(line);
  }
  void on_lock_acquired(std::uint32_t tid, const void* lock) override {
    if (a_ != nullptr) a_->on_lock_acquired(tid, lock);
    if (b_ != nullptr) b_->on_lock_acquired(tid, lock);
  }
  void on_lock_released(std::uint32_t tid, const void* lock) override {
    if (a_ != nullptr) a_->on_lock_released(tid, lock);
    if (b_ != nullptr) b_->on_lock_released(tid, lock);
  }

 private:
  AccessObserver* a_;
  AccessObserver* b_;
};

}  // namespace sihle::analysis
