// Eraser-style lockset race checker over the simulation, piggybacking on
// mem::Directory / htm::Htm state (see docs/ANALYSIS.md for the algorithm).
//
// The checker attributes every simulated access to the protection the
// accessing thread holds at that moment — the set of locks it has acquired
// (reported by the lock implementations through Ctx::note_lock_acquired)
// and/or the transaction context it runs in — and mechanically checks the
// three invariants the paper's correctness argument rests on:
//
//  1. Empty protection set (check_lockset): a line that is write-shared
//     between threads must never be reached by a plain non-transactional
//     access with no lock held.  Classic Eraser state machine per line
//     (Virgin → Exclusive → Shared → SharedModified) with the candidate
//     lockset intersected on every unprotected-capable access; atomic RMWs
//     and registered synchronization lines (lock words, queue nodes,
//     barriers) are exempt, exactly as Eraser exempts sync primitives.
//  2. Requestor-wins completeness (check_dooming): when a non-transactional
//     access completes, no other thread's live (active, undoomed)
//     transaction may still hold the line in its footprint — otherwise a
//     zombie sandbox has been breached and could commit.
//  3. Commit read-set currency (check_commit_reads): every value a
//     committing transaction read must still be in memory at commit time.
//     Generalizes and subsumes HtmConfig::verify_opacity, but reports
//     structured findings instead of bumping a counter.
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/config.h"
#include "analysis/hooks.h"
#include "htm/htm.h"
#include "mem/directory.h"
#include "stats/findings.h"

namespace sihle::analysis {

class LocksetChecker : public AccessObserver {
 public:
  LocksetChecker(htm::Htm& htm, mem::Directory& dir, const AnalysisConfig& cfg)
      : htm_(htm), dir_(dir), cfg_(cfg) {
    report_.set_max_recorded(cfg.max_recorded);
  }

  const AnalysisConfig& config() const { return cfg_; }
  const stats::AnalysisReport& report() const { return report_; }
  stats::AnalysisReport& report() { return report_; }

  // --- AccessObserver ------------------------------------------------------

  void on_tx_begin(std::uint32_t tid) override;
  void on_tx_read(std::uint32_t tid, const mem::RawCell& cell) override;
  void on_tx_write(std::uint32_t tid, const mem::RawCell& cell) override;
  void on_pre_commit(std::uint32_t tid) override;
  void on_rollback(std::uint32_t tid) override;
  void on_nontx_read(std::uint32_t tid, const mem::RawCell& cell,
                     bool rmw) override;
  void on_nontx_write(std::uint32_t tid, const mem::RawCell& cell,
                      bool rmw) override;
  void on_line_freed(mem::Line line) override;
  void on_sync_line(mem::Line line) override;
  void on_lock_acquired(std::uint32_t tid, const void* lock) override;
  void on_lock_released(std::uint32_t tid, const void* lock) override;

 private:
  // Eraser per-line state machine.
  enum class LineSt : std::uint8_t {
    kVirgin,          // never accessed non-transactionally
    kExclusive,       // accessed by a single thread only
    kShared,          // read-shared between threads
    kSharedModified,  // write-shared between threads: lockset enforced
  };

  struct LineInfo {
    LineSt st = LineSt::kVirgin;
    bool sync = false;           // registered synchronization line: exempt
    bool lockset_valid = false;  // candidate set initialized
    bool reported_race = false;
    bool reported_doom = false;
    bool reported_commit = false;
    std::uint32_t owner = 0;  // Exclusive-state owner thread
    std::vector<const void*> lockset;  // candidate protection set C(line)
  };

  struct ReadObservation {
    const mem::RawCell* cell;
    std::uint64_t value;
  };

  struct ThreadInfo {
    std::vector<const void*> held;  // lock acquisition stack
    // Per-transaction records, reset at begin/rollback/commit.
    std::vector<ReadObservation> tx_reads;
    std::vector<const mem::RawCell*> tx_writes;
  };

  LineInfo& line_info(mem::Line l) {
    if (l >= lines_.size()) lines_.resize(l + 1);
    return lines_[l];
  }
  ThreadInfo& thread_info(std::uint32_t tid) {
    if (tid >= threads_.size()) threads_.resize(tid + 1);
    return threads_[tid];
  }

  void record(stats::Finding f);
  void nontx_access(std::uint32_t tid, const mem::RawCell& cell, bool is_write,
                    bool rmw);
  // Audits the directory after a non-transactional access: any other
  // thread's live transaction still holding the line means its doom was
  // missed.  `need_readers` is true for writes (which must doom readers and
  // the writer) and false for reads (which must doom only the writer).
  void check_doom_complete(std::uint32_t tid, mem::Line line,
                           bool need_readers);

  htm::Htm& htm_;
  mem::Directory& dir_;
  AnalysisConfig cfg_;
  stats::AnalysisReport report_;
  std::vector<LineInfo> lines_;
  std::vector<ThreadInfo> threads_;
};

}  // namespace sihle::analysis
