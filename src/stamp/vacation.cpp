// vacation — travel-reservation system.  Three relations (cars, flights,
// rooms) are red-black trees of item ids with per-item stock counters;
// customers hold reservation lists (up to kMaxHold entries).  Client
// transactions, as in STAMP:
//   * make_reservation — for each relation, query `span` candidate items
//     (tree lookups + stock reads) and reserve the best available one, all
//     in a single transaction that also updates the customer's list;
//   * delete_customer  — return every reservation the customer holds;
//   * update_tables    — add/remove items from a relation.
// The high-contention configuration queries wider ranges and updates more;
// low narrows both (STAMP's -q/-u parameters).
// Setup and post-run validation access simulated memory directly,
// before the machine starts / after it stops running.
// sihle-lint: disable-file=R002
#include <algorithm>
#include <vector>

#include "ds/rbtree.h"
#include "stamp/env.h"

namespace sihle::stamp {

namespace {

constexpr int kRelations = 3;
constexpr int kMaxHold = 4;       // reservation slots per customer
constexpr std::int64_t kNone = -1;

struct VacationData {
  std::vector<std::unique_ptr<ds::RBTree>> tables;  // item-id sets
  SharedArray<std::int64_t> stock;     // free units per (relation, id)
  SharedArray<std::int64_t> reserved;  // outstanding units per (relation, id)
  SharedArray<std::int64_t> holds;     // customer slots: relation*items+id
  int items;
  int customers;

  VacationData(Machine& m, int items, int customers)
      : stock(m, static_cast<std::size_t>(kRelations) * items, 0),
        reserved(m, static_cast<std::size_t>(kRelations) * items, 0),
        holds(m, static_cast<std::size_t>(customers) * kMaxHold, kNone),
        items(items),
        customers(customers) {
    for (int r = 0; r < kRelations; ++r) {
      tables.push_back(std::make_unique<ds::RBTree>(m));
    }
  }

  std::size_t slot(int relation, std::int64_t id) const {
    return static_cast<std::size_t>(relation) * items + static_cast<std::size_t>(id);
  }
  std::size_t hold_slot(int customer, int i) const {
    return static_cast<std::size_t>(customer) * kMaxHold + static_cast<std::size_t>(i);
  }
};

// One reservation transaction: for every relation, scan `span` candidate
// ids, pick the available one with the most stock, and reserve it into a
// free slot of the customer's list.
sim::Task<void> make_reservation(Ctx& c, VacationData& d, std::int64_t base,
                                 int span, int customer) {
  for (int relation = 0; relation < kRelations; ++relation) {
    std::int64_t best = kNone;
    std::int64_t best_stock = 0;
    for (int q = 0; q < span; ++q) {
      const std::int64_t id = (base + q * (relation + 1)) % d.items;
      const bool exists = co_await d.tables[relation]->contains(c, id);
      if (!exists) continue;
      const std::int64_t free_units = co_await c.load(d.stock[d.slot(relation, id)]);
      if (free_units > best_stock) {
        best = id;
        best_stock = free_units;
      }
    }
    if (best == kNone) continue;
    // Find a free hold slot; give up on this relation if the list is full.
    int free_slot = -1;
    for (int i = 0; i < kMaxHold; ++i) {
      const std::int64_t h = co_await c.load(d.holds[d.hold_slot(customer, i)]);
      if (h == kNone) {
        free_slot = i;
        break;
      }
    }
    if (free_slot < 0) co_return;
    const std::size_t s = d.slot(relation, best);
    const std::int64_t free_units = co_await c.load(d.stock[s]);
    if (free_units <= 0) continue;
    co_await c.store(d.stock[s], free_units - 1);
    const std::int64_t res = co_await c.load(d.reserved[s]);
    co_await c.store(d.reserved[s], res + 1);
    co_await c.store(d.holds[d.hold_slot(customer, free_slot)],
                     static_cast<std::int64_t>(relation) * d.items + best);
  }
}

// Return every reservation the customer holds.
sim::Task<void> delete_customer(Ctx& c, VacationData& d, int customer) {
  for (int i = 0; i < kMaxHold; ++i) {
    const std::int64_t packed = co_await c.load(d.holds[d.hold_slot(customer, i)]);
    if (packed == kNone) continue;
    const int relation = static_cast<int>(packed / d.items);
    const std::int64_t id = packed % d.items;
    const std::size_t s = d.slot(relation, id);
    const std::int64_t res = co_await c.load(d.reserved[s]);
    co_await c.store(d.reserved[s], res - 1);
    const std::int64_t free_units = co_await c.load(d.stock[s]);
    co_await c.store(d.stock[s], free_units + 1);
    co_await c.store(d.holds[d.hold_slot(customer, i)], kNone);
  }
}

// Grow or shrink a relation.  Items are only retired while no unit is
// outstanding, and retiring zeroes the remaining stock.
sim::Task<void> update_tables(Ctx& c, VacationData& d, int relation,
                              std::int64_t id, bool add) {
  const std::size_t s = d.slot(relation, id);
  if (add) {
    const bool inserted = co_await d.tables[relation]->insert(c, id);
    if (inserted) {
      const std::int64_t res = co_await c.load(d.reserved[s]);
      if (res == 0) co_await c.store(d.stock[s], std::int64_t{3});
    }
  } else {
    const std::int64_t res = co_await c.load(d.reserved[s]);
    if (res == 0) {
      const bool removed = co_await d.tables[relation]->erase(c, id);
      if (removed) co_await c.store(d.stock[s], std::int64_t{0});
    }
  }
}

struct VacationParams {
  int query_span;  // items examined per relation per reservation (-q)
  int update_pct;  // share of update_tables transactions (-u)
};

sim::Task<void> vacation_worker(Ctx& c, const StampConfig cfg, Env& env,
                                VacationData& d, VacationParams p, int ops,
                                stats::OpStats& st) {
  for (int i = 0; i < ops; ++i) {
    const int dice = static_cast<int>(c.rng().below(100));
    co_await c.work(40);  // client-side request parsing
    if (dice < p.update_pct) {
      const int relation = static_cast<int>(c.rng().below(kRelations));
      const auto id = static_cast<std::int64_t>(c.rng().below(d.items));
      const bool add = c.rng().chance(0.5);
      co_await elision::run_cs(
          cfg.scheme, c, env.lock,
          [&d, relation, id, add](Ctx& cc) {
            return update_tables(cc, d, relation, id, add);
          },
          st);
    } else if (dice < p.update_pct + 10) {
      const int cust = static_cast<int>(c.rng().below(d.customers));
      co_await elision::run_cs(
          cfg.scheme, c, env.lock,
          [&d, cust](Ctx& cc) { return delete_customer(cc, d, cust); }, st);
    } else {
      const auto base = static_cast<std::int64_t>(c.rng().below(d.items));
      const int cust = static_cast<int>(c.rng().below(d.customers));
      co_await elision::run_cs(
          cfg.scheme, c, env.lock,
          [&d, base, p, cust](Ctx& cc) {
            return make_reservation(cc, d, base, p.query_span, cust);
          },
          st);
    }
  }
}

StampResult vacation_impl(const StampConfig& cfg, VacationParams p) {
  Env env(cfg);
  const int items = static_cast<int>(512 * cfg.scale);
  const int customers = static_cast<int>(256 * cfg.scale);
  const int ops_per_thread = static_cast<int>(400 * cfg.scale);
  VacationData data(env.m, items, customers);

  sim::Rng fill_rng(cfg.seed ^ 0xFACA7104ULL);
  for (int r = 0; r < kRelations; ++r) {
    for (int i = 0; i < items; ++i) {
      if (fill_rng.chance(0.8)) {
        data.tables[r]->debug_insert(i);
        data.stock[data.slot(r, i)].set_raw(mem::Shared<std::int64_t>::pack(3));
      }
    }
  }

  std::vector<stats::OpStats> st(cfg.threads);
  for (int t = 0; t < cfg.threads; ++t) {
    env.m.spawn([&, t](Ctx& c) {
      return vacation_worker(c, cfg, env, data, p, ops_per_thread, st[t]);
    });
  }
  env.m.run();

  // Validation: tables are valid trees, no negative stock, and — the strong
  // accounting check — reserved[(r,id)] equals exactly the number of
  // customer hold slots referencing (r,id).
  bool ok = true;
  std::vector<std::int64_t> held(static_cast<std::size_t>(kRelations) * items, 0);
  for (int cust = 0; cust < customers; ++cust) {
    for (int i = 0; i < kMaxHold; ++i) {
      const std::int64_t packed = data.holds[data.hold_slot(cust, i)].debug_value();
      if (packed == kNone) continue;
      if (packed < 0 || packed >= static_cast<std::int64_t>(kRelations) * items) {
        ok = false;
        continue;
      }
      held[static_cast<std::size_t>(packed)]++;
    }
  }
  for (int r = 0; r < kRelations && ok; ++r) {
    ok = data.tables[r]->debug_validate();
    for (int i = 0; i < items; ++i) {
      const std::size_t s = data.slot(r, i);
      const std::int64_t stock_v = data.stock[s].debug_value();
      const std::int64_t res_v = data.reserved[s].debug_value();
      ok = ok && stock_v >= 0 && res_v >= 0 && res_v == held[s];
    }
  }
  return env.finish(st, ok);
}

StampResult vacation_high_impl(const StampConfig& cfg) {
  return vacation_impl(cfg, {8, 20});
}
StampResult vacation_low_impl(const StampConfig& cfg) {
  return vacation_impl(cfg, {3, 5});
}

}  // namespace

StampResult run_vacation_high(const StampConfig& cfg) {
  return vacation_high_impl(cfg);
}
StampResult run_vacation_low(const StampConfig& cfg) {
  return vacation_low_impl(cfg);
}

}  // namespace sihle::stamp
