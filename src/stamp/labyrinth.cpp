// labyrinth — Lee-algorithm path routing, with STAMP's structure: each
// routing operation is ONE critical section that snapshots the grid,
// computes a breadth-first shortest path around obstacles and previously
// claimed cells (private work on the snapshot), and claims the path's
// cells.  Under the global lock the entire plan+claim serializes; under
// elision the snapshot+BFS phases of different paths overlap, but every
// committed claim dooms the concurrent snapshotters — labyrinth's
// transactions are the suite's largest, which is exactly why it stresses
// HTM capacity and conflict handling.
// Setup and post-run validation access simulated memory directly,
// before the machine starts / after it stops running.
// sihle-lint: disable-file=R002
#include <algorithm>
#include <queue>
#include <vector>

#include "stamp/env.h"

namespace sihle::stamp {

namespace {

struct Point {
  int x, y;
};

struct LabyrinthData {
  SharedArray<std::int64_t> grid;  // 0 free, -1 obstacle, >0 path id
  int width, height;
  std::vector<std::pair<Point, Point>> jobs;
  LineHandle cursor_line;
  mem::Shared<std::uint64_t> cursor;  // next job index

  LabyrinthData(Machine& m, int w, int h, int paths, sim::Rng& rng)
      : grid(m, static_cast<std::size_t>(w) * h, 0),
        width(w),
        height(h),
        cursor_line(m),
        cursor(cursor_line.line(), 0) {
    // Scatter obstacles, then pick endpoints on free cells.
    for (int i = 0; i < w * h / 12; ++i) {
      const auto cell = rng.below(static_cast<std::uint64_t>(w) * h);
      grid[cell].set_raw(mem::Shared<std::int64_t>::pack(-1));
    }
    auto free_point = [&] {
      for (;;) {
        Point p{static_cast<int>(rng.below(w)), static_cast<int>(rng.below(h))};
        if (grid[cell_of(p, w)].debug_value() == 0) return p;
      }
    };
    for (int i = 0; i < paths; ++i) {
      jobs.emplace_back(free_point(), free_point());
    }
  }

  static std::size_t cell_of(Point p, int w) {
    return static_cast<std::size_t>(p.y) * w + p.x;
  }
  std::size_t cell(int x, int y) const {
    return static_cast<std::size_t>(y) * width + x;
  }
};

// One routing transaction: snapshot the grid, BFS on the snapshot, claim
// the path.  *claimed reports success; out-params are reassigned on every
// attempt so aborted attempts leave no residue.
sim::Task<void> route_and_claim(Ctx& c, LabyrinthData& d, Point src, Point dst,
                                std::int64_t path_id, bool* claimed) {
  *claimed = false;
  const int w = d.width;
  const int h = d.height;

  // Phase 1: snapshot the grid (the transaction's read set = the grid).
  std::vector<std::int64_t> snap(static_cast<std::size_t>(w) * h);
  for (std::size_t i = 0; i < snap.size(); ++i) {
    snap[i] = co_await c.load(d.grid[i]);
  }

  // Phase 2: BFS on the private snapshot (Lee's expansion), charged as
  // private work proportional to the cells expanded.  Both endpoints must
  // still be free — another path may have routed through them.
  const std::size_t dst_cell = d.cell_of(dst, w);
  if (snap[d.cell_of(src, w)] != 0 || snap[dst_cell] != 0) co_return;
  std::vector<std::int32_t> dist(snap.size(), -1);
  std::queue<Point> frontier;
  dist[d.cell_of(src, w)] = 0;
  frontier.push(src);
  std::size_t expanded = 0;
  while (!frontier.empty() && dist[dst_cell] < 0) {
    const Point p = frontier.front();
    frontier.pop();
    ++expanded;
    const Point neighbours[4] = {
        {p.x + 1, p.y}, {p.x - 1, p.y}, {p.x, p.y + 1}, {p.x, p.y - 1}};
    for (const Point n : neighbours) {
      if (n.x < 0 || n.x >= w || n.y < 0 || n.y >= h) continue;
      const std::size_t nc = d.cell_of(n, w);
      if (dist[nc] >= 0) continue;
      if (snap[nc] != 0) continue;  // obstacle or claimed
      dist[nc] = dist[d.cell_of(p, w)] + 1;
      frontier.push(n);
    }
  }
  co_await c.work(4 * expanded);

  if (dist[dst_cell] < 0) co_return;  // unroutable in this snapshot

  // Phase 3: trace back and claim.  The snapshot reads are in the read set,
  // so a concurrent commit that invalidated the route has already doomed
  // this transaction; writes here are safe against the snapshot.
  Point p = dst;
  while (!(p.x == src.x && p.y == src.y)) {
    co_await c.store(d.grid[d.cell_of(p, w)], path_id);
    const Point neighbours[4] = {
        {p.x + 1, p.y}, {p.x - 1, p.y}, {p.x, p.y + 1}, {p.x, p.y - 1}};
    for (const Point n : neighbours) {
      if (n.x < 0 || n.x >= w || n.y < 0 || n.y >= h) continue;
      if (dist[d.cell_of(n, w)] == dist[d.cell_of(p, w)] - 1) {
        p = n;
        break;
      }
    }
  }
  co_await c.store(d.grid[d.cell_of(src, w)], path_id);
  *claimed = true;
}

sim::Task<void> pop_job(Ctx& c, LabyrinthData& d, std::uint64_t* out) {
  const std::uint64_t idx = co_await c.load(d.cursor);
  if (idx < d.jobs.size()) co_await c.store(d.cursor, idx + 1);
  *out = idx;
}

sim::Task<void> labyrinth_worker(Ctx& c, const StampConfig cfg, Env& env,
                                 LabyrinthData& d, stats::OpStats& st,
                                 std::vector<std::int8_t>& routed) {
  for (;;) {
    std::uint64_t idx = 0;
    co_await elision::run_cs(
        cfg.scheme, c, env.lock,
        [&d, &idx](Ctx& cc) { return pop_job(cc, d, &idx); }, st);
    if (idx >= d.jobs.size()) co_return;
    const auto [src, dst] = d.jobs[idx];
    const std::int64_t path_id = static_cast<std::int64_t>(idx) + 1;
    bool claimed = false;
    co_await elision::run_cs(
        cfg.scheme, c, env.lock,
        [&d, src, dst, path_id, &claimed](Ctx& cc) {
          return route_and_claim(cc, d, src, dst, path_id, &claimed);
        },
        st);
    routed[idx] = claimed ? 1 : 0;
  }
}

StampResult labyrinth_impl(const StampConfig& cfg) {
  Env env(cfg);
  const int w = 48;
  const int h = 48;
  const int paths = static_cast<int>(64 * cfg.scale);
  sim::Rng input_rng(cfg.seed ^ 0x1ABULL);
  LabyrinthData data(env.m, w, h, paths, input_rng);

  std::vector<stats::OpStats> st(cfg.threads);
  std::vector<std::int8_t> routed(paths, 0);
  for (int t = 0; t < cfg.threads; ++t) {
    env.m.spawn([&, t](Ctx& c) {
      return labyrinth_worker(c, cfg, env, data, st[t], routed);
    });
  }
  env.m.run();

  // Validation: every claimed path's cells form a connected route between
  // its endpoints (checked by BFS over the final grid restricted to the
  // path id); unclaimed ids appear nowhere; obstacles intact.
  std::vector<std::int64_t> cells_of(paths + 1, 0);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      const std::int64_t v = data.grid[data.cell(x, y)].debug_value();
      if (v > paths) return env.finish(st, false);
      if (v > 0) cells_of[static_cast<std::size_t>(v)]++;
    }
  }
  bool ok = data.cursor.debug_value() >= data.jobs.size();
  int routed_count = 0;
  for (int i = 0; i < paths; ++i) {
    const auto id = static_cast<std::size_t>(i) + 1;
    if (routed[i] == 1) {
      ++routed_count;
      ok = ok && cells_of[id] > 0;
      // Connectivity: walk the claimed cells from src to dst.
      const auto [src, dst] = data.jobs[static_cast<std::size_t>(i)];
      std::vector<char> seen(static_cast<std::size_t>(w) * h, 0);
      std::queue<Point> q;
      q.push(src);
      seen[data.cell_of(src, w)] = 1;
      bool reached = false;
      while (!q.empty() && !reached) {
        const Point p = q.front();
        q.pop();
        if (p.x == dst.x && p.y == dst.y) {
          reached = true;
          break;
        }
        const Point neighbours[4] = {
            {p.x + 1, p.y}, {p.x - 1, p.y}, {p.x, p.y + 1}, {p.x, p.y - 1}};
        for (const Point n : neighbours) {
          if (n.x < 0 || n.x >= w || n.y < 0 || n.y >= h) continue;
          const std::size_t nc = data.cell_of(n, w);
          if (seen[nc] != 0) continue;
          if (data.grid[nc].debug_value() !=
              static_cast<std::int64_t>(id)) {
            continue;
          }
          seen[nc] = 1;
          q.push(n);
        }
      }
      ok = ok && reached;
    } else {
      ok = ok && cells_of[id] == 0;
    }
  }
  ok = ok && routed_count > 0;
  return env.finish(st, ok);
}

}  // namespace

StampResult run_labyrinth(const StampConfig& cfg) {
  return labyrinth_impl(cfg);
}

}  // namespace sihle::stamp
