// ssca2 — kernel 1 of the SSCA#2 graph benchmark: parallel construction of
// an adjacency structure.  Transactions are tiny (bump a vertex's degree,
// write one adjacency slot) and conflicts are rare (random endpoints), so
// almost everything should elide; the lock itself is the only bottleneck.
// Setup and post-run validation access simulated memory directly,
// before the machine starts / after it stops running.
// sihle-lint: disable-file=R002
#include <algorithm>
#include <vector>

#include "stamp/env.h"

namespace sihle::stamp {

namespace {

constexpr int kMaxDegree = 32;

struct Graph {
  SharedArray<std::int64_t> degree;
  SharedArray<std::int64_t> adjacency;  // vertex-major, kMaxDegree slots each
  int vertices;
  Graph(Machine& m, int vertices)
      : degree(m, static_cast<std::size_t>(vertices), 0),
        adjacency(m, static_cast<std::size_t>(vertices) * kMaxDegree, -1),
        vertices(vertices) {}
};

sim::Task<void> add_edge(Ctx& c, Graph& g, int u, int v) {
  const std::int64_t deg = co_await c.load(g.degree[static_cast<std::size_t>(u)]);
  if (deg < kMaxDegree) {
    co_await c.store(g.adjacency[static_cast<std::size_t>(u) * kMaxDegree +
                                 static_cast<std::size_t>(deg)],
                     static_cast<std::int64_t>(v));
    co_await c.store(g.degree[static_cast<std::size_t>(u)], deg + 1);
  }
}

sim::Task<void> ssca2_worker(Ctx& c, const StampConfig cfg, Env& env,
                             Graph& g, int edges, stats::OpStats& st) {
  for (int e = 0; e < edges; ++e) {
    const int u = static_cast<int>(c.rng().below(static_cast<std::uint64_t>(g.vertices)));
    const int v = static_cast<int>(c.rng().below(static_cast<std::uint64_t>(g.vertices)));
    co_await c.work(15);  // edge-list generation
    co_await elision::run_cs(
        cfg.scheme, c, env.lock,
        [&g, u, v](Ctx& cc) { return add_edge(cc, g, u, v); }, st);
  }
}

StampResult ssca2_impl(const StampConfig& cfg) {
  Env env(cfg);
  const int vertices = static_cast<int>(1024 * cfg.scale);
  const int edges_per_thread = static_cast<int>(1500 * cfg.scale);
  Graph g(env.m, vertices);

  std::vector<stats::OpStats> st(cfg.threads);
  for (int t = 0; t < cfg.threads; ++t) {
    env.m.spawn([&, t](Ctx& c) {
      return ssca2_worker(c, cfg, env, g, edges_per_thread, st[t]);
    });
  }
  env.m.run();

  // Validation: every recorded adjacency slot below the degree is a real
  // vertex, and total degree equals total successful insertions (edges may
  // be dropped only by the kMaxDegree cap).
  std::int64_t total_degree = 0;
  bool ok = true;
  for (int u = 0; u < vertices; ++u) {
    const std::int64_t deg = g.degree[static_cast<std::size_t>(u)].debug_value();
    ok = ok && deg >= 0 && deg <= kMaxDegree;
    total_degree += deg;
    for (std::int64_t i = 0; i < deg; ++i) {
      const std::int64_t v =
          g.adjacency[static_cast<std::size_t>(u) * kMaxDegree + i].debug_value();
      ok = ok && v >= 0 && v < vertices;
    }
  }
  ok = ok && total_degree <= static_cast<std::int64_t>(edges_per_thread) * cfg.threads;
  ok = ok && total_degree > 0;
  return env.finish(st, ok);
}

}  // namespace

StampResult run_ssca2(const StampConfig& cfg) { return ssca2_impl(cfg); }

}  // namespace sihle::stamp
