// STAMP-kernel substrate (§7.2).
//
// The paper evaluates the schemes on the STAMP suite with every transaction
// replaced by a critical section on one global lock per application.  We
// reimplement the eight evaluated configurations (bayes is excluded, as in
// the paper) as compact kernels that preserve each application's
// transaction-profile signature — transaction length distribution,
// read/write-set size, and conflict structure — which is what determines
// the relative behaviour of the elision schemes.
//
//   genome        long-ish read-mostly transactions over a shared hash set,
//                 then a linking phase with moderate conflicts
//   intruder      short queue-pop + fragment-map transactions, high churn
//   kmeans_high   tiny accumulator transactions on few clusters (hot)
//   kmeans_low    tiny accumulator transactions on many clusters (cool)
//   labyrinth     very long transactions claiming whole grid paths (large
//                 write sets, occasional capacity aborts)
//   yada          medium cavity-refinement transactions with a shared
//                 worklist
//   ssca2         tiny graph-edge insertion transactions, very low conflict
//   vacation_high travel-reservation mixes over red-black-tree tables,
//                 wide queries and more updates
//   vacation_low  narrower queries, fewer updates
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "elision/policy.h"
#include "locks/locks.h"
#include "sim/cost_model.h"
#include "stats/op_stats.h"

namespace sihle::stamp {

struct StampConfig {
  // Any elision policy; canonical Schemes convert implicitly.
  elision::Policy scheme = elision::Scheme::kStandard;
  locks::LockKind lock = locks::LockKind::kTtas;
  int threads = 8;
  std::uint64_t seed = 1;
  double spurious = 1e-4;
  double persistent = 2e-3;
  double scale = 1.0;  // workload size multiplier
  sim::CostModel costs{};
};

struct StampResult {
  sim::Cycles time = 0;  // virtual-time makespan of the run
  stats::OpStats stats;
  bool valid = false;  // application-level validation passed
};

using StampFn = StampResult (*)(const StampConfig&);

struct StampApp {
  const char* name;
  StampFn run;
};

// The nine evaluated configurations, in the paper's Figure 11 order.
const std::vector<StampApp>& stamp_apps();

StampResult run_genome(const StampConfig&);
StampResult run_intruder(const StampConfig&);
StampResult run_kmeans_high(const StampConfig&);
StampResult run_kmeans_low(const StampConfig&);
StampResult run_labyrinth(const StampConfig&);
StampResult run_yada(const StampConfig&);
StampResult run_ssca2(const StampConfig&);
StampResult run_vacation_high(const StampConfig&);
StampResult run_vacation_low(const StampConfig&);

}  // namespace sihle::stamp
