// Shared plumbing for the STAMP kernels: a machine + one global elidable
// lock (the paper's methodology replaces every STAMP transaction with a
// critical section on a single global lock).  The lock-kind product, the
// SCM auxiliary lock, and the adaptation state all live inside
// elision::ElidedLock — kernels call elision::run_cs and never dispatch on
// LockKind themselves.
#pragma once

#include "elision/elided_lock.h"
#include "runtime/ctx.h"
#include "runtime/shared_array.h"
#include "stamp/app.h"

namespace sihle::stamp {

using runtime::Ctx;
using runtime::LineHandle;
using runtime::Machine;
using runtime::SharedArray;

struct Env {
  Machine m;
  elision::ElidedLock lock;
  explicit Env(const StampConfig& cfg)
      : m(machine_config(cfg)), lock(m, cfg.lock, cfg.scheme.conflict.aux) {}

  static Machine::Config machine_config(const StampConfig& cfg) {
    Machine::Config mc;
    mc.seed = cfg.seed;
    mc.htm.spurious_abort_per_access = cfg.spurious;
    mc.htm.persistent_abort_per_tx = cfg.persistent;
    mc.costs = cfg.costs;
    return mc;
  }

  StampResult finish(std::vector<stats::OpStats>& per_thread, bool valid) {
    StampResult out;
    for (const auto& st : per_thread) out.stats += st;
    out.time = m.exec().max_clock();
    out.valid = valid;
    return out;
  }
};

}  // namespace sihle::stamp
