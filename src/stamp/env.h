// Shared plumbing for the STAMP kernels: a machine + one global lock (the
// paper's methodology replaces every STAMP transaction with a critical
// section on a single global lock) + the SCM auxiliary lock, and the
// lock-kind dispatch macro each kernel uses.
#pragma once

#include "runtime/ctx.h"
#include "runtime/shared_array.h"
#include "stamp/app.h"

namespace sihle::stamp {

using runtime::Ctx;
using runtime::LineHandle;
using runtime::Machine;
using runtime::SharedArray;

template <class Lock>
struct Env {
  Machine m;
  Lock lock;
  locks::MCSLock aux;
  explicit Env(const StampConfig& cfg)
      : m(machine_config(cfg)), lock(m), aux(m) {}

  static Machine::Config machine_config(const StampConfig& cfg) {
    Machine::Config mc;
    mc.seed = cfg.seed;
    mc.htm.spurious_abort_per_access = cfg.spurious;
    mc.htm.persistent_abort_per_tx = cfg.persistent;
    mc.costs = cfg.costs;
    return mc;
  }

  StampResult finish(std::vector<stats::OpStats>& per_thread, bool valid) {
    StampResult out;
    for (const auto& st : per_thread) out.stats += st;
    out.time = m.exec().max_clock();
    out.valid = valid;
    return out;
  }
};

// Expands to the lock-kind dispatch body for a kernel implemented as
// `template <class Lock> StampResult name_impl(const StampConfig&)`.
#define SIHLE_STAMP_DISPATCH(impl, cfg)                                   \
  switch ((cfg).lock) {                                                   \
    case locks::LockKind::kTtas: return impl<locks::TTASLock>(cfg);       \
    case locks::LockKind::kMcs: return impl<locks::MCSLock>(cfg);         \
    case locks::LockKind::kTicket: return impl<locks::TicketLock>(cfg);   \
    case locks::LockKind::kClh: return impl<locks::CLHLock>(cfg);         \
    case locks::LockKind::kAnderson: return impl<locks::AndersonLock>(cfg); \
    case locks::LockKind::kElidableTicket:                                \
      return impl<locks::ElidableTicketLock>(cfg);                        \
    case locks::LockKind::kElidableClh:                                   \
      return impl<locks::ElidableCLHLock>(cfg);                           \
    case locks::LockKind::kElidableAnderson:                              \
      return impl<locks::ElidableAndersonLock>(cfg);                      \
  }                                                                       \
  return {}

}  // namespace sihle::stamp
