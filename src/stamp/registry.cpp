#include "stamp/app.h"

namespace sihle::stamp {

const std::vector<StampApp>& stamp_apps() {
  static const std::vector<StampApp> apps = {
      {"genome", run_genome},
      {"intruder", run_intruder},
      {"kmeans_high", run_kmeans_high},
      {"kmeans_low", run_kmeans_low},
      {"labyrinth", run_labyrinth},
      {"yada", run_yada},
      {"ssca2", run_ssca2},
      {"vacation_high", run_vacation_high},
      {"vacation_low", run_vacation_low},
  };
  return apps;
}

}  // namespace sihle::stamp
