// intruder — network-intrusion detection: threads pop packet fragments from
// a shared queue (a short but hot transaction), insert them into a
// per-flow reassembly map (short transaction, moderate conflicts), and run
// detection locally once a flow completes.  The hot queue head is what
// limits intruder's speculation on real hardware.
// Setup and post-run validation access simulated memory directly,
// before the machine starts / after it stops running.
// sihle-lint: disable-file=R002
#include <algorithm>
#include <vector>

#include "ds/hashtable.h"
#include "stamp/env.h"

namespace sihle::stamp {

namespace {

struct Packet {
  int flow;
  int fragment;
  std::int64_t payload;  // synthetic fragment contents
};

struct IntruderData {
  LineHandle cursor_line;
  mem::Shared<std::uint64_t> cursor;   // next packet index (hot)
  SharedArray<std::int64_t> received;  // fragments received per flow
  SharedArray<std::int64_t> checksum;  // reassembly checksum per flow
  ds::HashTable seen;                  // flow*4096+fragment dedup set
  std::vector<Packet> packets;         // immutable input
  std::vector<int> flow_len;           // immutable input
  std::vector<std::int64_t> expected_checksum;  // ground truth per flow

  IntruderData(Machine& m, int flows, sim::Rng& rng)
      : cursor_line(m),
        cursor(cursor_line.line(), 0),
        received(m, static_cast<std::size_t>(flows), 0),
        checksum(m, static_cast<std::size_t>(flows), 0),
        seen(m, static_cast<std::size_t>(flows) * 2) {
    flow_len.resize(flows);
    expected_checksum.assign(flows, 0);
    for (int f = 0; f < flows; ++f) {
      flow_len[f] = static_cast<int>(rng.range(2, 8));
      for (int p = 0; p < flow_len[f]; ++p) {
        const auto payload = static_cast<std::int64_t>(rng.below(1 << 20));
        packets.push_back({f, p, payload});
        expected_checksum[f] += payload;  // order-independent checksum
      }
    }
    // Shuffle so fragments of one flow arrive interleaved.
    for (std::size_t i = packets.size(); i > 1; --i) {
      std::swap(packets[i - 1], packets[rng.below(i)]);
    }
  }
};

// Critical section 1: grab the next packet off the shared queue.
sim::Task<void> pop_packet(Ctx& c, IntruderData& d, std::uint64_t* out) {
  const std::uint64_t idx = co_await c.load(d.cursor);
  if (idx < d.packets.size()) co_await c.store(d.cursor, idx + 1);
  *out = idx;
}

// Critical section 2: record the fragment into the reassembly state
// (dedup set, fragment count, running checksum); report whether the flow is
// now fully assembled.
sim::Task<void> record_fragment(Ctx& c, IntruderData& d, Packet p, bool* completed) {
  const bool fresh =
      co_await d.seen.insert(c, static_cast<std::int64_t>(p.flow) * 4096 + p.fragment);
  *completed = false;
  if (fresh) {
    const std::int64_t got = co_await c.load(d.received[static_cast<std::size_t>(p.flow)]);
    co_await c.store(d.received[static_cast<std::size_t>(p.flow)], got + 1);
    const std::int64_t sum = co_await c.load(d.checksum[static_cast<std::size_t>(p.flow)]);
    co_await c.store(d.checksum[static_cast<std::size_t>(p.flow)], sum + p.payload);
    *completed = got + 1 == d.flow_len[static_cast<std::size_t>(p.flow)];
  }
}

sim::Task<void> intruder_worker(Ctx& c, const StampConfig cfg, Env& env,
                                IntruderData& d, stats::OpStats& st,
                                std::uint64_t& detected) {
  for (;;) {
    std::uint64_t idx = 0;
    co_await elision::run_cs(
        cfg.scheme, c, env.lock,
        [&d, &idx](Ctx& cc) { return pop_packet(cc, d, &idx); }, st);
    if (idx >= d.packets.size()) co_return;
    const Packet p = d.packets[idx];
    bool completed = false;
    co_await elision::run_cs(
        cfg.scheme, c, env.lock,
        [&d, p, &completed](Ctx& cc) { return record_fragment(cc, d, p, &completed); },
        st);
    if (completed) {
      // Local detection pass over the assembled flow.
      co_await c.work(80ULL * static_cast<std::uint64_t>(d.flow_len[p.flow]));
      ++detected;
    }
  }
}

StampResult intruder_impl(const StampConfig& cfg) {
  Env env(cfg);
  const int flows = static_cast<int>(1200 * cfg.scale);
  sim::Rng input_rng(cfg.seed ^ 0x1257ULL);
  IntruderData data(env.m, flows, input_rng);

  std::vector<stats::OpStats> st(cfg.threads);
  std::vector<std::uint64_t> detected(cfg.threads, 0);
  for (int t = 0; t < cfg.threads; ++t) {
    env.m.spawn([&, t](Ctx& c) {
      return intruder_worker(c, cfg, env, data, st[t], detected[t]);
    });
  }
  env.m.run();

  std::uint64_t total_detected = 0;
  for (auto v : detected) total_detected += v;
  bool ok = total_detected == static_cast<std::uint64_t>(flows) &&
            data.cursor.debug_value() >= data.packets.size() &&
            data.seen.debug_size() == data.packets.size();
  // Reassembly fidelity: every flow's checksum matches the ground truth —
  // no fragment was lost, duplicated, or torn by an aborted attempt.
  for (int f = 0; f < flows && ok; ++f) {
    ok = data.checksum[static_cast<std::size_t>(f)].debug_value() ==
         data.expected_checksum[static_cast<std::size_t>(f)];
  }
  return env.finish(st, ok);
}

}  // namespace

StampResult run_intruder(const StampConfig& cfg) {
  return intruder_impl(cfg);
}

}  // namespace sihle::stamp
