// genome — gene sequencing, in the original's three phases.  Phase 1
// deduplicates DNA segments into a shared hash set (read-mostly
// transactions over chains).  Phase 2 links unique segments into sequence
// chains by matching overlaps (transactions that probe the set and write
// link slots, with moderate conflicts).  Phase 3 walks the linked chains to
// emit the reconstructed sequence (read-only transactions of medium
// length).
// Setup and post-run validation access simulated memory directly,
// before the machine starts / after it stops running.
// sihle-lint: disable-file=R002
#include <algorithm>
#include <vector>

#include "ds/hashtable.h"
#include "runtime/barrier.h"
#include "stamp/env.h"

namespace sihle::stamp {

namespace {

struct GenomeData {
  ds::HashTable segments;             // deduplicated segment set
  SharedArray<std::int64_t> link;     // successor of each unique segment id
  std::vector<std::int64_t> input;    // immutable segment stream (with dups)
  std::int64_t distinct = 0;          // ground truth

  GenomeData(Machine& m, int unique, int dups, sim::Rng& rng)
      : segments(m, static_cast<std::size_t>(unique) * 2),
        link(m, static_cast<std::size_t>(unique), -1) {
    for (int i = 0; i < unique; ++i) input.push_back(i);
    for (int i = 0; i < dups; ++i) {
      input.push_back(static_cast<std::int64_t>(rng.below(unique)));
    }
    for (std::size_t i = input.size(); i > 1; --i) {
      std::swap(input[i - 1], input[rng.below(i)]);
    }
    std::vector<bool> seen(unique, false);
    for (auto s : input) {
      if (!seen[static_cast<std::size_t>(s)]) {
        seen[static_cast<std::size_t>(s)] = true;
        ++distinct;
      }
    }
  }
};

sim::Task<void> dedup_insert(Ctx& c, GenomeData& d, std::int64_t seg) {
  const bool fresh = co_await d.segments.insert(c, seg);
  (void)fresh;
}

// Phase 3: walk up to `cap` links starting at `seg`, accumulating the
// reconstructed subsequence length.  Read-only.
sim::Task<void> walk_chain(Ctx& c, GenomeData& d, std::int64_t seg, int cap,
                           std::int64_t* length) {
  *length = 0;
  std::int64_t cur = seg;
  for (int i = 0; i < cap; ++i) {
    const std::int64_t next = co_await c.load(d.link[static_cast<std::size_t>(cur)]);
    if (next == -1) co_return;
    ++*length;
    cur = next;
  }
}

// Phase 2: link segment `seg` to its overlap successor if both exist.
sim::Task<void> link_segment(Ctx& c, GenomeData& d, std::int64_t seg) {
  const std::int64_t succ = (seg + 1) % static_cast<std::int64_t>(d.link.size());
  const bool have_succ = co_await d.segments.contains(c, succ);
  if (have_succ) {
    const std::int64_t cur = co_await c.load(d.link[static_cast<std::size_t>(seg)]);
    if (cur == -1) {
      co_await c.store(d.link[static_cast<std::size_t>(seg)], succ);
    }
  }
}

sim::Task<void> genome_worker(Ctx& c, const StampConfig cfg, Env& env,
                              GenomeData& d, runtime::Barrier& bar, int lo, int hi,
                              int unique, stats::OpStats& st,
                              std::int64_t* chain_total) {
  // Phase 1: deduplicate this thread's slice of the segment stream.
  for (int i = lo; i < hi; ++i) {
    const std::int64_t seg = d.input[static_cast<std::size_t>(i)];
    co_await c.work(25);  // hash the segment string
    co_await elision::run_cs(
        cfg.scheme, c, env.lock,
        [&d, seg](Ctx& cc) { return dedup_insert(cc, d, seg); }, st);
  }
  co_await bar.arrive(c);
  // Phase 2: link unique segments (partitioned by segment id).
  const int chunk = (unique + cfg.threads - 1) / cfg.threads;
  const int tlo = static_cast<int>(c.id()) * chunk;
  const int thi = std::min(unique, tlo + chunk);
  for (int seg = tlo; seg < thi; ++seg) {
    co_await c.work(40);  // overlap matching
    co_await elision::run_cs(
        cfg.scheme, c, env.lock,
        [&d, seg](Ctx& cc) { return link_segment(cc, d, seg); }, st);
  }
  co_await bar.arrive(c);
  // Phase 3: walk chains to emit the sequence (read-only, medium length).
  for (int seg = tlo; seg < thi; seg += 8) {
    std::int64_t length = 0;
    co_await elision::run_cs(
        cfg.scheme, c, env.lock,
        [&d, seg, &length](Ctx& cc) { return walk_chain(cc, d, seg, 16, &length); },
        st);
    *chain_total += length;
    co_await c.work(20);
  }
}

StampResult genome_impl(const StampConfig& cfg) {
  Env env(cfg);
  const int unique = static_cast<int>(1024 * cfg.scale);
  const int dups = static_cast<int>(3072 * cfg.scale);
  sim::Rng input_rng(cfg.seed ^ 0x6E0EULL);
  GenomeData data(env.m, unique, dups, input_rng);
  runtime::Barrier bar(env.m, static_cast<std::uint32_t>(cfg.threads));

  std::vector<stats::OpStats> st(cfg.threads);
  std::vector<std::int64_t> chain_totals(cfg.threads, 0);
  const int n = static_cast<int>(data.input.size());
  const int chunk = (n + cfg.threads - 1) / cfg.threads;
  for (int t = 0; t < cfg.threads; ++t) {
    const int lo = t * chunk;
    const int hi = std::min(n, lo + chunk);
    env.m.spawn([&, lo, hi, t](Ctx& c) {
      return genome_worker(c, cfg, env, data, bar, lo, hi, unique, st[t],
                                 &chain_totals[t]);
    });
  }
  env.m.run();

  bool ok = data.segments.debug_size() == static_cast<std::size_t>(data.distinct);
  std::int64_t links = 0;
  for (std::size_t i = 0; i < data.link.size(); ++i) {
    const std::int64_t v = data.link[i].debug_value();
    ok = ok && (v == -1 || v == static_cast<std::int64_t>((i + 1) % data.link.size()));
    if (v != -1) ++links;
  }
  ok = ok && links == static_cast<std::int64_t>(unique);  // all segments present
  // Phase 3 sanity: with every link in place, every sampled walk runs the
  // full cap, so the total is exactly (#samples * cap).
  std::int64_t walked = 0;
  for (auto v : chain_totals) walked += v;
  std::int64_t expected_walk = 0;
  const int wchunk = (unique + cfg.threads - 1) / cfg.threads;
  for (int t = 0; t < cfg.threads; ++t) {
    const int tlo = t * wchunk;
    const int thi = std::min(unique, tlo + wchunk);
    for (int seg = tlo; seg < thi; seg += 8) expected_walk += 16;
  }
  ok = ok && walked == expected_walk;
  return env.finish(st, ok);
}

}  // namespace

StampResult run_genome(const StampConfig& cfg) { return genome_impl(cfg); }

}  // namespace sihle::stamp
