// kmeans — iterative clustering.  Each point costs some private distance
// computation, then a tiny transaction folds the point's coordinates into
// its cluster's accumulator.  The high-contention configuration uses few
// clusters (hot accumulators); the low-contention one uses many.
// Setup and post-run validation access simulated memory directly,
// before the machine starts / after it stops running.
// sihle-lint: disable-file=R002
#include <algorithm>
#include <array>

#include "stamp/env.h"

namespace sihle::stamp {

namespace {

constexpr int kDims = 4;
constexpr int kIters = 3;

struct KmeansData {
  SharedArray<std::int64_t> acc;  // per cluster: kDims sums + 1 count
  int clusters;
  int points;
  KmeansData(Machine& m, int clusters, int points)
      : acc(m, static_cast<std::size_t>(clusters) * (kDims + 1), 0),
        clusters(clusters),
        points(points) {}
};

sim::Task<void> add_point(Ctx& c, KmeansData& d, int cluster,
                          const std::array<std::int64_t, kDims>& coords) {
  const std::size_t base = static_cast<std::size_t>(cluster) * (kDims + 1);
  for (int i = 0; i < kDims; ++i) {
    const std::int64_t cur = co_await c.load(d.acc[base + i]);
    co_await c.store(d.acc[base + i], cur + coords[i]);
  }
  const std::int64_t cnt = co_await c.load(d.acc[base + kDims]);
  co_await c.store(d.acc[base + kDims], cnt + 1);
}

sim::Task<void> kmeans_worker(Ctx& c, const StampConfig cfg, Env& env,
                              KmeansData& d, int lo, int hi, stats::OpStats& st) {
  for (int iter = 0; iter < kIters; ++iter) {
    for (int p = lo; p < hi; ++p) {
      // Private work: distance of the point to every centroid.
      co_await c.work(30ULL * static_cast<std::uint64_t>(d.clusters < 16 ? d.clusters : 16));
      std::array<std::int64_t, kDims> coords;
      std::uint64_t h = static_cast<std::uint64_t>(p) * 0x9E3779B97F4A7C15ULL + iter;
      for (int i = 0; i < kDims; ++i) {
        h = h * 6364136223846793005ULL + 1442695040888963407ULL;
        coords[i] = static_cast<std::int64_t>(h >> 56);
      }
      const int cluster = static_cast<int>(h % static_cast<std::uint64_t>(d.clusters));
      co_await elision::run_cs(
          cfg.scheme, c, env.lock,
          [&d, cluster, coords](Ctx& cc) { return add_point(cc, d, cluster, coords); },
          st);
    }
  }
}

StampResult kmeans_impl(const StampConfig& cfg, int clusters) {
  Env env(cfg);
  const int points = static_cast<int>(2000 * cfg.scale);
  KmeansData data(env.m, clusters, points);

  std::vector<stats::OpStats> st(cfg.threads);
  const int chunk = (points + cfg.threads - 1) / cfg.threads;
  for (int t = 0; t < cfg.threads; ++t) {
    const int lo = t * chunk;
    const int hi = std::min(points, lo + chunk);
    env.m.spawn([&, lo, hi, t](Ctx& c) {
      return kmeans_worker(c, cfg, env, data, lo, hi, st[t]);
    });
  }
  env.m.run();

  std::int64_t total = 0;
  for (int k = 0; k < clusters; ++k) {
    total += data.acc[static_cast<std::size_t>(k) * (kDims + 1) + kDims].debug_value();
  }
  return env.finish(st, total == static_cast<std::int64_t>(points) * kIters);
}

// STAMP's high-contention kmeans uses ~15 clusters, the low-contention one
// ~40; we keep the same ratio.
StampResult kmeans_high_impl(const StampConfig& cfg) {
  return kmeans_impl(cfg, 15);
}
StampResult kmeans_low_impl(const StampConfig& cfg) {
  return kmeans_impl(cfg, 60);
}

}  // namespace

StampResult run_kmeans_high(const StampConfig& cfg) {
  return kmeans_high_impl(cfg);
}
StampResult run_kmeans_low(const StampConfig& cfg) {
  return kmeans_low_impl(cfg);
}

}  // namespace sihle::stamp
