// yada — Ruppert's Delaunay mesh refinement.  Threads pull "bad" triangles
// from a shared worklist, retriangulate the surrounding cavity (a
// medium-sized transaction reading a neighborhood and rewriting its
// centre), and push any new bad triangles.  Pop and push are short, hot
// worklist transactions; the cavity retriangulation is the dominant,
// mostly-parallel transaction.
// Setup and post-run validation access simulated memory directly,
// before the machine starts / after it stops running.
// sihle-lint: disable-file=R002
#include <algorithm>
#include <vector>

#include "stamp/env.h"

namespace sihle::stamp {

namespace {

constexpr int kCavity = 6;     // cells read on each side of the target
constexpr int kRewrite = 3;    // cells rewritten on each side
constexpr int kMaxDepth = 2;   // refinement recursion bound

struct YadaData {
  SharedArray<std::int64_t> mesh;   // per-element quality; <0 means "bad"
  SharedArray<std::int64_t> work;   // worklist stack: element | depth<<32
  LineHandle top_line;
  mem::Shared<std::uint64_t> top;   // stack pointer (hot)
  std::size_t mesh_size;

  YadaData(Machine& m, std::size_t mesh_size, std::size_t work_cap)
      : mesh(m, mesh_size, 1),
        work(m, work_cap, 0),
        top_line(m),
        top(top_line.line(), 0),
        mesh_size(mesh_size) {}
};

// Pop one work item; *item = -1 when the worklist is empty.
// Out-parameters are (re)assigned on every attempt, so aborted speculative
// attempts leave no residue.
sim::Task<void> pop_work(Ctx& c, YadaData& d, std::int64_t* item) {
  const std::uint64_t t = co_await c.load(d.top);
  if (t == 0) {
    *item = -1;
    co_return;
  }
  *item = co_await c.load(d.work[t - 1]);
  co_await c.store(d.top, t - 1);
}

// Retriangulate the cavity around `elem`.
sim::Task<void> refine_cavity(Ctx& c, YadaData& d, std::size_t elem) {
  std::int64_t acc = 0;
  for (int i = -kCavity; i <= kCavity; ++i) {
    const std::size_t n = (elem + d.mesh_size + static_cast<std::size_t>(i)) % d.mesh_size;
    acc += co_await c.load(d.mesh[n]);
  }
  for (int i = -kRewrite; i <= kRewrite; ++i) {
    const std::size_t n = (elem + d.mesh_size + static_cast<std::size_t>(i)) % d.mesh_size;
    co_await c.store(d.mesh[n], (acc % 97) + 1 + i + kRewrite + 1);
  }
}

sim::Task<void> push_work(Ctx& c, YadaData& d, std::int64_t item) {
  const std::uint64_t t = co_await c.load(d.top);
  if (t < d.work.size()) {
    co_await c.store(d.work[t], item);
    co_await c.store(d.top, t + 1);
  }
}

sim::Task<void> yada_worker(Ctx& c, const StampConfig cfg, Env& env,
                            YadaData& d, stats::OpStats& st, std::uint64_t& processed) {
  for (;;) {
    std::int64_t item = -1;
    co_await elision::run_cs(
        cfg.scheme, c, env.lock,
        [&d, &item](Ctx& cc) { return pop_work(cc, d, &item); }, st);
    if (item < 0) co_return;
    const auto elem = static_cast<std::size_t>(item & 0xFFFFFFFF);
    const auto depth = static_cast<int>(item >> 32);
    co_await c.work(120);  // geometric predicates for the cavity
    co_await elision::run_cs(
        cfg.scheme, c, env.lock,
        [&d, elem](Ctx& cc) { return refine_cavity(cc, d, elem); }, st);
    ++processed;
    if (depth < kMaxDepth && c.rng().chance(0.25)) {
      const std::size_t fresh = (elem + 1 + c.rng().below(d.mesh_size - 1)) % d.mesh_size;
      const std::int64_t next_item = static_cast<std::int64_t>(fresh) |
                                     (static_cast<std::int64_t>(depth + 1) << 32);
      co_await elision::run_cs(
          cfg.scheme, c, env.lock,
          [&d, next_item](Ctx& cc) { return push_work(cc, d, next_item); }, st);
    }
  }
}

StampResult yada_impl(const StampConfig& cfg) {
  Env env(cfg);
  const auto mesh_size = static_cast<std::size_t>(4096 * cfg.scale);
  const auto initial_bad = static_cast<std::size_t>(900 * cfg.scale);
  YadaData data(env.m, mesh_size, initial_bad * 4);

  sim::Rng input_rng(cfg.seed ^ 0x9ADAULL);
  for (std::size_t i = 0; i < initial_bad; ++i) {
    data.work[i].set_raw(mem::Shared<std::int64_t>::pack(
        static_cast<std::int64_t>(input_rng.below(mesh_size))));
  }
  data.top.set_raw(mem::Shared<std::uint64_t>::pack(initial_bad));

  std::vector<stats::OpStats> st(cfg.threads);
  std::vector<std::uint64_t> processed(cfg.threads, 0);
  for (int t = 0; t < cfg.threads; ++t) {
    env.m.spawn([&, t](Ctx& c) {
      return yada_worker(c, cfg, env, data, st[t], processed[t]);
    });
  }
  env.m.run();

  std::uint64_t total = 0;
  for (auto p : processed) total += p;
  bool ok = total >= initial_bad && data.top.debug_value() == 0;
  for (std::size_t i = 0; i < mesh_size && ok; ++i) {
    ok = data.mesh[i].debug_value() >= 1;  // every element has valid quality
  }
  return env.finish(st, ok);
}

}  // namespace

StampResult run_yada(const StampConfig& cfg) { return yada_impl(cfg); }

}  // namespace sihle::stamp
