// Umbrella header for the lock implementations.
//
// Every lock satisfies the interface the elision schemes need:
//   Task<void> acquire(Ctx&)          — standard (non-speculative) acquire
//   Task<void> release(Ctx&)          — standard release
//   Task<bool> try_acquire_once(Ctx&) — the non-transactional re-execution
//                                       of the XACQUIRE instruction after an
//                                       abort (single TAS for TTAS;
//                                       unconditional enqueue for fair locks)
//   Task<bool> is_locked(Ctx&)        — lock-state read; transactional when
//                                       called inside a transaction (this is
//                                       the read that couples elided
//                                       transactions to the lock's line)
//   Task<bool> wait_until_free(Ctx&)  — non-transactional wait; returns
//                                       whether the caller had to wait
#pragma once

#include "locks/anderson.h"
#include "locks/clh.h"
#include "locks/mcs.h"
#include "locks/rw.h"
#include "locks/ticket.h"
#include "locks/ttas.h"

namespace sihle::locks {

enum class LockKind {
  kTtas,
  kMcs,
  kTicket,
  kClh,
  kAnderson,
  kElidableTicket,
  kElidableClh,
  kElidableAnderson,
  kRw,
  kRwWp,
};

constexpr const char* to_string(LockKind k) {
  switch (k) {
    case LockKind::kTtas: return "TTAS";
    case LockKind::kMcs: return "MCS";
    case LockKind::kTicket: return "Ticket";
    case LockKind::kClh: return "CLH";
    case LockKind::kAnderson: return "Anderson";
    case LockKind::kElidableTicket: return "ETicket";
    case LockKind::kElidableClh: return "ECLH";
    case LockKind::kElidableAnderson: return "EAnderson";
    case LockKind::kRw: return "RW";
    case LockKind::kRwWp: return "RW-WP";
  }
  return "?";
}

// The reader-writer family: the only kinds with shared/update acquisition.
constexpr bool is_rw_lock(LockKind k) {
  return k == LockKind::kRw || k == LockKind::kRwWp;
}

// Whether `k` can be acquired in mode `m`.  Every lock serves kExclusive;
// shared and update require the reader-writer family.
constexpr bool supports_mode(LockKind k, LockMode m) {
  return m == LockMode::kExclusive || is_rw_lock(k);
}

}  // namespace sihle::locks
