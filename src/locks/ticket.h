// Ticket lock (paper Figure 12) and its HLE-adjusted variant (Figure 13,
// Appendix A).
//
// The plain ticket lock is fair but NOT HLE-compatible: releasing
// increments `owner`, so the release store does not restore the lock to its
// pre-acquire state as XRELEASE requires.  The elidable variant's release
// first tries to CAS `next` back down (erasing all trace of the
// acquisition, which is what a solo or speculative run observes); only if
// that fails — meaning other requesters arrived — does it increment `owner`
// like the standard algorithm.
#pragma once

#include <cstdint>

#include "runtime/ctx.h"

namespace sihle::locks {

using runtime::Ctx;
using runtime::LineHandle;
using runtime::Machine;

// `next` and `owner` share one cache line, as in the Linux kernel's ticket
// spinlock, so a single line watch covers the whole lock state.
class TicketLock {
 public:
  explicit TicketLock(Machine& m)
      : line_(m), next_(line_.line(), 0), owner_(line_.line(), 0) {
    m.note_sync_line(line_.line());
  }

  static constexpr const char* kName = "Ticket";
  static constexpr bool kFair = true;
  // Like MCS: the re-executed XACQUIRE F&A takes a ticket, committing the
  // thread to a non-speculative acquisition.
  static constexpr bool kHleArrivalWaits = false;

  sim::Task<void> acquire(Ctx& c) {
    const std::uint64_t my = co_await c.fetch_add(next_, std::uint64_t{1});
    co_await wait_for_turn(c, my);
    c.note_lock_acquired(this);
  }

  sim::Task<void> release(Ctx& c) {
    const std::uint64_t own = co_await c.load(owner_);
    co_await c.store(owner_, own + 1);
    c.note_lock_released(this);
  }

  sim::Task<bool> try_acquire_once(Ctx& c) {
    co_await acquire(c);
    co_return true;
  }

  sim::Task<bool> is_locked(Ctx& c) {
    const std::uint64_t n = co_await c.load(next_);
    const std::uint64_t o = co_await c.load(owner_);
    co_return n != o;
  }

  // Elided XACQUIRE F&A: reads next/owner into the read set; free means
  // next == owner.  Otherwise the thread holds a phantom ticket and spins
  // in-transaction on owner, which every release disturbs.
  sim::Task<void> elided_acquire(Ctx& c, bool sleep_when_busy = true) {
    const std::uint64_t n = co_await c.load(next_);
    const std::uint64_t o = co_await c.load(owner_);
    if (n == o) co_return;
    if (!sleep_when_busy) c.xabort(runtime::kAbortCodeLockBusy);
    co_await c.tx_sleep(owner_);
  }

  sim::Task<bool> wait_until_free(Ctx& c) {
    bool waited = false;
    for (;;) {
      const std::uint32_t ver = c.line_version(next_);
      const std::uint64_t n = co_await c.load(next_);
      const std::uint64_t o = co_await c.load(owner_);
      if (n == o) co_return waited;
      waited = true;
      co_await c.watch_line(next_, ver);
    }
  }

  // --- True HLE prefixes (Figure 12 with XACQUIRE); inside a transaction ---
  //
  // The PLAIN ticket lock is deliberately HLE-incompatible: its release
  // increments owner instead of restoring next, so the elided XACQUIRE is
  // never balanced and the transaction aborts at commit
  // (kAbortCodeHleMismatch).  This is the motivation for Appendix A.
  sim::Task<void> hle_acquire(Ctx& c) {
    const std::uint64_t cur = co_await c.xacquire_fetch_add(next_, std::uint64_t{1});
    const std::uint64_t own = co_await c.load(owner_);
    if (own != cur) c.xabort(runtime::kAbortCodeLockBusy);
  }
  sim::Task<void> hle_release(Ctx& c) {
    const std::uint64_t own = co_await c.load(owner_);
    co_await c.store(owner_, own + 1);
  }

  bool debug_locked() const { return next_.debug_value() != owner_.debug_value(); }
  std::uint64_t debug_next() const { return next_.debug_value(); }
  std::uint64_t debug_owner() const { return owner_.debug_value(); }

 protected:
  sim::Task<void> wait_for_turn(Ctx& c, std::uint64_t my) {
    co_await runtime::spin_until(c, owner_,
                                 [my](std::uint64_t o) { return o == my; });
  }

  LineHandle line_;
  mem::Shared<std::uint64_t> next_;
  mem::Shared<std::uint64_t> owner_;
};

// Figure 13: lock-elision adjusted ticket lock.
class ElidableTicketLock : public TicketLock {
 public:
  using TicketLock::TicketLock;
  static constexpr const char* kName = "ETicket";

  sim::Task<void> release(Ctx& c) {
    const std::uint64_t own = co_await c.load(owner_);
    // Optimistically erase the acquisition: next goes from own+1 back to
    // own.  Succeeds exactly when we were the only requester, restoring the
    // lock's original state as HLE's XRELEASE requires.
    if (!(co_await c.compare_exchange(next_, own + 1, own))) {
      co_await c.store(owner_, own + 1);
    }
    c.note_lock_released(this);
  }

  // Figure 13's release with the XRELEASE prefix on the restoring CAS: in
  // an elided run the CAS sees the illusion value own+1, restores next to
  // own (its true pre-acquire value), and the elision commits.
  sim::Task<void> hle_release(Ctx& c) {
    const std::uint64_t own = co_await c.load(owner_);
    const bool restored = co_await c.xrelease_compare_exchange(next_, own + 1, own);
    if (!restored) co_await c.store(owner_, own + 1);
  }
};

}  // namespace sihle::locks
