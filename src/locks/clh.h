// CLH queue lock (Craig; Landin & Hagersten — paper Figure 14) and its
// HLE-adjusted variant (Figure 15, Appendix A).
//
// The plain CLH lock is fair but not HLE-compatible: releasing clears the
// caller's node's `locked` flag and recycles the predecessor node, so a solo
// run does not restore the lock's original state.  The elidable variant's
// release first tries to CAS the tail from the caller's node back to its
// predecessor, erasing the presence of the node entirely; on failure (a
// successor already enqueued) it falls back to the standard release.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "runtime/ctx.h"

namespace sihle::locks {

using runtime::Ctx;
using runtime::LineHandle;
using runtime::Machine;

class CLHLock {
 protected:
  struct QNode {
    LineHandle line;
    mem::Shared<std::uint64_t> locked;
    explicit QNode(Machine& m) : line(m), locked(line.line(), 0) {
      m.note_sync_line(line.line());
    }
  };

 public:
  explicit CLHLock(Machine& m) : m_(m), tail_line_(m), slots_(sim::kMaxThreads) {
    m.note_sync_line(tail_line_.line());
    nodes_.push_back(std::make_unique<QNode>(m));  // initial unlocked dummy
    tail_ = std::make_unique<mem::Shared<QNode*>>(tail_line_.line(), nodes_.back().get());
  }

  static constexpr const char* kName = "CLH";
  static constexpr bool kFair = true;
  // Like MCS: the re-executed XACQUIRE SWAP enqueues unconditionally.
  static constexpr bool kHleArrivalWaits = false;

  sim::Task<void> acquire(Ctx& c) {
    Slot& s = slot(c);
    co_await c.store(s.mine->locked, std::uint64_t{1});
    s.pred = co_await c.exchange(*tail_, s.mine);
    co_await runtime::spin_until(c, s.pred->locked,
                                 [](std::uint64_t v) { return v == 0; });
    c.note_lock_acquired(this);
  }

  sim::Task<void> release(Ctx& c) {
    Slot& s = slot(c);
    co_await c.store(s.mine->locked, std::uint64_t{0});
    s.mine = s.pred;  // recycle the predecessor's node
    c.note_lock_released(this);
  }

  sim::Task<bool> try_acquire_once(Ctx& c) {
    co_await acquire(c);
    co_return true;
  }

  // The lock appears free when the tail node's flag is clear.
  sim::Task<bool> is_locked(Ctx& c) {
    QNode* t = co_await c.load(*tail_);
    co_return (co_await c.load(t->locked)) != 0;
  }

  // Elided XACQUIRE SWAP: reads the tail and its node's flag into the read
  // set; free means the flag is clear.  Otherwise spin in-transaction as a
  // phantom queue entry until queue activity aborts the transaction.
  sim::Task<void> elided_acquire(Ctx& c, bool sleep_when_busy = true) {
    QNode* t = co_await c.load(*tail_);
    const std::uint64_t locked = co_await c.load(t->locked);
    if (locked == 0) co_return;
    if (!sleep_when_busy) c.xabort(runtime::kAbortCodeLockBusy);
    co_await c.tx_sleep(t->locked);
  }

  sim::Task<bool> wait_until_free(Ctx& c) {
    bool waited = false;
    for (;;) {
      const std::uint32_t vt = c.line_version(*tail_);
      QNode* t = co_await c.load(*tail_);
      const std::uint32_t vn = c.line_version(t->locked);
      if (co_await c.load(t->locked) == 0) co_return waited;
      waited = true;
      // Freedom can arrive via the tail moving (elidable release CAS) or
      // via the tail node's flag clearing; watch both lines.
      co_await c.watch_lines(*tail_, vt, t->locked, vn);
    }
  }

  // --- True HLE prefixes (Figure 14 with XACQUIRE); inside a transaction ---
  //
  // The PLAIN CLH lock is HLE-incompatible: its release clears the node's
  // flag instead of restoring the tail, so the elision never balances and
  // aborts at commit.  (Node recycling is skipped here: on real hardware
  // the register rename of myNode := pred is rolled back by the abort, and
  // a committed elided run never recycles.)
  sim::Task<void> hle_acquire(Ctx& c) {
    Slot& s = slot(c);
    co_await c.store(s.mine->locked, std::uint64_t{1});
    s.pred = co_await c.xacquire_exchange(*tail_, s.mine);
    const std::uint64_t pl = co_await c.load(s.pred->locked);
    if (pl != 0) c.xabort(runtime::kAbortCodeLockBusy);
  }
  sim::Task<void> hle_release(Ctx& c) {
    Slot& s = slot(c);
    co_await c.store(s.mine->locked, std::uint64_t{0});
  }

  bool debug_locked() const { return tail_->debug_value()->locked.debug_value() != 0; }
  // Identity of the current tail node, for the Appendix-A restoration tests.
  const void* debug_tail() const { return tail_->debug_value(); }

 protected:
  struct Slot {
    QNode* mine = nullptr;
    QNode* pred = nullptr;
  };

  Slot& slot(Ctx& c) {
    const std::uint32_t tid = c.id();
    // slots_ is pre-sized: callers hold Slot references across suspensions,
    // so the vector must never reallocate.
    if (slots_[tid].mine == nullptr) {
      nodes_.push_back(std::make_unique<QNode>(m_));
      slots_[tid].mine = nodes_.back().get();
    }
    return slots_[tid];
  }

  Machine& m_;
  LineHandle tail_line_;
  std::unique_ptr<mem::Shared<QNode*>> tail_;
  std::vector<std::unique_ptr<QNode>> nodes_;  // owns every node ever used
  std::vector<Slot> slots_;
};

// Figure 15: lock-elision adjusted CLH lock.
class ElidableCLHLock : public CLHLock {
 public:
  using CLHLock::CLHLock;
  static constexpr const char* kName = "ECLH";

  sim::Task<void> release(Ctx& c) {
    Slot& s = slot(c);
    // Optimistically place the predecessor back at the tail, erasing this
    // node's presence; exactly restores the original state in a solo run.
    if (!(co_await c.compare_exchange(*tail_, s.mine, s.pred))) {
      co_await c.store(s.mine->locked, std::uint64_t{0});
      s.mine = s.pred;
    }
    c.note_lock_released(this);
  }

  // Figure 15's release with the XRELEASE prefix on the restoring CAS.
  sim::Task<void> hle_release(Ctx& c) {
    Slot& s = slot(c);
    const bool restored = co_await c.xrelease_compare_exchange(*tail_, s.mine, s.pred);
    if (!restored) co_await c.store(s.mine->locked, std::uint64_t{0});
  }
};

}  // namespace sihle::locks
