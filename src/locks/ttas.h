// Test-and-test-and-set spinlock (paper Figure 1, minus the HLE prefixes —
// elision is layered on by the schemes in src/elision).
#pragma once

#include <cstdint>

#include "runtime/ctx.h"

namespace sihle::locks {

using runtime::Ctx;
using runtime::LineHandle;
using runtime::Machine;

class TTASLock {
 public:
  explicit TTASLock(Machine& m) : line_(m), locked_(line_.line(), 0) {
    m.note_sync_line(line_.line());
  }

  static constexpr const char* kName = "TTAS";
  static constexpr bool kFair = false;
  // Arriving at a held TTAS lock under true HLE just spins (the re-executed
  // TAS returns 1 without enqueueing), so the thread waits and re-elides.
  static constexpr bool kHleArrivalWaits = true;

  sim::Task<void> acquire(Ctx& c) {
    for (;;) {
      co_await runtime::spin_until(c, locked_, [](std::uint64_t v) { return v == 0; });
      if (co_await c.exchange(locked_, std::uint64_t{1}) == 0) {
        c.note_lock_acquired(this);
        co_return;
      }
    }
  }

  sim::Task<void> release(Ctx& c) {
    co_await c.store(locked_, std::uint64_t{0});
    c.note_lock_released(this);
  }

  // One test-and-set, as HLE's re-executed XACQUIRE store performs after an
  // abort.  Returns true if the lock was acquired.
  sim::Task<bool> try_acquire_once(Ctx& c) {
    const bool got = (co_await c.exchange(locked_, std::uint64_t{1})) == 0;
    if (got) c.note_lock_acquired(this);
    co_return got;
  }

  // Lock-state read; transactional inside a transaction (this is the read
  // that puts the lock's line in an eliding transaction's read set).
  sim::Task<bool> is_locked(Ctx& c) { co_return (co_await c.load(locked_)) != 0; }

  // Elided XACQUIRE TAS: reads the lock into the read set.  If it is free
  // the store is elided and the critical section proceeds; if taken, the
  // transaction self-aborts (the caller spins outside and re-elides, per
  // the TTAS loop of Figure 1).
  sim::Task<void> elided_acquire(Ctx& c, bool sleep_when_busy = true) {
    (void)sleep_when_busy;  // TTAS waiters spin outside the transaction
    const std::uint64_t v = co_await c.load(locked_);
    if (v != 0) c.xabort(runtime::kAbortCodeLockBusy);
  }

  // Commit-time subscription (slr:subscribe=commit-checked): TTAS is free
  // exactly when `locked_` is 0, so the whole free state is one (cell,
  // value) pair.  Registration only — no simulation event.
  bool commit_subscribe(Ctx& c) {
    c.set_commit_subscription(locked_, std::uint64_t{0});
    return true;
  }

  // Wait (non-transactionally) until the lock appears free.  Returns true
  // if the caller had to wait — i.e. it arrived while the lock was held.
  sim::Task<bool> wait_until_free(Ctx& c) {
    bool waited = false;
    for (;;) {
      const std::uint32_t ver = c.line_version(locked_);
      if (co_await c.load(locked_) == 0) co_return waited;
      waited = true;
      co_await c.watch_line(locked_, ver);
    }
  }

  // --- True HLE prefixes (Figure 1 verbatim); call inside a transaction ---

  // XACQUIRE TAS: elides the lock store; the transaction locally sees the
  // lock as taken.  A non-zero old value means the lock is genuinely held.
  sim::Task<void> hle_acquire(Ctx& c) {
    const std::uint64_t old = co_await c.xacquire_exchange(locked_, std::uint64_t{1});
    if (old != 0) c.xabort(runtime::kAbortCodeLockBusy);
  }
  // XRELEASE store of 0 restores the pre-acquire value, so the elision
  // commits.
  sim::Task<void> hle_release(Ctx& c) {
    co_await c.xrelease_store(locked_, std::uint64_t{0});
  }

  bool debug_locked() const { return locked_.debug_value() != 0; }

 private:
  LineHandle line_;
  mem::Shared<std::uint64_t> locked_;
};

}  // namespace sihle::locks
