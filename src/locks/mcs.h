// MCS queue lock (Mellor-Crummey & Scott).  Fair (FIFO) and
// HLE-compatible as-is: a thread running alone leaves the lock exactly as
// it found it (tail == nullptr), which is why the paper uses MCS as the
// representative fair lock.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "runtime/ctx.h"

namespace sihle::locks {

using runtime::Ctx;
using runtime::LineHandle;
using runtime::Machine;

class MCSLock {
  struct QNode {
    LineHandle line;
    mem::Shared<std::uint64_t> locked;  // 1 = wait for predecessor
    mem::Shared<QNode*> next;
    explicit QNode(Machine& m)
        : line(m), locked(line.line(), 0), next(line.line(), nullptr) {
      m.note_sync_line(line.line());
    }
  };

 public:
  explicit MCSLock(Machine& m) : m_(m), tail_line_(m), tail_(tail_line_.line(), nullptr) {
    m.note_sync_line(tail_line_.line());
  }

  static constexpr const char* kName = "MCS";
  static constexpr bool kFair = true;
  // Arriving at a held MCS lock under true HLE commits the thread to the
  // queue: the elided SWAP spins in-transaction on the predecessor, aborts,
  // and the re-executed SWAP enqueues non-speculatively (§4).
  static constexpr bool kHleArrivalWaits = false;

  sim::Task<void> acquire(Ctx& c) {
    QNode& me = node(c);
    co_await c.store(me.next, static_cast<QNode*>(nullptr));
    QNode* pred = co_await c.exchange(tail_, &me);
    if (pred != nullptr) {
      co_await c.store(me.locked, std::uint64_t{1});
      co_await c.store(pred->next, &me);
      co_await runtime::spin_until(c, me.locked, [](std::uint64_t v) { return v == 0; });
    }
    c.note_lock_acquired(this);
    co_return;
  }

  sim::Task<void> release(Ctx& c) {
    QNode& me = node(c);
    QNode* succ = co_await c.load(me.next);
    if (succ == nullptr) {
      if (co_await c.compare_exchange(tail_, &me, static_cast<QNode*>(nullptr))) {
        c.note_lock_released(this);
        co_return;
      }
      // A successor is linking itself; wait for the link to appear.
      succ = co_await runtime::spin_until(c, me.next,
                                          [](QNode* n) { return n != nullptr; });
    }
    co_await c.store(succ->locked, std::uint64_t{0});
    c.note_lock_released(this);
  }

  // HLE's re-executed XACQUIRE after an abort is the SWAP on the tail: it
  // unconditionally enqueues, committing the thread to a non-speculative
  // acquisition.  This is the root of the severe MCS lemming effect.
  sim::Task<bool> try_acquire_once(Ctx& c) {
    co_await acquire(c);
    co_return true;
  }

  // The lock "appears free" when the queue is empty.
  sim::Task<bool> is_locked(Ctx& c) {
    co_return (co_await c.load(tail_)) != nullptr;
  }

  // Elided XACQUIRE SWAP: reads the tail into the read set.  If the queue
  // is empty the acquire is elided.  Otherwise the thread becomes a phantom
  // queue entry, spinning in-transaction on the observed tail node — the
  // spin ends when queue activity (an enqueue, the queue emptying, or the
  // tail node's handoff) disturbs the read set and aborts the transaction.
  // This is what burns HLE-retries budgets while an MCS queue exists (§7.1).
  // `sleep_when_busy` selects between the true-HLE phantom wait (the abort,
  // and hence the re-executed enqueue, happens when queue activity disturbs
  // the read set) and an immediate explicit abort (the RTM retry policy,
  // which burns its retry budget as fast as it can while a queue exists).
  sim::Task<void> elided_acquire(Ctx& c, bool sleep_when_busy = true) {
    QNode* t = co_await c.load(tail_);
    if (t == nullptr) co_return;
    if (!sleep_when_busy) c.xabort(runtime::kAbortCodeLockBusy);
    co_await c.tx_sleep(t->locked);
  }

  sim::Task<bool> wait_until_free(Ctx& c) {
    bool waited = false;
    for (;;) {
      const std::uint32_t ver = c.line_version(tail_);
      if (co_await c.load(tail_) == nullptr) co_return waited;
      waited = true;
      co_await c.watch_line(tail_, ver);
    }
  }

  // Commit-time subscription (slr:subscribe=commit-checked): the queue is
  // free exactly when `tail_` is null, one (cell, value) pair.
  bool commit_subscribe(Ctx& c) {
    c.set_commit_subscription(tail_, static_cast<QNode*>(nullptr));
    return true;
  }

  // --- True HLE prefixes; call inside a transaction ------------------------
  //
  // MCS is HLE-compatible as-is: a thread running alone leaves tail at
  // nullptr, which the XRELEASE CAS restores exactly.
  sim::Task<void> hle_acquire(Ctx& c) {
    QNode& me = node(c);
    co_await c.store(me.next, static_cast<QNode*>(nullptr));
    QNode* pred = co_await c.xacquire_exchange(tail_, &me);
    if (pred != nullptr) co_await c.tx_sleep(pred->locked);
  }
  sim::Task<void> hle_release(Ctx& c) {
    QNode& me = node(c);
    QNode* succ = co_await c.load(me.next);
    if (succ == nullptr) {
      const bool restored =
          co_await c.xrelease_compare_exchange(tail_, &me, static_cast<QNode*>(nullptr));
      if (restored) co_return;
    }
    // A successor observed our phantom node: impossible in an elided run
    // (the SWAP was never published), so treat as a conflict.
    c.xabort(runtime::kAbortCodeLockBusy);
  }

  bool debug_locked() const { return tail_.debug_value() != nullptr; }

 private:
  QNode& node(Ctx& c) {
    const std::uint32_t tid = c.id();
    if (tid >= nodes_.size()) nodes_.resize(tid + 1);
    if (!nodes_[tid]) nodes_[tid] = std::make_unique<QNode>(m_);
    return *nodes_[tid];
  }

  Machine& m_;
  LineHandle tail_line_;
  mem::Shared<QNode*> tail_;
  std::vector<std::unique_ptr<QNode>> nodes_;
};

}  // namespace sihle::locks
