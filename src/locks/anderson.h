// Anderson array-based queue lock, and an HLE-adjusted variant built with
// the paper's Appendix-A recipe.
//
// The plain Anderson lock is fair but HLE-incompatible for the same reason
// as the ticket lock: releasing advances the slot baton instead of
// restoring the ticket counter.  The elidable variant's release first tries
// to CAS the ticket counter back down (erasing the acquisition entirely —
// in a solo run no slot flag was ever touched), and only on failure falls
// back to the standard baton hand-off.  This demonstrates that the
// Appendix-A adjustment is a recipe, not a per-lock trick: "a thread
// releasing the lock first tries to optimistically restore the original
// state using a compare-and-swap".
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "runtime/ctx.h"

namespace sihle::locks {

using runtime::Ctx;
using runtime::LineHandle;
using runtime::Machine;

class AndersonLock {
 public:
  // One slot per possible thread; each slot on its own cache line, as the
  // algorithm requires to avoid false sharing among spinners.
  static constexpr std::size_t kSlots = sim::kMaxThreads;

  explicit AndersonLock(Machine& m)
      : tail_line_(m), tail_(tail_line_.line(), 0), tickets_(sim::kMaxThreads, 0) {
    m.note_sync_line(tail_line_.line());
    slots_.reserve(kSlots);
    for (std::size_t i = 0; i < kSlots; ++i) {
      slots_.push_back(std::make_unique<Slot>(m, i == 0 ? 1 : 0));
    }
  }

  static constexpr const char* kName = "Anderson";
  static constexpr bool kFair = true;
  // Like the other queue locks: the re-executed XACQUIRE F&A takes a slot,
  // committing the thread to a non-speculative acquisition.
  static constexpr bool kHleArrivalWaits = false;

  sim::Task<void> acquire(Ctx& c) {
    const std::uint64_t t = co_await c.fetch_add(tail_, std::uint64_t{1});
    tickets_[c.id()] = t;
    co_await runtime::spin_until(c, slots_[t % kSlots]->flag,
                                 [](std::uint64_t v) { return v != 0; });
    c.note_lock_acquired(this);
  }

  sim::Task<void> release(Ctx& c) {
    const std::uint64_t t = tickets_[c.id()];
    co_await c.store(slots_[t % kSlots]->flag, std::uint64_t{0});
    co_await c.store(slots_[(t + 1) % kSlots]->flag, std::uint64_t{1});
    c.note_lock_released(this);
  }

  sim::Task<bool> try_acquire_once(Ctx& c) {
    co_await acquire(c);
    co_return true;
  }

  // The lock appears free when the next ticket's slot holds the baton.
  sim::Task<bool> is_locked(Ctx& c) {
    const std::uint64_t t = co_await c.load(tail_);
    const std::uint64_t flag = co_await c.load(slots_[t % kSlots]->flag);
    co_return flag == 0;
  }

  sim::Task<bool> wait_until_free(Ctx& c) {
    bool waited = false;
    for (;;) {
      const std::uint32_t vt = c.line_version(tail_);
      const std::uint64_t t = co_await c.load(tail_);
      const std::uint32_t vs = c.line_version(slots_[t % kSlots]->flag);
      const std::uint64_t flag = co_await c.load(slots_[t % kSlots]->flag);
      if (flag != 0) co_return waited;
      waited = true;
      co_await c.watch_lines(tail_, vt, slots_[t % kSlots]->flag, vs);
    }
  }

  sim::Task<void> elided_acquire(Ctx& c, bool sleep_when_busy = true) {
    const std::uint64_t t = co_await c.load(tail_);
    const std::uint64_t flag = co_await c.load(slots_[t % kSlots]->flag);
    if (flag != 0) co_return;
    if (!sleep_when_busy) c.xabort(runtime::kAbortCodeLockBusy);
    co_await c.tx_sleep(slots_[t % kSlots]->flag);
  }

  // --- True HLE prefixes; call inside a transaction -------------------------
  sim::Task<void> hle_acquire(Ctx& c) {
    const std::uint64_t t = co_await c.xacquire_fetch_add(tail_, std::uint64_t{1});
    tickets_[c.id()] = t;
    const std::uint64_t flag = co_await c.load(slots_[t % kSlots]->flag);
    if (flag == 0) c.xabort(runtime::kAbortCodeLockBusy);
  }
  // Plain Anderson's release does not restore the ticket counter: the
  // elision cannot commit (mismatch at XEND) — HLE-incompatible by design.
  sim::Task<void> hle_release(Ctx& c) {
    const std::uint64_t t = tickets_[c.id()];
    co_await c.store(slots_[t % kSlots]->flag, std::uint64_t{0});
    co_await c.store(slots_[(t + 1) % kSlots]->flag, std::uint64_t{1});
  }

  bool debug_locked() const {
    const std::uint64_t t = tail_.debug_value();
    return slots_[t % kSlots]->flag.debug_value() == 0;
  }
  std::uint64_t debug_tail() const { return tail_.debug_value(); }

 protected:
  struct Slot {
    LineHandle line;
    mem::Shared<std::uint64_t> flag;
    Slot(Machine& m, std::uint64_t init) : line(m), flag(line.line(), init) {
      m.note_sync_line(line.line());
    }
  };

  LineHandle tail_line_;
  mem::Shared<std::uint64_t> tail_;
  std::vector<std::unique_ptr<Slot>> slots_;
  std::vector<std::uint64_t> tickets_;  // per-thread ticket (thread-local)
};

// Appendix-A-recipe adjusted Anderson lock: the release optimistically
// erases the acquisition by CASing the ticket counter back down.
class ElidableAndersonLock : public AndersonLock {
 public:
  using AndersonLock::AndersonLock;
  static constexpr const char* kName = "EAnderson";

  sim::Task<void> release(Ctx& c) {
    const std::uint64_t t = tickets_[c.id()];
    // Solo run: no slot flag was written during acquire (we found the baton
    // already set), so CASing tail from t+1 back to t restores the lock's
    // entire state bit-for-bit.
    if (!(co_await c.compare_exchange(tail_, t + 1, t))) {
      co_await c.store(slots_[t % kSlots]->flag, std::uint64_t{0});
      co_await c.store(slots_[(t + 1) % kSlots]->flag, std::uint64_t{1});
    }
    c.note_lock_released(this);
  }

  sim::Task<void> hle_release(Ctx& c) {
    const std::uint64_t t = tickets_[c.id()];
    const bool restored = co_await c.xrelease_compare_exchange(tail_, t + 1, t);
    if (!restored) {
      co_await c.store(slots_[t % kSlots]->flag, std::uint64_t{0});
      co_await c.store(slots_[(t + 1) % kSlots]->flag, std::uint64_t{1});
    }
  }
};

}  // namespace sihle::locks
