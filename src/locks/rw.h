// Reader-writer locks over sim lines: shared / update / exclusive
// acquisition with upgrade, in the style of the TTAS lock (one state word,
// CAS transitions, watch-line waiting).
//
// State word layout (single cache line, like TTAS):
//
//   bit 0  WRITER    exclusive holder (or an upgrader that has claimed)
//   bit 1  UPDATE    update-mode holder (at most one; coexists with readers)
//   bit 2  WPENDING  writer-preference variant only: an exclusive acquirer
//                    is waiting, new shared/update arrivals must stall
//   bits 3+          shared-holder (reader) count
//
// Mode semantics:
//   kShared    — any number of concurrent holders; excluded only by WRITER
//                (and WPENDING under writer preference).
//   kUpdate    — "read with intent to write": excluded by WRITER and by the
//                other UPDATE holder, coexists with readers; may upgrade()
//                to exclusive without releasing.
//   kExclusive — excluded by everything; word must drain to 0.
//
// Elision couples to the same word: an eliding acquisition only *reads* the
// state word and self-aborts if its mode is unavailable, so concurrent
// eliding readers share a read-set line and scale; a real writer's CAS
// dooms them all (the writer-triggered lemming storm the figrw bench
// measures).  Commit-time subscription (slr:subscribe=commit-checked) uses
// a masked compare: a shared-mode subscription watches only the
// WRITER/WPENDING bits, so concurrently *acquired* readers (a non-zero
// count) do not abort an eliding reader at commit.
#pragma once

#include <cstdint>

#include "runtime/ctx.h"

namespace sihle::locks {

using runtime::Ctx;
using runtime::LineHandle;
using runtime::Machine;

enum class LockMode : std::uint8_t { kExclusive, kShared, kUpdate };

constexpr const char* to_string(LockMode m) {
  switch (m) {
    case LockMode::kExclusive: return "exclusive";
    case LockMode::kShared: return "shared";
    case LockMode::kUpdate: return "update";
  }
  return "?";
}

namespace detail {

// Common implementation; WriterPreference adds the WPENDING gate that
// stalls new shared/update arrivals while an exclusive acquirer waits.
template <bool WriterPreference>
class RwLockImpl {
 public:
  explicit RwLockImpl(Machine& m) : line_(m), word_(line_.line(), 0) {
    m.note_sync_line(line_.line());
  }

  static constexpr const char* kName = WriterPreference ? "RW-WP" : "RW";
  static constexpr bool kFair = false;
  // Like TTAS: arrivals at an unavailable lock spin outside the transaction
  // until it looks free, then re-elide.
  static constexpr bool kHleArrivalWaits = true;

  static constexpr std::uint64_t kWriter = 1;
  static constexpr std::uint64_t kUpdate = 2;
  static constexpr std::uint64_t kWPending = 4;
  static constexpr std::uint64_t kReaderInc = 8;

  // Bits that make `m` unavailable.  Readers are excluded by a writer (and
  // a pending writer under writer preference), update by writer + the other
  // update holder, exclusive by everything except its own pending bit.
  static constexpr std::uint64_t block_mask(LockMode m) {
    switch (m) {
      case LockMode::kShared:
        return kWriter | (WriterPreference ? kWPending : 0);
      case LockMode::kUpdate:
        return kWriter | kUpdate | (WriterPreference ? kWPending : 0);
      case LockMode::kExclusive:
        return ~kWPending;  // everything but our own pending bit
    }
    return ~std::uint64_t{0};
  }

  static constexpr bool available(std::uint64_t v, LockMode m) {
    return (v & block_mask(m)) == 0;
  }

  // --- Standard (non-speculative) acquisition ------------------------------

  sim::Task<void> acquire(Ctx& c, LockMode m = LockMode::kExclusive) {
    if (WriterPreference && m == LockMode::kExclusive) {
      co_await set_pending(c);
    }
    for (;;) {
      const std::uint64_t v = co_await runtime::spin_until(
          c, word_, [m](std::uint64_t w) { return available(w, m); });
      const bool got = co_await c.compare_exchange(word_, v, acquired(v, m));
      if (got) {
        // All modes report ownership: shared holders are legitimately
        // protected readers, and the lockset checker attributes protection
        // per thread (it does not assume the ids are mutually exclusive).
        c.note_lock_acquired(this);
        co_return;
      }
    }
  }

  sim::Task<void> release(Ctx& c, LockMode m = LockMode::kExclusive) {
    const std::uint64_t delta = release_delta(m);
    co_await c.fetch_add(word_, delta);
    c.note_lock_released(this);
  }

  // One shot at the current state, as HLE's re-executed XACQUIRE performs
  // after an abort.  Returns true if the mode was acquired.
  sim::Task<bool> try_acquire_once(Ctx& c, LockMode m = LockMode::kExclusive) {
    const std::uint64_t v = co_await c.load(word_);
    if (!available(v, m) || (WriterPreference && m == LockMode::kExclusive &&
                             (v & kWPending) != 0)) {
      co_return false;
    }
    const bool got = co_await c.compare_exchange(word_, v, acquired(v, m));
    if (got) c.note_lock_acquired(this);
    co_return got;
  }

  // Mode-availability read; transactional inside a transaction (this is the
  // read that puts the state word in an eliding transaction's read set).
  sim::Task<bool> is_locked(Ctx& c, LockMode m = LockMode::kExclusive) {
    const std::uint64_t v = co_await c.load(word_);
    co_return !available(v, m);
  }

  // Elided acquisition: reads the word into the read set and self-aborts if
  // the mode is unavailable.  No store — concurrent eliding readers only
  // share the line read-to-read, so they commit past each other.
  sim::Task<void> elided_acquire(Ctx& c, LockMode m, bool sleep_when_busy) {
    (void)sleep_when_busy;  // like TTAS, waiters spin outside the transaction
    const std::uint64_t v = co_await c.load(word_);
    if (!available(v, m)) c.xabort(runtime::kAbortCodeLockBusy);
  }
  sim::Task<void> elided_acquire(Ctx& c, bool sleep_when_busy = true) {
    return elided_acquire(c, LockMode::kExclusive, sleep_when_busy);
  }

  // Commit-time subscription, masked per mode: a shared-mode transaction is
  // correct as long as no writer holds (or, under writer preference,
  // awaits) the lock at commit — the reader count is irrelevant, so it is
  // masked out.  Exclusive subscribes to the fully-free word.
  bool commit_subscribe(Ctx& c, LockMode m = LockMode::kExclusive) {
    c.set_commit_subscription(word_, std::uint64_t{0},
                              m == LockMode::kExclusive
                                  ? ~std::uint64_t{0}
                                  : block_mask(m));
    return true;
  }

  // Wait (non-transactionally) until the mode looks available.  Returns
  // true if the caller had to wait.
  sim::Task<bool> wait_until_free(Ctx& c, LockMode m = LockMode::kExclusive) {
    bool waited = false;
    for (;;) {
      const std::uint32_t ver = c.line_version(word_);
      const std::uint64_t v = co_await c.load(word_);
      if (available(v, m)) co_return waited;
      waited = true;
      co_await c.watch_line(word_, ver);
    }
  }

  // --- Upgrade (update -> exclusive) ---------------------------------------
  //
  // The update holder claims the WRITER bit (blocking new readers), then
  // waits for the reader count to drain.  Deadlock-free: there is only one
  // update holder, and readers can always release.  The upgraded holder
  // releases with release_upgraded().  Ownership was already reported at
  // the update acquire, so the upgrade itself does not re-note.
  sim::Task<void> upgrade(Ctx& c) {
    for (;;) {
      const std::uint64_t v = co_await c.load(word_);
      const bool got = co_await c.compare_exchange(word_, v, v | kWriter);
      if (got) break;
    }
    co_await runtime::spin_until(c, word_, [](std::uint64_t w) {
      return (w / kReaderInc) == 0;
    });
  }

  sim::Task<void> release_upgraded(Ctx& c) {
    const std::uint64_t delta = ~(kWriter | kUpdate) + 1;  // -(WRITER|UPDATE)
    co_await c.fetch_add(word_, delta);
    c.note_lock_released(this);
  }

  // --- Debug accessors (no simulation events) ------------------------------

  bool debug_locked() const { return debug_word() != 0; }
  std::uint64_t debug_word() const { return word_.debug_value(); }
  std::uint64_t debug_readers() const { return debug_word() / kReaderInc; }
  bool debug_writer() const { return (debug_word() & kWriter) != 0; }
  bool debug_update() const { return (debug_word() & kUpdate) != 0; }

  // The state word, for hazard scenarios that need to address a wild store
  // at the lock line (mc/workloads.cpp).
  mem::Shared<std::uint64_t>& word() { return word_; }

 private:
  static constexpr std::uint64_t acquired(std::uint64_t v, LockMode m) {
    switch (m) {
      case LockMode::kShared: return v + kReaderInc;
      case LockMode::kUpdate: return v | kUpdate;
      case LockMode::kExclusive:
        // Claiming the word also consumes our own pending bit.
        return (v & ~kWPending) | kWriter;
    }
    return v;
  }

  static constexpr std::uint64_t release_delta(LockMode m) {
    switch (m) {
      case LockMode::kShared: return ~kReaderInc + 1;  // -kReaderInc
      case LockMode::kUpdate: return ~kUpdate + 1;
      case LockMode::kExclusive: return ~kWriter + 1;
    }
    return 0;
  }

  // Writer preference: announce the waiting exclusive acquirer so new
  // shared/update arrivals stall behind it.  At most one pending writer is
  // modelled; a second exclusive acquirer waits for the bit to clear first.
  sim::Task<void> set_pending(Ctx& c) {
    for (;;) {
      const std::uint64_t v = co_await runtime::spin_until(
          c, word_,
          [](std::uint64_t w) { return (w & (kWPending | kWriter)) == 0; });
      const bool got = co_await c.compare_exchange(word_, v, v | kWPending);
      if (got) co_return;
    }
  }

  LineHandle line_;
  mem::Shared<std::uint64_t> word_;
};

}  // namespace detail

// Reader-preference (no writer gate): writers wait for a quiet word, so a
// steady reader stream can starve them — pinned by tests/rwlock_test.cpp.
using RwLock = detail::RwLockImpl<false>;
// Writer-preference: a waiting writer stalls new shared/update arrivals.
using RwWpLock = detail::RwLockImpl<true>;

}  // namespace sihle::locks
