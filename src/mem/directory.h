// Cache-line conflict directory.
//
// Tracks, per 64-byte line, which transactions currently have the line in
// their read set (bitmask over thread ids) and which single transaction, if
// any, has it in its write set.  The HTM layer consults and updates this
// state to implement Haswell's requestor-wins conflict policy.
#pragma once

#include <cstdint>
#include <vector>

#include "mem/shared.h"

namespace sihle::mem {

struct LineState {
  std::uint64_t tx_readers = 0;  // bitmask of thread ids with line in read set
  std::int16_t tx_writer = -1;   // thread id with line in write set, -1 if none
  // Bumped on every publish (non-transactional store/RMW or transaction
  // commit) to the line; used by the executor's blocking-wait primitive to
  // close the window between observing a value and suspending.
  std::uint32_t version = 0;

  bool clean() const { return tx_readers == 0 && tx_writer == -1; }
};

class Directory {
 public:
  Line alloc() {
    if (!freelist_.empty()) {
      Line l = freelist_.back();
      freelist_.pop_back();
      return l;
    }
    states_.emplace_back();
    return static_cast<Line>(states_.size() - 1);
  }

  // The caller (Machine::free_line) is responsible for clearing any residual
  // transactional footprint before returning a line to the pool.
  void free(Line l) {
    states_[l] = LineState{};
    freelist_.push_back(l);
  }

  LineState& operator[](Line l) { return states_[l]; }
  const LineState& operator[](Line l) const { return states_[l]; }

  std::size_t allocated_lines() const { return states_.size() - freelist_.size(); }

  // High-water mark of line ids ever allocated (free lines included): every
  // valid Line is < line_capacity().  Lets per-line side tables size
  // themselves once instead of growing incrementally.
  std::size_t line_capacity() const { return states_.size(); }

 private:
  std::vector<LineState> states_;
  std::vector<Line> freelist_;
};

}  // namespace sihle::mem
