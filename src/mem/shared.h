// Simulated shared-memory cells.
//
// All memory that simulated threads share is declared as Shared<T> cells.
// A cell stores its committed value (transactional stores are buffered in
// the writer's transaction context until commit) and the id of the 64-byte
// cache line it lives on.  Conflict detection is per line, so several cells
// placed on one line conflict as a unit — exactly like fields of one struct
// on real hardware.
#pragma once

#include <cstdint>
#include <cstring>
#include <type_traits>

namespace sihle::mem {

using Line = std::uint32_t;

// Values must fit a single 8-byte word so the write buffer can stage them
// uniformly; this covers integers, pointers, bools and enums, which is all
// the paper's algorithms and workloads need.
template <typename T>
concept SharedValue = std::is_trivially_copyable_v<T> && sizeof(T) <= 8;

// Type-erased storage cell: a 64-bit word plus its cache-line id.
class RawCell {
 public:
  RawCell(Line line, std::uint64_t init) : raw_(init), line_(line) {}

  RawCell(const RawCell&) = delete;
  RawCell& operator=(const RawCell&) = delete;

  Line line() const { return line_; }
  std::uint64_t raw() const { return raw_; }
  void set_raw(std::uint64_t v) { raw_ = v; }

 private:
  std::uint64_t raw_;
  Line line_;
};

template <SharedValue T>
class Shared : public RawCell {
 public:
  Shared(Line line, T init) : RawCell(line, pack(init)) {}

  static std::uint64_t pack(T v) {
    std::uint64_t raw = 0;
    std::memcpy(&raw, &v, sizeof(T));
    return raw;
  }
  static T unpack(std::uint64_t raw) {
    T v;
    std::memcpy(&v, &raw, sizeof(T));
    return v;
  }

  // Peek at the committed value without simulating an access.  For test
  // assertions and post-run validation only — never from workload code.
  T debug_value() const { return unpack(raw()); }
};

}  // namespace sihle::mem
