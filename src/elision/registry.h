// String-keyed policy registry: the shared name table for schemes and lock
// kinds, plus a parser for parameterized policy specs.
//
// Spec grammar (docs/SCHEMES.md has the full reference):
//
//   spec    := name [ ":" param ("," param)* ]
//   param   := key "=" value
//   name    := nolock | standard | hle | hle-retries (alias: retries)
//            | hle-scm (alias: scm) | slr | slr-scm | adaptive
//            (canonical display names like "HLE-SCM" are accepted too)
//   keys    := retries=<1..1000>     attempt budget before fallback
//              backoff=none|exp      delay between speculative retries
//              aux=<lock name>       SCM auxiliary lock (SCM schemes only)
//              retry-bit=on|off      honor the hardware no-retry hint
//              subscribe=lazy|commit-checked
//                                    SLR lock subscription timing (slr,
//                                    slr-scm only; docs/VERIFICATION.md)
//              mode=exclusive|shared|update
//                                    lock access mode; shared/update
//                                    require a reader-writer lock (rw,
//                                    rw-wp)
//              tries=<1..100>        adaptive: elision attempts
//              skip=<0..1000>        adaptive: skip window after misbehavior
//
// Examples: "hle-scm:aux=ticket,retries=5", "slr:retries=20,backoff=exp",
// "hle:mode=shared", "slr:mode=shared,subscribe=commit-checked".
//
// Canonical names parse to exactly policy_for(scheme), so the canonical
// axis labels, table headers, and result schemas are unchanged.  The
// parameter grammar, the scheme_help()/lock_help() text, and the
// unknown-key error lists are all generated from one registration table
// (registered_params), so they cannot drift apart — pinned by
// tests/registry_test.cpp's help-grammar sync test.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "elision/policy.h"
#include "locks/locks.h"

namespace sihle::elision {

// Parses a policy spec.  On failure returns nullopt and, when `error` is
// non-null, an actionable message listing the valid names / key syntax.
std::optional<Policy> parse_policy(std::string_view spec,
                                   std::string* error = nullptr);

// Parses a bare scheme name (no parameters).  Canonical names only.
std::optional<Scheme> parse_scheme_name(std::string_view name);

// Parses a lock-kind name ("ttas", "MCS", "eticket", ...; the match is
// case-insensitive).  On failure returns nullopt and fills `error` like
// parse_policy does.
std::optional<locks::LockKind> parse_lock_kind(std::string_view name,
                                               std::string* error = nullptr);

// The registry parse key for a lock kind ("ttas", "mcs", "ticket", ...).
const char* lock_key(locks::LockKind k);

// Canonical spec string: parse_policy(policy_spec(p)) == p.  Canonical
// policies yield their bare scheme key; parameterized ones append only the
// keys that differ from the nearest canonical base.
std::string policy_spec(const Policy& p);

// Human/axis label: the canonical display name ("HLE-SCM", "opt SLR") for
// canonical policies — matching the historical to_string(Scheme) labels —
// and the spec string for parameterized ones.
std::string policy_label(const Policy& p);

// One-paragraph help text listing registered scheme names and the
// parameter grammar; appended to unknown-name errors.  Generated from the
// same registration table parse_policy consults, so new keys, schemes, and
// lock names appear automatically.
std::string scheme_help();

// One-line help text listing registered lock names (from the same table
// parse_lock_kind matches against).
std::string lock_help();

// --- Grammar introspection (help/grammar sync tests) ------------------------

// One registered spec parameter, as listed in scheme_help().
struct ParamInfo {
  const char* key;      // parse key ("retries", "mode", ...)
  const char* syntax;   // help syntax ("retries=<1..1000>")
  const char* example;  // a valid fragment ("retries=5") for probe parses
  const char* summary;  // one-line description
};

// Every registered parameter, in help order.
std::vector<ParamInfo> registered_params();

// Whether parameter `key` applies to policies derived from `base` (the
// canonical policy of a spec's scheme name).  False for unknown keys.
// parse_policy accepts "name:key=<valid value>" exactly when this is true
// for policy_for(name) — the property the help-sync test pins.
bool param_applies(std::string_view key, const Policy& base);

// Every registered lock-kind parse key, in help order.
std::vector<const char*> registered_lock_keys();

}  // namespace sihle::elision
