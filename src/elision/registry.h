// String-keyed policy registry: the shared name table for schemes and lock
// kinds, plus a parser for parameterized policy specs.
//
// Spec grammar (docs/SCHEMES.md has the full reference):
//
//   spec    := name [ ":" param ("," param)* ]
//   param   := key "=" value
//   name    := nolock | standard | hle | hle-retries (alias: retries)
//            | hle-scm (alias: scm) | slr | slr-scm | adaptive
//            (canonical display names like "HLE-SCM" are accepted too)
//   keys    := retries=<1..1000>     attempt budget before fallback
//              backoff=none|exp      delay between speculative retries
//              aux=<lock name>       SCM auxiliary lock (SCM schemes only)
//              retry-bit=on|off      honor the hardware no-retry hint
//              tries=<1..100>        adaptive: elision attempts
//              skip=<0..1000>        adaptive: skip window after misbehavior
//              subscribe=lazy|commit-checked
//                                    SLR lock subscription timing (slr,
//                                    slr-scm only; docs/VERIFICATION.md)
//
// Examples: "hle-scm:aux=ticket,retries=5", "slr:retries=20,backoff=exp".
//
// Canonical names parse to exactly policy_for(scheme), so the canonical
// axis labels, table headers, and result schemas are unchanged.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "elision/policy.h"
#include "locks/locks.h"

namespace sihle::elision {

// Parses a policy spec.  On failure returns nullopt and, when `error` is
// non-null, an actionable message listing the valid names / key syntax.
std::optional<Policy> parse_policy(std::string_view spec,
                                   std::string* error = nullptr);

// Parses a bare scheme name (no parameters).  Canonical names only.
std::optional<Scheme> parse_scheme_name(std::string_view name);

// Parses a lock-kind name ("ttas", "MCS", "eticket", ...; the match is
// case-insensitive).  On failure returns nullopt and fills `error` like
// parse_policy does.
std::optional<locks::LockKind> parse_lock_kind(std::string_view name,
                                               std::string* error = nullptr);

// The registry parse key for a lock kind ("ttas", "mcs", "ticket", ...).
const char* lock_key(locks::LockKind k);

// Canonical spec string: parse_policy(policy_spec(p)) == p.  Canonical
// policies yield their bare scheme key; parameterized ones append only the
// keys that differ from the nearest canonical base.
std::string policy_spec(const Policy& p);

// Human/axis label: the canonical display name ("HLE-SCM", "opt SLR") for
// canonical policies — matching the historical to_string(Scheme) labels —
// and the spec string for parameterized ones.
std::string policy_label(const Policy& p);

// One-paragraph help text listing registered scheme names and the
// parameter grammar; appended to unknown-name errors.
std::string scheme_help();

// One-line help text listing registered lock names.
std::string lock_help();

}  // namespace sihle::elision
