// The one scheme × LockKind dispatch point.
//
// Historically every workload driver owned a private LockKind switch (to
// instantiate its worker template per lock type) plus aux-lock and
// AdaptState plumbing.  ElidedLock centralizes all of it: it owns a
// type-erased main lock, the SCM auxiliary lock, and the glibc-style
// adaptation state, and `run_cs(policy, ctx, lock, body, stats)` executes
// one critical section under any Policy.
//
// Type erasure is behavior-preserving by construction: LockModel's methods
// return the wrapped lock's Task directly (they are not coroutines, so no
// frame is added), and Task awaits use symmetric transfer (sim/task.h) so
// the executor never observes the extra call layer.  The committed
// BENCH_*.json baselines and the rng draw-order golden pin this.
#pragma once

#include <memory>
#include <utility>

#include "elision/policy.h"
#include "locks/locks.h"
#include "runtime/ctx.h"

namespace sihle::elision {

// Virtual interface over the duck-typed lock concept (locks/locks.h).
// Methods return the wrapped lock's Task directly; the constexpr per-type
// flags (kHleArrivalWaits, kFair, kName) become runtime queries.
class LockAdapter {
 public:
  virtual ~LockAdapter() = default;
  virtual sim::Task<void> acquire(Ctx& c) = 0;
  virtual sim::Task<void> release(Ctx& c) = 0;
  virtual sim::Task<bool> try_acquire_once(Ctx& c) = 0;
  virtual sim::Task<bool> is_locked(Ctx& c) = 0;
  virtual sim::Task<void> elided_acquire(Ctx& c, bool sleep_when_busy = true) = 0;
  virtual sim::Task<bool> wait_until_free(Ctx& c) = 0;
  // Arms the HTM's commit-time subscription for the running transaction
  // (slr:subscribe=commit-checked).  Not a coroutine — registration is
  // architectural, no simulation event.  Returns false when the wrapped
  // lock's free state is not one (cell, value) pair; callers then keep the
  // lazy end-of-body check.
  virtual bool commit_subscribe(Ctx& c) = 0;
  // Stable identity of the wrapped lock object — the address the lock passes
  // to Ctx::note_lock_acquired, so observers can match ownership events to
  // this adapter.
  virtual const void* lock_id() const = 0;
  virtual bool hle_arrival_waits() const = 0;
  virtual bool fair() const = 0;
  virtual const char* name() const = 0;
  virtual bool debug_locked() const = 0;
};

template <class Lock>
class LockModel final : public LockAdapter {
 public:
  explicit LockModel(runtime::Machine& m) : impl_(m) {}
  sim::Task<void> acquire(Ctx& c) override { return impl_.acquire(c); }
  sim::Task<void> release(Ctx& c) override { return impl_.release(c); }
  sim::Task<bool> try_acquire_once(Ctx& c) override {
    return impl_.try_acquire_once(c);
  }
  sim::Task<bool> is_locked(Ctx& c) override { return impl_.is_locked(c); }
  sim::Task<void> elided_acquire(Ctx& c, bool sleep_when_busy = true) override {
    return impl_.elided_acquire(c, sleep_when_busy);
  }
  sim::Task<bool> wait_until_free(Ctx& c) override {
    return impl_.wait_until_free(c);
  }
  bool commit_subscribe(Ctx& c) override {
    return detail::commit_subscribe(c, impl_);
  }
  const void* lock_id() const override { return &impl_; }
  bool hle_arrival_waits() const override { return Lock::kHleArrivalWaits; }
  bool fair() const override { return Lock::kFair; }
  const char* name() const override { return Lock::kName; }
  bool debug_locked() const override { return impl_.debug_locked(); }
  Lock& impl() { return impl_; }

 private:
  Lock impl_;
};

// The single LockKind → lock-type mapping in the repo.  Constructing the
// adapter constructs the lock, which registers its sync lines with the
// machine — so adapter creation order is line-allocation order.
inline std::unique_ptr<LockAdapter> make_lock_adapter(runtime::Machine& m,
                                                      locks::LockKind kind) {
  switch (kind) {
    case locks::LockKind::kTtas:
      return std::make_unique<LockModel<locks::TTASLock>>(m);
    case locks::LockKind::kMcs:
      return std::make_unique<LockModel<locks::MCSLock>>(m);
    case locks::LockKind::kTicket:
      return std::make_unique<LockModel<locks::TicketLock>>(m);
    case locks::LockKind::kClh:
      return std::make_unique<LockModel<locks::CLHLock>>(m);
    case locks::LockKind::kAnderson:
      return std::make_unique<LockModel<locks::AndersonLock>>(m);
    case locks::LockKind::kElidableTicket:
      return std::make_unique<LockModel<locks::ElidableTicketLock>>(m);
    case locks::LockKind::kElidableClh:
      return std::make_unique<LockModel<locks::ElidableCLHLock>>(m);
    case locks::LockKind::kElidableAnderson:
      return std::make_unique<LockModel<locks::ElidableAndersonLock>>(m);
  }
  return nullptr;
}

// One elidable critical-section lock: the main lock, the SCM auxiliary
// lock (constructed unconditionally, like the historical drivers did, so
// sync-line allocation order is unchanged for non-SCM policies too), and
// the shared adaptation state for the adaptive flavor.
class ElidedLock {
 public:
  ElidedLock(runtime::Machine& m, locks::LockKind kind,
             locks::LockKind aux_kind = locks::LockKind::kMcs)
      : kind_(kind),
        aux_kind_(aux_kind),
        main_(make_lock_adapter(m, kind)),
        aux_(make_lock_adapter(m, aux_kind)) {}

  LockAdapter& main() { return *main_; }
  LockAdapter& aux() { return *aux_; }
  AdaptState& adapt() { return adapt_; }
  locks::LockKind kind() const { return kind_; }
  locks::LockKind aux_kind() const { return aux_kind_; }

 private:
  locks::LockKind kind_;
  locks::LockKind aux_kind_;
  std::unique_ptr<LockAdapter> main_;  // constructed (lines allocated) first
  std::unique_ptr<LockAdapter> aux_;
  AdaptState adapt_;
};

// Convenience: an ElidedLock whose aux kind comes from the policy's
// conflict spec (kMcs for policies without conflict management, matching
// the historical unconditional MCS aux).
inline ElidedLock make_elided_lock(runtime::Machine& m, locks::LockKind kind,
                                   const Policy& p) {
  return ElidedLock(m, kind, p.conflict.aux);
}

// Executes `body` as one critical section of `lock` under `policy`.  Not a
// coroutine: forwards to the run_policy interpreter, so no frame is added.
template <class Body>
sim::Task<void> run_cs(const Policy& policy, Ctx& c, ElidedLock& lock,
                       Body body, stats::OpStats& st) {
  return run_policy(policy, c, lock.main(), lock.aux(), std::move(body), st,
                    &lock.adapt());
}

}  // namespace sihle::elision
