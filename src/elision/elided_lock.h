// The one scheme × LockKind dispatch point.
//
// Historically every workload driver owned a private LockKind switch (to
// instantiate its worker template per lock type) plus aux-lock and
// AdaptState plumbing.  ElidedLock centralizes all of it: it owns a
// type-erased main lock, the SCM auxiliary lock, and the glibc-style
// adaptation state, and `run_cs(policy, ctx, lock, body, stats)` executes
// one critical section under any Policy.
//
// Type erasure is behavior-preserving by construction: LockModel's methods
// return the wrapped lock's Task directly (they are not coroutines, so no
// frame is added), and Task awaits use symmetric transfer (sim/task.h) so
// the executor never observes the extra call layer.  The committed
// BENCH_*.json baselines and the rng draw-order golden pin this.
#pragma once

#include <cassert>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>

#include "elision/policy.h"
#include "locks/locks.h"
#include "runtime/ctx.h"

namespace sihle::elision {

// Virtual interface over the duck-typed lock concept (locks/locks.h).
// Methods return the wrapped lock's Task directly; the constexpr per-type
// flags (kHleArrivalWaits, kFair, kName) become runtime queries.
class LockAdapter {
 public:
  virtual ~LockAdapter() = default;
  virtual sim::Task<void> acquire(Ctx& c) = 0;
  virtual sim::Task<void> release(Ctx& c) = 0;
  virtual sim::Task<bool> try_acquire_once(Ctx& c) = 0;
  virtual sim::Task<bool> is_locked(Ctx& c) = 0;
  virtual sim::Task<void> elided_acquire(Ctx& c, bool sleep_when_busy = true) = 0;
  virtual sim::Task<bool> wait_until_free(Ctx& c) = 0;
  // Arms the HTM's commit-time subscription for the running transaction
  // (slr:subscribe=commit-checked).  Not a coroutine — registration is
  // architectural, no simulation event.  Returns false when the wrapped
  // lock's free state is not one (cell, value) pair; callers then keep the
  // lazy end-of-body check.
  virtual bool commit_subscribe(Ctx& c) = 0;
  // Stable identity of the wrapped lock object — the address the lock passes
  // to Ctx::note_lock_acquired, so observers can match ownership events to
  // this adapter.
  virtual const void* lock_id() const = 0;
  virtual bool hle_arrival_waits() const = 0;
  virtual bool fair() const = 0;
  virtual const char* name() const = 0;
  virtual bool debug_locked() const = 0;

  // --- Mode-aware surface (reader-writer lock family) ----------------------
  //
  // The default implementations serve only kExclusive, forwarding to the
  // exclusive entry points above; LockModel overrides them with the wrapped
  // lock's mode-taking methods when it has them (locks/rw.h).  Callers must
  // gate non-exclusive use on supports_mode — run_cs does.
  virtual bool supports_mode(locks::LockMode m) const {
    return m == locks::LockMode::kExclusive;
  }
  virtual sim::Task<void> acquire(Ctx& c, locks::LockMode m) {
    assert(m == locks::LockMode::kExclusive);
    (void)m;
    return acquire(c);
  }
  virtual sim::Task<void> release(Ctx& c, locks::LockMode m) {
    assert(m == locks::LockMode::kExclusive);
    (void)m;
    return release(c);
  }
  virtual sim::Task<bool> try_acquire_once(Ctx& c, locks::LockMode m) {
    assert(m == locks::LockMode::kExclusive);
    (void)m;
    return try_acquire_once(c);
  }
  virtual sim::Task<bool> is_locked(Ctx& c, locks::LockMode m) {
    assert(m == locks::LockMode::kExclusive);
    (void)m;
    return is_locked(c);
  }
  virtual sim::Task<void> elided_acquire(Ctx& c, locks::LockMode m,
                                         bool sleep_when_busy) {
    assert(m == locks::LockMode::kExclusive);
    (void)m;
    return elided_acquire(c, sleep_when_busy);
  }
  virtual sim::Task<bool> wait_until_free(Ctx& c, locks::LockMode m) {
    assert(m == locks::LockMode::kExclusive);
    (void)m;
    return wait_until_free(c);
  }
  virtual bool commit_subscribe(Ctx& c, locks::LockMode m) {
    assert(m == locks::LockMode::kExclusive);
    (void)m;
    return commit_subscribe(c);
  }
};

template <class Lock>
class LockModel final : public LockAdapter {
 public:
  explicit LockModel(runtime::Machine& m) : impl_(m) {}
  sim::Task<void> acquire(Ctx& c) override { return impl_.acquire(c); }
  sim::Task<void> release(Ctx& c) override { return impl_.release(c); }
  sim::Task<bool> try_acquire_once(Ctx& c) override {
    return impl_.try_acquire_once(c);
  }
  sim::Task<bool> is_locked(Ctx& c) override { return impl_.is_locked(c); }
  sim::Task<void> elided_acquire(Ctx& c, bool sleep_when_busy = true) override {
    return impl_.elided_acquire(c, sleep_when_busy);
  }
  sim::Task<bool> wait_until_free(Ctx& c) override {
    return impl_.wait_until_free(c);
  }
  bool commit_subscribe(Ctx& c) override {
    return detail::commit_subscribe(c, impl_);
  }
  const void* lock_id() const override { return &impl_; }
  bool hle_arrival_waits() const override { return Lock::kHleArrivalWaits; }
  bool fair() const override { return Lock::kFair; }
  const char* name() const override { return Lock::kName; }
  bool debug_locked() const override { return impl_.debug_locked(); }
  Lock& impl() { return impl_; }

  // Mode-taking forwarding, compiled in only for locks that have the
  // mode-taking methods (the reader-writer family); everything else keeps
  // the exclusive-only base behaviour.
  static constexpr bool kModeCapable =
      requires(Lock& l, Ctx& c) { l.acquire(c, locks::LockMode::kShared); };

  bool supports_mode(locks::LockMode m) const override {
    return kModeCapable || m == locks::LockMode::kExclusive;
  }
  sim::Task<void> acquire(Ctx& c, locks::LockMode m) override {
    if constexpr (kModeCapable) {
      return impl_.acquire(c, m);
    } else {
      return LockAdapter::acquire(c, m);
    }
  }
  sim::Task<void> release(Ctx& c, locks::LockMode m) override {
    if constexpr (kModeCapable) {
      return impl_.release(c, m);
    } else {
      return LockAdapter::release(c, m);
    }
  }
  sim::Task<bool> try_acquire_once(Ctx& c, locks::LockMode m) override {
    if constexpr (kModeCapable) {
      return impl_.try_acquire_once(c, m);
    } else {
      return LockAdapter::try_acquire_once(c, m);
    }
  }
  sim::Task<bool> is_locked(Ctx& c, locks::LockMode m) override {
    if constexpr (kModeCapable) {
      return impl_.is_locked(c, m);
    } else {
      return LockAdapter::is_locked(c, m);
    }
  }
  sim::Task<void> elided_acquire(Ctx& c, locks::LockMode m,
                                 bool sleep_when_busy) override {
    if constexpr (kModeCapable) {
      return impl_.elided_acquire(c, m, sleep_when_busy);
    } else {
      return LockAdapter::elided_acquire(c, m, sleep_when_busy);
    }
  }
  sim::Task<bool> wait_until_free(Ctx& c, locks::LockMode m) override {
    if constexpr (kModeCapable) {
      return impl_.wait_until_free(c, m);
    } else {
      return LockAdapter::wait_until_free(c, m);
    }
  }
  bool commit_subscribe(Ctx& c, locks::LockMode m) override {
    if constexpr (kModeCapable) {
      return impl_.commit_subscribe(c, m);
    } else {
      return LockAdapter::commit_subscribe(c, m);
    }
  }

 private:
  Lock impl_;
};

// The single LockKind → lock-type mapping in the repo.  Constructing the
// adapter constructs the lock, which registers its sync lines with the
// machine — so adapter creation order is line-allocation order.
inline std::unique_ptr<LockAdapter> make_lock_adapter(runtime::Machine& m,
                                                      locks::LockKind kind) {
  switch (kind) {
    case locks::LockKind::kTtas:
      return std::make_unique<LockModel<locks::TTASLock>>(m);
    case locks::LockKind::kMcs:
      return std::make_unique<LockModel<locks::MCSLock>>(m);
    case locks::LockKind::kTicket:
      return std::make_unique<LockModel<locks::TicketLock>>(m);
    case locks::LockKind::kClh:
      return std::make_unique<LockModel<locks::CLHLock>>(m);
    case locks::LockKind::kAnderson:
      return std::make_unique<LockModel<locks::AndersonLock>>(m);
    case locks::LockKind::kElidableTicket:
      return std::make_unique<LockModel<locks::ElidableTicketLock>>(m);
    case locks::LockKind::kElidableClh:
      return std::make_unique<LockModel<locks::ElidableCLHLock>>(m);
    case locks::LockKind::kElidableAnderson:
      return std::make_unique<LockModel<locks::ElidableAndersonLock>>(m);
    case locks::LockKind::kRw:
      return std::make_unique<LockModel<locks::RwLock>>(m);
    case locks::LockKind::kRwWp:
      return std::make_unique<LockModel<locks::RwWpLock>>(m);
  }
  return nullptr;
}

// Binds an access mode to a mode-capable adapter: every exclusive-signature
// call forwards to the inner adapter's mode-taking entry point, so the
// policy runners (run_hle, run_slr, run_scm, ...) execute unchanged over a
// shared- or update-mode acquisition.  Like LockModel, the forwarders are
// not coroutines — no frame is added, schedules stay event-identical.
class ModeBound final : public LockAdapter {
 public:
  ModeBound(LockAdapter& inner, locks::LockMode mode)
      : inner_(inner), mode_(mode) {}

  sim::Task<void> acquire(Ctx& c) override { return inner_.acquire(c, mode_); }
  sim::Task<void> release(Ctx& c) override { return inner_.release(c, mode_); }
  sim::Task<bool> try_acquire_once(Ctx& c) override {
    return inner_.try_acquire_once(c, mode_);
  }
  sim::Task<bool> is_locked(Ctx& c) override {
    return inner_.is_locked(c, mode_);
  }
  sim::Task<void> elided_acquire(Ctx& c, bool sleep_when_busy = true) override {
    return inner_.elided_acquire(c, mode_, sleep_when_busy);
  }
  sim::Task<bool> wait_until_free(Ctx& c) override {
    return inner_.wait_until_free(c, mode_);
  }
  bool commit_subscribe(Ctx& c) override {
    return inner_.commit_subscribe(c, mode_);
  }
  const void* lock_id() const override { return inner_.lock_id(); }
  bool hle_arrival_waits() const override { return inner_.hle_arrival_waits(); }
  bool fair() const override { return inner_.fair(); }
  const char* name() const override { return inner_.name(); }
  bool debug_locked() const override { return inner_.debug_locked(); }
  bool supports_mode(locks::LockMode m) const override {
    return inner_.supports_mode(m);
  }
  locks::LockMode mode() const { return mode_; }

 private:
  LockAdapter& inner_;
  locks::LockMode mode_;
};

// One elidable critical-section lock: the main lock, the SCM auxiliary
// lock (constructed unconditionally, like the historical drivers did, so
// sync-line allocation order is unchanged for non-SCM policies too), and
// the shared adaptation state for the adaptive flavor.
class ElidedLock {
 public:
  ElidedLock(runtime::Machine& m, locks::LockKind kind,
             locks::LockKind aux_kind = locks::LockKind::kMcs)
      : kind_(kind),
        aux_kind_(aux_kind),
        main_(make_lock_adapter(m, kind)),
        aux_(make_lock_adapter(m, aux_kind)) {}

  LockAdapter& main() { return *main_; }
  LockAdapter& aux() { return *aux_; }
  AdaptState& adapt() { return adapt_; }
  locks::LockKind kind() const { return kind_; }
  locks::LockKind aux_kind() const { return aux_kind_; }

 private:
  locks::LockKind kind_;
  locks::LockKind aux_kind_;
  std::unique_ptr<LockAdapter> main_;  // constructed (lines allocated) first
  std::unique_ptr<LockAdapter> aux_;
  AdaptState adapt_;
};

// Convenience: an ElidedLock whose aux kind comes from the policy's
// conflict spec (kMcs for policies without conflict management, matching
// the historical unconditional MCS aux).
inline ElidedLock make_elided_lock(runtime::Machine& m, locks::LockKind kind,
                                   const Policy& p) {
  return ElidedLock(m, kind, p.conflict.aux);
}

namespace detail {

// Non-exclusive path: a coroutine so the ModeBound view lives in its frame
// for the whole critical section.
template <class Body>
sim::Task<void> run_cs_mode(Policy policy, Ctx& c, ElidedLock& lock, Body body,
                            stats::OpStats& st) {
  ModeBound main(lock.main(), policy.mode);
  co_await run_policy(policy, c, main, lock.aux(), std::move(body), st,
                      &lock.adapt());
}

}  // namespace detail

// Executes `body` as one critical section of `lock` under `policy`.  For
// the exclusive mode — every canonical policy — this is not a coroutine: it
// forwards to the run_policy interpreter, so no frame is added and the
// committed baselines are untouched.  Non-exclusive modes bind the mode via
// a ModeBound view; a lock without shared/update support throws (the mode
// axis and the lock axis are configured independently, so the mismatch is
// only detectable here).  The throw happens eagerly, before any coroutine
// frame exists.
template <class Body>
sim::Task<void> run_cs(const Policy& policy, Ctx& c, ElidedLock& lock,
                       Body body, stats::OpStats& st) {
  if (policy.mode == locks::LockMode::kExclusive) {
    return run_policy(policy, c, lock.main(), lock.aux(), std::move(body), st,
                      &lock.adapt());
  }
  if (!lock.main().supports_mode(policy.mode)) {
    throw std::invalid_argument(
        std::string("run_cs: lock '") + lock.main().name() +
        "' does not support mode=" + locks::to_string(policy.mode) +
        " (reader-writer locks only: rw, rw-wp)");
  }
  return detail::run_cs_mode(policy, c, lock, std::move(body), st);
}

}  // namespace sihle::elision
