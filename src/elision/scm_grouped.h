// Grouped software-assisted conflict management — the refinement the paper
// leaves as future work (§6 Remark, §8): "grouping the conflicting threads
// in one group may be too strict... a natural extension is dividing the
// conflicting threads into different groups, each containing only threads
// that conflict among themselves", using "abort information provided by the
// hardware (such as the location in which a conflict occurs)".
//
// The simulator's abort status carries the conflicting cache line, so the
// serializing path can hash it to one of K auxiliary locks: threads
// conflicting on unrelated data serialize independently instead of all
// funnelling through a single auxiliary queue.
#pragma once

#include <array>
#include <memory>

#include "elision/schemes.h"

namespace sihle::elision {

class GroupedAux {
 public:
  GroupedAux(runtime::Machine& m, int groups) {
    for (int i = 0; i < groups; ++i) locks_.push_back(std::make_unique<locks::MCSLock>(m));
  }

  locks::MCSLock& pick(std::uint32_t conflict_line) {
    if (conflict_line == htm::kNoConflictLine) return *locks_[0];
    // Fibonacci hash of the line id.
    const std::uint64_t h = conflict_line * 0x9E3779B97F4A7C15ULL;
    return *locks_[h % locks_.size()];
  }

  int groups() const { return static_cast<int>(locks_.size()); }

 private:
  std::vector<std::unique_ptr<locks::MCSLock>> locks_;
};

// run_scm with a per-conflict-group serializing path.  The auxiliary lock
// is chosen from the conflict location of the abort that sent the thread to
// the serializing path; everything else follows Figure 7.
template <class Lock, class Body>
sim::Task<void> run_scm_grouped(Ctx& c, Lock& main, GroupedAux& aux, Body body,
                                stats::OpStats& st, ScmFlavor flavor,
                                int max_retries = kMaxRetries) {
  st.arrivals++;
  bool arrival_counted = false;
  locks::MCSLock* held_aux = nullptr;
  int retries = 0;
  for (;;) {
    if (flavor == ScmFlavor::kHle && detail::hle_arrival_waits(main)) {
      const bool waited = co_await main.wait_until_free(c);
      if (waited && !arrival_counted) {
        st.arrivals_lock_held++;
        arrival_counted = true;
      }
    }
    AbortStatus s;
    if (flavor == ScmFlavor::kHle) {
      s = co_await detail::hle_attempt(c, main, body);
    } else {
      s = co_await detail::slr_attempt(c, main, body);
    }
    if (s.ok()) {
      st.spec_commits++;
      break;
    }
    if (flavor == ScmFlavor::kHle && detail::hle_arrival_waits(main) &&
        detail::is_lock_busy(s)) {
      continue;
    }
    st.record_abort(s);
    if (held_aux == nullptr) {
      held_aux = &aux.pick(s.conflict_line);
      co_await held_aux->acquire(c);
      st.aux_acquisitions++;
      retries = 0;
      continue;
    }
    ++retries;
    const bool give_up =
        retries >= max_retries || (flavor == ScmFlavor::kSlr && !s.retry);
    if (give_up) {
      co_await detail::run_nonspec(c, main, body, st);
      break;
    }
  }
  if (held_aux != nullptr) co_await held_aux->release(c);
}

}  // namespace sihle::elision
