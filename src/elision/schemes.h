// The six lock-elision execution schemes evaluated in the paper (§7):
//
//   kStandard   — plain non-speculative locking
//   kHle        — Haswell HLE as-is: elide; on the first abort the XACQUIRE
//                 store is re-executed non-transactionally (single TAS for
//                 TTAS, unconditional enqueue for fair locks)
//   kHleRetries — Intel's recommendation: retry the transaction up to 10
//                 times before acquiring the lock for real
//   kHleScm     — HLE + software-assisted conflict management (Figure 7):
//                 aborted threads serialize on an auxiliary lock before
//                 rejoining speculation; opacity preserved
//   kOptSlr     — software-assisted lock removal (Figure 5): run without the
//                 lock, read it only at commit; XABORT if held; after 10
//                 failures (or a no-retry abort) fall back to locking
//   kSlrScm     — SLR with SCM conflict management layered on
//
// Elision is implemented the way the paper's own evaluation implements it
// (§6, "Implementation and HLE compatibility"): Haswell cannot nest HLE
// inside RTM, so an RTM transaction reads the lock and self-aborts with
// XABORT if the lock is taken.
#pragma once

#include <cstdint>

#include "htm/abort.h"
#include "locks/mcs.h"
#include "runtime/ctx.h"
#include "stats/event_ring.h"
#include "stats/op_stats.h"

namespace sihle::elision {

using htm::AbortCause;
using htm::AbortStatus;
using runtime::Ctx;

// MAX_RETRIES in the paper's pseudo-code; §7 uses 10 throughout.
inline constexpr int kMaxRetries = 10;

enum class Scheme : std::uint8_t {
  kNoLock,  // baseline for Figure 9's normalization (1 thread only)
  kStandard,
  kHle,
  kHleRetries,
  kHleScm,
  kOptSlr,
  kSlrScm,
  // Not evaluated in the paper: glibc's production elision policy
  // (__lll_lock_elision), included as a real-world comparison point.
  kAdaptive,
};

constexpr const char* to_string(Scheme s) {
  switch (s) {
    case Scheme::kNoLock: return "NoLock";
    case Scheme::kStandard: return "Standard";
    case Scheme::kHle: return "HLE";
    case Scheme::kHleRetries: return "HLE-retries";
    case Scheme::kHleScm: return "HLE-SCM";
    case Scheme::kOptSlr: return "opt SLR";
    case Scheme::kSlrScm: return "SLR-SCM";
    case Scheme::kAdaptive: return "adaptive";
  }
  return "?";
}

// The six schemes of the paper's methodology (§7), in evaluation order.
inline constexpr Scheme kAllSchemes[] = {
    Scheme::kStandard, Scheme::kHle,    Scheme::kHleRetries,
    Scheme::kHleScm,   Scheme::kOptSlr, Scheme::kSlrScm,
};

// Everything run_op dispatches, including the extensions.
inline constexpr Scheme kAllSchemesExtended[] = {
    Scheme::kStandard, Scheme::kHle,    Scheme::kHleRetries, Scheme::kHleScm,
    Scheme::kOptSlr,   Scheme::kSlrScm, Scheme::kAdaptive,
};

enum class ScmFlavor : std::uint8_t { kHle, kSlr };

namespace detail {

inline bool is_lock_busy(AbortStatus s) {
  return s.cause == AbortCause::kExplicit && s.code == runtime::kAbortCodeLockBusy;
}

// HLE-style transaction body: the lock is read (joining the read set) and
// checked free at the start, then the critical section runs.
// Style note, repo-wide: a co_await whose operand is a Task (rather than a
// plain awaiter) must be its own statement or a declaration's initializer.
// GCC 12 miscompiles Task-valued awaits nested in conditions (the temporary
// task's destructor — which destroys the coroutine frame — runs at the
// wrong point).
template <class Lock, class Body>
sim::Task<void> hle_tx_body(Ctx& c, Lock& lock, Body& body, bool sleep_when_busy) {
  // The elided acquire reads the lock into the read set; for queue locks
  // found busy it either spins in-transaction as a phantom queue entry
  // until disturbed (true HLE) or aborts at once (the RTM retry policy).
  co_await lock.elided_acquire(c, sleep_when_busy);
  co_await body(c);
}

// SLR transaction body (Figure 5): the critical section runs without any
// reference to the lock; the lock is read only at the end, just before
// commit, and the transaction self-aborts if it is taken.
template <class Lock, class Body>
sim::Task<void> slr_tx_body(Ctx& c, Lock& lock, Body& body) {
  co_await body(c);
  const bool locked = co_await lock.is_locked(c);
  if (locked) c.xabort(runtime::kAbortCodeLockBusy);
}

// Note: these deliberately await into a named local rather than using
// `co_return co_await ...` — GCC 12 miscompiles the latter (the temporary
// task's frame is released before the await completes).
template <class Lock, class Body>
sim::Task<AbortStatus> hle_attempt(Ctx& c, Lock& lock, Body& body,
                                   bool sleep_when_busy = true) {
  const AbortStatus s = co_await c.with_tx(
      [&c, &lock, &body, sleep_when_busy] { return hle_tx_body(c, lock, body, sleep_when_busy); });
  co_return s;
}

template <class Lock, class Body>
sim::Task<AbortStatus> slr_attempt(Ctx& c, Lock& lock, Body& body) {
  const AbortStatus s = co_await c.with_tx([&] { return slr_tx_body(c, lock, body); });
  co_return s;
}

template <class Lock, class Body>
sim::Task<void> run_nonspec(Ctx& c, Lock& lock, Body& body, stats::OpStats& st) {
  co_await lock.acquire(c);
  c.trace_event(stats::EventKind::kLockAcquire);
  co_await body(c);
  co_await lock.release(c);
  c.trace_event(stats::EventKind::kLockRelease);
  st.nonspec++;
}

}  // namespace detail

// Baseline: no synchronization at all.  Valid only single-threaded.
template <class Body>
sim::Task<void> run_nolock(Ctx& c, Body body, stats::OpStats& st) {
  st.arrivals++;
  co_await body(c);
  // Traced as a (trivially acquired) non-speculative completion so the
  // timeline's ops-per-window series covers the no-lock baseline too.
  c.trace_event(stats::EventKind::kLockRelease);
  st.nonspec++;
}

template <class Lock, class Body>
sim::Task<void> run_standard(Ctx& c, Lock& lock, Body body, stats::OpStats& st) {
  st.arrivals++;
  co_await detail::run_nonspec(c, lock, body, st);
}

// Plain HLE (`max_aborts` = 1, `full_acquire_fallback` = false) and
// HLE-retries (`max_aborts` = kMaxRetries, `full_acquire_fallback` = true).
//
// Arrival-while-held semantics differ by mechanism (§4):
//  * True HLE + TTAS (kHleArrivalWaits): no transaction even starts — the
//    thread spins until the lock looks free and re-issues the XACQUIRE.
//    Not an abort.
//  * True HLE + queue locks: the elided SWAP/F&A leaves the thread spinning
//    in-transaction on its predecessor; the transaction aborts and the
//    re-executed XACQUIRE unconditionally joins the queue.  This is why one
//    abort serializes every MCS thread until a quiescent period.
//  * HLE-retries (an RTM-based software policy): a busy observation is an
//    explicitly aborted transaction and consumes one retry; the thread
//    waits for the lock to look free between retries, and acquires the lock
//    for real once the budget is exhausted.
template <class Lock, class Body>
sim::Task<void> run_hle(Ctx& c, Lock& lock, Body body, stats::OpStats& st,
                        int max_aborts, bool full_acquire_fallback) {
  st.arrivals++;
  bool arrival_counted = false;
  int aborts = 0;
  for (;;) {
    if (Lock::kHleArrivalWaits) {
      // TTAS's own test-and-test loop spins (outside any transaction) until
      // the lock looks free before issuing the XACQUIRE TAS.  Queue locks
      // have no such pre-spin: every attempt re-executes the elided
      // acquire, whose phantom in-transaction spin ends in an abort that —
      // under the retry policy — consumes budget.  This asymmetry is why
      // retries rescue TTAS but not MCS under load (§7.1).
      const bool waited = co_await lock.wait_until_free(c);
      if (waited && !arrival_counted) {
        st.arrivals_lock_held++;
        arrival_counted = true;
      }
    }
    const AbortStatus s =
        co_await detail::hle_attempt(c, lock, body,
                                     /*sleep_when_busy=*/!full_acquire_fallback);
    if (s.ok()) {
      st.spec_commits++;
      co_return;
    }
    if (detail::is_lock_busy(s) && !full_acquire_fallback && Lock::kHleArrivalWaits) {
      continue;  // plain HLE + TTAS: lost the race to a lock writer, re-spin
    }
    st.record_abort(s);
    // Intel's retry recipe honors the abort status: when the hardware says a
    // retry cannot succeed (capacity, page fault), fall back immediately.
    const bool exhausted = ++aborts >= max_aborts || (full_acquire_fallback && !s.retry);
    if (!exhausted) continue;
    if (full_acquire_fallback) {
      co_await detail::run_nonspec(c, lock, body, st);
      co_return;
    }
    // Plain HLE: the hardware re-executes the XACQUIRE store
    // non-transactionally.  For TTAS that is one TAS, which fails if
    // another aborted thread holds the lock — the thread then goes back to
    // spinning and re-eliding.  For fair queue locks try_acquire_once
    // completes a full non-speculative acquisition.
    const bool got_lock = co_await lock.try_acquire_once(c);
    if (got_lock) {
      c.trace_event(stats::EventKind::kLockAcquire);
      co_await body(c);
      co_await lock.release(c);
      c.trace_event(stats::EventKind::kLockRelease);
      st.nonspec++;
      co_return;
    }
    aborts = 0;
  }
}

// Optimistic SLR (Figure 5 + §7 tuning): retry on transient aborts up to
// `max_retries` times; give up immediately when the abort status says a
// retry is unlikely to succeed (capacity/interrupt).  `honor_retry_bit`
// exists for the tuning ablation — the paper "verified that using other
// tuning options only degrade the schemes' performance".
template <class Lock, class Body>
sim::Task<void> run_slr(Ctx& c, Lock& lock, Body body, stats::OpStats& st,
                        int max_retries = kMaxRetries, bool honor_retry_bit = true) {
  st.arrivals++;
  int attempts = 0;
  for (;;) {
    const AbortStatus s = co_await detail::slr_attempt(c, lock, body);
    if (s.ok()) {
      st.spec_commits++;
      co_return;
    }
    st.record_abort(s);
    ++attempts;
    if ((honor_retry_bit && !s.retry) || attempts >= max_retries) break;
  }
  co_await detail::run_nonspec(c, lock, body, st);
}

// Software-assisted conflict management (Figure 7), generic over the
// speculative flavor.  On an abort the thread enters the serializing path:
// it acquires the auxiliary lock (standard, never elided) and rejoins
// speculation.  Only the auxiliary-lock holder ever gives up and acquires
// the main lock non-speculatively, after `max_retries` failed attempts —
// with a fair auxiliary lock this makes the scheme starvation-free.
//
// (Figure 7's pseudo-code has the aux_lock_owner test inverted relative to
// the prose; we implement the semantics §6 describes.)
// `honor_retry_bit_hle` lets the tuning ablation make the HLE flavor give
// up on no-retry aborts immediately (the paper's tuned behaviour is 10
// retries regardless for HLE, status-based for SLR).
template <class Lock, class AuxLock, class Body>
sim::Task<void> run_scm(Ctx& c, Lock& main, AuxLock& aux, Body body,
                        stats::OpStats& st, ScmFlavor flavor,
                        int max_retries = kMaxRetries,
                        bool honor_retry_bit_hle = false) {
  st.arrivals++;
  bool arrival_counted = false;
  bool aux_owner = false;
  int retries = 0;
  for (;;) {
    if (flavor == ScmFlavor::kHle && Lock::kHleArrivalWaits) {
      const bool waited = co_await main.wait_until_free(c);
      if (waited && !arrival_counted) {
        st.arrivals_lock_held++;
        arrival_counted = true;
      }
    }
    AbortStatus s;
    if (flavor == ScmFlavor::kHle) {
      s = co_await detail::hle_attempt(c, main, body);
    } else {
      s = co_await detail::slr_attempt(c, main, body);
    }
    if (s.ok()) {
      st.spec_commits++;
      break;
    }
    if (flavor == ScmFlavor::kHle && Lock::kHleArrivalWaits &&
        detail::is_lock_busy(s)) {
      continue;
    }
    st.record_abort(s);
    if (!aux_owner) {
      // Serializing path: wait behind the other conflicting threads.
      co_await aux.acquire(c);
      aux_owner = true;
      c.trace_event(stats::EventKind::kAuxAcquire);
      st.aux_acquisitions++;
      retries = 0;
      continue;
    }
    ++retries;
    const bool give_up =
        retries >= max_retries || (flavor == ScmFlavor::kSlr && !s.retry) ||
        (honor_retry_bit_hle && !s.retry);
    if (give_up) {
      co_await detail::run_nonspec(c, main, body, st);
      break;
    }
  }
  if (aux_owner) {
    co_await aux.release(c);
    c.trace_event(stats::EventKind::kAuxRelease);
  }
}

// glibc-style adaptation state, one per elided lock.  Mirrors the racily
// updated `adapt_count` field of glibc's elision-aware mutex.
struct AdaptState {
  int skip_count = 0;
};

// glibc's __lll_lock_elision policy: if the lock recently misbehaved, skip
// elision for `skip` acquisitions; otherwise try up to `tries`
// transactions, retrying only aborts with the retry bit set — a busy lock
// or a persistent abort immediately penalizes the lock and falls back.
template <class Lock, class Body>
sim::Task<void> run_adaptive(Ctx& c, Lock& lock, Body body, stats::OpStats& st,
                             AdaptState& adapt, int tries = 3, int skip = 3) {
  st.arrivals++;
  if (adapt.skip_count > 0) {
    adapt.skip_count--;
    co_await detail::run_nonspec(c, lock, body, st);
    co_return;
  }
  for (int t = 0; t < tries; ++t) {
    const AbortStatus s =
        co_await detail::hle_attempt(c, lock, body, /*sleep_when_busy=*/false);
    if (s.ok()) {
      st.spec_commits++;
      co_return;
    }
    st.record_abort(s);
    if (!s.retry || detail::is_lock_busy(s)) {
      adapt.skip_count = skip;
      break;
    }
  }
  co_await detail::run_nonspec(c, lock, body, st);
}

// Runtime-dispatched entry point: executes `body` as one critical section of
// `lock` under the given scheme.  `aux` is the SCM auxiliary lock (a fair
// MCS lock, per §6 "Preventing starvation"); unused by non-SCM schemes.
// `adapt` carries the glibc-style adaptation state for kAdaptive; when
// omitted a per-call throwaway is used (adaptation disabled).
template <class Lock, class Body>
sim::Task<void> run_op(Scheme s, Ctx& c, Lock& lock, locks::MCSLock& aux,
                       Body body, stats::OpStats& st, AdaptState* adapt = nullptr) {
  switch (s) {
    case Scheme::kNoLock:
      co_await run_nolock(c, body, st);
      break;
    case Scheme::kStandard:
      co_await run_standard(c, lock, body, st);
      break;
    case Scheme::kHle:
      co_await run_hle(c, lock, body, st, 1, /*full_acquire_fallback=*/false);
      break;
    case Scheme::kHleRetries:
      co_await run_hle(c, lock, body, st, kMaxRetries, /*full_acquire_fallback=*/true);
      break;
    case Scheme::kHleScm:
      co_await run_scm(c, lock, aux, body, st, ScmFlavor::kHle);
      break;
    case Scheme::kOptSlr:
      co_await run_slr(c, lock, body, st);
      break;
    case Scheme::kSlrScm:
      co_await run_scm(c, lock, aux, body, st, ScmFlavor::kSlr);
      break;
    case Scheme::kAdaptive: {
      AdaptState throwaway;
      co_await run_adaptive(c, lock, body, st,
                            adapt != nullptr ? *adapt : throwaway);
      break;
    }
  }
}

}  // namespace sihle::elision
