// Compatibility shim over the composable policy architecture.
//
// The scheme definitions, the policy pieces, and the runners live in
// elision/policy.h; the string-keyed registry for parameterized specs is
// elision/registry.h; the type-erased dispatch point (ElidedLock +
// run_cs) is elision/elided_lock.h.  This header remains for the
// historical scheme-enum entry point:
//
//   run_op(scheme, ctx, lock, aux, body, stats [, adapt])
//
// which is now a thin forward to the policy interpreter with the scheme's
// canonical composition.  New call sites should use elision::run_cs on an
// elision::ElidedLock instead of dispatching locks and schemes themselves.
#pragma once

#include "elision/policy.h"
#include "locks/mcs.h"

namespace sihle::elision {

// Runtime-dispatched entry point: executes `body` as one critical section of
// `lock` under the given scheme.  `aux` is the SCM auxiliary lock (a fair
// MCS lock, per §6 "Preventing starvation"); unused by non-SCM schemes.
// `adapt` carries the glibc-style adaptation state for kAdaptive; when
// omitted a per-call throwaway is used (adaptation disabled).
// Not a coroutine: forwards to run_policy, so no frame is added relative to
// the historical per-scheme switch.
template <class Lock, class Body>
sim::Task<void> run_op(Scheme s, Ctx& c, Lock& lock, locks::MCSLock& aux,
                       Body body, stats::OpStats& st, AdaptState* adapt = nullptr) {
  return run_policy(policy_for(s), c, lock, aux, std::move(body), st, adapt);
}

}  // namespace sihle::elision
