// Composable elision policies.
//
// The paper's schemes are compositions of four independent choices:
//
//   * attempt flavor — how a speculative attempt relates to the lock:
//     HLE-style (lock read and checked free at the start, Figure 7's
//     substrate) vs. SLR (lock read only at commit, Figure 5), plus the
//     degenerate no-lock / lock-only flavors and glibc's adaptive policy;
//   * retry budget — how many attempts before giving up, whether the
//     hardware's no-retry hint is honored, optional backoff between
//     attempts;
//   * conflict management — nothing, or the paper's software-assisted
//     serialization on an auxiliary lock (SCM, Figure 7);
//   * fallback — what "giving up" means: re-execute the XACQUIRE store
//     non-transactionally (true HLE) or acquire the lock for real.
//
// A `Policy` value names one point in that product.  The six schemes of the
// paper's evaluation (§7) plus the glibc comparison point remain available
// as canonical named compositions via `policy_for(Scheme)` — see the table
// below — and `Scheme` converts implicitly to `Policy`, so existing
// scheme-valued configuration keeps working.  Everything the runners do is
// bit-for-bit identical to the historical per-scheme entry points when
// given the canonical parameters: the committed BENCH_*.json baselines and
// the rng draw-order golden pin that equivalence.
//
//   kStandard   — plain non-speculative locking
//   kHle        — Haswell HLE as-is: elide; on the first abort the XACQUIRE
//                 store is re-executed non-transactionally (single TAS for
//                 TTAS, unconditional enqueue for fair locks)
//   kHleRetries — Intel's recommendation: retry the transaction up to 10
//                 times before acquiring the lock for real
//   kHleScm     — HLE + software-assisted conflict management (Figure 7):
//                 aborted threads serialize on an auxiliary lock before
//                 rejoining speculation; opacity preserved
//   kOptSlr     — software-assisted lock removal (Figure 5): run without the
//                 lock, read it only at commit; XABORT if held; after 10
//                 failures (or a no-retry abort) fall back to locking
//   kSlrScm     — SLR with SCM conflict management layered on
//
// Elision is implemented the way the paper's own evaluation implements it
// (§6, "Implementation and HLE compatibility"): Haswell cannot nest HLE
// inside RTM, so an RTM transaction reads the lock and self-aborts with
// XABORT if the lock is taken.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <optional>

#include "htm/abort.h"
#include "locks/locks.h"
#include "runtime/ctx.h"
#include "stats/event_ring.h"
#include "stats/op_stats.h"

namespace sihle::elision {

using htm::AbortCause;
using htm::AbortStatus;
using runtime::Ctx;

// MAX_RETRIES in the paper's pseudo-code; §7 uses 10 throughout.
inline constexpr int kMaxRetries = 10;

enum class Scheme : std::uint8_t {
  kNoLock,  // baseline for Figure 9's normalization (1 thread only)
  kStandard,
  kHle,
  kHleRetries,
  kHleScm,
  kOptSlr,
  kSlrScm,
  // Not evaluated in the paper: glibc's production elision policy
  // (__lll_lock_elision), included as a real-world comparison point.
  kAdaptive,
};

// One row per scheme: the single name table behind to_string, the registry
// parse keys (elision/registry.h), and the derived scheme lists below.
struct SchemeRow {
  Scheme scheme;
  const char* display;  // axis/table label ("HLE-SCM", "opt SLR", ...)
  const char* key;      // registry / CLI parse key ("hle-scm", "slr", ...)
  const char* alias;    // optional second parse key, or nullptr
  bool paper;           // one of the six schemes of the paper's methodology
  bool extended;        // member of the extended evaluation list
};

inline constexpr SchemeRow kSchemeRows[] = {
    {Scheme::kNoLock, "NoLock", "nolock", nullptr, false, false},
    {Scheme::kStandard, "Standard", "standard", nullptr, true, true},
    {Scheme::kHle, "HLE", "hle", nullptr, true, true},
    {Scheme::kHleRetries, "HLE-retries", "hle-retries", "retries", true, true},
    {Scheme::kHleScm, "HLE-SCM", "hle-scm", "scm", true, true},
    {Scheme::kOptSlr, "opt SLR", "slr", nullptr, true, true},
    {Scheme::kSlrScm, "SLR-SCM", "slr-scm", nullptr, true, true},
    {Scheme::kAdaptive, "adaptive", "adaptive", nullptr, false, true},
};

constexpr const SchemeRow& scheme_row(Scheme s) {
  for (const SchemeRow& r : kSchemeRows) {
    if (r.scheme == s) return r;
  }
  return kSchemeRows[0];  // unreachable for valid enumerators
}

constexpr const char* to_string(Scheme s) { return scheme_row(s).display; }

namespace detail {
template <bool SchemeRow::* Flag>
constexpr std::size_t count_schemes() {
  std::size_t n = 0;
  for (const SchemeRow& r : kSchemeRows) {
    if (r.*Flag) ++n;
  }
  return n;
}
template <bool SchemeRow::* Flag>
constexpr auto schemes_where() {
  std::array<Scheme, count_schemes<Flag>()> out{};
  std::size_t i = 0;
  for (const SchemeRow& r : kSchemeRows) {
    if (r.*Flag) out[i++] = r.scheme;
  }
  return out;
}
}  // namespace detail

// The six schemes of the paper's methodology (§7), in evaluation order.
inline constexpr auto kAllSchemes = detail::schemes_where<&SchemeRow::paper>();

// The paper's six plus the adaptive extension.  Note this is *not*
// everything run_policy dispatches: kNoLock is dispatchable but excluded
// here (it is a single-thread normalization baseline, not a scheme any
// multi-threaded sweep should iterate).  Both lists derive from
// kSchemeRows, so membership cannot drift from the name table.
inline constexpr auto kAllSchemesExtended =
    detail::schemes_where<&SchemeRow::extended>();

enum class ScmFlavor : std::uint8_t { kHle, kSlr };

// --- Policy pieces ---------------------------------------------------------

// How a speculative attempt relates to the lock.
enum class AttemptFlavor : std::uint8_t {
  kNoLock,       // no synchronization at all (single-thread baseline)
  kLockOnly,     // never speculate; plain lock acquire
  kHle,          // lock read + checked free at transaction start
  kSlr,          // lock read only at commit (Figure 5)
  kAdaptiveHle,  // glibc __lll_lock_elision: HLE attempts + skip window
};

// What exhausting the retry budget means for a (non-SCM) HLE policy.
enum class FallbackKind : std::uint8_t {
  kReacquire,    // re-execute the XACQUIRE store non-transactionally
  kFullAcquire,  // acquire the lock for real (Intel's retry recipe)
};

// How an SLR-flavored attempt subscribes to the fallback lock.
enum class SubscribeKind : std::uint8_t {
  // Figure 5 as written: the transaction reads the lock at the *end* of its
  // body and XABORTs if held.  Cheap, but the check is ordinary transaction
  // control flow, so a zombie execution can corrupt or skip it (see
  // htm/hazard.h) — lazy subscription is unsafe without sandbox luck.
  kLazy,
  // Dice et al.'s hardware fix: the subscription is registered with the HTM
  // at transaction start and enforced by the commit machinery itself,
  // atomically with publication (Htm::set_commit_subscription).  A staged
  // store to the lock line aborts instead of committing damage.  Falls back
  // to the lazy check for locks whose free state is not expressible as one
  // (cell, value) pair.
  kCommitChecked,
};

enum class BackoffKind : std::uint8_t { kNone, kExp };

// Optional delay between speculative retries.  kNone (the canonical
// schemes' setting) executes no delay at all — not even a zero-cycle wait —
// so canonical behavior is untouched.
struct BackoffSpec {
  BackoffKind kind = BackoffKind::kNone;
  int base_cycles = 64;    // first delay
  int cap_cycles = 4096;   // doubling stops here
  friend constexpr bool operator==(const BackoffSpec&,
                                   const BackoffSpec&) = default;
};

struct RetryBudget {
  int max_attempts = 1;         // aborts consumed before falling back
  bool honor_retry_bit = false; // give up early when the hardware says
                                // a retry cannot succeed
  BackoffSpec backoff{};
  friend constexpr bool operator==(const RetryBudget&,
                                   const RetryBudget&) = default;
};

enum class ConflictKind : std::uint8_t { kNone, kScmAux };

// Software-assisted conflict management (Figure 7): aborted threads
// serialize on an auxiliary lock before rejoining speculation.  The aux
// lock should be fair (§6 "Preventing starvation"); MCS is the paper's
// choice and the default.
struct ConflictSpec {
  ConflictKind kind = ConflictKind::kNone;
  locks::LockKind aux = locks::LockKind::kMcs;
  // Tuning knob for the HLE flavor only: give up on no-retry aborts
  // immediately (the paper's tuned behaviour is 10 retries regardless for
  // HLE, status-based for SLR — SLR-SCM always honors the bit).
  bool honor_retry_bit_hle = false;
  friend constexpr bool operator==(const ConflictSpec&,
                                   const ConflictSpec&) = default;
};

// glibc __lll_lock_elision tuning (kAdaptiveHle only).
struct AdaptiveSpec {
  int tries = 3;  // elision attempts per acquisition while not skipping
  int skip = 3;   // acquisitions to skip elision after the lock misbehaves
  friend constexpr bool operator==(const AdaptiveSpec&,
                                   const AdaptiveSpec&) = default;
};

// One point in the (flavor × retry budget × conflict management × fallback)
// product.  Implicitly constructible from a canonical Scheme, so
// scheme-valued configuration (WorkloadConfig::scheme = Scheme::kHle)
// keeps working unchanged.
struct Policy {
  AttemptFlavor flavor = AttemptFlavor::kLockOnly;
  FallbackKind fallback = FallbackKind::kFullAcquire;
  RetryBudget retry{};
  ConflictSpec conflict{};
  AdaptiveSpec adaptive{};
  // SLR flavors only (kSlr, with or without SCM); ignored elsewhere.  The
  // canonical schemes use kLazy — the paper's Figure 5 — so canonical
  // policy equality and behavior are unchanged.
  SubscribeKind subscribe = SubscribeKind::kLazy;
  // Lock access mode (registry key `mode=`).  Non-exclusive modes require a
  // reader-writer lock (locks::supports_mode); run_cs validates at the
  // dispatch point.  The canonical schemes are kExclusive, so canonical
  // policy equality — and every committed baseline — is unchanged.
  locks::LockMode mode = locks::LockMode::kExclusive;

  constexpr Policy() = default;
  // NOLINTNEXTLINE(google-explicit-constructor): intentional implicit
  // conversion — a Scheme names a canonical Policy.
  constexpr Policy(Scheme s);

  friend constexpr bool operator==(const Policy&, const Policy&) = default;
};

// The canonical composition behind each named scheme.  Parameter values are
// exactly what the historical per-scheme run_op dispatch used.
constexpr Policy policy_for(Scheme s) {
  Policy p;
  switch (s) {
    case Scheme::kNoLock:
      p.flavor = AttemptFlavor::kNoLock;
      break;
    case Scheme::kStandard:
      p.flavor = AttemptFlavor::kLockOnly;
      break;
    case Scheme::kHle:
      p.flavor = AttemptFlavor::kHle;
      p.fallback = FallbackKind::kReacquire;
      p.retry.max_attempts = 1;
      break;
    case Scheme::kHleRetries:
      p.flavor = AttemptFlavor::kHle;
      p.fallback = FallbackKind::kFullAcquire;
      p.retry.max_attempts = kMaxRetries;
      p.retry.honor_retry_bit = true;
      break;
    case Scheme::kHleScm:
      p.flavor = AttemptFlavor::kHle;
      p.retry.max_attempts = kMaxRetries;
      p.conflict.kind = ConflictKind::kScmAux;
      break;
    case Scheme::kOptSlr:
      p.flavor = AttemptFlavor::kSlr;
      p.retry.max_attempts = kMaxRetries;
      p.retry.honor_retry_bit = true;
      break;
    case Scheme::kSlrScm:
      p.flavor = AttemptFlavor::kSlr;
      p.retry.max_attempts = kMaxRetries;
      p.retry.honor_retry_bit = true;  // SLR always honors the bit
      p.conflict.kind = ConflictKind::kScmAux;
      break;
    case Scheme::kAdaptive:
      p.flavor = AttemptFlavor::kAdaptiveHle;
      break;
  }
  return p;
}

constexpr Policy::Policy(Scheme s) : Policy(policy_for(s)) {}

// The named scheme a policy is exactly equal to, if any.
constexpr std::optional<Scheme> canonical_scheme(const Policy& p) {
  for (const SchemeRow& r : kSchemeRows) {
    if (policy_for(r.scheme) == p) return r.scheme;
  }
  return std::nullopt;
}

// --- Attempt / fallback helpers --------------------------------------------

namespace detail {

inline bool is_lock_busy(AbortStatus s) {
  return s.cause == AbortCause::kExplicit && s.code == runtime::kAbortCodeLockBusy;
}

// Arrival-while-held behaviour is a property of the lock: for concrete lock
// types it is the constexpr kHleArrivalWaits flag; for the type-erased
// elision::LockAdapter it is a virtual query.
template <class Lock>
bool hle_arrival_waits(const Lock& lock) {
  if constexpr (requires { Lock::kHleArrivalWaits; }) {
    (void)lock;
    return Lock::kHleArrivalWaits;
  } else {
    return lock.hle_arrival_waits();
  }
}

// HLE-style transaction body: the lock is read (joining the read set) and
// checked free at the start, then the critical section runs.
// Style note, repo-wide: a co_await whose operand is a Task (rather than a
// plain awaiter) must be its own statement or a declaration's initializer.
// GCC 12 miscompiles Task-valued awaits nested in conditions (the temporary
// task's destructor — which destroys the coroutine frame — runs at the
// wrong point).
template <class Lock, class Body>
sim::Task<void> hle_tx_body(Ctx& c, Lock& lock, Body& body, bool sleep_when_busy) {
  // The elided acquire reads the lock into the read set; for queue locks
  // found busy it either spins in-transaction as a phantom queue entry
  // until disturbed (true HLE) or aborts at once (the RTM retry policy).
  co_await lock.elided_acquire(c, sleep_when_busy);
  co_await body(c);
}

// Commit-time subscription support is a property of the lock: concrete
// lock types whose free state is one (cell, value) pair expose
// commit_subscribe(c); the type-erased elision::LockAdapter has a virtual.
// Returns false when the lock cannot express the subscription, in which
// case the caller must keep the lazy end-of-body check.
template <class Lock>
bool commit_subscribe(Ctx& c, Lock& lock) {
  if constexpr (requires { lock.commit_subscribe(c); }) {
    return lock.commit_subscribe(c);
  } else {
    (void)c;
    (void)lock;
    return false;
  }
}

// SLR transaction body (Figure 5): the critical section runs without any
// reference to the lock; the lock is read only at the end, just before
// commit, and the transaction self-aborts if it is taken.  Under
// SubscribeKind::kCommitChecked the subscription is instead registered with
// the HTM up front and enforced inside commit itself (no end-of-body read),
// so corrupted transaction control flow cannot evade it.
template <class Lock, class Body>
sim::Task<void> slr_tx_body(Ctx& c, Lock& lock, Body& body,
                            SubscribeKind subscribe) {
  bool armed = false;
  if (subscribe == SubscribeKind::kCommitChecked) {
    armed = commit_subscribe(c, lock);
  }
  co_await body(c);
  if (!armed) {
    const bool locked = co_await lock.is_locked(c);
    if (locked) c.xabort(runtime::kAbortCodeLockBusy);
  }
}

// Note: these deliberately await into a named local rather than using
// `co_return co_await ...` — GCC 12 miscompiles the latter (the temporary
// task's frame is released before the await completes).
template <class Lock, class Body>
sim::Task<AbortStatus> hle_attempt(Ctx& c, Lock& lock, Body& body,
                                   bool sleep_when_busy = true) {
  const AbortStatus s = co_await c.with_tx(
      [&c, &lock, &body, sleep_when_busy] { return hle_tx_body(c, lock, body, sleep_when_busy); });
  co_return s;
}

template <class Lock, class Body>
sim::Task<AbortStatus> slr_attempt(Ctx& c, Lock& lock, Body& body,
                                   SubscribeKind subscribe = SubscribeKind::kLazy) {
  const AbortStatus s =
      co_await c.with_tx([&] { return slr_tx_body(c, lock, body, subscribe); });
  co_return s;
}

template <class Lock, class Body>
sim::Task<void> run_nonspec(Ctx& c, Lock& lock, Body& body, stats::OpStats& st) {
  co_await lock.acquire(c);
  c.trace_event(stats::EventKind::kLockAcquire);
  co_await body(c);
  co_await lock.release(c);
  c.trace_event(stats::EventKind::kLockRelease);
  st.nonspec++;
}

// Tracks the exponential-backoff delay for one critical-section execution.
// With BackoffKind::kNone, next() is never called and no wait is issued.
struct BackoffState {
  int delay;
  explicit BackoffState(const BackoffSpec& spec) : delay(spec.base_cycles) {}
  sim::Cycles next(const BackoffSpec& spec) {
    const int d = delay;
    delay = std::min(delay * 2, spec.cap_cycles);
    return static_cast<sim::Cycles>(d);
  }
};

}  // namespace detail

// --- Runners ---------------------------------------------------------------

// Baseline: no synchronization at all.  Valid only single-threaded.
template <class Body>
sim::Task<void> run_nolock(Ctx& c, Body body, stats::OpStats& st) {
  st.arrivals++;
  co_await body(c);
  // Traced as a (trivially acquired) non-speculative completion so the
  // timeline's ops-per-window series covers the no-lock baseline too.
  c.trace_event(stats::EventKind::kLockRelease);
  st.nonspec++;
}

template <class Lock, class Body>
sim::Task<void> run_standard(Ctx& c, Lock& lock, Body body, stats::OpStats& st) {
  st.arrivals++;
  co_await detail::run_nonspec(c, lock, body, st);
}

// Plain HLE (`max_aborts` = 1, `full_acquire_fallback` = false) and
// HLE-retries (`max_aborts` = kMaxRetries, `full_acquire_fallback` = true).
//
// `honor_retry_bit` defaults to following `full_acquire_fallback`, which is
// the historical coupling: Intel's retry recipe (the full-acquire policy)
// honors the abort status, plain HLE cannot see it at all.  Policies may
// decouple them.
//
// Arrival-while-held semantics differ by mechanism (§4):
//  * True HLE + TTAS (kHleArrivalWaits): no transaction even starts — the
//    thread spins until the lock looks free and re-issues the XACQUIRE.
//    Not an abort.
//  * True HLE + queue locks: the elided SWAP/F&A leaves the thread spinning
//    in-transaction on its predecessor; the transaction aborts and the
//    re-executed XACQUIRE unconditionally joins the queue.  This is why one
//    abort serializes every MCS thread until a quiescent period.
//  * HLE-retries (an RTM-based software policy): a busy observation is an
//    explicitly aborted transaction and consumes one retry; the thread
//    waits for the lock to look free between retries, and acquires the lock
//    for real once the budget is exhausted.
template <class Lock, class Body>
sim::Task<void> run_hle(Ctx& c, Lock& lock, Body body, stats::OpStats& st,
                        int max_aborts, bool full_acquire_fallback,
                        std::optional<bool> honor_retry_bit = std::nullopt,
                        BackoffSpec backoff = {}) {
  const bool honor = honor_retry_bit.value_or(full_acquire_fallback);
  st.arrivals++;
  bool arrival_counted = false;
  int aborts = 0;
  detail::BackoffState delay(backoff);
  for (;;) {
    if (detail::hle_arrival_waits(lock)) {
      // TTAS's own test-and-test loop spins (outside any transaction) until
      // the lock looks free before issuing the XACQUIRE TAS.  Queue locks
      // have no such pre-spin: every attempt re-executes the elided
      // acquire, whose phantom in-transaction spin ends in an abort that —
      // under the retry policy — consumes budget.  This asymmetry is why
      // retries rescue TTAS but not MCS under load (§7.1).
      const bool waited = co_await lock.wait_until_free(c);
      if (waited && !arrival_counted) {
        st.arrivals_lock_held++;
        arrival_counted = true;
      }
    }
    const AbortStatus s =
        co_await detail::hle_attempt(c, lock, body,
                                     /*sleep_when_busy=*/!full_acquire_fallback);
    if (s.ok()) {
      st.spec_commits++;
      co_return;
    }
    if (detail::is_lock_busy(s) && !full_acquire_fallback &&
        detail::hle_arrival_waits(lock)) {
      continue;  // plain HLE + TTAS: lost the race to a lock writer, re-spin
    }
    st.record_abort(s);
    // Intel's retry recipe honors the abort status: when the hardware says a
    // retry cannot succeed (capacity, page fault), fall back immediately.
    const bool exhausted = ++aborts >= max_aborts || (honor && !s.retry);
    if (!exhausted) {
      if (backoff.kind != BackoffKind::kNone) {
        co_await c.work(delay.next(backoff));
      }
      continue;
    }
    if (full_acquire_fallback) {
      co_await detail::run_nonspec(c, lock, body, st);
      co_return;
    }
    // Plain HLE: the hardware re-executes the XACQUIRE store
    // non-transactionally.  For TTAS that is one TAS, which fails if
    // another aborted thread holds the lock — the thread then goes back to
    // spinning and re-eliding.  For fair queue locks try_acquire_once
    // completes a full non-speculative acquisition.
    const bool got_lock = co_await lock.try_acquire_once(c);
    if (got_lock) {
      c.trace_event(stats::EventKind::kLockAcquire);
      co_await body(c);
      co_await lock.release(c);
      c.trace_event(stats::EventKind::kLockRelease);
      st.nonspec++;
      co_return;
    }
    aborts = 0;
  }
}

// Optimistic SLR (Figure 5 + §7 tuning): retry on transient aborts up to
// `max_retries` times; give up immediately when the abort status says a
// retry is unlikely to succeed (capacity/interrupt).  `honor_retry_bit`
// exists for the tuning ablation — the paper "verified that using other
// tuning options only degrade the schemes' performance".
template <class Lock, class Body>
sim::Task<void> run_slr(Ctx& c, Lock& lock, Body body, stats::OpStats& st,
                        int max_retries = kMaxRetries, bool honor_retry_bit = true,
                        BackoffSpec backoff = {},
                        SubscribeKind subscribe = SubscribeKind::kLazy) {
  st.arrivals++;
  int attempts = 0;
  detail::BackoffState delay(backoff);
  for (;;) {
    const AbortStatus s = co_await detail::slr_attempt(c, lock, body, subscribe);
    if (s.ok()) {
      st.spec_commits++;
      co_return;
    }
    st.record_abort(s);
    ++attempts;
    if ((honor_retry_bit && !s.retry) || attempts >= max_retries) break;
    if (backoff.kind != BackoffKind::kNone) {
      co_await c.work(delay.next(backoff));
    }
  }
  co_await detail::run_nonspec(c, lock, body, st);
}

// Software-assisted conflict management (Figure 7), generic over the
// speculative flavor.  On an abort the thread enters the serializing path:
// it acquires the auxiliary lock (standard, never elided) and rejoins
// speculation.  Only the auxiliary-lock holder ever gives up and acquires
// the main lock non-speculatively, after `max_retries` failed attempts —
// with a fair auxiliary lock this makes the scheme starvation-free.
//
// (Figure 7's pseudo-code has the aux_lock_owner test inverted relative to
// the prose; we implement the semantics §6 describes.)
// `honor_retry_bit_hle` lets the tuning ablation make the HLE flavor give
// up on no-retry aborts immediately (the paper's tuned behaviour is 10
// retries regardless for HLE, status-based for SLR).
template <class Lock, class AuxLock, class Body>
sim::Task<void> run_scm(Ctx& c, Lock& main, AuxLock& aux, Body body,
                        stats::OpStats& st, ScmFlavor flavor,
                        int max_retries = kMaxRetries,
                        bool honor_retry_bit_hle = false,
                        BackoffSpec backoff = {},
                        SubscribeKind subscribe = SubscribeKind::kLazy) {
  st.arrivals++;
  bool arrival_counted = false;
  bool aux_owner = false;
  int retries = 0;
  detail::BackoffState delay(backoff);
  for (;;) {
    if (flavor == ScmFlavor::kHle && detail::hle_arrival_waits(main)) {
      const bool waited = co_await main.wait_until_free(c);
      if (waited && !arrival_counted) {
        st.arrivals_lock_held++;
        arrival_counted = true;
      }
    }
    AbortStatus s;
    if (flavor == ScmFlavor::kHle) {
      s = co_await detail::hle_attempt(c, main, body);
    } else {
      s = co_await detail::slr_attempt(c, main, body, subscribe);
    }
    if (s.ok()) {
      st.spec_commits++;
      break;
    }
    if (flavor == ScmFlavor::kHle && detail::hle_arrival_waits(main) &&
        detail::is_lock_busy(s)) {
      continue;
    }
    st.record_abort(s);
    if (!aux_owner) {
      // Serializing path: wait behind the other conflicting threads.
      co_await aux.acquire(c);
      aux_owner = true;
      c.trace_event(stats::EventKind::kAuxAcquire);
      st.aux_acquisitions++;
      retries = 0;
      continue;
    }
    ++retries;
    const bool give_up =
        retries >= max_retries || (flavor == ScmFlavor::kSlr && !s.retry) ||
        (honor_retry_bit_hle && !s.retry);
    if (give_up) {
      co_await detail::run_nonspec(c, main, body, st);
      break;
    }
    if (backoff.kind != BackoffKind::kNone) {
      co_await c.work(delay.next(backoff));
    }
  }
  if (aux_owner) {
    co_await aux.release(c);
    c.trace_event(stats::EventKind::kAuxRelease);
  }
}

// glibc-style adaptation state, one per elided lock.  Mirrors the racily
// updated `adapt_count` field of glibc's elision-aware mutex.
struct AdaptState {
  int skip_count = 0;
};

// glibc's __lll_lock_elision policy: if the lock recently misbehaved, skip
// elision for `skip` acquisitions; otherwise try up to `tries`
// transactions, retrying only aborts with the retry bit set — a busy lock
// or a persistent abort immediately penalizes the lock and falls back.
template <class Lock, class Body>
sim::Task<void> run_adaptive(Ctx& c, Lock& lock, Body body, stats::OpStats& st,
                             AdaptState& adapt, int tries = 3, int skip = 3) {
  st.arrivals++;
  if (adapt.skip_count > 0) {
    adapt.skip_count--;
    co_await detail::run_nonspec(c, lock, body, st);
    co_return;
  }
  for (int t = 0; t < tries; ++t) {
    const AbortStatus s =
        co_await detail::hle_attempt(c, lock, body, /*sleep_when_busy=*/false);
    if (s.ok()) {
      st.spec_commits++;
      co_return;
    }
    st.record_abort(s);
    if (!s.retry || detail::is_lock_busy(s)) {
      adapt.skip_count = skip;
      break;
    }
  }
  co_await detail::run_nonspec(c, lock, body, st);
}

// --- Policy interpreter ----------------------------------------------------

// Executes `body` as one critical section of `lock` under `policy`.  `aux`
// is the SCM auxiliary lock; unused by policies without conflict
// management.  `adapt` carries the per-lock adaptation state for the
// adaptive flavor; when omitted a per-call throwaway is used (adaptation
// disabled).  This is the one place the policy product is interpreted —
// call sites should reach it through elision::run_cs (elided_lock.h),
// which owns the lock-kind product too.
template <class Lock, class AuxLock, class Body>
sim::Task<void> run_policy(Policy p, Ctx& c, Lock& lock, AuxLock& aux,
                           Body body, stats::OpStats& st,
                           AdaptState* adapt = nullptr) {
  switch (p.flavor) {
    case AttemptFlavor::kNoLock:
      co_await run_nolock(c, std::move(body), st);
      break;
    case AttemptFlavor::kLockOnly:
      co_await run_standard(c, lock, std::move(body), st);
      break;
    case AttemptFlavor::kHle:
      // SCM's auxiliary lock serializes only writers: shared-mode (reader)
      // critical sections never enter the aux path — they run the retry
      // policy with a full shared acquire as the fallback, so a storm of
      // aborted readers re-elides instead of convoying behind the aux.
      if (p.conflict.kind == ConflictKind::kScmAux &&
          p.mode != locks::LockMode::kShared) {
        co_await run_scm(c, lock, aux, std::move(body), st, ScmFlavor::kHle,
                         p.retry.max_attempts, p.conflict.honor_retry_bit_hle,
                         p.retry.backoff);
      } else if (p.conflict.kind == ConflictKind::kScmAux) {
        co_await run_hle(c, lock, std::move(body), st, p.retry.max_attempts,
                         /*full_acquire_fallback=*/true,
                         p.conflict.honor_retry_bit_hle, p.retry.backoff);
      } else {
        co_await run_hle(c, lock, std::move(body), st, p.retry.max_attempts,
                         p.fallback == FallbackKind::kFullAcquire,
                         p.retry.honor_retry_bit, p.retry.backoff);
      }
      break;
    case AttemptFlavor::kSlr:
      if (p.conflict.kind == ConflictKind::kScmAux &&
          p.mode != locks::LockMode::kShared) {
        co_await run_scm(c, lock, aux, std::move(body), st, ScmFlavor::kSlr,
                         p.retry.max_attempts, p.conflict.honor_retry_bit_hle,
                         p.retry.backoff, p.subscribe);
      } else if (p.conflict.kind == ConflictKind::kScmAux) {
        // Shared-mode SLR-SCM: readers skip the aux (writers-only), keep
        // the SLR retry/fallback policy including the subscription kind.
        co_await run_slr(c, lock, std::move(body), st, p.retry.max_attempts,
                         /*honor_retry_bit=*/true, p.retry.backoff,
                         p.subscribe);
      } else {
        co_await run_slr(c, lock, std::move(body), st, p.retry.max_attempts,
                         p.retry.honor_retry_bit, p.retry.backoff, p.subscribe);
      }
      break;
    case AttemptFlavor::kAdaptiveHle: {
      AdaptState throwaway;
      co_await run_adaptive(c, lock, std::move(body), st,
                            adapt != nullptr ? *adapt : throwaway,
                            p.adaptive.tries, p.adaptive.skip);
      break;
    }
  }
}

}  // namespace sihle::elision
