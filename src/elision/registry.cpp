#include "elision/registry.h"

#include <cctype>
#include <cstdlib>

namespace sihle::elision {

namespace {

// Parameter ranges.  The retry budget cap is generous (the paper sweeps
// 1..10) but finite so a typo'd "retries=100000" fails loudly instead of
// running a pathological configuration for hours.
constexpr long kRetriesMin = 1, kRetriesMax = 1000;
constexpr long kTriesMin = 1, kTriesMax = 100;
constexpr long kSkipMin = 0, kSkipMax = 1000;

struct LockRow {
  locks::LockKind kind;
  const char* key;  // parse key = display name lowercased
};

constexpr LockRow kLockRows[] = {
    {locks::LockKind::kTtas, "ttas"},
    {locks::LockKind::kMcs, "mcs"},
    {locks::LockKind::kTicket, "ticket"},
    {locks::LockKind::kClh, "clh"},
    {locks::LockKind::kAnderson, "anderson"},
    {locks::LockKind::kElidableTicket, "eticket"},
    {locks::LockKind::kElidableClh, "eclh"},
    {locks::LockKind::kElidableAnderson, "eanderson"},
    {locks::LockKind::kRw, "rw"},
    {locks::LockKind::kRwWp, "rw-wp"},
};

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

bool parse_long(std::string_view v, long& out) {
  if (v.empty()) return false;
  const std::string s(v);
  char* end = nullptr;
  out = std::strtol(s.c_str(), &end, 10);
  return end != nullptr && *end == '\0';
}

void set_error(std::string* error, std::string msg) {
  if (error != nullptr) *error = std::move(msg);
}

// Whether the retry-budget keys (retries, backoff) apply to this policy.
bool has_retry_budget(const Policy& p) {
  return p.flavor == AttemptFlavor::kHle || p.flavor == AttemptFlavor::kSlr;
}

std::string scheme_key_list() {
  std::string out;
  for (const SchemeRow& r : kSchemeRows) {
    if (!out.empty()) out += ", ";
    out += r.key;
    if (r.alias != nullptr) {
      out += " (alias: ";
      out += r.alias;
      out += ")";
    }
  }
  return out;
}

std::string lock_key_list() {
  std::string out;
  for (const LockRow& r : kLockRows) {
    if (!out.empty()) out += ", ";
    out += r.key;
  }
  return out;
}

// --- The parameter registration table ---------------------------------------
//
// One row per grammar key.  parse_policy's applicability checks, the
// unknown-key error's valid-keys list, and scheme_help()'s grammar section
// all read this table, so grammar and help cannot drift apart.

struct ParamRow {
  const char* key;
  const char* syntax;   // help syntax, e.g. "retries=<1..1000>"
  const char* example;  // a valid fragment, e.g. "retries=5" (sync test)
  const char* summary;
  // Whether the key applies to policies derived from this base scheme.
  bool (*applies)(const Policy& base);
  // Value parser: mutates `p`, or sets `err` and returns false.
  bool (*apply)(Policy& p, std::string_view value, std::string& err);
  // Optional custom inapplicability message; null uses the generic
  // "'key' does not apply to scheme 'name'; valid keys: ..." text.
  std::string (*why_not)(const Policy& base, const char* scheme_key);
};

bool apply_retries(Policy& p, std::string_view value, std::string& err) {
  long v = 0;
  if (!parse_long(value, v) || v < kRetriesMin || v > kRetriesMax) {
    err = "retries=" + std::string(value) + " out of range [" +
          std::to_string(kRetriesMin) + ", " + std::to_string(kRetriesMax) +
          "]";
    return false;
  }
  p.retry.max_attempts = static_cast<int>(v);
  return true;
}

bool apply_backoff(Policy& p, std::string_view value, std::string& err) {
  if (value == "none") {
    p.retry.backoff.kind = BackoffKind::kNone;
  } else if (value == "exp") {
    p.retry.backoff.kind = BackoffKind::kExp;
  } else {
    err = "backoff=" + std::string(value) +
          " is not a backoff kind (expected none|exp)";
    return false;
  }
  return true;
}

bool apply_aux(Policy& p, std::string_view value, std::string& err) {
  std::string lock_err;
  const auto kind = parse_lock_kind(value, &lock_err);
  if (!kind) {
    err = "aux=" + std::string(value) + ": " + lock_err;
    return false;
  }
  p.conflict.aux = *kind;
  return true;
}

bool apply_retry_bit(Policy& p, std::string_view value, std::string& err) {
  bool on = false;
  if (value == "on") {
    on = true;
  } else if (value != "off") {
    err = "retry-bit=" + std::string(value) + " (expected on|off)";
    return false;
  }
  if (p.flavor == AttemptFlavor::kHle &&
      p.conflict.kind == ConflictKind::kScmAux) {
    p.conflict.honor_retry_bit_hle = on;
  } else {
    p.retry.honor_retry_bit = on;
  }
  return true;
}

bool apply_subscribe(Policy& p, std::string_view value, std::string& err) {
  if (value == "lazy") {
    p.subscribe = SubscribeKind::kLazy;
  } else if (value == "commit-checked") {
    p.subscribe = SubscribeKind::kCommitChecked;
  } else {
    err = "subscribe=" + std::string(value) +
          " is not a subscription kind (expected lazy|commit-checked)";
    return false;
  }
  return true;
}

bool apply_mode(Policy& p, std::string_view value, std::string& err) {
  if (value == "exclusive") {
    p.mode = locks::LockMode::kExclusive;
  } else if (value == "shared") {
    p.mode = locks::LockMode::kShared;
  } else if (value == "update") {
    p.mode = locks::LockMode::kUpdate;
  } else {
    err = "mode=" + std::string(value) +
          " is not an access mode (expected exclusive|shared|update)";
    return false;
  }
  return true;
}

bool apply_tries_or_skip(Policy& p, const char* key, std::string_view value,
                         std::string& err) {
  long v = 0;
  const bool tries = std::string_view(key) == "tries";
  const long lo = tries ? kTriesMin : kSkipMin;
  const long hi = tries ? kTriesMax : kSkipMax;
  if (!parse_long(value, v) || v < lo || v > hi) {
    err = std::string(key) + "=" + std::string(value) + " out of range [" +
          std::to_string(lo) + ", " + std::to_string(hi) + "]";
    return false;
  }
  (tries ? p.adaptive.tries : p.adaptive.skip) = static_cast<int>(v);
  return true;
}

bool applies_retry_budget(const Policy& base) { return has_retry_budget(base); }
bool applies_aux(const Policy& base) {
  return base.conflict.kind == ConflictKind::kScmAux;
}
bool applies_retry_bit(const Policy& base) {
  // slr-scm is excluded: the SLR flavor under SCM always honors the bit.
  if (base.flavor == AttemptFlavor::kSlr &&
      base.conflict.kind == ConflictKind::kScmAux) {
    return false;
  }
  return has_retry_budget(base);
}
bool applies_subscribe(const Policy& base) {
  return base.flavor == AttemptFlavor::kSlr;
}
bool applies_mode(const Policy& base) {
  // Every locking flavor takes a mode; nolock has no lock to mode and the
  // adaptive flavor is kept exclusive-only (glibc's policy has no
  // reader-writer semantics to mirror).
  return base.flavor != AttemptFlavor::kNoLock &&
         base.flavor != AttemptFlavor::kAdaptiveHle;
}
bool applies_adaptive(const Policy& base) {
  return base.flavor == AttemptFlavor::kAdaptiveHle;
}

std::string why_not_aux(const Policy&, const char* scheme_key) {
  return "'aux' only applies to the SCM schemes (hle-scm, slr-scm), not '" +
         std::string(scheme_key) + "'";
}
std::string why_not_retry_bit(const Policy& base, const char* scheme_key) {
  if (base.flavor == AttemptFlavor::kSlr &&
      base.conflict.kind == ConflictKind::kScmAux) {
    return "'retry-bit' is fixed for slr-scm (the SLR flavor always honors "
           "the no-retry hint)";
  }
  (void)scheme_key;
  return {};  // generic text
}
std::string why_not_subscribe(const Policy&, const char* scheme_key) {
  return "'subscribe' only applies to the SLR schemes (slr, slr-scm), not '" +
         std::string(scheme_key) + "'";
}
std::string why_not_adaptive(const Policy&, const char* scheme_key) {
  return std::string("only applies to scheme 'adaptive', not '") + scheme_key +
         "'";
}

const ParamRow kParamRows[] = {
    {"retries", "retries=<1..1000>", "retries=5",
     "attempt budget before fallback", applies_retry_budget, apply_retries,
     nullptr},
    {"backoff", "backoff=none|exp", "backoff=exp",
     "delay between speculative retries", applies_retry_budget, apply_backoff,
     nullptr},
    {"aux", "aux=<lock>", "aux=ticket", "SCM auxiliary lock", applies_aux,
     apply_aux, why_not_aux},
    {"retry-bit", "retry-bit=on|off", "retry-bit=on",
     "honor the hardware no-retry hint", applies_retry_bit, apply_retry_bit,
     why_not_retry_bit},
    {"subscribe", "subscribe=lazy|commit-checked", "subscribe=commit-checked",
     "SLR lock subscription: lazy end-of-body check vs. Dice et al.'s "
     "commit-time enforcement",
     applies_subscribe, apply_subscribe, why_not_subscribe},
    {"mode", "mode=exclusive|shared|update", "mode=shared",
     "lock access mode; shared/update need a reader-writer lock (rw, rw-wp)",
     applies_mode, apply_mode, nullptr},
    {"tries", "tries=<1..100>", "tries=2", "adaptive: elision attempts",
     applies_adaptive,
     [](Policy& p, std::string_view v, std::string& e) {
       return apply_tries_or_skip(p, "tries", v, e);
     },
     why_not_adaptive},
    {"skip", "skip=<0..1000>", "skip=10",
     "adaptive: skip window after misbehavior", applies_adaptive,
     [](Policy& p, std::string_view v, std::string& e) {
       return apply_tries_or_skip(p, "skip", v, e);
     },
     why_not_adaptive},
};

const ParamRow* find_param(std::string_view key) {
  for (const ParamRow& r : kParamRows) {
    if (key == r.key) return &r;
  }
  return nullptr;
}

// The keys valid for a given base scheme, for unknown-key errors; derived
// from the registration table so the list tracks the grammar.
std::string valid_keys_for(const Policy& base) {
  std::string out;
  for (const ParamRow& r : kParamRows) {
    if (!r.applies(base)) continue;
    if (!out.empty()) out += ", ";
    out += r.key;
  }
  return out.empty() ? "(none)" : out;
}

// The scheme keys a parameter applies to, for the help text.
std::string applicable_schemes(const ParamRow& row) {
  std::string out;
  for (const SchemeRow& r : kSchemeRows) {
    if (!row.applies(policy_for(r.scheme))) continue;
    if (!out.empty()) out += ", ";
    out += r.key;
  }
  return out;
}

}  // namespace

std::optional<Scheme> parse_scheme_name(std::string_view name) {
  for (const SchemeRow& r : kSchemeRows) {
    if (iequals(name, r.key) || iequals(name, r.display) ||
        (r.alias != nullptr && iequals(name, r.alias))) {
      return r.scheme;
    }
  }
  return std::nullopt;
}

std::optional<locks::LockKind> parse_lock_kind(std::string_view name,
                                               std::string* error) {
  for (const LockRow& r : kLockRows) {
    if (iequals(name, r.key)) return r.kind;
  }
  set_error(error,
            "unknown lock '" + std::string(name) + "'; " + lock_help());
  return std::nullopt;
}

const char* lock_key(locks::LockKind k) {
  for (const LockRow& r : kLockRows) {
    if (r.kind == k) return r.key;
  }
  return "?";
}

std::vector<ParamInfo> registered_params() {
  std::vector<ParamInfo> out;
  for (const ParamRow& r : kParamRows) {
    out.push_back({r.key, r.syntax, r.example, r.summary});
  }
  return out;
}

bool param_applies(std::string_view key, const Policy& base) {
  const ParamRow* row = find_param(key);
  return row != nullptr && row->applies(base);
}

std::vector<const char*> registered_lock_keys() {
  std::vector<const char*> out;
  for (const LockRow& r : kLockRows) out.push_back(r.key);
  return out;
}

std::optional<Policy> parse_policy(std::string_view spec, std::string* error) {
  const std::size_t colon = spec.find(':');
  const std::string_view name =
      colon == std::string_view::npos ? spec : spec.substr(0, colon);
  const auto scheme = parse_scheme_name(name);
  if (!scheme) {
    set_error(error, "unknown scheme '" + std::string(name) + "'\n" +
                         scheme_help());
    return std::nullopt;
  }
  Policy p = policy_for(*scheme);
  const Policy base = p;  // applicability is a property of the base scheme
  const SchemeRow& row = scheme_row(*scheme);
  if (colon == std::string_view::npos) return p;

  std::string_view params = spec.substr(colon + 1);
  if (params.empty()) {
    set_error(error, "empty parameter list after ':' in '" +
                         std::string(spec) +
                         "' (expected name:key=value[,key=value...])");
    return std::nullopt;
  }

  std::string seen;  // comma-joined keys already consumed, for duplicates
  while (!params.empty()) {
    const std::size_t comma = params.find(',');
    const std::string_view tok =
        comma == std::string_view::npos ? params : params.substr(0, comma);
    params = comma == std::string_view::npos ? std::string_view{}
                                             : params.substr(comma + 1);

    const std::size_t eq = tok.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      set_error(error, "malformed parameter '" + std::string(tok) + "' in '" +
                           std::string(spec) + "' (expected key=value)");
      return std::nullopt;
    }
    const std::string key(tok.substr(0, eq));
    const std::string_view value = tok.substr(eq + 1);
    if (value.empty()) {
      set_error(error, "empty value for '" + key + "' in '" +
                           std::string(spec) + "' (expected " + key +
                           "=<value>)");
      return std::nullopt;
    }
    if (("," + seen + ",").find("," + key + ",") != std::string::npos) {
      set_error(error, "duplicate key '" + key + "' in '" + std::string(spec) +
                           "'");
      return std::nullopt;
    }
    seen += (seen.empty() ? "" : ",") + key;

    const ParamRow* param = find_param(key);
    if (param == nullptr) {
      set_error(error, "unknown key '" + key + "' for scheme '" +
                           std::string(row.key) + "'; valid keys: " +
                           valid_keys_for(base) + "\n" + scheme_help());
      return std::nullopt;
    }
    if (!param->applies(base)) {
      std::string msg;
      if (param->why_not != nullptr) msg = param->why_not(base, row.key);
      if (msg.empty()) {
        msg = "'" + key + "' does not apply to scheme '" +
              std::string(row.key) + "'; valid keys: " + valid_keys_for(base);
      } else if (msg.find(key) == std::string::npos) {
        msg = "'" + key + "' " + msg;
      }
      set_error(error, std::move(msg));
      return std::nullopt;
    }
    std::string err;
    if (!param->apply(p, value, err)) {
      set_error(error, std::move(err));
      return std::nullopt;
    }
  }
  return p;
}

std::string policy_spec(const Policy& p) {
  if (const auto s = canonical_scheme(p)) return scheme_row(*s).key;

  // Nearest canonical base: same flavor and conflict kind; for non-SCM HLE
  // also the same fallback (that is what distinguishes hle from
  // hle-retries).  Row order makes the match deterministic.
  const SchemeRow* base = nullptr;
  for (const SchemeRow& r : kSchemeRows) {
    const Policy bp = policy_for(r.scheme);
    if (bp.flavor != p.flavor || bp.conflict.kind != p.conflict.kind) continue;
    if (p.flavor == AttemptFlavor::kHle &&
        p.conflict.kind == ConflictKind::kNone && bp.fallback != p.fallback) {
      continue;
    }
    base = &r;
    break;
  }
  if (base == nullptr) return "?";  // not reachable via parse_policy
  const Policy bp = policy_for(base->scheme);

  std::string out = base->key;
  char sep = ':';
  const auto emit = [&out, &sep](const std::string& kv) {
    out += sep;
    out += kv;
    sep = ',';
  };
  if (p.retry.max_attempts != bp.retry.max_attempts) {
    emit("retries=" + std::to_string(p.retry.max_attempts));
  }
  if (p.retry.backoff.kind != bp.retry.backoff.kind) {
    emit(p.retry.backoff.kind == BackoffKind::kExp ? "backoff=exp"
                                                   : "backoff=none");
  }
  if (p.conflict.aux != bp.conflict.aux) {
    emit(std::string("aux=") + lock_key(p.conflict.aux));
  }
  if (p.retry.honor_retry_bit != bp.retry.honor_retry_bit) {
    emit(p.retry.honor_retry_bit ? "retry-bit=on" : "retry-bit=off");
  }
  if (p.conflict.honor_retry_bit_hle != bp.conflict.honor_retry_bit_hle) {
    emit(p.conflict.honor_retry_bit_hle ? "retry-bit=on" : "retry-bit=off");
  }
  if (p.subscribe != bp.subscribe) {
    emit(p.subscribe == SubscribeKind::kCommitChecked ? "subscribe=commit-checked"
                                                      : "subscribe=lazy");
  }
  if (p.mode != bp.mode) {
    emit(std::string("mode=") + locks::to_string(p.mode));
  }
  if (p.adaptive.tries != bp.adaptive.tries) {
    emit("tries=" + std::to_string(p.adaptive.tries));
  }
  if (p.adaptive.skip != bp.adaptive.skip) {
    emit("skip=" + std::to_string(p.adaptive.skip));
  }
  return out;
}

std::string policy_label(const Policy& p) {
  if (const auto s = canonical_scheme(p)) return scheme_row(*s).display;
  return policy_spec(p);
}

std::string scheme_help() {
  std::string out = "valid schemes: " + scheme_key_list() +
                    "\n"
                    "parameterized specs: name:key=value[,key=value...]\n";
  for (const ParamRow& r : kParamRows) {
    out += "  ";
    out += r.syntax;
    // Pad the syntax column for readability.
    constexpr std::size_t kCol = 32;
    const std::size_t w = std::string_view(r.syntax).size();
    out.append(w < kCol ? kCol - w : 1, ' ');
    out += r.summary;
    if (std::string_view(r.key) == "aux") {
      out += ": " + lock_key_list();
    }
    out += " (" + applicable_schemes(r) + ")\n";
  }
  out +=
      "examples: hle-scm:aux=ticket,retries=5  slr:retries=20,backoff=exp  "
      "hle:mode=shared";
  return out;
}

std::string lock_help() {
  return "valid locks: " + lock_key_list();
}

}  // namespace sihle::elision
