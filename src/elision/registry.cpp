#include "elision/registry.h"

#include <cctype>
#include <cstdlib>

namespace sihle::elision {

namespace {

// Parameter ranges.  The retry budget cap is generous (the paper sweeps
// 1..10) but finite so a typo'd "retries=100000" fails loudly instead of
// running a pathological configuration for hours.
constexpr long kRetriesMin = 1, kRetriesMax = 1000;
constexpr long kTriesMin = 1, kTriesMax = 100;
constexpr long kSkipMin = 0, kSkipMax = 1000;

struct LockRow {
  locks::LockKind kind;
  const char* key;  // parse key = display name lowercased
};

constexpr LockRow kLockRows[] = {
    {locks::LockKind::kTtas, "ttas"},
    {locks::LockKind::kMcs, "mcs"},
    {locks::LockKind::kTicket, "ticket"},
    {locks::LockKind::kClh, "clh"},
    {locks::LockKind::kAnderson, "anderson"},
    {locks::LockKind::kElidableTicket, "eticket"},
    {locks::LockKind::kElidableClh, "eclh"},
    {locks::LockKind::kElidableAnderson, "eanderson"},
};

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

bool parse_long(std::string_view v, long& out) {
  if (v.empty()) return false;
  const std::string s(v);
  char* end = nullptr;
  out = std::strtol(s.c_str(), &end, 10);
  return end != nullptr && *end == '\0';
}

void set_error(std::string* error, std::string msg) {
  if (error != nullptr) *error = std::move(msg);
}

// Whether the retry-budget keys (retries, backoff) apply to this policy.
bool has_retry_budget(const Policy& p) {
  return p.flavor == AttemptFlavor::kHle || p.flavor == AttemptFlavor::kSlr;
}

std::string scheme_key_list() {
  std::string out;
  for (const SchemeRow& r : kSchemeRows) {
    if (!out.empty()) out += ", ";
    out += r.key;
    if (r.alias != nullptr) {
      out += " (alias: ";
      out += r.alias;
      out += ")";
    }
  }
  return out;
}

std::string lock_key_list() {
  std::string out;
  for (const LockRow& r : kLockRows) {
    if (!out.empty()) out += ", ";
    out += r.key;
  }
  return out;
}

// The keys valid for a given base scheme, for unknown-key errors.
std::string valid_keys_for(const Policy& p) {
  if (p.flavor == AttemptFlavor::kAdaptiveHle) return "tries, skip";
  if (p.conflict.kind == ConflictKind::kScmAux) {
    return p.flavor == AttemptFlavor::kHle
               ? "retries, backoff, aux, retry-bit"
               : "retries, backoff, aux, subscribe";
  }
  if (p.flavor == AttemptFlavor::kSlr) {
    return "retries, backoff, retry-bit, subscribe";
  }
  if (has_retry_budget(p)) return "retries, backoff, retry-bit";
  return "(none)";
}

}  // namespace

std::optional<Scheme> parse_scheme_name(std::string_view name) {
  for (const SchemeRow& r : kSchemeRows) {
    if (iequals(name, r.key) || iequals(name, r.display) ||
        (r.alias != nullptr && iequals(name, r.alias))) {
      return r.scheme;
    }
  }
  return std::nullopt;
}

std::optional<locks::LockKind> parse_lock_kind(std::string_view name,
                                               std::string* error) {
  for (const LockRow& r : kLockRows) {
    if (iequals(name, r.key)) return r.kind;
  }
  set_error(error,
            "unknown lock '" + std::string(name) + "'; " + lock_help());
  return std::nullopt;
}

const char* lock_key(locks::LockKind k) {
  for (const LockRow& r : kLockRows) {
    if (r.kind == k) return r.key;
  }
  return "?";
}

std::optional<Policy> parse_policy(std::string_view spec, std::string* error) {
  const std::size_t colon = spec.find(':');
  const std::string_view name =
      colon == std::string_view::npos ? spec : spec.substr(0, colon);
  const auto scheme = parse_scheme_name(name);
  if (!scheme) {
    set_error(error, "unknown scheme '" + std::string(name) + "'\n" +
                         scheme_help());
    return std::nullopt;
  }
  Policy p = policy_for(*scheme);
  const SchemeRow& row = scheme_row(*scheme);
  if (colon == std::string_view::npos) return p;

  std::string_view params = spec.substr(colon + 1);
  if (params.empty()) {
    set_error(error, "empty parameter list after ':' in '" +
                         std::string(spec) +
                         "' (expected name:key=value[,key=value...])");
    return std::nullopt;
  }

  std::string seen;  // comma-joined keys already consumed, for duplicates
  while (!params.empty()) {
    const std::size_t comma = params.find(',');
    const std::string_view tok =
        comma == std::string_view::npos ? params : params.substr(0, comma);
    params = comma == std::string_view::npos ? std::string_view{}
                                             : params.substr(comma + 1);

    const std::size_t eq = tok.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      set_error(error, "malformed parameter '" + std::string(tok) + "' in '" +
                           std::string(spec) + "' (expected key=value)");
      return std::nullopt;
    }
    const std::string key(tok.substr(0, eq));
    const std::string_view value = tok.substr(eq + 1);
    if (value.empty()) {
      set_error(error, "empty value for '" + key + "' in '" +
                           std::string(spec) + "' (expected " + key +
                           "=<value>)");
      return std::nullopt;
    }
    if (("," + seen + ",").find("," + key + ",") != std::string::npos) {
      set_error(error, "duplicate key '" + key + "' in '" + std::string(spec) +
                           "'");
      return std::nullopt;
    }
    seen += (seen.empty() ? "" : ",") + key;

    if (key == "retries") {
      if (!has_retry_budget(p)) {
        set_error(error, "'retries' does not apply to scheme '" +
                             std::string(row.key) + "'; valid keys: " +
                             valid_keys_for(p));
        return std::nullopt;
      }
      long v = 0;
      if (!parse_long(value, v) || v < kRetriesMin || v > kRetriesMax) {
        set_error(error, "retries=" + std::string(value) +
                             " out of range [" + std::to_string(kRetriesMin) +
                             ", " + std::to_string(kRetriesMax) + "]");
        return std::nullopt;
      }
      p.retry.max_attempts = static_cast<int>(v);
    } else if (key == "backoff") {
      if (!has_retry_budget(p)) {
        set_error(error, "'backoff' does not apply to scheme '" +
                             std::string(row.key) + "'; valid keys: " +
                             valid_keys_for(p));
        return std::nullopt;
      }
      if (value == "none") {
        p.retry.backoff.kind = BackoffKind::kNone;
      } else if (value == "exp") {
        p.retry.backoff.kind = BackoffKind::kExp;
      } else {
        set_error(error, "backoff=" + std::string(value) +
                             " is not a backoff kind (expected none|exp)");
        return std::nullopt;
      }
    } else if (key == "aux") {
      if (p.conflict.kind != ConflictKind::kScmAux) {
        set_error(error, "'aux' only applies to the SCM schemes (hle-scm, "
                         "slr-scm), not '" +
                             std::string(row.key) + "'");
        return std::nullopt;
      }
      std::string lock_err;
      const auto kind = parse_lock_kind(value, &lock_err);
      if (!kind) {
        set_error(error, "aux=" + std::string(value) + ": " + lock_err);
        return std::nullopt;
      }
      p.conflict.aux = *kind;
    } else if (key == "retry-bit") {
      bool on = false;
      if (value == "on") {
        on = true;
      } else if (value != "off") {
        set_error(error, "retry-bit=" + std::string(value) +
                             " (expected on|off)");
        return std::nullopt;
      }
      if (p.flavor == AttemptFlavor::kHle &&
          p.conflict.kind == ConflictKind::kScmAux) {
        p.conflict.honor_retry_bit_hle = on;
      } else if (p.flavor == AttemptFlavor::kSlr &&
                 p.conflict.kind == ConflictKind::kScmAux) {
        set_error(error, "'retry-bit' is fixed for slr-scm (the SLR flavor "
                         "always honors the no-retry hint)");
        return std::nullopt;
      } else if (has_retry_budget(p)) {
        p.retry.honor_retry_bit = on;
      } else {
        set_error(error, "'retry-bit' does not apply to scheme '" +
                             std::string(row.key) + "'; valid keys: " +
                             valid_keys_for(p));
        return std::nullopt;
      }
    } else if (key == "subscribe") {
      if (p.flavor != AttemptFlavor::kSlr) {
        set_error(error, "'subscribe' only applies to the SLR schemes (slr, "
                         "slr-scm), not '" +
                             std::string(row.key) + "'");
        return std::nullopt;
      }
      if (value == "lazy") {
        p.subscribe = SubscribeKind::kLazy;
      } else if (value == "commit-checked") {
        p.subscribe = SubscribeKind::kCommitChecked;
      } else {
        set_error(error, "subscribe=" + std::string(value) +
                             " is not a subscription kind (expected "
                             "lazy|commit-checked)");
        return std::nullopt;
      }
    } else if (key == "tries" || key == "skip") {
      if (p.flavor != AttemptFlavor::kAdaptiveHle) {
        set_error(error, "'" + key + "' only applies to scheme 'adaptive', "
                         "not '" +
                             std::string(row.key) + "'");
        return std::nullopt;
      }
      long v = 0;
      const long lo = key == "tries" ? kTriesMin : kSkipMin;
      const long hi = key == "tries" ? kTriesMax : kSkipMax;
      if (!parse_long(value, v) || v < lo || v > hi) {
        set_error(error, key + "=" + std::string(value) + " out of range [" +
                             std::to_string(lo) + ", " + std::to_string(hi) +
                             "]");
        return std::nullopt;
      }
      (key == "tries" ? p.adaptive.tries : p.adaptive.skip) =
          static_cast<int>(v);
    } else {
      set_error(error, "unknown key '" + key + "' for scheme '" +
                           std::string(row.key) + "'; valid keys: " +
                           valid_keys_for(p) + "\n" + scheme_help());
      return std::nullopt;
    }
  }
  return p;
}

std::string policy_spec(const Policy& p) {
  if (const auto s = canonical_scheme(p)) return scheme_row(*s).key;

  // Nearest canonical base: same flavor and conflict kind; for non-SCM HLE
  // also the same fallback (that is what distinguishes hle from
  // hle-retries).  Row order makes the match deterministic.
  const SchemeRow* base = nullptr;
  for (const SchemeRow& r : kSchemeRows) {
    const Policy bp = policy_for(r.scheme);
    if (bp.flavor != p.flavor || bp.conflict.kind != p.conflict.kind) continue;
    if (p.flavor == AttemptFlavor::kHle &&
        p.conflict.kind == ConflictKind::kNone && bp.fallback != p.fallback) {
      continue;
    }
    base = &r;
    break;
  }
  if (base == nullptr) return "?";  // not reachable via parse_policy
  const Policy bp = policy_for(base->scheme);

  std::string out = base->key;
  char sep = ':';
  const auto emit = [&out, &sep](const std::string& kv) {
    out += sep;
    out += kv;
    sep = ',';
  };
  if (p.retry.max_attempts != bp.retry.max_attempts) {
    emit("retries=" + std::to_string(p.retry.max_attempts));
  }
  if (p.retry.backoff.kind != bp.retry.backoff.kind) {
    emit(p.retry.backoff.kind == BackoffKind::kExp ? "backoff=exp"
                                                   : "backoff=none");
  }
  if (p.conflict.aux != bp.conflict.aux) {
    emit(std::string("aux=") + lock_key(p.conflict.aux));
  }
  if (p.retry.honor_retry_bit != bp.retry.honor_retry_bit) {
    emit(p.retry.honor_retry_bit ? "retry-bit=on" : "retry-bit=off");
  }
  if (p.conflict.honor_retry_bit_hle != bp.conflict.honor_retry_bit_hle) {
    emit(p.conflict.honor_retry_bit_hle ? "retry-bit=on" : "retry-bit=off");
  }
  if (p.subscribe != bp.subscribe) {
    emit(p.subscribe == SubscribeKind::kCommitChecked ? "subscribe=commit-checked"
                                                      : "subscribe=lazy");
  }
  if (p.adaptive.tries != bp.adaptive.tries) {
    emit("tries=" + std::to_string(p.adaptive.tries));
  }
  if (p.adaptive.skip != bp.adaptive.skip) {
    emit("skip=" + std::to_string(p.adaptive.skip));
  }
  return out;
}

std::string policy_label(const Policy& p) {
  if (const auto s = canonical_scheme(p)) return scheme_row(*s).display;
  return policy_spec(p);
}

std::string scheme_help() {
  return "valid schemes: " + scheme_key_list() +
         "\n"
         "parameterized specs: name:key=value[,key=value...]\n"
         "  retries=<1..1000>  attempt budget before fallback (hle, "
         "hle-retries, hle-scm, slr, slr-scm)\n"
         "  backoff=none|exp   delay between speculative retries (same "
         "schemes)\n"
         "  aux=<lock>         SCM auxiliary lock (hle-scm, slr-scm): " +
         lock_key_list() +
         "\n"
         "  retry-bit=on|off   honor the hardware no-retry hint (hle, "
         "hle-retries, slr, hle-scm)\n"
         "  subscribe=lazy|commit-checked  SLR lock subscription (slr, "
         "slr-scm): lazy end-of-body check vs. Dice et al.'s commit-time "
         "enforcement\n"
         "  tries=<1..100>, skip=<0..1000>  adaptive tuning\n"
         "examples: hle-scm:aux=ticket,retries=5  slr:retries=20,backoff=exp";
}

std::string lock_help() {
  return "valid locks: " + lock_key_list();
}

}  // namespace sihle::elision
