// Bounded per-shard request queues with depth tracking.
//
// Each queue owns one precomputed arrival stream (service/request.h) sorted
// by arrival time.  Servers call claim(now) at their scheduling points: the
// queue first *ingests* every request whose arrival timestamp is <= now —
// admitting it if the backlog is below capacity, shedding it otherwise —
// and then hands out the oldest admitted request that has arrived by the
// claimant's own clock.  Because ingestion happens
// only at virtual-time points that are themselves deterministic, the
// admitted/dropped split, the depth high-water mark, and every latency
// sample are byte-identical across --jobs and --domain-threads.
#pragma once

#include <cassert>
#include <cstdint>
#include <deque>
#include <limits>
#include <utility>

#include "service/request.h"
#include "sim/cost_model.h"

namespace sihle::service {

// Sentinel for "no pending arrival" (stream exhausted).
inline constexpr sim::Cycles kNever = std::numeric_limits<sim::Cycles>::max();

struct QueueStats {
  std::uint64_t offered = 0;    // total requests in the stream
  std::uint64_t admitted = 0;   // entered the queue
  std::uint64_t dropped = 0;    // shed at ingest (queue at capacity)
  std::uint64_t served = 0;     // handed to a server via claim()
  std::size_t max_depth = 0;    // backlog high-water mark after ingest
};

class RequestQueue {
 public:
  // capacity 0 = unbounded.
  explicit RequestQueue(RequestStream stream, std::size_t capacity = 0)
      : stream_(std::move(stream)), capacity_(capacity) {
    stats_.offered = stream_.size();
  }

  // Arrival time of the next not-yet-ingested request, or kNever.
  sim::Cycles next_arrival() const {
    return cursor_ < stream_.size() ? stream_[cursor_].arrival : kNever;
  }

  // Earliest virtual time at which a claim could succeed: the backlog
  // head's arrival if one is waiting, else the next stream arrival, else
  // kNever.  An idle server sleeps until next_ready().
  sim::Cycles next_ready() const {
    return backlog_.empty() ? next_arrival() : backlog_.front().arrival;
  }

  // Ingest all arrivals <= now, then pop the oldest admitted request —
  // but only if it has arrived by the *claimant's* clock.  Server clocks
  // within a pool advance independently, so a laggard may observe a
  // backlog its faster peers ingested from the future of its own
  // timeline; handing such a request out would start it before it arrived
  // (and underflow every latency component).  Returns {request, true} or
  // {{}, false} when nothing has both arrived and been admitted.
  std::pair<Request, bool> claim(sim::Cycles now) {
    ingest(now);
    if (backlog_.empty() || backlog_.front().arrival > now) {
      return {Request{}, false};
    }
    Request r = backlog_.front();
    backlog_.pop_front();
    stats_.served++;
    return {r, true};
  }

  // True once every stream request has been ingested and the backlog drained
  // (served or shed) — the server pool's termination condition.
  bool exhausted() const {
    return cursor_ == stream_.size() && backlog_.empty();
  }

  std::size_t depth() const { return backlog_.size(); }
  const QueueStats& stats() const { return stats_; }

 private:
  void ingest(sim::Cycles now) {
    while (cursor_ < stream_.size() && stream_[cursor_].arrival <= now) {
      if (capacity_ != 0 && backlog_.size() >= capacity_) {
        stats_.dropped++;
      } else {
        backlog_.push_back(stream_[cursor_]);
        stats_.admitted++;
        if (backlog_.size() > stats_.max_depth) stats_.max_depth = backlog_.size();
      }
      cursor_++;
    }
  }

  RequestStream stream_;
  std::size_t capacity_;
  std::size_t cursor_ = 0;  // next stream index to ingest
  std::deque<Request> backlog_;
  QueueStats stats_;
};

}  // namespace sihle::service
