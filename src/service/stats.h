// Plain-data accounting for the service stack, kept separate from the
// dispatcher templates so result structs (harness/rbtree_workload.h,
// harness/shard_workload.h) can embed them without pulling in the runtime.
#pragma once

#include <cstdint>
#include <vector>

#include "service/queue.h"
#include "service/request.h"
#include "stats/latency.h"

namespace sihle::service {

// Per-server-thread recordings; aggregate with aggregate_service()
// (service/dispatcher.h).
struct ServerStats {
  stats::LatencyHistogram qdelay;   // start - arrival
  stats::LatencyHistogram service;  // done - start
  stats::LatencyHistogram sojourn;  // done - arrival
  std::uint64_t served = 0;
  // served count per session id; size it to LoadSpec::sessions before the
  // run (ids beyond the size are counted in `served` only).
  std::vector<std::uint64_t> served_by_session;
};

// Whole-run view over every queue and server.
struct ServiceResult {
  stats::LatencyHistogram qdelay;
  stats::LatencyHistogram service;
  stats::LatencyHistogram sojourn;
  QueueStats queue;  // counters summed; max_depth = max over queues
  std::vector<Session> sessions;
};

}  // namespace sihle::service
