// Load models for the layered load-generation stack (docs/SERVICE.md).
//
// Every workload driver in the repo runs under a LoadSpec.  The historical
// benches are *closed* systems: N server threads double as zero-think-time
// client sessions, each issuing its next operation the instant the previous
// one completes, so offered load always equals capacity and latency numbers
// contain no queueing delay.  The *open* models decouple request arrival
// from service: a deterministic arrival process (service/arrival.h) issues
// timestamped requests from simulated client sessions into per-shard
// bounded queues (service/queue.h), and a pool of simulated server threads
// drains them (service/dispatcher.h).  Under an open model the sojourn time
// (arrival to completion) splits into queueing delay plus service time —
// the tail-latency numbers a service operator sees, and the form in which
// the paper's SCM fairness/starvation-freedom claims become measurable
// (PAPER.md §5-6, bench/figservice_tail.cpp).
#pragma once

#include <cstdint>

#include "sim/cost_model.h"

namespace sihle::service {

enum class LoadModel : std::uint8_t {
  kClosed,   // classic closed loop: the degenerate arrival process
  kUniform,  // open, deterministic arrivals at fixed spacing
  kPoisson,  // open, exponential inter-arrival gaps (memoryless)
  kOnOff,    // open, Poisson bursts: on-phase arrivals, silent off phases
};

constexpr const char* to_string(LoadModel m) {
  switch (m) {
    case LoadModel::kClosed: return "closed";
    case LoadModel::kUniform: return "uniform";
    case LoadModel::kPoisson: return "poisson";
    case LoadModel::kOnOff: return "onoff";
  }
  return "?";
}

struct LoadSpec {
  LoadModel model = LoadModel::kClosed;
  // Open models: mean offered arrival rate while generating (for kOnOff this
  // is the *burst* rate; the long-run mean is scaled by the on fraction).
  double offered_ops_per_mcycle = 1000.0;
  // kOnOff phase lengths in virtual cycles.
  sim::Cycles on_cycles = 50'000;
  sim::Cycles off_cycles = 50'000;
  // Open models: total requests in the arrival stream.
  std::uint64_t requests = 8000;
  // Open models: simulated client sessions the stream is attributed to.
  std::uint64_t sessions = 1024;
  // Open models: per-queue bound; arrivals beyond it are shed (counted as
  // drops, never served).  0 = unbounded.
  std::size_t queue_capacity = 0;

  bool open() const { return model != LoadModel::kClosed; }
};

}  // namespace sihle::service
