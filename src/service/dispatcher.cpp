#include "service/dispatcher.h"

#include <algorithm>
#include <cassert>

#include "service/arrival.h"
#include "sim/rng.h"
#include "util/zipf.h"

namespace sihle::service {

namespace {
// Stream-tag salts: arrival-gap draws and request-content draws come from
// distinct generators so neither stream's draw count perturbs the other.
constexpr std::uint64_t kArrivalSeedSalt = 0x0A2210A1ULL;
constexpr std::uint64_t kRequestSeedSalt = 0x5EC0A751ULL;
}  // namespace

std::vector<RequestStream> build_request_streams(const StreamConfig& sc) {
  assert(sc.load.open() && "closed load models build no request streams");
  const std::size_t queues = sc.queues == 0 ? 1 : sc.queues;
  std::vector<RequestStream> out(queues);

  ArrivalProcess arrivals(sc.load, sc.seed ^ kArrivalSeedSalt);
  sim::Rng req_rng(sc.seed ^ kRequestSeedSalt);
  const util::Zipf zipf(sc.keyspace, sc.zipf_s);

  for (std::uint64_t i = 0; i < sc.load.requests; ++i) {
    Request r;
    r.session = sc.load.sessions == 0 ? 0 : i % sc.load.sessions;
    r.arrival = arrivals.next();
    r.key = zipf.draw(req_rng);
    const int dice = static_cast<int>(req_rng.below(100));
    r.op = dice < sc.update_pct / 2 ? OpKind::kInsert
           : dice < sc.update_pct   ? OpKind::kErase
                                    : OpKind::kLookup;
    const std::size_t q =
        sc.route == nullptr
            ? 0
            : sc.route(static_cast<std::int64_t>(r.key), queues);
    assert(q < queues);
    r.seq = out[q].size();
    out[q].push_back(r);
  }
  return out;
}

ServiceResult aggregate_service(std::uint64_t sessions,
                                const std::vector<RequestStream>& streams,
                                const std::vector<RequestQueue>& queues,
                                const std::vector<ServerStats>& servers) {
  ServiceResult out;
  for (const RequestQueue& q : queues) {
    const QueueStats& s = q.stats();
    out.queue.offered += s.offered;
    out.queue.admitted += s.admitted;
    out.queue.dropped += s.dropped;
    out.queue.served += s.served;
    out.queue.max_depth = std::max(out.queue.max_depth, s.max_depth);
  }
  out.sessions.resize(sessions);
  for (std::uint64_t s = 0; s < sessions; ++s) out.sessions[s].id = s;
  for (const RequestStream& stream : streams) {
    for (const Request& r : stream) {
      if (r.session < sessions) out.sessions[r.session].issued++;
    }
  }
  for (const ServerStats& st : servers) {
    out.qdelay += st.qdelay;
    out.service += st.service;
    out.sojourn += st.sojourn;
    for (std::size_t s = 0;
         s < st.served_by_session.size() && s < out.sessions.size(); ++s) {
      out.sessions[s].served += st.served_by_session[s];
    }
  }
  for (Session& s : out.sessions) {
    s.dropped = s.issued >= s.served ? s.issued - s.served : 0;
  }
  return out;
}

}  // namespace sihle::service
