// Request and Session records for the open-system service stack.
//
// A Request is born on the host side (service/dispatcher.h's stream
// builders) with its key, operation kind, and arrival timestamp already
// fixed — making the offered load a pure function of (LoadSpec, seed),
// independent of how the servers are scheduled.  The serving side fills in
// `start` (dequeued by a server) and `done` (operation completed), from
// which the three latency series derive:
//
//   queueing delay = start - arrival
//   service time   = done  - start
//   sojourn time   = done  - arrival
#pragma once

#include <cstdint>
#include <vector>

#include "sim/cost_model.h"

namespace sihle::service {

enum class OpKind : std::uint8_t { kLookup, kInsert, kErase };

constexpr const char* to_string(OpKind op) {
  switch (op) {
    case OpKind::kLookup: return "lookup";
    case OpKind::kInsert: return "insert";
    case OpKind::kErase: return "erase";
  }
  return "?";
}

struct Request {
  std::uint64_t session = 0;  // issuing session id, [0, LoadSpec::sessions)
  std::uint64_t seq = 0;      // position in the per-queue arrival stream
  std::uint64_t key = 0;
  OpKind op = OpKind::kLookup;
  sim::Cycles arrival = 0;  // fixed at stream-build time
  sim::Cycles start = 0;    // filled by the dispatcher
  sim::Cycles done = 0;     // filled by the dispatcher
};

// Per-session accounting, aggregated by the dispatcher after a run.
struct Session {
  std::uint64_t id = 0;
  std::uint64_t issued = 0;
  std::uint64_t served = 0;
  std::uint64_t dropped = 0;
};

using RequestStream = std::vector<Request>;

}  // namespace sihle::service
