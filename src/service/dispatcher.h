// Dispatcher: binds a pool of simulated server threads to request queues.
//
// The open-system pipeline (docs/SERVICE.md):
//
//   build_request_streams()  host side; pure function of (StreamConfig)
//        |                   — arrivals, keys, op kinds, session ids
//        v
//   RequestQueue per shard   bounded, depth-tracked (service/queue.h)
//        |
//   serve() per server       claim -> execute under the elision policy ->
//        |                   record qdelay / service / sojourn
//        v
//   aggregate_service()      merged histograms + queue + session accounting
//
// The closed system is the degenerate case: closed_session() is the same
// request loop with the arrival process collapsed to "issue the next
// request the instant the previous one completes".  The historical worker
// loops in src/harness are expressed through it, which is what makes
// LoadModel::kClosed a special case of the service stack rather than a
// separate code path — and keeps the committed closed baselines
// byte-identical (task nesting is symmetric transfer: no executor event,
// no rng draw).
#pragma once

#include <cstdint>
#include <vector>

#include "runtime/ctx.h"
#include "service/load.h"
#include "service/queue.h"
#include "service/request.h"
#include "service/stats.h"
#include "sim/task.h"
#include "stats/latency.h"

namespace sihle::service {

// Host-side request-stream construction.  Deterministic: the streams are a
// pure function of this config, independent of server scheduling.
struct StreamConfig {
  LoadSpec load;
  std::uint64_t keyspace = 256;  // keys drawn from [0, keyspace)
  double zipf_s = 0.0;           // key-popularity skew (0 = uniform)
  int update_pct = 20;           // mutating fraction, split insert/erase
  std::size_t queues = 1;
  // Routes a key to its queue (e.g. harness::shard_of_key); nullptr sends
  // everything to queue 0.
  std::size_t (*route)(std::int64_t key, std::size_t queues) = nullptr;
  std::uint64_t seed = 1;
};

// One stream per queue, each sorted by arrival time, with per-queue seq
// numbers assigned in arrival order.  Sessions are attributed round-robin.
std::vector<RequestStream> build_request_streams(const StreamConfig& sc);

// Merges queue counters, server histograms, and per-session accounting
// (dropped = issued - served; exact once the run has drained every queue).
ServiceResult aggregate_service(std::uint64_t sessions,
                                const std::vector<RequestStream>& streams,
                                const std::vector<RequestQueue>& queues,
                                const std::vector<ServerStats>& servers);

// One simulated server thread draining one queue.  At each scheduling point
// it claims the oldest request that has arrived by its own clock (ingesting
// arrivals up to now); when nothing is ready it sleeps until one is —
// next_ready() is strictly in the future after a failed claim, so the loop
// always advances virtual time.  `execute(c, req)` returns the Task
// performing the request under the workload's elision policy.  Returns once
// the queue is exhausted (stream ingested, backlog drained).
template <class Execute>
sim::Task<void> serve(runtime::Ctx& c, RequestQueue& q, Execute execute,
                      ServerStats& st) {
  for (;;) {
    auto [req, ok] = q.claim(c.now());
    if (!ok) {
      if (q.exhausted()) co_return;
      const sim::Cycles next = q.next_ready();
      if (next == kNever) co_return;  // defensive: exhausted() covers this
      co_await c.sleep_until(next);
      continue;
    }
    req.start = c.now();
    co_await execute(c, req);
    req.done = c.now();
    st.qdelay.record(req.start - req.arrival);
    st.service.record(req.done - req.start);
    st.sojourn.record(req.done - req.arrival);
    st.served++;
    if (req.session < st.served_by_session.size()) {
      st.served_by_session[req.session]++;
    }
  }
}

// The closed loop as the degenerate session: zero think time, the next
// request issued the instant the previous one completes.  `more(c, i)`
// gates iteration i; `issue(c, i)` returns the Task performing it (build it
// from a named coroutine function, not a capturing coroutine lambda, so the
// captures outlive every suspension).
template <class More, class Issue>
sim::Task<void> closed_session(runtime::Ctx& c, More more, Issue issue) {
  for (std::uint64_t i = 0; more(c, i); ++i) {
    co_await issue(c, i);
  }
}

}  // namespace sihle::service
