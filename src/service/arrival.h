// Deterministic arrival processes for the open-system load models
// (service/load.h).  An ArrivalProcess is a pure function of (spec, seed):
// its own sim::Rng is seeded through the repo's splitmix64 discipline, each
// next() consumes exactly one rng draw, and the produced timestamp sequence
// is non-decreasing — so a request stream, and everything downstream of it,
// is byte-identical across host-thread counts and engine --jobs fan-outs.
#pragma once

#include <cassert>
#include <cmath>
#include <cstdint>

#include "service/load.h"
#include "sim/rng.h"

namespace sihle::service {

class ArrivalProcess {
 public:
  // `seed` should be derived from the run seed (the callers salt it with a
  // stream tag so arrival draws never alias workload draws).
  ArrivalProcess(const LoadSpec& spec, std::uint64_t seed)
      : spec_(spec), rng_(seed) {
    assert(spec.open() && "closed load models have no arrival stream");
    assert(spec.offered_ops_per_mcycle > 0.0);
    if (spec_.model == LoadModel::kOnOff) {
      assert(spec_.on_cycles > 0);
    }
  }

  // Timestamp (virtual cycles) of the next arrival; non-decreasing, one rng
  // draw per call (also for kUniform, keeping draw counts model-independent).
  sim::Cycles next() {
    const double mean_gap = 1e6 / spec_.offered_ops_per_mcycle;
    const double u = rng_.uniform();
    double gap_d;
    if (spec_.model == LoadModel::kUniform) {
      gap_d = mean_gap;
      (void)u;
    } else {
      // Exponential inter-arrival: -ln(1-u) * mean.  u < 1 by construction.
      gap_d = -std::log1p(-u) * mean_gap;
    }
    sim::Cycles gap = static_cast<sim::Cycles>(std::llround(gap_d));
    if (gap < 1) gap = 1;
    active_ += gap;
    return spec_.model == LoadModel::kOnOff ? map_onoff(active_) : active_;
  }

 private:
  // kOnOff: gaps accumulate in *active* (on-phase) time; mapping active time
  // onto the on/off phase grid yields arrivals only inside on phases, with
  // bursts at the spec'd rate and silence in between.
  sim::Cycles map_onoff(sim::Cycles active) const {
    const sim::Cycles period = spec_.on_cycles + spec_.off_cycles;
    return (active / spec_.on_cycles) * period + active % spec_.on_cycles;
  }

  LoadSpec spec_;
  // sihle-lint: disable=R005 (seeded in the ctor from the caller's seed)
  sim::Rng rng_;
  sim::Cycles active_ = 0;
};

}  // namespace sihle::service
