#include "harness/rbtree_workload.h"

#include <algorithm>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "ds/hashtable.h"
#include "ds/linkedlist.h"
#include "ds/rbtree.h"
#include "ds/skiplist.h"
#include "elision/elided_lock.h"
#include "runtime/ctx.h"
#include "service/dispatcher.h"

namespace sihle::harness {

namespace {

using runtime::Ctx;
using runtime::Machine;

struct SharedState {
  std::uint64_t key_domain;
  int update_pct;
  sim::Cycles duration;
  elision::Policy policy;
  elision::Policy read_policy;  // lookups; == policy unless cfg.read_scheme
  stats::SliceRecorder* slices;  // may be null
};

template <class DS>
sim::Task<void> op_insert(Ctx& c, DS& t, std::int64_t k) {
  const bool r = co_await t.insert(c, k);
  (void)r;
}
template <class DS>
sim::Task<void> op_erase(Ctx& c, DS& t, std::int64_t k) {
  const bool r = co_await t.erase(c, k);
  (void)r;
}
template <class DS>
sim::Task<void> op_lookup(Ctx& c, DS& t, std::int64_t k) {
  const bool r = co_await t.contains(c, k);
  (void)r;
}

// One keyed operation under the policy split: mutations run under `policy`,
// lookups under `read_policy`.  Shared by the closed session body and the
// open-mode request executor.
template <class DS>
sim::Task<void> keyed_op(Ctx& c, DS& ds, elision::ElidedLock& lock,
                         SharedState& ss, stats::OpStats& st,
                         service::OpKind op, std::int64_t key) {
  switch (op) {
    case service::OpKind::kInsert:
      co_await elision::run_cs(
          ss.policy, c, lock,
          [&ds, key](Ctx& cc) { return op_insert(cc, ds, key); }, st);
      break;
    case service::OpKind::kErase:
      co_await elision::run_cs(
          ss.policy, c, lock,
          [&ds, key](Ctx& cc) { return op_erase(cc, ds, key); }, st);
      break;
    case service::OpKind::kLookup:
      co_await elision::run_cs(
          ss.read_policy, c, lock,
          [&ds, key](Ctx& cc) { return op_lookup(cc, ds, key); }, st);
      break;
  }
}

// Closed-loop iteration body: draw key and op dice (the historical draw
// order), execute, record latency and the optional slice sample.
template <class DS>
sim::Task<void> closed_op(Ctx& c, DS& ds, elision::ElidedLock& lock,
                          SharedState& ss, stats::OpStats& st,
                          stats::LatencyHistogram& lat) {
  const std::int64_t key = static_cast<std::int64_t>(c.rng().below(ss.key_domain));
  const int dice = static_cast<int>(c.rng().below(100));
  const service::OpKind op = dice < ss.update_pct / 2 ? service::OpKind::kInsert
                             : dice < ss.update_pct   ? service::OpKind::kErase
                                                      : service::OpKind::kLookup;
  const std::uint64_t nonspec_before = st.nonspec;
  const sim::Cycles op_start = c.now();
  co_await keyed_op(c, ds, lock, ss, st, op, key);
  lat.record(c.now() - op_start);
  if (ss.slices != nullptr) {
    ss.slices->record_op(c.now(), st.nonspec != nonspec_before);
  }
}

// Closed worker: a zero-think-time session for the configured duration —
// LoadModel::kClosed expressed through the service stack's session shape.
template <class DS>
sim::Task<void> worker(Ctx& c, DS& ds, elision::ElidedLock& lock,
                       SharedState& ss, stats::OpStats& st,
                       stats::LatencyHistogram& lat) {
  const sim::Cycles t0 = c.now();
  co_await service::closed_session(
      c,
      [t0, &ss](Ctx& cc, std::uint64_t) { return cc.now() - t0 < ss.duration; },
      [&](Ctx& cc, std::uint64_t) {
        return closed_op(cc, ds, lock, ss, st, lat);
      });
}

// Open-mode request executor: the key and op kind come from the request
// stream, so server threads draw nothing from the workload rng.
template <class DS>
sim::Task<void> execute_request(Ctx& c, DS& ds, elision::ElidedLock& lock,
                                SharedState& ss, stats::OpStats& st,
                                service::Request r) {
  const std::uint64_t nonspec_before = st.nonspec;
  co_await keyed_op(c, ds, lock, ss, st, r.op,
                    static_cast<std::int64_t>(r.key));
  if (ss.slices != nullptr) {
    ss.slices->record_op(c.now(), st.nonspec != nonspec_before);
  }
}

// Uniform construction / validation over the two data structures.
template <class DS>
DS* construct(Machine& m, const WorkloadConfig& cfg);

template <>
ds::RBTree* construct<ds::RBTree>(Machine& m, const WorkloadConfig&) {
  return new ds::RBTree(m);
}
template <>
ds::HashTable* construct<ds::HashTable>(Machine& m, const WorkloadConfig& cfg) {
  return new ds::HashTable(m, std::max<std::size_t>(cfg.tree_size, 16));
}
template <>
ds::LinkedListSet* construct<ds::LinkedListSet>(Machine& m, const WorkloadConfig&) {
  return new ds::LinkedListSet(m);
}
template <>
ds::SkipList* construct<ds::SkipList>(Machine& m, const WorkloadConfig&) {
  return new ds::SkipList(m);
}

bool validate(const ds::RBTree& t) { return t.debug_validate(); }
bool validate(const ds::HashTable& t) { return t.debug_validate(); }
bool validate(const ds::LinkedListSet& t) { return t.debug_validate(); }
bool validate(const ds::SkipList& t) { return t.debug_validate(); }

template <class DS>
WorkloadResult run_impl(const WorkloadConfig& cfg) {
  // Fail before simulating rather than from inside a worker coroutine: a
  // shared/update-mode policy needs a reader-writer main lock.
  for (const elision::Policy* p :
       {&cfg.scheme, cfg.read_scheme ? &*cfg.read_scheme : &cfg.scheme}) {
    if (!locks::supports_mode(cfg.lock, p->mode)) {
      throw std::invalid_argument(
          std::string("workload: lock '") + to_string(cfg.lock) +
          "' does not support mode=" + locks::to_string(p->mode) +
          " (reader-writer locks only: rw, rw-wp)");
    }
  }
  Machine::Config mc;
  mc.seed = cfg.seed;
  mc.htm.spurious_abort_per_access = cfg.spurious;
  mc.htm.persistent_abort_per_tx = cfg.persistent;
  if (cfg.max_read_lines != 0) mc.htm.max_read_lines = cfg.max_read_lines;
  mc.random_tie_break = cfg.random_tie_break;
  mc.costs = cfg.costs;
  mc.analysis = cfg.analysis;
  Machine m(mc);
  if (cfg.trace != nullptr) m.set_tx_trace(cfg.trace);
  if (cfg.events != nullptr) m.set_event_trace(cfg.events);

  // Main lock then aux lock, before the data structure — the historical
  // sync-line allocation order, which the committed baselines depend on.
  elision::ElidedLock lock(m, cfg.lock, cfg.scheme.conflict.aux);
  std::unique_ptr<DS> ds(construct<DS>(m, cfg));

  // Pre-fill to exactly `tree_size` distinct keys from [0, 2*tree_size).
  const std::uint64_t domain = std::max<std::uint64_t>(2 * cfg.tree_size, 2);
  {
    sim::Rng fill_rng(cfg.seed ^ 0xF111F111ULL);
    std::set<std::int64_t> chosen;
    while (chosen.size() < cfg.tree_size) {
      chosen.insert(static_cast<std::int64_t>(fill_rng.below(domain)));
    }
    for (auto k : chosen) ds->debug_insert(k);
  }

  WorkloadResult out;
  if (cfg.record_slices) {
    const sim::Cycles slice =
        cfg.slice_cycles != 0 ? cfg.slice_cycles : mc.costs.cycles_per_ms;
    out.slices = std::make_shared<stats::SliceRecorder>(slice);
  }

  SharedState ss{domain, cfg.update_pct, cfg.duration, cfg.scheme,
                 cfg.read_scheme.value_or(cfg.scheme), out.slices.get()};

  std::vector<stats::OpStats> per_thread(cfg.threads);
  std::vector<stats::LatencyHistogram> per_thread_lat(cfg.threads);
  std::vector<service::RequestStream> streams;
  std::vector<service::RequestQueue> queues;
  std::vector<service::ServerStats> servers;
  if (cfg.load.open()) {
    // Open system: a deterministic request stream into one bounded queue,
    // drained by `threads` simulated servers.  Keys are uniform over the
    // same domain the closed loop draws from (Zipf with s=0).
    service::StreamConfig sc;
    sc.load = cfg.load;
    sc.keyspace = domain;
    sc.update_pct = cfg.update_pct;
    sc.queues = 1;
    sc.seed = cfg.seed;
    streams = service::build_request_streams(sc);
    queues.emplace_back(streams[0], cfg.load.queue_capacity);
    servers.resize(static_cast<std::size_t>(cfg.threads));
    for (auto& sv : servers) sv.served_by_session.resize(cfg.load.sessions);
    for (int t = 0; t < cfg.threads; ++t) {
      m.spawn([&, t](Ctx& c) {
        return service::serve(
            c, queues[0],
            [&, t](Ctx& cc, const service::Request& r) {
              return execute_request<DS>(cc, *ds, lock, ss, per_thread[t], r);
            },
            servers[static_cast<std::size_t>(t)]);
      });
    }
  } else {
    for (int t = 0; t < cfg.threads; ++t) {
      m.spawn([&, t](Ctx& c) {
        return worker<DS>(c, *ds, lock, ss, per_thread[t], per_thread_lat[t]);
      });
    }
  }
  m.run();

  for (const auto& st : per_thread) out.stats += st;
  for (const auto& lh : per_thread_lat) out.latency += lh;
  if (cfg.load.open()) {
    out.open = service::aggregate_service(cfg.load.sessions, streams, queues,
                                          servers);
    out.latency = out.open.sojourn;
  }
  out.elapsed = m.exec().max_clock();
  out.ops_per_mcycle = out.elapsed == 0
                           ? 0.0
                           : static_cast<double>(out.stats.ops()) * 1e6 /
                                 static_cast<double>(out.elapsed);
  out.tree_valid = validate(*ds);
  out.final_size = ds->debug_size();
  if (m.analysis() != nullptr) out.analysis = m.analysis()->report();
  return out;
}

}  // namespace

WorkloadResult run_rbtree_workload(const WorkloadConfig& cfg) {
  switch (cfg.ds) {
    case DsKind::kRbTree: return run_impl<ds::RBTree>(cfg);
    case DsKind::kHashTable: return run_impl<ds::HashTable>(cfg);
    case DsKind::kLinkedList: return run_impl<ds::LinkedListSet>(cfg);
    case DsKind::kSkipList: return run_impl<ds::SkipList>(cfg);
  }
  return {};
}

double average_throughput(WorkloadConfig cfg, int seeds) {
  double sum = 0.0;
  for (int i = 0; i < seeds; ++i) {
    sum += run_rbtree_workload(cfg).ops_per_mcycle;
    cfg.seed++;
  }
  return sum / seeds;
}

}  // namespace sihle::harness
