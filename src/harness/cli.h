// Minimal --key=value argument parsing for the bench binaries.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/config.h"
#include "elision/policy.h"
#include "elision/registry.h"
#include "locks/locks.h"
#include "sim/cost_model.h"
#include "stats/export.h"

namespace sihle::harness {

class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) args_.emplace_back(argv[i]);
  }

  bool has(std::string_view name) const {
    for (const auto& a : args_) {
      if (a == std::string("--") + std::string(name)) return true;
      if (a.rfind(std::string("--") + std::string(name) + "=", 0) == 0) return true;
    }
    return false;
  }

  std::string get(std::string_view name, std::string def) const {
    const std::string prefix = std::string("--") + std::string(name) + "=";
    for (const auto& a : args_) {
      if (a.rfind(prefix, 0) == 0) return a.substr(prefix.size());
    }
    return def;
  }

  long get_int(std::string_view name, long def) const {
    const std::string v = get(name, "");
    return v.empty() ? def : std::strtol(v.c_str(), nullptr, 10);
  }

  double get_double(std::string_view name, double def) const {
    const std::string v = get(name, "");
    return v.empty() ? def : std::strtod(v.c_str(), nullptr);
  }

  std::vector<std::string> get_list(std::string_view name,
                                    const std::vector<std::string>& def) const {
    const std::string v = get(name, "");
    if (v.empty()) return def;
    std::vector<std::string> out;
    std::size_t pos = 0;
    while (pos <= v.size()) {
      const std::size_t comma = v.find(',', pos);
      if (comma == std::string::npos) {
        out.push_back(v.substr(pos));
        break;
      }
      out.push_back(v.substr(pos, comma - pos));
      pos = comma + 1;
    }
    return out;
  }

 private:
  std::vector<std::string> args_;
};

// Paper's tree-size sweep (Figures 2, 4, 10).
inline std::vector<std::size_t> paper_sizes() {
  return {2, 8, 32, 128, 512, 2048, 8192, 32768, 131072, 524288};
}

// Returns by value: bench code may label cells from several experiment-engine
// worker threads at once, so there must be no shared (or even thread-local
// pointer-returning) buffer here.
inline std::string size_label(std::size_t s) {
  char buf[24];
  if (s >= 1024 && s % 1024 == 0) {
    std::snprintf(buf, sizeof(buf), "%zuK", s / 1024);
  } else {
    std::snprintf(buf, sizeof(buf), "%zu", s);
  }
  return buf;
}

// Registry-backed (elision/registry.h): unknown names exit with the list of
// valid lock names instead of a bare error.
inline locks::LockKind parse_lock(const std::string& s) {
  std::string err;
  const auto kind = elision::parse_lock_kind(s, &err);
  if (!kind) {
    std::fprintf(stderr, "%s\n", err.c_str());
    std::exit(2);
  }
  return *kind;
}

// Applies --analysis=off|on|fatal process-wide by exporting SIHLE_ANALYSIS,
// which every WorkloadConfig / Machine::Config default reads — benches build
// configs deep inside sweep loops, so a single flag at startup covers all of
// them.  Must run before any experiment-engine worker threads start:
// setenv() concurrent with the getenv() in analysis::config_from_env() is a
// data race, so the environment is frozen before the fan-out begins.
inline void apply_analysis_flag(const Args& args) {
  const std::string v = args.get("analysis", "");
  if (!v.empty()) ::setenv("SIHLE_ANALYSIS", v.c_str(), 1);
}

// --analysis=off|on|fatal; defaults to the SIHLE_ANALYSIS environment
// variable so a bench invocation can enable the lockset checker either way.
inline analysis::AnalysisConfig parse_analysis(const Args& args) {
  analysis::AnalysisConfig cfg = analysis::config_from_env();
  const std::string v = args.get("analysis", "");
  if (v.empty()) return cfg;
  if (v == "off" || v == "0") {
    cfg.enabled = false;
  } else if (v == "fatal") {
    cfg.enabled = true;
    cfg.fatal = true;
  } else {
    cfg.enabled = true;
  }
  return cfg;
}

// --- Trace export (docs/OBSERVABILITY.md) ----------------------------------
//
// Destination for the structured-trace JSON: --trace-out=PATH, falling back
// to the SIHLE_TRACE environment variable; empty means tracing stays off.
// Benches that support it attach a stats::EventTrace to the runs they
// designate, aggregate with stats::Timeline, and write one document via
// stats::TraceWriter (tools/trace/trace_report reads it back).
struct TraceOptions {
  std::string out_path;              // empty = disabled
  double window_ms = 0.05;           // aggregation window, simulated ms
  bool include_events = false;       // embed raw event stream (--trace-events)
  bool enabled() const { return !out_path.empty(); }
  sim::Cycles window_cycles(const sim::CostModel& costs) const {
    const auto w = static_cast<sim::Cycles>(
        window_ms * static_cast<double>(costs.cycles_per_ms));
    return w == 0 ? 1 : w;
  }
};

inline TraceOptions parse_trace(const Args& args) {
  TraceOptions t;
  t.out_path = args.get("trace-out", "");
  if (t.out_path.empty()) {
    const char* env = std::getenv("SIHLE_TRACE");
    if (env != nullptr) t.out_path = env;
  }
  t.window_ms = args.get_double("trace-window-ms", t.window_ms);
  t.include_events = args.has("trace-events");
  return t;
}

// Writes the collected runs (if tracing was requested and anything was
// recorded) and prints a one-line pointer so the artifact is discoverable.
// An export the user asked for that cannot be written is a failed run, not
// a warning: the process exits nonzero so CI pipelines catch it.
inline void finish_trace(const TraceOptions& opts, const stats::TraceWriter& w) {
  if (!opts.enabled() || w.runs() == 0) return;
  if (!w.write_json_file(opts.out_path)) std::exit(2);
  std::fprintf(stderr, "trace: wrote %zu run(s) to %s\n", w.runs(),
               opts.out_path.c_str());
}

// Registry-backed policy-spec parsing: accepts the canonical scheme names
// plus parameterized specs like "hle-scm:aux=ticket,retries=5" (see
// elision/registry.h for the grammar).  Unknown names and malformed specs
// exit with the registry's guidance instead of a bare error.
inline elision::Policy parse_scheme(const std::string& s) {
  std::string err;
  const auto p = elision::parse_policy(s, &err);
  if (!p) {
    std::fprintf(stderr, "%s\n", err.c_str());
    std::exit(2);
  }
  return *p;
}

}  // namespace sihle::harness
