// Fixed-width text tables for the bench binaries' output.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace sihle::harness {

class Table {
 public:
  explicit Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

  void row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  void print(std::FILE* out = stdout) const {
    std::vector<std::size_t> width(headers_.size(), 0);
    for (std::size_t i = 0; i < headers_.size(); ++i) width[i] = headers_[i].size();
    for (const auto& r : rows_) {
      for (std::size_t i = 0; i < r.size() && i < width.size(); ++i) {
        width[i] = std::max(width[i], r[i].size());
      }
    }
    print_row(out, headers_, width);
    std::string sep;
    for (std::size_t i = 0; i < width.size(); ++i) {
      sep += std::string(width[i], '-');
      if (i + 1 < width.size()) sep += "-+-";
    }
    std::fprintf(out, "%s\n", sep.c_str());
    for (const auto& r : rows_) print_row(out, r, width);
  }

  static std::string num(double v, int prec = 2) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
    return buf;
  }

 private:
  static void print_row(std::FILE* out, const std::vector<std::string>& cells,
                        const std::vector<std::size_t>& width) {
    for (std::size_t i = 0; i < width.size(); ++i) {
      const std::string& c = i < cells.size() ? cells[i] : std::string();
      std::fprintf(out, "%-*s", static_cast<int>(width[i]), c.c_str());
      if (i + 1 < width.size()) std::fprintf(out, " | ");
    }
    std::fprintf(out, "\n");
  }

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace sihle::harness
