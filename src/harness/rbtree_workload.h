// Data-structure workload driver reproducing the paper's benchmark
// methodology (§4, §7.1): for size s, pre-fill the structure with random
// keys from a domain of size 2s, then have every thread continuously
// perform random insert/delete/lookup operations (equal insert and delete
// rates) for a fixed virtual duration, under a chosen lock and elision
// scheme.  Covers both the red-black tree and the hash table benchmarks.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "analysis/config.h"
#include "elision/policy.h"
#include "locks/locks.h"
#include "service/load.h"
#include "service/stats.h"
#include "stats/event_ring.h"
#include "stats/findings.h"
#include "stats/latency.h"
#include "stats/op_stats.h"
#include "stats/tx_trace.h"

namespace sihle::harness {

// Injected spurious-abort probability per transactional access.  Non-zero by
// default: the paper observes spurious aborts on real TSX (§3.1) and they
// are what makes even read-only HLE-MCS workloads degrade.
inline constexpr double kDefaultSpurious = 1e-4;

// Probability per critical section of latching a persistent abort (page
// fault on first touch of a fresh allocation etc.; see HtmConfig).
inline constexpr double kDefaultPersistent = 2e-3;

enum class DsKind : std::uint8_t { kRbTree, kHashTable, kLinkedList, kSkipList };

constexpr const char* to_string(DsKind d) {
  switch (d) {
    case DsKind::kRbTree: return "rbtree";
    case DsKind::kHashTable: return "hashtable";
    case DsKind::kLinkedList: return "linkedlist";
    case DsKind::kSkipList: return "skiplist";
  }
  return "?";
}

struct WorkloadConfig {
  int threads = 8;
  // Read-set capacity override (0 = HtmConfig default); the linked-list
  // spectrum bench uses this to place the capacity wall inside the sweep.
  std::uint32_t max_read_lines = 0;
  std::size_t tree_size = 128;
  int update_pct = 20;  // mutating fraction of ops, split evenly insert/erase
  sim::Cycles duration = 5'000'000;
  std::uint64_t seed = 1;
  // Any elision policy; canonical Schemes convert implicitly.  The SCM
  // auxiliary lock kind rides along in scheme.conflict.aux.
  elision::Policy scheme = elision::Scheme::kStandard;
  // Read-mostly family: when set, lookup operations run under this policy
  // instead of `scheme` (e.g. "hle:mode=shared" over an rw lock so readers
  // elide concurrently while inserts/erases stay exclusive).  Unset keeps
  // the historical one-policy behavior byte-identical.
  std::optional<elision::Policy> read_scheme;
  locks::LockKind lock = locks::LockKind::kTtas;
  DsKind ds = DsKind::kRbTree;
  // Load model (docs/SERVICE.md).  The default closed loop reproduces the
  // historical behavior byte-for-byte: each thread is a zero-think-time
  // session issuing its next op the instant the previous completes, and
  // `duration` bounds the run.  Open models instead drive a deterministic
  // timestamped request stream through a bounded queue served by `threads`
  // simulated servers; the run ends when the stream drains, `duration` is
  // ignored, and WorkloadResult::open carries the latency split.
  service::LoadSpec load{};
  double spurious = kDefaultSpurious;
  double persistent = kDefaultPersistent;
  bool record_slices = false;
  sim::Cycles slice_cycles = 0;  // 0 = one simulated millisecond
  sim::CostModel costs{};        // overridable for the cost-model ablation
  stats::TxTrace* trace = nullptr;  // optional legacy per-transaction timeline
  // Optional structured event tracing (begin/commit/abort/aux/lock events
  // into per-thread rings; see stats/event_ring.h and docs/OBSERVABILITY.md).
  stats::EventTrace* events = nullptr;
  bool random_tie_break = false;    // schedule fuzzing (see Machine::Config)
  // Defaults from SIHLE_ANALYSIS so existing tests/benches pick up the
  // lockset checker without call-site changes.
  analysis::AnalysisConfig analysis = analysis::config_from_env();
};

struct WorkloadResult {
  stats::OpStats stats;
  // Per-operation latency.  Closed runs: completion time of each op (no
  // queueing exists).  Open runs: the sojourn series (== open.sojourn).
  stats::LatencyHistogram latency;
  // Open-mode (cfg.load.open()) view: queueing-delay / service-time /
  // sojourn split, queue accounting, per-session tallies.  Default-empty
  // in closed runs.
  service::ServiceResult open;
  sim::Cycles elapsed = 0;  // makespan of the measured window
  double ops_per_mcycle = 0.0;
  bool tree_valid = false;
  std::size_t final_size = 0;
  std::shared_ptr<stats::SliceRecorder> slices;  // set iff record_slices
  stats::AnalysisReport analysis;  // populated iff cfg.analysis.enabled
};

WorkloadResult run_rbtree_workload(const WorkloadConfig& cfg);

// Convenience: average ops_per_mcycle over `seeds` runs with consecutive
// seeds starting at cfg.seed.
double average_throughput(WorkloadConfig cfg, int seeds);

}  // namespace sihle::harness
