// Sharded multi-lock workload over the domain-parallel simulator
// (runtime/domains.h): the "production-scale service" scenario the ROADMAP
// names as the payoff for parallel simulation.
//
// The key space is split across S shards by a multiplicative hash; each
// shard is one DomainSet domain hosting its own elided lock and its own
// ds::HashTable, served by a fixed number of worker threads.  A global
// Zipfian key stream is partitioned by owning shard: each shard executes
// the fraction of the total operation budget proportional to the
// probability mass of the keys it owns, so skew (zipf_s > 0) concentrates
// work on the hot shards — the load-imbalance signal figshard_scaling
// sweeps.  Every `remote_every` operations a worker publishes telemetry to
// a global counter on shard 0 through the cross-domain path
// (DomainSet::remote_fetch_add), exercising the epoch-barrier handoff.
//
// Determinism: the result — including the content fingerprint and the
// merged event-timeline hash — is a pure function of the config (seed,
// shards, epoch_cycles, ...) and in particular is byte-identical across
// `domain_threads` values (tests/domains_test.cpp, ctest label `domains`).
#pragma once

#include <cstdint>
#include <optional>

#include "elision/policy.h"
#include "harness/rbtree_workload.h"  // kDefaultSpurious/kDefaultPersistent
#include "locks/locks.h"
#include "service/load.h"
#include "service/stats.h"
#include "sim/cost_model.h"
#include "stats/op_stats.h"

namespace sihle::harness {

struct ShardWorkloadConfig {
  std::size_t shards = 4;          // = DomainSet domains
  int threads_per_shard = 2;
  std::size_t buckets_per_shard = 64;
  std::size_t keyspace = 4096;     // global key universe, split by hash
  double zipf_s = 0.2;             // key-popularity skew (0 = uniform)
  std::uint64_t total_ops = 16000; // summed over every shard's workers
  int update_pct = 20;             // mutating fraction, split insert/erase
  std::uint64_t remote_every = 64; // ops between telemetry handoffs (0 = off)
  std::uint64_t seed = 1;
  int domain_threads = 1;          // host threads (0 = hardware concurrency)
  sim::Cycles epoch_cycles = 4096;
  elision::Policy scheme = elision::Scheme::kHle;
  // Lookups run under this policy when set (e.g. a shared-mode elision over
  // an rw lock); unset keeps the historical one-policy behavior.
  std::optional<elision::Policy> read_scheme;
  locks::LockKind lock = locks::LockKind::kTtas;
  double spurious = kDefaultSpurious;
  double persistent = kDefaultPersistent;
  sim::CostModel costs{};
  // Attach per-domain event traces and hash the canonical merged timeline
  // (costs memory; the determinism tests turn it on).
  bool hash_timeline = false;
  // Load model (docs/SERVICE.md).  Closed (default) reproduces the
  // historical budgeted loop byte-for-byte.  Open models ignore total_ops:
  // the global Zipfian request stream is timestamped by the arrival process,
  // routed to one bounded queue per shard, and drained by threads_per_shard
  // servers per shard; ShardWorkloadResult::open carries the latency split.
  service::LoadSpec load{};
  // Attach per-domain traces and run the lemming detector on each shard's
  // own timeline (ShardWorkloadResult::lemming_shards) — the per-shard
  // abort-storm flag figservice_tail reports under hot-key skew.
  bool per_shard_lemming = false;
};

struct ShardWorkloadResult {
  stats::OpStats stats;            // aggregated over every worker
  sim::Cycles makespan = 0;        // max virtual clock over all domains
  std::uint64_t total_events = 0;  // simulation events over all threads
  std::uint64_t epochs = 0;
  std::uint64_t remote_ops = 0;    // cross-domain handoffs applied
  std::uint64_t telemetry = 0;     // final value of the shard-0 counter
  std::uint64_t fingerprint = 0;   // hash of final table contents + counters
                                   // (open runs fold in queue/latency totals)
  std::uint64_t timeline_hash = 0; // merged-event-stream hash (hash_timeline)
  // Open-mode (cfg.load.open()) view; default-empty in closed runs.
  service::ServiceResult open;
  // Shards whose own timeline fired the lemming detector (per_shard_lemming).
  std::uint32_t lemming_shards = 0;
  bool tables_valid = false;
  double ops_per_mcycle = 0.0;
  double wall_seconds = 0.0;       // host wall-clock of DomainSet::run()
};

ShardWorkloadResult run_shard_workload(const ShardWorkloadConfig& cfg);

// The shard owning `key` (multiplicative hash, mirroring HashTable's
// bucket spread so hot ranks scatter across shards).
inline std::size_t shard_of_key(std::int64_t key, std::size_t shards) {
  return static_cast<std::size_t>(
      (static_cast<std::uint64_t>(key) * 0x9E3779B97F4A7C15ULL) % shards);
}

}  // namespace sihle::harness
