// sihle-lint: disable-file=R005 — this driver *reports* host wall-clock
// time (ShardWorkloadResult::wall_seconds, the parallel-simulation payoff
// metric); the reading never feeds a simulation decision.
#include "harness/shard_workload.h"

#include <chrono>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "ds/hashtable.h"
#include "elision/elided_lock.h"
#include "service/dispatcher.h"
#include "stats/timeline.h"
#include "util/zipf.h"
#include "runtime/ctx.h"
#include "runtime/domains.h"
#include "sim/rng.h"

namespace sihle::harness {

namespace {

using runtime::Ctx;
using runtime::DomainSet;

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  std::uint64_t s = h ^ (v + 0x9E3779B97F4A7C15ULL);
  return sim::splitmix64(s);
}

sim::Task<void> op_insert(Ctx& c, ds::HashTable& t, std::int64_t k) {
  const bool r = co_await t.insert(c, k);
  (void)r;
}
sim::Task<void> op_erase(Ctx& c, ds::HashTable& t, std::int64_t k) {
  const bool r = co_await t.erase(c, k);
  (void)r;
}
sim::Task<void> op_lookup(Ctx& c, ds::HashTable& t, std::int64_t k) {
  const bool r = co_await t.contains(c, k);
  (void)r;
}

struct Shard {
  std::unique_ptr<elision::ElidedLock> lock;
  std::unique_ptr<ds::HashTable> table;
  std::uint64_t ops = 0;  // this shard's slice of the operation budget
};

struct WorkerArgs {
  std::size_t shard = 0;
  std::size_t shards = 1;
  std::uint64_t ops = 0;
  int update_pct = 0;
  std::uint64_t remote_every = 0;
  const util::Zipf* zipf = nullptr;
  ds::HashTable* table = nullptr;
  elision::ElidedLock* lock = nullptr;
  elision::Policy policy;
  elision::Policy read_policy;  // lookups; == policy unless cfg.read_scheme
  DomainSet* set = nullptr;
  mem::Shared<std::uint64_t>* telemetry = nullptr;
  stats::OpStats* st = nullptr;
};

// One table operation under the policy split (mutations under `policy`,
// lookups under `read_policy`) — shared by the closed session body and the
// open-mode request executor.
sim::Task<void> table_op(Ctx& c, WorkerArgs& a, service::OpKind op,
                         std::int64_t key) {
  ds::HashTable& t = *a.table;
  switch (op) {
    case service::OpKind::kInsert:
      co_await elision::run_cs(
          a.policy, c, *a.lock,
          [&t, key](Ctx& cc) { return op_insert(cc, t, key); }, *a.st);
      break;
    case service::OpKind::kErase:
      co_await elision::run_cs(
          a.policy, c, *a.lock,
          [&t, key](Ctx& cc) { return op_erase(cc, t, key); }, *a.st);
      break;
    case service::OpKind::kLookup:
      co_await elision::run_cs(
          a.read_policy, c, *a.lock,
          [&t, key](Ctx& cc) { return op_lookup(cc, t, key); }, *a.st);
      break;
  }
}

// Every `remote_every` ops: a non-transactional cross-domain fetch-add on
// the shard-0 counter, resolved at the next epoch barrier.
sim::Task<void> maybe_telemetry(Ctx& c, WorkerArgs& a, std::uint64_t done) {
  if (a.remote_every != 0 && done % a.remote_every == 0) {
    (void)co_await a.set->remote_fetch_add(c, 0, *a.telemetry,
                                           std::uint64_t{1});
  }
}

// Closed-loop iteration i: the shard serves its slice of the global Zipfian
// stream — draw from the full key universe, keep the keys this shard owns.
// Rejected draws cost rng draws only (request routing is free; executing
// the request is what the simulation prices).
sim::Task<void> shard_op(Ctx& c, WorkerArgs& a, std::uint64_t i) {
  std::int64_t key;
  do {
    key = static_cast<std::int64_t>(a.zipf->draw(c.rng()));
  } while (shard_of_key(key, a.shards) != a.shard);
  const int dice = static_cast<int>(c.rng().below(100));
  const service::OpKind op = dice < a.update_pct / 2 ? service::OpKind::kInsert
                             : dice < a.update_pct   ? service::OpKind::kErase
                                                     : service::OpKind::kLookup;
  co_await table_op(c, a, op, key);
  co_await maybe_telemetry(c, a, i + 1);
}

// Closed worker: the budgeted loop as a zero-think-time session.
sim::Task<void> worker(Ctx& c, WorkerArgs a) {
  co_await service::closed_session(
      c, [&a](Ctx&, std::uint64_t i) { return i < a.ops; },
      [&a](Ctx& cc, std::uint64_t i) { return shard_op(cc, a, i); });
}

// Open-mode request executor: key and op kind come from the request stream
// (no workload rng draws on the serving side); the telemetry cadence keys
// off the per-queue sequence number so it stays deterministic across the
// server pool.
sim::Task<void> execute_request(Ctx& c, WorkerArgs& a, service::Request r) {
  co_await table_op(c, a, r.op, static_cast<std::int64_t>(r.key));
  co_await maybe_telemetry(c, a, r.seq + 1);
}

}  // namespace

ShardWorkloadResult run_shard_workload(const ShardWorkloadConfig& cfg) {
  const std::size_t shards = cfg.shards == 0 ? 1 : cfg.shards;
  const int tps = cfg.threads_per_shard < 1 ? 1 : cfg.threads_per_shard;

  // Fail before simulating rather than from inside a worker coroutine: a
  // shared/update-mode policy needs a reader-writer main lock.
  for (const elision::Policy* p :
       {&cfg.scheme, cfg.read_scheme ? &*cfg.read_scheme : &cfg.scheme}) {
    if (!locks::supports_mode(cfg.lock, p->mode)) {
      throw std::invalid_argument(
          std::string("shard workload: lock '") + to_string(cfg.lock) +
          "' does not support mode=" + locks::to_string(p->mode) +
          " (reader-writer locks only: rw, rw-wp)");
    }
  }

  DomainSet::Config dc;
  dc.seed = cfg.seed;
  dc.domains = shards;
  dc.host_threads = cfg.domain_threads;
  dc.epoch_cycles = cfg.epoch_cycles;
  dc.machine.costs = cfg.costs;
  dc.machine.htm.spurious_abort_per_access = cfg.spurious;
  dc.machine.htm.persistent_abort_per_tx = cfg.persistent;
  DomainSet set(dc);
  if (cfg.hash_timeline || cfg.per_shard_lemming) set.attach_traces();

  const util::Zipf zipf(cfg.keyspace, cfg.zipf_s);

  // Partition the operation budget by each shard's share of the key-stream
  // probability mass (cumulative rounding so the slices sum exactly to
  // total_ops).  Skew concentrates the budget on hot shards.
  std::vector<double> mass(shards, 0.0);
  for (std::size_t k = 0; k < cfg.keyspace; ++k) {
    mass[shard_of_key(static_cast<std::int64_t>(k), shards)] += zipf.mass(k);
  }
  std::vector<Shard> shard_state(shards);
  {
    double cum = 0.0;
    std::uint64_t assigned = 0;
    for (std::size_t d = 0; d < shards; ++d) {
      cum += mass[d];
      const auto upto = static_cast<std::uint64_t>(
          static_cast<double>(cfg.total_ops) * cum + 0.5);
      shard_state[d].ops = upto - assigned;
      assigned = upto;
    }
  }

  // Per-domain lock then table — the same sync-line allocation order the
  // single-machine workloads use.
  for (std::size_t d = 0; d < shards; ++d) {
    shard_state[d].lock = std::make_unique<elision::ElidedLock>(
        set.domain(d), cfg.lock, cfg.scheme.conflict.aux);
    shard_state[d].table = std::make_unique<ds::HashTable>(
        set.domain(d), std::max<std::size_t>(cfg.buckets_per_shard, 4));
  }
  // The cross-domain telemetry counter lives on shard 0.
  runtime::LineHandle telemetry_line(set.domain(0));
  mem::Shared<std::uint64_t> telemetry(telemetry_line.line(), 0);

  // Deterministic pre-fill: every key owned by a shard joins its table with
  // probability 1/2, from one host-side rng (independent of shard count in
  // draw order, so refactoring the sharding never silently reseeds).
  {
    sim::Rng fill(cfg.seed ^ 0xF111F111ULL);
    for (std::size_t k = 0; k < cfg.keyspace; ++k) {
      const bool put = fill.chance(0.5);
      if (!put) continue;
      const auto key = static_cast<std::int64_t>(k);
      shard_state[shard_of_key(key, shards)].table->debug_insert(key);
    }
  }

  const std::size_t n_workers = shards * static_cast<std::size_t>(tps);
  std::vector<stats::OpStats> per_thread(n_workers);
  std::vector<service::RequestStream> streams;
  std::vector<service::RequestQueue> queues;
  std::vector<service::ServerStats> servers;
  std::vector<WorkerArgs> open_args;  // stable storage for server lambdas
  if (cfg.load.open()) {
    // Open system: the same global Zipfian stream, but timestamped by the
    // arrival process and routed host-side to one bounded queue per shard;
    // each shard's server pool drains its own queue.
    service::StreamConfig sc;
    sc.load = cfg.load;
    sc.keyspace = cfg.keyspace;
    sc.zipf_s = cfg.zipf_s;
    sc.update_pct = cfg.update_pct;
    sc.queues = shards;
    sc.route = &shard_of_key;
    sc.seed = cfg.seed;
    streams = service::build_request_streams(sc);
    queues.reserve(shards);
    for (std::size_t d = 0; d < shards; ++d) {
      queues.emplace_back(streams[d], cfg.load.queue_capacity);
    }
    servers.resize(n_workers);
    for (auto& sv : servers) sv.served_by_session.resize(cfg.load.sessions);
    open_args.resize(n_workers);
    for (std::size_t d = 0; d < shards; ++d) {
      for (int t = 0; t < tps; ++t) {
        const std::size_t idx =
            d * static_cast<std::size_t>(tps) + static_cast<std::size_t>(t);
        WorkerArgs& a = open_args[idx];
        a.shard = d;
        a.shards = shards;
        a.update_pct = cfg.update_pct;
        a.remote_every = cfg.remote_every;
        a.zipf = &zipf;
        a.table = shard_state[d].table.get();
        a.lock = shard_state[d].lock.get();
        a.policy = cfg.scheme;
        a.read_policy = cfg.read_scheme.value_or(cfg.scheme);
        a.set = &set;
        a.telemetry = &telemetry;
        a.st = &per_thread[idx];
        set.spawn(d, [&queues, &servers, &a, d, idx](Ctx& c) {
          return service::serve(
              c, queues[d],
              [&a](Ctx& cc, const service::Request& r) {
                return execute_request(cc, a, r);
              },
              servers[idx]);
        });
      }
    }
  } else {
    for (std::size_t d = 0; d < shards; ++d) {
      const std::uint64_t base = shard_state[d].ops / static_cast<std::uint64_t>(tps);
      const std::uint64_t extra = shard_state[d].ops % static_cast<std::uint64_t>(tps);
      for (int t = 0; t < tps; ++t) {
        WorkerArgs a;
        a.shard = d;
        a.shards = shards;
        a.ops = base + (static_cast<std::uint64_t>(t) < extra ? 1 : 0);
        a.update_pct = cfg.update_pct;
        a.remote_every = cfg.remote_every;
        a.zipf = &zipf;
        a.table = shard_state[d].table.get();
        a.lock = shard_state[d].lock.get();
        a.policy = cfg.scheme;
        a.read_policy = cfg.read_scheme.value_or(cfg.scheme);
        a.set = &set;
        a.telemetry = &telemetry;
        a.st = &per_thread[d * static_cast<std::size_t>(tps) +
                           static_cast<std::size_t>(t)];
        set.spawn(d, [a](Ctx& c) { return worker(c, a); });
      }
    }
  }

  const auto wall0 = std::chrono::steady_clock::now();
  set.run();
  const auto wall1 = std::chrono::steady_clock::now();

  ShardWorkloadResult out;
  for (const auto& st : per_thread) out.stats += st;
  out.makespan = set.max_clock();
  out.total_events = set.total_events();
  out.epochs = set.epochs();
  out.remote_ops = set.remote_ops();
  out.telemetry = telemetry.debug_value();  // sihle-lint: disable=R002 (post-run readback)
  out.wall_seconds = std::chrono::duration<double>(wall1 - wall0).count();
  out.ops_per_mcycle =
      out.makespan == 0 ? 0.0
                        : static_cast<double>(out.stats.ops()) * 1e6 /
                              static_cast<double>(out.makespan);

  out.tables_valid = true;
  std::uint64_t h = 0x5141A5D5ULL;
  for (std::size_t d = 0; d < shards; ++d) {
    if (!shard_state[d].table->debug_validate()) out.tables_valid = false;
    h = mix(h, shard_state[d].table->debug_size());
  }
  for (std::size_t k = 0; k < cfg.keyspace; ++k) {
    const auto key = static_cast<std::int64_t>(k);
    const bool present =
        shard_state[shard_of_key(key, shards)].table->debug_contains(key);
    h = mix(h, (k << 1) | (present ? 1 : 0));
  }
  h = mix(h, out.telemetry);
  h = mix(h, out.remote_ops);
  h = mix(h, out.makespan);
  h = mix(h, out.total_events);
  if (cfg.load.open()) {
    // Open-only fingerprint extension: closed-run fingerprints (and the
    // committed baselines built on them) are untouched.
    out.open = service::aggregate_service(cfg.load.sessions, streams, queues,
                                          servers);
    h = mix(h, out.open.queue.served);
    h = mix(h, out.open.queue.dropped);
    h = mix(h, out.open.queue.max_depth);
    h = mix(h, out.open.sojourn.count());
    h = mix(h, out.open.sojourn.max_value());
  }
  out.fingerprint = h;

  if (cfg.per_shard_lemming) {
    // Each shard's own timeline, not the merged stream: an abort storm on a
    // hot shard must fire even while cold shards stay speculative.
    const sim::Cycles window = out.makespan / 24 + 1;
    for (std::size_t d = 0; d < shards; ++d) {
      const stats::Timeline tl =
          stats::Timeline::aggregate(*set.trace(d), window);
      if (stats::detect_lemming(tl).fired) out.lemming_shards++;
    }
  }

  if (cfg.hash_timeline) {
    std::uint64_t th = 0x71AE11EULL;
    for (const DomainSet::MergedEvent& e : set.merged_timeline()) {
      th = mix(th, e.event.at);
      th = mix(th, (static_cast<std::uint64_t>(e.domain) << 32) | e.tid);
      th = mix(th, (static_cast<std::uint64_t>(e.event.kind) << 16) |
                       (static_cast<std::uint64_t>(e.event.cause) << 8) |
                       e.event.code);
    }
    out.timeline_hash = th;
  }
  return out;
}

}  // namespace sihle::harness
